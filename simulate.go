package edmac

import (
	"context"
	"fmt"
	"math"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/sim"
	"github.com/edmac-project/edmac/internal/topology"
)

// SimOptions configure a packet-level simulation run.
type SimOptions struct {
	// Duration is the simulated time in seconds (default
	// DefaultSimDuration).
	Duration float64 `json:"duration,omitempty"`
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	//
	// Seed convention: the zero value is a real seed, not "randomize" —
	// two runs that both leave Seed unset are intentionally identical.
	// Callers wanting statistically independent replications must supply
	// distinct seeds (SimulateSeeds does this for a whole batch). The
	// seed a run actually used is echoed in SimReport.Seed, so reports
	// are self-describing and reproducible from their own content.
	Seed int64 `json:"seed,omitempty"`
}

// SimReport carries the measured outcomes of a simulation run.
// Delay fields (MeanDelay, MaxDelay, P95Delay, OuterRingDelay) are NaN
// when nothing qualifying was delivered; JSON encoders must scrub them
// (the serve layer omits non-finite fields, as SuiteSim does).
type SimReport struct {
	// Protocol and Params echo the configuration.
	Protocol Protocol  `json:"protocol"`
	Params   []float64 `json:"params"`
	// Seed is the effective random seed the run used (see the
	// SimOptions.Seed convention); replaying with it reproduces the run
	// exactly.
	Seed int64 `json:"seed"`
	// Duration is the simulated seconds.
	Duration float64 `json:"duration"`
	// Nodes is the network size including the sink.
	Nodes int `json:"nodes"`
	// Generated, Delivered, Dropped count application packets;
	// Collisions counts corrupted receptions. Delivered counts each
	// packet once: redundant sink receptions — a lost ACK (or an
	// epoch-boundary reconfiguration) makes the sender retransmit a
	// packet the sink already took — are tallied in Duplicates instead,
	// so Delivered never exceeds Generated.
	Generated  int `json:"generated"`
	Delivered  int `json:"delivered"`
	Duplicates int `json:"duplicates,omitempty"`
	Dropped    int `json:"dropped"`
	Collisions int `json:"collisions"`
	// ChannelLosses counts receptions lost to the lossy-link delivery
	// draw; Captures counts overlaps a frame survived via the capture
	// effect. Both are 0 on the default perfect channel.
	ChannelLosses int `json:"channel_losses,omitempty"`
	Captures      int `json:"captures,omitempty"`
	// DeliveryRatio is Delivered/Generated, defined as 0 when the run
	// generated nothing (a low-rate workload over a short duration), so
	// reports always carry a finite, JSON-encodable value. Deliveries
	// are deduplicated, so the ratio never exceeds 1.
	DeliveryRatio float64 `json:"delivery_ratio"`
	// MeanDelay, MaxDelay and P95Delay summarize end-to-end delays in
	// seconds across all delivered packets.
	MeanDelay float64 `json:"mean_delay"`
	MaxDelay  float64 `json:"max_delay"`
	P95Delay  float64 `json:"p95_delay"`
	// OuterRingDelay is the mean delay of packets originating at the
	// outermost ring — the analytic models' reference.
	OuterRingDelay float64 `json:"outer_ring_delay"`
	// BottleneckEnergy is the mean measured energy per accounting window
	// of ring-1 nodes, in joules — comparable to Result energies.
	BottleneckEnergy float64 `json:"bottleneck_energy"`

	// Scheduler observability — the engine's own counters, surfaced so
	// load and capacity tooling can reason in events/second instead of
	// wall clock. Events counts processed simulator events, PeakPending
	// the event queue's high-water mark, WheelPromotions the events
	// that landed beyond the timing wheel's horizon and were bulk
	// promoted later (0 under the reference heap scheduler, near 0 on
	// healthy duty-cycle workloads). All omitted when zero.
	Events          uint64 `json:"events,omitempty"`
	PeakPending     int    `json:"peak_pending,omitempty"`
	WheelPromotions uint64 `json:"wheel_promotions,omitempty"`

	// Survivability block — populated only by fault-injected runs
	// (version-4 scenarios with failures or battery blocks) and omitted
	// everywhere else, so failure-free reports are byte-identical to
	// earlier releases. Deaths counts node-down transitions (crashes and
	// battery depletions), Recoveries the come-backs, DeadAtEnd the
	// nodes down at the horizon. StrandedPackets counts queued packets a
	// dying node lost. DeadNodeFraction is the dead-node integral over
	// (non-sink nodes × duration); PartitionFraction the fraction of the
	// run some alive node had no live route to the sink. Rebargains
	// counts degradation-aware re-bargains consulted at liveness epochs;
	// DegradedRebargains the ones that failed and fell back to the
	// last-good vector.
	Deaths             int     `json:"deaths,omitempty"`
	Recoveries         int     `json:"recoveries,omitempty"`
	DeadAtEnd          int     `json:"dead_at_end,omitempty"`
	StrandedPackets    int     `json:"stranded_packets,omitempty"`
	DeadNodeFraction   float64 `json:"dead_node_fraction,omitempty"`
	PartitionFraction  float64 `json:"partition_fraction,omitempty"`
	Rebargains         int     `json:"rebargains,omitempty"`
	DegradedRebargains int     `json:"degraded_rebargains,omitempty"`
}

// Simulate replays a protocol configuration at packet level on the
// deterministic ring placement of the scenario and reports measured
// delivery, delay and energy. SCPMAC has no simulator implementation
// (its clock-drift machinery is modelled analytically only) and is
// rejected.
//
// Deprecated: use (*Client).Simulate, whose context can abort a
// long-running simulation; this wrapper delegates to the
// package-default client and behaves identically.
func Simulate(p Protocol, s Scenario, params []float64, o SimOptions) (SimReport, error) {
	rep, err := defaultClient().Simulate(context.Background(), SimulateRequest{
		Protocol: p, Scenario: &s, Params: params, Options: o,
	})
	return rep.Sim, err
}

// simulate is the context-aware run behind Client.Simulate's
// ring-scenario path.
func simulate(ctx context.Context, p Protocol, s Scenario, params []float64, o SimOptions) (SimReport, error) {
	cfg, env, net, err := prepareSim(p, s, params, o)
	if err != nil {
		return SimReport{}, err
	}
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return SimReport{}, err
	}
	return simReportOf(p, params, cfg.Seed, env.Rings.Depth, env.Window, net, res), nil
}

// prepareSim validates a simulation request and builds the sim.Config
// plus the immutable context (environment, network) a report needs.
func prepareSim(p Protocol, s Scenario, params []float64, o SimOptions) (sim.Config, macmodel.Env, *topology.Network, error) {
	if p == SCPMAC {
		return sim.Config{}, macmodel.Env{}, nil, fmt.Errorf("edmac: scpmac is analytic-only; simulate xmac, bmac, dmac or lmac")
	}
	o = o.withDefaults()
	env, err := s.env()
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	m, err := macmodel.New(string(p), env)
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	x, err := vec(m, params)
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	net, err := topology.Rings(env.Rings)
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	return sim.Config{
		Protocol:   string(p),
		Network:    net,
		Radio:      env.Radio,
		Params:     x,
		SampleRate: env.SampleRate,
		Payload:    env.Payload,
		Duration:   o.Duration,
		Seed:       o.Seed,
	}, env, net, nil
}

// simReportOf assembles the public report from a raw simulation result:
// outer is the ring whose packets define the reference delay, window the
// energy-accounting window in seconds.
func simReportOf(p Protocol, params []float64, seed int64, outer int, window float64, net *topology.Network, res *sim.Result) SimReport {
	rep := SimReport{
		Protocol:      p,
		Params:        append([]float64(nil), params...),
		Seed:          seed,
		Duration:      res.Duration,
		Nodes:         net.N(),
		Generated:     res.Metrics.Generated(),
		Delivered:     res.Metrics.Delivered(),
		Duplicates:    res.Metrics.Duplicates(),
		Dropped:       res.Metrics.Dropped(),
		Collisions:    res.Collisions,
		ChannelLosses: res.ChannelLosses,
		Captures:      res.Captures,
		// The idle-run (generated 0) ratio-0 convention lives in Metrics,
		// the single source both layers read.
		DeliveryRatio: res.Metrics.DeliveryRatio(),
		MeanDelay:     res.Metrics.MeanDelay(),
		MaxDelay:      res.Metrics.MaxDelay(),
		P95Delay:      res.Metrics.QuantileDelay(0.95),
		OuterRingDelay: res.Metrics.MeanDelayFrom(func(id topology.NodeID) bool {
			return net.Ring(id) == outer
		}),
		BottleneckEnergy: res.MeanRingEnergyPerWindow(net, 1, window),
		Events:           res.Events,
		PeakPending:      res.PeakPending,
		WheelPromotions:  res.WheelPromotions,
	}
	// Survivability counters are all zero on failure-free runs and the
	// fields then omit from JSON, keeping legacy reports byte-stable.
	rep.Deaths = res.Deaths
	rep.Recoveries = res.Recoveries
	rep.DeadAtEnd = res.DeadAtEnd
	rep.StrandedPackets = res.StrandedPackets
	rep.DeadNodeFraction = res.DeadNodeFraction(net.N())
	rep.PartitionFraction = res.PartitionFraction()
	rep.Rebargains = res.Rebargains
	rep.DegradedRebargains = res.DegradedRebargains
	return rep
}

// ValidationReport contrasts the analytic model with the simulator at
// one parameter vector.
type ValidationReport struct {
	SimReport
	// AnalyticEnergy and AnalyticDelay are the model's predictions.
	AnalyticEnergy float64 `json:"analytic_energy"`
	AnalyticDelay  float64 `json:"analytic_delay"`
	// EnergyRatio and DelayRatio are measured/predicted (NaN when the
	// measurement is unusable, e.g. nothing was delivered).
	EnergyRatio float64 `json:"energy_ratio"`
	DelayRatio  float64 `json:"delay_ratio"`
}

// Validate simulates a configuration and reports measured-vs-analytic
// energy and delay — the per-experiment evidence of EXPERIMENTS.md.
//
// Deprecated: use (*Client).Simulate with SimulateRequest.Validate,
// whose context can abort the run; this wrapper delegates to the
// package-default client and behaves identically.
func Validate(p Protocol, s Scenario, params []float64, o SimOptions) (ValidationReport, error) {
	rep, err := defaultClient().Simulate(context.Background(), SimulateRequest{
		Protocol: p, Scenario: &s, Params: params, Options: o, Validate: true,
	})
	if err != nil {
		return ValidationReport{}, err
	}
	out := ValidationReport{
		SimReport:      rep.Sim,
		AnalyticEnergy: rep.Analytic.Energy,
		AnalyticDelay:  rep.Analytic.Delay,
		EnergyRatio:    math.NaN(),
		DelayRatio:     math.NaN(),
	}
	if rep.Analytic.EnergyRatio != nil {
		out.EnergyRatio = *rep.Analytic.EnergyRatio
	}
	if rep.Analytic.DelayRatio != nil {
		out.DelayRatio = *rep.Analytic.DelayRatio
	}
	return out, nil
}
