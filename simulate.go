package edmac

import (
	"fmt"
	"math"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/sim"
	"github.com/edmac-project/edmac/internal/topology"
)

// SimOptions configure a packet-level simulation run.
type SimOptions struct {
	// Duration is the simulated time in seconds (default 1800).
	Duration float64
	// Seed drives all randomness; equal seeds reproduce runs exactly.
	//
	// Seed convention: the zero value is a real seed, not "randomize" —
	// two runs that both leave Seed unset are intentionally identical.
	// Callers wanting statistically independent replications must supply
	// distinct seeds (SimulateSeeds does this for a whole batch). The
	// seed a run actually used is echoed in SimReport.Seed, so reports
	// are self-describing and reproducible from their own content.
	Seed int64
}

// withDefaults fills unset options. Note that Seed is deliberately not
// defaulted: 0 is a valid seed (see the SimOptions.Seed convention).
func (o SimOptions) withDefaults() SimOptions {
	if o.Duration <= 0 {
		o.Duration = 1800
	}
	return o
}

// SimReport carries the measured outcomes of a simulation run.
type SimReport struct {
	// Protocol and Params echo the configuration.
	Protocol Protocol
	Params   []float64
	// Seed is the effective random seed the run used (see the
	// SimOptions.Seed convention); replaying with it reproduces the run
	// exactly.
	Seed int64
	// Duration is the simulated seconds.
	Duration float64
	// Nodes is the network size including the sink.
	Nodes int
	// Generated, Delivered, Dropped count application packets;
	// Collisions counts corrupted receptions. Delivered counts each
	// packet once: redundant sink receptions — a lost ACK (or an
	// epoch-boundary reconfiguration) makes the sender retransmit a
	// packet the sink already took — are tallied in Duplicates instead,
	// so Delivered never exceeds Generated.
	Generated  int
	Delivered  int
	Duplicates int
	Dropped    int
	Collisions int
	// ChannelLosses counts receptions lost to the lossy-link delivery
	// draw; Captures counts overlaps a frame survived via the capture
	// effect. Both are 0 on the default perfect channel.
	ChannelLosses int
	Captures      int
	// DeliveryRatio is Delivered/Generated, defined as 0 when the run
	// generated nothing (a low-rate workload over a short duration), so
	// reports always carry a finite, JSON-encodable value. Deliveries
	// are deduplicated, so the ratio never exceeds 1.
	DeliveryRatio float64
	// MeanDelay, MaxDelay and P95Delay summarize end-to-end delays in
	// seconds across all delivered packets.
	MeanDelay float64
	MaxDelay  float64
	P95Delay  float64
	// OuterRingDelay is the mean delay of packets originating at the
	// outermost ring — the analytic models' reference.
	OuterRingDelay float64
	// BottleneckEnergy is the mean measured energy per accounting window
	// of ring-1 nodes, in joules — comparable to Result energies.
	BottleneckEnergy float64
}

// Simulate replays a protocol configuration at packet level on the
// deterministic ring placement of the scenario and reports measured
// delivery, delay and energy. SCPMAC has no simulator implementation
// (its clock-drift machinery is modelled analytically only) and is
// rejected.
func Simulate(p Protocol, s Scenario, params []float64, o SimOptions) (SimReport, error) {
	cfg, env, net, err := prepareSim(p, s, params, o)
	if err != nil {
		return SimReport{}, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return SimReport{}, err
	}
	return simReportOf(p, params, cfg.Seed, env.Rings.Depth, env.Window, net, res), nil
}

// prepareSim validates a simulation request and builds the sim.Config
// plus the immutable context (environment, network) a report needs.
func prepareSim(p Protocol, s Scenario, params []float64, o SimOptions) (sim.Config, macmodel.Env, *topology.Network, error) {
	if p == SCPMAC {
		return sim.Config{}, macmodel.Env{}, nil, fmt.Errorf("edmac: scpmac is analytic-only; simulate xmac, bmac, dmac or lmac")
	}
	o = o.withDefaults()
	env, err := s.env()
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	m, err := macmodel.New(string(p), env)
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	x, err := vec(m, params)
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	net, err := topology.Rings(env.Rings)
	if err != nil {
		return sim.Config{}, macmodel.Env{}, nil, err
	}
	return sim.Config{
		Protocol:   string(p),
		Network:    net,
		Radio:      env.Radio,
		Params:     x,
		SampleRate: env.SampleRate,
		Payload:    env.Payload,
		Duration:   o.Duration,
		Seed:       o.Seed,
	}, env, net, nil
}

// simReportOf assembles the public report from a raw simulation result:
// outer is the ring whose packets define the reference delay, window the
// energy-accounting window in seconds.
func simReportOf(p Protocol, params []float64, seed int64, outer int, window float64, net *topology.Network, res *sim.Result) SimReport {
	return SimReport{
		Protocol:      p,
		Params:        append([]float64(nil), params...),
		Seed:          seed,
		Duration:      res.Duration,
		Nodes:         net.N(),
		Generated:     res.Metrics.Generated(),
		Delivered:     res.Metrics.Delivered(),
		Duplicates:    res.Metrics.Duplicates(),
		Dropped:       res.Metrics.Dropped(),
		Collisions:    res.Collisions,
		ChannelLosses: res.ChannelLosses,
		Captures:      res.Captures,
		// The idle-run (generated 0) ratio-0 convention lives in Metrics,
		// the single source both layers read.
		DeliveryRatio: res.Metrics.DeliveryRatio(),
		MeanDelay:     res.Metrics.MeanDelay(),
		MaxDelay:      res.Metrics.MaxDelay(),
		P95Delay:      res.Metrics.QuantileDelay(0.95),
		OuterRingDelay: res.Metrics.MeanDelayFrom(func(id topology.NodeID) bool {
			return net.Ring(id) == outer
		}),
		BottleneckEnergy: res.MeanRingEnergyPerWindow(net, 1, window),
	}
}

// ValidationReport contrasts the analytic model with the simulator at
// one parameter vector.
type ValidationReport struct {
	SimReport
	// AnalyticEnergy and AnalyticDelay are the model's predictions.
	AnalyticEnergy float64
	AnalyticDelay  float64
	// EnergyRatio and DelayRatio are measured/predicted (NaN when the
	// measurement is unusable, e.g. nothing was delivered).
	EnergyRatio float64
	DelayRatio  float64
}

// Validate simulates a configuration and reports measured-vs-analytic
// energy and delay — the per-experiment evidence of EXPERIMENTS.md.
func Validate(p Protocol, s Scenario, params []float64, o SimOptions) (ValidationReport, error) {
	rep, err := Simulate(p, s, params, o)
	if err != nil {
		return ValidationReport{}, err
	}
	energy, delay, err := Evaluate(p, s, params)
	if err != nil {
		// The configuration may sit outside the admissible box (e.g. a
		// deliberately extreme what-if); fall back to raw evaluation.
		m, merr := s.model(p)
		if merr != nil {
			return ValidationReport{}, merr
		}
		x, verr := vec(m, params)
		if verr != nil {
			return ValidationReport{}, verr
		}
		energy, delay = m.Energy(x), m.Delay(x)
	}
	out := ValidationReport{
		SimReport:      rep,
		AnalyticEnergy: energy,
		AnalyticDelay:  delay,
		EnergyRatio:    math.NaN(),
		DelayRatio:     math.NaN(),
	}
	if rep.BottleneckEnergy > 0 {
		out.EnergyRatio = rep.BottleneckEnergy / energy
	}
	if !math.IsNaN(rep.OuterRingDelay) {
		out.DelayRatio = rep.OuterRingDelay / delay
	}
	return out, nil
}
