// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark ledger, so the performance trajectory of the figure and
// simulator benchmarks is tracked across PRs (see `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchjson -o BENCH_results.json -label current
//
// The ledger maps labels to result sets. An existing file is merged:
// only the given label's entry is replaced, so a "seed-baseline" section
// recorded once survives every refresh of "current".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Entry is one labelled benchmark run.
type Entry struct {
	RecordedAt string   `json:"recorded_at"`
	Note       string   `json:"note,omitempty"`
	Results    []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkFigure1XMAC-8   572   1836907 ns/op   455000 B/op   25093 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "BENCH_results.json", "output ledger file")
	label := flag.String("label", "current", "ledger entry to write")
	note := flag.String("note", "", "free-form note stored with the entry")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: pass the output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	ledger := map[string]Entry{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a ledger: %v\n", *out, err)
			os.Exit(1)
		}
	}
	ledger[*label] = Entry{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Note:       *note,
		Results:    results,
	}
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s[%q]\n", len(results), *out, *label)
}
