// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark ledger, so the performance trajectory of the figure and
// simulator benchmarks is tracked across PRs (see `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./tools/benchjson -o BENCH_results.json -label current
//
// The ledger maps labels to result sets. An existing file is merged:
// only the given label's entry is replaced, so a "seed-baseline" section
// recorded once survives every refresh of "current".
//
// With -gate LABEL the command additionally compares the entry it just
// wrote against the ledger's LABEL entry and exits non-zero when any
// benchmark selected by -gate-match regressed by more than -gate-tol in
// ns/op or allocs/op — the CI benchmark-regression gate (see `make
// bench-gate`). Repeated lines of one benchmark (-count=N) are reduced
// to their minimum first, so scheduler noise inflates neither side.
//
// With -covered REGEXP the command instead reads `go test -list
// 'Benchmark.*'` output on stdin and verifies every top-level
// alternative of the regexp matches at least one listed benchmark —
// the `make gate-coverage` guard against a GATE_BENCH typo silently
// gating nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// EventsPerSec is the simulator benchmarks' custom throughput
	// metric (b.ReportMetric "events/sec"); 0 when a benchmark does
	// not report it. Higher is better, unlike every column above.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Entry is one labelled benchmark run.
type Entry struct {
	RecordedAt string   `json:"recorded_at"`
	Note       string   `json:"note,omitempty"`
	Results    []Result `json:"results"`
}

// benchLine matches the head of e.g.
//
//	BenchmarkFigure1XMAC-8   572   1836907 ns/op   455000 B/op   25093 allocs/op
//
// Custom metrics (events/sec) and the -benchmem columns can appear in
// any combination after ns/op, so they are extracted separately.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

var memCols = regexp.MustCompile(`([\d.]+) B/op\s+(\d+) allocs/op`)

var eventsCol = regexp.MustCompile(`([\d.]+) events/sec`)

func main() {
	out := flag.String("o", "BENCH_results.json", "output ledger file")
	label := flag.String("label", "current", "ledger entry to write")
	note := flag.String("note", "", "free-form note stored with the entry")
	gate := flag.String("gate", "", "baseline ledger entry to gate against (empty: no gating)")
	gateMatch := flag.String("gate-match", ".", "regexp selecting the benchmarks the gate checks")
	gateTol := flag.Float64("gate-tol", 0.15, "allowed fractional regression in ns/op and allocs/op")
	covered := flag.String("covered", "", "verify every top-level alternative of this regexp matches a benchmark listed on stdin, then exit")
	flag.Parse()

	if *covered != "" {
		if err := checkCovered(os.Stdin, *covered); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: pass the output through
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if mm := memCols.FindStringSubmatch(line); mm != nil {
			r.BytesPerOp, _ = strconv.ParseFloat(mm[1], 64)
			r.AllocsPerOp, _ = strconv.ParseInt(mm[2], 10, 64)
		}
		if em := eventsCol.FindStringSubmatch(line); em != nil {
			r.EventsPerSec, _ = strconv.ParseFloat(em[1], 64)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	ledger := map[string]Entry{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a ledger: %v\n", *out, err)
			os.Exit(1)
		}
	}
	ledger[*label] = Entry{
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Note:       *note,
		Results:    results,
	}
	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s[%q]\n", len(results), *out, *label)

	if *gate != "" {
		base, ok := ledger[*gate]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: gate label %q not in %s\n", *gate, *out)
			os.Exit(1)
		}
		match, err := regexp.Compile(*gateMatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -gate-match:", err)
			os.Exit(1)
		}
		if !checkGate(base.Results, results, match, *gateTol, *gate) {
			os.Exit(2)
		}
	}
}

// checkCovered reads `go test -list 'Benchmark.*'` output and verifies
// each top-level alternative of expr matches at least one listed
// benchmark, so a typo in GATE_BENCH cannot silently gate nothing.
func checkCovered(r io.Reader, expr string) error {
	var names []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "Benchmark") && !strings.ContainsAny(line, " \t") {
			names = append(names, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("-covered: no benchmarks listed on stdin (pipe `go test -run '^$' -list 'Benchmark.*' ./...` in)")
	}
	var missing []string
	for _, alt := range splitAlternatives(expr) {
		re, err := regexp.Compile(alt)
		if err != nil {
			return fmt.Errorf("-covered: alternative %q: %v", alt, err)
		}
		found := false
		for _, n := range names {
			if re.MatchString(n) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, alt)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("-covered: no benchmark among the %d listed matches %q — typo in GATE_BENCH?",
			len(names), strings.Join(missing, `", "`))
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate coverage ok: every alternative of %q matches one of %d benchmarks\n", expr, len(names))
	return nil
}

// splitAlternatives splits a regexp on its top-level '|' separators
// (alternation inside parentheses stays attached to its alternative).
func splitAlternatives(expr string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range expr {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case '|':
			if depth == 0 {
				out = append(out, expr[start:i])
				start = i + 1
			}
		}
	}
	return append(out, expr[start:])
}

// metric is one benchmark's gated measurements, reduced to the minimum
// over repeated runs.
type metric struct {
	ns     float64
	allocs int64
	events float64 // best (max) events/sec; 0 when not reported
}

// minByName reduces result lines to per-benchmark minima.
func minByName(results []Result, match *regexp.Regexp) map[string]metric {
	mins := map[string]metric{}
	for _, r := range results {
		if !match.MatchString(r.Name) {
			continue
		}
		m, ok := mins[r.Name]
		if !ok || r.NsPerOp < m.ns {
			m.ns = r.NsPerOp
		}
		if !ok || r.AllocsPerOp < m.allocs {
			m.allocs = r.AllocsPerOp
		}
		if r.EventsPerSec > m.events {
			m.events = r.EventsPerSec
		}
		mins[r.Name] = m
	}
	return mins
}

// checkGate compares current results against the baseline and reports
// whether every gated benchmark stayed within tolerance on both ns/op
// and allocs/op.
func checkGate(baseline, current []Result, match *regexp.Regexp, tol float64, gateLabel string) bool {
	base := minByName(baseline, match)
	cur := minByName(current, match)
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate %q matches no baseline benchmark\n", match)
		return false
	}
	ok := true
	for name, b := range base {
		c, found := cur[name]
		if !found {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: benchmark missing from current run\n", name)
			ok = false
			continue
		}
		benchOK := true
		nsRatio := c.ns / b.ns
		if nsRatio > 1+tol {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: %.0f ns/op vs baseline %.0f (%+.1f%% > %.0f%%)\n",
				name, c.ns, b.ns, 100*(nsRatio-1), 100*tol)
			benchOK = false
		}
		// events/sec is higher-better; gate it only when the baseline
		// recorded the metric, so ledgers predating it stay gateable.
		if b.events > 0 && c.events > 0 {
			evRatio := c.events / b.events
			if evRatio < 1-tol {
				fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: %.0f events/sec vs baseline %.0f (%+.1f%% < -%.0f%%)\n",
					name, c.events, b.events, 100*(evRatio-1), 100*tol)
				benchOK = false
			}
		}
		if b.allocs > 0 {
			allocRatio := float64(c.allocs) / float64(b.allocs)
			if allocRatio > 1+tol {
				fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: %d allocs/op vs baseline %d (%+.1f%% > %.0f%%)\n",
					name, c.allocs, b.allocs, 100*(allocRatio-1), 100*tol)
				benchOK = false
			}
		} else if c.allocs > b.allocs {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: %d allocs/op vs baseline %d\n", name, c.allocs, b.allocs)
			benchOK = false
		}
		if benchOK {
			fmt.Fprintf(os.Stderr, "benchjson: gate ok %s: %.0f ns/op (baseline %.0f), %d allocs/op (baseline %d)\n",
				name, c.ns, b.ns, c.allocs, b.allocs)
		} else {
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(os.Stderr, "benchjson: gate passed against %q (tolerance %.0f%%)\n", gateLabel, 100*tol)
	}
	return ok
}
