package main

import (
	"strings"
	"testing"
)

func TestSplitAlternatives(t *testing.T) {
	cases := []struct {
		expr string
		want []string
	}{
		{"A|B|C", []string{"A", "B", "C"}},
		{"SimulatorEventRate(Lossy|Faulty)?|ServeOptimizeCached|JobsSubmitPoll",
			[]string{"SimulatorEventRate(Lossy|Faulty)?", "ServeOptimizeCached", "JobsSubmitPoll"}},
		{"Single", []string{"Single"}},
	}
	for _, c := range cases {
		got := splitAlternatives(c.expr)
		if len(got) != len(c.want) {
			t.Errorf("splitAlternatives(%q) = %v, want %v", c.expr, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitAlternatives(%q)[%d] = %q, want %q", c.expr, i, got[i], c.want[i])
			}
		}
	}
}

func TestCheckCovered(t *testing.T) {
	list := strings.Join([]string{
		"BenchmarkSimulatorEventRate",
		"BenchmarkSimulatorEventRateLossy",
		"BenchmarkServeOptimizeCached",
		"ok  \tgithub.com/edmac-project/edmac\t0.1s",
	}, "\n")

	if err := checkCovered(strings.NewReader(list), "SimulatorEventRate(Lossy)?|ServeOptimizeCached"); err != nil {
		t.Errorf("covered gate rejected a fully-covered regexp: %v", err)
	}
	err := checkCovered(strings.NewReader(list), "SimulatorEventRate|JobsSubmitPol")
	if err == nil || !strings.Contains(err.Error(), "JobsSubmitPol") {
		t.Errorf("covered gate missed the uncovered alternative: err = %v", err)
	}
	if err := checkCovered(strings.NewReader(""), "Anything"); err == nil {
		t.Error("covered gate accepted an empty benchmark list")
	}
}
