package edmac_test

import (
	"bytes"
	"context"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

// phasedBuiltins returns the registry's non-stationary scenarios.
func phasedBuiltins(t *testing.T) []edmac.ScenarioSpec {
	t.Helper()
	var specs []edmac.ScenarioSpec
	for _, sp := range edmac.BuiltinScenarios() {
		if sp.Phased() {
			specs = append(specs, sp)
		}
	}
	if len(specs) == 0 {
		t.Fatal("no phased builtin scenarios")
	}
	return specs
}

// TestAdaptiveBeatsStatic is the headline acceptance check: on at least
// one builtin non-stationary scenario, the per-phase re-bargaining
// runtime beats the frozen static bargain — lower bottleneck energy at
// equal-or-better delivery ratio and p95 delay. The suite golden runs
// the same cells, so the win is committed evidence, not a flake.
func TestAdaptiveBeatsStatic(t *testing.T) {
	report, err := edmac.RunSuite(context.Background(), phasedBuiltins(t),
		[]edmac.Protocol{edmac.XMAC, edmac.BMAC, edmac.DMAC, edmac.LMAC},
		edmac.SuiteOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, c := range report.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed: %s", c.Scenario, c.Protocol, c.Err)
			continue
		}
		if !c.Adaptive {
			t.Errorf("cell %s/%s not adaptive despite the spec's per-phase mode", c.Scenario, c.Protocol)
			continue
		}
		if len(c.Phases) < 2 {
			t.Errorf("cell %s/%s has %d phases", c.Scenario, c.Protocol, len(c.Phases))
		}
		if c.Sim == nil || c.StaticSim == nil {
			t.Errorf("cell %s/%s missing a sim side", c.Scenario, c.Protocol)
			continue
		}
		if c.Sim.P95Delay == nil || c.StaticSim.P95Delay == nil {
			continue
		}
		if c.Sim.BottleneckEnergy < c.StaticSim.BottleneckEnergy &&
			c.Sim.DeliveryRatio >= c.StaticSim.DeliveryRatio &&
			*c.Sim.P95Delay <= *c.StaticSim.P95Delay {
			wins++
			t.Logf("%s/%s: adaptive wins (E %.5f < %.5f, delivery %.4f >= %.4f, p95 %.3f <= %.3f)",
				c.Scenario, c.Protocol,
				c.Sim.BottleneckEnergy, c.StaticSim.BottleneckEnergy,
				c.Sim.DeliveryRatio, c.StaticSim.DeliveryRatio,
				*c.Sim.P95Delay, *c.StaticSim.P95Delay)
		}
	}
	if wins == 0 {
		t.Error("adaptive beat static on no (scenario, protocol) cell")
	}
}

// TestRunSuiteAdaptiveDeterminism asserts the adaptive path keeps the
// suite's byte-identical determinism contract across worker counts.
func TestRunSuiteAdaptiveDeterminism(t *testing.T) {
	specs := phasedBuiltins(t)[:1]
	protocols := []edmac.Protocol{edmac.XMAC, edmac.LMAC}
	opts := edmac.SuiteOptions{Duration: 200, Seed: 3, Adaptive: true}

	parallel, err := edmac.RunSuite(context.Background(), specs, protocols, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsSeq := opts
	optsSeq.Workers = 1
	sequential, err := edmac.RunSuite(context.Background(), specs, protocols, optsSeq)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := parallel.JSON()
	b, _ := sequential.JSON()
	if !bytes.Equal(a, b) {
		t.Error("parallel and sequential adaptive suite JSON differ")
	}
}

// staticModePhasedSpec is a phased scenario that declares adaptation
// mode "static": only SuiteOptions.Adaptive can make it adapt.
const staticModePhasedSpec = `{
  "version": 2,
  "name": "two-act-static",
  "seed": 4,
  "topology": {"kind": "line", "nodes": 6, "spacing": 0.8},
  "phases": [
    {"traffic": {"kind": "periodic", "rate": 0.01}, "duration": 75},
    {"traffic": {"kind": "periodic", "rate": 0.05}, "duration": 75}
  ],
  "adaptation": {"mode": "static"},
  "radio": "cc2420",
  "payload": 32,
  "window": 60
}`

// TestRunSuiteAdaptiveFlag asserts SuiteOptions.Adaptive forces phased
// scenarios to adapt — including one whose spec says static — while
// leaving stationary ones alone, and that without the flag a
// static-mode phased cell really stays static.
func TestRunSuiteAdaptiveFlag(t *testing.T) {
	stationary, ok := edmac.BuiltinScenario("ring-baseline")
	if !ok {
		t.Fatal("ring-baseline missing")
	}
	staticMode, err := edmac.ParseScenario([]byte(staticModePhasedSpec))
	if err != nil {
		t.Fatal(err)
	}
	phased := phasedBuiltins(t)[0]

	// Without the flag: the spec's own mode decides. The static-mode
	// spec plays the classic one-bargain pipeline; the per-phase
	// builtin adapts anyway.
	report, err := edmac.RunSuite(context.Background(),
		[]edmac.ScenarioSpec{staticMode, phased},
		[]edmac.Protocol{edmac.XMAC},
		edmac.SuiteOptions{Duration: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range report.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s failed: %s", c.Scenario, c.Err)
		}
		switch c.Scenario {
		case staticMode.Name():
			if c.Adaptive || c.Phases != nil || c.StaticSim != nil || c.Sim == nil {
				t.Errorf("static-mode phased cell adapted without the flag: %+v", c)
			}
		case phased.Name():
			if !c.Adaptive {
				t.Errorf("per-phase builtin did not adapt on its own mode")
			}
		}
	}

	// With the flag: every phased scenario adapts, stationary ones are
	// untouched.
	report, err = edmac.RunSuite(context.Background(),
		[]edmac.ScenarioSpec{stationary, staticMode},
		[]edmac.Protocol{edmac.XMAC},
		edmac.SuiteOptions{Duration: 150, Seed: 2, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range report.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s failed: %s", c.Scenario, c.Err)
		}
		switch c.Scenario {
		case stationary.Name():
			if c.Adaptive || c.Phases != nil || c.StaticSim != nil {
				t.Errorf("stationary cell gained adaptive state: %+v", c)
			}
		case staticMode.Name():
			if !c.Adaptive || c.Sim == nil || c.StaticSim == nil || len(c.Phases) != 2 {
				t.Errorf("static-mode phased cell did not adapt under the flag")
			}
		}
	}

	// SCPMAC stays analytic-only but still reports per-phase bargains.
	report, err = edmac.RunSuite(context.Background(), []edmac.ScenarioSpec{phased},
		[]edmac.Protocol{edmac.SCPMAC}, edmac.SuiteOptions{Duration: 150, Seed: 2, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	cell := report.Cells[0]
	if cell.Sim != nil || cell.StaticSim != nil {
		t.Error("scpmac cell simulated")
	}
	if !cell.Adaptive || len(cell.Phases) == 0 {
		t.Error("scpmac cell missing per-phase bargains")
	}
	for i, ph := range cell.Phases {
		if ph.Err != "" {
			t.Errorf("scpmac phase %d: %s", i, ph.Err)
		}
		if ph.Analytic == nil {
			t.Errorf("scpmac phase %d missing analytic point", i)
		}
	}
}

// TestSimulateScenarioZeroGenerated is the regression test for the
// delivery-ratio definition: a workload too slow to emit a packet
// within the run must report ratio 0 (not NaN) and still encode to
// JSON inside a suite.
func TestSimulateScenarioZeroGenerated(t *testing.T) {
	spec := []byte(`{
  "version": 1,
  "name": "near-silent",
  "seed": 1,
  "topology": {"kind": "line", "nodes": 5, "spacing": 0.8},
  "traffic": {"kind": "periodic", "rate": 1e-7},
  "radio": "cc2420",
  "payload": 32,
  "window": 60
}`)
	sp, err := edmac.ParseScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := edmac.SimulateScenario(edmac.XMAC, sp, []float64{0.3}, edmac.SimOptions{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated != 0 {
		t.Fatalf("near-silent run generated %d packets; tighten the rate", rep.Generated)
	}
	if rep.DeliveryRatio != 0 {
		t.Errorf("DeliveryRatio %v for a zero-generated run, want 0", rep.DeliveryRatio)
	}

	report, err := edmac.RunSuite(context.Background(), []edmac.ScenarioSpec{sp},
		[]edmac.Protocol{edmac.XMAC}, edmac.SuiteOptions{Duration: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cell := report.Cells[0]
	if cell.Err != "" {
		t.Fatalf("cell failed: %s", cell.Err)
	}
	if cell.Sim == nil || cell.Sim.Generated != 0 {
		t.Fatalf("expected a zero-generated sim cell, got %+v", cell.Sim)
	}
	if cell.Sim.DeliveryRatio != 0 {
		t.Errorf("suite DeliveryRatio %v, want 0", cell.Sim.DeliveryRatio)
	}
	if _, err := report.JSON(); err != nil {
		t.Errorf("suite JSON failed on a zero-generated cell: %v", err)
	}
}
