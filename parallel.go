package edmac

import (
	"context"
	"encoding/json"

	"github.com/edmac-project/edmac/internal/core"
)

// SweepPoint is one cell of a requirement sweep: the requirements, the
// solved game, and a non-nil Err (wrapping ErrInfeasible) for cells the
// protocol cannot satisfy even in relaxed mode. Infeasible cells are
// part of the result because the figures must report them.
type SweepPoint struct {
	Requirements Requirements
	Result       Result
	Err          error
}

// MarshalJSON encodes the cell with Err surfaced as its message string
// (as Comparison does), so wire consumers see infeasible cells
// explicitly instead of an empty result.
func (p SweepPoint) MarshalJSON() ([]byte, error) {
	w := struct {
		Requirements Requirements `json:"requirements"`
		Result       *Result      `json:"result,omitempty"`
		Error        string       `json:"error,omitempty"`
	}{Requirements: p.Requirements}
	if p.Err != nil {
		w.Error = p.Err.Error()
	} else {
		w.Result = &p.Result
	}
	return json.Marshal(w)
}

// SweepMaxDelay solves the paper's Figure 1 series for one protocol —
// the energy budget fixed, the delay bound taking each value in delays —
// fanning the independent cells over a worker pool (one worker per CPU).
// The returned slice is ordered like delays, and every cell is identical
// to what OptimizeRelaxed returns for that requirement pair: the solvers
// are deterministic and the models immutable, so parallelism changes
// only the wall clock. Cancelling ctx abandons unsolved cells and
// returns ctx.Err(). A nil ctx means context.Background().
//
// Deprecated: use (*Client).Sweep with SweepDelay; this wrapper
// delegates to the package-default client and behaves identically.
func SweepMaxDelay(ctx context.Context, p Protocol, s Scenario, energyBudget float64, delays []float64) ([]SweepPoint, error) {
	rep, err := defaultClient().Sweep(ctx, SweepRequest{
		Protocol: p, Scenario: &s, Axis: SweepDelay, Fixed: energyBudget, Values: delays,
	})
	return rep.Points, err
}

// SweepEnergyBudget solves the paper's Figure 2 series for one protocol —
// the delay bound fixed, the energy budget taking each value in budgets —
// with the same ordering, determinism and cancellation contract as
// SweepMaxDelay.
//
// Deprecated: use (*Client).Sweep with SweepEnergy; this wrapper
// delegates to the package-default client and behaves identically.
func SweepEnergyBudget(ctx context.Context, p Protocol, s Scenario, maxDelay float64, budgets []float64) ([]SweepPoint, error) {
	rep, err := defaultClient().Sweep(ctx, SweepRequest{
		Protocol: p, Scenario: &s, Axis: SweepEnergy, Fixed: maxDelay, Values: budgets,
	})
	return rep.Points, err
}

// sweepMaxDelay is the varying-Lmax series behind Client.Sweep.
func sweepMaxDelay(ctx context.Context, p Protocol, s Scenario, energyBudget float64, delays []float64, workers int) ([]SweepPoint, error) {
	m, err := s.model(p)
	if err != nil {
		return nil, err
	}
	pts, err := core.SweepMaxDelayParallel(ctx, m, energyBudget, delays, workers)
	if err != nil {
		return nil, err
	}
	return sweepPointsOf(p, pts), nil
}

// sweepEnergyBudget is the varying-Ebudget series behind Client.Sweep.
func sweepEnergyBudget(ctx context.Context, p Protocol, s Scenario, maxDelay float64, budgets []float64, workers int) ([]SweepPoint, error) {
	m, err := s.model(p)
	if err != nil {
		return nil, err
	}
	pts, err := core.SweepEnergyBudgetParallel(ctx, m, maxDelay, budgets, workers)
	if err != nil {
		return nil, err
	}
	return sweepPointsOf(p, pts), nil
}

// PaperDelays returns the Lmax sweep of the paper's Figure 1 (1..6 s).
func PaperDelays() []float64 { return core.PaperDelays() }

// PaperBudgets returns the Ebudget sweep of the paper's Figure 2
// (0.01..0.06 J).
func PaperBudgets() []float64 { return core.PaperBudgets() }

func sweepPointsOf(p Protocol, pts []core.SweepPoint) []SweepPoint {
	out := make([]SweepPoint, len(pts))
	for i, pt := range pts {
		req := Requirements{EnergyBudget: pt.Requirements.EnergyBudget, MaxDelay: pt.Requirements.MaxDelay}
		sp := SweepPoint{Requirements: req, Err: pt.Err}
		if pt.Err == nil {
			sp.Result = resultOf(p, req, pt.Tradeoff)
		}
		out[i] = sp
	}
	return out
}
