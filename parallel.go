package edmac

import (
	"context"

	"github.com/edmac-project/edmac/internal/core"
)

// SweepPoint is one cell of a requirement sweep: the requirements, the
// solved game, and a non-nil Err (wrapping ErrInfeasible) for cells the
// protocol cannot satisfy even in relaxed mode. Infeasible cells are
// part of the result because the figures must report them.
type SweepPoint struct {
	Requirements Requirements
	Result       Result
	Err          error
}

// SweepMaxDelay solves the paper's Figure 1 series for one protocol —
// the energy budget fixed, the delay bound taking each value in delays —
// fanning the independent cells over a worker pool (one worker per CPU).
// The returned slice is ordered like delays, and every cell is identical
// to what OptimizeRelaxed returns for that requirement pair: the solvers
// are deterministic and the models immutable, so parallelism changes
// only the wall clock. Cancelling ctx abandons unsolved cells and
// returns ctx.Err(). A nil ctx means context.Background().
func SweepMaxDelay(ctx context.Context, p Protocol, s Scenario, energyBudget float64, delays []float64) ([]SweepPoint, error) {
	m, err := s.model(p)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pts, err := core.SweepMaxDelayParallel(ctx, m, energyBudget, delays, 0)
	if err != nil {
		return nil, err
	}
	return sweepPointsOf(p, pts), nil
}

// SweepEnergyBudget solves the paper's Figure 2 series for one protocol —
// the delay bound fixed, the energy budget taking each value in budgets —
// with the same ordering, determinism and cancellation contract as
// SweepMaxDelay.
func SweepEnergyBudget(ctx context.Context, p Protocol, s Scenario, maxDelay float64, budgets []float64) ([]SweepPoint, error) {
	m, err := s.model(p)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pts, err := core.SweepEnergyBudgetParallel(ctx, m, maxDelay, budgets, 0)
	if err != nil {
		return nil, err
	}
	return sweepPointsOf(p, pts), nil
}

// PaperDelays returns the Lmax sweep of the paper's Figure 1 (1..6 s).
func PaperDelays() []float64 { return core.PaperDelays() }

// PaperBudgets returns the Ebudget sweep of the paper's Figure 2
// (0.01..0.06 J).
func PaperBudgets() []float64 { return core.PaperBudgets() }

func sweepPointsOf(p Protocol, pts []core.SweepPoint) []SweepPoint {
	out := make([]SweepPoint, len(pts))
	for i, pt := range pts {
		req := Requirements{EnergyBudget: pt.Requirements.EnergyBudget, MaxDelay: pt.Requirements.MaxDelay}
		sp := SweepPoint{Requirements: req, Err: pt.Err}
		if pt.Err == nil {
			sp.Result = resultOf(p, req, pt.Tradeoff)
		}
		out[i] = sp
	}
	return out
}
