package edmac

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"github.com/edmac-project/edmac/internal/adapt"
	"github.com/edmac-project/edmac/internal/core"
	"github.com/edmac-project/edmac/internal/jsonwire"
	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/par"
	"github.com/edmac-project/edmac/internal/scenario"
	"github.com/edmac-project/edmac/internal/sim"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// SuiteOptions configure a RunSuite matrix run.
type SuiteOptions struct {
	// Duration is the simulated seconds per cell (default
	// DefaultSuiteDuration).
	Duration float64 `json:"duration,omitempty"`
	// Seed is the base seed; each cell derives its own seed from it and
	// the cell's (scenario, protocol) pair, so cells are decorrelated
	// but the whole suite is reproducible from one number. The zero
	// value is a real seed (see SimOptions.Seed).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the worker pool (one per CPU when < 1, or the
	// Client's WithWorkers default on the client path).
	Workers int `json:"workers,omitempty"`
	// EnergyBudget is the per-cell requirement Ebudget in joules per
	// window (default: the paper's 0.06 J).
	EnergyBudget float64 `json:"energy_budget,omitempty"`
	// MaxDelay is the per-cell delay bound Lmax in seconds. When 0 it
	// scales with each scenario's depth (3 + 1.2·D), since a bound fit
	// for a 3-hop ring is unreachable for a 24-hop tunnel.
	MaxDelay float64 `json:"max_delay,omitempty"`
	// Adaptive forces re-bargaining on every scenario with something to
	// adapt to, whatever its adaptation block says: per-phase vectors on
	// phased (version-2) scenarios and degradation-aware re-bargains on
	// faulty (version-4) ones. Scenarios whose spec declares a mode
	// ("per-phase", "on-death") adapt even when this is false;
	// stationary failure-free scenarios are never affected.
	Adaptive bool `json:"adaptive,omitempty"`
}

// SuiteScenario summarizes one materialized scenario of a suite report.
type SuiteScenario struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Topology    string  `json:"topology"`
	Traffic     string  `json:"traffic"`
	Nodes       int     `json:"nodes"`
	Depth       int     `json:"depth"`
	MeanDegree  float64 `json:"mean_degree"`
	// RingDepth and RingDensity are the equivalent analytic ring model
	// the game was played on.
	RingDepth   int `json:"ring_depth"`
	RingDensity int `json:"ring_density"`
	// MeanRate is the average per-node generation rate in packets/s.
	MeanRate float64 `json:"mean_rate"`
	// Channel is the link-quality family ("bernoulli", "shadowing");
	// omitted for the perfect channel, so legacy rows stay byte-stable.
	Channel string `json:"channel,omitempty"`
	// MeanLinkPRR is the network's average link reception ratio; omitted
	// (0) for perfect channels.
	MeanLinkPRR float64 `json:"mean_link_prr,omitempty"`
	// Failures is the failure-process family ("churn", "schedule") and
	// BatteryJ the per-node battery capacity in joules; both omitted for
	// failure-free scenarios, so legacy rows stay byte-stable.
	Failures string  `json:"failures,omitempty"`
	BatteryJ float64 `json:"battery_j,omitempty"`
}

// SuiteAnalytic is the game-theoretic side of a suite cell: the Nash
// bargain the framework would deploy.
type SuiteAnalytic struct {
	Energy         float64 `json:"energy"`
	Delay          float64 `json:"delay"`
	Degenerate     bool    `json:"degenerate,omitempty"`
	BudgetExceeded bool    `json:"budget_exceeded,omitempty"`
}

// SuiteSim is the measured side of a suite cell. Delay fields are
// omitted when nothing qualifying was delivered (they would be NaN).
type SuiteSim struct {
	Seed      int64 `json:"seed"`
	Nodes     int   `json:"nodes"`
	Generated int   `json:"generated"`
	Delivered int   `json:"delivered"`
	// Duplicates counts redundant sink receptions (retries after lost
	// ACKs of already-delivered packets); Delivered excludes them, so
	// DeliveryRatio never exceeds 1.
	Duplicates int `json:"duplicates,omitempty"`
	Dropped    int `json:"dropped"`
	Collisions int `json:"collisions"`
	// ChannelLosses counts receptions lost to the lossy-link draw and
	// Captures overlaps survived via the capture effect; both omitted
	// (0) on the perfect channel.
	ChannelLosses    int      `json:"channel_losses,omitempty"`
	Captures         int      `json:"captures,omitempty"`
	DeliveryRatio    float64  `json:"delivery_ratio"`
	MeanDelay        *float64 `json:"mean_delay,omitempty"`
	P95Delay         *float64 `json:"p95_delay,omitempty"`
	OuterRingDelay   *float64 `json:"outer_ring_delay,omitempty"`
	BottleneckEnergy float64  `json:"bottleneck_energy"`
	// Survivability columns (see SimReport's survivability block); all
	// zero — and omitted — on failure-free cells, so legacy suite rows
	// stay byte-stable.
	Deaths             int     `json:"deaths,omitempty"`
	Recoveries         int     `json:"recoveries,omitempty"`
	DeadAtEnd          int     `json:"dead_at_end,omitempty"`
	StrandedPackets    int     `json:"stranded_packets,omitempty"`
	DeadNodeFraction   float64 `json:"dead_node_fraction,omitempty"`
	PartitionFraction  float64 `json:"partition_fraction,omitempty"`
	Rebargains         int     `json:"rebargains,omitempty"`
	DegradedRebargains int     `json:"degraded_rebargains,omitempty"`
}

// SuitePhase is one epoch of an adaptive cell: the phase's span, the
// load the bargain was re-played from, and the effective parameter
// vector the runtime deployed at the phase boundary.
type SuitePhase struct {
	Name     string  `json:"name,omitempty"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	MeanRate float64 `json:"mean_rate"`
	// Params is the effective vector deployed for the epoch (LMAC slot
	// raising applied, as for the cell-level Params).
	Params      []float64      `json:"params,omitempty"`
	SlotsRaised bool           `json:"slots_raised,omitempty"`
	Analytic    *SuiteAnalytic `json:"analytic,omitempty"`
	Err         string         `json:"error,omitempty"`
}

// SuiteCell is one (scenario, protocol) entry of a suite report: the
// requirements played, the bargained parameters, and the analytic and
// measured outcomes. Err records cells that could not be played (e.g. a
// delay bound no configuration meets) without aborting the suite.
//
// Params is always the effective vector the simulator ran — if LMAC
// slot raising applied, the raised vector, flagged by SlotsRaised.
//
// Adaptive cells carry the static-vs-adaptive comparison whole: Params,
// Analytic and StaticSim describe the one-shot bargain frozen for the
// full run, while Phases and Sim describe the re-bargaining runtime
// that re-plays the game at every phase boundary.
type SuiteCell struct {
	Scenario     string    `json:"scenario"`
	Protocol     Protocol  `json:"protocol"`
	EnergyBudget float64   `json:"energy_budget"`
	MaxDelay     float64   `json:"max_delay"`
	Params       []float64 `json:"params,omitempty"`
	// SlotsRaised marks LMAC cells whose slot count the suite raised to
	// the explicit network's minimum conflict-free schedule — the ring
	// approximation can under-provision slots for irregular topologies.
	SlotsRaised bool           `json:"slots_raised,omitempty"`
	Analytic    *SuiteAnalytic `json:"analytic,omitempty"`
	// Adaptive marks cells played by the online re-bargaining runtime;
	// Phases holds its per-epoch bargains and Sim its measured outcome,
	// with StaticSim the frozen-bargain baseline alongside.
	Adaptive  bool         `json:"adaptive,omitempty"`
	Phases    []SuitePhase `json:"phases,omitempty"`
	Sim       *SuiteSim    `json:"sim,omitempty"`
	StaticSim *SuiteSim    `json:"static_sim,omitempty"`
	Err       string       `json:"error,omitempty"`
}

// SuiteReport is the machine-readable outcome of a scenario×protocol
// matrix run. Equal inputs (specs, protocols, options) produce
// byte-identical JSON, which is what the golden-fixture CI job diffs.
type SuiteReport struct {
	Version   int             `json:"version"`
	Seed      int64           `json:"seed"`
	Duration  float64         `json:"duration"`
	Scenarios []SuiteScenario `json:"scenarios"`
	Protocols []Protocol      `json:"protocols"`
	Cells     []SuiteCell     `json:"cells"`
}

// JSON returns the canonical indented encoding of the report, ending in
// a newline. Field order is fixed by the struct layout and all floats
// marshal via Go's shortest-round-trip formatting, so equal reports
// encode identically on every platform.
func (r *SuiteReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RunSuite plays the full evaluation matrix — every scenario × every
// protocol — in parallel on a worker pool. Each cell maps the scenario
// onto its equivalent analytic ring model, bargains the protocol's
// parameters under the requirements, then replays the bargain at packet
// level on the explicit network under the scenario's traffic model
// (SCPMAC cells stay analytic-only). Cells are independent, so the
// matrix fans out over the pool with the same determinism contract as
// every parallel layer in this module: results are bit-identical to the
// sequential run and ordered scenario-major.
//
// Phased (version-2) scenarios additionally play the adaptive runtime
// when their spec says so or SuiteOptions.Adaptive forces it: the
// bargain is re-played per traffic phase and deployed at the phase
// boundaries by sim.RunPhased, with the frozen static bargain simulated
// alongside as the baseline (see SuiteCell).
//
// Cancelling ctx abandons the suite and returns ctx.Err(). Per-cell
// failures (an unmeetable delay bound, an unschedulable LMAC frame) are
// recorded in the cell's Err field and do not stop the run.
//
// Deprecated: use (*Client).Suite (or SuiteStream for incremental
// delivery); this wrapper delegates to the package-default client and
// behaves identically.
func RunSuite(ctx context.Context, specs []ScenarioSpec, protocols []Protocol, o SuiteOptions) (*SuiteReport, error) {
	return defaultClient().Suite(ctx, SuiteRequest{Scenarios: specs, Protocols: protocols, Options: o})
}

// runSuite is the matrix engine behind Suite and SuiteStream. onCell,
// when non-nil, observes every finished cell exactly once (serialized,
// completion order); a non-nil return cancels the remaining cells.
func (c *Client) runSuite(ctx context.Context, req SuiteRequest, onCell func(SuiteCell) error) (*SuiteReport, error) {
	ctx, err := ready(ctx)
	if err != nil {
		return nil, err
	}
	specs, protocols := req.Scenarios, req.Protocols
	if len(specs) == 0 {
		return nil, fmt.Errorf("edmac: suite needs at least one scenario")
	}
	if len(protocols) == 0 {
		return nil, fmt.Errorf("edmac: suite needs at least one protocol")
	}
	o := req.Options.withDefaults()
	o.Seed ^= c.baseSeed
	if o.Workers < 1 {
		o.Workers = c.workers
	}

	// Materialize every scenario once; cells share the immutable result.
	type matScenario struct {
		spec     scenario.Spec
		mat      *scenario.Materialized
		analytic Scenario
		minSlots int
	}
	mats := make([]matScenario, len(specs))
	needSlots := false
	for _, p := range protocols {
		if p == LMAC {
			needSlots = true
		}
	}
	for i, sp := range specs {
		if err := sp.valid(); err != nil {
			return nil, err
		}
		m, err := sp.spec.Materialize()
		if err != nil {
			return nil, err
		}
		an := analyticScenarioOf(m)
		// Phased.MeanRates blends over the *declared* phase totals; the
		// suite knows its actual run length, so the static bargain is
		// solved for the workload mix the run really plays — the last
		// phase stretched or trailing phases clipped by o.Duration.
		// At the default duration (= the declared total for builtins)
		// the two blends coincide.
		if ph, ok := m.Traffic.(traffic.Phased); ok {
			if r := realizedMeanRate(ph, m.Network, o.Duration); r > 0 {
				an.SampleInterval = 1 / r
			}
		}
		mats[i] = matScenario{spec: sp.spec, mat: m, analytic: an}
		if needSlots {
			mats[i].minSlots = m.Network.MinSlots()
		}
	}

	report := &SuiteReport{
		Version:   scenario.Version,
		Seed:      o.Seed,
		Duration:  o.Duration,
		Scenarios: make([]SuiteScenario, len(mats)),
		Protocols: append([]Protocol(nil), protocols...),
		Cells:     make([]SuiteCell, len(mats)*len(protocols)),
	}
	for i, ms := range mats {
		row := SuiteScenario{
			Name:        ms.spec.Name,
			Description: ms.spec.Description,
			Topology:    ms.spec.Topology.Kind,
			Traffic:     ms.spec.TrafficKind(),
			Nodes:       ms.mat.Network.N(),
			Depth:       ms.mat.Network.Depth(),
			MeanDegree:  ms.mat.Network.MeanDegree(),
			RingDepth:   ms.analytic.Depth,
			RingDensity: ms.analytic.Density,
			MeanRate:    ms.mat.MeanRate(),
		}
		if ms.mat.Network.Lossy() {
			row.Channel = ms.spec.ChannelKind()
			row.MeanLinkPRR = ms.mat.Network.MeanLinkPRR()
		}
		if ms.spec.Failures != nil {
			row.Failures = ms.spec.Failures.Model
		}
		if ms.spec.Battery != nil {
			row.BatteryJ = ms.spec.Battery.CapacityJ
		}
		report.Scenarios[i] = row
	}

	// Streaming gets its own cancellable context so a consumer error can
	// stop cells the pool hasn't started yet.
	cellCtx := ctx
	var cancel context.CancelCauseFunc
	if onCell != nil {
		cellCtx, cancel = context.WithCancelCause(ctx)
		defer cancel(nil)
	}
	var mu sync.Mutex
	var streamErr error
	err = par.ForEach(cellCtx, len(report.Cells), o.Workers, func(idx int) {
		ms := mats[idx/len(protocols)]
		p := protocols[idx%len(protocols)]
		cell := runSuiteCell(cellCtx, ms.spec, ms.mat, ms.analytic, ms.minSlots, p, o)
		report.Cells[idx] = cell
		if onCell == nil {
			return
		}
		// Cells aborted by cancellation are not suite results — a plain
		// Suite call would discard the whole report — so they are never
		// delivered as if they were genuine per-cell failures.
		if cellCtx.Err() != nil {
			return
		}
		// Serialize delivery; after a consumer error nothing more is
		// delivered (cells already in flight still finish computing).
		mu.Lock()
		defer mu.Unlock()
		if streamErr != nil {
			return
		}
		if err := onCell(cell); err != nil {
			streamErr = err
			cancel(err)
		}
	})
	if streamErr != nil {
		return nil, streamErr
	}
	if err != nil {
		return nil, err
	}
	return report, nil
}

// runSuiteCell plays one (scenario, protocol) cell. A done ctx aborts
// the cell's simulations; the cell then carries the context error (the
// suite as a whole is abandoned anyway).
func runSuiteCell(ctx context.Context, spec scenario.Spec, mat *scenario.Materialized, analytic Scenario,
	minSlots int, p Protocol, o SuiteOptions) SuiteCell {
	maxDelay := o.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 3 + 1.2*float64(mat.Network.Depth())
	}
	cell := SuiteCell{
		Scenario:     spec.Name,
		Protocol:     p,
		EnergyBudget: o.EnergyBudget,
		MaxDelay:     maxDelay,
	}
	req := Requirements{EnergyBudget: o.EnergyBudget, MaxDelay: maxDelay}
	res, err := OptimizeRelaxed(p, analytic, req)
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	cell.Params = res.Bargain.Params
	cell.Analytic = &SuiteAnalytic{
		Energy:         res.Bargain.Energy,
		Delay:          res.Bargain.Delay,
		Degenerate:     res.Degenerate,
		BudgetExceeded: res.BudgetExceeded,
	}
	// Two adaptation dimensions: per-phase re-bargaining follows the
	// workload's declared phases, on-death re-bargaining follows the
	// network's liveness. A spec opts into each through its adaptation
	// mode; o.Adaptive forces every dimension a scenario can express.
	phasedAdaptive := len(spec.Phases) > 0 &&
		(o.Adaptive || (spec.Adaptation != nil && spec.Adaptation.Mode == scenario.AdaptPerPhase))
	deathAdaptive := spec.Faulty() &&
		(o.Adaptive || (spec.Adaptation != nil && spec.Adaptation.Mode == scenario.AdaptOnDeath))
	adaptive := phasedAdaptive || deathAdaptive
	if adaptive {
		cell.Adaptive = true
	}
	if phasedAdaptive {
		cell.Phases = suitePhases(spec, mat, p, req, o.Duration, minSlots)
	}
	if p == SCPMAC {
		// Analytic-only protocol: the cell ends at the bargain (and,
		// when adaptive, the per-phase bargains).
		return cell
	}
	// Report the effective vector: what the simulator actually runs,
	// with LMAC slot raising applied — not the raw bargain.
	params, raised := effectiveParams(p, res.Bargain.Params, minSlots)
	cell.Params = params
	cell.SlotsRaised = raised
	capture, captureDB := spec.CaptureConfig()
	cfg := sim.Config{
		Protocol:  string(p),
		Network:   mat.Network,
		Radio:     mat.Radio,
		Params:    opt.Vector(params),
		Traffic:   mat.Traffic,
		Payload:   spec.Payload,
		Duration:  o.Duration,
		Seed:      suiteCellSeed(o.Seed, spec.Name, p),
		Capture:   capture,
		CaptureDB: captureDB,
	}
	cfg.Failures, cfg.Battery = faultConfigOf(spec)
	// Materialize the cell's immutable world once — neighbour tables,
	// link-PRR/gain tables, the LMAC slot plan and the full per-node
	// arrival schedules — and share it between the static baseline and
	// the adaptive re-run below, which differ in parameters only. A
	// failed materialization just falls back to per-run derivation; the
	// run itself will surface any real config error.
	if shared, err := sim.Materialize(cfg); err == nil {
		cfg.Shared = shared
	}
	simRes, err := sim.RunContext(ctx, cfg)
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	static := suiteSimOf(simReportOf(p, params, cfg.Seed, mat.Network.Depth(), spec.Window, mat.Network, simRes))
	if !adaptive {
		cell.Sim = static
		return cell
	}
	// Adaptive runtime: deploy each phase's re-bargained vector at its
	// boundary (and, on faulty scenarios, re-bargain over the survivors
	// at every liveness epoch), on the same network, traffic and seed
	// the static baseline ran, so the two sims differ in parameters
	// only.
	cell.StaticSim = static
	var phases []sim.PhaseConfig
	if phasedAdaptive {
		phases = make([]sim.PhaseConfig, len(cell.Phases))
		for i, ph := range cell.Phases {
			if ph.Err != "" {
				cell.Err = fmt.Sprintf("adaptive phase %d: %s", i, ph.Err)
				return cell
			}
			phases[i] = sim.PhaseConfig{Params: opt.Vector(ph.Params), Until: ph.End}
		}
	}
	var adaptRes *sim.Result
	if spec.Faulty() {
		var reb sim.Rebargainer
		if deathAdaptive {
			reb, err = survivorRebargainer(mat, p, req, minSlots)
			if err != nil {
				cell.Err = err.Error()
				return cell
			}
		}
		adaptRes, err = sim.RunFaultyContext(ctx, cfg, phases, reb)
	} else {
		adaptRes, err = sim.RunPhasedContext(ctx, cfg, phases)
	}
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	cell.Sim = suiteSimOf(simReportOf(p, params, cfg.Seed, mat.Network.Depth(), spec.Window, mat.Network, adaptRes))
	return cell
}

// survivorRebargainer builds the degradation-aware hook a faulty
// adaptive cell hands the fault runner: adapt.ReplaySurvivors re-plays
// the bargain over the alive-reachable fragment, and the suite applies
// the same effective-vector convention (LMAC slot raising) it applies
// to every vector it deploys.
func survivorRebargainer(mat *scenario.Materialized, p Protocol, req Requirements, minSlots int) (sim.Rebargainer, error) {
	hook, err := adapt.ReplaySurvivors(mat, string(p),
		core.Requirements{EnergyBudget: req.EnergyBudget, MaxDelay: req.MaxDelay})
	if err != nil {
		return nil, err
	}
	return func(alive []bool, phase int, at float64) (opt.Vector, error) {
		v, err := hook(alive, phase, at)
		if err != nil {
			return nil, err
		}
		ev, _ := effectiveParams(p, v, minSlots)
		return opt.Vector(ev), nil
	}, nil
}

// suitePhases re-plays the bargain per phase via the adaptation
// controller and converts the plan into report rows with effective
// (slot-raised) parameter vectors.
func suitePhases(spec scenario.Spec, mat *scenario.Materialized, p Protocol,
	req Requirements, duration float64, minSlots int) []SuitePhase {
	plan, err := adapt.PlanPhases(mat, string(p),
		core.Requirements{EnergyBudget: req.EnergyBudget, MaxDelay: req.MaxDelay}, duration)
	if err != nil {
		// A planning failure (not a per-phase one) voids every phase.
		return []SuitePhase{{Err: err.Error()}}
	}
	out := make([]SuitePhase, len(plan.Phases))
	for i, pp := range plan.Phases {
		row := SuitePhase{
			Name:     spec.Phases[pp.Index].Name,
			Start:    pp.Start,
			End:      pp.End,
			MeanRate: pp.MeanRate,
		}
		if pp.Err != nil {
			row.Err = pp.Err.Error()
			out[i] = row
			continue
		}
		row.Params, row.SlotsRaised = effectiveParams(p, pp.Tradeoff.Bargain.Params, minSlots)
		row.Analytic = &SuiteAnalytic{
			Energy:         pp.Tradeoff.Bargain.Energy,
			Delay:          pp.Tradeoff.Bargain.Delay,
			Degenerate:     pp.Tradeoff.Degenerate,
			BudgetExceeded: pp.Tradeoff.BudgetExceeded,
		}
		out[i] = row
	}
	return out
}

// realizedMeanRate returns the duration-weighted mean per-node rate of
// the phase windows a run of the given length actually realizes.
func realizedMeanRate(ph traffic.Phased, net *topology.Network, duration float64) float64 {
	if duration <= 0 {
		return 0
	}
	total := 0.0
	for k, win := range ph.Windows(duration) {
		d := win.Duration()
		if d <= 0 {
			continue
		}
		total += d * traffic.MeanNonSinkRate(ph.Phases[k].Model.MeanRates(net))
	}
	return total / duration
}

// effectiveParams returns the vector the simulator actually runs: a
// copy of the bargained parameters with LMAC's slot count raised to the
// explicit network's minimum conflict-free schedule when the ring
// approximation under-provisioned it. The second result reports whether
// raising applied.
func effectiveParams(p Protocol, bargain []float64, minSlots int) ([]float64, bool) {
	params := append([]float64(nil), bargain...)
	if p == LMAC && len(params) > 0 && int(math.Round(params[0])) < minSlots {
		params[0] = float64(minSlots)
		return params, true
	}
	return params, false
}

// suiteSimOf boxes a SimReport into the suite's measured-side row.
func suiteSimOf(rep SimReport) *SuiteSim {
	return &SuiteSim{
		Seed:             rep.Seed,
		Nodes:            rep.Nodes,
		Generated:        rep.Generated,
		Delivered:        rep.Delivered,
		Duplicates:       rep.Duplicates,
		Dropped:          rep.Dropped,
		Collisions:       rep.Collisions,
		ChannelLosses:    rep.ChannelLosses,
		Captures:         rep.Captures,
		DeliveryRatio:    rep.DeliveryRatio,
		MeanDelay:        finiteOrNil(rep.MeanDelay),
		P95Delay:         finiteOrNil(rep.P95Delay),
		OuterRingDelay:   finiteOrNil(rep.OuterRingDelay),
		BottleneckEnergy: rep.BottleneckEnergy,

		Deaths:             rep.Deaths,
		Recoveries:         rep.Recoveries,
		DeadAtEnd:          rep.DeadAtEnd,
		StrandedPackets:    rep.StrandedPackets,
		DeadNodeFraction:   rep.DeadNodeFraction,
		PartitionFraction:  rep.PartitionFraction,
		Rebargains:         rep.Rebargains,
		DegradedRebargains: rep.DegradedRebargains,
	}
}

// suiteCellSeed derives a cell's simulation seed from the base seed and
// the cell's identity, so cells are mutually decorrelated yet stable
// under registry reordering. The identity is hashed in an unambiguous
// encoding: both components are escaped ('\' → '\\', '/' → '\/') before
// the '/' join, so distinct (scenario, protocol) pairs can never
// collide even when scenario names contain '/'. Names free of both
// bytes hash exactly as the historical unescaped form, which keeps
// committed goldens stable.
func suiteCellSeed(base int64, scenarioName string, p Protocol) int64 {
	h := fnv.New64a()
	writeEscaped(h, scenarioName)
	h.Write([]byte{'/'})
	writeEscaped(h, string(p))
	return base ^ int64(h.Sum64())
}

// writeEscaped writes s with '\' and '/' backslash-escaped, making the
// separator-joined concatenation uniquely decodable.
func writeEscaped(w io.Writer, s string) {
	start := 0
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '/' {
			w.Write([]byte(s[start:i]))
			w.Write([]byte{'\\', c})
			start = i + 1
		}
	}
	w.Write([]byte(s[start:]))
}

// finiteOrNil is the shared non-finite-scrubbing rule; the serve layer
// uses the same one, so every JSON surface agrees.
var finiteOrNil = jsonwire.FiniteOrNil
