package edmac

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/par"
	"github.com/edmac-project/edmac/internal/scenario"
	"github.com/edmac-project/edmac/internal/sim"
)

// SuiteOptions configure a RunSuite matrix run.
type SuiteOptions struct {
	// Duration is the simulated seconds per cell (default 400).
	Duration float64
	// Seed is the base seed; each cell derives its own seed from it and
	// the cell's (scenario, protocol) pair, so cells are decorrelated
	// but the whole suite is reproducible from one number. The zero
	// value is a real seed (see SimOptions.Seed).
	Seed int64
	// Workers bounds the worker pool (one per CPU when < 1).
	Workers int
	// EnergyBudget is the per-cell requirement Ebudget in joules per
	// window (default: the paper's 0.06 J).
	EnergyBudget float64
	// MaxDelay is the per-cell delay bound Lmax in seconds. When 0 it
	// scales with each scenario's depth (3 + 1.2·D), since a bound fit
	// for a 3-hop ring is unreachable for a 24-hop tunnel.
	MaxDelay float64
}

func (o SuiteOptions) withDefaults() SuiteOptions {
	if o.Duration <= 0 {
		o.Duration = 400
	}
	if o.EnergyBudget <= 0 {
		o.EnergyBudget = PaperRequirements().EnergyBudget
	}
	return o
}

// SuiteScenario summarizes one materialized scenario of a suite report.
type SuiteScenario struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Topology    string  `json:"topology"`
	Traffic     string  `json:"traffic"`
	Nodes       int     `json:"nodes"`
	Depth       int     `json:"depth"`
	MeanDegree  float64 `json:"mean_degree"`
	// RingDepth and RingDensity are the equivalent analytic ring model
	// the game was played on.
	RingDepth   int `json:"ring_depth"`
	RingDensity int `json:"ring_density"`
	// MeanRate is the average per-node generation rate in packets/s.
	MeanRate float64 `json:"mean_rate"`
}

// SuiteAnalytic is the game-theoretic side of a suite cell: the Nash
// bargain the framework would deploy.
type SuiteAnalytic struct {
	Energy         float64 `json:"energy"`
	Delay          float64 `json:"delay"`
	Degenerate     bool    `json:"degenerate,omitempty"`
	BudgetExceeded bool    `json:"budget_exceeded,omitempty"`
}

// SuiteSim is the measured side of a suite cell. Delay fields are
// omitted when nothing qualifying was delivered (they would be NaN).
type SuiteSim struct {
	Seed             int64    `json:"seed"`
	Nodes            int      `json:"nodes"`
	Generated        int      `json:"generated"`
	Delivered        int      `json:"delivered"`
	Dropped          int      `json:"dropped"`
	Collisions       int      `json:"collisions"`
	DeliveryRatio    float64  `json:"delivery_ratio"`
	MeanDelay        *float64 `json:"mean_delay,omitempty"`
	P95Delay         *float64 `json:"p95_delay,omitempty"`
	OuterRingDelay   *float64 `json:"outer_ring_delay,omitempty"`
	BottleneckEnergy float64  `json:"bottleneck_energy"`
}

// SuiteCell is one (scenario, protocol) entry of a suite report: the
// requirements played, the bargained parameters, and the analytic and
// measured outcomes. Err records cells that could not be played (e.g. a
// delay bound no configuration meets) without aborting the suite.
type SuiteCell struct {
	Scenario     string    `json:"scenario"`
	Protocol     Protocol  `json:"protocol"`
	EnergyBudget float64   `json:"energy_budget"`
	MaxDelay     float64   `json:"max_delay"`
	Params       []float64 `json:"params,omitempty"`
	// SlotsRaised marks LMAC cells whose slot count the suite raised to
	// the explicit network's minimum conflict-free schedule — the ring
	// approximation can under-provision slots for irregular topologies.
	SlotsRaised bool           `json:"slots_raised,omitempty"`
	Analytic    *SuiteAnalytic `json:"analytic,omitempty"`
	Sim         *SuiteSim      `json:"sim,omitempty"`
	Err         string         `json:"error,omitempty"`
}

// SuiteReport is the machine-readable outcome of a scenario×protocol
// matrix run. Equal inputs (specs, protocols, options) produce
// byte-identical JSON, which is what the golden-fixture CI job diffs.
type SuiteReport struct {
	Version   int             `json:"version"`
	Seed      int64           `json:"seed"`
	Duration  float64         `json:"duration"`
	Scenarios []SuiteScenario `json:"scenarios"`
	Protocols []Protocol      `json:"protocols"`
	Cells     []SuiteCell     `json:"cells"`
}

// JSON returns the canonical indented encoding of the report, ending in
// a newline. Field order is fixed by the struct layout and all floats
// marshal via Go's shortest-round-trip formatting, so equal reports
// encode identically on every platform.
func (r *SuiteReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// RunSuite plays the full evaluation matrix — every scenario × every
// protocol — in parallel on a worker pool. Each cell maps the scenario
// onto its equivalent analytic ring model, bargains the protocol's
// parameters under the requirements, then replays the bargain at packet
// level on the explicit network under the scenario's traffic model
// (SCPMAC cells stay analytic-only). Cells are independent, so the
// matrix fans out over the pool with the same determinism contract as
// every parallel layer in this module: results are bit-identical to the
// sequential run and ordered scenario-major.
//
// Cancelling ctx abandons the suite and returns ctx.Err(). Per-cell
// failures (an unmeetable delay bound, an unschedulable LMAC frame) are
// recorded in the cell's Err field and do not stop the run.
func RunSuite(ctx context.Context, specs []ScenarioSpec, protocols []Protocol, o SuiteOptions) (*SuiteReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("edmac: suite needs at least one scenario")
	}
	if len(protocols) == 0 {
		return nil, fmt.Errorf("edmac: suite needs at least one protocol")
	}
	o = o.withDefaults()

	// Materialize every scenario once; cells share the immutable result.
	type matScenario struct {
		spec     scenario.Spec
		mat      *scenario.Materialized
		analytic Scenario
		minSlots int
	}
	mats := make([]matScenario, len(specs))
	needSlots := false
	for _, p := range protocols {
		if p == LMAC {
			needSlots = true
		}
	}
	for i, sp := range specs {
		if err := sp.valid(); err != nil {
			return nil, err
		}
		m, err := sp.spec.Materialize()
		if err != nil {
			return nil, err
		}
		mats[i] = matScenario{spec: sp.spec, mat: m, analytic: analyticScenarioOf(m)}
		if needSlots {
			mats[i].minSlots = m.Network.MinSlots()
		}
	}

	report := &SuiteReport{
		Version:   scenario.Version,
		Seed:      o.Seed,
		Duration:  o.Duration,
		Scenarios: make([]SuiteScenario, len(mats)),
		Protocols: append([]Protocol(nil), protocols...),
		Cells:     make([]SuiteCell, len(mats)*len(protocols)),
	}
	for i, ms := range mats {
		report.Scenarios[i] = SuiteScenario{
			Name:        ms.spec.Name,
			Description: ms.spec.Description,
			Topology:    ms.spec.Topology.Kind,
			Traffic:     ms.spec.Traffic.Kind,
			Nodes:       ms.mat.Network.N(),
			Depth:       ms.mat.Network.Depth(),
			MeanDegree:  ms.mat.Network.MeanDegree(),
			RingDepth:   ms.analytic.Depth,
			RingDensity: ms.analytic.Density,
			MeanRate:    ms.mat.MeanRate(),
		}
	}

	err := par.ForEach(ctx, len(report.Cells), o.Workers, func(idx int) {
		ms := mats[idx/len(protocols)]
		p := protocols[idx%len(protocols)]
		report.Cells[idx] = runSuiteCell(ms.spec, ms.mat, ms.analytic, ms.minSlots, p, o)
	})
	if err != nil {
		return nil, err
	}
	return report, nil
}

// runSuiteCell plays one (scenario, protocol) cell.
func runSuiteCell(spec scenario.Spec, mat *scenario.Materialized, analytic Scenario,
	minSlots int, p Protocol, o SuiteOptions) SuiteCell {
	maxDelay := o.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 3 + 1.2*float64(mat.Network.Depth())
	}
	cell := SuiteCell{
		Scenario:     spec.Name,
		Protocol:     p,
		EnergyBudget: o.EnergyBudget,
		MaxDelay:     maxDelay,
	}
	res, err := OptimizeRelaxed(p, analytic, Requirements{EnergyBudget: o.EnergyBudget, MaxDelay: maxDelay})
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	cell.Params = res.Bargain.Params
	cell.Analytic = &SuiteAnalytic{
		Energy:         res.Bargain.Energy,
		Delay:          res.Bargain.Delay,
		Degenerate:     res.Degenerate,
		BudgetExceeded: res.BudgetExceeded,
	}
	if p == SCPMAC {
		// Analytic-only protocol: the cell ends at the bargain.
		return cell
	}
	params := append([]float64(nil), cell.Params...)
	if p == LMAC && int(math.Round(params[0])) < minSlots {
		params[0] = float64(minSlots)
		cell.SlotsRaised = true
	}
	cfg := sim.Config{
		Protocol: string(p),
		Network:  mat.Network,
		Radio:    mat.Radio,
		Params:   opt.Vector(params),
		Traffic:  mat.Traffic,
		Payload:  spec.Payload,
		Duration: o.Duration,
		Seed:     suiteCellSeed(o.Seed, spec.Name, p),
	}
	simRes, err := sim.Run(cfg)
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	rep := simReportOf(p, params, cfg.Seed, mat.Network.Depth(), spec.Window, mat.Network, simRes)
	cell.Sim = &SuiteSim{
		Seed:             rep.Seed,
		Nodes:            rep.Nodes,
		Generated:        rep.Generated,
		Delivered:        rep.Delivered,
		Dropped:          rep.Dropped,
		Collisions:       rep.Collisions,
		DeliveryRatio:    rep.DeliveryRatio,
		MeanDelay:        finiteOrNil(rep.MeanDelay),
		P95Delay:         finiteOrNil(rep.P95Delay),
		OuterRingDelay:   finiteOrNil(rep.OuterRingDelay),
		BottleneckEnergy: rep.BottleneckEnergy,
	}
	return cell
}

// suiteCellSeed derives a cell's simulation seed from the base seed and
// the cell's identity, so cells are mutually decorrelated yet stable
// under registry reordering.
func suiteCellSeed(base int64, scenarioName string, p Protocol) int64 {
	h := fnv.New64a()
	h.Write([]byte(scenarioName))
	h.Write([]byte{'/'})
	h.Write([]byte(p))
	return base ^ int64(h.Sum64())
}

// finiteOrNil boxes a float for JSON, dropping NaN/Inf values (which
// encoding/json rejects) by omission.
func finiteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
