# Developer entry points. `make bench` refreshes the "current" entry of
# BENCH_results.json so the perf trajectory of the figure and simulator
# benchmarks is tracked across PRs; the "seed-baseline" entry records the
# seed repo and is never overwritten by it.

GO        ?= go
BENCH     ?= Figure|Frontier|Sweep|SimValidation|SimulatorEventRate|SimulateBatch
BENCHTIME ?= 1s

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet build test

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) . \
	  | $(GO) run ./tools/benchjson -o BENCH_results.json -label current \
	      -note "make bench ($(BENCH), $(BENCHTIME))"
