# Developer entry points. `make bench` refreshes the "current" entry of
# BENCH_results.json so the perf trajectory of the figure and simulator
# benchmarks is tracked across PRs; the "seed-baseline" entry records the
# seed repo and is never overwritten by it. `make bench-gate` fails when
# a hot benchmark regresses beyond GATE_TOL against the committed
# "ci-baseline" entry — in ns/op, allocs/op, or (for the simulator
# benchmarks, which report it) events/sec (refresh the baseline with
# `make bench-baseline` whenever a PR intentionally moves the needle).
# SimulatorEventRate matches all three channel variants: the perfect,
# Lossy and Faulty paths are gated together.

GO         ?= go
BENCH      ?= Figure|Frontier|Sweep|SimValidation|SimulatorEventRate(Lossy|Faulty)?|SimulateBatch|ServeOptimizeCached|JobsSubmitPoll
BENCHTIME  ?= 1s
GATE_BENCH ?= SimulatorEventRate(Lossy|Faulty)?|ServeOptimizeCached|JobsSubmitPoll
GATE_TOL   ?= 0.15

FUZZTIME ?= 30s

.PHONY: build test race vet fmt lint lint-escape escape-golden api-golden gate-coverage fuzz bench bench-gate bench-baseline suite golden suite-golden check fix-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
	  echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The repo's own analyzer suite (cmd/edvet): deterministic core,
# frame lifetimes, wire tags, context discipline, hot-path allocation
# hygiene. Non-zero on any diagnostic, including malformed or
# unexplained //edvet:ignore directives. See the README's "Invariants
# & static analysis" section.
lint: vet
	$(GO) run ./cmd/edvet ./...

# The compiler-fact gate: escape/heap decisions inside //edvet:hotpath
# functions must match the committed golden (the pinned toolchain in
# go.mod keeps the facts runner-stable). Fails on any drift.
lint-escape:
	$(GO) run ./cmd/edvet -escape

# Regenerate the escape golden after an intentional hot-path change —
# the mirror of `make golden` for compiler facts. Commit the result.
escape-golden:
	$(GO) run ./cmd/edvet -escape -update

# Regenerate the API-surface golden after an intentional change to the
# root package's exported surface. Commit the result.
api-golden:
	$(GO) run ./cmd/edvet -update

# Guard against a GATE_BENCH typo silently gating nothing: every
# top-level alternative of the gate regexp must match a benchmark that
# actually exists in the test binaries.
gate-coverage:
	$(GO) test -run '^$$' -list 'Benchmark.*' ./... \
	  | $(GO) run ./tools/benchjson -covered '$(GATE_BENCH)'

check: fmt lint build test

# What to run before pushing a fix: format gate, vet + edvet, build,
# tests. Alias of check, named for intent.
fix-check: check

# Fuzz the strict scenario parser (bump FUZZTIME for longer local
# campaigns; CI runs the default as a smoke job). Crashers land in
# internal/scenario/testdata/fuzz/ — commit them as regression inputs.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/scenario

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) . \
	  | $(GO) run ./tools/benchjson -o BENCH_results.json -label current \
	      -note "make bench ($(BENCH), $(BENCHTIME))"

bench-gate:
	$(GO) test -run '^$$' -bench '$(GATE_BENCH)' -benchmem -benchtime $(BENCHTIME) -count 3 . \
	  | $(GO) run ./tools/benchjson -o BENCH_results.json -label ci-current \
	      -note "make bench-gate ($(GATE_BENCH), $(BENCHTIME) x3)" \
	      -gate ci-baseline -gate-match '$(GATE_BENCH)' -gate-tol $(GATE_TOL)

bench-baseline:
	$(GO) test -run '^$$' -bench '$(GATE_BENCH)' -benchmem -benchtime $(BENCHTIME) -count 3 . \
	  | $(GO) run ./tools/benchjson -o BENCH_results.json -label ci-baseline \
	      -note "make bench-baseline ($(GATE_BENCH), $(BENCHTIME) x3)"

# The scenario-suite determinism gate: regenerate the full builtin
# matrix and fail on any byte drift from the committed golden report.
suite:
	$(GO) run ./cmd/edsim suite -check cmd/edsim/testdata/suite_golden.json

# Regenerate the committed suite golden deterministically. Every PR that
# intentionally moves suite output runs this and commits the result; CI
# runs it too and fails on a dirty diff, so the golden can never drift
# from the code that claims to produce it.
golden:
	$(GO) run ./cmd/edsim suite -out cmd/edsim/testdata/suite_golden.json

# Back-compat alias for the old target name.
suite-golden: golden
