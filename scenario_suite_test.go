package edmac_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

// TestBuiltinScenarioRegistry asserts the public registry surface: at
// least eight uniquely named scenarios, each round-trippable through its
// own JSON and resolvable by name.
func TestBuiltinScenarioRegistry(t *testing.T) {
	specs := edmac.BuiltinScenarios()
	if len(specs) < 8 {
		t.Fatalf("only %d builtin scenarios; the registry promises at least 8", len(specs))
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if sp.Name() == "" || seen[sp.Name()] {
			t.Fatalf("bad or duplicate scenario name %q", sp.Name())
		}
		seen[sp.Name()] = true
		if _, ok := edmac.BuiltinScenario(sp.Name()); !ok {
			t.Errorf("BuiltinScenario(%q) not found", sp.Name())
		}
		data, err := sp.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", sp.Name(), err)
		}
		back, err := edmac.ParseScenario(data)
		if err != nil {
			t.Fatalf("%s: ParseScenario: %v", sp.Name(), err)
		}
		if back.Name() != sp.Name() || back.TopologyKind() != sp.TopologyKind() || back.TrafficKind() != sp.TrafficKind() {
			t.Errorf("%s: round trip changed identity", sp.Name())
		}
	}
	if _, ok := edmac.BuiltinScenario("no-such"); ok {
		t.Error("phantom scenario resolved")
	}
}

// TestLoadScenario asserts a spec written to disk loads and simulates.
func TestLoadScenario(t *testing.T) {
	sp, _ := edmac.BuiltinScenario("tunnel-chain")
	data, err := sp.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := edmac.LoadScenario(path)
	if err != nil {
		t.Fatalf("LoadScenario: %v", err)
	}
	if loaded.Name() != sp.Name() {
		t.Fatalf("loaded %q, want %q", loaded.Name(), sp.Name())
	}
	if _, err := edmac.LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

// TestScenarioEquivalentRing asserts the analytic mapping of a spec is a
// valid model environment the game can actually be played in.
func TestScenarioEquivalentRing(t *testing.T) {
	sp, _ := edmac.BuiltinScenario("grid-campus")
	s, err := sp.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth < 1 || s.Density < 1 || s.SampleInterval <= 0 {
		t.Fatalf("degenerate analytic scenario %+v", s)
	}
	if _, err := edmac.Params(edmac.XMAC, s); err != nil {
		t.Fatalf("analytic model rejects the mapped scenario: %v", err)
	}
}

// TestSimulateScenario asserts scenario simulation reproducibility and
// its rejection cases.
func TestSimulateScenario(t *testing.T) {
	sp, _ := edmac.BuiltinScenario("disk-bursty")
	opts := edmac.SimOptions{Duration: 250, Seed: 9}
	a, err := edmac.SimulateScenario(edmac.XMAC, sp, []float64{0.3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed != 9 {
		t.Errorf("report seed %d, want 9", a.Seed)
	}
	if a.Generated == 0 {
		t.Error("bursty scenario generated nothing")
	}
	b, err := edmac.SimulateScenario(edmac.XMAC, sp, []float64{0.3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("equal seeds diverged:\n%+v\n%+v", a, b)
	}
	opts.Seed = 10
	c, err := edmac.SimulateScenario(edmac.XMAC, sp, []float64{0.3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Collisions, c.Collisions) && a.Generated == c.Generated && a.MeanDelay == c.MeanDelay {
		t.Error("different seeds produced an identical run")
	}

	if _, err := edmac.SimulateScenario(edmac.SCPMAC, sp, []float64{0.3}, opts); err == nil {
		t.Error("scpmac simulated")
	}
	if _, err := edmac.SimulateScenario(edmac.XMAC, edmac.ScenarioSpec{}, []float64{0.3}, opts); err == nil {
		t.Error("zero spec simulated")
	}
	if _, err := edmac.SimulateScenario(edmac.DMAC, sp, []float64{0.3}, opts); err == nil {
		t.Error("wrong arity accepted")
	}
}

// TestRunSuiteDeterminism asserts the suite contract: byte-identical
// JSON for equal inputs, regardless of worker count.
func TestRunSuiteDeterminism(t *testing.T) {
	specs := []edmac.ScenarioSpec{}
	for _, name := range []string{"ring-baseline", "grid-eventwatch"} {
		sp, ok := edmac.BuiltinScenario(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		specs = append(specs, sp)
	}
	protocols := []edmac.Protocol{edmac.XMAC, edmac.LMAC, edmac.SCPMAC}
	opts := edmac.SuiteOptions{Duration: 200, Seed: 3}

	parallel, err := edmac.RunSuite(context.Background(), specs, protocols, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsSeq := opts
	optsSeq.Workers = 1
	sequential, err := edmac.RunSuite(context.Background(), specs, protocols, optsSeq)
	if err != nil {
		t.Fatal(err)
	}
	a, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sequential.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("parallel and sequential suite JSON differ")
	}
	if len(parallel.Cells) != len(specs)*len(protocols) {
		t.Errorf("%d cells, want %d", len(parallel.Cells), len(specs)*len(protocols))
	}
	for _, c := range parallel.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed: %s", c.Scenario, c.Protocol, c.Err)
		}
		if c.Protocol != edmac.SCPMAC && c.Sim == nil {
			t.Errorf("cell %s/%s has no simulation", c.Scenario, c.Protocol)
		}
		if c.Protocol == edmac.SCPMAC && c.Sim != nil {
			t.Errorf("scpmac cell %s simulated", c.Scenario)
		}
	}
}

// TestRunSuiteInputs asserts input validation and cancellation.
func TestRunSuiteInputs(t *testing.T) {
	sp, _ := edmac.BuiltinScenario("ring-baseline")
	if _, err := edmac.RunSuite(context.Background(), nil, edmac.Protocols(), edmac.SuiteOptions{}); err == nil {
		t.Error("empty scenario list accepted")
	}
	if _, err := edmac.RunSuite(context.Background(), []edmac.ScenarioSpec{sp}, nil, edmac.SuiteOptions{}); err == nil {
		t.Error("empty protocol list accepted")
	}
	if _, err := edmac.RunSuite(context.Background(), []edmac.ScenarioSpec{{}}, edmac.Protocols(), edmac.SuiteOptions{}); err == nil {
		t.Error("zero spec accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := edmac.RunSuite(ctx, []edmac.ScenarioSpec{sp}, edmac.Protocols(), edmac.SuiteOptions{Duration: 60}); err == nil {
		t.Error("cancelled suite returned a report")
	}
}
