package edmac

// This file is the module's one option-defaulting path. Every options
// struct in the public API (SimOptions, SuiteOptions) and the Client's
// own option resolution normalize through the helpers below against the
// documented constants, so "what does an unset field mean" has exactly
// one answer — pinned by TestEffectiveDefaults.

const (
	// DefaultSimDuration is the simulated seconds of a Simulate /
	// Validate run whose SimOptions leave Duration unset.
	DefaultSimDuration = 1800.0
	// DefaultSuiteDuration is the simulated seconds per suite cell when
	// SuiteOptions leave Duration unset. Suites trade per-cell length
	// for matrix breadth, hence the shorter window.
	DefaultSuiteDuration = 400.0
	// DefaultCacheSize is the result-cache capacity (entries) the serve
	// layer and WithCache-enabled clients use unless told otherwise.
	DefaultCacheSize = 256
)

// DefaultEnergyBudget is the per-cell energy requirement a suite falls
// back to: the paper's headline 0.06 J per window.
func DefaultEnergyBudget() float64 { return PaperRequirements().EnergyBudget }

// defaultPositive is the one defaulting rule: a positive value stands,
// anything else (zero value, nonsense negatives) means "use the
// default". Fields where zero is meaningful — SimOptions.Seed,
// SuiteOptions.MaxDelay's depth-scaling convention — are deliberately
// not routed through it.
func defaultPositive(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

// withDefaults fills unset simulation options. Note that Seed is
// deliberately not defaulted: 0 is a valid seed (see the
// SimOptions.Seed convention).
func (o SimOptions) withDefaults() SimOptions {
	o.Duration = defaultPositive(o.Duration, DefaultSimDuration)
	return o
}

// withDefaults fills unset suite options. Seed keeps the SimOptions
// convention (0 is a real seed); MaxDelay 0 means "scale with each
// scenario's depth" and Workers < 1 means "one per CPU", so neither is
// defaulted here.
func (o SuiteOptions) withDefaults() SuiteOptions {
	o.Duration = defaultPositive(o.Duration, DefaultSuiteDuration)
	o.EnergyBudget = defaultPositive(o.EnergyBudget, DefaultEnergyBudget())
	return o
}
