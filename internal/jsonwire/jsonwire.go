// Package jsonwire holds the two JSON-wire conventions shared by the
// edmac facade and the serve layer, so the Client's result cache and
// the HTTP response cache can never disagree on what "identical
// request" means, and every encoder scrubs non-finite floats the same
// way.
package jsonwire

import (
	"encoding/json"
	"math"
)

// CacheKey canonicalizes a request value into a cache key: the
// operation name plus the value's canonical JSON (struct field order
// is fixed, floats encode shortest-round-trip), so equal requests —
// however their original wire JSON was ordered or spaced — collide
// deliberately. The false result means the value does not marshal and
// must not be cached.
func CacheKey(op string, v any) (string, bool) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", false
	}
	return op + ":" + string(data), true
}

// FiniteOrNil boxes a float for JSON, dropping NaN/Inf values (which
// encoding/json rejects) by omission.
func FiniteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}
