package adapt

import (
	"testing"

	"github.com/edmac-project/edmac/internal/core"
	"github.com/edmac-project/edmac/internal/scenario"
)

func materialized(t *testing.T, name string) *scenario.Materialized {
	t.Helper()
	spec, ok := scenario.ByName(name)
	if !ok {
		t.Fatalf("builtin %q missing", name)
	}
	m, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPlanPhases asserts the controller re-bargains every phase the run
// reaches from that phase's own load, and that the surge phase actually
// deploys different parameters from the calm ones — the point of
// adapting.
func TestPlanPhases(t *testing.T) {
	m := materialized(t, "meadow-stormcycle")
	req := core.Requirements{EnergyBudget: 0.06, MaxDelay: 3 + 1.2*float64(m.Network.Depth())}
	plan, err := PlanPhases(m, "xmac", req, 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Failed(); err != nil {
		t.Fatal(err)
	}
	if len(plan.Phases) != 3 {
		t.Fatalf("%d phases planned, want 3", len(plan.Phases))
	}
	wantSpans := [][2]float64{{0, 160}, {160, 240}, {240, 400}}
	for i, ph := range plan.Phases {
		if ph.Start != wantSpans[i][0] || ph.End != wantSpans[i][1] {
			t.Errorf("phase %d span [%v, %v], want %v", i, ph.Start, ph.End, wantSpans[i])
		}
		if ph.MeanRate <= 0 {
			t.Errorf("phase %d mean rate %v", i, ph.MeanRate)
		}
		if len(ph.Tradeoff.Bargain.Params) == 0 {
			t.Errorf("phase %d bargained no parameters", i)
		}
	}
	calm, storm := plan.Phases[0], plan.Phases[1]
	if storm.MeanRate <= calm.MeanRate {
		t.Fatalf("storm rate %v not above calm rate %v", storm.MeanRate, calm.MeanRate)
	}
	if storm.Tradeoff.Bargain.Params[0] >= calm.Tradeoff.Bargain.Params[0] {
		t.Errorf("storm wakeup interval %v not below calm %v: controller did not adapt",
			storm.Tradeoff.Bargain.Params[0], calm.Tradeoff.Bargain.Params[0])
	}
	// Symmetric calm phases re-bargain to the same point.
	if got, want := plan.Phases[2].Tradeoff.Bargain.Params[0], calm.Tradeoff.Bargain.Params[0]; got != want {
		t.Errorf("identical loads bargained differently: %v vs %v", got, want)
	}
}

// TestPlanPhasesShortRun asserts windows the run never reaches are
// omitted.
func TestPlanPhasesShortRun(t *testing.T) {
	m := materialized(t, "meadow-stormcycle")
	req := core.Requirements{EnergyBudget: 0.06, MaxDelay: 12}
	plan, err := PlanPhases(m, "xmac", req, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Phases) != 1 {
		t.Fatalf("%d phases for a run inside phase 0, want 1", len(plan.Phases))
	}
	if plan.Phases[0].End != 100 {
		t.Errorf("clipped phase ends at %v, want 100", plan.Phases[0].End)
	}
}

// TestPlanPhasesRejects exercises the error paths.
func TestPlanPhasesRejects(t *testing.T) {
	req := core.Requirements{EnergyBudget: 0.06, MaxDelay: 10}
	if _, err := PlanPhases(nil, "xmac", req, 100); err == nil {
		t.Error("nil scenario accepted")
	}
	stationary := materialized(t, "ring-baseline")
	if _, err := PlanPhases(stationary, "xmac", req, 100); err == nil {
		t.Error("stationary scenario accepted")
	}
	phased := materialized(t, "meadow-stormcycle")
	if _, err := PlanPhases(phased, "xmac", req, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := PlanPhases(phased, "xmac", core.Requirements{}, 100); err == nil {
		t.Error("zero requirements accepted")
	}
	// An unknown protocol fails per phase, not wholesale: the plan
	// reports it through Failed.
	plan, err := PlanPhases(phased, "nomac", req, 400)
	if err != nil {
		t.Fatalf("unknown protocol: %v", err)
	}
	if plan.Failed() == nil {
		t.Error("unknown protocol planned successfully")
	}
}
