package adapt

import (
	"strings"
	"testing"

	"github.com/edmac-project/edmac/internal/core"
	"github.com/edmac-project/edmac/internal/topology"
)

// TestReplaySurvivors drives the degradation-aware hook directly: the
// full-liveness bargain matches the static one, a degraded liveness
// vector re-bargains on a shallower, sparser fragment, and an empty
// fragment errors so the runtime can fall back to its last-good vector.
func TestReplaySurvivors(t *testing.T) {
	m := materialized(t, "ring-attrition")
	req := core.Requirements{EnergyBudget: 0.06, MaxDelay: 3 + 1.2*float64(m.Network.Depth())}
	reb, err := ReplaySurvivors(m, "xmac", req)
	if err != nil {
		t.Fatal(err)
	}

	n := m.Network.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	full, err := reb(alive, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 || full[0] <= 0 {
		t.Fatalf("full-liveness vector %v", full)
	}
	// Full liveness replays the same game the static bridge plays.
	static, err := replay("xmac", m, m.MeanRate(), req)
	if err != nil {
		t.Fatal(err)
	}
	if full[0] != static.Bargain.Params[0] {
		t.Errorf("full-liveness rebargain %v differs from the static bargain %v",
			full, static.Bargain.Params)
	}

	// Kill the two outermost rings' worth of nodes: the fragment
	// shrinks to ring 1 and the bargain moves.
	for i := 1; i < n; i++ {
		if m.Network.Ring(topology.NodeID(i)) > 1 {
			alive[i] = false
		}
	}
	degraded, err := reb(alive, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if degraded[0] == full[0] {
		t.Errorf("bargain did not move when the network collapsed to ring 1: %v", degraded)
	}

	// No survivors at all: the hook must error, not fabricate a vector.
	for i := 1; i < n; i++ {
		alive[i] = false
	}
	if _, err := reb(alive, 0, 200); err == nil {
		t.Error("empty fragment produced a vector")
	} else if !strings.Contains(err.Error(), "sink") {
		t.Errorf("empty-fragment error %q does not mention the sink", err)
	}
}

// TestReplaySurvivorsRejects pins the plan-time failure modes.
func TestReplaySurvivorsRejects(t *testing.T) {
	m := materialized(t, "ring-attrition")
	req := core.Requirements{EnergyBudget: 0.06, MaxDelay: 6.6}
	if _, err := ReplaySurvivors(nil, "xmac", req); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := ReplaySurvivors(m, "no-such-mac", req); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := ReplaySurvivors(m, "xmac", core.Requirements{}); err == nil {
		t.Error("zero requirements accepted")
	}
}
