package adapt

import (
	"fmt"
	"math"

	"github.com/edmac-project/edmac/internal/core"
	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/scenario"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// ReplaySurvivors returns a degradation-aware re-bargaining hook with
// the signature of sim.Rebargainer: at every liveness epoch of a
// fault-injected run it re-plays the Nash bargain over the surviving
// topology instead of the full network the static vector was bargained
// for.
//
// The surviving topology is the alive-reachable fragment of the
// routing tree (topology.Network.SurvivorStats): nodes behind a dead
// relay cannot deliver whatever the MAC does, so they are excluded
// from the equivalent ring the game is re-played on. The fragment's
// depth and induced mean degree replace the full network's, the
// sampling rate is the active phase's (falling back to the long-run
// mean for stationary traffic), and the game is solved in relaxed mode
// — degradation should deploy the best-effort point, flagged, not
// abort the runtime.
//
// Degradation also tightens the energy requirement: the effective
// budget is the application's scaled by the survivor fraction (floored
// at a quarter so a decimated network still gets a playable game).
// Deaths mean the survivors must stretch their batteries to keep the
// deployment reporting, so the bargain's feasible set shrinks toward
// the energy axis and the re-played game lands on a thriftier point —
// the defensive posture that slows battery attrition. A full-liveness
// call leaves the requirement untouched and reproduces the static
// bargain exactly.
//
// An epoch whose fragment is empty (the sink cut off from everything)
// returns an error; the fault runner then degrades to the last-good
// vector, which is the documented convention for infeasible
// re-bargains.
func ReplaySurvivors(m *scenario.Materialized, protocol string, req core.Requirements) (func(alive []bool, phase int, at float64) (opt.Vector, error), error) {
	if m == nil {
		return nil, fmt.Errorf("adapt: nil scenario")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Probe the full-topology game once so an unusable (protocol,
	// scenario) pairing fails at plan time, not mid-run.
	if _, err := replay(protocol, m, m.MeanRate(), req); err != nil {
		return nil, err
	}
	phased, _ := m.Traffic.(traffic.Phased)
	meanRate := m.MeanRate() // hoisted: the stationary fallback is epoch-invariant
	return func(alive []bool, phase int, at float64) (opt.Vector, error) {
		st := m.Network.SurvivorStats(alive)
		if st.Reachable == 0 {
			return nil, fmt.Errorf("adapt: no node can reach the sink at t=%v", at)
		}
		density := int(math.Round(st.MeanDegree))
		if density < 1 {
			density = 1
		}
		rate := meanRate
		if phased.Phases != nil && phase >= 0 && phase < len(phased.Phases) {
			rate = traffic.MeanNonSinkRate(phased.Phases[phase].Model.MeanRates(m.Network))
		}
		effReq := req
		if frac := float64(st.Reachable) / float64(m.Network.N()-1); frac < 1 {
			effReq.EnergyBudget = req.EnergyBudget * math.Max(frac, 0.25)
		}
		env := macmodel.Env{
			Radio:      m.Radio,
			Rings:      topology.RingModel{Depth: st.Depth, Density: density},
			SampleRate: rate,
			Window:     m.Spec.Window,
			Payload:    m.Spec.Payload,
		}
		if prr := m.Network.MeanLinkPRR(); prr < 1 {
			env.LinkPRR = prr
		}
		model, err := macmodel.New(protocol, env)
		if err != nil {
			return nil, err
		}
		res, err := core.OptimizeRelaxed(model, effReq)
		if err != nil {
			return nil, err
		}
		return res.Bargain.Params, nil
	}, nil
}
