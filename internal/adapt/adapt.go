// Package adapt is the online re-bargaining controller: it re-plays the
// Nash bargaining game of internal/core once per traffic phase of a
// non-stationary scenario, producing the per-epoch MAC parameter
// vectors an adaptive runtime (sim.RunPhased) deploys at the phase
// boundaries.
//
// The controller closes the loop the paper motivates but plays offline:
// when the workload shifts, the old bargain sits at the wrong point of
// the energy-delay frontier, so the game is re-solved from the new
// phase's mean rates while the deployment keeps running. The static
// bargain — one solve from the long-run mean — is the baseline the
// adaptive plan is compared against.
package adapt

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/core"
	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/scenario"
	"github.com/edmac-project/edmac/internal/traffic"
)

// PhasePlan is one epoch of an adaptive plan: the phase's span, the
// load the controller re-bargained from, and the resulting trade-off.
type PhasePlan struct {
	// Index is the phase's position in the scenario's phase list.
	Index int
	// Start and End delimit the epoch in absolute run seconds.
	Start, End float64
	// MeanRate is the phase's mean per-node generation rate in packets
	// per second over the non-sink nodes — the sampling rate the game
	// was re-played with.
	MeanRate float64
	// Tradeoff is the re-played game's outcome; its Bargain carries the
	// parameter vector to deploy for this epoch.
	Tradeoff core.Tradeoff
	// Err records a phase whose game could not be played (e.g. a load
	// outside the model's admissible range) without voiding the plan's
	// other phases.
	Err error
}

// Plan is a full adaptive schedule for one (scenario, protocol) pair.
type Plan struct {
	// Protocol is the model name the plan was bargained for.
	Protocol string
	// Requirements echoes the application inputs of every re-play.
	Requirements core.Requirements
	// Phases holds one entry per phase window the run reaches, in
	// chronological order.
	Phases []PhasePlan
}

// Failed returns the first phase error in the plan, if any.
func (p *Plan) Failed() error {
	for _, ph := range p.Phases {
		if ph.Err != nil {
			return fmt.Errorf("adapt: phase %d: %w", ph.Index, ph.Err)
		}
	}
	return nil
}

// PlanPhases re-plays the bargain once per phase of a materialized
// phased scenario: phase k's game is built from the same equivalent
// ring, radio, window and payload as the static bridge, but with the
// sampling rate taken from phase k's own mean rates rather than the
// long-run blend. duration is the run length the plan must cover;
// windows the run never reaches are omitted.
//
// The scenario's traffic must be a traffic.Phased model; anything else
// has a single stationary phase and nothing to adapt to.
func PlanPhases(m *scenario.Materialized, protocol string, req core.Requirements, duration float64) (*Plan, error) {
	if m == nil {
		return nil, fmt.Errorf("adapt: nil scenario")
	}
	phased, ok := m.Traffic.(traffic.Phased)
	if !ok {
		return nil, fmt.Errorf("adapt: scenario %s has stationary %q traffic, nothing to adapt to",
			m.Spec.Name, m.Traffic.Kind())
	}
	if duration <= 0 {
		return nil, fmt.Errorf("adapt: duration %v must be positive", duration)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Protocol: protocol, Requirements: req}
	for k, win := range phased.Windows(duration) {
		if win.Duration() <= 0 {
			continue
		}
		pp := PhasePlan{Index: k, Start: win.Start, End: win.End}
		pp.MeanRate = traffic.MeanNonSinkRate(phased.Phases[k].Model.MeanRates(m.Network))
		pp.Tradeoff, pp.Err = replay(protocol, m, pp.MeanRate, req)
		plan.Phases = append(plan.Phases, pp)
	}
	if len(plan.Phases) == 0 {
		return nil, fmt.Errorf("adapt: scenario %s has no phase inside a %v s run", m.Spec.Name, duration)
	}
	return plan, nil
}

// replay solves one phase's game in relaxed mode — a surge that makes
// the budget unattainable should deploy the best-effort point, flagged,
// rather than abort the runtime.
func replay(protocol string, m *scenario.Materialized, rate float64, req core.Requirements) (core.Tradeoff, error) {
	model, err := buildModel(protocol, m, rate)
	if err != nil {
		return core.Tradeoff{}, err
	}
	return core.OptimizeRelaxed(model, req)
}

// buildModel constructs the analytic model a phase's game is played on.
func buildModel(protocol string, m *scenario.Materialized, rate float64) (macmodel.Model, error) {
	env := macmodel.Env{
		Radio:      m.Radio,
		Rings:      m.EquivalentRing(),
		SampleRate: rate,
		Window:     m.Spec.Window,
		Payload:    m.Spec.Payload,
	}
	// Per-phase games feel link quality exactly like the static bridge:
	// the network's mean link PRR (1, i.e. unset, on perfect channels).
	if prr := m.Network.MeanLinkPRR(); prr < 1 {
		env.LinkPRR = prr
	}
	return macmodel.New(protocol, env)
}
