package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// ringSpacing is the radial distance between consecutive rings in
// deterministic placements, kept below the unit radio range so that every
// ring-d node has a ring-(d−1) neighbour.
const ringSpacing = 0.9

// Rings places nodes deterministically according to the ring model:
// ring d receives (2d−1)·(density+1) nodes on a circle of radius
// d·ringSpacing around the sink at the origin. Each ring-d node is
// angularly aligned (within a small offset) with an actual ring-(d−1)
// node, so it always has a previous-ring neighbour within radio range,
// while the 2·ringSpacing radial gap to ring d−2 rules out shortcuts.
// The unit-disk graph (range 1.0) therefore has BFS rings exactly equal
// to the model rings, making it the canonical bridge between the
// analytic model and the simulator.
func Rings(m RingModel) (*Network, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	positions := []Point{{0, 0}}
	var prevAngles []float64
	for d := 1; d <= m.Depth; d++ {
		count := m.NodesAt(d)
		radius := float64(d) * ringSpacing
		angles := make([]float64, 0, count)
		if d == 1 {
			for k := 0; k < count; k++ {
				angles = append(angles, 2*math.Pi*float64(k)/float64(count))
			}
		} else {
			// Anchor node k to the ring-(d−1) node k mod len(prevAngles);
			// extra copies fan out by ±delta, keeping the chord to the
			// anchor well under sqrt(1 − ringSpacing²).
			delta := 0.2 / radius
			na := len(prevAngles)
			for k := 0; k < count; k++ {
				group := k / na
				off := float64((group+1)/2) * delta
				if group%2 == 0 {
					off = -off
				}
				if group == 0 {
					off = 0
				}
				angles = append(angles, prevAngles[k%na]+off)
			}
		}
		for _, theta := range angles {
			positions = append(positions, Point{radius * math.Cos(theta), radius * math.Sin(theta)})
		}
		prevAngles = angles
	}
	return New(positions, 1.0)
}

// buildConnected samples placements until the unit-disk graph comes out
// connected, retrying up to connectAttempts times — the shared policy of
// every random generator. kind names the family in the give-up error.
func buildConnected(kind string, sample func() []Point) (*Network, error) {
	var lastErr error
	for a := 0; a < connectAttempts; a++ {
		net, err := New(sample(), 1.0)
		if err == nil {
			return net, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("topology: %s sample stayed disconnected after %d attempts: %w", kind, connectAttempts, lastErr)
}

// Disk scatters n nodes uniformly at random over a disk of the given
// radius (in radio-range units) centred on the sink. Generation is
// deterministic for a given rng state. Disk retries a few times if the
// sample happens to be disconnected and returns the underlying error if
// connectivity cannot be achieved.
func Disk(n int, radius float64, rng *rand.Rand) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: disk needs at least 1 node, got %d", n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("topology: disk radius %v must be positive", radius)
	}
	return buildConnected("disk", func() []Point {
		positions := make([]Point, 0, n+1)
		positions = append(positions, Point{0, 0})
		for i := 0; i < n; i++ {
			positions = append(positions, uniformInDisk(rng, radius))
		}
		return positions
	})
}

// Line places n nodes on a line with the given spacing (in radio-range
// units), sink at one end — the shape of a road-tunnel or pipeline
// deployment. Spacing must be at most 1 for connectivity.
func Line(n int, spacing float64) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: line needs at least 1 node, got %d", n)
	}
	if spacing <= 0 || spacing > 1 {
		return nil, fmt.Errorf("topology: line spacing %v must be in (0, 1]", spacing)
	}
	positions := make([]Point, n+1)
	for i := range positions {
		positions[i] = Point{float64(i) * spacing, 0}
	}
	return New(positions, 1.0)
}

// Grid places w×h nodes on a rectangular grid with the given spacing,
// sink at a corner. Spacing must be at most 1 so that axis-aligned
// neighbours are connected.
func Grid(w, h int, spacing float64) (*Network, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("topology: grid needs positive dimensions, got %dx%d", w, h)
	}
	if spacing <= 0 || spacing > 1 {
		return nil, fmt.Errorf("topology: grid spacing %v must be in (0, 1]", spacing)
	}
	positions := make([]Point, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			positions = append(positions, Point{float64(x) * spacing, float64(y) * spacing})
		}
	}
	return New(positions, 1.0)
}
