package topology

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node within one Network. The sink always has ID 0.
type NodeID int

// Point is a position on the plane, in units of the radio range.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Network is an explicit unit-disk-graph network with a designated sink
// and a shortest-path routing tree. Networks are immutable after
// construction, which for lossy channels includes the link-quality
// stamping pass: every generator emits links at the perfect default
// (PRR 1), and a channel model may overwrite them via SetLink before
// the network is shared (see internal/channel.Apply).
type Network struct {
	pos      []Point
	radioRng float64
	adj      [][]NodeID
	parent   []NodeID
	ring     []int
	children [][]NodeID
	subtree  []int
	depth    int

	// linkPRR[i][k] is the packet reception ratio of the directed link
	// i → adj[i][k]; linkGain[i][k] its received-power gain in dB (an
	// arbitrary but mutually comparable scale — the simulator's capture
	// effect only compares gains). Both are nil until SetLink first
	// diverges a link from the perfect default, so the zero-configuration
	// network costs nothing.
	linkPRR  [][]float64
	linkGain [][]float64
	lossy    bool
}

// New builds a network from node positions. positions[0] is the sink.
// Two nodes are neighbours when their distance is at most radioRange.
// The routing tree is the breadth-first shortest-path tree rooted at the
// sink, with ties broken toward the lowest neighbour ID so that repeated
// builds are deterministic. New fails if the graph is disconnected.
func New(positions []Point, radioRange float64) (*Network, error) {
	if len(positions) < 2 {
		return nil, fmt.Errorf("topology: need at least a sink and one node, got %d positions", len(positions))
	}
	if radioRange <= 0 {
		return nil, fmt.Errorf("topology: radio range %v must be positive", radioRange)
	}
	n := len(positions)
	net := &Network{
		pos:      append([]Point(nil), positions...),
		radioRng: radioRange,
		adj:      make([][]NodeID, n),
		parent:   make([]NodeID, n),
		ring:     make([]int, n),
		children: make([][]NodeID, n),
		subtree:  make([]int, n),
	}
	net.buildAdjacency()
	if err := net.buildTree(); err != nil {
		return nil, err
	}
	net.buildSubtrees()
	return net, nil
}

// buildAdjacency links every pair of nodes within radio range, using grid
// binning so that large networks do not pay the full O(n²) scan.
func (net *Network) buildAdjacency() {
	type cell struct{ cx, cy int }
	bins := make(map[cell][]NodeID, len(net.pos))
	r := net.radioRng
	key := func(p Point) cell {
		return cell{int(math.Floor(p.X / r)), int(math.Floor(p.Y / r))}
	}
	for i, p := range net.pos {
		bins[key(p)] = append(bins[key(p)], NodeID(i))
	}
	for i, p := range net.pos {
		c := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bins[cell{c.cx + dx, c.cy + dy}] {
					if int(j) <= i {
						continue
					}
					if p.Dist(net.pos[j]) <= r {
						net.adj[i] = append(net.adj[i], j)
						net.adj[j] = append(net.adj[j], NodeID(i))
					}
				}
			}
		}
	}
	for i := range net.adj {
		ids := net.adj[i]
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	}
}

// buildTree runs a BFS from the sink, assigning rings (hop counts) and
// parents. It fails if any node is unreachable.
func (net *Network) buildTree() error {
	n := len(net.pos)
	for i := range net.ring {
		net.ring[i] = -1
		net.parent[i] = -1
	}
	net.ring[0] = 0
	queue := []NodeID{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range net.adj[u] {
			if net.ring[v] != -1 {
				continue
			}
			net.ring[v] = net.ring[u] + 1
			net.parent[v] = u
			queue = append(queue, v)
			if net.ring[v] > net.depth {
				net.depth = net.ring[v]
			}
		}
	}
	for i := 0; i < n; i++ {
		if net.ring[i] == -1 {
			return fmt.Errorf("topology: node %d is not connected to the sink", i)
		}
	}
	for i := 1; i < n; i++ {
		p := net.parent[i]
		net.children[p] = append(net.children[p], NodeID(i))
	}
	return nil
}

// buildSubtrees computes routing-subtree sizes (the node itself plus all
// descendants) by scanning nodes in decreasing ring order.
func (net *Network) buildSubtrees() {
	order := make([]NodeID, len(net.pos))
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool { return net.ring[order[a]] > net.ring[order[b]] })
	for i := range net.subtree {
		net.subtree[i] = 1
	}
	for _, id := range order {
		if p := net.parent[id]; p >= 0 {
			net.subtree[p] += net.subtree[id]
		}
	}
}

// N returns the number of nodes including the sink.
func (net *Network) N() int { return len(net.pos) }

// RadioRange returns the unit-disk radius the network was built with.
func (net *Network) RadioRange() float64 { return net.radioRng }

// Depth returns the maximum ring (hop count) in the network.
func (net *Network) Depth() int { return net.depth }

// Position returns the location of node id.
func (net *Network) Position(id NodeID) Point { return net.pos[id] }

// Ring returns the hop distance of id from the sink (0 for the sink).
func (net *Network) Ring(id NodeID) int { return net.ring[id] }

// Parent returns the routing-tree parent of id, or -1 for the sink.
func (net *Network) Parent(id NodeID) NodeID { return net.parent[id] }

// Degree returns the number of neighbours of id.
func (net *Network) Degree(id NodeID) int { return len(net.adj[id]) }

// Neighbors returns a copy of the neighbour list of id, sorted by ID.
func (net *Network) Neighbors(id NodeID) []NodeID {
	return append([]NodeID(nil), net.adj[id]...)
}

// Children returns a copy of the routing-tree children of id.
func (net *Network) Children(id NodeID) []NodeID {
	return append([]NodeID(nil), net.children[id]...)
}

// SubtreeSize returns the number of nodes in the routing subtree rooted
// at id, counting id itself.
func (net *Network) SubtreeSize(id NodeID) int { return net.subtree[id] }

// PathToSink returns the routing path from id to the sink, inclusive of
// both endpoints.
func (net *Network) PathToSink(id NodeID) []NodeID {
	path := []NodeID{id}
	for id != 0 {
		id = net.parent[id]
		path = append(path, id)
	}
	return path
}

// NodesAtRing returns the IDs of all nodes at ring d, sorted.
func (net *Network) NodesAtRing(d int) []NodeID {
	var ids []NodeID
	for i := range net.pos {
		if net.ring[i] == d {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// TwoHopNeighbors returns the set of nodes within two hops of id
// (excluding id itself), sorted by ID.
func (net *Network) TwoHopNeighbors(id NodeID) []NodeID {
	seen := map[NodeID]bool{id: true}
	var out []NodeID
	for _, v := range net.adj[id] {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		for _, w := range net.adj[v] {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// linkIndex returns the position of b in a's (sorted) neighbour list,
// or -1 when the two nodes are not neighbours.
func (net *Network) linkIndex(a, b NodeID) int {
	ids := net.adj[a]
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == b {
		return lo
	}
	return -1
}

// SetLink stamps the directed link a→b with a packet reception ratio
// (clamped to [0, 1]) and a received-power gain in dB. It is part of
// network construction: channel models call it once per link during
// scenario materialization, before the network is shared (Networks are
// treated as immutable afterwards). Setting a non-existent link is a
// no-op.
func (net *Network) SetLink(a, b NodeID, prr, gainDB float64) {
	k := net.linkIndex(a, b)
	if k < 0 {
		return
	}
	if net.linkPRR == nil {
		n := len(net.pos)
		net.linkPRR = make([][]float64, n)
		net.linkGain = make([][]float64, n)
		for i := range net.adj {
			net.linkPRR[i] = make([]float64, len(net.adj[i]))
			net.linkGain[i] = make([]float64, len(net.adj[i]))
			for j := range net.linkPRR[i] {
				net.linkPRR[i][j] = 1
			}
		}
	}
	if prr < 0 {
		prr = 0
	}
	if prr > 1 {
		prr = 1
	}
	net.linkPRR[a][k] = prr
	net.linkGain[a][k] = gainDB
	if prr < 1 {
		net.lossy = true
	}
}

// LinkPRR returns the packet reception ratio of the directed link a→b:
// 1 for every link of a perfect (never-stamped) network or for
// non-neighbours, the stamped value otherwise.
func (net *Network) LinkPRR(a, b NodeID) float64 {
	if net.linkPRR == nil {
		return 1
	}
	k := net.linkIndex(a, b)
	if k < 0 {
		return 1
	}
	return net.linkPRR[a][k]
}

// LinkGainDB returns the received-power gain of the directed link a→b
// in dB (0 when never stamped).
func (net *Network) LinkGainDB(a, b NodeID) float64 {
	if net.linkGain == nil {
		return 0
	}
	k := net.linkIndex(a, b)
	if k < 0 {
		return 0
	}
	return net.linkGain[a][k]
}

// Lossy reports whether any link carries a PRR below 1 — the switch the
// simulator uses to keep the perfect-channel hot path draw-free.
func (net *Network) Lossy() bool { return net.lossy }

// MeanLinkPRR returns the average packet reception ratio over all
// directed links — the single link quality the analytic ring models
// (which have no per-link structure) inflate their retransmission
// expectations with. A perfect network returns exactly 1.
func (net *Network) MeanLinkPRR() float64 {
	if net.linkPRR == nil {
		return 1
	}
	sum, n := 0.0, 0
	for i := range net.linkPRR {
		for _, p := range net.linkPRR[i] {
			sum += p
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// SurvivorStats summarizes the fragment of the network that can still
// deliver traffic when some nodes are down: parents never re-route, so
// an alive node reaches the sink exactly when every ancestor on its
// routing path is alive. The stats are what a degradation-aware
// re-bargain maps onto the analytic ring abstraction — Depth and
// MeanDegree of the reachable fragment stand in for the full network's.
type SurvivorStats struct {
	// Reachable counts alive non-sink nodes whose whole routing path to
	// the sink is alive.
	Reachable int
	// Cut counts alive non-sink nodes stranded behind a dead ancestor.
	Cut int
	// Dead counts dead non-sink nodes.
	Dead int
	// Depth is the maximum ring among reachable nodes (0 when none).
	Depth int
	// MeanDegree is the average degree of the subgraph induced by the
	// sink and the reachable nodes (0 when nothing is reachable).
	MeanDegree float64
}

// SurvivorStats computes the reachable-fragment statistics for a
// liveness vector: alive[i] reports node i up. The sink's entry is
// ignored — the sink is always up (the simulator never crashes it).
// alive must have one entry per node.
func (net *Network) SurvivorStats(alive []bool) SurvivorStats {
	var st SurvivorStats
	n := len(net.pos)
	reach := make([]bool, n)
	reach[0] = true
	// Nodes in increasing ring order inherit reachability from their
	// parent, which BFS ordering guarantees is already classified; a
	// plain parent-chain walk per node would be quadratic on deep nets.
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool { return net.ring[order[a]] < net.ring[order[b]] })
	for _, id := range order {
		if id == 0 {
			continue
		}
		if !alive[id] {
			st.Dead++
			continue
		}
		if reach[net.parent[id]] {
			reach[id] = true
			st.Reachable++
			if net.ring[id] > st.Depth {
				st.Depth = net.ring[id]
			}
		} else {
			st.Cut++
		}
	}
	if st.Reachable == 0 {
		return st
	}
	deg := 0
	for i, ids := range net.adj {
		if !reach[i] {
			continue
		}
		for _, j := range ids {
			if reach[j] {
				deg++
			}
		}
	}
	st.MeanDegree = float64(deg) / float64(st.Reachable+1)
	return st
}

// MeanDegree returns the average node degree, an empirical estimate of
// the density parameter C of the ring model.
func (net *Network) MeanDegree() float64 {
	total := 0
	for i := range net.adj {
		total += len(net.adj[i])
	}
	return float64(total) / float64(len(net.adj))
}
