package topology

import (
	"testing"
	"testing/quick"
)

func TestRingModelValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       RingModel
		wantErr bool
	}{
		{name: "ok", m: RingModel{Depth: 5, Density: 6}},
		{name: "min", m: RingModel{Depth: 1, Density: 1}},
		{name: "zero depth", m: RingModel{Depth: 0, Density: 6}, wantErr: true},
		{name: "zero density", m: RingModel{Depth: 5, Density: 0}, wantErr: true},
		{name: "negative", m: RingModel{Depth: -2, Density: -1}, wantErr: true},
	}
	for _, tt := range tests {
		err := tt.m.Validate()
		if (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr=%v", tt.name, err, tt.wantErr)
		}
	}
}

func TestRingModelCounts(t *testing.T) {
	m := RingModel{Depth: 5, Density: 6}
	wantCounts := map[int]int{0: 0, 1: 7, 2: 21, 3: 35, 4: 49, 5: 63, 6: 0}
	for d, want := range wantCounts {
		if got := m.NodesAt(d); got != want {
			t.Errorf("NodesAt(%d) = %d, want %d", d, got, want)
		}
	}
	if got, want := m.Total(), 7*25; got != want {
		t.Errorf("Total() = %d, want %d", got, want)
	}
}

func TestRingTotalsMatchSumOfRings(t *testing.T) {
	f := func(depth, density uint8) bool {
		m := RingModel{Depth: int(depth%20) + 1, Density: int(density%20) + 1}
		sum := 0
		for d := 1; d <= m.Depth; d++ {
			sum += m.NodesAt(d)
		}
		return sum == m.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDescendants(t *testing.T) {
	m := RingModel{Depth: 5, Density: 6}
	// Ring 1: each of the 7 nodes relays for (25-1)/1 = 24 descendants.
	if got := m.Descendants(1); got != 24 {
		t.Errorf("Descendants(1) = %v, want 24", got)
	}
	// Outermost ring relays nothing.
	if got := m.Descendants(5); got != 0 {
		t.Errorf("Descendants(5) = %v, want 0", got)
	}
	if got := m.Descendants(0); got != 0 {
		t.Errorf("Descendants(0) = %v, want 0", got)
	}
	if got := m.Descendants(6); got != 0 {
		t.Errorf("Descendants(6) = %v, want 0", got)
	}
}

// TestDescendantsConservation checks that descendants per ring-d node
// times the ring population equals the total population beyond ring d.
func TestDescendantsConservation(t *testing.T) {
	f := func(depth, density uint8) bool {
		m := RingModel{Depth: int(depth%15) + 1, Density: int(density%15) + 1}
		for d := 1; d <= m.Depth; d++ {
			outer := 0
			for k := d + 1; k <= m.Depth; k++ {
				outer += m.NodesAt(k)
			}
			got := m.Descendants(d) * float64(m.NodesAt(d))
			if diff := got - float64(outer); diff > 1e-6 || diff < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
