package topology

import "testing"

// TestGeneratorsEmitPerfectLinks asserts the default link contract:
// every generator materializes networks whose links carry PRR 1 (the
// perfect channel) until a channel model stamps them otherwise.
func TestGeneratorsEmitPerfectLinks(t *testing.T) {
	gens := []Generator{
		RingGen{Model: RingModel{Depth: 2, Density: 3}},
		GridGen{Width: 3, Height: 3, Spacing: 0.9},
		LineGen{Nodes: 4, Spacing: 0.8},
	}
	for _, g := range gens {
		net, err := g.Build(nil)
		if err != nil {
			t.Fatalf("%s: %v", g.Kind(), err)
		}
		if net.Lossy() {
			t.Errorf("%s: fresh network marked lossy", g.Kind())
		}
		if got := net.MeanLinkPRR(); got != 1 {
			t.Errorf("%s: MeanLinkPRR = %v, want exactly 1", g.Kind(), got)
		}
		for i := 0; i < net.N(); i++ {
			for _, nb := range net.Neighbors(NodeID(i)) {
				if prr := net.LinkPRR(NodeID(i), nb); prr != 1 {
					t.Fatalf("%s: LinkPRR(%d,%d) = %v, want 1", g.Kind(), i, nb, prr)
				}
			}
		}
	}
}

func TestSetLink(t *testing.T) {
	net, err := Line(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Directed stamping: each direction holds its own value.
	net.SetLink(0, 1, 0.5, -2)
	if got := net.LinkPRR(0, 1); got != 0.5 {
		t.Errorf("LinkPRR(0,1) = %v, want 0.5", got)
	}
	if got := net.LinkPRR(1, 0); got != 1 {
		t.Errorf("LinkPRR(1,0) = %v, want untouched 1", got)
	}
	if got := net.LinkGainDB(0, 1); got != -2 {
		t.Errorf("LinkGainDB(0,1) = %v, want -2", got)
	}
	if !net.Lossy() {
		t.Error("network not marked lossy after a sub-1 PRR")
	}
	// Out-of-range PRRs clamp; non-links are no-ops and read as perfect.
	net.SetLink(1, 2, 1.7, 0)
	if got := net.LinkPRR(1, 2); got != 1 {
		t.Errorf("LinkPRR(1,2) = %v, want clamped 1", got)
	}
	net.SetLink(0, 2, 0.1, 0) // two hops apart: not a link
	if got := net.LinkPRR(0, 2); got != 1 {
		t.Errorf("LinkPRR(0,2) = %v for a non-link, want 1", got)
	}
	if got := net.MeanLinkPRR(); got >= 1 || got <= 0.5 {
		t.Errorf("MeanLinkPRR = %v, want inside (0.5, 1)", got)
	}
}
