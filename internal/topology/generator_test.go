package topology

import (
	"math/rand"
	"testing"
)

// generatorCases is the shared table of representative generator
// configurations used by the invariant tests below.
var generatorCases = []struct {
	name string
	gen  Generator
	// wantDepth is the exact BFS depth for deterministic placements,
	// or -1 when the depth is sample-dependent.
	wantDepth int
}{
	{"ring-3x3", RingGen{Model: RingModel{Depth: 3, Density: 3}}, 3},
	{"line-12", LineGen{Nodes: 12, Spacing: 0.8}, 12},
	{"line-tight", LineGen{Nodes: 6, Spacing: 1.0}, 6},
	{"grid-5x4", GridGen{Width: 5, Height: 4, Spacing: 0.9}, 7},
	{"grid-row", GridGen{Width: 7, Height: 1, Spacing: 0.7}, 6},
	{"disk-sparse", DiskGen{Nodes: 30, Radius: 2.2}, -1},
	{"disk-dense", DiskGen{Nodes: 40, Radius: 1.6}, -1},
	{"cluster-2tier", ClusterGen{Clusters: 4, ClusterSize: 5, FieldRadius: 1.6, ClusterRadius: 0.7}, -1},
}

func buildCase(t *testing.T, gen Generator, seed int64) *Network {
	t.Helper()
	net, err := gen.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("%s.Build: %v", gen.Kind(), err)
	}
	return net
}

// TestGeneratorConnectivity asserts the core contract: every node of a
// built network reaches the sink along the routing tree.
func TestGeneratorConnectivity(t *testing.T) {
	for _, tc := range generatorCases {
		t.Run(tc.name, func(t *testing.T) {
			net := buildCase(t, tc.gen, 7)
			for i := 0; i < net.N(); i++ {
				id := NodeID(i)
				if net.Ring(id) < 0 {
					t.Fatalf("node %d unreachable", i)
				}
				path := net.PathToSink(id)
				if path[len(path)-1] != 0 {
					t.Fatalf("node %d path does not end at sink: %v", i, path)
				}
				if len(path)-1 != net.Ring(id) {
					t.Errorf("node %d path length %d != ring %d", i, len(path)-1, net.Ring(id))
				}
			}
		})
	}
}

// TestGeneratorUnitDisk asserts the unit-disk property and neighbour
// symmetry: i and j are mutual neighbours exactly when their distance is
// within the radio range.
func TestGeneratorUnitDisk(t *testing.T) {
	for _, tc := range generatorCases {
		t.Run(tc.name, func(t *testing.T) {
			net := buildCase(t, tc.gen, 11)
			r := net.RadioRange()
			for i := 0; i < net.N(); i++ {
				id := NodeID(i)
				nbs := map[NodeID]bool{}
				for _, nb := range net.Neighbors(id) {
					nbs[nb] = true
					// Symmetry: the neighbour lists must agree.
					back := false
					for _, w := range net.Neighbors(nb) {
						if w == id {
							back = true
							break
						}
					}
					if !back {
						t.Fatalf("asymmetric link %d->%d", i, nb)
					}
				}
				for j := 0; j < net.N(); j++ {
					if j == i {
						continue
					}
					inRange := net.Position(id).Dist(net.Position(NodeID(j))) <= r
					if inRange != nbs[NodeID(j)] {
						t.Fatalf("node %d/%d: inRange=%v neighbour=%v", i, j, inRange, nbs[NodeID(j)])
					}
				}
			}
		})
	}
}

// TestGeneratorDepth pins the exact BFS depth of the deterministic
// placements: a line of n nodes is n hops deep, a w×h grid with only
// axis-aligned links is (w−1)+(h−1) deep, a depth-D ring model is D deep.
func TestGeneratorDepth(t *testing.T) {
	for _, tc := range generatorCases {
		if tc.wantDepth < 0 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			net := buildCase(t, tc.gen, 3)
			if net.Depth() != tc.wantDepth {
				t.Errorf("depth = %d, want %d", net.Depth(), tc.wantDepth)
			}
		})
	}
}

// TestGeneratorDeterminism asserts equal seeds rebuild identical
// networks, the property scenario reproducibility rests on.
func TestGeneratorDeterminism(t *testing.T) {
	for _, tc := range generatorCases {
		t.Run(tc.name, func(t *testing.T) {
			a := buildCase(t, tc.gen, 42)
			b := buildCase(t, tc.gen, 42)
			if a.N() != b.N() {
				t.Fatalf("sizes differ: %d vs %d", a.N(), b.N())
			}
			for i := 0; i < a.N(); i++ {
				if a.Position(NodeID(i)) != b.Position(NodeID(i)) {
					t.Fatalf("node %d placed at %v then %v", i, a.Position(NodeID(i)), b.Position(NodeID(i)))
				}
				if a.Parent(NodeID(i)) != b.Parent(NodeID(i)) {
					t.Fatalf("node %d parent %d then %d", i, a.Parent(NodeID(i)), b.Parent(NodeID(i)))
				}
			}
		})
	}
}

// TestClusterTiers asserts the two-tier ID layout of ClusterGen: heads
// occupy IDs 1..Clusters and sit within FieldRadius of the sink; member
// k of cluster c sits within ClusterRadius of head c.
func TestClusterTiers(t *testing.T) {
	g := ClusterGen{Clusters: 3, ClusterSize: 4, FieldRadius: 1.5, ClusterRadius: 0.6}
	net := buildCase(t, g, 9)
	if want := 1 + g.Clusters*(g.ClusterSize+1); net.N() != want {
		t.Fatalf("N = %d, want %d", net.N(), want)
	}
	for c := 0; c < g.Clusters; c++ {
		head := net.Position(NodeID(1 + c))
		if d := head.Dist(Point{0, 0}); d > g.FieldRadius {
			t.Errorf("head %d at distance %v > field radius %v", c+1, d, g.FieldRadius)
		}
		for k := 0; k < g.ClusterSize; k++ {
			id := NodeID(1 + g.Clusters + c*g.ClusterSize + k)
			if d := net.Position(id).Dist(head); d > g.ClusterRadius {
				t.Errorf("member %d at distance %v from head %d > cluster radius %v", id, d, c+1, g.ClusterRadius)
			}
		}
	}
}

// TestGeneratorValidate asserts each family rejects its invalid
// parameter shapes.
func TestGeneratorValidate(t *testing.T) {
	bad := []Generator{
		RingGen{Model: RingModel{Depth: 0, Density: 3}},
		DiskGen{Nodes: 0, Radius: 2},
		DiskGen{Nodes: 10, Radius: 0},
		GridGen{Width: 0, Height: 3, Spacing: 0.9},
		GridGen{Width: 3, Height: 3, Spacing: 1.5},
		LineGen{Nodes: 0, Spacing: 0.8},
		LineGen{Nodes: 5, Spacing: 0},
		ClusterGen{Clusters: 0, ClusterSize: 3, FieldRadius: 1, ClusterRadius: 0.5},
		ClusterGen{Clusters: 2, ClusterSize: 0, FieldRadius: 1, ClusterRadius: 0.5},
		ClusterGen{Clusters: 2, ClusterSize: 3, FieldRadius: 0, ClusterRadius: 0.5},
		ClusterGen{Clusters: 2, ClusterSize: 3, FieldRadius: 1, ClusterRadius: 0},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%s %+v validated", g.Kind(), g)
		}
		if _, err := g.Build(rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s %+v built", g.Kind(), g)
		}
	}
}
