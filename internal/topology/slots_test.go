package topology

import (
	"math/rand"
	"testing"
)

func TestAssignSlotsLine(t *testing.T) {
	net, err := Line(6, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	slots, used, err := net.AssignSlots(8)
	if err != nil {
		t.Fatalf("AssignSlots: %v", err)
	}
	if used > 3 {
		t.Errorf("a chain needs at most 3 slots, used %d", used)
	}
	checkTwoHopConflictFree(t, net, slots)
}

func TestAssignSlotsRings(t *testing.T) {
	net, err := Rings(RingModel{Depth: 3, Density: 4})
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	slots, used, err := net.AssignSlots(64)
	if err != nil {
		t.Fatalf("AssignSlots: %v", err)
	}
	if used < 2 {
		t.Errorf("dense network cannot be scheduled with %d slots", used)
	}
	checkTwoHopConflictFree(t, net, slots)
}

func TestAssignSlotsTooFewSlots(t *testing.T) {
	net, err := Rings(RingModel{Depth: 3, Density: 4})
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	if _, _, err := net.AssignSlots(2); err == nil {
		t.Error("AssignSlots(2) on a dense network should fail")
	}
	if _, _, err := net.AssignSlots(0); err == nil {
		t.Error("AssignSlots(0) should fail")
	}
}

func TestMinSlots(t *testing.T) {
	net, err := Disk(50, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("Disk: %v", err)
	}
	min := net.MinSlots()
	if _, _, err := net.AssignSlots(min); err != nil {
		t.Errorf("AssignSlots(MinSlots=%d) failed: %v", min, err)
	}
	if min > 1 {
		if _, _, err := net.AssignSlots(min - 1); err == nil {
			t.Errorf("AssignSlots(MinSlots-1=%d) unexpectedly succeeded", min-1)
		}
	}
}

func checkTwoHopConflictFree(t *testing.T, net *Network, slots []int) {
	t.Helper()
	for i := 0; i < net.N(); i++ {
		id := NodeID(i)
		for _, nb := range net.TwoHopNeighbors(id) {
			if slots[id] == slots[nb] {
				t.Fatalf("nodes %d and %d within two hops share slot %d", id, nb, slots[id])
			}
		}
	}
}
