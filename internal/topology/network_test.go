package topology

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New([]Point{{0, 0}}, 1.0); err == nil {
		t.Error("New with a single position should fail")
	}
	if _, err := New([]Point{{0, 0}, {0.5, 0}}, 0); err == nil {
		t.Error("New with zero range should fail")
	}
	if _, err := New([]Point{{0, 0}, {5, 0}}, 1.0); err == nil {
		t.Error("New with a disconnected node should fail")
	}
}

func TestLineTopology(t *testing.T) {
	net, err := Line(5, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	if got, want := net.N(), 6; got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	if got, want := net.Depth(), 5; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
	for i := 1; i <= 5; i++ {
		id := NodeID(i)
		if got, want := net.Ring(id), i; got != want {
			t.Errorf("Ring(%d) = %d, want %d", id, got, want)
		}
		if got, want := net.Parent(id), NodeID(i-1); got != want {
			t.Errorf("Parent(%d) = %d, want %d", id, got, want)
		}
		if got, want := net.SubtreeSize(id), 6-i; got != want {
			t.Errorf("SubtreeSize(%d) = %d, want %d", id, got, want)
		}
	}
	path := net.PathToSink(5)
	want := []NodeID{5, 4, 3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("PathToSink(5) = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathToSink(5) = %v, want %v", path, want)
		}
	}
}

func TestRingsPlacementMatchesModel(t *testing.T) {
	m := RingModel{Depth: 4, Density: 5}
	net, err := Rings(m)
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	if got, want := net.N(), m.Total()+1; got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	if got, want := net.Depth(), m.Depth; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
	for d := 1; d <= m.Depth; d++ {
		if got, want := len(net.NodesAtRing(d)), m.NodesAt(d); got != want {
			t.Errorf("ring %d population = %d, want %d", d, got, want)
		}
	}
}

func TestDiskDeterministicForSeed(t *testing.T) {
	a, err := Disk(60, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Disk: %v", err)
	}
	b, err := Disk(60, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("Disk: %v", err)
	}
	if a.N() != b.N() {
		t.Fatalf("sizes differ: %d vs %d", a.N(), b.N())
	}
	for i := 0; i < a.N(); i++ {
		if a.Position(NodeID(i)) != b.Position(NodeID(i)) {
			t.Fatalf("node %d position differs between same-seed builds", i)
		}
	}
}

func TestDiskInvariants(t *testing.T) {
	net, err := Disk(80, 3, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("Disk: %v", err)
	}
	if net.Ring(0) != 0 {
		t.Errorf("sink ring = %d, want 0", net.Ring(0))
	}
	for i := 1; i < net.N(); i++ {
		id := NodeID(i)
		p := net.Parent(id)
		if p < 0 {
			t.Fatalf("node %d has no parent", id)
		}
		if net.Ring(p) != net.Ring(id)-1 {
			t.Errorf("parent of ring-%d node %d is at ring %d", net.Ring(id), id, net.Ring(p))
		}
		if net.Position(id).Dist(net.Position(p)) > net.RadioRange()+1e-12 {
			t.Errorf("node %d parent link longer than radio range", id)
		}
	}
	// Subtree sizes: the sink's subtree covers everything, and sizes sum
	// consistently along the tree.
	if got, want := net.SubtreeSize(0), net.N(); got != want {
		t.Errorf("sink subtree = %d, want %d", got, want)
	}
	for i := 0; i < net.N(); i++ {
		id := NodeID(i)
		sum := 1
		for _, c := range net.Children(id) {
			sum += net.SubtreeSize(c)
		}
		if sum != net.SubtreeSize(id) {
			t.Errorf("node %d subtree %d != 1 + children sum %d", id, net.SubtreeSize(id), sum)
		}
	}
}

func TestGrid(t *testing.T) {
	net, err := Grid(4, 3, 1.0)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if got, want := net.N(), 12; got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	// Corner sink: opposite corner is (w-1)+(h-1) hops away.
	if got, want := net.Depth(), 5; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := Line(0, 0.5); err == nil {
		t.Error("Line(0, ...) should fail")
	}
	if _, err := Line(3, 1.5); err == nil {
		t.Error("Line with spacing > 1 should fail")
	}
	if _, err := Grid(0, 3, 0.5); err == nil {
		t.Error("Grid(0, ...) should fail")
	}
	if _, err := Disk(0, 3, rand.New(rand.NewSource(1))); err == nil {
		t.Error("Disk(0, ...) should fail")
	}
	if _, err := Disk(5, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("Disk with negative radius should fail")
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	net, err := Line(3, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	nbs := net.Neighbors(1)
	if len(nbs) == 0 {
		t.Fatal("node 1 should have neighbours")
	}
	nbs[0] = 999
	if net.Neighbors(1)[0] == 999 {
		t.Error("Neighbors exposes internal state")
	}
}

func TestTwoHopNeighbors(t *testing.T) {
	net, err := Line(5, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	got := net.TwoHopNeighbors(2)
	want := []NodeID{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("TwoHopNeighbors(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TwoHopNeighbors(2) = %v, want %v", got, want)
		}
	}
}

// TestSurvivorStats pins the reachable-fragment semantics on a line,
// where reachability is easy to see: parents never re-route, so a dead
// relay strands everything behind it.
func TestSurvivorStats(t *testing.T) {
	net, err := Line(5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	alive := make([]bool, net.N())
	for i := range alive {
		alive[i] = true
	}
	st := net.SurvivorStats(alive)
	if st.Reachable != 5 || st.Cut != 0 || st.Dead != 0 || st.Depth != 5 {
		t.Fatalf("all alive: %+v", st)
	}
	// A 6-node path has 5 edges: directed degree sum 10 over 6 nodes.
	if want := 10.0 / 6; math.Abs(st.MeanDegree-want) > 1e-12 {
		t.Errorf("MeanDegree = %v, want %v", st.MeanDegree, want)
	}

	// Kill node 2: node 1 still delivers, nodes 3..5 are stranded.
	alive[2] = false
	st = net.SurvivorStats(alive)
	if st.Reachable != 1 || st.Cut != 3 || st.Dead != 1 || st.Depth != 1 {
		t.Fatalf("relay dead: %+v", st)
	}
	if st.MeanDegree != 1 {
		t.Errorf("MeanDegree = %v, want 1 for the sink–node-1 pair", st.MeanDegree)
	}

	// Kill everything: the empty fragment reports zeros.
	for i := 1; i < len(alive); i++ {
		alive[i] = false
	}
	st = net.SurvivorStats(alive)
	if st.Reachable != 0 || st.Cut != 0 || st.Dead != 5 || st.Depth != 0 || st.MeanDegree != 0 {
		t.Fatalf("all dead: %+v", st)
	}
}

func TestMeanDegreeOnLine(t *testing.T) {
	net, err := Line(4, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	// Chain of 5 nodes: degrees 1,2,2,2,1 → mean 8/5.
	if got, want := net.MeanDegree(), 8.0/5.0; got != want {
		t.Errorf("MeanDegree = %v, want %v", got, want)
	}
}
