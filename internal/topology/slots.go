package topology

import "fmt"

// AssignSlots computes a TDMA slot assignment in which no two nodes
// within two hops of each other share a slot — the steady state LMAC's
// distributed slot-claiming converges to. It greedily colours nodes in
// BFS order (deterministic) and returns one slot index per node plus the
// number of distinct slots used.
//
// frameSlots caps the schedule: if more slots are needed than the frame
// provides, AssignSlots returns an error naming the shortfall, which the
// caller surfaces as an LMAC feasibility violation.
func (net *Network) AssignSlots(frameSlots int) ([]int, int, error) {
	if frameSlots < 1 {
		return nil, 0, fmt.Errorf("topology: frame must have at least 1 slot, got %d", frameSlots)
	}
	n := net.N()
	slots := make([]int, n)
	for i := range slots {
		slots[i] = -1
	}
	// BFS order: sink first, then ring by ring, by ID inside a ring.
	order := make([]NodeID, 0, n)
	for d := 0; d <= net.Depth(); d++ {
		order = append(order, net.NodesAtRing(d)...)
	}
	used := 0
	taken := make([]bool, frameSlots)
	for _, id := range order {
		for i := range taken {
			taken[i] = false
		}
		for _, nb := range net.TwoHopNeighbors(id) {
			if s := slots[nb]; s >= 0 {
				taken[s] = true
			}
		}
		slot := -1
		for s := 0; s < frameSlots; s++ {
			if !taken[s] {
				slot = s
				break
			}
		}
		if slot < 0 {
			return nil, 0, fmt.Errorf("topology: node %d has no free slot in a %d-slot frame (2-hop neighbourhood too dense)", id, frameSlots)
		}
		slots[id] = slot
		if slot+1 > used {
			used = slot + 1
		}
	}
	return slots, used, nil
}

// MinSlots returns the smallest frame size for which AssignSlots
// succeeds, probing by doubling then binary search. It is a topology
// property used to lower-bound LMAC's Nslots parameter.
func (net *Network) MinSlots() int {
	lo, hi := 1, 2
	for {
		if _, _, err := net.AssignSlots(hi); err == nil {
			break
		}
		lo = hi
		hi *= 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if _, _, err := net.AssignSlots(mid); err == nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}
