// Package topology provides the network models the energy-delay framework
// runs on: the analytic ring abstraction of Langendoen & Meier used by the
// closed-form MAC models, and explicit unit-disk-graph networks used by
// the packet-level simulator.
package topology

import "fmt"

// RingModel is the analytic topology of Langendoen & Meier: nodes are
// uniformly scattered with unit-disk neighbourhood density Density (a unit
// disk contains Density+1 nodes) and layered into Depth concentric rings
// around a sink by minimal hop count. Ring d (1-based) contains
// (2d−1)·(Density+1) nodes; all traffic from rings ≥ d funnels through
// ring d.
type RingModel struct {
	// Depth is the number of rings D; the farthest nodes are D hops from
	// the sink.
	Depth int
	// Density is the unit-disk neighbourhood density C: every node has C
	// neighbours on average.
	Density int
}

// Validate reports whether the model parameters are usable.
func (r RingModel) Validate() error {
	if r.Depth < 1 {
		return fmt.Errorf("topology: depth %d must be at least 1", r.Depth)
	}
	if r.Density < 1 {
		return fmt.Errorf("topology: density %d must be at least 1", r.Density)
	}
	return nil
}

// NodesAt returns the number of nodes in ring d, for d in [1, Depth].
// Rings outside that range hold no nodes.
func (r RingModel) NodesAt(d int) int {
	if d < 1 || d > r.Depth {
		return 0
	}
	return (2*d - 1) * (r.Density + 1)
}

// Total returns the number of nodes in the network, excluding the sink.
func (r RingModel) Total() int {
	return (r.Density + 1) * r.Depth * r.Depth
}

// Descendants returns the average number of nodes whose traffic a single
// ring-d node relays (its routing-tree descendants). Ring-D nodes relay
// nothing.
func (r RingModel) Descendants(d int) float64 {
	if d < 1 || d > r.Depth {
		return 0
	}
	dd := float64(d)
	dep := float64(r.Depth)
	return (dep*dep - dd*dd) / (2*dd - 1)
}
