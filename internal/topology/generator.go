package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator is a compact parametric description of a network family that
// can be materialized into an explicit Network. Implementations are
// value types: equal generator values with equal rng states build equal
// networks, which is what makes declarative scenario specs reproducible.
//
// Build draws any randomness the family needs from rng; fully
// deterministic families (rings, grids, lines) ignore it, and accept a
// nil rng.
type Generator interface {
	// Kind returns the family's registry name ("ring", "disk", "grid",
	// "line", "cluster").
	Kind() string
	// Validate reports whether the parameters describe a buildable
	// network.
	Validate() error
	// Build materializes the network. Families with random placement
	// retry internally when a sample comes out disconnected and fail
	// only after exhausting their attempts.
	Build(rng *rand.Rand) (*Network, error)
}

// connectAttempts is how many placement samples random generators try
// before giving up on connectivity.
const connectAttempts = 16

// RingGen builds the deterministic ring placement of the analytic model
// (see Rings) — the canonical bridge between the closed-form models and
// the simulator.
type RingGen struct {
	// Model is the analytic ring topology (depth D, density C).
	Model RingModel
}

// Kind returns "ring".
func (g RingGen) Kind() string { return "ring" }

// Validate reports whether the ring model is usable.
func (g RingGen) Validate() error { return g.Model.Validate() }

// Build materializes the ring placement; rng is ignored.
func (g RingGen) Build(*rand.Rand) (*Network, error) { return Rings(g.Model) }

// DiskGen scatters Nodes nodes uniformly over a disk of Radius radio
// ranges around the sink — the classic random-geometric deployment.
type DiskGen struct {
	// Nodes is the number of nodes excluding the sink.
	Nodes int
	// Radius is the deployment radius in radio-range units.
	Radius float64
}

// Kind returns "disk".
func (g DiskGen) Kind() string { return "disk" }

// Validate reports whether the disk parameters are usable.
func (g DiskGen) Validate() error {
	if g.Nodes < 1 {
		return fmt.Errorf("topology: disk needs at least 1 node, got %d", g.Nodes)
	}
	if g.Radius <= 0 {
		return fmt.Errorf("topology: disk radius %v must be positive", g.Radius)
	}
	return nil
}

// Build samples placements until one is connected (see Disk).
func (g DiskGen) Build(rng *rand.Rand) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return Disk(g.Nodes, g.Radius, rng)
}

// GridGen places Width×Height nodes on a rectangular lattice with the
// sink at a corner — a structured building or field deployment.
type GridGen struct {
	// Width and Height are the lattice dimensions in nodes.
	Width, Height int
	// Spacing is the lattice constant in radio-range units, at most 1.
	Spacing float64
}

// Kind returns "grid".
func (g GridGen) Kind() string { return "grid" }

// Validate reports whether the grid parameters are usable.
func (g GridGen) Validate() error {
	if g.Width < 1 || g.Height < 1 {
		return fmt.Errorf("topology: grid needs positive dimensions, got %dx%d", g.Width, g.Height)
	}
	if g.Spacing <= 0 || g.Spacing > 1 {
		return fmt.Errorf("topology: grid spacing %v must be in (0, 1]", g.Spacing)
	}
	return nil
}

// Build materializes the lattice; rng is ignored.
func (g GridGen) Build(*rand.Rand) (*Network, error) { return Grid(g.Width, g.Height, g.Spacing) }

// LineGen places Nodes nodes on a line behind the sink — the shape of a
// road-tunnel, pipeline or mine-gallery deployment.
type LineGen struct {
	// Nodes is the number of nodes excluding the sink.
	Nodes int
	// Spacing is the inter-node distance in radio-range units, at most 1.
	Spacing float64
}

// Kind returns "line".
func (g LineGen) Kind() string { return "line" }

// Validate reports whether the line parameters are usable.
func (g LineGen) Validate() error {
	if g.Nodes < 1 {
		return fmt.Errorf("topology: line needs at least 1 node, got %d", g.Nodes)
	}
	if g.Spacing <= 0 || g.Spacing > 1 {
		return fmt.Errorf("topology: line spacing %v must be in (0, 1]", g.Spacing)
	}
	return nil
}

// Build materializes the chain; rng is ignored.
func (g LineGen) Build(*rand.Rand) (*Network, error) { return Line(g.Nodes, g.Spacing) }

// ClusterGen builds a two-tier clustered deployment: Clusters cluster
// heads scattered uniformly within FieldRadius of the sink, each
// surrounded by ClusterSize member nodes within ClusterRadius of their
// head. Heads come first in the ID order (1..Clusters), then members
// grouped by cluster, so the tiers are recoverable from IDs alone.
// Like DiskGen, Build resamples until the unit-disk graph is connected.
type ClusterGen struct {
	// Clusters is the number of cluster heads.
	Clusters int
	// ClusterSize is the number of member nodes per cluster.
	ClusterSize int
	// FieldRadius bounds head placement, in radio-range units.
	FieldRadius float64
	// ClusterRadius bounds member scatter around the head.
	ClusterRadius float64
}

// Kind returns "cluster".
func (g ClusterGen) Kind() string { return "cluster" }

// Validate reports whether the cluster parameters are usable.
func (g ClusterGen) Validate() error {
	if g.Clusters < 1 {
		return fmt.Errorf("topology: cluster needs at least 1 cluster, got %d", g.Clusters)
	}
	if g.ClusterSize < 1 {
		return fmt.Errorf("topology: cluster needs at least 1 member per cluster, got %d", g.ClusterSize)
	}
	if g.FieldRadius <= 0 {
		return fmt.Errorf("topology: cluster field radius %v must be positive", g.FieldRadius)
	}
	if g.ClusterRadius <= 0 {
		return fmt.Errorf("topology: cluster radius %v must be positive", g.ClusterRadius)
	}
	return nil
}

// Build samples two-tier placements until one is connected.
func (g ClusterGen) Build(rng *rand.Rand) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return buildConnected("cluster", func() []Point {
		positions := make([]Point, 0, 1+g.Clusters*(g.ClusterSize+1))
		positions = append(positions, Point{0, 0})
		heads := make([]Point, g.Clusters)
		for c := range heads {
			heads[c] = uniformInDisk(rng, g.FieldRadius)
			positions = append(positions, heads[c])
		}
		for _, h := range heads {
			for k := 0; k < g.ClusterSize; k++ {
				m := uniformInDisk(rng, g.ClusterRadius)
				positions = append(positions, Point{h.X + m.X, h.Y + m.Y})
			}
		}
		return positions
	})
}

// uniformInDisk draws a point uniformly from the disk of the given
// radius around the origin.
func uniformInDisk(rng *rand.Rand, radius float64) Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return Point{r * math.Cos(theta), r * math.Sin(theta)}
}
