package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// metrics is the dependency-free request-metrics registry behind
// GET /metrics. It keeps counters and latency sums keyed by
// (endpoint, status code) — both bounded: endpoints are route
// patterns, codes are HTTP statuses — and renders the Prometheus text
// exposition format. No client library: the format is three lines of
// spec, and the ISSUE forbids new dependencies.
type metrics struct {
	mu       sync.Mutex
	requests map[metricKey]*endpointStats
}

type metricKey struct {
	endpoint string
	code     int
}

type endpointStats struct {
	count   int64
	seconds float64
}

func newMetrics() *metrics {
	return &metrics{requests: map[metricKey]*endpointStats{}}
}

// observe records one completed request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	k := metricKey{endpoint: endpoint, code: code}
	m.mu.Lock()
	st := m.requests[k]
	if st == nil {
		st = &endpointStats{}
		m.requests[k] = st
	}
	st.count++
	st.seconds += d.Seconds()
	m.mu.Unlock()
}

// handleMetrics renders the exposition. Gauges (queue depth, jobs by
// state, cache entries) are sampled at scrape time; counters come from
// the registry and the server's atomic counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	// Requests by endpoint and status, plus the latency summary. Keys
	// are sorted so the output is stable — scrape diffs and tests both
	// appreciate determinism.
	s.metrics.mu.Lock()
	keys := make([]metricKey, 0, len(s.metrics.requests))
	for k := range s.metrics.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	type row struct {
		k metricKey
		v endpointStats
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, *s.metrics.requests[k]})
	}
	s.metrics.mu.Unlock()

	fmt.Fprintln(w, "# HELP edserve_requests_total Completed HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE edserve_requests_total counter")
	for _, rw := range rows {
		fmt.Fprintf(w, "edserve_requests_total{endpoint=%q,code=%q} %d\n",
			rw.k.endpoint, strconv.Itoa(rw.k.code), rw.v.count)
	}
	fmt.Fprintln(w, "# HELP edserve_request_duration_seconds Wall-clock request latency by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE edserve_request_duration_seconds summary")
	for _, rw := range rows {
		fmt.Fprintf(w, "edserve_request_duration_seconds_sum{endpoint=%q,code=%q} %g\n",
			rw.k.endpoint, strconv.Itoa(rw.k.code), rw.v.seconds)
		fmt.Fprintf(w, "edserve_request_duration_seconds_count{endpoint=%q,code=%q} %d\n",
			rw.k.endpoint, strconv.Itoa(rw.k.code), rw.v.count)
	}

	fmt.Fprintln(w, "# HELP edserve_jobs_queue_depth Jobs admitted but not yet claimed by a worker.")
	fmt.Fprintln(w, "# TYPE edserve_jobs_queue_depth gauge")
	fmt.Fprintf(w, "edserve_jobs_queue_depth %d\n", s.jobs.Depth())

	fmt.Fprintln(w, "# HELP edserve_jobs Known jobs by state.")
	fmt.Fprintln(w, "# TYPE edserve_jobs gauge")
	counts := s.jobs.Counts()
	for _, st := range jobsStates() {
		fmt.Fprintf(w, "edserve_jobs{state=%q} %d\n", string(st), counts[st])
	}

	respHits, respMisses := s.cache.Stats()
	fmt.Fprintln(w, "# HELP edserve_response_cache_hits_total Response-cache hits.")
	fmt.Fprintln(w, "# TYPE edserve_response_cache_hits_total counter")
	fmt.Fprintf(w, "edserve_response_cache_hits_total %d\n", respHits)
	fmt.Fprintln(w, "# HELP edserve_response_cache_misses_total Response-cache misses.")
	fmt.Fprintln(w, "# TYPE edserve_response_cache_misses_total counter")
	fmt.Fprintf(w, "edserve_response_cache_misses_total %d\n", respMisses)
	fmt.Fprintln(w, "# HELP edserve_response_cache_coalesced_total Responses served by waiting on an identical in-flight computation.")
	fmt.Fprintln(w, "# TYPE edserve_response_cache_coalesced_total counter")
	fmt.Fprintf(w, "edserve_response_cache_coalesced_total %d\n", s.coalesced.Load())

	rc := s.cli.CacheStats()
	fmt.Fprintln(w, "# HELP edserve_result_cache_hits_total Client result-cache hits.")
	fmt.Fprintln(w, "# TYPE edserve_result_cache_hits_total counter")
	fmt.Fprintf(w, "edserve_result_cache_hits_total %d\n", rc.Hits)
	fmt.Fprintln(w, "# HELP edserve_result_cache_misses_total Client result-cache misses.")
	fmt.Fprintln(w, "# TYPE edserve_result_cache_misses_total counter")
	fmt.Fprintf(w, "edserve_result_cache_misses_total %d\n", rc.Misses)

	fmt.Fprintln(w, "# HELP edserve_panics_recovered_total Handler panics absorbed into 500 responses.")
	fmt.Fprintln(w, "# TYPE edserve_panics_recovered_total counter")
	fmt.Fprintf(w, "edserve_panics_recovered_total %d\n", s.panics.Load())
}
