package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	edmac "github.com/edmac-project/edmac"
)

// newTestServer starts the service on an httptest listener and returns
// it with its backing Server for counter assertions.
func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	s, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

// decodeEnvelope parses the uniform error envelope, failing the test if
// the body is any other shape.
func decodeEnvelope(t *testing.T, data []byte) (code, message string) {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(data, &e); err != nil || e.Error.Code == "" {
		t.Fatalf("body is not the error envelope: %s", data)
	}
	return e.Error.Code, e.Error.Message
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Status != "ok" {
		t.Fatalf("body = %+v, err %v", body, err)
	}
}

func TestScenariosListsRegistry(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatalf("GET /v1/scenarios: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Scenarios []struct {
			Name     string `json:"name"`
			Topology string `json:"topology"`
			Channel  string `json:"channel"`
		} `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(body.Scenarios) != len(edmac.BuiltinScenarios()) {
		t.Fatalf("%d scenarios, want %d", len(body.Scenarios), len(edmac.BuiltinScenarios()))
	}
	found := false
	for _, sc := range body.Scenarios {
		if sc.Name == "ring-lossy" && sc.Channel == "bernoulli" {
			found = true
		}
	}
	if !found {
		t.Fatal("ring-lossy/bernoulli missing from the registry listing")
	}
}

// TestOptimizeCached is the acceptance gate: a repeated identical
// optimize request must be served from the LRU response cache,
// observable in both the X-Cache header and the hit counter — and
// "identical" means canonically identical, whatever the field order or
// whitespace of the wire JSON.
func TestOptimizeCached(t *testing.T) {
	ts, s := newTestServer(t)
	url := ts.URL + "/v1/optimize"
	body := `{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}`
	// Same request, different field order and spacing.
	reordered := `{
		"requirements": {"max_delay": 6, "energy_budget": 0.06},
		"protocol": "xmac"
	}`

	resp1, data1 := postJSON(t, url, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q, want MISS", got)
	}
	var rep edmac.OptimizeReport
	if err := json.Unmarshal(data1, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if len(rep.Result.Bargain.Params) == 0 || rep.Result.Bargain.Energy <= 0 {
		t.Fatalf("degenerate bargain in response: %+v", rep.Result.Bargain)
	}

	resp2, data2 := postJSON(t, url, reordered)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("cached response differs from the computed one")
	}
	stats := s.CacheStats()
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", stats)
	}
}

func TestOptimizeInfeasibleIs422(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/optimize",
		`{"protocol":"lmac","requirements":{"energy_budget":0.01,"max_delay":6}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s), want 422", resp.StatusCode, data)
	}
	if code, _ := decodeEnvelope(t, data); code != "infeasible" {
		t.Fatalf("error code = %q, want infeasible", code)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, tc := range map[string]struct{ url, body string }{
		"malformed json":   {"/v1/optimize", `{"protocol":`},
		"unknown field":    {"/v1/optimize", `{"protocol":"xmac","reqs":{}}`},
		"unknown protocol": {"/v1/optimize", `{"protocol":"smac","requirements":{"energy_budget":0.06,"max_delay":6}}`},
		"unknown scenario": {"/v1/suite", `{"scenarios":["nope"],"protocols":["xmac"]}`},
		"two deployments": {"/v1/simulate",
			`{"protocol":"xmac","scenario_name":"ring-baseline","scenario":{"depth":3,"density":4,"sample_interval":120,"window":60,"payload":32,"radio":"cc2420"},"params":[0.25]}`},
	} {
		resp, data := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", name, resp.StatusCode, data)
		}
	}
}

func TestSimulateBuiltinScenario(t *testing.T) {
	ts, s := newTestServer(t)
	body := `{"protocol":"xmac","scenario_name":"ring-baseline","params":[0.25],"options":{"duration":60,"seed":7}}`
	resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var rep struct {
		Sim struct {
			Protocol  string  `json:"protocol"`
			Seed      int64   `json:"seed"`
			Duration  float64 `json:"duration"`
			Generated int     `json:"generated"`
		} `json:"sim"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode: %v in %s", err, data)
	}
	if rep.Sim.Protocol != "xmac" || rep.Sim.Seed != 7 || rep.Sim.Duration != 60 {
		t.Fatalf("echoed config wrong: %+v", rep.Sim)
	}
	// Simulations cache whole responses too.
	resp2, _ := postJSON(t, ts.URL+"/v1/simulate", body)
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat simulate X-Cache = %q, want HIT", got)
	}
	if s.CacheStats().Hits == 0 {
		t.Fatal("hit counter did not move")
	}
}

// TestSimulateValidateNaNScrubbed proves a run with unusable delay
// statistics (nothing delivered at a near-zero rate) still encodes:
// the NaN fields are omitted, not 500s.
func TestSimulateValidateNaNScrubbed(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"protocol":"xmac","scenario":{"depth":3,"density":4,"sample_interval":1e9,"window":60,"payload":32,"radio":"cc2420"},"params":[0.25],"options":{"duration":30},"validate":true}`
	resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if bytes.Contains(data, []byte("NaN")) {
		t.Fatalf("NaN leaked into response: %s", data)
	}
	var rep struct {
		Sim struct {
			Generated int      `json:"generated"`
			MeanDelay *float64 `json:"mean_delay"`
		} `json:"sim"`
		Analytic *struct {
			Energy     float64  `json:"energy"`
			DelayRatio *float64 `json:"delay_ratio"`
		} `json:"analytic"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.Sim.Generated != 0 || rep.Sim.MeanDelay != nil {
		t.Fatalf("idle run not as expected: %s", data)
	}
	if rep.Analytic == nil || rep.Analytic.Energy <= 0 || rep.Analytic.DelayRatio != nil {
		t.Fatalf("analytic check wrong: %s", data)
	}
}

func TestSuiteEndpoint(t *testing.T) {
	ts, s := newTestServer(t)
	body := `{"scenarios":["ring-baseline"],"protocols":["xmac"],"options":{"duration":40,"seed":1}}`
	resp, data := postJSON(t, ts.URL+"/v1/suite", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var rep edmac.SuiteReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Scenario != "ring-baseline" || rep.Cells[0].Protocol != edmac.XMAC {
		t.Fatalf("unexpected cells: %+v", rep.Cells)
	}
	if rep.Cells[0].Err != "" {
		t.Fatalf("cell failed: %s", rep.Cells[0].Err)
	}
	// Identical suite requests hit the cache.
	resp2, data2 := postJSON(t, ts.URL+"/v1/suite", body)
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat suite X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("cached suite response differs")
	}
	if s.CacheStats().Hits == 0 {
		t.Fatal("hit counter did not move")
	}
}

func TestSuiteStreamNDJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"scenarios":["ring-baseline"],"protocols":["xmac","lmac"],"options":{"duration":40,"seed":1}}`
	resp, err := http.Post(ts.URL+"/v1/suite?stream=ndjson", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	seen := map[edmac.Protocol]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var cell edmac.SuiteCell
		if err := json.Unmarshal(sc.Bytes(), &cell); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if cell.Err != "" {
			t.Fatalf("cell error: %s", cell.Err)
		}
		seen[cell.Protocol] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !seen[edmac.XMAC] || !seen[edmac.LMAC] {
		t.Fatalf("cells missing from stream: %v", seen)
	}
}

// TestColdMissCoalescing: concurrent identical requests on a cold
// cache cost one computation — exactly one MISS leader, everyone else
// COALESCED (or HIT if they arrived after the cache filled), all with
// identical bytes.
func TestColdMissCoalescing(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"protocol":"xmac","scenario":{"depth":4,"density":5,"sample_interval":60,"window":60,"payload":32,"radio":"cc2420"},"params":[0.2],"options":{"duration":2000,"seed":11}}`
	const n = 6
	type result struct {
		cacheHdr string
		status   int
		data     []byte
		err      error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
			if err != nil {
				results[i].err = err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			results[i] = result{resp.Header.Get("X-Cache"), resp.StatusCode, data, err}
		}(i)
	}
	wg.Wait()
	misses := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.data)
		}
		switch r.cacheHdr {
		case "MISS":
			misses++
		case "COALESCED", "HIT":
		default:
			t.Fatalf("request %d: X-Cache = %q", i, r.cacheHdr)
		}
		if !bytes.Equal(r.data, results[0].data) {
			t.Fatalf("request %d: response bytes diverge", i)
		}
	}
	if misses != 1 {
		t.Fatalf("%d MISS leaders, want exactly 1", misses)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	ts, _ := newTestServer(t)
	big := append([]byte(`{"protocol":"`), bytes.Repeat([]byte("x"), 2<<20)...)
	big = append(big, []byte(`"}`)...)
	resp, data := postJSON(t, ts.URL+"/v1/optimize", string(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", resp.StatusCode, data)
	}
}

// TestPanicRecovery: a panicking handler answers a 500 JSON error and
// bumps the counter; the process (and the server) keep serving.
func TestPanicRecovery(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("injected handler bug")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("GET /boom: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d (%s), want 500", resp.StatusCode, data)
	}
	if code, _ := decodeEnvelope(t, data); code != "internal" {
		t.Fatalf("panic error code = %q, want internal", code)
	}
	if got := s.PanicsRecovered(); got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}

	// The server is still alive and /healthz exposes the count.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz after panic: %v", err)
	}
	var health struct {
		Status          string `json:"status"`
		PanicsRecovered int64  `json:"panics_recovered"`
	}
	err = json.NewDecoder(resp2.Body).Decode(&health)
	resp2.Body.Close()
	if err != nil || health.Status != "ok" || health.PanicsRecovered != 1 {
		t.Fatalf("healthz after panic = %+v, err %v", health, err)
	}
}

// TestRequestTimeout: a server-imposed per-request deadline cancels a
// long simulation and answers 503 — distinguishable from the 499 a
// disconnecting client gets.
func TestRequestTimeout(t *testing.T) {
	s, err := New(Options{RequestTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Minutes of simulated traffic if the deadline were ignored.
	body := `{"protocol":"xmac","scenario":{"depth":5,"density":6,"sample_interval":120,"window":60,"payload":50,"radio":"cc2420"},"params":[0.125],"options":{"duration":1000000}}`
	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, data)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timed-out request held the handler for %s", elapsed)
	}
	// Quick requests are untouched by the deadline.
	resp2, data2 := postJSON(t, ts.URL+"/v1/optimize",
		`{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fast request under timeout: status %d (%s)", resp2.StatusCode, data2)
	}
}

// TestInFlightAbortOnDisconnect is the acceptance gate for request
// cancellation: a client that walks away mid-simulation must abort the
// backend's event loop, not leave it running to completion. The
// simulated workload below takes minutes if run fully; the handler
// must return within seconds of the disconnect.
func TestInFlightAbortOnDisconnect(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	handlerDone := make(chan struct{})
	var once sync.Once
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.Handler().ServeHTTP(w, r)
		if r.URL.Path == "/v1/simulate" {
			once.Do(func() { close(handlerDone) })
		}
	})
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	// A dense, long simulation: ~8 wakeups per second per node on 31
	// nodes over 10^6 simulated seconds — far beyond the deadline below
	// if the event loop ignored cancellation.
	body := `{"protocol":"xmac","scenario":{"depth":5,"density":6,"sample_interval":120,"window":60,"payload":50,"radio":"cc2420"},"params":[0.125],"options":{"duration":1000000}}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")

	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request unexpectedly completed with status %d", resp.StatusCode)
		}
		errCh <- err
	}()

	// Let the simulation spin up, then walk away.
	time.Sleep(300 * time.Millisecond)
	cancel()

	if err := <-errCh; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context canceled", err)
	}
	select {
	case <-handlerDone:
		// The backend noticed the disconnect and aborted.
	case <-time.After(30 * time.Second):
		t.Fatal("handler still running 30s after client disconnect; in-flight work was not aborted")
	}
}
