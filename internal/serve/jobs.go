package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	edmac "github.com/edmac-project/edmac"
	"github.com/edmac-project/edmac/internal/jobs"
)

// jobsStates is the fixed state label set the metrics iterate.
func jobsStates() []jobs.State { return jobs.States() }

// jobSubmitRequest is the wire form of POST /v1/jobs: exactly one of
// the three payloads, each the same document its synchronous endpoint
// accepts — a job is a deferred sync request, nothing more.
type jobSubmitRequest struct {
	Optimize *edmac.OptimizeRequest `json:"optimize,omitempty"`
	Simulate *edmac.SimulateRequest `json:"simulate,omitempty"`
	Suite    *suiteRequest          `json:"suite,omitempty"`
}

// jobLinks are the follow-up URLs a submission (and every status body)
// carries, so clients never build job paths by hand.
type jobLinks struct {
	Status string `json:"status"`
	Result string `json:"result"`
	Events string `json:"events"`
}

// jobProgress is the done/total counter pair.
type jobProgress struct {
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
}

// jobStatusBody is the wire form of a job's externally visible state —
// the 202 submission response, GET status, DELETE confirmation and the
// not-yet-finished result response all share it.
type jobStatusBody struct {
	ID         string        `json:"id"`
	Kind       string        `json:"kind"`
	State      jobs.State    `json:"state"`
	Progress   jobProgress   `json:"progress"`
	CreatedAt  time.Time     `json:"created_at"`
	StartedAt  time.Time     `json:"started_at,omitzero"`
	FinishedAt time.Time     `json:"finished_at,omitzero"`
	Error      *errorPayload `json:"error,omitempty"`
	Links      jobLinks      `json:"links"`
}

// jobStatusOf renders a job's snapshot for the wire. Failures carry
// the same stable code the synchronous endpoint would have answered
// with, so a client's error handling is one switch either way.
func jobStatusOf(j *jobs.Job) jobStatusBody {
	snap := j.Snapshot()
	body := jobStatusBody{
		ID: snap.ID, Kind: snap.Kind, State: snap.State,
		Progress:  jobProgress{Done: snap.Done, Total: snap.Total},
		CreatedAt: snap.Created, StartedAt: snap.Started, FinishedAt: snap.Finished,
		Links: jobLinks{
			Status: "/v1/jobs/" + snap.ID,
			Result: "/v1/jobs/" + snap.ID + "/result",
			Events: "/v1/jobs/" + snap.ID + "/events",
		},
	}
	if snap.Err != "" {
		code := codeInternal
		if _, err, ok := j.Result(); ok && err != nil {
			_, code = errorStatus(err)
		}
		body.Error = &errorPayload{Code: code, Message: snap.Err}
	}
	return body
}

// handleJobSubmit admits one async request: rate limit, decode,
// response-cache short-circuit (a hit becomes a born-done job — still
// fetchable by ID like any other), then queue admission. The run
// function is the same prepared compute the synchronous handler would
// have executed, storing the same marshalled bytes in the same cache —
// which is what makes the fetched result byte-identical to the sync
// response.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil {
		ok, wait := s.limiter.allow(tenantKey(r))
		if !ok {
			secs := int(wait/time.Second) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeCoded(w, http.StatusTooManyRequests, codeRateLimited,
				fmt.Sprintf("tenant submission budget exhausted; retry in %ds", secs))
			return
		}
	}
	var req jobSubmitRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, err)
		return
	}
	var p prepared
	n := 0
	if req.Optimize != nil {
		p, n = s.prepareOptimize(*req.Optimize), n+1
	}
	if req.Simulate != nil {
		p, n = s.prepareSimulate(*req.Simulate), n+1
	}
	if req.Suite != nil {
		sp, err := s.prepareSuite(*req.Suite)
		if err != nil {
			writeError(w, err)
			return
		}
		p, n = sp, n+1
	}
	if n != 1 {
		writeCoded(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("request body: exactly one of optimize, simulate or suite required (got %d)", n))
		return
	}

	if p.key != "" {
		if body, ok := s.cache.Get(p.key); ok {
			j, err := s.jobs.Complete(p.kind, p.total, body.([]byte))
			if err != nil {
				writeError(w, err)
				return
			}
			w.Header().Set("X-Cache", "HIT")
			writeJSON(w, http.StatusAccepted, jobStatusOf(j))
			return
		}
	}
	compute, key, total := p.compute, p.key, p.total
	j, err := s.jobs.Submit(p.kind, p.total, func(ctx context.Context, j *jobs.Job) (any, error) {
		v, err := compute(ctx, func(cell edmac.SuiteCell) { j.Advance("cell", cell) })
		if err != nil {
			return nil, err
		}
		if total == 1 {
			// Single-unit kinds (optimize, simulate) have no per-cell
			// stream; tick the one unit so progress reads 1/1.
			j.Advance("", nil)
		}
		data, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("encode result: %w", err)
		}
		data = append(data, '\n')
		if key != "" {
			s.cache.Add(key, data)
		}
		return data, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", "MISS")
	writeJSON(w, http.StatusAccepted, jobStatusOf(j))
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.Get(id)
	if !ok {
		writeCoded(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, jobStatusOf(j))
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	out := make([]jobStatusBody, 0, len(snaps))
	for _, snap := range snaps {
		// Re-fetch by ID: a job GC'd between List and here just drops out.
		if j, ok := s.jobs.Get(snap.ID); ok {
			out = append(out, jobStatusOf(j))
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobStatusBody `json:"jobs"`
	}{out})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.Cancel(id)
	if !ok {
		writeCoded(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, jobStatusOf(j))
}

// handleJobResult serves the finished payload — the bytes the run
// function stored, i.e. exactly what the synchronous endpoint wrote.
// Unfinished jobs answer 202 with the status body and Retry-After;
// failed jobs answer the same enveloped error the sync call would
// have; cancelled jobs are 410.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	result, err, done := j.Result()
	if !done {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, jobStatusOf(j))
		return
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if data, ok := result.([]byte); ok {
		writeBody(w, data)
		return
	}
	// The serve layer always stores bytes; anything else would be a new
	// job producer that forgot to marshal. Encode it rather than 500.
	s.computeAndWrite(w, "", func() (any, error) { return result, nil })
}

// handleJobEvents streams the job's event log as NDJSON — replay from
// ?from (default 0), then follow live until the terminal event. The
// stream is NDJSON regardless of Accept (there is no other
// representation); an x-ndjson Accept header is simply honored.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeCoded(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("from: %q is not a non-negative integer", v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	// Events returns nil once the terminal event is delivered, or the
	// context's error when the client walks away — either way the
	// stream just ends.
	j.Events(r.Context(), from, func(ev jobs.Event) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}
