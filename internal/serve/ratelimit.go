package serve

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a per-tenant token bucket over job submissions: each
// key earns rate tokens per second up to burst, one submission spends
// one token. Dependency-free — x/time/rate would be a new module. The
// bucket map self-prunes: any key observed at full burst (i.e. idle
// long enough to have refilled completely) is dropped, so one-shot
// tenants don't accumulate forever.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	// now is replaceable in tests.
	now func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = DefaultRateBurst
	}
	return &rateLimiter{
		rate: rate, burst: float64(burst),
		buckets: map[string]*bucket{},
		now:     time.Now,
	}
}

// allow spends one token from key's bucket. When the bucket is empty
// it reports false plus how long until one token accrues — the
// Retry-After the 429 carries.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	// Opportunistic prune: drop other keys that have fully refilled.
	if len(l.buckets) > 1024 {
		for k, ob := range l.buckets {
			if k != key && ob.tokens+now.Sub(ob.last).Seconds()*l.rate >= l.burst {
				delete(l.buckets, k)
			}
		}
	}
	return true, 0
}
