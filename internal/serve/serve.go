// Package serve is the HTTP/JSON service layer over edmac.Client: the
// energy-delay bargaining pipeline as a queryable tradeoff service.
// Clients POST a (scenario, requirements) pair and get the operating
// point back — the request/response shape of the related work's
// utility-energy tradeoff services — with a bounded LRU response cache
// in front of the solvers, so identical requests from many users cost
// one Nelder-Mead solve, not N.
//
// Endpoints (see the README's "Serving edmac" section for payloads):
//
//	GET    /healthz             liveness + cache/jobs statistics
//	GET    /metrics             Prometheus text exposition
//	GET    /v1/scenarios        the builtin scenario registry
//	POST   /v1/optimize         play the game for one protocol
//	POST   /v1/simulate         replay a configuration at packet level
//	POST   /v1/suite            the scenario×protocol matrix (NDJSON
//	                            streaming via Accept: application/x-ndjson
//	                            or the deprecated ?stream=ndjson)
//	POST   /v1/jobs             submit an async job (202 + ID; 429 when
//	                            the queue refuses admission)
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job status + progress
//	GET    /v1/jobs/{id}/result the finished payload, byte-identical to
//	                            the synchronous endpoint's response
//	GET    /v1/jobs/{id}/events NDJSON progress/cell event stream
//	DELETE /v1/jobs/{id}        cancel the job
//
// Every error, on every route, is the one JSON envelope
// {"error":{"code":"...","message":"..."}} with a stable
// machine-readable code; wrong-method requests answer 405 with an
// Allow header in the same envelope. Every handler threads the request
// context into the client, so a disconnected caller aborts its solve,
// simulation event loop or suite worker-pool feed instead of burning
// the backend. The root handler also hardens the process: a panicking
// handler is recovered into a 500 JSON error (counted, visible in
// /healthz and /metrics), and an optional per-request deadline bounds
// how long any one request may hold a worker. Job submissions pass
// per-tenant token-bucket rate limiting (X-Tenant header, falling back
// to the remote address) before touching the queue.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	edmac "github.com/edmac-project/edmac"
	"github.com/edmac-project/edmac/internal/jobs"
	"github.com/edmac-project/edmac/internal/jsonwire"
	"github.com/edmac-project/edmac/internal/lru"
)

// maxBodyBytes bounds request documents; scenario specs are a few KB,
// so a megabyte is generous.
const maxBodyBytes = 1 << 20

// DefaultRateBurst is the token-bucket capacity when rate limiting is
// on and Options leave the burst unset.
const DefaultRateBurst = 5

// Options configure a Server.
type Options struct {
	// Client executes the requests; nil builds a default client with a
	// result cache of DefaultCacheSize entries.
	Client *edmac.Client
	// CacheSize bounds the response cache (entries); values below 1
	// select edmac.DefaultCacheSize.
	CacheSize int
	// RequestTimeout, when positive, bounds every request's context: a
	// solve, simulation or suite that outlives it is cancelled and the
	// request answered 503. Zero imposes no server-side deadline. Job
	// execution is not bound by it — jobs exist precisely so long work
	// outlives its submitting request.
	RequestTimeout time.Duration
	// JobQueue bounds the async tier's admission queue; submissions
	// beyond it answer 429 queue_full. Values below 1 select
	// jobs.DefaultQueue.
	JobQueue int
	// JobWorkers is the number of jobs executed concurrently (each job
	// is internally parallel already); values below 1 select
	// jobs.DefaultWorkers.
	JobWorkers int
	// JobTTL is how long finished jobs are retained for status/result
	// fetches; <= 0 selects jobs.DefaultTTL.
	JobTTL time.Duration
	// JobSpillDir, when set, persists finished job results to disk and
	// reloads them on startup (crash-safe result retention).
	JobSpillDir string
	// RateLimit, when positive, is the per-tenant job-submission budget
	// in submissions per second (token bucket, burst RateBurst). Zero
	// disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket capacity; values below 1 select
	// DefaultRateBurst.
	RateBurst int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in,
	// since profiles expose internals.
	EnablePprof bool
	// Logf, when set, receives one line per completed request.
	Logf func(format string, args ...any)
}

// Server is the HTTP service. Construct with New; the zero value is
// invalid. Safe for concurrent use. Close releases the job workers.
type Server struct {
	cli     *edmac.Client
	cache   *lru.Cache
	jobs    *jobs.Store
	limiter *rateLimiter
	metrics *metrics
	mux     *http.ServeMux
	logf    func(format string, args ...any)
	timeout time.Duration

	// panics counts handler panics absorbed by the recovery middleware —
	// each one is a server bug that answered 500 instead of killing the
	// process; /healthz exposes the count so operators notice.
	panics atomic.Int64
	// coalesced counts responses served by waiting on another request's
	// identical in-flight computation.
	coalesced atomic.Int64

	// flights coalesces concurrent identical cache misses: the first
	// request computes, the rest wait for its response bytes — N users
	// asking the same question cost one solve even before the cache is
	// warm.
	flightMu sync.Mutex
	flights  map[string]*flight
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{} // closed when data/err are set
	data []byte
	err  error
}

// New builds the service around its client.
func New(o Options) (*Server, error) {
	cli := o.Client
	if cli == nil {
		var err error
		cli, err = edmac.NewClient(edmac.WithCache(edmac.DefaultCacheSize))
		if err != nil {
			return nil, err
		}
	}
	size := o.CacheSize
	if size < 1 {
		size = edmac.DefaultCacheSize
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	store, err := jobs.New(jobs.Options{
		Queue:    o.JobQueue,
		Workers:  o.JobWorkers,
		TTL:      o.JobTTL,
		SpillDir: o.JobSpillDir,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cli: cli, cache: lru.New(size), jobs: store,
		metrics: newMetrics(),
		mux:     http.NewServeMux(), logf: logf, timeout: o.RequestTimeout,
		flights: map[string]*flight{},
	}
	if o.RateLimit > 0 {
		s.limiter = newRateLimiter(o.RateLimit, o.RateBurst)
	}
	s.route("/healthz", methods{"GET": s.handleHealthz})
	s.route("/metrics", methods{"GET": s.handleMetrics})
	s.route("/v1/scenarios", methods{"GET": s.handleScenarios})
	s.route("/v1/optimize", methods{"POST": s.handleOptimize})
	s.route("/v1/simulate", methods{"POST": s.handleSimulate})
	s.route("/v1/suite", methods{"POST": s.handleSuite})
	s.route("/v1/jobs", methods{"POST": s.handleJobSubmit, "GET": s.handleJobList})
	s.route("/v1/jobs/{id}", methods{"GET": s.handleJobStatus, "DELETE": s.handleJobCancel})
	s.route("/v1/jobs/{id}/result", methods{"GET": s.handleJobResult})
	s.route("/v1/jobs/{id}/events", methods{"GET": s.handleJobEvents})
	if o.EnablePprof {
		s.mountPprof()
	}
	// Everything unrouted answers the enveloped 404 instead of the
	// default plain-text one.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeCoded(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("no route for %s", r.URL.Path))
	})
	return s, nil
}

// Close stops the job workers (cancelling running jobs). The HTTP
// handler must not be used afterwards.
func (s *Server) Close() {
	s.jobs.Close()
}

// methods maps HTTP methods onto handlers for one route.
type methods map[string]http.HandlerFunc

// route registers a path pattern with per-method dispatch: a request
// whose method has no handler answers 405 with an Allow header and the
// error envelope — uniformly, on every route. HEAD rides on GET (the
// server strips the body). The pattern doubles as the bounded-
// cardinality endpoint label of the request metrics.
func (s *Server) route(pattern string, m methods) {
	allowed := make([]string, 0, len(m)+1)
	for method := range m {
		allowed = append(allowed, method)
	}
	if _, ok := m["GET"]; ok {
		allowed = append(allowed, "HEAD")
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if sw, ok := w.(*statusWriter); ok {
			sw.endpoint = pattern
		}
		h, ok := m[r.Method]
		if !ok && r.Method == http.MethodHead {
			h, ok = m[http.MethodGet]
		}
		if !ok {
			w.Header().Set("Allow", allow)
			writeCoded(w, http.StatusMethodNotAllowed, codeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed on %s (allow: %s)", r.Method, pattern, allow))
			return
		}
		h(w, r)
	})
}

// mountPprof exposes the runtime profiles. The endpoint label is
// collapsed to one value so profile names don't fan out the metrics.
func (s *Server) mountPprof() {
	wrap := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if sw, ok := w.(*statusWriter); ok {
				sw.endpoint = "/debug/pprof"
			}
			h(w, r)
		}
	}
	s.mux.HandleFunc("/debug/pprof/", wrap(pprof.Index))
	s.mux.HandleFunc("/debug/pprof/cmdline", wrap(pprof.Cmdline))
	s.mux.HandleFunc("/debug/pprof/profile", wrap(pprof.Profile))
	s.mux.HandleFunc("/debug/pprof/symbol", wrap(pprof.Symbol))
	s.mux.HandleFunc("/debug/pprof/trace", wrap(pprof.Trace))
}

// Handler returns the service's root handler: panic recovery, the
// optional per-request deadline, request metrics, and the request log.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK, endpoint: "other"}
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		func() {
			// A handler panic is a server bug, not a reason to die: count
			// it, log the stack, and answer 500 if the status line hasn't
			// gone out yet (mid-stream there is nothing left to salvage —
			// the connection just ends). http.ErrAbortHandler is the
			// sanctioned abort sentinel and keeps its meaning.
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if v == http.ErrAbortHandler {
					panic(v)
				}
				s.panics.Add(1)
				s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				if !sw.wrote {
					writeCoded(sw, http.StatusInternalServerError, codeInternal, "internal error")
				}
			}()
			s.mux.ServeHTTP(sw, r)
		}()
		s.metrics.observe(sw.endpoint, sw.status, time.Since(start))
		s.logf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

// PanicsRecovered reports how many handler panics the root handler has
// absorbed since the server was built.
func (s *Server) PanicsRecovered() int64 { return s.panics.Load() }

// CacheStats reports the response cache's lifetime counters — the
// observable the smoke test (and operators) assert cache behaviour on.
func (s *Server) CacheStats() edmac.CacheStats {
	hits, misses := s.cache.Stats()
	return edmac.CacheStats{Hits: hits, Misses: misses, Entries: s.cache.Len()}
}

// statusWriter records the status code for the request log and whether
// anything reached the wire (the panic recovery can only substitute a
// 500 while the response is still unwritten). The matched route sets
// endpoint, which becomes the metrics label.
type statusWriter struct {
	http.ResponseWriter
	status   int
	wrote    bool
	endpoint string
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Flush forwards streaming flushes (NDJSON suite cells) to the
// underlying writer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// --- error envelope ---------------------------------------------------

// The stable machine-readable error codes. Every error response on
// every route carries exactly one of these; clients branch on the code,
// never on the message text.
const (
	codeInvalidRequest   = "invalid_request"
	codeInfeasible       = "infeasible"
	codeTimeout          = "timeout"
	codeQueueFull        = "queue_full"
	codeRateLimited      = "rate_limited"
	codeNotFound         = "not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codeCancelled        = "cancelled"
	codeClientClosed     = "client_closed"
	codeInternal         = "internal"
)

// errorPayload is the inner error object of the envelope.
type errorPayload struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the uniform error response:
// {"error":{"code":"...","message":"..."}}.
type errorBody struct {
	Error errorPayload `json:"error"`
}

// statusClientClosedRequest is the de-facto (nginx) status for requests
// abandoned by the caller; nothing readable reaches the client, but the
// request log keeps an honest record.
const statusClientClosedRequest = 499

// errorStatus classifies an error into (HTTP status, stable code):
// infeasible games are 422 (a well-formed request whose requirements
// cannot be met), abandoned requests 499, requests that outlived the
// server's own deadline 503 (only the RequestTimeout middleware sets
// one — a disconnecting client surfaces as Canceled, not
// DeadlineExceeded), refused job admissions 429, cancelled jobs 410,
// everything else a 400 — handlers own no state, so residual failures
// are request-induced.
func errorStatus(err error) (int, string) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests, codeQueueFull
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable, codeInternal
	case errors.Is(err, jobs.ErrCancelled):
		return http.StatusGone, codeCancelled
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, codeClientClosed
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, codeTimeout
	case errors.Is(err, edmac.ErrInfeasible):
		return http.StatusUnprocessableEntity, codeInfeasible
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, codeInvalidRequest
	}
	return http.StatusBadRequest, codeInvalidRequest
}

// writeError maps an error onto the wire in the uniform envelope.
func writeError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	//edvet:ignore jsonwire code flows from errorStatus, whose returns edvet pins to the code set
	writeCoded(w, status, code, err.Error())
}

// writeCoded writes the error envelope with an explicit status/code.
func writeCoded(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorBody{Error: errorPayload{Code: code, Message: message}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Nothing user-induced marshals badly; this is a server bug.
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// decodeStrict parses a request document into req, rejecting unknown
// fields so typos fail loudly (the module-wide spec-parsing
// convention).
func decodeStrict(r *http.Request, req any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// wantsNDJSON is the suite-streaming content negotiation: the Accept
// header naming application/x-ndjson is the canonical spelling, with
// the historical ?stream=ndjson query parameter kept as a deprecated
// alias.
func wantsNDJSON(r *http.Request) bool {
	if r.URL.Query().Get("stream") != "" {
		return true
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediatype, _, _ := strings.Cut(part, ";")
		if strings.TrimSpace(mediatype) == "application/x-ndjson" {
			return true
		}
	}
	return false
}

// tenantKey identifies the principal a rate bucket belongs to: the
// X-Tenant header when the caller names itself, the remote host
// otherwise.
func tenantKey(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return "tenant:" + t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// cacheKey canonicalizes a decoded request — the same rule the
// Client's result cache keys with (re-marshalling the typed struct
// erases field order, whitespace and null-vs-absent differences), so
// the two caching layers always agree on which requests are equal.
var cacheKey = jsonwire.CacheKey

// serveCached answers from the response cache or computes, caches and
// answers. An empty key means "uncacheable". Only successful responses
// are cached. Concurrent identical misses coalesce: one request (the
// leader) computes while the rest wait for its bytes, so a cold-cache
// stampede of equal requests costs one solve. The X-Cache header
// reports HIT, MISS (leader) or COALESCED (waiter) on every cacheable
// request.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, compute func() (any, error)) {
	if key == "" {
		s.computeAndWrite(w, "", compute)
		return
	}
	for {
		if body, ok := s.cache.Get(key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeBody(w, body.([]byte))
			return
		}
		s.flightMu.Lock()
		if f, ok := s.flights[key]; ok {
			// Someone else is already computing this answer: wait for it
			// (or for our own caller to walk away).
			s.flightMu.Unlock()
			select {
			case <-f.done:
			case <-r.Context().Done():
				writeError(w, r.Context().Err())
				return
			}
			if f.err != nil {
				// The leader may have failed for its own reasons (its
				// client disconnected mid-solve); retry the loop — the
				// next round finds the cache, a new flight, or makes
				// this request the leader.
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					continue
				}
				writeError(w, f.err)
				return
			}
			s.coalesced.Add(1)
			w.Header().Set("X-Cache", "COALESCED")
			writeBody(w, f.data)
			return
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.flightMu.Unlock()

		w.Header().Set("X-Cache", "MISS")
		f.data, f.err = s.computeAndWrite(w, key, compute)
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
		return
	}
}

// computeAndWrite runs the computation, writes the response (caching
// successes under key when non-empty), and returns what it wrote for
// flight waiters.
func (s *Server) computeAndWrite(w http.ResponseWriter, key string, compute func() (any, error)) ([]byte, error) {
	v, err := compute()
	if err != nil {
		writeError(w, err)
		return nil, err
	}
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed"}}`, http.StatusInternalServerError)
		return nil, err
	}
	data = append(data, '\n')
	if key != "" {
		s.cache.Add(key, data)
	}
	writeBody(w, data)
	return data, nil
}

// writeBody writes a prepared JSON response body.
func writeBody(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// --- prepared requests ------------------------------------------------

// prepared is one executable request, shared verbatim by the
// synchronous handlers and the async job executor: the same compute
// closure and the same cache key, which is what makes a job's fetched
// result byte-identical to the synchronous response and lets the two
// paths share the response cache.
type prepared struct {
	kind  string
	key   string // response-cache key; "" = uncacheable
	total int    // progress denominator (suite: cells, else 1)
	// compute runs the request. observe (nil on synchronous calls)
	// receives every finished suite cell for progress publication.
	compute func(ctx context.Context, observe func(edmac.SuiteCell)) (any, error)
}

func (s *Server) prepareOptimize(req edmac.OptimizeRequest) prepared {
	key, _ := cacheKey("optimize", req)
	return prepared{kind: "optimize", key: key, total: 1,
		compute: func(ctx context.Context, _ func(edmac.SuiteCell)) (any, error) {
			return s.cli.Optimize(ctx, req)
		}}
}

func (s *Server) prepareSimulate(req edmac.SimulateRequest) prepared {
	// Key on the effective request: an absent duration and the explicit
	// default are the same simulation, so they must share a cache entry.
	keyReq := req
	if keyReq.Options.Duration <= 0 {
		keyReq.Options.Duration = edmac.DefaultSimDuration
	}
	key, _ := cacheKey("simulate", keyReq)
	return prepared{kind: "simulate", key: key, total: 1,
		compute: func(ctx context.Context, _ func(edmac.SuiteCell)) (any, error) {
			rep, err := s.cli.Simulate(ctx, req)
			if err != nil {
				return nil, err
			}
			return struct {
				Sim      wireSimReport        `json:"sim"`
				Analytic *edmac.AnalyticCheck `json:"analytic,omitempty"`
			}{wireSimReportOf(rep.Sim), rep.Analytic}, nil
		}}
}

func (s *Server) prepareSuite(req suiteRequest) (prepared, error) {
	resolved, err := req.resolve()
	if err != nil {
		return prepared{}, err
	}
	// Key on the effective request, not its spelling: the worker count
	// never changes results (the module-wide determinism contract),
	// empty selections mean the full registry / all protocols, and
	// absent options mean their documented defaults — none of those may
	// fragment the cache.
	keyReq := req
	keyReq.Options.Workers = 0
	if keyReq.Options.Duration <= 0 {
		keyReq.Options.Duration = edmac.DefaultSuiteDuration
	}
	if keyReq.Options.EnergyBudget <= 0 {
		keyReq.Options.EnergyBudget = edmac.DefaultEnergyBudget()
	}
	keyReq.Scenarios = make([]string, len(resolved.Scenarios))
	for i, sp := range resolved.Scenarios {
		keyReq.Scenarios[i] = sp.Name()
	}
	keyReq.Protocols = resolved.Protocols
	key, _ := cacheKey("suite", keyReq)
	return prepared{
		kind: "suite", key: key,
		total: len(resolved.Scenarios) * len(resolved.Protocols),
		compute: func(ctx context.Context, observe func(edmac.SuiteCell)) (any, error) {
			if observe == nil {
				return s.cli.Suite(ctx, resolved)
			}
			return s.cli.SuiteObserved(ctx, resolved, func(cell edmac.SuiteCell) error {
				observe(cell)
				return nil
			})
		}}, nil
}

// --- handlers ---------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status          string             `json:"status"`
		ResponseCache   edmac.CacheStats   `json:"response_cache"`
		ResultCache     edmac.CacheStats   `json:"result_cache"`
		PanicsRecovered int64              `json:"panics_recovered"`
		JobsQueueDepth  int                `json:"jobs_queue_depth"`
		Jobs            map[jobs.State]int `json:"jobs"`
	}{"ok", s.CacheStats(), s.cli.CacheStats(), s.PanicsRecovered(), s.jobs.Depth(), s.jobs.Counts()})
}

// scenarioInfo is one registry row of GET /v1/scenarios.
type scenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Topology    string `json:"topology"`
	Traffic     string `json:"traffic"`
	Channel     string `json:"channel"`
	Phased      bool   `json:"phased,omitempty"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	builtins := edmac.BuiltinScenarios()
	out := make([]scenarioInfo, len(builtins))
	for i, sp := range builtins {
		out[i] = scenarioInfo{
			Name:        sp.Name(),
			Description: sp.Description(),
			Topology:    sp.TopologyKind(),
			Traffic:     sp.TrafficKind(),
			Channel:     sp.ChannelKind(),
			Phased:      sp.Phased(),
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Scenarios []scenarioInfo `json:"scenarios"`
	}{out})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req edmac.OptimizeRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p := s.prepareOptimize(req)
	s.serveCached(w, r, p.key, func() (any, error) { return p.compute(r.Context(), nil) })
}

// wireSimReport is SimReport with the NaN-able delay summaries boxed,
// so the response always encodes (encoding/json rejects NaN). The
// field set and names match SimReport's tags.
type wireSimReport struct {
	Protocol         edmac.Protocol `json:"protocol"`
	Params           []float64      `json:"params"`
	Seed             int64          `json:"seed"`
	Duration         float64        `json:"duration"`
	Nodes            int            `json:"nodes"`
	Generated        int            `json:"generated"`
	Delivered        int            `json:"delivered"`
	Duplicates       int            `json:"duplicates,omitempty"`
	Dropped          int            `json:"dropped"`
	Collisions       int            `json:"collisions"`
	ChannelLosses    int            `json:"channel_losses,omitempty"`
	Captures         int            `json:"captures,omitempty"`
	DeliveryRatio    float64        `json:"delivery_ratio"`
	MeanDelay        *float64       `json:"mean_delay,omitempty"`
	MaxDelay         *float64       `json:"max_delay,omitempty"`
	P95Delay         *float64       `json:"p95_delay,omitempty"`
	OuterRingDelay   *float64       `json:"outer_ring_delay,omitempty"`
	BottleneckEnergy float64        `json:"bottleneck_energy"`
	// Scheduler observability counters (see edmac.SimReport).
	Events          uint64 `json:"events,omitempty"`
	PeakPending     int    `json:"peak_pending,omitempty"`
	WheelPromotions uint64 `json:"wheel_promotions,omitempty"`
	// Survivability block of fault-injected runs; all omitted on
	// failure-free ones (see edmac.SimReport).
	Deaths             int     `json:"deaths,omitempty"`
	Recoveries         int     `json:"recoveries,omitempty"`
	DeadAtEnd          int     `json:"dead_at_end,omitempty"`
	StrandedPackets    int     `json:"stranded_packets,omitempty"`
	DeadNodeFraction   float64 `json:"dead_node_fraction,omitempty"`
	PartitionFraction  float64 `json:"partition_fraction,omitempty"`
	Rebargains         int     `json:"rebargains,omitempty"`
	DegradedRebargains int     `json:"degraded_rebargains,omitempty"`
}

func wireSimReportOf(rep edmac.SimReport) wireSimReport {
	return wireSimReport{
		Protocol:         rep.Protocol,
		Params:           rep.Params,
		Seed:             rep.Seed,
		Duration:         rep.Duration,
		Nodes:            rep.Nodes,
		Generated:        rep.Generated,
		Delivered:        rep.Delivered,
		Duplicates:       rep.Duplicates,
		Dropped:          rep.Dropped,
		Collisions:       rep.Collisions,
		ChannelLosses:    rep.ChannelLosses,
		Captures:         rep.Captures,
		DeliveryRatio:    rep.DeliveryRatio,
		MeanDelay:        finiteOrNil(rep.MeanDelay),
		MaxDelay:         finiteOrNil(rep.MaxDelay),
		P95Delay:         finiteOrNil(rep.P95Delay),
		OuterRingDelay:   finiteOrNil(rep.OuterRingDelay),
		BottleneckEnergy: rep.BottleneckEnergy,

		Events:          rep.Events,
		PeakPending:     rep.PeakPending,
		WheelPromotions: rep.WheelPromotions,

		Deaths:             rep.Deaths,
		Recoveries:         rep.Recoveries,
		DeadAtEnd:          rep.DeadAtEnd,
		StrandedPackets:    rep.StrandedPackets,
		DeadNodeFraction:   rep.DeadNodeFraction,
		PartitionFraction:  rep.PartitionFraction,
		Rebargains:         rep.Rebargains,
		DegradedRebargains: rep.DegradedRebargains,
	}
}

// finiteOrNil is the module-wide non-finite-scrubbing rule.
var finiteOrNil = jsonwire.FiniteOrNil

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req edmac.SimulateRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p := s.prepareSimulate(req)
	s.serveCached(w, r, p.key, func() (any, error) { return p.compute(r.Context(), nil) })
}

// suiteRequest is the wire form of POST /v1/suite: builtin scenarios
// by name (empty: the whole registry) against a protocol list (empty:
// all five).
type suiteRequest struct {
	Scenarios []string           `json:"scenarios,omitempty"`
	Protocols []edmac.Protocol   `json:"protocols,omitempty"`
	Options   edmac.SuiteOptions `json:"options,omitempty"`
}

// resolve expands the wire request into the client's SuiteRequest.
func (req suiteRequest) resolve() (edmac.SuiteRequest, error) {
	out := edmac.SuiteRequest{Options: req.Options}
	if len(req.Scenarios) == 0 {
		out.Scenarios = edmac.BuiltinScenarios()
	} else {
		for _, name := range req.Scenarios {
			sp, ok := edmac.BuiltinScenario(name)
			if !ok {
				return edmac.SuiteRequest{}, fmt.Errorf("unknown scenario %q (GET /v1/scenarios lists the registry)", name)
			}
			out.Scenarios = append(out.Scenarios, sp)
		}
	}
	out.Protocols = req.Protocols
	if len(out.Protocols) == 0 {
		out.Protocols = edmac.Protocols()
	}
	return out, nil
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	var req suiteRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p, err := s.prepareSuite(req)
	if err != nil {
		writeError(w, err)
		return
	}
	if wantsNDJSON(r) {
		resolved, _ := req.resolve()
		s.streamSuite(w, r, resolved)
		return
	}
	s.serveCached(w, r, p.key, func() (any, error) { return p.compute(r.Context(), nil) })
}

// streamSuite answers NDJSON-negotiated suite requests: one SuiteCell
// per line, written (and flushed) as each cell finishes — long
// matrices surface progress instead of a minutes-long silence. Streams
// bypass the response cache; a disconnecting client cancels the
// remaining cells through the request context.
func (s *Server) streamSuite(w http.ResponseWriter, r *http.Request, req edmac.SuiteRequest) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", "BYPASS")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	// Push the status line out before the first cell computes: consumers
	// learn the stream is live immediately, not minutes in.
	if flusher != nil {
		flusher.Flush()
	}
	err := s.cli.SuiteStream(r.Context(), req, func(cell edmac.SuiteCell) error {
		if err := enc.Encode(cell); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// The status line is long gone; a trailer line keeps the error
		// visible to stream consumers.
		_, code := errorStatus(err)
		enc.Encode(errorBody{Error: errorPayload{Code: code, Message: err.Error()}})
	}
}

// DefaultLogf returns a request logger onto the standard log package —
// what cmd/edserve wires in.
func DefaultLogf() func(format string, args ...any) {
	return log.Printf
}
