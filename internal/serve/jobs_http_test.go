package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/edmac-project/edmac/internal/jobs"
)

// smallSuite is a fast two-cell matrix used throughout the job tests.
const smallSuite = `{"scenarios":["ring-baseline"],"protocols":["xmac","lmac"],"options":{"duration":40,"seed":1}}`

// longSuite takes minutes if nothing cancels it — the workload for
// cancel/queue-full tests.
const longSuite = `{"scenarios":["ring-baseline"],"protocols":["xmac"],"options":{"duration":1000000,"seed":1}}`

func doReq(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// pollJob polls the status endpoint until the predicate holds or the
// deadline passes, returning the last status body.
func pollJob(t *testing.T, base, id string, ok func(jobStatusBody) bool) jobStatusBody {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data := doReq(t, "GET", base+"/v1/jobs/"+id, "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job status: %d (%s)", resp.StatusCode, data)
		}
		var st jobStatusBody
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decode status: %v in %s", err, data)
		}
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the wanted state; last: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func submitJob(t *testing.T, base, body string) jobStatusBody {
	t.Helper()
	resp, data := doReq(t, "POST", base+"/v1/jobs", body, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s), want 202", resp.StatusCode, data)
	}
	var st jobStatusBody
	if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
		t.Fatalf("submit body: %s (err %v)", data, err)
	}
	return st
}

// TestErrorEnvelopeTable pins the envelope contract: every failure, on
// every kind of route, is {"error":{"code","message"}} with the stable
// code — wrong paths, wrong methods, bad bodies, missing jobs alike.
func TestErrorEnvelopeTable(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, tc := range map[string]struct {
		method, path, body string
		status             int
		code               string
	}{
		"unknown path":        {"GET", "/v1/nope", "", 404, "not_found"},
		"wrong method GET":    {"GET", "/v1/optimize", "", 405, "method_not_allowed"},
		"wrong method POST":   {"POST", "/healthz", "{}", 405, "method_not_allowed"},
		"wrong method PUT":    {"PUT", "/v1/jobs", "{}", 405, "method_not_allowed"},
		"wrong method DELETE": {"DELETE", "/v1/suite", "", 405, "method_not_allowed"},
		"malformed json":      {"POST", "/v1/optimize", `{"protocol":`, 400, "invalid_request"},
		"unknown field":       {"POST", "/v1/simulate", `{"proto":"xmac"}`, 400, "invalid_request"},
		"unknown scenario":    {"POST", "/v1/suite", `{"scenarios":["nope"]}`, 400, "invalid_request"},
		"infeasible":          {"POST", "/v1/optimize", `{"protocol":"lmac","requirements":{"energy_budget":0.01,"max_delay":6}}`, 422, "infeasible"},
		"empty job submit":    {"POST", "/v1/jobs", `{}`, 400, "invalid_request"},
		"two job payloads":    {"POST", "/v1/jobs", `{"optimize":{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}},"suite":` + smallSuite + `}`, 400, "invalid_request"},
		"job not found":       {"GET", "/v1/jobs/deadbeefdeadbeef", "", 404, "not_found"},
		"result not found":    {"GET", "/v1/jobs/deadbeefdeadbeef/result", "", 404, "not_found"},
		"events not found":    {"GET", "/v1/jobs/deadbeefdeadbeef/events", "", 404, "not_found"},
		"cancel not found":    {"DELETE", "/v1/jobs/deadbeefdeadbeef", "", 404, "not_found"},
		"bad events from":     {"GET", "/v1/jobs/deadbeefdeadbeef/events?from=x", "", 404, "not_found"},
	} {
		resp, data := doReq(t, tc.method, ts.URL+tc.path, tc.body, nil)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d (%s), want %d", name, resp.StatusCode, data, tc.status)
			continue
		}
		if code, _ := decodeEnvelope(t, data); code != tc.code {
			t.Errorf("%s: code = %q, want %q", name, code, tc.code)
		}
	}
}

// TestMethodNotAllowedAllowHeader pins the Allow header per route.
func TestMethodNotAllowedAllowHeader(t *testing.T) {
	ts, _ := newTestServer(t)
	for path, want := range map[string]string{
		"/healthz":      "GET, HEAD",
		"/metrics":      "GET, HEAD",
		"/v1/scenarios": "GET, HEAD",
		"/v1/optimize":  "POST",
		"/v1/simulate":  "POST",
		"/v1/suite":     "POST",
		"/v1/jobs":      "GET, HEAD, POST",
	} {
		resp, data := doReq(t, "PATCH", ts.URL+path, "", nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("PATCH %s: status = %d (%s), want 405", path, resp.StatusCode, data)
			continue
		}
		if got := resp.Header.Get("Allow"); got != want {
			t.Errorf("PATCH %s: Allow = %q, want %q", path, got, want)
		}
	}
	// The job item routes carry their own method sets.
	resp, _ := doReq(t, "POST", ts.URL+"/v1/jobs/xyz", "{}", nil)
	if got := resp.Header.Get("Allow"); resp.StatusCode != 405 || got != "DELETE, GET, HEAD" {
		t.Errorf("POST /v1/jobs/{id}: status %d Allow %q", resp.StatusCode, got)
	}
}

// TestHeadRidesOnGet: HEAD answers like GET with the body stripped.
func TestHeadRidesOnGet(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Head(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("HEAD /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD /healthz: status %d, want 200", resp.StatusCode)
	}
}

// TestSuiteAcceptNDJSON: the Accept header negotiates the stream — no
// query parameter needed.
func TestSuiteAcceptNDJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, data := doReq(t, "POST", ts.URL+"/v1/suite", smallSuite,
		map[string]string{"Accept": "application/x-ndjson"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("%d NDJSON lines, want 2: %s", len(lines), data)
	}
	// A q-listed Accept with other types still negotiates.
	resp2, _ := doReq(t, "POST", ts.URL+"/v1/suite", smallSuite,
		map[string]string{"Accept": "text/plain, application/x-ndjson;q=0.9"})
	if ct := resp2.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("q-listed Accept: Content-Type = %q", ct)
	}
	// Plain JSON stays the default.
	resp3, _ := doReq(t, "POST", ts.URL+"/v1/suite", smallSuite, nil)
	if ct := resp3.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q", ct)
	}
}

// TestJobSuiteLifecycle is the tentpole acceptance test: submit a suite
// as a job, follow its per-cell progress over the events stream, and
// fetch a result byte-identical to the synchronous endpoint's response
// — including across two independent servers (no shared cache to hide
// behind).
func TestJobSuiteLifecycle(t *testing.T) {
	tsA, _ := newTestServer(t)
	_, syncBytes := postJSON(t, tsA.URL+"/v1/suite", smallSuite)

	tsB, _ := newTestServer(t)
	st := submitJob(t, tsB.URL, `{"suite":`+smallSuite+`}`)
	if st.Kind != "suite" || st.Progress.Total != 2 {
		t.Fatalf("submit status = %+v, want kind suite total 2", st)
	}
	if st.Links.Result != "/v1/jobs/"+st.ID+"/result" {
		t.Fatalf("links = %+v", st.Links)
	}

	final := pollJob(t, tsB.URL, st.ID, func(b jobStatusBody) bool { return b.State.Terminal() })
	if final.State != jobs.Done || final.Progress.Done != 2 {
		t.Fatalf("final status = %+v, want done 2/2", final)
	}

	// The events stream replays the whole history: queued → running →
	// two cell events with payloads → done.
	resp, data := doReq(t, "GET", tsB.URL+"/v1/jobs/"+st.ID+"/events", "",
		map[string]string{"Accept": "application/x-ndjson"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d (%s)", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var evs []jobs.Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	cells := 0
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d; log not dense: %+v", i, ev.Seq, evs)
		}
		if ev.Type == "cell" {
			cells++
			if ev.Payload == nil {
				t.Fatalf("cell event without payload: %+v", ev)
			}
		}
	}
	if cells != 2 || len(evs) != 5 {
		t.Fatalf("%d events with %d cells, want 5 with 2: %+v", len(evs), cells, evs)
	}
	if evs[0].State != jobs.Queued || evs[len(evs)-1].State != jobs.Done {
		t.Fatalf("event endpoints wrong: %+v", evs)
	}

	// Resume from an offset.
	_, tail := doReq(t, "GET", tsB.URL+"/v1/jobs/"+st.ID+"/events?from=4", "", nil)
	if n := len(bytes.Split(bytes.TrimSpace(tail), []byte("\n"))); n != 1 {
		t.Fatalf("resumed stream has %d lines, want 1: %s", n, tail)
	}

	// The fetched result is byte-identical to the synchronous response —
	// computed on a different server.
	resultResp, jobBytes := doReq(t, "GET", tsB.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
	if resultResp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d (%s)", resultResp.StatusCode, jobBytes)
	}
	if !bytes.Equal(jobBytes, syncBytes) {
		t.Fatalf("job result differs from sync response:\njob:  %s\nsync: %s", jobBytes, syncBytes)
	}

	// The job's bytes landed in B's response cache: the synchronous
	// endpoint now answers HIT with the same bytes...
	syncB, syncBBytes := postJSON(t, tsB.URL+"/v1/suite", smallSuite)
	if got := syncB.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("sync after job: X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(syncBBytes, jobBytes) {
		t.Fatal("sync-after-job bytes differ from the job result")
	}
	// ...and a repeat submission is born done (cache short-circuit).
	resp2, data2 := doReq(t, "POST", tsB.URL+"/v1/jobs", `{"suite":`+smallSuite+`}`, nil)
	if resp2.StatusCode != http.StatusAccepted || resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("repeat submit: status %d X-Cache %q (%s)", resp2.StatusCode, resp2.Header.Get("X-Cache"), data2)
	}
	var st2 jobStatusBody
	if err := json.Unmarshal(data2, &st2); err != nil || st2.State != jobs.Done {
		t.Fatalf("repeat submit not born done: %s", data2)
	}

	// The listing knows both jobs.
	_, listData := doReq(t, "GET", tsB.URL+"/v1/jobs", "", nil)
	var list struct {
		Jobs []jobStatusBody `json:"jobs"`
	}
	if err := json.Unmarshal(listData, &list); err != nil || len(list.Jobs) != 2 {
		t.Fatalf("list = %s (err %v), want 2 jobs", listData, err)
	}
}

// TestJobOptimizeAndSimulate: the other two kinds round-trip too.
func TestJobOptimizeAndSimulate(t *testing.T) {
	ts, _ := newTestServer(t)
	for kind, payload := range map[string]string{
		"optimize": `{"optimize":{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}}`,
		"simulate": `{"simulate":{"protocol":"xmac","scenario_name":"ring-baseline","params":[0.25],"options":{"duration":60,"seed":7}}}`,
	} {
		st := submitJob(t, ts.URL, payload)
		if st.Kind != kind {
			t.Fatalf("kind = %q, want %q", st.Kind, kind)
		}
		final := pollJob(t, ts.URL, st.ID, func(b jobStatusBody) bool { return b.State.Terminal() })
		if final.State != jobs.Done || final.Progress.Done != 1 || final.Progress.Total != 1 {
			t.Fatalf("%s final = %+v, want done 1/1", kind, final)
		}
		resp, data := doReq(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
		if resp.StatusCode != http.StatusOK || len(data) == 0 {
			t.Fatalf("%s result: status %d (%s)", kind, resp.StatusCode, data)
		}
	}
}

// TestJobFailureCarriesCode: a job that fails keeps the sync error
// contract — the result answers the same status and stable code the
// synchronous endpoint would have.
func TestJobFailureCarriesCode(t *testing.T) {
	ts, _ := newTestServer(t)
	st := submitJob(t, ts.URL, `{"optimize":{"protocol":"lmac","requirements":{"energy_budget":0.01,"max_delay":6}}}`)
	final := pollJob(t, ts.URL, st.ID, func(b jobStatusBody) bool { return b.State.Terminal() })
	if final.State != jobs.Failed || final.Error == nil || final.Error.Code != "infeasible" {
		t.Fatalf("final = %+v, want failed/infeasible", final)
	}
	resp, data := doReq(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("result status = %d (%s), want 422", resp.StatusCode, data)
	}
	if code, _ := decodeEnvelope(t, data); code != "infeasible" {
		t.Fatalf("result code = %q, want infeasible", code)
	}
}

// TestJobCancelHTTP: DELETE cancels a running job; its result becomes
// the 410/cancelled envelope.
func TestJobCancelHTTP(t *testing.T) {
	ts, _ := newTestServer(t)
	st := submitJob(t, ts.URL, `{"suite":`+longSuite+`}`)
	pollJob(t, ts.URL, st.ID, func(b jobStatusBody) bool { return b.State == jobs.Running })

	// While running, the result endpoint defers politely.
	resp, data := doReq(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("pending result: status %d Retry-After %q (%s)", resp.StatusCode, resp.Header.Get("Retry-After"), data)
	}

	start := time.Now()
	resp, data = doReq(t, "DELETE", ts.URL+"/v1/jobs/"+st.ID, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d (%s)", resp.StatusCode, data)
	}
	final := pollJob(t, ts.URL, st.ID, func(b jobStatusBody) bool { return b.State.Terminal() })
	if final.State != jobs.Cancelled {
		t.Fatalf("state after cancel = %q, want cancelled", final.State)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %s; the run context was not honored", elapsed)
	}
	resp, data = doReq(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("cancelled result: status %d (%s), want 410", resp.StatusCode, data)
	}
	if code, _ := decodeEnvelope(t, data); code != "cancelled" {
		t.Fatalf("cancelled result code = %q", code)
	}
}

// TestJobQueueFullHTTP: admission control over HTTP — a full queue
// answers 429 queue_full with Retry-After, and capacity freed by
// cancellation re-admits.
func TestJobQueueFullHTTP(t *testing.T) {
	s, err := New(Options{JobQueue: 1, JobWorkers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Wedge the single worker, then fill the depth-1 queue.
	running := submitJob(t, ts.URL, `{"suite":`+longSuite+`}`)
	pollJob(t, ts.URL, running.ID, func(b jobStatusBody) bool { return b.State == jobs.Running })
	queued := submitJob(t, ts.URL, `{"suite":`+longSuite+`}`)

	resp, data := doReq(t, "POST", ts.URL+"/v1/jobs", `{"suite":`+longSuite+`}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if code, _ := decodeEnvelope(t, data); code != "queue_full" {
		t.Fatalf("overflow code = %q, want queue_full", code)
	}

	// Cancel both; the queue drains and admission resumes.
	doReq(t, "DELETE", ts.URL+"/v1/jobs/"+queued.ID, "", nil)
	doReq(t, "DELETE", ts.URL+"/v1/jobs/"+running.ID, "", nil)
	pollJob(t, ts.URL, running.ID, func(b jobStatusBody) bool { return b.State.Terminal() })
	st := submitJob(t, ts.URL, `{"suite":`+smallSuite+`}`)
	pollJob(t, ts.URL, st.ID, func(b jobStatusBody) bool { return b.State == jobs.Done })
}

// TestRateLimitPerTenant: each X-Tenant has its own token bucket.
func TestRateLimitPerTenant(t *testing.T) {
	s, err := New(Options{RateLimit: 0.001, RateBurst: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	submit := func(tenant string) (*http.Response, []byte) {
		return doReq(t, "POST", ts.URL+"/v1/jobs",
			`{"optimize":{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}}`,
			map[string]string{"X-Tenant": tenant})
	}
	for i := 0; i < 2; i++ {
		if resp, data := submit("alice"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("alice submit %d: status %d (%s)", i, resp.StatusCode, data)
		}
	}
	resp, data := submit("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over budget: status %d (%s), want 429", resp.StatusCode, data)
	}
	if code, _ := decodeEnvelope(t, data); code != "rate_limited" {
		t.Fatalf("rate-limit code = %q", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 without Retry-After")
	}
	// A different tenant is unaffected.
	if resp, data := submit("bob"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob submit: status %d (%s)", resp.StatusCode, data)
	}
}

// TestMetricsEndpoint: the exposition carries every promised family.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	doReq(t, "GET", ts.URL+"/healthz", "", nil)
	postJSON(t, ts.URL+"/v1/optimize", `{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}`)
	postJSON(t, ts.URL+"/v1/optimize", `{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}`)
	st := submitJob(t, ts.URL, `{"suite":`+smallSuite+`}`)
	pollJob(t, ts.URL, st.ID, func(b jobStatusBody) bool { return b.State.Terminal() })

	resp, data := doReq(t, "GET", ts.URL+"/metrics", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		`edserve_requests_total{endpoint="/healthz",code="200"} 1`,
		`edserve_requests_total{endpoint="/v1/optimize",code="200"} 2`,
		`edserve_request_duration_seconds_count{endpoint="/v1/optimize",code="200"} 2`,
		`edserve_jobs_queue_depth 0`,
		`edserve_jobs{state="done"} 1`,
		`edserve_jobs{state="queued"} 0`,
		`edserve_response_cache_hits_total 1`,
		`edserve_response_cache_misses_total`,
		`edserve_response_cache_coalesced_total 0`,
		`edserve_result_cache_hits_total`,
		`edserve_panics_recovered_total 0`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q:\n%s", want, data)
		}
	}
}

// TestPprofOptIn: the profile mux only exists behind the flag.
func TestPprofOptIn(t *testing.T) {
	off, _ := newTestServer(t)
	resp, data := doReq(t, "GET", off.URL+"/debug/pprof/cmdline", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: status %d (%s), want 404", resp.StatusCode, data)
	}
	if code, _ := decodeEnvelope(t, data); code != "not_found" {
		t.Fatalf("pprof-off code = %q", code)
	}

	s, err := New(Options{EnablePprof: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	resp, _ = doReq(t, "GET", ts.URL+"/debug/pprof/cmdline", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag: status %d, want 200", resp.StatusCode)
	}
}

// TestJobSpillSurvivesRestart: a finished job's result is fetchable,
// byte-identical, from a fresh server over the same spill directory.
func TestJobSpillSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{JobSpillDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	st := submitJob(t, ts1.URL, `{"suite":`+smallSuite+`}`)
	pollJob(t, ts1.URL, st.ID, func(b jobStatusBody) bool { return b.State == jobs.Done })
	_, want := doReq(t, "GET", ts1.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
	ts1.Close()
	s1.Close()

	s2, err := New(Options{JobSpillDir: dir})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	resp, got := doReq(t, "GET", ts2.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored result: status %d (%s)", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored result differs:\nwas: %s\nnow: %s", want, got)
	}
}
