package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/edmac-project/edmac/internal/macmodel"
)

// The parallel sweeps must be bit-identical to their sequential
// counterparts for every protocol: same cells, same order, same floats.
func TestParallelSweepsMatchSequential(t *testing.T) {
	env := macmodel.Default()
	for _, name := range []string{"xmac", "dmac", "lmac", "bmac", "scpmac"} {
		t.Run(name, func(t *testing.T) {
			m, err := macmodel.New(name, env)
			if err != nil {
				t.Fatalf("model: %v", err)
			}
			seq := SweepMaxDelay(m, PaperEnergyBudget, PaperDelays())
			par, err := SweepMaxDelayParallel(context.Background(), m, PaperEnergyBudget, PaperDelays(), 4)
			if err != nil {
				t.Fatalf("parallel sweep: %v", err)
			}
			comparePoints(t, "SweepMaxDelay", seq, par)

			seq = SweepEnergyBudget(m, PaperMaxDelay, PaperBudgets())
			par, err = SweepEnergyBudgetParallel(context.Background(), m, PaperMaxDelay, PaperBudgets(), 4)
			if err != nil {
				t.Fatalf("parallel sweep: %v", err)
			}
			comparePoints(t, "SweepEnergyBudget", seq, par)
		})
	}
}

func comparePoints(t *testing.T, what string, seq, par []SweepPoint) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: %d sequential cells vs %d parallel", what, len(seq), len(par))
	}
	for i := range seq {
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Errorf("%s[%d]: err mismatch: %v vs %v", what, i, seq[i].Err, par[i].Err)
			continue
		}
		if seq[i].Err != nil {
			if seq[i].Err.Error() != par[i].Err.Error() {
				t.Errorf("%s[%d]: err text mismatch: %v vs %v", what, i, seq[i].Err, par[i].Err)
			}
			continue
		}
		// Tradeoff is floats and strings all the way down; it must match
		// exactly, not approximately.
		if !reflect.DeepEqual(seq[i].Tradeoff, par[i].Tradeoff) {
			t.Errorf("%s[%d]: tradeoff mismatch:\nsequential %+v\nparallel   %+v",
				what, i, seq[i].Tradeoff, par[i].Tradeoff)
		}
	}
}

func TestParallelSweepCancellation(t *testing.T) {
	env := macmodel.Default()
	m, err := macmodel.New("xmac", env)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepMaxDelayParallel(ctx, m, PaperEnergyBudget, PaperDelays(), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}
