// Package core orchestrates the paper's framework end to end: it maps an
// application's requirements (energy budget per node, maximum end-to-end
// delay) and a duty-cycled MAC protocol model onto the two-player
// cooperative game of internal/nbs, and returns the energy-optimal (P1),
// delay-optimal (P2) and Nash-bargaining (P3/P4) operating points with
// the concrete MAC parameters that realize them.
package core

import (
	"context"
	"fmt"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/nbs"
	"github.com/edmac-project/edmac/internal/opt"
)

// Requirements are the application inputs of the framework.
type Requirements struct {
	// EnergyBudget is the paper's Ebudget: the maximum energy a node may
	// spend per accounting window, in joules.
	EnergyBudget float64
	// MaxDelay is the paper's Lmax: the maximum tolerated end-to-end
	// packet delay, in seconds.
	MaxDelay float64
}

// Validate reports whether the requirements are usable.
func (r Requirements) Validate() error {
	if r.EnergyBudget <= 0 {
		return fmt.Errorf("core: energy budget %v must be positive", r.EnergyBudget)
	}
	if r.MaxDelay <= 0 {
		return fmt.Errorf("core: max delay %v must be positive", r.MaxDelay)
	}
	return nil
}

// OperatingPoint is a concrete protocol configuration and its metrics.
type OperatingPoint struct {
	// Params is the protocol parameter vector (see Model.Params for the
	// meaning of each coordinate).
	Params opt.Vector
	// Energy is the bottleneck node's energy over one window, in joules.
	Energy float64
	// Delay is the worst-case expected end-to-end delay, in seconds.
	Delay float64
}

// Tradeoff is the complete result of playing the energy-delay game for
// one protocol under one set of requirements.
type Tradeoff struct {
	// Protocol is the model name ("xmac", "dmac", "lmac", "bmac").
	Protocol string
	// Requirements echoes the inputs.
	Requirements Requirements
	// EnergyOptimal solves (P1): minimal energy subject to MaxDelay.
	// Its metrics are the paper's (Ebest, Lworst).
	EnergyOptimal OperatingPoint
	// DelayOptimal solves (P2): minimal delay subject to EnergyBudget.
	// Its metrics are the paper's (Eworst, Lbest).
	DelayOptimal OperatingPoint
	// WorstEnergy and WorstDelay form the disagreement point.
	WorstEnergy float64
	WorstDelay  float64
	// Bargain is the Nash Bargaining Solution: the fair compromise the
	// framework recommends deploying.
	Bargain OperatingPoint
	// FairnessEnergy and FairnessDelay are the proportional-fairness
	// coordinates of the bargain (equal on linear frontiers).
	FairnessEnergy float64
	FairnessDelay  float64
	// Degenerate reports that the frontier offered no strict joint
	// improvement over the disagreement point and the bargain is the
	// feasibility fallback.
	Degenerate bool
	// BudgetExceeded reports (relaxed mode only) that no configuration
	// meets both requirements at once and Bargain is the best-effort
	// point: it honours MaxDelay but spends more than EnergyBudget.
	BudgetExceeded bool
}

// GameFor builds the nbs.Game for a protocol model under the given
// requirements: player A is energy, player B is delay.
func GameFor(m macmodel.Model, req Requirements) nbs.Game {
	return nbs.Game{
		CostA:      m.Energy,
		CostB:      m.Delay,
		BudgetA:    req.EnergyBudget,
		BudgetB:    req.MaxDelay,
		Bounds:     m.Bounds(),
		Structural: m.Structural(),
	}
}

// Optimize plays the full game for the model and returns the trade-off.
// It returns an error wrapping nbs.ErrInfeasible when the requirements
// cannot be met by any parameter setting of the protocol.
func Optimize(m macmodel.Model, req Requirements) (Tradeoff, error) {
	return optimize(m, req, false)
}

// OptimizeRelaxed behaves like Optimize but reproduces the paper's
// figure behaviour for over-constrained requirement pairs: instead of
// failing it returns the best-effort point that honours MaxDelay while
// exceeding EnergyBudget, flagged via Tradeoff.BudgetExceeded. The
// figure sweeps use this mode.
func OptimizeRelaxed(m macmodel.Model, req Requirements) (Tradeoff, error) {
	return optimize(m, req, true)
}

func optimize(m macmodel.Model, req Requirements, relax bool) (Tradeoff, error) {
	if err := req.Validate(); err != nil {
		return Tradeoff{}, err
	}
	g := GameFor(m, req)
	g.Relax = relax
	out, err := nbs.Solve(g)
	if err != nil {
		return Tradeoff{}, fmt.Errorf("core: %s under (Ebudget=%v J, Lmax=%v s): %w",
			m.Name(), req.EnergyBudget, req.MaxDelay, err)
	}
	fA, fB := out.Fairness()
	return Tradeoff{
		Protocol:       m.Name(),
		Requirements:   req,
		EnergyOptimal:  pointOf(out.BestA),
		DelayOptimal:   pointOf(out.BestB),
		WorstEnergy:    out.DisagreementA,
		WorstDelay:     out.DisagreementB,
		Bargain:        pointOf(out.Bargain),
		FairnessEnergy: fA,
		FairnessDelay:  fB,
		Degenerate:     out.Degenerate,
		BudgetExceeded: out.BudgetExceeded,
	}, nil
}

// Frontier traces the protocol's E-L Pareto curve up to MaxDelay — the
// continuous lines in the paper's figures.
func Frontier(m macmodel.Model, req Requirements, n int) ([]nbs.Point, error) {
	return FrontierContext(context.Background(), m, req, n)
}

// FrontierContext is Frontier with the point-granular cancellation of
// nbs.FrontierContext.
func FrontierContext(ctx context.Context, m macmodel.Model, req Requirements, n int) ([]nbs.Point, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	pts, err := nbs.FrontierContext(ctx, GameFor(m, req), req.MaxDelay, n)
	if err != nil {
		if ctx.Err() != nil {
			// Cancellation is the caller's doing, not a solver failure;
			// surface it undecorated so errors.Is keeps working cheaply.
			return nil, err
		}
		return nil, fmt.Errorf("core: %s frontier: %w", m.Name(), err)
	}
	return pts, nil
}

func pointOf(p nbs.Point) OperatingPoint {
	return OperatingPoint{Params: p.X, Energy: p.A, Delay: p.B}
}
