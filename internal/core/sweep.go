package core

import (
	"errors"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/nbs"
)

// SweepPoint is one cell of a requirement sweep. Err is non-nil (wrapping
// nbs.ErrInfeasible) for requirement combinations the protocol cannot
// satisfy; such cells are part of the result because the figures must
// report them.
type SweepPoint struct {
	Requirements Requirements
	Tradeoff     Tradeoff
	Err          error
}

// Infeasible reports whether the cell failed due to infeasibility (as
// opposed to being solved).
func (s SweepPoint) Infeasible() bool {
	return s.Err != nil && errors.Is(s.Err, nbs.ErrInfeasible)
}

// SweepMaxDelay reproduces the paper's Figure 1 series for one protocol:
// the energy budget is fixed and the delay bound Lmax takes each value in
// delays, yielding one bargained trade-off point per bound. Cells whose
// joint requirements are unattainable carry the best-effort point with
// Tradeoff.BudgetExceeded set (relaxed mode), matching the over-budget
// points visible in the paper's LMAC subplots.
func SweepMaxDelay(m macmodel.Model, energyBudget float64, delays []float64) []SweepPoint {
	points := make([]SweepPoint, 0, len(delays))
	for _, lmax := range delays {
		req := Requirements{EnergyBudget: energyBudget, MaxDelay: lmax}
		tr, err := OptimizeRelaxed(m, req)
		points = append(points, SweepPoint{Requirements: req, Tradeoff: tr, Err: err})
	}
	return points
}

// SweepEnergyBudget reproduces the paper's Figure 2 series for one
// protocol: the delay bound is fixed and the energy budget takes each
// value in budgets. Unattainable cells behave as in SweepMaxDelay.
func SweepEnergyBudget(m macmodel.Model, maxDelay float64, budgets []float64) []SweepPoint {
	points := make([]SweepPoint, 0, len(budgets))
	for _, budget := range budgets {
		req := Requirements{EnergyBudget: budget, MaxDelay: maxDelay}
		tr, err := OptimizeRelaxed(m, req)
		points = append(points, SweepPoint{Requirements: req, Tradeoff: tr, Err: err})
	}
	return points
}

// PaperDelays returns the Lmax sweep of the paper's Figure 1: 1..6 s.
func PaperDelays() []float64 { return []float64{1, 2, 3, 4, 5, 6} }

// PaperBudgets returns the Ebudget sweep of the paper's Figure 2:
// 0.01..0.06 J.
func PaperBudgets() []float64 { return []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06} }

// PaperEnergyBudget is the fixed budget of Figure 1 (0.06 J).
const PaperEnergyBudget = 0.06

// PaperMaxDelay is the fixed delay bound of Figure 2 (6 s).
const PaperMaxDelay = 6.0
