package core

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/macmodel"
)

// TestSweepMaxDelayFavorsEnergyPlayer reproduces the paper's Figure 1
// claim: relaxing the delay bound moves the agreement in favour of the
// energy player — bargained energy falls (weakly) as Lmax grows.
func TestSweepMaxDelayFavorsEnergyPlayer(t *testing.T) {
	for _, name := range []string{"xmac", "dmac", "lmac"} {
		m := model(t, name)
		pts := SweepMaxDelay(m, PaperEnergyBudget, PaperDelays())
		if len(pts) != 6 {
			t.Fatalf("%s: %d sweep points", name, len(pts))
		}
		prevE := math.Inf(1)
		for _, p := range pts {
			if p.Err != nil {
				t.Fatalf("%s: Lmax=%v: %v", name, p.Requirements.MaxDelay, p.Err)
			}
			e := p.Tradeoff.Bargain.Energy
			if e > prevE*1.02+1e-9 {
				t.Errorf("%s: bargain energy rose from %v to %v when relaxing Lmax to %v",
					name, prevE, e, p.Requirements.MaxDelay)
			}
			prevE = e
		}
	}
}

// TestSweepEnergyBudgetFavorsDelayPlayer reproduces the paper's Figure 2
// claim: raising the energy budget moves the agreement in favour of the
// delay player — bargained delay falls (weakly) as Ebudget grows.
func TestSweepEnergyBudgetFavorsDelayPlayer(t *testing.T) {
	for _, name := range []string{"xmac", "dmac"} {
		m := model(t, name)
		pts := SweepEnergyBudget(m, PaperMaxDelay, PaperBudgets())
		prevL := math.Inf(1)
		for _, p := range pts {
			if p.Err != nil {
				t.Fatalf("%s: Ebudget=%v: %v", name, p.Requirements.EnergyBudget, p.Err)
			}
			l := p.Tradeoff.Bargain.Delay
			if l > prevL*1.02+1e-9 {
				t.Errorf("%s: bargain delay rose from %v to %v when raising Ebudget to %v",
					name, prevL, l, p.Requirements.EnergyBudget)
			}
			prevL = l
		}
	}
}

// TestXMACSaturatesWithLooseDeadlines reproduces the Figure 1(a)
// annotation: for X-MAC the trade-off points for Lmax in the 3..6 s
// range coincide — the delay bound stops binding once it passes the
// protocol's unconstrained optimum.
func TestXMACSaturatesWithLooseDeadlines(t *testing.T) {
	m := model(t, "xmac")
	pts := SweepMaxDelay(m, PaperEnergyBudget, []float64{4, 5, 6})
	ref := pts[0].Tradeoff.Bargain
	for _, p := range pts[1:] {
		if p.Err != nil {
			t.Fatalf("Lmax=%v: %v", p.Requirements.MaxDelay, p.Err)
		}
		b := p.Tradeoff.Bargain
		if math.Abs(b.Energy-ref.Energy) > 0.05*ref.Energy+1e-9 {
			t.Errorf("Lmax=%v: bargain energy %v differs from saturated %v",
				p.Requirements.MaxDelay, b.Energy, ref.Energy)
		}
	}
}

// TestXMACSaturatesWithLargeBudgets reproduces the Figure 2(a)
// annotation: X-MAC's points for Ebudget 0.04..0.06 J coincide because
// the delay-optimal configuration hits the wakeup-interval floor.
func TestXMACSaturatesWithLargeBudgets(t *testing.T) {
	m := model(t, "xmac")
	pts := SweepEnergyBudget(m, PaperMaxDelay, []float64{0.045, 0.05, 0.06})
	ref := pts[0].Tradeoff.Bargain
	for _, p := range pts[1:] {
		if p.Err != nil {
			t.Fatalf("Ebudget=%v: %v", p.Requirements.EnergyBudget, p.Err)
		}
		b := p.Tradeoff.Bargain
		if math.Abs(b.Delay-ref.Delay) > 0.05*ref.Delay+1e-9 {
			t.Errorf("Ebudget=%v: bargain delay %v differs from saturated %v",
				p.Requirements.EnergyBudget, b.Delay, ref.Delay)
		}
	}
}

// TestProtocolOrderingAtTightDeadline reproduces the figures' energy-axis
// ordering: under a tight 1-second deadline the bargained energies order
// X-MAC < DMAC < LMAC.
func TestProtocolOrderingAtTightDeadline(t *testing.T) {
	energies := map[string]float64{}
	for _, name := range []string{"xmac", "dmac", "lmac"} {
		m := model(t, name)
		tr, err := Optimize(m, Requirements{EnergyBudget: 10, MaxDelay: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		energies[name] = tr.Bargain.Energy
	}
	if !(energies["xmac"] < energies["dmac"] && energies["dmac"] < energies["lmac"]) {
		t.Errorf("protocol ordering violated: %v", energies)
	}
}

// TestLMACTightestBudgetBestEffort documents a divergence from the paper
// recorded in EXPERIMENTS.md: our reconstructed LMAC cannot meet
// Ebudget=0.01 J within Lmax=6 s (its control-tracking floor is higher
// than the original model's). In the figure sweep the cell must carry
// the best-effort point — delay bound honoured, budget exceeded —
// exactly how the paper's own over-budget LMAC points behave.
func TestLMACTightestBudgetBestEffort(t *testing.T) {
	m := model(t, "lmac")
	pts := SweepEnergyBudget(m, PaperMaxDelay, PaperBudgets())
	first := pts[0]
	if first.Err != nil {
		t.Fatalf("Ebudget=0.01: relaxed sweep errored: %v", first.Err)
	}
	if !first.Tradeoff.BudgetExceeded {
		t.Errorf("Ebudget=0.01: expected a budget-exceeded best-effort point, got E=%v",
			first.Tradeoff.Bargain.Energy)
	}
	if first.Tradeoff.Bargain.Energy <= first.Requirements.EnergyBudget {
		t.Errorf("best-effort point E=%v should exceed the %v budget",
			first.Tradeoff.Bargain.Energy, first.Requirements.EnergyBudget)
	}
	if first.Tradeoff.Bargain.Delay > PaperMaxDelay+1e-6 {
		t.Errorf("best-effort point must honour Lmax: delay %v", first.Tradeoff.Bargain.Delay)
	}
	for _, p := range pts[1:] {
		if p.Err != nil {
			t.Errorf("Ebudget=%v: %v", p.Requirements.EnergyBudget, p.Err)
		}
		if p.Tradeoff.BudgetExceeded {
			t.Errorf("Ebudget=%v: unexpectedly flagged budget-exceeded", p.Requirements.EnergyBudget)
		}
	}
	// The strict API must refuse the same cell instead.
	if _, err := Optimize(m, Requirements{EnergyBudget: 0.01, MaxDelay: PaperMaxDelay}); err == nil {
		t.Error("strict Optimize accepted an unattainable requirement pair")
	}
}

func TestSweepPointInfeasibleHelper(t *testing.T) {
	m := model(t, "xmac")
	pts := SweepEnergyBudget(m, 0.001, []float64{1e-9})
	if len(pts) != 1 || !pts[0].Infeasible() {
		t.Error("hopeless cell not reported as infeasible")
	}
	ok := SweepMaxDelay(m, PaperEnergyBudget, []float64{3})
	if ok[0].Infeasible() {
		t.Errorf("feasible cell flagged infeasible: %v", ok[0].Err)
	}
}

func TestPaperConstants(t *testing.T) {
	if n := len(PaperDelays()); n != 6 {
		t.Errorf("PaperDelays: %d values, want 6", n)
	}
	if n := len(PaperBudgets()); n != 6 {
		t.Errorf("PaperBudgets: %d values, want 6", n)
	}
	if PaperDelays()[5] != PaperMaxDelay {
		t.Error("figure constants inconsistent: largest swept delay should equal the fixed Lmax")
	}
	if PaperBudgets()[5] != PaperEnergyBudget {
		t.Error("figure constants inconsistent: largest swept budget should equal the fixed Ebudget")
	}
}

func TestDefaultEnvMatchesModels(t *testing.T) {
	// Guard: the sweeps above rely on every protocol building cleanly
	// against the default environment.
	for _, name := range macmodel.Names() {
		if _, err := macmodel.New(name, macmodel.Default()); err != nil {
			t.Errorf("New(%s, Default): %v", name, err)
		}
	}
}
