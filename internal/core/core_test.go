package core

import (
	"errors"
	"testing"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/nbs"
)

func model(t *testing.T, name string) macmodel.Model {
	t.Helper()
	m, err := macmodel.New(name, macmodel.Default())
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return m
}

func paperReq() Requirements {
	return Requirements{EnergyBudget: PaperEnergyBudget, MaxDelay: PaperMaxDelay}
}

func TestRequirementsValidate(t *testing.T) {
	if err := paperReq().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := (Requirements{EnergyBudget: 0, MaxDelay: 1}).Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	if err := (Requirements{EnergyBudget: 1, MaxDelay: -1}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
}

// TestOptimizeInvariants checks, for every protocol under the paper's
// headline requirements, the structural facts the game guarantees.
func TestOptimizeInvariants(t *testing.T) {
	const tol = 1e-6
	for _, name := range macmodel.Names() {
		m := model(t, name)
		tr, err := Optimize(m, paperReq())
		if err != nil {
			t.Fatalf("%s: Optimize: %v", name, err)
		}
		if tr.Protocol != name {
			t.Errorf("%s: protocol = %q", name, tr.Protocol)
		}
		// P1 and P2 respect their own constraints.
		if tr.EnergyOptimal.Delay > PaperMaxDelay+tol {
			t.Errorf("%s: P1 delay %v exceeds Lmax", name, tr.EnergyOptimal.Delay)
		}
		if tr.DelayOptimal.Energy > PaperEnergyBudget+tol {
			t.Errorf("%s: P2 energy %v exceeds budget", name, tr.DelayOptimal.Energy)
		}
		// Optima are no worse than the other player's point on their own
		// metric.
		if tr.EnergyOptimal.Energy > tr.DelayOptimal.Energy+tol {
			t.Errorf("%s: Ebest %v above Eworst %v", name, tr.EnergyOptimal.Energy, tr.DelayOptimal.Energy)
		}
		if tr.DelayOptimal.Delay > tr.EnergyOptimal.Delay+tol {
			t.Errorf("%s: Lbest %v above Lworst %v", name, tr.DelayOptimal.Delay, tr.EnergyOptimal.Delay)
		}
		// Disagreement point is (Eworst, Lworst).
		if tr.WorstEnergy != tr.DelayOptimal.Energy || tr.WorstDelay != tr.EnergyOptimal.Delay {
			t.Errorf("%s: disagreement (%v, %v) mismatches P1/P2 (%v, %v)",
				name, tr.WorstEnergy, tr.WorstDelay, tr.DelayOptimal.Energy, tr.EnergyOptimal.Delay)
		}
		// The bargain lands inside the application box and inside the
		// rectangle spanned by best and worst values.
		b := tr.Bargain
		if b.Energy > PaperEnergyBudget+tol || b.Delay > PaperMaxDelay+tol {
			t.Errorf("%s: bargain (%v J, %v s) violates requirements", name, b.Energy, b.Delay)
		}
		if b.Energy > tr.WorstEnergy+tol || b.Delay > tr.WorstDelay+tol {
			t.Errorf("%s: bargain (%v, %v) outside disagreement rectangle (%v, %v)",
				name, b.Energy, b.Delay, tr.WorstEnergy, tr.WorstDelay)
		}
		if b.Energy < tr.EnergyOptimal.Energy-tol {
			t.Errorf("%s: bargain energy %v beats the energy-optimal %v", name, b.Energy, tr.EnergyOptimal.Energy)
		}
		if b.Delay < tr.DelayOptimal.Delay-tol {
			t.Errorf("%s: bargain delay %v beats the delay-optimal %v", name, b.Delay, tr.DelayOptimal.Delay)
		}
		// Parameters are inside the model box.
		if !m.Bounds().Contains(b.Params) {
			t.Errorf("%s: bargain params %v escape bounds", name, b.Params)
		}
		// Fairness coordinates live in [0, 1] for non-degenerate games.
		if !tr.Degenerate {
			for _, f := range []float64{tr.FairnessEnergy, tr.FairnessDelay} {
				if f < -tol || f > 1+tol {
					t.Errorf("%s: fairness coordinate %v outside [0,1]", name, f)
				}
			}
		}
	}
}

func TestOptimizeInfeasibleRequirements(t *testing.T) {
	m := model(t, "xmac")
	// A microjoule budget with a millisecond deadline is impossible.
	_, err := Optimize(m, Requirements{EnergyBudget: 1e-6, MaxDelay: 1e-3})
	if err == nil {
		t.Fatal("impossible requirements accepted")
	}
	if !errors.Is(err, nbs.ErrInfeasible) {
		t.Errorf("error %v does not wrap ErrInfeasible", err)
	}
}

func TestOptimizeRejectsBadRequirements(t *testing.T) {
	m := model(t, "xmac")
	if _, err := Optimize(m, Requirements{}); err == nil {
		t.Error("zero requirements accepted")
	}
}

func TestFrontierForModels(t *testing.T) {
	for _, name := range []string{"xmac", "lmac"} {
		m := model(t, name)
		pts, err := Frontier(m, paperReq(), 12)
		if err != nil {
			t.Fatalf("%s: Frontier: %v", name, err)
		}
		if len(pts) < 6 {
			t.Fatalf("%s: frontier too sparse: %d points", name, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].A > pts[i-1].A+1e-6 {
				t.Errorf("%s: frontier energy rises with delay at point %d (%v after %v)",
					name, i, pts[i].A, pts[i-1].A)
			}
		}
	}
}

func TestFrontierValidatesRequirements(t *testing.T) {
	m := model(t, "xmac")
	if _, err := Frontier(m, Requirements{}, 10); err == nil {
		t.Error("invalid requirements accepted")
	}
}
