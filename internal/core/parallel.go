package core

import (
	"context"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/par"
)

// SweepMaxDelayParallel is SweepMaxDelay fanned over a worker pool: one
// goroutine solves one delay bound at a time, and the returned slice is
// in the same order as delays — element i is always the solve for
// delays[i], so the result is identical to the sequential sweep
// (macmodel.Model implementations are immutable and the solvers are
// deterministic; concurrency changes only the wall clock).
//
// workers < 1 uses one worker per CPU. Cancelling ctx abandons cells not
// yet started and returns ctx.Err(); already-solved cells are lost.
func SweepMaxDelayParallel(ctx context.Context, m macmodel.Model, energyBudget float64, delays []float64, workers int) ([]SweepPoint, error) {
	points := make([]SweepPoint, len(delays))
	err := par.ForEach(ctx, len(delays), workers, func(i int) {
		req := Requirements{EnergyBudget: energyBudget, MaxDelay: delays[i]}
		tr, err := OptimizeRelaxed(m, req)
		points[i] = SweepPoint{Requirements: req, Tradeoff: tr, Err: err}
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// SweepEnergyBudgetParallel is SweepEnergyBudget fanned over a worker
// pool, with the same ordering, determinism and cancellation contract as
// SweepMaxDelayParallel.
func SweepEnergyBudgetParallel(ctx context.Context, m macmodel.Model, maxDelay float64, budgets []float64, workers int) ([]SweepPoint, error) {
	points := make([]SweepPoint, len(budgets))
	err := par.ForEach(ctx, len(budgets), workers, func(i int) {
		req := Requirements{EnergyBudget: budgets[i], MaxDelay: maxDelay}
		tr, err := OptimizeRelaxed(m, req)
		points[i] = SweepPoint{Requirements: req, Tradeoff: tr, Err: err}
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}
