package opt

import (
	"math"
	"testing"
)

func boxAround(center Vector, half float64) Bounds {
	lo := make(Vector, len(center))
	hi := make(Vector, len(center))
	for i := range center {
		lo[i] = center[i] - half
		hi[i] = center[i] + half
	}
	return Bounds{Lo: lo, Hi: hi}
}

func TestNelderMeadSphere(t *testing.T) {
	f := func(x Vector) float64 {
		s := 0.0
		for _, v := range x {
			s += (v - 1) * (v - 1)
		}
		return s
	}
	b := boxAround(Vector{0, 0, 0}, 5)
	r := NelderMead(f, Vector{-3, 4, 2}, b, NMOptions{})
	for i, v := range r.X {
		if math.Abs(v-1) > 1e-5 {
			t.Errorf("x[%d] = %v, want 1", i, v)
		}
	}
	if r.Evals <= 0 {
		t.Error("Evals not counted")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x Vector) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	b := Bounds{Lo: Vector{-5, -5}, Hi: Vector{5, 5}}
	r := NelderMead(f, Vector{-1.2, 1}, b, NMOptions{MaxIter: 4000})
	if math.Abs(r.X[0]-1) > 1e-3 || math.Abs(r.X[1]-1) > 1e-3 {
		t.Errorf("x = %v, want (1,1)", r.X)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	// Unconstrained minimum at (−4, −4) sits outside the box; solution
	// must land on the box corner.
	f := func(x Vector) float64 { return (x[0]+4)*(x[0]+4) + (x[1]+4)*(x[1]+4) }
	b := Bounds{Lo: Vector{-1, -1}, Hi: Vector{3, 3}}
	r := NelderMead(f, Vector{2, 2}, b, NMOptions{})
	if !b.Contains(r.X) {
		t.Fatalf("result %v escaped bounds", r.X)
	}
	if math.Abs(r.X[0]+1) > 1e-5 || math.Abs(r.X[1]+1) > 1e-5 {
		t.Errorf("x = %v, want (-1,-1)", r.X)
	}
}

func TestNelderMeadHandlesInfPlateaus(t *testing.T) {
	// Infeasible half-plane returns +Inf, as penalized NBS objectives do.
	f := func(x Vector) float64 {
		if x[0] < 0.5 {
			return math.Inf(1)
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	b := Bounds{Lo: Vector{0}, Hi: Vector{5}}
	r := NelderMead(f, Vector{4.5}, b, NMOptions{})
	if math.Abs(r.X[0]-2) > 1e-4 {
		t.Errorf("x = %v, want 2", r.X)
	}
}

func TestNelderMeadNaNTreatedAsInf(t *testing.T) {
	f := func(x Vector) float64 {
		if x[0] > 3 {
			return math.NaN()
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	b := Bounds{Lo: Vector{0}, Hi: Vector{10}}
	r := NelderMead(f, Vector{9}, b, NMOptions{})
	if math.Abs(r.X[0]-1) > 1e-3 {
		t.Errorf("x = %v, want 1", r.X)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x Vector) float64 { return 0.09/x[0] + 2.24e-3*x[0] }
	b := Bounds{Lo: Vector{0.001}, Hi: Vector{10}}
	r := NelderMead(f, Vector{5}, b, NMOptions{})
	want := math.Sqrt(0.09 / 2.24e-3)
	if math.Abs(r.X[0]-want)/want > 1e-3 {
		t.Errorf("x = %v, want %v", r.X[0], want)
	}
}
