package opt

import (
	"math"
	"math/rand"
)

// MultiStart runs Nelder-Mead with an exact penalty from `starts` points
// sampled uniformly from the box (deterministically for a given seed)
// plus the box centre, and returns the lexicographically best outcome.
// It is an independent solving strategy used to cross-check Solve in
// tests and ablation benchmarks.
func MultiStart(p Problem, starts int, seed int64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if starts < 1 {
		starts = 1
	}
	const feasTol = 1e-9
	rng := rand.New(rand.NewSource(seed))
	evals := 0
	obj := func(x Vector) float64 {
		evals++
		return p.Objective(x)
	}
	pen := func(x Vector) float64 {
		v := p.Violation(x)
		if math.IsInf(v, 1) {
			return math.Inf(1)
		}
		return obj(x) + 1e7*v
	}

	dim := p.Bounds.Dim()
	best := Result{F: math.Inf(1), Violation: math.Inf(1)}
	try := func(x0 Vector) {
		r := NelderMead(pen, x0, p.Bounds, NMOptions{})
		f := obj(r.X)
		viol := p.Violation(r.X)
		if isWorse(best.F, best.Violation, f, viol, feasTol) {
			best = Result{X: r.X.Clone(), F: f, Violation: viol}
		}
	}
	try(p.Bounds.Center())
	for s := 1; s < starts; s++ {
		x0 := make(Vector, dim)
		for i := range x0 {
			x0[i] = p.Bounds.Lo[i] + rng.Float64()*(p.Bounds.Hi[i]-p.Bounds.Lo[i])
		}
		try(x0)
	}
	best.Evals = evals
	if best.Violation > feasTol {
		return best, ErrInfeasible
	}
	return best, nil
}
