package opt

import (
	"math"
	"math/rand"
	"sync/atomic"

	"github.com/edmac-project/edmac/internal/par"
)

// MultiStart runs Nelder-Mead with an exact penalty from `starts` points
// sampled uniformly from the box (deterministically for a given seed)
// plus the box centre, and returns the lexicographically best outcome.
// It is an independent solving strategy used to cross-check Solve in
// tests and ablation benchmarks.
func MultiStart(p Problem, starts int, seed int64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if starts < 1 {
		starts = 1
	}
	const feasTol = 1e-9
	rng := rand.New(rand.NewSource(seed))
	evals := 0
	obj := func(x Vector) float64 {
		evals++
		return p.Objective(x)
	}
	pen := func(x Vector) float64 {
		v := p.Violation(x)
		if math.IsInf(v, 1) {
			return math.Inf(1)
		}
		return obj(x) + 1e7*v
	}

	dim := p.Bounds.Dim()
	best := Result{F: math.Inf(1), Violation: math.Inf(1)}
	try := func(x0 Vector) {
		r := NelderMead(pen, x0, p.Bounds, NMOptions{})
		f := obj(r.X)
		viol := p.Violation(r.X)
		if isWorse(best.F, best.Violation, f, viol, feasTol) {
			best = Result{X: r.X.Clone(), F: f, Violation: viol}
		}
	}
	try(p.Bounds.Center())
	for s := 1; s < starts; s++ {
		x0 := make(Vector, dim)
		for i := range x0 {
			x0[i] = p.Bounds.Lo[i] + rng.Float64()*(p.Bounds.Hi[i]-p.Bounds.Lo[i])
		}
		try(x0)
	}
	best.Evals = evals
	if best.Violation > feasTol {
		return best, ErrInfeasible
	}
	return best, nil
}

// MultiStartParallel is MultiStart fanned over a worker pool: the start
// points are drawn up front from the same deterministic stream, each
// Nelder-Mead run solves independently on the pool, and the reduction
// walks the runs in start order with the same lexicographic rule — so
// the returned Result is identical to MultiStart's for equal inputs
// (including Evals: the counter is shared atomically and every run
// performs the same evaluations it would sequentially).
//
// The problem's Objective and Constraints must be safe for concurrent
// calls; the framework's closed-form models are (they are immutable).
// workers < 1 uses one worker per CPU.
func MultiStartParallel(p Problem, starts int, seed int64, workers int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if starts < 1 {
		starts = 1
	}
	const feasTol = 1e-9
	rng := rand.New(rand.NewSource(seed))
	dim := p.Bounds.Dim()

	// Draw every start point first: the RNG stream stays identical to
	// the sequential version's regardless of worker interleaving.
	points := make([]Vector, starts)
	points[0] = p.Bounds.Center()
	for s := 1; s < starts; s++ {
		x0 := make(Vector, dim)
		for i := range x0 {
			x0[i] = p.Bounds.Lo[i] + rng.Float64()*(p.Bounds.Hi[i]-p.Bounds.Lo[i])
		}
		points[s] = x0
	}

	var evals atomic.Int64
	results := make([]Result, starts)
	solve := func(s int) {
		obj := func(x Vector) float64 {
			evals.Add(1)
			return p.Objective(x)
		}
		pen := func(x Vector) float64 {
			v := p.Violation(x)
			if math.IsInf(v, 1) {
				return math.Inf(1)
			}
			return obj(x) + 1e7*v
		}
		r := NelderMead(pen, points[s], p.Bounds, NMOptions{})
		f := obj(r.X)
		results[s] = Result{X: r.X, F: f, Violation: p.Violation(r.X)}
	}

	// A nil context: multi-start has no cancellation story — it either
	// finishes or the caller abandons the whole solve.
	par.ForEach(nil, starts, workers, solve)

	// Reduce in start order with the sequential comparator, so ties
	// resolve exactly as MultiStart resolves them.
	best := Result{F: math.Inf(1), Violation: math.Inf(1)}
	for _, r := range results {
		if isWorse(best.F, best.Violation, r.F, r.Violation, feasTol) {
			best = Result{X: r.X.Clone(), F: r.F, Violation: r.Violation}
		}
	}
	best.Evals = int(evals.Load())
	if best.Violation > feasTol {
		return best, ErrInfeasible
	}
	return best, nil
}
