package opt

import (
	"errors"
	"math"
	"testing"
)

// multiStartProblems is the fixture set for comparing the sequential and
// parallel multi-start strategies.
func multiStartProblems() map[string]Problem {
	return map[string]Problem{
		"quadratic": {
			Objective: func(x Vector) float64 { return (x[0]-0.3)*(x[0]-0.3) + (x[1]+0.7)*(x[1]+0.7) },
			Bounds:    Bounds{Lo: Vector{-2, -2}, Hi: Vector{2, 2}},
		},
		"constrained": {
			Objective:   func(x Vector) float64 { return x[0] * x[0] },
			Bounds:      Bounds{Lo: Vector{-5}, Hi: Vector{5}},
			Constraints: []Constraint{{Name: "x>=1", F: func(x Vector) float64 { return 1 - x[0] }}},
		},
		"multimodal": {
			// Rastrigin-flavoured: many local minima, global at the origin.
			Objective: func(x Vector) float64 {
				return 20 + x[0]*x[0] - 10*math.Cos(2*math.Pi*x[0]) +
					x[1]*x[1] - 10*math.Cos(2*math.Pi*x[1])
			},
			Bounds: Bounds{Lo: Vector{-5.12, -5.12}, Hi: Vector{5.12, 5.12}},
		},
	}
}

// MultiStartParallel must return exactly what MultiStart returns — same
// point, same objective, same violation, same evaluation count — for
// any worker count.
func TestMultiStartParallelMatchesSequential(t *testing.T) {
	for name, p := range multiStartProblems() {
		t.Run(name, func(t *testing.T) {
			for _, starts := range []int{1, 4, 9} {
				seq, errSeq := MultiStart(p, starts, 42)
				for _, workers := range []int{1, 3, 8} {
					par, errPar := MultiStartParallel(p, starts, 42, workers)
					if (errSeq == nil) != (errPar == nil) {
						t.Fatalf("starts=%d workers=%d: err %v vs %v", starts, workers, errSeq, errPar)
					}
					if seq.F != par.F || seq.Violation != par.Violation {
						t.Errorf("starts=%d workers=%d: (F, viol) = (%v, %v), want (%v, %v)",
							starts, workers, par.F, par.Violation, seq.F, seq.Violation)
					}
					for i := range seq.X {
						if seq.X[i] != par.X[i] {
							t.Errorf("starts=%d workers=%d: X = %v, want %v", starts, workers, par.X, seq.X)
							break
						}
					}
					if seq.Evals != par.Evals {
						t.Errorf("starts=%d workers=%d: Evals = %d, want %d",
							starts, workers, par.Evals, seq.Evals)
					}
				}
			}
		})
	}
}

func TestMultiStartParallelInfeasible(t *testing.T) {
	p := Problem{
		Objective:   func(x Vector) float64 { return x[0] },
		Bounds:      Bounds{Lo: Vector{0}, Hi: Vector{1}},
		Constraints: []Constraint{{Name: "impossible", F: func(x Vector) float64 { return 1 }}},
	}
	if _, err := MultiStartParallel(p, 4, 1, 2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("MultiStartParallel error = %v, want ErrInfeasible", err)
	}
}
