package opt

import (
	"math"
	"testing"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x, fx := GoldenSection(f, -10, 10, 1e-9)
	if math.Abs(x-1.7) > 1e-6 {
		t.Errorf("x = %v, want 1.7", x)
	}
	if fx > 1e-10 {
		t.Errorf("f(x) = %v, want ~0", fx)
	}
}

func TestGoldenSectionReversedBracket(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x + 2) }
	x, _ := GoldenSection(f, 5, -5, 1e-9)
	if math.Abs(x+2) > 1e-6 {
		t.Errorf("x = %v, want -2", x)
	}
}

func TestGoldenSectionBoundaryMinimum(t *testing.T) {
	// Monotone increasing: minimum sits at the left edge.
	f := func(x float64) float64 { return x }
	x, _ := GoldenSection(f, 2, 9, 1e-9)
	if math.Abs(x-2) > 1e-6 {
		t.Errorf("x = %v, want 2 (left edge)", x)
	}
}

func TestBrentMinSmooth(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		lo   float64
		hi   float64
		want float64
	}{
		{name: "quadratic", f: func(x float64) float64 { return (x + 3) * (x + 3) }, lo: -10, hi: 10, want: -3},
		{name: "quartic", f: func(x float64) float64 { return math.Pow(x-0.5, 4) }, lo: -2, hi: 2, want: 0.5},
		{name: "cosine", f: math.Cos, lo: 0, hi: 2 * math.Pi, want: math.Pi},
		{name: "energy-shape a/x+bx", f: func(x float64) float64 { return 0.04/x + 0.25*x }, lo: 0.01, hi: 10, want: 0.4},
	}
	for _, tt := range tests {
		x, _ := BrentMin(tt.f, tt.lo, tt.hi, 1e-12)
		if math.Abs(x-tt.want) > 1e-5 {
			t.Errorf("%s: x = %v, want %v", tt.name, x, tt.want)
		}
	}
}

func TestBrentMatchesGolden(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 3*x }
	bx, _ := BrentMin(f, 0, 3, 1e-12)
	gx, _ := GoldenSection(f, 0, 3, 1e-10)
	if math.Abs(bx-gx) > 1e-5 {
		t.Errorf("Brent %v and golden %v disagree", bx, gx)
	}
	if want := math.Log(3); math.Abs(bx-want) > 1e-6 {
		t.Errorf("x = %v, want ln(3) = %v", bx, want)
	}
}

func TestBisect(t *testing.T) {
	root, ok := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if !ok {
		t.Fatal("Bisect reported no sign change on a bracketing interval")
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectNoSignChange(t *testing.T) {
	if _, ok := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9); ok {
		t.Error("Bisect claimed a root where none exists")
	}
}

func TestBisectRootAtEndpoint(t *testing.T) {
	root, ok := Bisect(func(x float64) float64 { return x }, 0, 5, 1e-9)
	if !ok || root != 0 {
		t.Errorf("Bisect = (%v, %v), want (0, true)", root, ok)
	}
}
