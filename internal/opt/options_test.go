package opt

import (
	"math"
	"testing"
)

func TestWithFeasibilityTolerance(t *testing.T) {
	// A constraint violated by 1e-6 everywhere: infeasible at the
	// default tolerance, feasible at a loose one.
	p := Problem{
		Objective:   func(x Vector) float64 { return x[0] },
		Bounds:      Bounds{Lo: Vector{0}, Hi: Vector{1}},
		Constraints: []Constraint{{Name: "just-off", F: func(x Vector) float64 { return 1e-6 }}},
	}
	if _, err := Solve(p); err == nil {
		t.Error("tight tolerance accepted a violated constraint")
	}
	r, err := Solve(p, WithFeasibilityTolerance(1e-3))
	if err != nil {
		t.Fatalf("loose tolerance: %v", err)
	}
	if math.Abs(r.X[0]) > 1e-6 {
		t.Errorf("x = %v, want 0", r.X[0])
	}
}

func TestWithGridPointsAndRefinements(t *testing.T) {
	// A narrow spike the coarse default grid could miss entirely is
	// caught with a denser grid; both must agree after polish.
	f := func(x Vector) float64 {
		d := x[0] - 0.377
		return -1/(1+2000*d*d) + 1
	}
	p := Problem{Objective: f, Bounds: Bounds{Lo: Vector{0}, Hi: Vector{1}}}
	r, err := Solve(p, WithGridPoints(301), WithRefinements(6))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(r.X[0]-0.377) > 1e-4 {
		t.Errorf("x = %v, want 0.377", r.X[0])
	}
	// Invalid option values are ignored rather than breaking the solver.
	if _, err := Solve(p, WithGridPoints(1), WithRefinements(-5), WithFeasibilityTolerance(-1)); err != nil {
		t.Errorf("Solve with out-of-range options: %v", err)
	}
}

func TestSolve3D(t *testing.T) {
	// Three-dimensional convex bowl with one active constraint: the
	// solvers are sized for 1-2D but must stay correct in 3D.
	p := Problem{
		Objective: func(x Vector) float64 {
			return (x[0]-0.5)*(x[0]-0.5) + (x[1]-0.5)*(x[1]-0.5) + (x[2]-0.5)*(x[2]-0.5)
		},
		Bounds:      Bounds{Lo: Vector{0, 0, 0}, Hi: Vector{1, 1, 1}},
		Constraints: []Constraint{AtMost("sum", func(x Vector) float64 { return x[0] + x[1] + x[2] }, 1)},
	}
	r, err := Solve(p, WithGridPoints(9))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Symmetric optimum at (1/3, 1/3, 1/3).
	for i, v := range r.X {
		if math.Abs(v-1.0/3) > 5e-3 {
			t.Errorf("x[%d] = %v, want 1/3", i, v)
		}
	}
}

func TestNMOptionsDefaults(t *testing.T) {
	o := NMOptions{}.withDefaults(2)
	if o.MaxIter != 800 || o.TolF <= 0 || o.TolX <= 0 || o.Step != 0.1 {
		t.Errorf("withDefaults(2) = %+v", o)
	}
	custom := NMOptions{MaxIter: 7, TolF: 1, TolX: 1, Step: 0.5}.withDefaults(2)
	if custom.MaxIter != 7 || custom.Step != 0.5 {
		t.Errorf("custom options overridden: %+v", custom)
	}
}

func TestResultFeasible(t *testing.T) {
	r := Result{Violation: 1e-10}
	if !r.Feasible(1e-9) {
		t.Error("tiny violation should count as feasible")
	}
	if r.Feasible(1e-11) {
		t.Error("violation above tolerance should not be feasible")
	}
}

func TestIsWorseOrdering(t *testing.T) {
	const tol = 1e-9
	tests := []struct {
		name                 string
		aF, aViol, bF, bViol float64
		bStrictlyBetter      bool
	}{
		{name: "both feasible, b lower", aF: 2, bF: 1, bStrictlyBetter: true},
		{name: "both feasible, b higher", aF: 1, bF: 2},
		{name: "only b feasible", aF: 0, aViol: 1, bF: 100, bStrictlyBetter: true},
		{name: "only a feasible", aF: 100, bF: 0, bViol: 1},
		{name: "both infeasible, b closer", aF: 0, aViol: 2, bF: 0, bViol: 1, bStrictlyBetter: true},
		{name: "NaN objective loses", aF: math.NaN(), bF: 5, bStrictlyBetter: true},
	}
	for _, tt := range tests {
		if got := isWorse(tt.aF, tt.aViol, tt.bF, tt.bViol, tol); got != tt.bStrictlyBetter {
			t.Errorf("%s: isWorse = %v, want %v", tt.name, got, tt.bStrictlyBetter)
		}
	}
}

func TestGoldenSectionDefaultTolerance(t *testing.T) {
	x, _ := GoldenSection(func(x float64) float64 { return (x - 2) * (x - 2) }, 0, 5, 0)
	if math.Abs(x-2) > 1e-6 {
		t.Errorf("x = %v, want 2", x)
	}
}

func TestBrentMinDefaultTolerance(t *testing.T) {
	x, _ := BrentMin(func(x float64) float64 { return (x - 2) * (x - 2) }, 0, 5, 0)
	if math.Abs(x-2) > 1e-6 {
		t.Errorf("x = %v, want 2", x)
	}
	// Reversed bracket.
	x, _ = BrentMin(func(x float64) float64 { return math.Abs(x - 1) }, 5, 0, 1e-10)
	if math.Abs(x-1) > 1e-6 {
		t.Errorf("x = %v, want 1", x)
	}
}
