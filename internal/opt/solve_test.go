package opt

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSolveUnconstrainedQuadratic(t *testing.T) {
	p := Problem{
		Objective: func(x Vector) float64 { return (x[0]-0.3)*(x[0]-0.3) + (x[1]+0.7)*(x[1]+0.7) },
		Bounds:    Bounds{Lo: Vector{-2, -2}, Hi: Vector{2, 2}},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(r.X[0]-0.3) > 1e-6 || math.Abs(r.X[1]+0.7) > 1e-6 {
		t.Errorf("x = %v, want (0.3, -0.7)", r.X)
	}
}

func TestSolveActiveConstraint(t *testing.T) {
	// Minimize x² subject to x >= 1 (i.e. 1 - x <= 0): optimum at x = 1.
	p := Problem{
		Objective:   func(x Vector) float64 { return x[0] * x[0] },
		Bounds:      Bounds{Lo: Vector{-5}, Hi: Vector{5}},
		Constraints: []Constraint{{Name: "x>=1", F: func(x Vector) float64 { return 1 - x[0] }}},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(r.X[0]-1) > 1e-5 {
		t.Errorf("x = %v, want 1", r.X[0])
	}
	if !r.Feasible(1e-9) {
		t.Errorf("result infeasible: violation %v", r.Violation)
	}
}

func TestSolveConstrained2D(t *testing.T) {
	// Maximize x+y inside the unit circle (minimize the negation):
	// optimum at the tangency point x=y=1/sqrt(2).
	p := Problem{
		Objective: func(x Vector) float64 { return -(x[0] + x[1]) },
		Bounds:    Bounds{Lo: Vector{0, 0}, Hi: Vector{2, 2}},
		Constraints: []Constraint{
			{Name: "inside-circle", F: func(x Vector) float64 { return x[0]*x[0] + x[1]*x[1] - 1 }},
		},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := 1 / math.Sqrt2
	if math.Abs(r.F+math.Sqrt2) > 1e-4 {
		t.Errorf("f = %v, want %v", r.F, -math.Sqrt2)
	}
	// The tangent direction is nearly flat, so positions get a looser tolerance.
	if math.Abs(r.X[0]-want) > 1e-2 || math.Abs(r.X[1]-want) > 1e-2 {
		t.Errorf("x = %v, want (%v, %v)", r.X, want, want)
	}
}

func TestSolveMinOutsideCircleHitsCorner(t *testing.T) {
	// Minimize x+y outside the unit circle: the feasible minimum is 1,
	// attained at (1,0) or (0,1) where the line x+y=1 meets the circle.
	p := Problem{
		Objective: func(x Vector) float64 { return x[0] + x[1] },
		Bounds:    Bounds{Lo: Vector{0, 0}, Hi: Vector{2, 2}},
		Constraints: []Constraint{
			{Name: "outside-circle", F: func(x Vector) float64 { return 1 - (x[0]*x[0] + x[1]*x[1]) }},
		},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(r.F-1) > 1e-3 {
		t.Errorf("f = %v at %v, want 1", r.F, r.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := Problem{
		Objective:   func(x Vector) float64 { return x[0] },
		Bounds:      Bounds{Lo: Vector{0}, Hi: Vector{1}},
		Constraints: []Constraint{{Name: "impossible", F: func(x Vector) float64 { return 1 + x[0] }}},
	}
	_, err := Solve(p)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("Solve error = %v, want ErrInfeasible", err)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("Solve of empty problem should fail")
	}
	p := Problem{
		Objective: func(x Vector) float64 { return x[0] },
		Bounds:    Bounds{Lo: Vector{1}, Hi: Vector{0}},
	}
	if _, err := Solve(p); err == nil {
		t.Error("Solve with inverted bounds should fail")
	}
	p = Problem{
		Objective:   func(x Vector) float64 { return x[0] },
		Bounds:      Bounds{Lo: Vector{0}, Hi: Vector{1}},
		Constraints: []Constraint{{Name: "nil"}},
	}
	if _, err := Solve(p); err == nil {
		t.Error("Solve with nil constraint function should fail")
	}
}

func TestSolveAtMostHelper(t *testing.T) {
	delay := func(x Vector) float64 { return 3 * x[0] }
	p := Problem{
		Objective:   func(x Vector) float64 { return 1 / x[0] },
		Bounds:      Bounds{Lo: Vector{0.01}, Hi: Vector{10}},
		Constraints: []Constraint{AtMost("delay", delay, 6)},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 1/x decreasing, delay cap binds at x = 2.
	if math.Abs(r.X[0]-2) > 1e-4 {
		t.Errorf("x = %v, want 2", r.X[0])
	}
}

func TestSolveGridOnly(t *testing.T) {
	p := Problem{
		Objective: func(x Vector) float64 { return math.Abs(x[0] - 0.25) },
		Bounds:    Bounds{Lo: Vector{0}, Hi: Vector{1}},
	}
	r, err := Solve(p, WithoutPolish(), WithGridPoints(33), WithRefinements(10))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(r.X[0]-0.25) > 1e-4 {
		t.Errorf("x = %v, want 0.25", r.X[0])
	}
}

// TestSolveMatchesMultiStart cross-checks the two independent strategies
// on randomized convex quadratics with a linear constraint.
func TestSolveMatchesMultiStart(t *testing.T) {
	f := func(cxRaw, cyRaw, capRaw uint8) bool {
		cx := float64(cxRaw%100)/50 - 1 // [-1, 1)
		cy := float64(cyRaw%100)/50 - 1
		cap := 0.5 + float64(capRaw%100)/100 // [0.5, 1.5)
		p := Problem{
			Objective: func(x Vector) float64 {
				return (x[0]-cx)*(x[0]-cx) + (x[1]-cy)*(x[1]-cy)
			},
			Bounds:      Bounds{Lo: Vector{-2, -2}, Hi: Vector{2, 2}},
			Constraints: []Constraint{AtMost("sum", func(x Vector) float64 { return x[0] + x[1] }, cap)},
		}
		a, errA := Solve(p)
		b, errB := MultiStart(p, 8, 1)
		if errA != nil || errB != nil {
			return false
		}
		return math.Abs(a.F-b.F) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMultiStartInfeasible(t *testing.T) {
	p := Problem{
		Objective:   func(x Vector) float64 { return x[0] },
		Bounds:      Bounds{Lo: Vector{0}, Hi: Vector{1}},
		Constraints: []Constraint{{Name: "impossible", F: func(x Vector) float64 { return 1 }}},
	}
	if _, err := MultiStart(p, 4, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("MultiStart error = %v, want ErrInfeasible", err)
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := Bounds{Lo: Vector{0, -1}, Hi: Vector{2, 1}}
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := b.Clamp(Vector{-5, 5}); got[0] != 0 || got[1] != 1 {
		t.Errorf("Clamp = %v, want [0 1]", got)
	}
	if !b.Contains(Vector{1, 0}) {
		t.Error("Contains(interior) = false")
	}
	if b.Contains(Vector{3, 0}) {
		t.Error("Contains(exterior) = true")
	}
	if b.Contains(Vector{1}) {
		t.Error("Contains with wrong dimension = true")
	}
	c := b.Center()
	if c[0] != 1 || c[1] != 0 {
		t.Errorf("Center = %v, want [1 0]", c)
	}
	w := b.Width()
	if w[0] != 2 || w[1] != 2 {
		t.Errorf("Width = %v, want [2 2]", w)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestViolationNaN(t *testing.T) {
	p := Problem{
		Objective:   func(x Vector) float64 { return 0 },
		Bounds:      Bounds{Lo: Vector{0}, Hi: Vector{1}},
		Constraints: []Constraint{{Name: "nan", F: func(x Vector) float64 { return math.NaN() }}},
	}
	if v := p.Violation(Vector{0.5}); !math.IsInf(v, 1) {
		t.Errorf("Violation with NaN constraint = %v, want +Inf", v)
	}
}
