package opt

import (
	"fmt"
	"math"
)

// Option configures Solve.
type Option func(*config)

type config struct {
	gridPoints  int
	refinements int
	feasTol     float64
	polish      bool
}

func defaultConfig(dim int) config {
	points := 17
	if dim == 1 {
		points = 65
	}
	return config{
		gridPoints:  points,
		refinements: 8,
		feasTol:     1e-9,
		polish:      true,
	}
}

// WithGridPoints sets the per-dimension lattice size of the global grid
// phase (minimum 3).
func WithGridPoints(n int) Option {
	return func(c *config) {
		if n >= 3 {
			c.gridPoints = n
		}
	}
}

// WithRefinements sets how many times the grid zooms into the best cell.
func WithRefinements(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.refinements = n
		}
	}
}

// WithFeasibilityTolerance sets the constraint-violation tolerance below
// which a point counts as feasible.
func WithFeasibilityTolerance(tol float64) Option {
	return func(c *config) {
		if tol > 0 {
			c.feasTol = tol
		}
	}
}

// WithoutPolish disables the Nelder-Mead polish phase (grid only);
// useful for debugging and for benchmarking the phases separately.
func WithoutPolish() Option {
	return func(c *config) { c.polish = false }
}

// Solve minimizes the constrained problem p with a deterministic global
// strategy suited to the framework's smooth, low-dimensional programs:
//
//  1. a refining lattice search over the bounded box locates the basin,
//     comparing candidates feasibility-first;
//  2. Nelder-Mead with an escalating exact-penalty weight polishes the
//     best grid point.
//
// Solve returns ErrInfeasible when no point in the box satisfies the
// constraints to within the feasibility tolerance.
func Solve(p Problem, opts ...Option) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	cfg := defaultConfig(p.Bounds.Dim())
	for _, o := range opts {
		o(&cfg)
	}

	evals := 0
	obj := func(x Vector) float64 {
		evals++
		return p.Objective(x)
	}

	best, ok := gridPhase(p, obj, cfg)
	if cfg.polish {
		best = polishPhase(p, obj, best, cfg)
		if best.Violation <= cfg.feasTol {
			ok = true
		}
	}
	best.Evals = evals
	if !ok || best.Violation > cfg.feasTol {
		return best, fmt.Errorf("%w: best residual violation %.3g", ErrInfeasible, best.Violation)
	}
	return best, nil
}

// gridPhase runs the refining lattice search. The returned bool reports
// whether any feasible lattice point was seen.
func gridPhase(p Problem, obj Func, cfg config) (Result, bool) {
	dim := p.Bounds.Dim()
	box := Bounds{Lo: p.Bounds.Lo.Clone(), Hi: p.Bounds.Hi.Clone()}
	best := Result{F: math.Inf(1), Violation: math.Inf(1)}
	foundFeasible := false

	idx := make([]int, dim)
	x := make(Vector, dim)
	for pass := 0; pass <= cfg.refinements; pass++ {
		for i := range idx {
			idx[i] = 0
		}
		for {
			for i := 0; i < dim; i++ {
				frac := float64(idx[i]) / float64(cfg.gridPoints-1)
				x[i] = box.Lo[i] + frac*(box.Hi[i]-box.Lo[i])
			}
			f := obj(x)
			viol := p.Violation(x)
			if viol <= cfg.feasTol {
				foundFeasible = true
			}
			if isWorse(best.F, best.Violation, f, viol, cfg.feasTol) {
				best = Result{X: x.Clone(), F: f, Violation: viol}
			}
			// Advance the mixed-radix counter.
			carry := dim - 1
			for carry >= 0 {
				idx[carry]++
				if idx[carry] < cfg.gridPoints {
					break
				}
				idx[carry] = 0
				carry--
			}
			if carry < 0 {
				break
			}
		}
		// Zoom: new box spans two cells around the incumbent, clamped to
		// the original bounds.
		for i := 0; i < dim; i++ {
			cell := (box.Hi[i] - box.Lo[i]) / float64(cfg.gridPoints-1)
			lo := best.X[i] - 2*cell
			hi := best.X[i] + 2*cell
			if lo < p.Bounds.Lo[i] {
				lo = p.Bounds.Lo[i]
			}
			if hi > p.Bounds.Hi[i] {
				hi = p.Bounds.Hi[i]
			}
			box.Lo[i], box.Hi[i] = lo, hi
		}
	}
	return best, foundFeasible
}

// polishPhase refines the incumbent with Nelder-Mead under an escalating
// exact penalty, keeping the lexicographically best point seen.
func polishPhase(p Problem, obj Func, incumbent Result, cfg config) Result {
	scale := math.Abs(incumbent.F)
	if math.IsInf(scale, 0) || math.IsNaN(scale) || scale < 1 {
		scale = 1
	}
	best := incumbent
	for _, w := range []float64{1e2, 1e4, 1e6, 1e8} {
		weight := w * scale
		pen := func(x Vector) float64 {
			v := p.Violation(x)
			if math.IsInf(v, 1) {
				return math.Inf(1)
			}
			return obj(x) + weight*v
		}
		r := NelderMead(pen, best.X, p.Bounds, NMOptions{})
		f := obj(r.X)
		viol := p.Violation(r.X)
		if isWorse(best.F, best.Violation, f, viol, cfg.feasTol) {
			best = Result{X: r.X.Clone(), F: f, Violation: viol}
		}
	}
	return best
}
