package opt

import "math"

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal scalar function on [lo, hi] to an
// interval of width tol and returns the midpoint of the final bracket
// with its value. For non-unimodal functions it converges to a local
// minimum inside the bracket.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = 1e-10 * (1 + math.Abs(lo) + math.Abs(hi))
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = 0.5 * (a + b)
	return x, f(x)
}

// BrentMin minimizes a scalar function on [lo, hi] using Brent's method
// (golden-section with parabolic interpolation). It converges faster
// than GoldenSection on smooth functions and degrades gracefully to
// golden-section steps otherwise.
func BrentMin(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if tol <= 0 {
		tol = 1e-10
	}
	const cgold = 0.3819660112501051
	const zeps = 1e-18
	a, b := lo, hi
	x = a + cgold*(b-a)
	w, v := x, x
	fx = f(x)
	fw, fv := fx, fx
	var d, e float64
	for iter := 0; iter < 200; iter++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + zeps
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			return x, fx
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Attempt a parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etemp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx
}

// Bisect finds a root of f on [lo, hi] by bisection; f(lo) and f(hi)
// must differ in sign. It returns the midpoint of the final bracket and
// whether a sign change was present.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, bool) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, true
	}
	if fhi == 0 {
		return hi, true
	}
	if (flo > 0) == (fhi > 0) {
		return 0, false
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		fm := f(mid)
		if fm == 0 {
			return mid, true
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), true
}
