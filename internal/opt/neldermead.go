package opt

import (
	"math"
	"sort"
)

// NMOptions configure the Nelder-Mead simplex search.
type NMOptions struct {
	// MaxIter bounds the number of simplex iterations (default 400·dim).
	MaxIter int
	// TolF stops the search when the simplex's relative function spread
	// falls below it (default 1e-12).
	TolF float64
	// TolX stops the search when the simplex diameter relative to the
	// bounds width falls below it (default 1e-10).
	TolX float64
	// Step sets the initial simplex edge as a fraction of the bounds
	// width (default 0.1).
	Step float64
}

func (o NMOptions) withDefaults(dim int) NMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 400 * dim
	}
	if o.TolF <= 0 {
		o.TolF = 1e-12
	}
	if o.TolX <= 0 {
		o.TolX = 1e-10
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
	return o
}

// NelderMead minimizes f over the box b starting from x0 using the
// downhill-simplex method with reflection/expansion/contraction/shrink
// and hard clamping to the box. It returns the best vertex found.
//
// The method is derivative-free and tolerates +Inf plateaus (infeasible
// penalty regions); vertices there simply rank worst.
func NelderMead(f Func, x0 Vector, b Bounds, o NMOptions) Result {
	dim := b.Dim()
	o = o.withDefaults(dim)
	evals := 0
	eval := func(x Vector) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	width := b.Width()

	type vertex struct {
		x Vector
		f float64
	}
	simplex := make([]vertex, dim+1)
	start := b.Clamp(x0)
	simplex[0] = vertex{x: start, f: eval(start)}
	for i := 0; i < dim; i++ {
		x := start.Clone()
		step := o.Step * width[i]
		if x[i]+step > b.Hi[i] {
			step = -step
		}
		x[i] += step
		x = b.Clamp(x)
		simplex[i+1] = vertex{x: x, f: eval(x)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	order := func() {
		sort.SliceStable(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	}
	centroid := func() Vector {
		c := make(Vector, dim)
		for _, v := range simplex[:dim] {
			for i := range c {
				c[i] += v.x[i]
			}
		}
		for i := range c {
			c[i] /= float64(dim)
		}
		return c
	}
	combine := func(c, x Vector, coeff float64) Vector {
		out := make(Vector, dim)
		for i := range out {
			out[i] = c[i] + coeff*(c[i]-x[i])
		}
		return b.Clamp(out)
	}

	reseeded := false
	for iter := 0; iter < o.MaxIter; iter++ {
		order()
		// If every vertex is on an infinite plateau (e.g. the start point
		// landed in a penalized region), the simplex cannot orient itself;
		// reseed it once across the whole box to find usable ground.
		if math.IsInf(simplex[0].f, 1) && !reseeded {
			reseeded = true
			center := b.Center()
			simplex[0] = vertex{x: center, f: eval(center)}
			for i := 0; i < dim; i++ {
				x := center.Clone()
				if i%2 == 0 {
					x[i] = b.Lo[i] + 0.25*width[i]
				} else {
					x[i] = b.Hi[i] - 0.25*width[i]
				}
				simplex[i+1] = vertex{x: x, f: eval(x)}
			}
			order()
		}
		best, worst := simplex[0], simplex[dim]

		// Convergence: function spread and simplex size.
		spread := math.Abs(worst.f - best.f)
		if math.IsInf(best.f, 1) {
			spread = math.Inf(1)
		}
		diam := 0.0
		for _, v := range simplex[1:] {
			for i := range v.x {
				d := math.Abs(v.x[i]-simplex[0].x[i]) / width[i]
				if d > diam {
					diam = d
				}
			}
		}
		if spread <= o.TolF*(math.Abs(best.f)+1e-30) && diam <= o.TolX {
			break
		}

		c := centroid()
		refl := combine(c, worst.x, alpha)
		fRefl := eval(refl)
		switch {
		case fRefl < best.f:
			exp := combine(c, worst.x, gamma)
			if fExp := eval(exp); fExp < fRefl {
				simplex[dim] = vertex{x: exp, f: fExp}
			} else {
				simplex[dim] = vertex{x: refl, f: fRefl}
			}
		case fRefl < simplex[dim-1].f:
			simplex[dim] = vertex{x: refl, f: fRefl}
		default:
			contr := combine(c, worst.x, -rho)
			if fContr := eval(contr); fContr < worst.f {
				simplex[dim] = vertex{x: contr, f: fContr}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					x := make(Vector, dim)
					for j := range x {
						x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					x = b.Clamp(x)
					simplex[i] = vertex{x: x, f: eval(x)}
				}
			}
		}
	}
	order()
	return Result{X: simplex[0].x.Clone(), F: simplex[0].f, Evals: evals}
}
