package opt

import "math"

// NMOptions configure the Nelder-Mead simplex search.
type NMOptions struct {
	// MaxIter bounds the number of simplex iterations (default 400·dim).
	MaxIter int
	// TolF stops the search when the simplex's relative function spread
	// falls below it (default 1e-12).
	TolF float64
	// TolX stops the search when the simplex diameter relative to the
	// bounds width falls below it (default 1e-10).
	TolX float64
	// Step sets the initial simplex edge as a fraction of the bounds
	// width (default 0.1).
	Step float64
}

func (o NMOptions) withDefaults(dim int) NMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 400 * dim
	}
	if o.TolF <= 0 {
		o.TolF = 1e-12
	}
	if o.TolX <= 0 {
		o.TolX = 1e-10
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
	return o
}

// NelderMead minimizes f over the box b starting from x0 using the
// downhill-simplex method with reflection/expansion/contraction/shrink
// and hard clamping to the box. It returns the best vertex found.
//
// The method is derivative-free and tolerates +Inf plateaus (infeasible
// penalty regions); vertices there simply rank worst.
//
// All working storage — the simplex, the centroid and the trial points —
// lives in one arena allocated up front and recycled by swapping slices,
// so an entire search performs a fixed handful of allocations however
// many iterations it runs. The sweep and bargaining layers call this in
// tight grids; the solver being allocation-free is what keeps the figure
// benchmarks off the garbage collector.
func NelderMead(f Func, x0 Vector, b Bounds, o NMOptions) Result {
	dim := b.Dim()
	o = o.withDefaults(dim)
	evals := 0
	eval := func(x Vector) float64 {
		evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	width := b.Width()

	type vertex struct {
		x Vector
		f float64
	}
	// One arena holds every vector the search will ever touch:
	// dim+1 simplex vertices, the centroid, and one trial buffer.
	arena := make(Vector, (dim+3)*dim)
	cut := func(i int) Vector { return arena[i*dim : (i+1)*dim] }
	simplex := make([]vertex, dim+1)
	for i := range simplex {
		simplex[i].x = cut(i)
	}
	c := cut(dim + 1)     // centroid
	trial := cut(dim + 2) // reflection/expansion/contraction candidate

	clamp := func(x Vector) {
		for i := range x {
			if x[i] < b.Lo[i] {
				x[i] = b.Lo[i]
			}
			if x[i] > b.Hi[i] {
				x[i] = b.Hi[i]
			}
		}
	}

	start := simplex[0].x
	copy(start, x0)
	clamp(start)
	simplex[0].f = eval(start)
	for i := 0; i < dim; i++ {
		x := simplex[i+1].x
		copy(x, start)
		step := o.Step * width[i]
		if x[i]+step > b.Hi[i] {
			step = -step
		}
		x[i] += step
		clamp(x)
		simplex[i+1].f = eval(x)
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)

	// order is a stable insertion sort: the simplex has at most a
	// handful of vertices and must not allocate per iteration.
	order := func() {
		for i := 1; i < len(simplex); i++ {
			v := simplex[i]
			j := i - 1
			for j >= 0 && simplex[j].f > v.f {
				simplex[j+1] = simplex[j]
				j--
			}
			simplex[j+1] = v
		}
	}
	centroid := func() {
		for i := range c {
			c[i] = 0
		}
		for _, v := range simplex[:dim] {
			for i := range c {
				c[i] += v.x[i]
			}
		}
		for i := range c {
			c[i] /= float64(dim)
		}
	}
	// combine fills the trial buffer with c + coeff·(c − x), clamped.
	combine := func(x Vector, coeff float64) {
		for i := range trial {
			trial[i] = c[i] + coeff*(c[i]-x[i])
		}
		clamp(trial)
	}
	// acceptTrial installs the trial point as the worst vertex by
	// swapping buffers, so no copy and no allocation.
	acceptTrial := func(fv float64) {
		simplex[dim].x, trial = trial, simplex[dim].x
		simplex[dim].f = fv
	}

	reseeded := false
	for iter := 0; iter < o.MaxIter; iter++ {
		order()
		// If every vertex is on an infinite plateau (e.g. the start point
		// landed in a penalized region), the simplex cannot orient itself;
		// reseed it once across the whole box to find usable ground.
		if math.IsInf(simplex[0].f, 1) && !reseeded {
			reseeded = true
			center := simplex[0].x
			for i := range center {
				center[i] = 0.5 * (b.Lo[i] + b.Hi[i])
			}
			simplex[0].f = eval(center)
			for i := 0; i < dim; i++ {
				x := simplex[i+1].x
				copy(x, center)
				if i%2 == 0 {
					x[i] = b.Lo[i] + 0.25*width[i]
				} else {
					x[i] = b.Hi[i] - 0.25*width[i]
				}
				simplex[i+1].f = eval(x)
			}
			order()
		}
		fBest, worst := simplex[0].f, simplex[dim]

		// Convergence: function spread and simplex size.
		spread := math.Abs(worst.f - fBest)
		if math.IsInf(fBest, 1) {
			spread = math.Inf(1)
		}
		diam := 0.0
		for _, v := range simplex[1:] {
			for i := range v.x {
				d := math.Abs(v.x[i]-simplex[0].x[i]) / width[i]
				if d > diam {
					diam = d
				}
			}
		}
		if spread <= o.TolF*(math.Abs(fBest)+1e-30) && diam <= o.TolX {
			break
		}

		centroid()
		combine(worst.x, alpha)
		fRefl := eval(trial)
		switch {
		case fRefl < fBest:
			// Try expanding past the reflection. The reflection must be
			// kept while the expansion is evaluated, so park it in the
			// worst vertex first and reuse the trial buffer.
			acceptTrial(fRefl)
			combine(worst.x, gamma)
			if fExp := eval(trial); fExp < fRefl {
				acceptTrial(fExp)
			}
		case fRefl < simplex[dim-1].f:
			acceptTrial(fRefl)
		default:
			combine(worst.x, -rho)
			if fContr := eval(trial); fContr < worst.f {
				acceptTrial(fContr)
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					x := simplex[i].x
					for j := range x {
						x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					clamp(x)
					simplex[i].f = eval(x)
				}
			}
		}
	}
	order()
	return Result{X: simplex[0].x.Clone(), F: simplex[0].f, Evals: evals}
}
