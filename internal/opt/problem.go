// Package opt is a small, dependency-free nonlinear optimization library
// built for the low-dimensional constrained programs of the energy-delay
// framework: (P1) minimize energy subject to a delay cap, (P2) minimize
// delay subject to an energy budget, and the Nash-bargaining program (P4).
//
// The problems are 1-3 dimensional, smooth, and cheap to evaluate, so the
// package favours robust derivative-free methods: refining grid search
// for global structure, Nelder-Mead with penalty functions for polish,
// golden-section/Brent for scalar lines, and deterministic multi-start
// for cross-checking. All solvers are deterministic for a given input.
package opt

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a point in parameter space.
type Vector []float64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	return append(Vector(nil), v...)
}

// Func is a scalar function of a parameter vector. Implementations may
// return +Inf to mark a point as unusable; they must not panic.
type Func func(Vector) float64

// Constraint is an inequality constraint, satisfied when F(x) <= 0.
type Constraint struct {
	// Name labels the constraint in errors and reports.
	Name string
	// F is the constraint function; feasible points have F(x) <= 0.
	F Func
}

// AtMost builds the constraint f(x) <= limit.
func AtMost(name string, f Func, limit float64) Constraint {
	return Constraint{
		Name: name,
		F:    func(x Vector) float64 { return f(x) - limit },
	}
}

// Bounds is an axis-aligned box. Every solver in this package works on a
// bounded domain.
type Bounds struct {
	Lo, Hi Vector
}

// Dim returns the dimensionality of the box.
func (b Bounds) Dim() int { return len(b.Lo) }

// Validate reports whether the box is well formed and non-degenerate.
func (b Bounds) Validate() error {
	if len(b.Lo) == 0 {
		return errors.New("opt: empty bounds")
	}
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("opt: bounds dimension mismatch: %d vs %d", len(b.Lo), len(b.Hi))
	}
	for i := range b.Lo {
		if !(b.Lo[i] < b.Hi[i]) {
			return fmt.Errorf("opt: bounds[%d]: lo %v must be below hi %v", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Clamp returns a copy of x projected into the box.
func (b Bounds) Clamp(x Vector) Vector {
	out := x.Clone()
	for i := range out {
		if out[i] < b.Lo[i] {
			out[i] = b.Lo[i]
		}
		if out[i] > b.Hi[i] {
			out[i] = b.Hi[i]
		}
	}
	return out
}

// Contains reports whether x lies inside the box (inclusive).
func (b Bounds) Contains(x Vector) bool {
	if len(x) != b.Dim() {
		return false
	}
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of the box.
func (b Bounds) Center() Vector {
	c := make(Vector, b.Dim())
	for i := range c {
		c[i] = 0.5 * (b.Lo[i] + b.Hi[i])
	}
	return c
}

// Width returns the per-dimension widths of the box.
func (b Bounds) Width() Vector {
	w := make(Vector, b.Dim())
	for i := range w {
		w[i] = b.Hi[i] - b.Lo[i]
	}
	return w
}

// Problem is a bounded, inequality-constrained minimization problem.
type Problem struct {
	// Objective is minimized.
	Objective Func
	// Bounds delimit the search box; solvers never evaluate outside it.
	Bounds Bounds
	// Constraints are inequality constraints g(x) <= 0.
	Constraints []Constraint
}

// Validate reports whether the problem is well formed.
func (p Problem) Validate() error {
	if p.Objective == nil {
		return errors.New("opt: nil objective")
	}
	if err := p.Bounds.Validate(); err != nil {
		return err
	}
	for i, c := range p.Constraints {
		if c.F == nil {
			return fmt.Errorf("opt: constraint %d (%q) has nil function", i, c.Name)
		}
	}
	return nil
}

// Violation returns the total positive constraint violation at x, zero
// when x is feasible. NaN constraint values count as infinite violation.
func (p Problem) Violation(x Vector) float64 {
	total := 0.0
	for _, c := range p.Constraints {
		v := c.F(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		if v > 0 {
			total += v
		}
	}
	return total
}

// Result is the outcome of a solver run.
type Result struct {
	// X is the best point found.
	X Vector
	// F is the objective value at X.
	F float64
	// Violation is the total constraint violation at X (0 when feasible).
	Violation float64
	// Evals counts objective evaluations performed.
	Evals int
}

// Feasible reports whether the result satisfies all constraints to the
// given tolerance.
func (r Result) Feasible(tol float64) bool { return r.Violation <= tol }

// ErrInfeasible is returned when no point satisfying the constraints
// exists within the search box (to the configured tolerance).
var ErrInfeasible = errors.New("opt: no feasible point in the search box")

// isWorse reports whether b is a strictly better candidate than a under
// the standard lexicographic rule: feasibility (to tol) first, then
// objective among feasible points, then violation among infeasible ones.
// NaN objectives are treated as +Inf.
func isWorse(aF, aViol, bF, bViol, tol float64) bool {
	if math.IsNaN(aF) {
		aF = math.Inf(1)
	}
	if math.IsNaN(bF) {
		bF = math.Inf(1)
	}
	aFeas, bFeas := aViol <= tol, bViol <= tol
	switch {
	case aFeas && bFeas:
		return bF < aF
	case aFeas != bFeas:
		return bFeas
	default:
		return bViol < aViol
	}
}
