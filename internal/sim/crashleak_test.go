package sim

import (
	"context"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// TestRunContextCancellationLatency pins the cooperative-cancellation
// bound documented on RunContext: once the context is done, the engine
// processes at most ctxCheckInterval (4096) further events before
// aborting. Aborting a churn-heavy run must stay cheap no matter how
// deep the event queue is.
func TestRunContextCancellationLatency(t *testing.T) {
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 100000
	const cancelAt = 137 // an arbitrary event mid-run
	for i := 0; i < total; i++ {
		i := i
		eng.At(float64(i), func() {
			if i == cancelAt {
				cancel()
			}
		})
	}
	if err := eng.RunContext(ctx, float64(total)); err == nil {
		t.Fatal("cancelled run returned nil")
	}
	processed := int(eng.Processed())
	latency := processed - (cancelAt + 1)
	if latency < 0 {
		t.Fatalf("aborted before the cancelling event: processed %d", processed)
	}
	if latency > ctxCheckInterval {
		t.Fatalf("processed %d events after cancellation, bound is %d", latency, ctxCheckInterval)
	}
}

// crashInstants probes a run for interesting crash times: the engine
// is driven once without failures and the instants are derived from the
// observed span, densely enough that some land mid-handshake and some
// inside the inter-frame spacing after a Send commit.
func crashInstants(duration float64) []float64 {
	var out []float64
	// A dense comb: steps incommensurate with the protocol timescales
	// (wakeup intervals, slot lengths) plus sub-interFrameSpacing
	// offsets so some crashes land inside the 32 µs commit window.
	for t := 5.0; t < duration; t += 7.7 {
		out = append(out, t, t+interFrameSpacing/2, t+3*interFrameSpacing)
	}
	return out
}

// assertPoolsReclaimed checks the medium's pool-leak invariants: after
// a run every frame and transmission ever allocated is back in its
// pool and nothing is left in flight or committed.
func assertPoolsReclaimed(t *testing.T, med *Medium, label string) {
	t.Helper()
	if n := len(med.inflight); n != 0 {
		t.Errorf("%s: %d transmissions still in flight", label, n)
	}
	if n := len(med.committed); n != 0 {
		t.Errorf("%s: %d transmissions still committed", label, n)
	}
	if got, want := len(med.framePool), med.framesMade; got != want {
		t.Errorf("%s: %d of %d frames back in the pool", label, got, want)
	}
	if got, want := len(med.txPool), med.txMade; got != want {
		t.Errorf("%s: %d of %d transmissions back in the pool", label, got, want)
	}
}

// TestQuiesceUnderCrashReclaimsPools kills nodes at a dense comb of
// instants — mid-handshake, mid-preamble, inside the inter-frame
// spacing — across every simulated protocol and asserts the quiesce
// machinery reclaims every pooled frame and transmission: no leaks, no
// dangling callbacks touching freed state. Run under -race in CI.
func TestQuiesceUnderCrashReclaimsPools(t *testing.T) {
	protos := []struct {
		name   string
		params opt.Vector
	}{
		{"xmac", opt.Vector{0.3}},
		{"bmac", opt.Vector{0.3}},
		{"dmac", opt.Vector{1.2, 0.004}},
		{"lmac", opt.Vector{7, 0.09}},
	}
	for _, proto := range protos {
		proto := proto
		t.Run(proto.name, func(t *testing.T) {
			t.Parallel()
			const duration = 120.0
			// A hot workload so handshakes are dense and crashes land in
			// every protocol state.
			cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.5}, duration)
			cfg.Protocol = proto.name
			cfg.Params = proto.params
			var events []FailureEvent
			node := topology.NodeID(1)
			for _, at := range crashInstants(duration) {
				// Rotate the victim among the relays and let each come
				// back quickly so later crashes find live targets.
				events = append(events, FailureEvent{Node: node, At: at, Duration: 2.5})
				node++
				if int(node) >= cfg.Network.N() {
					node = 1
				}
			}
			cfg.Failures = &FailureConfig{Events: events}

			// Run through the exported API first: the run must complete.
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Deaths == 0 {
				t.Fatal("no crash fired")
			}

			// Then drive the runner's internals to inspect the pools at
			// the horizon: quiesce the final state exactly as an epoch
			// would and assert nothing leaked.
			eng := NewEngine()
			med := newMediumFor(eng, cfg)
			metrics := &Metrics{}
			nodes := buildNodes(cfg, eng, med, metrics)
			fs := &faultState{
				cfg:         &cfg,
				eng:         eng,
				med:         med,
				metrics:     metrics,
				nodes:       nodes,
				phases:      []PhaseConfig{{Params: cfg.Params, Until: cfg.Duration}},
				alive:       make([]bool, cfg.Network.N()),
				batteryDead: make([]bool, cfg.Network.N()),
				points:      faultPoints(cfg.Failures, cfg.Network, cfg.Seed, cfg.Duration),
				arrivals:    make([][]float64, cfg.Network.N()),
				cursor:      make([]int, cfg.Network.N()),
				arena:       &packetArena{},
				params:      cfg.Params,
			}
			for i := range fs.alive {
				fs.alive[i] = true
			}
			for i := 1; i < cfg.Network.N(); i++ {
				fs.arrivals[i] = arrivalSchedule(cfg, topology.NodeID(i))
			}
			med.fault = fs
			if err := fs.install(0); err != nil {
				t.Fatal(err)
			}
			eng.Run(cfg.Duration)
			eng.DropPending()
			med.quiesce()
			assertPoolsReclaimed(t, med, proto.name)
		})
	}
}

// TestQuiesceUnderBatteryDeathReclaimsPools is the battery variant: a
// budget tuned so nodes deplete mid-run (necessarily mid-activity,
// since transmitting is what drains them) must leave the pools intact.
func TestQuiesceUnderBatteryDeathReclaimsPools(t *testing.T) {
	cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.5}, 120)
	cfg.Params = opt.Vector{0.3}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Battery = &BatteryConfig{Capacity: base.Energy[1] / 3}

	eng := NewEngine()
	med := newMediumFor(eng, cfg)
	metrics := &Metrics{}
	nodes := buildNodes(cfg, eng, med, metrics)
	n := cfg.Network.N()
	fs := &faultState{
		cfg:         &cfg,
		eng:         eng,
		med:         med,
		metrics:     metrics,
		nodes:       nodes,
		phases:      []PhaseConfig{{Params: cfg.Params, Until: cfg.Duration}},
		alive:       make([]bool, n),
		batteryDead: make([]bool, n),
		arrivals:    make([][]float64, n),
		cursor:      make([]int, n),
		arena:       &packetArena{},
		params:      cfg.Params,
		capacity:    make([]float64, n),
		deathTimer:  make([]Timer, n),
		nodeArg:     make([]any, n),
	}
	fs.deathCb = func(a any) { fs.batteryDeath(a.(topology.NodeID)) }
	for i := range fs.alive {
		fs.alive[i] = true
	}
	for i := 1; i < n; i++ {
		fs.arrivals[i] = arrivalSchedule(cfg, topology.NodeID(i))
		fs.capacity[i] = cfg.Battery.Capacity
		fs.nodeArg[i] = topology.NodeID(i)
	}
	med.fault = fs
	if err := fs.install(0); err != nil {
		t.Fatal(err)
	}
	eng.Run(cfg.Duration)
	if fs.deaths == 0 {
		t.Fatal("no battery death fired")
	}
	eng.DropPending()
	med.quiesce()
	assertPoolsReclaimed(t, med, "battery")
}
