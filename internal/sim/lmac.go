package sim

import (
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// lmacPhase is the protocol state of one LMAC node within a slot.
type lmacPhase int

const (
	lSleep    lmacPhase = iota // between control sections
	lCtrl                      // listening for a slot's control section
	lOwnSlot                   // transmitting in the owned slot
	lWaitData                  // control announced data for this node
)

// lmacNode is the packet-level LMAC implementation: frame-based TDMA
// where each node owns one slot per frame (two-hop conflict-free
// schedule), always transmits its control section there, and listens to
// every other control section; data sections are slept through unless
// the control announces data for this node. There are no CCAs, no
// contention and no ACKs — the schedule guarantees exclusivity.
// Slot-boundary callbacks and their boxed slot arguments are allocated
// once at construction, so arming a frame does not allocate.
type lmacNode struct {
	*node
	slots  int     // N: slots per frame
	tslot  float64 // slot length
	owned  int     // this node's slot index
	bySlot map[int]topology.NodeID

	phase    lmacPhase
	frameIdx int  // index of the next frame to arm
	base     Time // schedule anchor: the instant start() ran

	slotStartCb   func(any)
	slotArgs      []any // pre-boxed slot indices for slotStartCb
	slotEndFn     func()
	ctrlTimeoutFn func()
	nextFrameFn   func()
}

func newLMACNode(n *node, slots int, tslot float64, owned int, bySlot map[int]topology.NodeID) *lmacNode {
	m := &lmacNode{node: n, slots: slots, tslot: tslot, owned: owned, bySlot: bySlot}
	m.slotStartCb = func(a any) { m.slotStart(a.(int)) }
	m.slotArgs = make([]any, slots)
	for s := 0; s < slots; s++ {
		m.slotArgs[s] = s
	}
	m.slotEndFn = m.slotEnd
	m.ctrlTimeoutFn = m.ctrlTimeout
	m.nextFrameFn = func() { m.scheduleFrame(m.frameIdx) }
	return m
}

// start implements macLayer.
func (m *lmacNode) start() {
	m.x.Sleep()
	// Anchoring the frame schedule at the start instant (zero in a
	// fixed run, the epoch boundary in a phased one) keeps slot
	// boundaries aligned across all nodes of the regime.
	m.base = m.eng.Now()
	m.scheduleFrame(0)
}

func (m *lmacNode) frameLen() float64 { return float64(m.slots) * m.tslot }

// scheduleFrame arms every slot boundary of frame k for this node.
// Boundaries come from integer slot indices so that slot s's end and
// slot s+1's start are bit-identical floats; the end event is scheduled
// first and therefore runs first.
func (m *lmacNode) scheduleFrame(k int) {
	epoch := m.base + float64(k)*m.frameLen()
	boundary := func(s int) float64 { return epoch + float64(s)*m.tslot }
	for s := 0; s < m.slots; s++ {
		m.eng.AtCall(boundary(s), m.slotStartCb, m.slotArgs[s])
		m.eng.At(boundary(s+1), m.slotEndFn)
	}
	m.frameIdx = k + 1
	m.eng.At(epoch+m.frameLen(), m.nextFrameFn)
}

// sampled implements macLayer: packets wait for the owned slot.
func (m *lmacNode) sampled(p *Packet) { m.push(p) }

// slotStart either transmits the control section (owner) or listens to
// it (everyone else).
func (m *lmacNode) slotStart(s int) {
	if s == m.owned {
		m.phase = lOwnSlot
		announce := Broadcast
		if m.head() != nil && !m.isSink() {
			announce = m.parent
		}
		f := m.newFrame(FrameCtrl, Broadcast, m.ctrlBytes, nil)
		f.Announce = announce
		m.x.Send(f)
		return
	}
	// Unowned slots may be empty (no node claimed them); skip listening
	// to silence.
	if _, occupied := m.bySlot[s]; !occupied {
		return
	}
	m.phase = lCtrl
	m.x.Listen()
	// The owner may be out of range: give up after the control section's
	// duration instead of idling through the whole slot.
	window := interFrameSpacing + m.x.Airtime(m.ctrlBytes) + m.x.prof.CCA
	m.eng.After(window, m.ctrlTimeoutFn)
}

// ctrlTimeout puts the radio down when no decodable control section
// arrived in time; a reception in flight is given time to finish.
func (m *lmacNode) ctrlTimeout() {
	if m.phase != lCtrl {
		return
	}
	if m.x.State() == radio.Rx {
		m.eng.After(m.x.Airtime(m.ctrlBytes), m.ctrlTimeoutFn)
		return
	}
	m.phase = lSleep
	m.x.Sleep()
}

// slotEnd forces the radio down whatever happened during the slot.
func (m *lmacNode) slotEnd() {
	m.phase = lSleep
	m.x.Sleep()
}

// OnTxDone implements FrameHandler.
func (m *lmacNode) OnTxDone(f *Frame) {
	switch f.Kind {
	case FrameCtrl:
		if f.Announce != Broadcast && m.head() != nil {
			// The data section of the owned slot follows immediately.
			m.x.Send(m.newFrame(FrameData, m.parent, m.dataBytes, m.head()))
			return
		}
		m.x.Sleep()
	case FrameData:
		// Schedule-guaranteed delivery: no ACK in LMAC.
		m.pop()
		m.x.Sleep()
	}
}

// OnFrame implements FrameHandler.
func (m *lmacNode) OnFrame(f *Frame) {
	switch m.phase {
	case lCtrl:
		if f.Kind == FrameCtrl {
			if f.Announce == m.id {
				m.phase = lWaitData
				return // stay listening for the data section
			}
			m.x.Sleep() // not for us: sleep through the data section
		}
	case lWaitData:
		if f.Kind == FrameData && f.Dst == m.id {
			m.accept(f.Packet)
			m.phase = lSleep
			m.x.Sleep()
		}
	case lSleep, lOwnSlot:
		// Stray delivery outside a listening phase: ignore.
	}
}

var _ macLayer = (*lmacNode)(nil)
