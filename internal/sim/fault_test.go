package sim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// TestRunFaultyNoFaultsMatchesRun asserts the degenerate contract: with
// an empty failure schedule and no battery, the fault runner reproduces
// Run bit for bit for every simulated protocol — same interleaving,
// same arrival-delta arithmetic, same event sequence.
func TestRunFaultyNoFaultsMatchesRun(t *testing.T) {
	for _, proto := range []struct {
		name   string
		params opt.Vector
	}{
		{"xmac", opt.Vector{0.3}},
		{"bmac", opt.Vector{0.3}},
		{"dmac", opt.Vector{1.2, 0.004}},
		{"lmac", opt.Vector{7, 0.09}},
	} {
		cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 120)
		cfg.Protocol = proto.name
		cfg.Params = proto.params
		faulty, err := RunFaulty(cfg, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", proto.name, err)
		}
		fixed, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proto.name, err)
		}
		if !reflect.DeepEqual(faulty, fixed) {
			t.Errorf("%s: no-fault RunFaulty diverged from Run:\nfaulty: gen=%d del=%d events=%d\nfixed:  gen=%d del=%d events=%d",
				proto.name, faulty.Metrics.Generated(), faulty.Metrics.Delivered(), faulty.Events,
				fixed.Metrics.Generated(), fixed.Metrics.Delivered(), fixed.Events)
		}
	}
}

// TestFaultPointsChurnDeterministic pins the churn materialization:
// deterministic in the seed, decorrelated across seeds, sorted by time.
func TestFaultPointsChurnDeterministic(t *testing.T) {
	net := phasedSimNetwork(t)
	f := &FailureConfig{MTBF: 120, MTTR: 40}
	a := faultPoints(f, net, 7, 1000)
	b := faultPoints(f, net, 7, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different churn schedules")
	}
	if len(a) == 0 {
		t.Fatal("no churn events over 1000 s with MTBF 120")
	}
	for i := 1; i < len(a); i++ {
		if a[i].at < a[i-1].at {
			t.Fatalf("schedule out of order at %d", i)
		}
	}
	c := faultPoints(f, net, 8, 1000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical churn schedules")
	}
	for _, pt := range a {
		if pt.node == 0 {
			t.Fatal("churn scheduled a sink crash")
		}
		if pt.at >= 1000 {
			t.Fatalf("point at %v beyond the horizon", pt.at)
		}
	}
}

// TestRunFaultyPermanentCrash kills the line's first relay mid-run: the
// network partitions for the rest of the run, the dead-node and
// partition clocks advance together, and delivery suffers versus the
// failure-free twin.
func TestRunFaultyPermanentCrash(t *testing.T) {
	cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 400)
	cfg.Params = opt.Vector{0.3}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Failures = &FailureConfig{Events: []FailureEvent{{Node: 1, At: 200}}}
	res, err := Run(cfg) // delegates to the fault runner
	if err != nil {
		t.Fatal(err)
	}
	if res.Deaths != 1 || res.Recoveries != 0 || res.DeadAtEnd != 1 {
		t.Fatalf("deaths=%d recoveries=%d deadAtEnd=%d, want 1/0/1",
			res.Deaths, res.Recoveries, res.DeadAtEnd)
	}
	if got := res.DeadNodeSeconds; got < 199 || got > 201 {
		t.Errorf("DeadNodeSeconds = %v, want ~200", got)
	}
	// Node 1 relays everything on a line: its death cuts 2 and 3 off.
	if got := res.PartitionSeconds; got < 199 || got > 201 {
		t.Errorf("PartitionSeconds = %v, want ~200", got)
	}
	if f := res.PartitionFraction(); f < 0.49 || f > 0.51 {
		t.Errorf("PartitionFraction = %v, want ~0.5", f)
	}
	if res.Metrics.Delivered() >= base.Metrics.Delivered() {
		t.Errorf("crashed run delivered %d, failure-free %d",
			res.Metrics.Delivered(), base.Metrics.Delivered())
	}
	// The dead relay consumed nothing after the crash: at most half the
	// failure-free consumption plus the pre-crash variance.
	if res.Energy[1] > 0.75*base.Energy[1] {
		t.Errorf("dead relay consumed %v J of the failure-free %v J", res.Energy[1], base.Energy[1])
	}
}

// TestRunFaultyRecovery crashes a relay for a bounded outage: the node
// comes back, forwards again, and the clocks cover only the outage.
func TestRunFaultyRecovery(t *testing.T) {
	cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 400)
	cfg.Params = opt.Vector{0.3}
	cfg.Failures = &FailureConfig{Events: []FailureEvent{{Node: 1, At: 100, Duration: 100}}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deaths != 1 || res.Recoveries != 1 || res.DeadAtEnd != 0 {
		t.Fatalf("deaths=%d recoveries=%d deadAtEnd=%d, want 1/1/0",
			res.Deaths, res.Recoveries, res.DeadAtEnd)
	}
	if got := res.DeadNodeSeconds; got < 99 || got > 101 {
		t.Errorf("DeadNodeSeconds = %v, want ~100", got)
	}
	if got := res.PartitionSeconds; got < 99 || got > 101 {
		t.Errorf("PartitionSeconds = %v, want ~100", got)
	}
	// Packets sampled at the outer nodes after the recovery must flow
	// again: delivery cannot be stuck at the pre-outage level.
	if res.Metrics.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
	if ratio := res.Metrics.DeliveryRatio(); ratio < 0.5 {
		t.Errorf("delivery ratio %.3f after a 100 s outage on a 400 s run", ratio)
	}
}

// TestRunFaultyBatteryDeath gives nodes a budget far below the run's
// consumption: they die at their exact depletion instants (meters
// frozen at the capacity, never beyond) and stay dead.
func TestRunFaultyBatteryDeath(t *testing.T) {
	cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 400)
	cfg.Params = opt.Vector{0.3}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Half of the busiest node's failure-free consumption: every node
	// must deplete mid-run.
	capacity := base.Energy[1] / 2
	cfg.Battery = &BatteryConfig{Capacity: capacity}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Network.N()
	if res.Deaths != n-1 || res.DeadAtEnd != n-1 || res.Recoveries != 0 {
		t.Fatalf("deaths=%d deadAtEnd=%d recoveries=%d, want all %d non-sink nodes dead",
			res.Deaths, res.DeadAtEnd, res.Recoveries, n-1)
	}
	for i := 1; i < n; i++ {
		if res.Energy[i] > capacity*(1+1e-9) {
			t.Errorf("node %d consumed %v J of a %v J battery", i, res.Energy[i], capacity)
		}
	}
	if res.DeadNodeSeconds <= 0 {
		t.Error("battery deaths advanced no dead-node time")
	}
	if res.Metrics.Delivered() >= base.Metrics.Delivered() {
		t.Errorf("battery-limited run delivered %d, unlimited %d",
			res.Metrics.Delivered(), base.Metrics.Delivered())
	}
}

// TestRunFaultyDeterministic runs churn + battery twice: bit-identical.
func TestRunFaultyDeterministic(t *testing.T) {
	cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 300)
	cfg.Params = opt.Vector{0.3}
	cfg.Failures = &FailureConfig{MTBF: 150, MTTR: 50}
	cfg.Battery = &BatteryConfig{Capacity: 0.5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal fault-injected runs diverged")
	}
}

// TestRunFaultyRebargainHook drives the degradation-aware path: the
// hook is consulted exactly once per liveness epoch, its vector is
// deployed, and a failing hook degrades to the last-good vector
// instead of aborting.
func TestRunFaultyRebargainHook(t *testing.T) {
	cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 400)
	cfg.Params = opt.Vector{0.3}
	cfg.Failures = &FailureConfig{Events: []FailureEvent{{Node: 3, At: 100, Duration: 100}}}

	var sawAlive []bool
	calls := 0
	reb := func(alive []bool, phase int, at float64) (opt.Vector, error) {
		calls++
		sawAlive = append([]bool(nil), alive...)
		return opt.Vector{0.6}, nil
	}
	res, err := RunFaulty(cfg, nil, reb)
	if err != nil {
		t.Fatal(err)
	}
	// One death epoch + one recovery epoch.
	if calls != 2 || res.Rebargains != 2 || res.DegradedRebargains != 0 {
		t.Fatalf("calls=%d rebargains=%d degraded=%d, want 2/2/0",
			calls, res.Rebargains, res.DegradedRebargains)
	}
	if len(sawAlive) != cfg.Network.N() {
		t.Fatalf("alive slice has %d entries, want %d", len(sawAlive), cfg.Network.N())
	}

	failing := func(alive []bool, phase int, at float64) (opt.Vector, error) {
		return nil, errors.New("infeasible")
	}
	res, err = RunFaulty(cfg, nil, failing)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebargains != 2 || res.DegradedRebargains != 2 {
		t.Fatalf("rebargains=%d degraded=%d, want 2/2", res.Rebargains, res.DegradedRebargains)
	}
	if res.Metrics.Delivered() == 0 {
		t.Fatal("degraded run delivered nothing")
	}
}

// TestRunFaultyValidation exercises the fault-block rejection cases.
func TestRunFaultyValidation(t *testing.T) {
	base := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 100)
	base.Params = opt.Vector{0.3}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"sink crash", func(c *Config) {
			c.Failures = &FailureConfig{Events: []FailureEvent{{Node: 0, At: 10}}}
		}},
		{"node out of range", func(c *Config) {
			c.Failures = &FailureConfig{Events: []FailureEvent{{Node: topology.NodeID(c.Network.N()), At: 10}}}
		}},
		{"negative crash time", func(c *Config) {
			c.Failures = &FailureConfig{Events: []FailureEvent{{Node: 1, At: -1}}}
		}},
		{"negative outage", func(c *Config) {
			c.Failures = &FailureConfig{Events: []FailureEvent{{Node: 1, At: 1, Duration: -2}}}
		}},
		{"churn without MTBF", func(c *Config) {
			c.Failures = &FailureConfig{MTTR: 10}
		}},
		{"negative MTTR", func(c *Config) {
			c.Failures = &FailureConfig{MTBF: 100, MTTR: -1}
		}},
		{"zero battery", func(c *Config) {
			c.Battery = &BatteryConfig{}
		}},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
