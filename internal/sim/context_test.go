package sim

import (
	"context"
	"errors"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/traffic"
)

// TestRunContextBackgroundIdentical pins the cancellation plumbing's
// zero-cost contract: threading an uncancellable context changes no
// event, metric or joule relative to Run.
func TestRunContextBackgroundIdentical(t *testing.T) {
	cfg := lineConfig(t, "xmac", opt.Vector{0.25}, 4, 0.05, 800)
	want, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if want.Events != got.Events {
		t.Fatalf("event counts diverge: Run %d, RunContext %d", want.Events, got.Events)
	}
	if want.Metrics.Generated() != got.Metrics.Generated() ||
		want.Metrics.Delivered() != got.Metrics.Delivered() {
		t.Fatalf("metrics diverge: Run %d/%d, RunContext %d/%d",
			want.Metrics.Generated(), want.Metrics.Delivered(),
			got.Metrics.Generated(), got.Metrics.Delivered())
	}
	for i := range want.Energy {
		if want.Energy[i] != got.Energy[i] {
			t.Fatalf("node %d energy diverges: %v vs %v", i, want.Energy[i], got.Energy[i])
		}
	}
}

// TestRunContextCancelled proves an already-cancelled context aborts a
// run before it completes and surfaces the context's error.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := lineConfig(t, "xmac", opt.Vector{0.25}, 4, 0.05, 5000)
	res, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result")
	}
}

// TestRunPhasedContextCancelled covers the phased runner's abort path.
func TestRunPhasedContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := lineConfig(t, "xmac", opt.Vector{0.25}, 4, 0, 5000)
	cfg.Traffic = traffic.Periodic{Rate: 0.05}
	phases := []PhaseConfig{
		{Params: opt.Vector{0.25}, Until: 2500},
		{Params: opt.Vector{0.35}, Until: 5000},
	}
	res, err := RunPhasedContext(ctx, cfg, phases)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("cancelled phased run returned a result")
	}
}

// TestRunBatchCancelInFlight proves cancellation reaches runs already
// handed to a worker, not only queued ones: with a single worker and a
// context cancelled mid-batch, every outcome is either a completed
// result (started before the cancel) or a context error.
func TestRunBatchCancelInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{
		lineConfig(t, "xmac", opt.Vector{0.25}, 4, 0.05, 3000),
		lineConfig(t, "xmac", opt.Vector{0.3}, 4, 0.05, 3000),
	}
	for _, br := range RunBatch(ctx, cfgs, 1) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("want context.Canceled outcome, got result=%v err=%v", br.Result, br.Err)
		}
	}
}
