package sim

import (
	"github.com/edmac-project/edmac/internal/channel"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// FrameHandler is the MAC-layer upcall interface of a transceiver.
//
// Frames passed to OnFrame and OnTxDone are owned by the medium and are
// recycled as soon as the upcall returns: implementations must copy any
// field (and take the Packet pointer) they need afterwards, and must not
// retain the *Frame itself — e.g. in a deferred closure.
type FrameHandler interface {
	// OnFrame delivers a successfully decoded frame (including frames
	// addressed to other nodes — overhearing is the MAC's business).
	OnFrame(f *Frame)
	// OnTxDone signals that the node's own transmission left the air.
	OnTxDone(f *Frame)
}

// transmission is one frame in flight. Transmissions are pooled by the
// medium and tracked in an intrusive slice: idx is the element's
// position in Medium.inflight, maintained by swap-with-last removal.
type transmission struct {
	frame *Frame
	from  topology.NodeID
	endAt Time  // absolute end-of-airtime instant
	idx   int32 // position in Medium.inflight, -1 when not in flight
}

// Medium is the shared radio channel: unit-disk propagation over the
// network graph, zero propagation delay, and a collision model in which
// any overlap of two receptions at a listening node corrupts the locked
// frame — unless the capture effect is enabled and one frame dominates
// the other by the capture margin. Networks stamped with lossy links
// (see topology.Network.SetLink) additionally lose each reception
// independently with probability 1−PRR, drawn at end of airtime from a
// deterministic per-directed-link stream.
//
// The neighbour lists of the network are cached per node at construction
// and the in-flight set is a flat slice, so the per-frame hot path
// (startTx/endTx/busy) does no map or graph lookups and no allocation:
// transmissions and frames are recycled through free-lists, the
// callbacks driving them are allocated once here rather than per event,
// and the per-link PRR/gain/RNG tables are built once by enableLoss /
// enableCapture (never populated for the perfect channel, whose event
// trace stays byte-identical to the pre-channel simulator).
type Medium struct {
	eng        *Engine
	net        *topology.Network
	xcvrs      []*Transceiver
	carriers   []int               // per node: transmissions currently audible
	nbrs       [][]topology.NodeID // per node: cached net.Neighbors
	inflight   []*transmission
	committed  []*transmission // sent but still inside the inter-frame spacing
	collisions int

	// Channel state: linkPRR/linkGain/linkRNG[from][k] describe the
	// directed link from → nbrs[from][k]. All nil on a perfect channel.
	lossy     bool
	capture   bool
	captureDB float64
	linkPRR   [][]float64
	linkGain  [][]float64
	linkRNG   [][]channel.DrawStream
	fades     int // receptions lost to the per-link delivery draw
	captures  int // overlaps survived via the capture effect

	txPool     []*transmission
	framePool  []*Frame
	txMade     int // transmissions ever allocated (pool-leak accounting)
	framesMade int // frames ever allocated (pool-leak accounting)

	// fault is the fault-injection runtime of the run, nil on
	// failure-free runs: the transceiver state machine notifies it of
	// every radio-state change so battery-depletion instants stay exact.
	fault *faultState

	startTxCb func(any) // cached: schedule startTx without a new closure
	endTxCb   func(any) // cached: schedule endTx without a new closure
}

// NewMedium creates the channel and one transceiver per node.
func NewMedium(eng *Engine, net *topology.Network, prof radio.Radio) *Medium {
	n := net.N()
	m := &Medium{
		eng:      eng,
		net:      net,
		xcvrs:    make([]*Transceiver, n),
		carriers: make([]int, n),
		nbrs:     make([][]topology.NodeID, n),
	}
	for i := range m.xcvrs {
		m.nbrs[i] = net.Neighbors(topology.NodeID(i))
		x := &Transceiver{
			id:    topology.NodeID(i),
			med:   m,
			prof:  prof,
			state: radio.Sleep,
		}
		x.txDoneCb = func(a any) { x.txDone(a.(*Frame)) }
		m.xcvrs[i] = x
	}
	m.startTxCb = func(a any) { m.startTx(a.(*transmission)) }
	m.endTxCb = func(a any) { m.endTx(a.(*transmission)) }
	return m
}

// Transceiver returns node id's radio.
func (m *Medium) Transceiver(id topology.NodeID) *Transceiver { return m.xcvrs[id] }

// Collisions returns the number of corrupted receptions so far.
func (m *Medium) Collisions() int { return m.collisions }

// ChannelLosses returns the number of receptions lost to the per-link
// delivery draw (always 0 on a perfect channel).
func (m *Medium) ChannelLosses() int { return m.fades }

// Captures returns the number of overlaps a frame survived via the
// capture effect (always 0 when capture is disabled).
func (m *Medium) Captures() int { return m.captures }

// enableLoss builds the per-link delivery tables from the network's
// stamped link PRRs and the per-directed-link reception-draw streams
// derived from the run seed. A no-op on networks without lossy links,
// so legacy runs never pay for (or perturb) the draw machinery.
func (m *Medium) enableLoss(seed int64) {
	if !m.net.Lossy() {
		return
	}
	m.lossy = true
	m.linkPRR = make([][]float64, len(m.nbrs))
	m.linkRNG = make([][]channel.DrawStream, len(m.nbrs))
	for i, nbrs := range m.nbrs {
		from := topology.NodeID(i)
		m.linkPRR[i] = make([]float64, len(nbrs))
		m.linkRNG[i] = make([]channel.DrawStream, len(nbrs))
		for k, nb := range nbrs {
			m.linkPRR[i][k] = m.net.LinkPRR(from, nb)
			m.linkRNG[i][k] = channel.NewDrawStream(channel.DirectedLinkSeed(seed, from, nb))
		}
	}
}

// enableCapture switches the collision model to power capture with the
// given margin in dB (DefaultCaptureDB when non-positive).
func (m *Medium) enableCapture(thresholdDB float64) {
	if thresholdDB <= 0 {
		thresholdDB = channel.DefaultCaptureDB
	}
	m.capture = true
	m.captureDB = thresholdDB
	m.ensureGains()
}

// ensureGains caches the per-link gains the capture comparison reads.
func (m *Medium) ensureGains() {
	if m.linkGain != nil {
		return
	}
	m.linkGain = make([][]float64, len(m.nbrs))
	for i, nbrs := range m.nbrs {
		from := topology.NodeID(i)
		m.linkGain[i] = make([]float64, len(nbrs))
		for k, nb := range nbrs {
			m.linkGain[i][k] = m.net.LinkGainDB(from, nb)
		}
	}
}

// newFrame returns a zeroed frame from the pool. The medium reclaims it
// after the transmission ends and every upcall has returned.
func (m *Medium) newFrame() *Frame {
	if n := len(m.framePool); n > 0 {
		f := m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
		*f = Frame{}
		return f
	}
	m.framesMade++
	return &Frame{}
}

// freeFrame returns a frame to the pool.
func (m *Medium) freeFrame(f *Frame) {
	if f.pooled {
		panic("double free of frame")
	}
	f.pooled = true
	f.Packet = nil
	m.framePool = append(m.framePool, f)
}

// newTransmission builds a pooled transmission for a frame leaving node
// `from` with the given airtime.
func (m *Medium) newTransmission(f *Frame, from topology.NodeID, endAt Time) *transmission {
	var tx *transmission
	if n := len(m.txPool); n > 0 {
		tx = m.txPool[n-1]
		m.txPool = m.txPool[:n-1]
	} else {
		tx = &transmission{}
		m.txMade++
	}
	tx.frame = f
	tx.from = from
	tx.endAt = endAt
	tx.idx = -1
	return tx
}

// addInflight appends tx to the in-flight set, recording its index.
func (m *Medium) addInflight(tx *transmission) {
	tx.idx = int32(len(m.inflight))
	m.inflight = append(m.inflight, tx)
}

// dropInflight removes tx by swapping the last element into its place.
func (m *Medium) dropInflight(tx *transmission) {
	i := tx.idx
	last := len(m.inflight) - 1
	moved := m.inflight[last]
	m.inflight[i] = moved
	moved.idx = i
	m.inflight[last] = nil
	m.inflight = m.inflight[:last]
	tx.idx = -1
}

// dropCommitted removes tx from the committed set (a linear scan: the
// set holds at most the transmissions inside one inter-frame spacing,
// almost always a single element).
func (m *Medium) dropCommitted(tx *transmission) {
	for i, c := range m.committed {
		if c == tx {
			last := len(m.committed) - 1
			m.committed[i] = m.committed[last]
			m.committed[last] = nil
			m.committed = m.committed[:last]
			return
		}
	}
}

// startTx propagates a new transmission to every neighbour of the sender.
func (m *Medium) startTx(tx *transmission) {
	m.dropCommitted(tx)
	m.addInflight(tx)
	for k, nb := range m.nbrs[tx.from] {
		m.carriers[nb]++
		x := m.xcvrs[nb]
		switch {
		case x.state == radio.Listen && x.lock == nil:
			// Clean channel at a listening node: lock onto the frame.
			x.lock = tx
			x.lockBad = false
			if m.capture {
				x.lockGain = m.linkGain[tx.from][k]
			}
			x.setState(radio.Rx)
		case x.state == radio.Rx && x.lock != nil:
			m.overlap(x, tx, k)
		}
		// Sleeping or transmitting nodes miss the frame entirely.
	}
	m.eng.AtCall(tx.endAt, m.endTxCb, tx)
}

// overlap resolves a second frame arriving at a receiving node. Without
// capture any overlap corrupts the locked frame; with capture the frame
// whose received power dominates the other's by the capture margin
// survives — an intact locked frame powers through a weak interferer,
// and a sufficiently strong late arrival steals the lock (its first bit
// is on the air now, so a clean reception of it is possible).
//
// Once a lock is corrupted, lockGain keeps tracking the strongest frame
// involved in the pile-up, so a late arrival only steals the lock by
// dominating every frame heard so far, not just the first one. (The
// strongest earlier frame may have left the air by then; accepting that
// approximation keeps the bookkeeping O(1) per overlap and errs toward
// corruption, never toward phantom deliveries.)
func (m *Medium) overlap(x *Transceiver, tx *transmission, k int) {
	if m.capture {
		newGain := m.linkGain[tx.from][k]
		if !x.lockBad && x.lockGain >= newGain+m.captureDB {
			m.captures++
			return
		}
		if newGain >= x.lockGain+m.captureDB {
			x.lock = tx
			x.lockBad = false
			x.lockGain = newGain
			m.captures++
			return
		}
		if newGain > x.lockGain {
			x.lockGain = newGain
		}
	}
	// Overlap corrupts whatever was being received.
	x.lockBad = true
	m.collisions++
}

// endTx removes the transmission, delivers it where reception survived,
// and recycles the frame and the transmission record.
func (m *Medium) endTx(tx *transmission) {
	m.dropInflight(tx)
	for k, nb := range m.nbrs[tx.from] {
		m.carriers[nb]--
		x := m.xcvrs[nb]
		if x.lock != tx {
			continue
		}
		ok := !x.lockBad
		x.lock = nil
		x.lockBad = false
		x.setState(radio.Listen)
		if ok && m.lossy {
			// Per-receiver delivery draw: the link passes this frame with
			// probability PRR, from the directed link's own deterministic
			// stream (Float64 is in [0, 1), so a PRR of 1 never loses).
			if m.linkRNG[tx.from][k].Float64() >= m.linkPRR[tx.from][k] {
				ok = false
				m.fades++
			}
		}
		if ok && x.handler != nil {
			x.handler.OnFrame(tx.frame)
		}
	}
	m.freeFrame(tx.frame)
	tx.frame = nil
	m.txPool = append(m.txPool, tx)
}

// quiesce clears the channel at an epoch boundary: every in-flight
// transmission is abandoned (its end event has already been dropped from
// the engine), carrier counts reset, and every transceiver is forced to
// Sleep with its time-in-state accounting settled up to the boundary —
// energy metering carries across the swap without a gap. Frames lost
// mid-air are not deliveries and not collisions; the packets they
// carried remain in their senders' queues wherever the protocol
// confirms before popping, so the next regime retries them.
func (m *Medium) quiesce() {
	for _, tx := range m.inflight {
		m.freeFrame(tx.frame)
		tx.frame = nil
		tx.idx = -1
		m.txPool = append(m.txPool, tx)
	}
	m.inflight = m.inflight[:0]
	// Transmissions committed by Send but still inside the inter-frame
	// spacing never reached the in-flight set (their startTx event was
	// dropped); reclaim them too so the pools stay leak-free.
	for i, tx := range m.committed {
		m.freeFrame(tx.frame)
		tx.frame = nil
		m.txPool = append(m.txPool, tx)
		m.committed[i] = nil
	}
	m.committed = m.committed[:0]
	for i := range m.carriers {
		m.carriers[i] = 0
	}
	for _, x := range m.xcvrs {
		x.lock = nil
		x.lockBad = false
		x.sending = nil
		// Bypass Sleep()'s in-transmission guard: the transmission this
		// radio was making no longer exists.
		x.setState(radio.Sleep)
	}
}

// busy reports whether the channel is effectively occupied at the node:
// a transmission is audible, or a neighbour has committed to transmit
// (radio ramping up during the inter-frame spacing). Including committed
// transmitters models a CCA that detects the transmitter's ramp-up and
// closes the blind window the spacing would otherwise open.
func (m *Medium) busy(id topology.NodeID) bool {
	if m.carriers[id] > 0 {
		return true
	}
	for _, nb := range m.nbrs[id] {
		if m.xcvrs[nb].state == radio.Tx {
			return true
		}
	}
	return false
}

// Transceiver is one node's radio: a state machine over
// sleep/listen/rx/tx that meters the time spent in every state. MAC
// implementations drive it and receive upcalls through their
// FrameHandler.
type Transceiver struct {
	id      topology.NodeID
	med     *Medium
	prof    radio.Radio
	handler FrameHandler

	state    radio.State
	since    Time
	halted   bool       // node is dead: the meters are frozen
	acc      [5]float64 // seconds per radio.State (1-indexed)
	lock     *transmission
	lockBad  bool
	lockGain float64 // received power (dB) of the locked frame (capture)
	sending  *Frame
	txDoneCb func(any) // cached: end-of-transmission without a new closure
}

// SetHandler installs the MAC upcall target; must be called before the
// simulation starts.
func (x *Transceiver) SetHandler(h FrameHandler) { x.handler = h }

// ID returns the node this radio belongs to.
func (x *Transceiver) ID() topology.NodeID { return x.id }

// State returns the current radio state.
func (x *Transceiver) State() radio.State { return x.state }

// setState accumulates elapsed time and switches state. A halted
// (dead) radio keeps ticking through states without metering — a
// powered-off node draws nothing — and on fault-injected runs every
// transition notifies the battery meter so depletion instants stay
// exact. Failure-free runs take neither branch.
func (x *Transceiver) setState(s radio.State) {
	now := x.med.eng.Now()
	if !x.halted {
		x.acc[x.state] += now - x.since
	}
	x.since = now
	x.state = s
	if f := x.med.fault; f != nil {
		f.onState(x)
	}
}

// Sleep powers the radio down, aborting any reception in progress. It
// is a no-op while transmitting: the frame finishes first and the MAC
// decides again in OnTxDone.
func (x *Transceiver) Sleep() {
	if x.state == radio.Tx {
		return
	}
	x.lock = nil
	x.lockBad = false
	x.setState(radio.Sleep)
}

// Listen turns the receiver on (idle listening). If a neighbour started
// transmitting earlier the node cannot decode the partial frame — it
// senses a busy channel and locks onto the next one — with one
// exception: a wakeup preamble (FramePreamble) is detectable mid-flight,
// which is the mechanism low-power listening relies on. No-op while
// receiving or transmitting.
func (x *Transceiver) Listen() {
	if x.state == radio.Listen || x.state == radio.Rx || x.state == radio.Tx {
		return
	}
	x.setState(radio.Listen)
	x.med.midLock(x)
}

// midLock locks a freshly listening node onto an audible in-flight
// preamble, unless several carriers overlap (then nothing is decodable).
func (m *Medium) midLock(x *Transceiver) {
	if m.carriers[x.id] != 1 {
		return
	}
	for _, tx := range m.inflight {
		if tx.frame.Kind != FramePreamble {
			continue
		}
		for k, nb := range m.nbrs[tx.from] {
			if nb == x.id {
				x.lock = tx
				x.lockBad = false
				if m.capture {
					x.lockGain = m.linkGain[tx.from][k]
				}
				x.setState(radio.Rx)
				return
			}
		}
	}
}

// CarrierBusy reports whether the channel is busy at this node. The MAC
// uses it for CCA; it works in any radio state.
func (x *Transceiver) CarrierBusy() bool { return x.med.busy(x.id) }

// interFrameSpacing is the radio ramp-up between a Send call and the
// first bit on the air (one byte time at 250 kbit/s). Besides being
// physically real, it guarantees that a transmission triggered by a
// frame's end never starts at the same instant: all end-of-frame
// bookkeeping (peers returning to listen, carrier counts) settles first,
// which keeps back-to-back handshakes (strobe→ack→data→ack) race-free.
const interFrameSpacing = 32e-6

// Send puts a frame on the air after interFrameSpacing. Any reception in
// progress is aborted (the MAC should avoid that via CCA). OnTxDone
// fires when the airtime elapses; the radio then returns to Listen.
//
// The frame is handed over to the medium: it is delivered to receivers
// when the airtime ends and then recycled (see FrameHandler).
func (x *Transceiver) Send(f *Frame) {
	if f.pooled {
		panic("Send of pooled frame")
	}
	x.lock = nil
	x.lockBad = false
	x.setState(radio.Tx)
	x.sending = f
	// Both the sender's end-of-transmission upcall and the medium's
	// delivery run at the same instant; computing it once makes the two
	// timestamps bit-identical, so scheduling order decides: txDone was
	// scheduled first and fires first — the sender learns its frame left
	// the air before receivers process it, exactly as with a real
	// radio's end-of-transmission interrupt.
	start := x.med.eng.Now() + interFrameSpacing
	end := start + x.prof.FrameAirtime(f.Bytes)
	tx := x.med.newTransmission(f, x.id, end)
	x.med.committed = append(x.med.committed, tx)
	x.med.eng.AtCall(start, x.med.startTxCb, tx)
	x.med.eng.AtCall(end, x.txDoneCb, f)
}

// txDone closes the sender side of a transmission.
func (x *Transceiver) txDone(f *Frame) {
	if f.pooled {
		panic("txDone on pooled frame")
	}
	x.sending = nil
	x.setState(radio.Listen)
	if x.handler != nil {
		x.handler.OnTxDone(f)
	}
}

// Airtime returns the on-air duration of a frame of the given MAC size.
func (x *Transceiver) Airtime(bytes int) float64 { return x.prof.FrameAirtime(bytes) }

// finish closes the energy accounting at the current time.
func (x *Transceiver) finish() { x.setState(x.state) }

// TimeIn returns the seconds spent in state s so far.
func (x *Transceiver) TimeIn(s radio.State) float64 { return x.acc[s] }

// Energy returns the joules consumed so far: Σ time(state) × power.
func (x *Transceiver) Energy() float64 {
	total := 0.0
	for _, s := range []radio.State{radio.Sleep, radio.Listen, radio.Rx, radio.Tx} {
		total += x.acc[s] * x.prof.Power(s)
	}
	return total
}
