package sim

import (
	"github.com/edmac-project/edmac/internal/channel"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// FrameHandler is the MAC-layer upcall interface of a transceiver.
//
// Frames passed to OnFrame and OnTxDone are owned by the medium and are
// recycled as soon as the upcall returns: implementations must copy any
// field (and take the Packet pointer) they need afterwards, and must not
// retain the *Frame itself — e.g. in a deferred closure.
type FrameHandler interface {
	// OnFrame delivers a successfully decoded frame (including frames
	// addressed to other nodes — overhearing is the MAC's business).
	OnFrame(f *Frame)
	// OnTxDone signals that the node's own transmission left the air.
	OnTxDone(f *Frame)
}

// transmission is one frame in flight. Transmissions are pooled by the
// medium and tracked in an intrusive slice: idx is the element's
// position in Medium.inflight, maintained by swap-with-last removal.
type transmission struct {
	frame *Frame
	from  topology.NodeID
	endAt Time  // absolute end-of-airtime instant
	idx   int32 // position in Medium.inflight, -1 when not in flight
}

// Medium is the shared radio channel: unit-disk propagation over the
// network graph, zero propagation delay, and a collision model in which
// any overlap of two receptions at a listening node corrupts the locked
// frame — unless the capture effect is enabled and one frame dominates
// the other by the capture margin. Networks stamped with lossy links
// (see topology.Network.SetLink) additionally lose each reception
// independently with probability 1−PRR, drawn at end of airtime from a
// deterministic per-directed-link stream.
//
// The neighbour lists of the network are cached per node at construction
// and the in-flight set is a flat slice, so the per-frame hot path
// (startTx/endTx/busy) does no map or graph lookups and no allocation:
// transmissions and frames are recycled through free-lists, the
// callbacks driving them are allocated once here rather than per event,
// and the per-link PRR/gain/RNG tables are built once by enableLoss /
// enableCapture (never populated for the perfect channel, whose event
// trace stays byte-identical to the pre-channel simulator).
type Medium struct {
	eng        *Engine
	net        *topology.Network
	xcvrs      []*Transceiver
	carriers   []int               // per node: transmissions currently audible
	nbrs       [][]topology.NodeID // per node: cached net.Neighbors
	inflight   []*transmission
	committed  []*transmission // sent but still inside the inter-frame spacing
	collisions int

	// Hot per-node radio state, structure-of-arrays. The per-frame
	// loops (startTx/endTx/busy) sweep a node's whole neighbourhood;
	// keeping each field in its own flat array turns those sweeps into
	// contiguous cache-line reads instead of pointer chases through
	// per-node structs. Transceiver is only a handle over index id.
	states   []radio.State
	since    []Time
	halted   []bool // node is dead: the meters are frozen
	lock     []*transmission
	lockBad  []bool
	lockGain []float64 // received power (dB) of locked frame (capture)
	sending  []*Frame
	acc      []float64 // seconds per (node, radio.State): acc[id*5+state]

	// Channel state: linkPRR/linkGain/linkRNG[from][k] describe the
	// directed link from → nbrs[from][k]. All nil on a perfect channel.
	lossy     bool
	capture   bool
	captureDB float64
	linkPRR   [][]float64
	linkGain  [][]float64
	linkRNG   [][]channel.DrawStream
	fades     int // receptions lost to the per-link delivery draw
	captures  int // overlaps survived via the capture effect

	txPool     []*transmission
	framePool  []*Frame
	txMade     int // transmissions ever allocated (pool-leak accounting)
	framesMade int // frames ever allocated (pool-leak accounting)

	// fault is the fault-injection runtime of the run, nil on
	// failure-free runs: the transceiver state machine notifies it of
	// every radio-state change so battery-depletion instants stay exact.
	fault *faultState

	startTxCb  func(any) // cached: schedule startTx without a new closure
	finishTxCb func(any) // cached: schedule txDone+endTx without a new closure

	// shared is the run's attached immutable world, nil when the run
	// was configured without one. It only ever supplies read-only
	// tables (neighbours, link PRR/gain); all mutable channel state
	// stays per-run.
	shared *Materialized
}

// NewMedium creates the channel and one transceiver per node.
func NewMedium(eng *Engine, net *topology.Network, prof radio.Radio) *Medium {
	return newMedium(eng, net, prof, nil)
}

// newMedium is NewMedium with an optional shared world: a matching
// Materialized supplies the cached neighbour lists and, later, the
// link-PRR/gain tables (see enableLoss/ensureGains) — all read-only.
func newMedium(eng *Engine, net *topology.Network, prof radio.Radio, sh *Materialized) *Medium {
	n := net.N()
	m := &Medium{
		eng:      eng,
		net:      net,
		xcvrs:    make([]*Transceiver, n),
		carriers: make([]int, n),
		nbrs:     make([][]topology.NodeID, n),
		states:   make([]radio.State, n),
		since:    make([]Time, n),
		halted:   make([]bool, n),
		lock:     make([]*transmission, n),
		lockBad:  make([]bool, n),
		lockGain: make([]float64, n),
		sending:  make([]*Frame, n),
		acc:      make([]float64, n*5),
	}
	m.shared = sh
	if sh != nil {
		m.nbrs = sh.nbrs
	}
	handles := make([]Transceiver, n) // one allocation for all handles
	for i := range m.xcvrs {
		if sh == nil {
			m.nbrs[i] = net.Neighbors(topology.NodeID(i))
		}
		m.states[i] = radio.Sleep
		handles[i] = Transceiver{id: topology.NodeID(i), med: m, prof: prof}
		m.xcvrs[i] = &handles[i]
	}
	m.startTxCb = func(a any) { m.startTx(a.(*transmission)) }
	m.finishTxCb = func(a any) { m.finishTx(a.(*transmission)) }
	return m
}

// Transceiver returns node id's radio.
func (m *Medium) Transceiver(id topology.NodeID) *Transceiver { return m.xcvrs[id] }

// Collisions returns the number of corrupted receptions so far.
func (m *Medium) Collisions() int { return m.collisions }

// ChannelLosses returns the number of receptions lost to the per-link
// delivery draw (always 0 on a perfect channel).
func (m *Medium) ChannelLosses() int { return m.fades }

// Captures returns the number of overlaps a frame survived via the
// capture effect (always 0 when capture is disabled).
func (m *Medium) Captures() int { return m.captures }

// enableLoss builds the per-link delivery tables from the network's
// stamped link PRRs and the per-directed-link reception-draw streams
// derived from the run seed. A no-op on networks without lossy links,
// so legacy runs never pay for (or perturb) the draw machinery.
func (m *Medium) enableLoss(seed int64) {
	if !m.net.Lossy() {
		return
	}
	m.lossy = true
	shared := m.shared != nil && m.shared.linkPRR != nil
	if shared {
		m.linkPRR = m.shared.linkPRR
	} else {
		m.linkPRR = make([][]float64, len(m.nbrs))
	}
	m.linkRNG = make([][]channel.DrawStream, len(m.nbrs))
	for i, nbrs := range m.nbrs {
		from := topology.NodeID(i)
		if !shared {
			m.linkPRR[i] = make([]float64, len(nbrs))
		}
		m.linkRNG[i] = make([]channel.DrawStream, len(nbrs))
		for k, nb := range nbrs {
			if !shared {
				m.linkPRR[i][k] = m.net.LinkPRR(from, nb)
			}
			m.linkRNG[i][k] = channel.NewDrawStream(channel.DirectedLinkSeed(seed, from, nb))
		}
	}
}

// enableCapture switches the collision model to power capture with the
// given margin in dB (DefaultCaptureDB when non-positive).
func (m *Medium) enableCapture(thresholdDB float64) {
	if thresholdDB <= 0 {
		thresholdDB = channel.DefaultCaptureDB
	}
	m.capture = true
	m.captureDB = thresholdDB
	m.ensureGains()
}

// ensureGains caches the per-link gains the capture comparison reads.
func (m *Medium) ensureGains() {
	if m.linkGain != nil {
		return
	}
	if m.shared != nil && m.shared.linkGain != nil {
		m.linkGain = m.shared.linkGain
		return
	}
	m.linkGain = make([][]float64, len(m.nbrs))
	for i, nbrs := range m.nbrs {
		from := topology.NodeID(i)
		m.linkGain[i] = make([]float64, len(nbrs))
		for k, nb := range nbrs {
			m.linkGain[i][k] = m.net.LinkGainDB(from, nb)
		}
	}
}

// newFrame returns a zeroed frame from the pool. The medium reclaims it
// after the transmission ends and every upcall has returned.
//
//edvet:hotpath
func (m *Medium) newFrame() *Frame {
	if n := len(m.framePool); n > 0 {
		f := m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
		*f = Frame{}
		return f
	}
	m.framesMade++
	return &Frame{}
}

// freeFrame returns a frame to the pool.
//
//edvet:hotpath
func (m *Medium) freeFrame(f *Frame) {
	if f.pooled {
		panic("double free of frame")
	}
	f.pooled = true
	f.Packet = nil
	m.framePool = append(m.framePool, f)
}

// newTransmission builds a pooled transmission for a frame leaving node
// `from` with the given airtime.
//
//edvet:hotpath
func (m *Medium) newTransmission(f *Frame, from topology.NodeID, endAt Time) *transmission {
	var tx *transmission
	if n := len(m.txPool); n > 0 {
		tx = m.txPool[n-1]
		m.txPool = m.txPool[:n-1]
	} else {
		tx = &transmission{}
		m.txMade++
	}
	tx.frame = f
	tx.from = from
	tx.endAt = endAt
	tx.idx = -1
	return tx
}

// addInflight appends tx to the in-flight set, recording its index.
//
//edvet:hotpath
func (m *Medium) addInflight(tx *transmission) {
	tx.idx = int32(len(m.inflight))
	m.inflight = append(m.inflight, tx)
}

// dropInflight removes tx by swapping the last element into its place.
//
//edvet:hotpath
func (m *Medium) dropInflight(tx *transmission) {
	i := tx.idx
	last := len(m.inflight) - 1
	moved := m.inflight[last]
	m.inflight[i] = moved
	moved.idx = i
	m.inflight[last] = nil
	m.inflight = m.inflight[:last]
	tx.idx = -1
}

// dropCommitted removes tx from the committed set (a linear scan: the
// set holds at most the transmissions inside one inter-frame spacing,
// almost always a single element).
//
//edvet:hotpath
func (m *Medium) dropCommitted(tx *transmission) {
	for i, c := range m.committed {
		if c == tx {
			last := len(m.committed) - 1
			m.committed[i] = m.committed[last]
			m.committed[last] = nil
			m.committed = m.committed[:last]
			return
		}
	}
}

// startTx propagates a new transmission to every neighbour of the sender.
//
//edvet:hotpath
func (m *Medium) startTx(tx *transmission) {
	m.dropCommitted(tx)
	m.addInflight(tx)
	for k, nb := range m.nbrs[tx.from] {
		m.carriers[nb]++
		switch {
		case m.states[nb] == radio.Listen && m.lock[nb] == nil:
			// Clean channel at a listening node: lock onto the frame.
			m.lock[nb] = tx
			m.lockBad[nb] = false
			if m.capture {
				m.lockGain[nb] = m.linkGain[tx.from][k]
			}
			m.setState(nb, radio.Rx)
		case m.states[nb] == radio.Rx && m.lock[nb] != nil:
			m.overlap(nb, tx, k)
		}
		// Sleeping or transmitting nodes miss the frame entirely.
	}
}

// finishTx closes a transmission at its end instant: the sender's
// end-of-transmission upcall runs first (exactly as with a real radio's
// interrupt), then the medium delivers to receivers and recycles the
// record. Folding both into one event halves the end-of-frame scheduler
// traffic — transmissions are ~72% of all events — while preserving the
// sender-before-receivers order the Send contract promises.
//
//edvet:hotpath
func (m *Medium) finishTx(tx *transmission) {
	m.xcvrs[tx.from].txDone(tx.frame)
	m.endTx(tx)
}

// overlap resolves a second frame arriving at a receiving node. Without
// capture any overlap corrupts the locked frame; with capture the frame
// whose received power dominates the other's by the capture margin
// survives — an intact locked frame powers through a weak interferer,
// and a sufficiently strong late arrival steals the lock (its first bit
// is on the air now, so a clean reception of it is possible).
//
// Once a lock is corrupted, lockGain keeps tracking the strongest frame
// involved in the pile-up, so a late arrival only steals the lock by
// dominating every frame heard so far, not just the first one. (The
// strongest earlier frame may have left the air by then; accepting that
// approximation keeps the bookkeeping O(1) per overlap and errs toward
// corruption, never toward phantom deliveries.)
//
//edvet:hotpath
func (m *Medium) overlap(nb topology.NodeID, tx *transmission, k int) {
	if m.capture {
		newGain := m.linkGain[tx.from][k]
		if !m.lockBad[nb] && m.lockGain[nb] >= newGain+m.captureDB {
			m.captures++
			return
		}
		if newGain >= m.lockGain[nb]+m.captureDB {
			m.lock[nb] = tx
			m.lockBad[nb] = false
			m.lockGain[nb] = newGain
			m.captures++
			return
		}
		if newGain > m.lockGain[nb] {
			m.lockGain[nb] = newGain
		}
	}
	// Overlap corrupts whatever was being received.
	m.lockBad[nb] = true
	m.collisions++
}

// endTx removes the transmission, delivers it where reception survived,
// and recycles the frame and the transmission record.
//
//edvet:hotpath
func (m *Medium) endTx(tx *transmission) {
	m.dropInflight(tx)
	for k, nb := range m.nbrs[tx.from] {
		m.carriers[nb]--
		if m.lock[nb] != tx {
			continue
		}
		ok := !m.lockBad[nb]
		m.lock[nb] = nil
		m.lockBad[nb] = false
		m.setState(nb, radio.Listen)
		if ok && m.lossy {
			// Per-receiver delivery draw: the link passes this frame with
			// probability PRR, from the directed link's own deterministic
			// stream (Float64 is in [0, 1), so a PRR of 1 never loses).
			if m.linkRNG[tx.from][k].Float64() >= m.linkPRR[tx.from][k] {
				ok = false
				m.fades++
			}
		}
		if ok {
			if h := m.xcvrs[nb].handler; h != nil {
				h.OnFrame(tx.frame)
			}
		}
	}
	m.freeFrame(tx.frame)
	tx.frame = nil
	m.txPool = append(m.txPool, tx)
}

// quiesce clears the channel at an epoch boundary: every in-flight
// transmission is abandoned (its end event has already been dropped from
// the engine), carrier counts reset, and every transceiver is forced to
// Sleep with its time-in-state accounting settled up to the boundary —
// energy metering carries across the swap without a gap. Frames lost
// mid-air are not deliveries and not collisions; the packets they
// carried remain in their senders' queues wherever the protocol
// confirms before popping, so the next regime retries them.
func (m *Medium) quiesce() {
	for _, tx := range m.inflight {
		m.freeFrame(tx.frame)
		tx.frame = nil
		tx.idx = -1
		m.txPool = append(m.txPool, tx)
	}
	m.inflight = m.inflight[:0]
	// Transmissions committed by Send but still inside the inter-frame
	// spacing never reached the in-flight set (their startTx event was
	// dropped); reclaim them too so the pools stay leak-free.
	for i, tx := range m.committed {
		m.freeFrame(tx.frame)
		tx.frame = nil
		m.txPool = append(m.txPool, tx)
		m.committed[i] = nil
	}
	m.committed = m.committed[:0]
	for i := range m.carriers {
		m.carriers[i] = 0
	}
	for i := range m.states {
		m.lock[i] = nil
		m.lockBad[i] = false
		m.sending[i] = nil
		// Bypass Sleep()'s in-transmission guard: the transmission this
		// radio was making no longer exists.
		m.setState(topology.NodeID(i), radio.Sleep)
	}
}

// busy reports whether the channel is effectively occupied at the node:
// a transmission is audible, or a neighbour has committed to transmit
// (radio ramping up during the inter-frame spacing). Including committed
// transmitters models a CCA that detects the transmitter's ramp-up and
// closes the blind window the spacing would otherwise open.
//
//edvet:hotpath
func (m *Medium) busy(id topology.NodeID) bool {
	if m.carriers[id] > 0 {
		return true
	}
	for _, nb := range m.nbrs[id] {
		if m.states[nb] == radio.Tx {
			return true
		}
	}
	return false
}

// Transceiver is one node's radio: a state machine over
// sleep/listen/rx/tx that meters the time spent in every state. MAC
// implementations drive it and receive upcalls through their
// FrameHandler. The handle itself is thin — the mutable radio state
// lives in the Medium's structure-of-arrays, indexed by id — so MACs
// keep a stable object API while the per-frame loops stay flat.
type Transceiver struct {
	id      topology.NodeID
	med     *Medium
	prof    radio.Radio
	handler FrameHandler
}

// SetHandler installs the MAC upcall target; must be called before the
// simulation starts.
func (x *Transceiver) SetHandler(h FrameHandler) { x.handler = h }

// ID returns the node this radio belongs to.
func (x *Transceiver) ID() topology.NodeID { return x.id }

// State returns the current radio state.
func (x *Transceiver) State() radio.State { return x.med.states[x.id] }

// setState accumulates elapsed time and switches state. A halted
// (dead) radio keeps ticking through states without metering — a
// powered-off node draws nothing — and on fault-injected runs every
// transition notifies the battery meter so depletion instants stay
// exact. Failure-free runs take neither branch.
//
//edvet:hotpath
func (m *Medium) setState(id topology.NodeID, s radio.State) {
	now := m.eng.Now()
	if !m.halted[id] {
		m.acc[int(id)*5+int(m.states[id])] += now - m.since[id]
	}
	m.since[id] = now
	m.states[id] = s
	if f := m.fault; f != nil {
		f.onState(m.xcvrs[id])
	}
}

// setState is the handle-level view of Medium.setState.
func (x *Transceiver) setState(s radio.State) { x.med.setState(x.id, s) }

// Sleep powers the radio down, aborting any reception in progress. It
// is a no-op while transmitting: the frame finishes first and the MAC
// decides again in OnTxDone.
func (x *Transceiver) Sleep() {
	m := x.med
	if m.states[x.id] == radio.Tx {
		return
	}
	m.lock[x.id] = nil
	m.lockBad[x.id] = false
	m.setState(x.id, radio.Sleep)
}

// Listen turns the receiver on (idle listening). If a neighbour started
// transmitting earlier the node cannot decode the partial frame — it
// senses a busy channel and locks onto the next one — with one
// exception: a wakeup preamble (FramePreamble) is detectable mid-flight,
// which is the mechanism low-power listening relies on. No-op while
// receiving or transmitting.
func (x *Transceiver) Listen() {
	s := x.med.states[x.id]
	if s == radio.Listen || s == radio.Rx || s == radio.Tx {
		return
	}
	x.med.setState(x.id, radio.Listen)
	x.med.midLock(x.id)
}

// midLock locks a freshly listening node onto an audible in-flight
// preamble, unless several carriers overlap (then nothing is decodable).
//
//edvet:hotpath
func (m *Medium) midLock(id topology.NodeID) {
	if m.carriers[id] != 1 {
		return
	}
	for _, tx := range m.inflight {
		if tx.frame.Kind != FramePreamble {
			continue
		}
		for k, nb := range m.nbrs[tx.from] {
			if nb == id {
				m.lock[id] = tx
				m.lockBad[id] = false
				if m.capture {
					m.lockGain[id] = m.linkGain[tx.from][k]
				}
				m.setState(id, radio.Rx)
				return
			}
		}
	}
}

// CarrierBusy reports whether the channel is busy at this node. The MAC
// uses it for CCA; it works in any radio state.
func (x *Transceiver) CarrierBusy() bool { return x.med.busy(x.id) }

// interFrameSpacing is the radio ramp-up between a Send call and the
// first bit on the air (one byte time at 250 kbit/s). Besides being
// physically real, it guarantees that a transmission triggered by a
// frame's end never starts at the same instant: all end-of-frame
// bookkeeping (peers returning to listen, carrier counts) settles first,
// which keeps back-to-back handshakes (strobe→ack→data→ack) race-free.
const interFrameSpacing = 32e-6

// Send puts a frame on the air after interFrameSpacing. Any reception in
// progress is aborted (the MAC should avoid that via CCA). OnTxDone
// fires when the airtime elapses; the radio then returns to Listen.
//
// The frame is handed over to the medium: it is delivered to receivers
// when the airtime ends and then recycled (see FrameHandler).
//
//edvet:hotpath
func (x *Transceiver) Send(f *Frame) {
	if f.pooled {
		panic("Send of pooled frame")
	}
	m := x.med
	m.lock[x.id] = nil
	m.lockBad[x.id] = false
	m.setState(x.id, radio.Tx)
	m.sending[x.id] = f
	// The sender's end-of-transmission upcall and the medium's delivery
	// run at the same instant inside one finishTx event: txDone first —
	// the sender learns its frame left the air before receivers process
	// it, exactly as with a real radio's end-of-transmission interrupt.
	start := x.med.eng.Now() + interFrameSpacing
	end := start + x.prof.FrameAirtime(f.Bytes)
	tx := x.med.newTransmission(f, x.id, end)
	x.med.committed = append(x.med.committed, tx)
	x.med.eng.AtCall(start, x.med.startTxCb, tx)
	x.med.eng.AtCall(end, x.med.finishTxCb, tx)
}

// txDone closes the sender side of a transmission.
//
//edvet:hotpath
func (x *Transceiver) txDone(f *Frame) {
	if f.pooled {
		panic("txDone on pooled frame")
	}
	x.med.sending[x.id] = nil
	x.med.setState(x.id, radio.Listen)
	if x.handler != nil {
		x.handler.OnTxDone(f)
	}
}

// Airtime returns the on-air duration of a frame of the given MAC size.
func (x *Transceiver) Airtime(bytes int) float64 { return x.prof.FrameAirtime(bytes) }

// finish closes the energy accounting at the current time.
func (x *Transceiver) finish() { x.med.setState(x.id, x.med.states[x.id]) }

// TimeIn returns the seconds spent in state s so far.
func (x *Transceiver) TimeIn(s radio.State) float64 { return x.med.acc[int(x.id)*5+int(s)] }

// Energy returns the joules consumed so far: Σ time(state) × power.
func (x *Transceiver) Energy() float64 {
	total := 0.0
	for _, s := range []radio.State{radio.Sleep, radio.Listen, radio.Rx, radio.Tx} {
		total += x.med.acc[int(x.id)*5+int(s)] * x.prof.Power(s)
	}
	return total
}
