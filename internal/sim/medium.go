package sim

import (
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// FrameHandler is the MAC-layer upcall interface of a transceiver.
type FrameHandler interface {
	// OnFrame delivers a successfully decoded frame (including frames
	// addressed to other nodes — overhearing is the MAC's business).
	OnFrame(f *Frame)
	// OnTxDone signals that the node's own transmission left the air.
	OnTxDone(f *Frame)
}

// transmission is one frame in flight.
type transmission struct {
	frame *Frame
	from  topology.NodeID
}

// Medium is the shared radio channel: unit-disk propagation over the
// network graph, zero propagation delay, and a collision model in which
// any overlap of two receptions at a listening node corrupts the locked
// frame (no capture effect).
type Medium struct {
	eng        *Engine
	net        *topology.Network
	xcvrs      []*Transceiver
	carriers   []int // per node: transmissions currently audible
	inflight   map[*transmission]struct{}
	collisions int
}

// NewMedium creates the channel and one transceiver per node.
func NewMedium(eng *Engine, net *topology.Network, prof radio.Radio) *Medium {
	m := &Medium{
		eng:      eng,
		net:      net,
		xcvrs:    make([]*Transceiver, net.N()),
		carriers: make([]int, net.N()),
		inflight: make(map[*transmission]struct{}),
	}
	for i := range m.xcvrs {
		m.xcvrs[i] = &Transceiver{
			id:    topology.NodeID(i),
			med:   m,
			prof:  prof,
			state: radio.Sleep,
		}
	}
	return m
}

// Transceiver returns node id's radio.
func (m *Medium) Transceiver(id topology.NodeID) *Transceiver { return m.xcvrs[id] }

// Collisions returns the number of corrupted receptions so far.
func (m *Medium) Collisions() int { return m.collisions }

// startTx propagates a new transmission to every neighbour of the sender.
func (m *Medium) startTx(from topology.NodeID, f *Frame, airtime float64) {
	tx := &transmission{frame: f, from: from}
	m.inflight[tx] = struct{}{}
	for _, nb := range m.net.Neighbors(from) {
		m.carriers[nb]++
		x := m.xcvrs[nb]
		switch {
		case x.state == radio.Listen && x.lock == nil:
			// Clean channel at a listening node: lock onto the frame.
			x.lock = tx
			x.lockBad = false
			x.setState(radio.Rx)
		case x.state == radio.Rx && x.lock != nil:
			// Overlap corrupts whatever was being received.
			x.lockBad = true
			m.collisions++
		}
		// Sleeping or transmitting nodes miss the frame entirely.
	}
	m.eng.After(airtime, func() { m.endTx(tx) })
}

// endTx removes the transmission and delivers it where reception
// survived.
func (m *Medium) endTx(tx *transmission) {
	delete(m.inflight, tx)
	for _, nb := range m.net.Neighbors(tx.from) {
		m.carriers[nb]--
		x := m.xcvrs[nb]
		if x.lock != tx {
			continue
		}
		ok := !x.lockBad
		x.lock = nil
		x.lockBad = false
		x.setState(radio.Listen)
		if ok && x.handler != nil {
			x.handler.OnFrame(tx.frame)
		}
	}
}

// busy reports whether the channel is effectively occupied at the node:
// a transmission is audible, or a neighbour has committed to transmit
// (radio ramping up during the inter-frame spacing). Including committed
// transmitters models a CCA that detects the transmitter's ramp-up and
// closes the blind window the spacing would otherwise open.
func (m *Medium) busy(id topology.NodeID) bool {
	if m.carriers[id] > 0 {
		return true
	}
	for _, nb := range m.net.Neighbors(id) {
		if m.xcvrs[nb].state == radio.Tx {
			return true
		}
	}
	return false
}

// Transceiver is one node's radio: a state machine over
// sleep/listen/rx/tx that meters the time spent in every state. MAC
// implementations drive it and receive upcalls through their
// FrameHandler.
type Transceiver struct {
	id      topology.NodeID
	med     *Medium
	prof    radio.Radio
	handler FrameHandler

	state   radio.State
	since   Time
	acc     [5]float64 // seconds per radio.State (1-indexed)
	lock    *transmission
	lockBad bool
	sending *Frame
}

// SetHandler installs the MAC upcall target; must be called before the
// simulation starts.
func (x *Transceiver) SetHandler(h FrameHandler) { x.handler = h }

// ID returns the node this radio belongs to.
func (x *Transceiver) ID() topology.NodeID { return x.id }

// State returns the current radio state.
func (x *Transceiver) State() radio.State { return x.state }

// setState accumulates elapsed time and switches state.
func (x *Transceiver) setState(s radio.State) {
	now := x.med.eng.Now()
	x.acc[x.state] += now - x.since
	x.since = now
	x.state = s
}

// Sleep powers the radio down, aborting any reception in progress. It
// is a no-op while transmitting: the frame finishes first and the MAC
// decides again in OnTxDone.
func (x *Transceiver) Sleep() {
	if x.state == radio.Tx {
		return
	}
	x.lock = nil
	x.lockBad = false
	x.setState(radio.Sleep)
}

// Listen turns the receiver on (idle listening). If a neighbour started
// transmitting earlier the node cannot decode the partial frame — it
// senses a busy channel and locks onto the next one — with one
// exception: a wakeup preamble (FramePreamble) is detectable mid-flight,
// which is the mechanism low-power listening relies on. No-op while
// receiving or transmitting.
func (x *Transceiver) Listen() {
	if x.state == radio.Listen || x.state == radio.Rx || x.state == radio.Tx {
		return
	}
	x.setState(radio.Listen)
	x.med.midLock(x)
}

// midLock locks a freshly listening node onto an audible in-flight
// preamble, unless several carriers overlap (then nothing is decodable).
func (m *Medium) midLock(x *Transceiver) {
	if m.carriers[x.id] != 1 {
		return
	}
	for tx := range m.inflight {
		if tx.frame.Kind != FramePreamble {
			continue
		}
		for _, nb := range m.net.Neighbors(tx.from) {
			if nb == x.id {
				x.lock = tx
				x.lockBad = false
				x.setState(radio.Rx)
				return
			}
		}
	}
}

// CarrierBusy reports whether the channel is busy at this node. The MAC
// uses it for CCA; it works in any radio state.
func (x *Transceiver) CarrierBusy() bool { return x.med.busy(x.id) }

// interFrameSpacing is the radio ramp-up between a Send call and the
// first bit on the air (one byte time at 250 kbit/s). Besides being
// physically real, it guarantees that a transmission triggered by a
// frame's end never starts at the same instant: all end-of-frame
// bookkeeping (peers returning to listen, carrier counts) settles first,
// which keeps back-to-back handshakes (strobe→ack→data→ack) race-free.
const interFrameSpacing = 32e-6

// Send puts a frame on the air after interFrameSpacing. Any reception in
// progress is aborted (the MAC should avoid that via CCA). OnTxDone
// fires when the airtime elapses; the radio then returns to Listen.
func (x *Transceiver) Send(f *Frame) {
	x.lock = nil
	x.lockBad = false
	x.setState(radio.Tx)
	x.sending = f
	airtime := x.prof.FrameAirtime(f.Bytes)
	x.med.eng.After(interFrameSpacing, func() {
		x.med.startTx(x.id, f, airtime)
	})
	x.med.eng.After(interFrameSpacing+airtime, func() {
		x.sending = nil
		x.setState(radio.Listen)
		if x.handler != nil {
			x.handler.OnTxDone(f)
		}
	})
}

// Airtime returns the on-air duration of a frame of the given MAC size.
func (x *Transceiver) Airtime(bytes int) float64 { return x.prof.FrameAirtime(bytes) }

// finish closes the energy accounting at the current time.
func (x *Transceiver) finish() { x.setState(x.state) }

// TimeIn returns the seconds spent in state s so far.
func (x *Transceiver) TimeIn(s radio.State) float64 { return x.acc[s] }

// Energy returns the joules consumed so far: Σ time(state) × power.
func (x *Transceiver) Energy() float64 {
	total := 0.0
	for _, s := range []radio.State{radio.Sleep, radio.Listen, radio.Rx, radio.Tx} {
		total += x.acc[s] * x.prof.Power(s)
	}
	return total
}
