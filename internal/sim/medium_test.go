package sim

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// recorder is a FrameHandler that logs deliveries.
type recorder struct {
	frames []*Frame
	done   []*Frame
}

func (r *recorder) OnFrame(f *Frame)  { r.frames = append(r.frames, f) }
func (r *recorder) OnTxDone(f *Frame) { r.done = append(r.done, f) }

func lineMedium(t *testing.T, n int) (*Engine, *Medium, *topology.Network) {
	t.Helper()
	net, err := topology.Line(n, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	eng := NewEngine()
	return eng, NewMedium(eng, net, radio.CC2420()), net
}

func TestMediumDeliversToListeningNeighbor(t *testing.T) {
	eng, med, _ := lineMedium(t, 2)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Listen()
	med.Transceiver(0).Listen()
	f := &Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43}
	eng.At(0, func() { med.Transceiver(0).Send(f) })
	eng.Run(1)
	if len(rx.frames) != 1 || rx.frames[0] != f {
		t.Fatalf("receiver got %v frames", len(rx.frames))
	}
}

func TestMediumSleepingNodeMissesFrame(t *testing.T) {
	eng, med, _ := lineMedium(t, 2)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Sleep()
	eng.At(0, func() {
		med.Transceiver(0).Listen()
		med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
	})
	eng.Run(1)
	if len(rx.frames) != 0 {
		t.Error("sleeping node received a frame")
	}
}

func TestMediumOutOfRangeNodeMissesFrame(t *testing.T) {
	eng, med, _ := lineMedium(t, 3)
	rx := &recorder{}
	// Node 2 is two hops from node 0 (spacing 0.8, range 1.0).
	med.Transceiver(2).SetHandler(rx)
	med.Transceiver(2).Listen()
	eng.At(0, func() {
		med.Transceiver(0).Listen()
		med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 2, Bytes: 43})
	})
	eng.Run(1)
	if len(rx.frames) != 0 {
		t.Error("out-of-range node received a frame")
	}
}

func TestMediumCollisionCorruptsFrame(t *testing.T) {
	// Line 0-1-2: node 1 hears both ends; simultaneous sends collide.
	eng, med, _ := lineMedium(t, 3)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Listen()
	eng.At(0, func() {
		med.Transceiver(0).Listen()
		med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
	})
	eng.At(0.0001, func() {
		med.Transceiver(2).Listen()
		med.Transceiver(2).Send(&Frame{Kind: FrameData, Src: 2, Dst: 1, Bytes: 43})
	})
	eng.Run(1)
	if len(rx.frames) != 0 {
		t.Error("collided frame was delivered")
	}
	if med.Collisions() == 0 {
		t.Error("collision not counted")
	}
}

func TestMediumLateListenerMissesMidFrame(t *testing.T) {
	// A node waking mid-frame cannot decode it (it missed the preamble).
	eng, med, _ := lineMedium(t, 2)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Sleep()
	eng.At(0, func() {
		med.Transceiver(0).Listen()
		med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
	})
	eng.At(0.0005, func() { med.Transceiver(1).Listen() })
	eng.Run(1)
	if len(rx.frames) != 0 {
		t.Error("mid-frame waker decoded the frame")
	}
	// But it does sense the carrier while the frame is in the air.
	eng2, med2, _ := lineMedium(t, 2)
	busyDuringFrame := false
	eng2.At(0, func() {
		med2.Transceiver(0).Listen()
		med2.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
	})
	eng2.At(0.0005, func() { busyDuringFrame = med2.Transceiver(1).CarrierBusy() })
	eng2.Run(1)
	if !busyDuringFrame {
		t.Error("carrier sense missed an in-flight frame")
	}
}

func TestTransceiverEnergyAccounting(t *testing.T) {
	eng, med, _ := lineMedium(t, 2)
	x := med.Transceiver(0)
	prof := radio.CC2420()
	eng.At(0, x.Listen)
	eng.At(2, func() { x.Sleep() })
	eng.Run(10)
	x.finish()
	// 2 s listening + 8 s sleeping.
	wantListen := 2 * prof.PowerListen
	wantSleep := 8 * prof.PowerSleep
	if got := x.Energy(); math.Abs(got-(wantListen+wantSleep)) > 1e-12 {
		t.Errorf("Energy = %v, want %v", got, wantListen+wantSleep)
	}
	if got := x.TimeIn(radio.Listen); math.Abs(got-2) > 1e-12 {
		t.Errorf("TimeIn(listen) = %v, want 2", got)
	}
	if got := x.TimeIn(radio.Sleep); math.Abs(got-8) > 1e-12 {
		t.Errorf("TimeIn(sleep) = %v, want 8", got)
	}
}

func TestTransceiverStateTimesSumToDuration(t *testing.T) {
	eng, med, _ := lineMedium(t, 3)
	// Random-ish activity.
	for i := 0; i < 3; i++ {
		x := med.Transceiver(topology.NodeID(i))
		eng.At(float64(i)*0.1, x.Listen)
		eng.At(0.5+float64(i)*0.2, func() { x.Sleep() })
	}
	eng.At(0.3, func() {
		med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
	})
	eng.Run(3)
	for i := 0; i < 3; i++ {
		x := med.Transceiver(topology.NodeID(i))
		x.finish()
		total := x.TimeIn(radio.Sleep) + x.TimeIn(radio.Listen) + x.TimeIn(radio.Rx) + x.TimeIn(radio.Tx)
		if math.Abs(total-3) > 1e-9 {
			t.Errorf("node %d: state times sum to %v, want 3", i, total)
		}
	}
}

func TestSleepDuringTxDeferred(t *testing.T) {
	eng, med, _ := lineMedium(t, 2)
	x := med.Transceiver(0)
	eng.At(0, func() {
		x.Listen()
		x.Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
		x.Sleep() // must not interrupt the transmission
	})
	eng.Run(1)
	x.finish()
	wantAir := radio.CC2420().FrameAirtime(43) + interFrameSpacing
	if got := x.TimeIn(radio.Tx); math.Abs(got-wantAir) > 1e-9 {
		t.Errorf("TimeIn(tx) = %v, want spacing+airtime %v", got, wantAir)
	}
}
