package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/edmac-project/edmac/internal/channel"
	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/topology"
)

// FailureEvent is one scheduled node crash. A crashed node powers off:
// its radio goes silent, its forwarding queue is lost (the packets are
// counted as stranded), and every handshake it was part of dissolves at
// the instant of the crash.
type FailureEvent struct {
	// Node is the crashing node; the sink (node 0) cannot crash.
	Node topology.NodeID
	// At is the crash instant in seconds.
	At float64
	// Duration is how long the node stays down; 0 means it never
	// recovers. A recovering node reboots fresh — empty queue, new MAC
	// state — but keeps its energy history (batteries do not recharge).
	Duration float64
}

// FailureConfig declares a run's failure process. With Events set the
// schedule is explicit; otherwise MTBF/MTTR select the churn model:
// every non-sink node alternates exponentially distributed up and down
// times drawn from a deterministic per-node splitmix stream (the same
// stream construction as the per-link loss draws), so equal seeds
// reproduce the exact same churn.
type FailureConfig struct {
	// Events is an explicit crash schedule; when non-empty it overrides
	// the churn model.
	Events []FailureEvent
	// MTBF is the mean up time in seconds (churn model).
	MTBF float64
	// MTTR is the mean down time in seconds; 0 makes every churn crash
	// permanent.
	MTTR float64
}

// BatteryConfig gives every non-sink node a finite energy store. A node
// whose cumulative consumption reaches Capacity dies at the exact
// depletion instant (computed per radio-state change, not sampled) and
// never recovers. The sink is mains-powered and exempt.
type BatteryConfig struct {
	// Capacity is the per-node energy budget in joules.
	Capacity float64
}

// faulty reports whether the configuration injects failures.
func (c Config) faulty() bool { return c.Failures != nil || c.Battery != nil }

// validateFaults checks the failure and battery blocks (nil-safe).
func (c Config) validateFaults() error {
	if f := c.Failures; f != nil {
		if len(f.Events) > 0 {
			n := c.Network.N()
			for i, ev := range f.Events {
				if ev.Node <= 0 || int(ev.Node) >= n {
					return fmt.Errorf("sim: failure event %d: node %d out of range (sink cannot crash)", i, ev.Node)
				}
				if ev.At < 0 || math.IsNaN(ev.At) || math.IsInf(ev.At, 0) {
					return fmt.Errorf("sim: failure event %d: crash time %v must be non-negative and finite", i, ev.At)
				}
				if ev.Duration < 0 || math.IsNaN(ev.Duration) || math.IsInf(ev.Duration, 0) {
					return fmt.Errorf("sim: failure event %d: duration %v must be non-negative and finite", i, ev.Duration)
				}
			}
		} else {
			if f.MTBF <= 0 || math.IsNaN(f.MTBF) || math.IsInf(f.MTBF, 0) {
				return fmt.Errorf("sim: churn MTBF %v must be positive and finite", f.MTBF)
			}
			if f.MTTR < 0 || math.IsNaN(f.MTTR) || math.IsInf(f.MTTR, 0) {
				return fmt.Errorf("sim: churn MTTR %v must be non-negative and finite", f.MTTR)
			}
		}
	}
	if b := c.Battery; b != nil {
		if b.Capacity <= 0 || math.IsNaN(b.Capacity) || math.IsInf(b.Capacity, 0) {
			return fmt.Errorf("sim: battery capacity %v must be positive and finite", b.Capacity)
		}
	}
	return nil
}

// Rebargainer is the degradation-aware re-bargaining hook: at every
// topology-change epoch (a node death or recovery, or a phase start
// while nodes are down) the runner asks it for the parameter vector to
// deploy over the surviving topology. alive[i] reports node i's
// liveness and is read-only, valid only during the call; phase indexes
// the active PhaseConfig. An error (an infeasible re-bargain) degrades
// the epoch to the last successfully deployed vector instead of
// aborting the run — the relaxed-mode convention.
type Rebargainer func(alive []bool, phase int, at float64) (opt.Vector, error)

// faultStreamSalt decorrelates per-node failure streams from the
// per-link loss streams that share the splitmix construction.
const faultStreamSalt int64 = 0x5DEECE66D

// faultPoint is one materialized liveness transition.
type faultPoint struct {
	at      float64
	node    topology.NodeID
	recover bool
	fired   bool
}

// faultPoints materializes the failure schedule: explicit events
// verbatim, or per-node churn drawn from deterministic splitmix
// streams. Points are sorted by time (node, then kind, break ties) so
// the schedule is reproducible independent of map or draw order.
func faultPoints(f *FailureConfig, net *topology.Network, seed int64, duration float64) []faultPoint {
	if f == nil {
		return nil
	}
	var pts []faultPoint
	add := func(node topology.NodeID, at, downFor float64) {
		if at >= duration {
			return
		}
		pts = append(pts, faultPoint{at: at, node: node})
		if downFor > 0 && at+downFor < duration {
			pts = append(pts, faultPoint{at: at + downFor, node: node, recover: true})
		}
	}
	if len(f.Events) > 0 {
		for _, ev := range f.Events {
			add(ev.Node, ev.At, ev.Duration)
		}
	} else {
		n := net.N()
		for i := 1; i < n; i++ {
			id := topology.NodeID(i)
			stream := channel.NewDrawStream(channel.DirectedLinkSeed(seed^faultStreamSalt, id, id))
			exp := func(mean float64) float64 { return -mean * math.Log(1-stream.Float64()) }
			t := 0.0
			for {
				t += exp(f.MTBF)
				if t >= duration {
					break
				}
				if f.MTTR <= 0 {
					add(id, t, 0)
					break
				}
				down := exp(f.MTTR)
				add(id, t, down)
				t += down
				if t >= duration {
					break
				}
			}
		}
	}
	sort.SliceStable(pts, func(a, b int) bool {
		pa, pb := pts[a], pts[b]
		if pa.at != pb.at {
			return pa.at < pb.at
		}
		if pa.node != pb.node {
			return pa.node < pb.node
		}
		return pa.recover && !pb.recover
	})
	return pts
}

// faultState is the runtime of a fault-injected run: liveness, the
// battery meters, the survivability integrals and the epoch-swap
// machinery. It hangs off the Medium so the transceiver state machine
// can notify it of radio-state changes (battery depletion instants are
// recomputed exactly at each transition); runs without failures never
// create one, so the failure-free hot path stays draw-free.
type faultState struct {
	cfg     *Config
	eng     *Engine
	med     *Medium
	metrics *Metrics
	nodes   []*node
	phases  []PhaseConfig
	reb     Rebargainer

	phaseIdx int
	params   opt.Vector
	good     opt.Vector // last successfully deployed vector

	alive       []bool
	batteryDead []bool
	deadCount   int
	points      []faultPoint

	arrivals [][]float64
	cursor   []int
	nextID   int64
	arena    *packetArena

	capacity   []float64 // per node, joules; 0 = mains-powered
	deathTimer []Timer
	nodeArg    []any // pre-boxed node ids for alloc-free AtCall
	deathCb    func(any)

	deaths      int
	recoveries  int
	stranded    int
	rebargains  int
	degraded    int
	deadSeconds float64
	partSeconds float64
	lastAccount float64
	partitioned bool
}

// RunFaulty executes a fault-injected simulation: the failure schedule
// and battery accounting of cfg drive node crashes, recoveries and
// battery deaths, each handled as a reconfiguration epoch through the
// same DropPending+quiesce machinery phased runs use at boundaries — so
// a dying node's in-flight transmissions, committed frames and pending
// timers are reclaimed with no pool leaks and no dangling callbacks.
//
// phases may be nil for a single-regime run (cfg.Params throughout);
// otherwise they follow the RunPhased contract. reb may be nil for a
// static run (the deployed vector never reacts to deaths); see
// Rebargainer for the adaptive convention. Determinism matches Run:
// equal (cfg, phases) reproduce the run exactly, including the churn.
func RunFaulty(cfg Config, phases []PhaseConfig, reb Rebargainer) (*Result, error) {
	return RunFaultyContext(context.Background(), cfg, phases, reb)
}

// RunFaultyContext is RunFaulty with the cooperative-cancellation
// contract of RunContext.
func RunFaultyContext(ctx context.Context, cfg Config, phases []PhaseConfig, reb Rebargainer) (*Result, error) {
	if len(phases) == 0 {
		phases = []PhaseConfig{{Params: cfg.Params, Until: cfg.Duration}}
	}
	prev := 0.0
	for i, ph := range phases {
		if ph.Until <= prev {
			return nil, fmt.Errorf("sim: phase %d ends at %v, not after %v", i, ph.Until, prev)
		}
		prev = ph.Until
		probe := cfg
		probe.Params = ph.Params
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("sim: phase %d: %w", i, err)
		}
	}
	if last := phases[len(phases)-1].Until; last != cfg.Duration {
		return nil, fmt.Errorf("sim: last phase ends at %v, want the run duration %v", last, cfg.Duration)
	}

	eng := NewEngineSched(cfg.Scheduler)
	med := newMediumFor(eng, cfg)
	metrics := &Metrics{}
	n := cfg.Network.N()
	nodes := buildNodes(cfg, eng, med, metrics)

	fs := &faultState{
		cfg:         &cfg,
		eng:         eng,
		med:         med,
		metrics:     metrics,
		nodes:       nodes,
		phases:      phases,
		reb:         reb,
		alive:       make([]bool, n),
		batteryDead: make([]bool, n),
		points:      faultPoints(cfg.Failures, cfg.Network, cfg.Seed, cfg.Duration),
		arrivals:    make([][]float64, n),
		cursor:      make([]int, n),
		arena:       &packetArena{},
	}
	for i := range fs.alive {
		fs.alive[i] = true
	}
	if pre := cfg.Shared.arrivalsFor(&cfg); pre != nil {
		// The shared world's schedules are exactly arrivalSchedule's
		// output for this (traffic, seed, duration); the fault runner
		// only reads them, so sharing is safe.
		fs.arrivals = pre
	} else {
		for i := 1; i < n; i++ {
			fs.arrivals[i] = arrivalSchedule(cfg, topology.NodeID(i))
		}
	}
	if cfg.Battery != nil {
		fs.capacity = make([]float64, n)
		fs.deathTimer = make([]Timer, n)
		fs.nodeArg = make([]any, n)
		for i := 1; i < n; i++ {
			fs.capacity[i] = cfg.Battery.Capacity
			fs.nodeArg[i] = topology.NodeID(i)
		}
		fs.deathCb = func(a any) { fs.batteryDeath(a.(topology.NodeID)) }
	}
	med.fault = fs

	for k := range phases {
		fs.phaseIdx = k
		fs.params = phases[k].Params
		// Degradation-aware phase entry: the planned vector was bargained
		// over the full topology; with nodes down, re-solve for the
		// survivors before deploying it.
		if fs.deadCount > 0 {
			fs.consultRebargain(eng.Now())
		}
		if err := fs.install(eng.Now()); err != nil {
			return nil, err
		}
		if err := eng.RunContext(ctx, phases[k].Until); err != nil {
			return nil, fmt.Errorf("sim: run aborted: %w", err)
		}
		if phases[k].Until < cfg.Duration {
			eng.DropPending()
			med.quiesce()
		}
	}
	fs.settle(cfg.Duration)
	med.fault = nil
	res := collectResult(cfg.Duration, eng, med, metrics, n)
	res.Deaths = fs.deaths
	res.Recoveries = fs.recoveries
	res.DeadAtEnd = fs.deadCount
	res.StrandedPackets = fs.stranded
	res.DeadNodeSeconds = fs.deadSeconds
	res.PartitionSeconds = fs.partSeconds
	res.Rebargains = fs.rebargains
	res.DegradedRebargains = fs.degraded
	return res, nil
}

// arrivalSchedule materializes one node's full arrival schedule. With a
// traffic model it is the model's own schedule; the legacy periodic
// generator is materialized with the same phase draw and the same
// accumulated-period arithmetic its chained callbacks would produce.
func arrivalSchedule(cfg Config, id topology.NodeID) []float64 {
	if cfg.Traffic != nil {
		return cfg.Traffic.Arrivals(cfg.Network, id, cfg.Seed, cfg.Duration)
	}
	if cfg.SampleRate <= 0 {
		return nil
	}
	period := 1 / cfg.SampleRate
	genRng := rand.New(rand.NewSource(cfg.Seed ^ (int64(id)*2654435761 + 7)))
	var times []float64
	for t := genRng.Float64() * period; t <= cfg.Duration; t += period {
		times = append(times, t)
	}
	return times
}

// settle closes the survivability integrals up to now.
func (fs *faultState) settle(now float64) {
	if dt := now - fs.lastAccount; dt > 0 {
		fs.deadSeconds += float64(fs.deadCount) * dt
		if fs.partitioned {
			fs.partSeconds += dt
		}
	}
	fs.lastAccount = now
}

// refreshPartition recomputes whether any alive node's tree path to the
// sink crosses a dead relay. Parents never re-route around a dead node
// — stranding at dead relays is exactly the phenomenon the partition
// clock measures.
func (fs *faultState) refreshPartition() {
	fs.partitioned = false
	for i := 1; i < len(fs.alive); i++ {
		if !fs.alive[i] {
			continue
		}
		for id := topology.NodeID(i); id != 0; {
			id = fs.cfg.Network.Parent(id)
			if id != 0 && !fs.alive[id] {
				fs.partitioned = true
				return
			}
		}
	}
}

// kill takes a node down at the current instant: its queue is counted
// as stranded and cleared, and the epoch swap reclaims everything it
// had in flight.
func (fs *faultState) kill(id topology.NodeID) {
	now := fs.eng.Now()
	fs.settle(now)
	fs.alive[id] = false
	fs.deadCount++
	fs.deaths++
	fs.stranded += fs.nodes[id].queueLen()
	fs.nodes[id].clearQueue()
	fs.epoch(now)
}

// revive brings a churn-crashed node back: fresh MAC state, empty
// queue, energy history intact (the battery did not recharge while the
// node was down — off time is simply not metered).
func (fs *faultState) revive(id topology.NodeID) {
	now := fs.eng.Now()
	fs.settle(now)
	fs.alive[id] = true
	fs.deadCount--
	fs.recoveries++
	fs.epoch(now)
}

// batteryDeath is the depletion callback: a permanent crash.
func (fs *faultState) batteryDeath(id topology.NodeID) {
	if !fs.alive[id] {
		// Already down (churn crash); deplete silently — the node must
		// simply never recover.
		fs.batteryDead[id] = true
		return
	}
	fs.batteryDead[id] = true
	fs.kill(id)
}

// firePoint executes one materialized liveness transition.
func (fs *faultState) firePoint(i int) {
	pt := &fs.points[i]
	pt.fired = true
	if pt.recover {
		if fs.batteryDead[pt.node] || fs.alive[pt.node] {
			return
		}
		fs.revive(pt.node)
	} else {
		if !fs.alive[pt.node] {
			return
		}
		fs.kill(pt.node)
	}
}

// epoch is the reconfiguration at a liveness change: the engine drops
// every pending event of the old regime, the medium quiesces (in-flight
// and committed transmissions reclaimed, carriers reset, radios settled
// — the same machinery phased runs trust at boundaries), dead radios
// are halted so their energy meters freeze, and a fresh regime is
// installed over the surviving topology.
func (fs *faultState) epoch(now float64) {
	fs.eng.DropPending()
	fs.med.quiesce()
	for i := range fs.med.halted {
		fs.med.halted[i] = !fs.alive[i]
	}
	fs.refreshPartition()
	fs.consultRebargain(now)
	if err := fs.install(now); err != nil {
		// Unreachable with validated phase vectors: install falls back to
		// the last-good vector, which deployed successfully before.
		panic(fmt.Sprintf("sim: fault epoch at t=%v: %v", now, err))
	}
}

// consultRebargain asks the hook for a survivor-aware vector; failures
// degrade to the currently deployed vector (counted, never fatal).
func (fs *faultState) consultRebargain(now float64) {
	if fs.reb == nil {
		return
	}
	fs.rebargains++
	v, err := fs.reb(fs.alive, fs.phaseIdx, now)
	if err == nil {
		probe := *fs.cfg
		probe.Params = v
		if probe.Validate() != nil {
			err = fmt.Errorf("sim: rebargained vector invalid")
		}
	}
	if err != nil {
		fs.degraded++
		return
	}
	fs.params = v
}

// install deploys the current parameter vector: MACs rebuilt for every
// node, handlers installed only on the living, arrival schedules
// re-spliced from each node's cursor, battery-death timers re-armed and
// unfired failure points rescheduled (the epoch's DropPending discarded
// all of them along with the old regime's events).
func (fs *faultState) install(now float64) error {
	macs, err := buildMACs(fs.cfg.Protocol, fs.params, fs.cfg.Network, fs.nodes, fs.cfg.Shared)
	if err != nil {
		if fs.good == nil {
			return err
		}
		// An infeasible rebargained vector (e.g. an LMAC slot count the
		// schedule cannot satisfy): degrade to the last-good vector.
		fs.degraded++
		fs.params = fs.good
		if macs, err = buildMACs(fs.cfg.Protocol, fs.params, fs.cfg.Network, fs.nodes, fs.cfg.Shared); err != nil {
			return err
		}
	}
	fs.good = fs.params
	for i, mac := range macs {
		x := fs.med.Transceiver(topology.NodeID(i))
		if fs.alive[i] {
			x.SetHandler(mac)
		} else {
			x.SetHandler(nil)
		}
	}
	end := fs.phases[fs.phaseIdx].Until
	for i, mac := range macs {
		if !fs.alive[i] {
			continue
		}
		mac.start()
		if i == 0 {
			continue
		}
		times := fs.arrivals[i]
		// Arrivals strictly before now were missed while the node was
		// down (or dissolved in the same-instant reconfiguration): the
		// node did not sample, so they are neither generated nor lost.
		for fs.cursor[i] < len(times) && times[fs.cursor[i]] < now {
			fs.cursor[i]++
		}
		lim := fs.cursor[i]
		for lim < len(times) && times[lim] <= end {
			lim++
		}
		if lim > fs.cursor[i] {
			fs.spliceArrivals(mac, topology.NodeID(i), lim)
		}
	}
	if fs.capacity != nil {
		for i := 1; i < len(fs.alive); i++ {
			if fs.alive[i] {
				fs.armDeathTimer(fs.med.xcvrs[i])
			}
		}
	}
	for i := range fs.points {
		if fs.points[i].fired {
			continue
		}
		i := i
		fs.eng.At(fs.points[i].at, func() { fs.firePoint(i) })
	}
	return nil
}

// spliceArrivals schedules arrivals[id][cursor:lim] as one chained
// callback with the same delta arithmetic as scheduleArrivals, while
// advancing the node's cursor so the next epoch resumes exactly where
// the dropped chain stopped.
func (fs *faultState) spliceArrivals(mac macLayer, id topology.NodeID, lim int) {
	times := fs.arrivals[id]
	var tick func()
	tick = func() {
		j := fs.cursor[id]
		fs.nextID++
		p := fs.arena.new()
		p.ID = fs.nextID
		p.Origin = id
		p.Created = fs.eng.Now()
		fs.metrics.recordGenerated()
		mac.sampled(p)
		fs.cursor[id] = j + 1
		if j+1 < lim {
			fs.eng.After(times[j+1]-times[j], tick)
		}
	}
	fs.eng.After(times[fs.cursor[id]]-fs.eng.Now(), tick)
}

// onState is the battery meter's radio-state hook: at every transition
// the depletion instant is recomputed exactly from the residual energy
// and the new state's draw, and the node's death timer re-armed. Called
// only on fault-injected runs (Medium.fault is nil otherwise).
func (fs *faultState) onState(x *Transceiver) {
	if fs.capacity == nil {
		return
	}
	id := x.id
	if fs.capacity[id] <= 0 || !fs.alive[id] {
		return
	}
	fs.armDeathTimer(x)
}

// armDeathTimer (re)schedules node x's battery death from its residual.
func (fs *faultState) armDeathTimer(x *Transceiver) {
	id := x.id
	fs.deathTimer[id].Cancel()
	residual := fs.capacity[id] - x.Energy()
	if residual <= 0 {
		fs.deathTimer[id] = fs.eng.AtCall(fs.eng.Now(), fs.deathCb, fs.nodeArg[id])
		return
	}
	draw := x.prof.Power(x.med.states[x.id])
	if draw <= 0 {
		return // this state is free; depletion postponed until the next transition
	}
	fs.deathTimer[id] = fs.eng.AtCall(fs.eng.Now()+residual/draw, fs.deathCb, fs.nodeArg[id])
}
