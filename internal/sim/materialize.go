package sim

import (
	"fmt"
	"math"
	"reflect"

	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// Materialized is the immutable shared world of a simulation config:
// everything a run derives from the topology, the channel stamping and
// the traffic model that does not depend on which rep is running. It is
// built once by Materialize and attached to Config.Shared, so repeated
// runs over the same scenario — the static/adaptive pair of a suite
// cell, the reps of a batch sweep, every epoch of a phased or faulty
// run — stop re-deriving neighbour tables, link-PRR/gain tables, LMAC
// slot schedules and per-node arrival schedules from scratch.
//
// Sharing contract: a Materialized is read-only after construction and
// safe for concurrent use by any number of runs. Consumers (Medium,
// the runners, the MAC builders) may retain and index its slices but
// must never write through them; nothing here aliases mutable run
// state. The structural tables (neighbours, parents, link PRR/gain,
// slot plans) apply to any config over the same *topology.Network;
// the arrival schedules additionally require the same traffic model,
// sample rate, seed and duration, and are ignored — each run falls
// back to deriving its own — when any of those differ. A stale or
// mismatched Shared therefore never changes results, only how much
// setup work a run re-does.
type Materialized struct {
	net        *topology.Network
	seed       int64
	duration   float64
	sampleRate float64
	traffic    traffic.Model

	// Structural tables, valid for any run over net.
	nbrs     [][]topology.NodeID
	parents  []topology.NodeID
	depth    int
	linkPRR  [][]float64 // nil on perfect channels
	linkGain [][]float64 // nil unless the network stamps link gains

	// LMAC two-hop slot plan for slotsFor frame slots (0 = no plan).
	// Adaptive runs that re-bargain onto a different slot count fall
	// back to a fresh AssignSlots for that epoch.
	slotsFor int
	slots    []int
	bySlot   map[int]topology.NodeID

	// arrivals[i] is node i's full precomputed arrival schedule for
	// (traffic, seed, duration) — the exact slices the runners would
	// derive themselves (index 0, the sink, is nil).
	arrivals [][]float64
}

// Materialize builds the shared world of cfg. The config must be
// runnable (it is validated first); the parameter vector only matters
// for LMAC, where it fixes the slot plan's frame size.
func Materialize(cfg Config) (*Materialized, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Network.N()
	m := &Materialized{
		net:        cfg.Network,
		seed:       cfg.Seed,
		duration:   cfg.Duration,
		sampleRate: cfg.SampleRate,
		traffic:    cfg.Traffic,
		nbrs:       make([][]topology.NodeID, n),
		parents:    make([]topology.NodeID, n),
		depth:      cfg.Network.Depth(),
		arrivals:   make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		m.nbrs[i] = cfg.Network.Neighbors(id)
		m.parents[i] = cfg.Network.Parent(id)
	}
	if cfg.Network.Lossy() {
		m.linkPRR = make([][]float64, n)
		m.linkGain = make([][]float64, n)
		for i, nbrs := range m.nbrs {
			from := topology.NodeID(i)
			m.linkPRR[i] = make([]float64, len(nbrs))
			m.linkGain[i] = make([]float64, len(nbrs))
			for k, nb := range nbrs {
				m.linkPRR[i][k] = cfg.Network.LinkPRR(from, nb)
				m.linkGain[i][k] = cfg.Network.LinkGainDB(from, nb)
			}
		}
	}
	for i := 1; i < n; i++ {
		m.arrivals[i] = arrivalSchedule(cfg, topology.NodeID(i))
	}
	if cfg.Protocol == "lmac" {
		frameSlots := int(math.Round(cfg.Params[0]))
		slots, _, err := cfg.Network.AssignSlots(frameSlots)
		if err != nil {
			return nil, fmt.Errorf("sim: lmac schedule: %w", err)
		}
		m.slotsFor = frameSlots
		m.slots = slots
		m.bySlot = make(map[int]topology.NodeID, n)
		for id, s := range slots {
			m.bySlot[s] = topology.NodeID(id)
		}
	}
	return m, nil
}

// structuralFor reports whether the structural tables apply to cfg:
// they only require the identical network object. Nil-receiver safe.
func (m *Materialized) structuralFor(cfg *Config) bool {
	return m != nil && m.net == cfg.Network
}

// arrivalsFor returns the precomputed arrival schedules when they are
// exactly the ones cfg's runners would derive — same network, seed,
// duration and workload — and nil otherwise. Nil-receiver safe.
func (m *Materialized) arrivalsFor(cfg *Config) [][]float64 {
	if m == nil || m.net != cfg.Network || m.seed != cfg.Seed ||
		m.duration != cfg.Duration || m.sampleRate != cfg.SampleRate ||
		!reflect.DeepEqual(m.traffic, cfg.Traffic) {
		return nil
	}
	return m.arrivals
}

// slotPlanFor returns the shared LMAC slot plan when it was built for
// cfg's network with exactly frameSlots slots, else (nil, nil).
func (m *Materialized) slotPlanFor(cfg *Config, frameSlots int) ([]int, map[int]topology.NodeID) {
	if !m.structuralFor(cfg) || m.slotsFor != frameSlots {
		return nil, nil
	}
	return m.slots, m.bySlot
}
