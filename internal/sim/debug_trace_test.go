package sim

import (
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

// TestDebugXMACTrace is a development aid: run with -run DebugXMAC -v to
// watch a single packet's handshake on a 1-hop network.
func TestDebugXMACTrace(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("trace only under -v")
	}
	cfg := lineConfig(t, "xmac", opt.Vector{0.25}, 1, 0.05, 60)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("generated=%d delivered=%d dropped=%d collisions=%d",
		res.Metrics.Generated(), res.Metrics.Delivered(), res.Metrics.Dropped(), res.Collisions)
}
