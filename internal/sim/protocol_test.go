package sim

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// lineConfig builds a small chain scenario with moderate traffic so runs
// accumulate statistics quickly.
func lineConfig(t *testing.T, protocol string, params opt.Vector, hops int, rate, duration float64) Config {
	t.Helper()
	net, err := topology.Line(hops, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	return Config{
		Protocol:   protocol,
		Network:    net,
		Radio:      radio.CC2420(),
		Params:     params,
		SampleRate: rate,
		Payload:    32,
		Duration:   duration,
		Seed:       42,
	}
}

func TestConfigValidate(t *testing.T) {
	good := lineConfig(t, "xmac", opt.Vector{0.2}, 3, 0.01, 100)
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := map[string]func(*Config){
		"unknown protocol": func(c *Config) { c.Protocol = "smac" },
		"wrong arity":      func(c *Config) { c.Params = opt.Vector{0.2, 0.3} },
		"nil network":      func(c *Config) { c.Network = nil },
		"bad radio":        func(c *Config) { c.Radio = radio.Radio{} },
		"negative param":   func(c *Config) { c.Params = opt.Vector{-1} },
		"zero duration":    func(c *Config) { c.Duration = 0 },
		"zero payload":     func(c *Config) { c.Payload = 0 },
	}
	for name, mutate := range cases {
		cfg := lineConfig(t, "xmac", opt.Vector{0.2}, 3, 0.01, 100)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestXMACDeliversOverMultipleHops(t *testing.T) {
	cfg := lineConfig(t, "xmac", opt.Vector{0.25}, 4, 0.02, 2000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics.Generated() < 100 {
		t.Fatalf("only %d packets generated", res.Metrics.Generated())
	}
	if ratio := res.Metrics.DeliveryRatio(); ratio < 0.95 {
		t.Errorf("delivery ratio %v below 0.95 (delivered %d/%d, dropped %d, collisions %d)",
			ratio, res.Metrics.Delivered(), res.Metrics.Generated(), res.Metrics.Dropped(), res.Collisions)
	}
	// Mean delay per hop should be near Tw/2 plus the handshake.
	perHop := res.Metrics.MeanDelay() / 4
	if perHop < 0.05 || perHop > 0.35 {
		t.Errorf("per-hop delay %v s implausible for Tw=0.25 (want roughly Tw/2)", perHop)
	}
}

func TestXMACIdleEnergyMatchesPollingCost(t *testing.T) {
	// No traffic: consumption must be dominated by the periodic poll.
	cfg := lineConfig(t, "xmac", opt.Vector{0.5}, 2, 0, 1000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	prof := radio.CC2420()
	// Expected poll duty: pollWindow/Tw with pollWindow ≈ strobe + gap +
	// 2 CCA ≈ 1.5 ms every 500 ms.
	perNode := res.Energy[1] / res.Duration
	ceiling := 0.01 * prof.PowerListen // duty must stay below 1%
	if perNode > ceiling {
		t.Errorf("idle power %v W exceeds %v W: polls too expensive", perNode, ceiling)
	}
	if perNode < prof.PowerSleep {
		t.Errorf("idle power %v W below sleep floor", perNode)
	}
}

func TestDMACWaveDelay(t *testing.T) {
	// T=1 s, µ=5 ms, 4 hops: delays must concentrate near T/2 + D·µ and
	// never exceed ~T + D·µ (a packet waits at most one frame).
	cfg := lineConfig(t, "dmac", opt.Vector{1.0, 0.005}, 4, 0.02, 2000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ratio := res.Metrics.DeliveryRatio(); ratio < 0.95 {
		t.Errorf("delivery ratio %v below 0.95 (dropped %d, collisions %d)",
			ratio, res.Metrics.Dropped(), res.Collisions)
	}
	mean := res.Metrics.MeanDelay()
	want := 0.5 + 4*0.005
	if mean < want*0.5 || mean > want*1.8 {
		t.Errorf("mean delay %v s, analytic wave prediction %v s", mean, want)
	}
	// A packet sampled just before its slot, or one losing a contention
	// round, waits an extra frame: two frames bound the worst case.
	if max := res.Metrics.MaxDelay(); max > 2*1.0+4*0.005+0.2 {
		t.Errorf("max delay %v s exceeds two frames plus the wave", max)
	}
}

func TestDMACScheduleIsolation(t *testing.T) {
	// With one sender per depth and staggered slots, collisions must be
	// rare on a chain.
	cfg := lineConfig(t, "dmac", opt.Vector{0.5, 0.005}, 4, 0.05, 1000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Collisions > res.Metrics.Generated()/10 {
		t.Errorf("%d collisions for %d packets on a staggered chain", res.Collisions, res.Metrics.Generated())
	}
}

func TestLMACDeliversCollisionFree(t *testing.T) {
	cfg := lineConfig(t, "lmac", opt.Vector{8, 0.01}, 4, 0.02, 2000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Collisions != 0 {
		t.Errorf("TDMA run suffered %d collisions", res.Collisions)
	}
	if ratio := res.Metrics.DeliveryRatio(); ratio < 0.99 {
		t.Errorf("delivery ratio %v below 0.99 (dropped %d)", ratio, res.Metrics.Dropped())
	}
	// Per-hop delay is bounded by one frame (80 ms).
	if mean := res.Metrics.MeanDelay(); mean > 4*0.08+0.08 {
		t.Errorf("mean delay %v s exceeds the frame bound", mean)
	}
}

func TestLMACScheduleRejectsTinyFrame(t *testing.T) {
	cfg := lineConfig(t, "lmac", opt.Vector{1, 0.01}, 4, 0.02, 100)
	if _, err := Run(cfg); err == nil {
		t.Error("1-slot frame accepted on a multi-node chain")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	for _, proto := range []string{"xmac", "dmac", "lmac"} {
		var params opt.Vector
		switch proto {
		case "xmac":
			params = opt.Vector{0.2}
		case "dmac":
			params = opt.Vector{0.5, 0.005}
		case "lmac":
			params = opt.Vector{8, 0.01}
		}
		a, err := Run(lineConfig(t, proto, params, 3, 0.05, 300))
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		b, err := Run(lineConfig(t, proto, params, 3, 0.05, 300))
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if a.Metrics.Delivered() != b.Metrics.Delivered() ||
			math.Abs(a.Metrics.MeanDelay()-b.Metrics.MeanDelay()) > 1e-12 ||
			a.Events != b.Events {
			t.Errorf("%s: same seed produced different runs", proto)
		}
		for i := range a.Energy {
			if math.Abs(a.Energy[i]-b.Energy[i]) > 1e-12 {
				t.Errorf("%s: node %d energy differs between same-seed runs", proto, i)
			}
		}
	}
}

func TestEnergyAccountingCoversWholeRun(t *testing.T) {
	cfg := lineConfig(t, "xmac", opt.Vector{0.2}, 3, 0.05, 500)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	prof := radio.CC2420()
	for i, e := range res.Energy {
		floor := cfg.Duration * prof.PowerSleep * 0.9
		ceil := cfg.Duration * prof.PowerRx * 1.1
		if e < floor || e > ceil {
			t.Errorf("node %d energy %v J outside physical envelope [%v, %v]", i, e, floor, ceil)
		}
	}
}

func TestDutyCycleDiagnostics(t *testing.T) {
	cfg := lineConfig(t, "xmac", opt.Vector{0.5}, 2, 0, 500)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range res.Energy {
		dc := res.DutyCycle(topology.NodeID(i))
		if dc <= 0 || dc > 0.05 {
			t.Errorf("node %d idle duty cycle %v outside (0, 5%%]", i, dc)
		}
	}
	// Duty cycle scales with the polling rate: halve the interval,
	// roughly double the duty cycle.
	fast, err := Run(lineConfig(t, "xmac", opt.Vector{0.25}, 2, 0, 500))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	slowDC := res.DutyCycle(1)
	fastDC := fast.DutyCycle(1)
	if fastDC < slowDC*1.5 {
		t.Errorf("duty cycle should grow with the poll rate: %v at Tw=0.5 vs %v at Tw=0.25", slowDC, fastDC)
	}
}

func TestMetricsQuantiles(t *testing.T) {
	m := &Metrics{}
	for _, d := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		m.recordDelivery(1, d)
	}
	if q := m.QuantileDelay(0.5); q != 5 {
		t.Errorf("median = %v, want 5", q)
	}
	if q := m.QuantileDelay(1.0); q != 10 {
		t.Errorf("p100 = %v, want 10", q)
	}
	empty := &Metrics{}
	if !math.IsNaN(empty.MeanDelay()) || !math.IsNaN(empty.QuantileDelay(0.5)) {
		t.Error("empty metrics should yield NaN delays")
	}
	if empty.DeliveryRatio() != 0 {
		t.Error("idle run should report delivery ratio 0 (the SimReport convention)")
	}
}
