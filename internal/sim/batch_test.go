package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/edmac-project/edmac/internal/channel"
	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// batchConfigs builds one runnable config per protocol plus seed
// variations — the matrix a batch must reproduce bit-identically. The
// matrix covers both channels: perfect links and a lossy shadowed
// network with capture, so the parallel-equals-sequential proof (run
// under -race in CI) extends to the per-link draw machinery.
func batchConfigs(t *testing.T) []Config {
	t.Helper()
	net, err := topology.Rings(topology.RingModel{Depth: 3, Density: 4})
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	lossyNet, err := topology.Rings(topology.RingModel{Depth: 3, Density: 4})
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	if err := channel.Apply(channel.Shadowing{}, lossyNet, 5); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	prof, err := radio.Profile("cc2420")
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	base := Config{
		Network:    net,
		Radio:      prof,
		SampleRate: 1.0 / 60,
		Payload:    32,
		Duration:   300,
	}
	params := map[string]opt.Vector{
		"xmac": {0.25},
		"bmac": {0.25},
		"dmac": {2.0, 0.05},
		"lmac": {15, 0.05},
	}
	var cfgs []Config
	for _, proto := range []string{"xmac", "bmac", "dmac", "lmac"} {
		for seed := int64(1); seed <= 3; seed++ {
			c := base
			c.Protocol = proto
			c.Params = params[proto]
			c.Seed = seed
			cfgs = append(cfgs, c)
			lossy := c
			lossy.Network = lossyNet
			lossy.Capture = true
			cfgs = append(cfgs, lossy)
		}
	}
	return cfgs
}

// RunBatch must produce results byte-identical to sequential Run calls
// for the same configs: every run owns its world, so concurrency must
// not leak into the measurements. Run under -race this doubles as the
// proof that the batch shares nothing mutable.
func TestRunBatchMatchesSequential(t *testing.T) {
	cfgs := batchConfigs(t)
	sequential := make([]*Result, len(cfgs))
	for i, c := range cfgs {
		res, err := Run(c)
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		sequential[i] = res
	}
	batch := RunBatch(context.Background(), cfgs, 4)
	if len(batch) != len(cfgs) {
		t.Fatalf("RunBatch returned %d results, want %d", len(batch), len(cfgs))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("batch run %d (%s seed %d): %v", i, cfgs[i].Protocol, cfgs[i].Seed, br.Err)
		}
		if !reflect.DeepEqual(sequential[i], br.Result) {
			t.Errorf("run %d (%s seed %d): batch result differs from sequential\nsequential %+v\nbatch      %+v",
				i, cfgs[i].Protocol, cfgs[i].Seed, sequential[i], br.Result)
		}
	}
}

// Equal seeds must agree even across distinct batches (regression guard
// for hidden state shared between runs, e.g. pools leaking through).
func TestRunBatchReproducible(t *testing.T) {
	cfgs := batchConfigs(t)
	a := RunBatch(context.Background(), cfgs, 3)
	b := RunBatch(context.Background(), cfgs, 5)
	for i := range cfgs {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("run %d: errs %v, %v", i, a[i].Err, b[i].Err)
		}
		if !reflect.DeepEqual(a[i].Result, b[i].Result) {
			t.Errorf("run %d (%s seed %d): two batches disagree", i, cfgs[i].Protocol, cfgs[i].Seed)
		}
	}
}

func TestRunBatchCancellation(t *testing.T) {
	// An already-cancelled context must run nothing: every outcome
	// carries the cancellation error and no simulation executes.
	cfgs := batchConfigs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := RunBatch(ctx, cfgs, 2)
	for i, br := range out {
		if !errors.Is(br.Err, context.Canceled) {
			t.Errorf("outcome %d: err = %v, want context.Canceled", i, br.Err)
		}
		if br.Result != nil {
			t.Errorf("outcome %d: simulation ran despite pre-cancelled context", i)
		}
	}
}

func TestRunBatchPropagatesConfigErrors(t *testing.T) {
	cfgs := batchConfigs(t)
	cfgs[1].Protocol = "nosuch"
	out := RunBatch(context.Background(), cfgs, 2)
	if out[1].Err == nil {
		t.Error("invalid config produced no error")
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Errorf("valid configs failed: %v, %v", out[0].Err, out[2].Err)
	}
}
