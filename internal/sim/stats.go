package sim

import (
	"math"
	"sort"

	"github.com/edmac-project/edmac/internal/topology"
)

// delaySample is one delivered packet's end-to-end delay, tagged with
// its origin so validation can compare specific rings against the
// analytic per-ring predictions.
type delaySample struct {
	origin topology.NodeID
	delay  float64
}

// Metrics aggregates application-level outcomes of a run.
type Metrics struct {
	generated  int
	delivered  int
	duplicates int
	dropped    int
	samples    []delaySample
}

// Generated returns the number of application packets sampled.
func (m *Metrics) Generated() int { return m.generated }

// Delivered returns the number of distinct packets that reached the
// sink; protocol-level duplicates are counted separately (Duplicates).
func (m *Metrics) Delivered() int { return m.delivered }

// Duplicates returns the number of redundant sink receptions: copies of
// already-delivered packets retransmitted after a lost ACK.
func (m *Metrics) Duplicates() int { return m.duplicates }

// Dropped returns the number of packets abandoned after retry exhaustion
// or queue overflow.
func (m *Metrics) Dropped() int { return m.dropped }

// DeliveryRatio returns delivered/generated, defined as 0 for an idle
// run — the one convention this layer and the public SimReport share,
// so the two can never disagree. Deliveries are deduplicated, so the
// ratio never exceeds 1.
func (m *Metrics) DeliveryRatio() float64 {
	if m.generated == 0 {
		return 0
	}
	return float64(m.delivered) / float64(m.generated)
}

// MeanDelay returns the mean end-to-end delay in seconds (NaN when
// nothing was delivered).
func (m *Metrics) MeanDelay() float64 {
	if len(m.samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, s := range m.samples {
		sum += s.delay
	}
	return sum / float64(len(m.samples))
}

// MeanDelayFrom returns the mean delay of packets whose origin satisfies
// the predicate, NaN when no such packet was delivered. Validation uses
// it to isolate the outermost ring, the analytic models' reference.
func (m *Metrics) MeanDelayFrom(origin func(topology.NodeID) bool) float64 {
	sum, n := 0.0, 0
	for _, s := range m.samples {
		if origin(s.origin) {
			sum += s.delay
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MaxDelay returns the largest observed end-to-end delay.
func (m *Metrics) MaxDelay() float64 {
	max := 0.0
	for _, s := range m.samples {
		if s.delay > max {
			max = s.delay
		}
	}
	return max
}

// QuantileDelay returns the q-quantile (0 < q <= 1) of observed delays,
// NaN when nothing was delivered.
func (m *Metrics) QuantileDelay(q float64) float64 {
	if len(m.samples) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(m.samples))
	for i, s := range m.samples {
		sorted[i] = s.delay
	}
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func (m *Metrics) recordGenerated() { m.generated++ }
func (m *Metrics) recordDuplicate() { m.duplicates++ }
func (m *Metrics) recordDropped()   { m.dropped++ }
func (m *Metrics) recordDelivery(origin topology.NodeID, delay Time) {
	m.delivered++
	m.samples = append(m.samples, delaySample{origin: origin, delay: delay})
}
