package sim

import (
	"context"
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/topology"
)

// PhaseConfig is one epoch of a phased run: the MAC parameter vector in
// force until the absolute instant Until.
type PhaseConfig struct {
	// Params is the protocol parameter vector (macmodel coordinates)
	// deployed for this epoch.
	Params opt.Vector
	// Until is the epoch's absolute end time in seconds; the last
	// phase's Until must equal the run duration.
	Until float64
}

// RunPhased executes a simulation whose MAC parameter vector changes at
// phase boundaries — the runtime half of adaptive re-bargaining: an
// adaptation controller re-plays the Nash bargain per traffic phase and
// this runner deploys each phase's vector in sequence.
//
// At every boundary the engine quiesces: pending events of the old
// regime are dropped, the channel is cleared (frames mid-air at the
// instant of the swap are lost, exactly as a real reconfiguration would
// lose them), and a fresh MAC layer with the next vector is installed
// over the same per-node state. Forwarding queues, per-node randomness
// streams, metrics and energy accounting all carry across the swap —
// no queued packet and no joule is dropped. cfg.Params is ignored;
// cfg.Traffic must be set (phased runs replay a precomputed schedule,
// typically a traffic.Phased model aligned with the same boundaries).
//
// A one-phase call reproduces Run bit for bit — same events, same
// instants, same metrics. Determinism matches Run: equal (cfg, phases)
// reproduce the run exactly.
func RunPhased(cfg Config, phases []PhaseConfig) (*Result, error) {
	return RunPhasedContext(context.Background(), cfg, phases)
}

// RunPhasedContext is RunPhased with the cooperative-cancellation
// contract of RunContext: a done ctx aborts the current epoch's event
// loop and returns the context's error; an uncancellable ctx is never
// polled and reproduces RunPhased exactly.
func RunPhasedContext(ctx context.Context, cfg Config, phases []PhaseConfig) (*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("sim: phased run needs at least one phase")
	}
	if cfg.faulty() {
		return RunFaultyContext(ctx, cfg, phases, nil)
	}
	if cfg.Traffic == nil {
		return nil, fmt.Errorf("sim: phased run needs a traffic model")
	}
	prev := 0.0
	for i, ph := range phases {
		if ph.Until <= prev {
			return nil, fmt.Errorf("sim: phase %d ends at %v, not after %v", i, ph.Until, prev)
		}
		prev = ph.Until
		// Per-phase parameter vectors obey the same arity and
		// positivity rules as a fixed run's.
		probe := cfg
		probe.Params = ph.Params
		if err := probe.Validate(); err != nil {
			return nil, fmt.Errorf("sim: phase %d: %w", i, err)
		}
	}
	if last := phases[len(phases)-1].Until; last != cfg.Duration {
		return nil, fmt.Errorf("sim: last phase ends at %v, want the run duration %v", last, cfg.Duration)
	}

	eng := NewEngineSched(cfg.Scheduler)
	med := newMediumFor(eng, cfg)
	metrics := &Metrics{}
	n := cfg.Network.N()
	nodes := buildNodes(cfg, eng, med, metrics)

	// The full arrival schedule of every node, deterministic in the
	// seed — shared from the attached world when it matches, derived
	// fresh otherwise; each epoch schedules only its own slice, so the
	// generator chain never crosses a boundary and the boundary drop
	// cannot eat a pending sample.
	arrivals := cfg.Shared.arrivalsFor(&cfg)
	if arrivals == nil {
		arrivals = make([][]float64, n)
		for i := 1; i < n; i++ {
			arrivals[i] = cfg.Traffic.Arrivals(cfg.Network, topology.NodeID(i), cfg.Seed, cfg.Duration)
		}
	}
	next := make([]int, n)

	var nextID int64
	arena := &packetArena{}
	for k, ph := range phases {
		macs, err := buildMACs(cfg.Protocol, ph.Params, cfg.Network, nodes, cfg.Shared)
		if err != nil {
			return nil, fmt.Errorf("sim: phase %d: %w", k, err)
		}
		for i, mac := range macs {
			med.Transceiver(topology.NodeID(i)).SetHandler(mac)
		}
		// Start each MAC and its epoch slice of the arrival schedule in
		// the same per-node interleaving (and the same delta arithmetic)
		// as Run, so a one-phase call reproduces Run event for event.
		// Arrivals in (prev boundary, Until] belong to this epoch; an
		// arrival exactly on the boundary still fires under the old
		// regime (Engine.Run processes events at the horizon), and its
		// packet rides the queue into the next one.
		for i, mac := range macs {
			mac.start()
			if i == 0 {
				continue
			}
			j := next[i]
			times := arrivals[i]
			for next[i] < len(times) && times[next[i]] <= ph.Until {
				next[i]++
			}
			if next[i] > j {
				scheduleArrivals(eng, times[j:next[i]], mac, topology.NodeID(i), metrics, &nextID, arena)
			}
		}
		if err := eng.RunContext(ctx, ph.Until); err != nil {
			return nil, fmt.Errorf("sim: run aborted: %w", err)
		}
		if ph.Until < cfg.Duration {
			eng.DropPending()
			med.quiesce()
		}
	}
	return collectResult(cfg.Duration, eng, med, metrics, n), nil
}

// scheduleArrivals walks a slice of a node's precomputed schedule with
// a single chained callback: first event relative to now, then
// successive differences. It is the one generator both Run (whole
// schedule from time zero) and RunPhased (one epoch's slice from the
// boundary) use, which is what makes a one-phase run bit-identical to
// a fixed one.
func scheduleArrivals(eng *Engine, times []float64, mac macLayer,
	id topology.NodeID, metrics *Metrics, nextID *int64, arena *packetArena) {
	i := 0
	var tick func()
	tick = func() {
		*nextID++
		p := arena.new()
		p.ID = *nextID
		p.Origin = id
		p.Created = eng.Now()
		metrics.recordGenerated()
		mac.sampled(p)
		i++
		if i < len(times) {
			eng.After(times[i]-times[i-1], tick)
		}
	}
	eng.After(times[0]-eng.Now(), tick)
}
