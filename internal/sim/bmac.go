package sim

import (
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// bmacPhase is the protocol state of one B-MAC node.
type bmacPhase int

const (
	bIdle     bmacPhase = iota // asleep between polls
	bPolling                   // channel check in progress
	bWaitData                  // preamble heard; data follows
	bWaitAck                   // sender: data sent, awaiting the ACK
)

// bmacMaxRetries bounds per-packet transmission attempts.
const bmacMaxRetries = 5

// bmacNode is the packet-level B-MAC implementation: classic low-power
// listening with a full-length, address-free wakeup preamble spanning
// one check interval. Everyone in range of the preamble — not just the
// target — stays awake through the data frame, which is the overhearing
// cost X-MAC's strobes were invented to remove. Recurring callbacks are
// allocated once at construction.
type bmacNode struct {
	*node
	tw float64

	phase   bmacPhase
	busy    bool
	retries int

	preambleBytes int

	pollTimer Timer
	dataTimer Timer
	ackTimer  Timer

	pollWindow float64
	turn       float64

	ackDst topology.NodeID // destination of the pending ACK reply

	pollFn        func()
	pollExpiredFn func()
	dataExpiredFn func()
	ackExpiredFn  func()
	attemptSendFn func()
	maybeSendFn   func()
	sendAckFn     func()
}

func newBMACNode(n *node, tw float64) *bmacNode {
	m := &bmacNode{node: n, tw: tw, turn: n.x.prof.Turnaround}
	// The preamble must span a full check interval on the air.
	bytes := int(tw/n.x.prof.ByteTime()) - n.x.prof.PHYOverhead
	if bytes < 1 {
		bytes = 1
	}
	m.preambleBytes = bytes
	m.pollWindow = 2*n.x.prof.CCA + 2*interFrameSpacing
	m.pollFn = m.poll
	m.pollExpiredFn = m.pollExpired
	m.dataExpiredFn = m.dataExpired
	m.ackExpiredFn = m.ackExpired
	m.attemptSendFn = m.attemptSend
	m.maybeSendFn = m.maybeSend
	m.sendAckFn = func() {
		m.x.Send(m.newFrame(FrameAck, m.ackDst, m.ackBytes, nil))
	}
	return m
}

// start implements macLayer.
func (m *bmacNode) start() {
	m.x.Sleep()
	m.eng.After(m.rng.Float64()*m.tw, m.pollFn)
}

// sampled implements macLayer.
func (m *bmacNode) sampled(p *Packet) {
	m.push(p)
	if !m.busy {
		m.attemptSend()
	}
}

func (m *bmacNode) poll() {
	m.eng.After(m.tw, m.pollFn)
	if m.busy {
		return
	}
	m.x.Listen() // midLock may land us straight in Rx on a preamble
	m.phase = bPolling
	m.busy = true
	m.pollTimer = m.eng.After(m.pollWindow, m.pollExpiredFn)
}

func (m *bmacNode) pollExpired() {
	if m.phase != bPolling {
		return
	}
	if m.x.State() == radio.Rx || m.x.CarrierBusy() {
		// Preamble (or other frame) in flight: hold on until it resolves.
		m.pollTimer = m.eng.After(m.x.Airtime(m.dataBytes), m.pollExpiredFn)
		return
	}
	m.finish()
	m.maybeSend()
}

func (m *bmacNode) finish() {
	m.pollTimer.Cancel()
	m.dataTimer.Cancel()
	m.ackTimer.Cancel()
	m.phase = bIdle
	m.busy = false
	m.x.Sleep()
}

func (m *bmacNode) maybeSend() {
	if !m.busy && m.head() != nil {
		m.attemptSend()
	}
}

func (m *bmacNode) attemptSend() {
	if m.busy || m.head() == nil || m.isSink() {
		return
	}
	m.busy = true
	m.x.Listen()
	if m.x.CarrierBusy() {
		m.busy = false
		m.x.Sleep()
		m.eng.After(m.rng.Float64()*m.tw/2, m.attemptSendFn)
		return
	}
	m.phase = bWaitAck // set early; the preamble+data run back to back
	m.x.Send(m.newFrame(FramePreamble, Broadcast, m.preambleBytes, nil))
}

// dataExpired fires when no data frame followed a heard preamble (the
// exchange collided or the sender died mid-handshake).
func (m *bmacNode) dataExpired() {
	if m.phase != bWaitData {
		return
	}
	m.finish()
	m.maybeSend()
}

func (m *bmacNode) ackExpired() {
	if m.phase != bWaitAck {
		return
	}
	m.retries++
	if m.retries > bmacMaxRetries {
		m.pop()
		m.metrics.recordDropped()
		m.retries = 0
	}
	m.finish()
	m.eng.After(m.rng.Float64()*m.tw, m.maybeSendFn)
}

// OnTxDone implements FrameHandler.
func (m *bmacNode) OnTxDone(f *Frame) {
	switch f.Kind {
	case FramePreamble:
		m.x.Send(m.newFrame(FrameData, m.parent, m.dataBytes, m.head()))
	case FrameData:
		ackWait := m.turn + m.x.Airtime(m.ackBytes) + m.turn + 2*interFrameSpacing
		m.ackTimer = m.eng.After(ackWait, m.ackExpiredFn)
	case FrameAck:
		m.finish()
		m.maybeSend()
	}
}

// OnFrame implements FrameHandler.
func (m *bmacNode) OnFrame(f *Frame) {
	switch m.phase {
	case bPolling:
		if f.Kind == FramePreamble {
			// Address-free: every hearer must stay for the data.
			m.pollTimer.Cancel()
			m.phase = bWaitData
			wait := interFrameSpacing + m.x.Airtime(m.dataBytes) + 2*m.turn
			m.dataTimer = m.eng.After(wait, m.dataExpiredFn)
			return
		}
		// Any other frame mid-poll: not ours to handle.
		m.pollTimer.Cancel()
		m.finish()
	case bWaitData:
		if f.Kind != FrameData {
			return
		}
		m.dataTimer.Cancel()
		if f.Dst == m.id {
			m.ackDst = f.Src
			m.eng.After(m.turn, m.sendAckFn)
			m.accept(f.Packet)
			return
		}
		// Overheard someone else's data — the cost of address-free
		// preambles, paid in full before sleeping again.
		m.finish()
		m.maybeSend()
	case bWaitAck:
		if f.Kind == FrameAck && f.Dst == m.id {
			m.ackTimer.Cancel()
			m.pop()
			m.retries = 0
			m.finish()
			m.maybeSend()
		}
	}
}

var _ macLayer = (*bmacNode)(nil)
