package sim

import (
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

func trafficConfig(t *testing.T, m traffic.Model) Config {
	t.Helper()
	net, err := topology.Line(6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Protocol: "xmac",
		Network:  net,
		Radio:    radio.CC2420(),
		Params:   opt.Vector{0.2},
		Traffic:  m,
		Payload:  32,
		Duration: 900,
		Seed:     4,
	}
}

// TestTrafficModelRun asserts a traffic-model-driven run generates
// exactly the packets of the model's schedule and delivers most of them.
func TestTrafficModelRun(t *testing.T) {
	cfg := trafficConfig(t, traffic.Bursty{PeakRate: 0.5, OnMean: 20, OffMean: 60})
	want := 0
	for i := 1; i < cfg.Network.N(); i++ {
		want += len(cfg.Traffic.Arrivals(cfg.Network, topology.NodeID(i), cfg.Seed, cfg.Duration))
	}
	if want == 0 {
		t.Fatal("schedule empty; pick a busier model")
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Generated() != want {
		t.Errorf("generated %d packets, schedule has %d", res.Metrics.Generated(), want)
	}
	if ratio := res.Metrics.DeliveryRatio(); ratio < 0.5 {
		t.Errorf("delivery ratio %v suspiciously low", ratio)
	}
}

// TestTrafficModelDeterminism asserts byte-level reproducibility of
// traffic-model runs: equal seeds yield identical results, different
// seeds do not.
func TestTrafficModelDeterminism(t *testing.T) {
	cfg := trafficConfig(t, traffic.Event{EventRate: 0.02, EventRadius: 2, BackgroundRate: 0.01})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Generated() != b.Metrics.Generated() || a.Metrics.Delivered() != b.Metrics.Delivered() ||
		a.Collisions != b.Collisions || a.Events != b.Events {
		t.Errorf("equal seeds diverged: %+v vs %+v", a.Metrics, b.Metrics)
	}
	for i := range a.Energy {
		if a.Energy[i] != b.Energy[i] {
			t.Errorf("node %d energy %v vs %v", i, a.Energy[i], b.Energy[i])
		}
	}
	cfg.Seed = 5
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics.Generated() == a.Metrics.Generated() && c.Events == a.Events {
		t.Error("different seeds produced an identical run")
	}
}

// TestTrafficValidate asserts Config.Validate rejects unusable traffic
// models.
func TestTrafficValidate(t *testing.T) {
	cfg := trafficConfig(t, traffic.Periodic{Rate: -1})
	if err := cfg.Validate(); err == nil {
		t.Error("invalid traffic model accepted")
	}
}
