package sim

import (
	"reflect"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/traffic"
)

// TestMaterializedEquivalence holds runs with an attached shared world
// to the exact results of self-deriving runs, across every runner and
// channel family the sharing touches: structural tables (neighbours,
// parents, link PRR/gain), LMAC slot plans and precomputed arrival
// schedules must be invisible to the simulation.
func TestMaterializedEquivalence(t *testing.T) {
	lossy := lossyLine(t, 4, 0.8)
	cases := []struct {
		name   string
		cfg    Config
		phases []PhaseConfig
	}{
		{"xmac periodic lossy capture", Config{
			Protocol: "xmac", Network: lossy, Radio: radio.CC2420(),
			Params: opt.Vector{0.2}, SampleRate: 0.05, Payload: 32,
			Duration: 120, Seed: 11, Capture: true,
		}, nil},
		{"lmac traffic", Config{
			Protocol: "lmac", Network: phasedSimNetwork(t), Radio: radio.CC2420(),
			Params: opt.Vector{8, 0.05}, Traffic: traffic.Periodic{Rate: 0.05},
			Payload: 32, Duration: 120, Seed: 5,
		}, nil},
		{"xmac phased", Config{
			Protocol: "xmac", Network: phasedSimNetwork(t), Radio: radio.CC2420(),
			Params:  opt.Vector{0.3}, // ignored by RunPhased, validated by Materialize
			Traffic: traffic.Periodic{Rate: 0.05}, Payload: 32,
			Duration: 120, Seed: 3,
		}, []PhaseConfig{
			{Params: opt.Vector{0.3}, Until: 60},
			{Params: opt.Vector{0.15}, Until: 120},
		}},
		{"xmac faulty battery", Config{
			Protocol: "xmac", Network: phasedSimNetwork(t), Radio: radio.CC2420(),
			Params: opt.Vector{0.2}, SampleRate: 0.05, Payload: 32,
			Duration: 200, Seed: 7,
			Failures: &FailureConfig{MTBF: 80, MTTR: 30},
			Battery:  &BatteryConfig{Capacity: 0.5},
		}, nil},
	}
	run := func(cfg Config, phases []PhaseConfig) *Result {
		t.Helper()
		var (
			res *Result
			err error
		)
		if phases != nil {
			res, err = RunPhased(cfg, phases)
		} else {
			res, err = Run(cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := run(tc.cfg, tc.phases)
			shared, err := Materialize(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.Shared = shared
			if got := run(cfg, tc.phases); !reflect.DeepEqual(base, got) {
				t.Errorf("shared world changed the run:\nbase %+v\ngot  %+v", base, got)
			}
			// A mismatched world (different seed) must be ignored, not
			// misapplied: the structural tables still hold, the arrival
			// schedules fall back to per-run derivation.
			stale := tc.cfg
			stale.Seed++
			if cfg.Shared, err = Materialize(stale); err != nil {
				t.Fatal(err)
			}
			if got := run(cfg, tc.phases); !reflect.DeepEqual(base, got) {
				t.Errorf("stale shared world changed the run")
			}
			// The heap scheduler must agree with the wheel end to end.
			cfg = tc.cfg
			cfg.Scheduler = SchedulerHeap
			got := run(cfg, tc.phases)
			// The schedulers' queue shapes legitimately differ; every
			// simulation outcome must not.
			base.PeakPending, got.PeakPending = 0, 0
			base.WheelPromotions, got.WheelPromotions = 0, 0
			if !reflect.DeepEqual(base, got) {
				t.Errorf("heap scheduler diverged from wheel")
			}
		})
	}
}
