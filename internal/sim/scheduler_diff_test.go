package sim

import (
	"fmt"
	"testing"
)

// splitmix64 is a tiny deterministic PRNG for driving the differential
// scheduler tests without math/rand (whose stream we must not disturb
// elsewhere in the package).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64n returns a float in [0, n).
func (s *splitmix64) float64n(n float64) float64 {
	return float64(s.next()>>11) / (1 << 53) * n
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// popRecord is one fired event in a differential run's log.
type popRecord struct {
	at Time
	id int
}

// diffHarness drives one engine through a scripted workload and logs the
// exact pop order. The workload is generated from the shared rng seed,
// so two harnesses with the same seed issue the identical schedule /
// cancel / re-arm script — any divergence in the pop log is a scheduler
// ordering bug.
type diffHarness struct {
	eng    *Engine
	rng    splitmix64
	log    []popRecord
	ids    []int // live timer ids, insertion-ordered (deterministic picks)
	timers map[int]Timer
	nextID int
}

func newDiffHarness(k SchedulerKind, seed uint64) *diffHarness {
	return &diffHarness{
		eng:    NewEngineSched(k),
		rng:    splitmix64(seed),
		timers: make(map[int]Timer),
	}
}

// takeLive removes and returns a deterministic live timer, or -1. Fired
// and cancelled ids linger in h.ids until drawn; the map is the truth.
func (h *diffHarness) takeLive() (int, Timer) {
	for len(h.ids) > 0 {
		k := h.rng.intn(len(h.ids))
		id := h.ids[k]
		h.ids[k] = h.ids[len(h.ids)-1]
		h.ids = h.ids[:len(h.ids)-1]
		if t, ok := h.timers[id]; ok {
			return id, t
		}
	}
	return -1, Timer{}
}

// arm schedules one event with a fresh id; inside its callback it may
// recursively schedule, cancel or re-arm others, which is exactly what
// MAC handlers do.
func (h *diffHarness) arm(at Time, depth int) {
	id := h.nextID
	h.nextID++
	h.ids = append(h.ids, id)
	h.timers[id] = h.eng.At(at, func() {
		h.log = append(h.log, popRecord{h.eng.Now(), id})
		delete(h.timers, id)
		h.react(depth)
	})
}

// react is the in-callback behaviour: a deterministic mix of near-term
// schedules (duty-cycle strobe trains), same-instant bursts (ACK
// turnarounds), far-future events (arrival schedules crossing the wheel
// horizon), cancels and re-arms.
func (h *diffHarness) react(depth int) {
	if depth <= 0 {
		return
	}
	now := h.eng.Now()
	switch h.rng.intn(6) {
	case 0: // strobe-train burst: several short-interval events
		n := 1 + h.rng.intn(3)
		for i := 0; i < n; i++ {
			h.arm(now+h.rng.float64n(5e-3), depth-1)
		}
	case 1: // same-instant pile-up: FIFO tie-break must hold
		at := now + h.rng.float64n(1e-3)
		for i := 0; i < 3; i++ {
			h.arm(at, depth-1)
		}
	case 2: // far-future event beyond the 1 s wheel horizon
		h.arm(now+1.0+h.rng.float64n(30), depth-1)
	case 3: // cancel a random live timer
		if id, tm := h.takeLive(); id >= 0 {
			tm.Cancel()
			delete(h.timers, id)
		}
	case 4: // re-arm: cancel one, schedule a replacement (fault timers)
		if id, tm := h.takeLive(); id >= 0 {
			tm.Cancel()
			delete(h.timers, id)
			h.arm(now+h.rng.float64n(2), depth-1)
		}
	case 5: // past-time schedule: must clamp to now, FIFO after peers
		h.arm(now-1, depth-1)
	}
}

// runScript seeds the harness with a near-periodic base load plus
// adversarial extras and executes it in segments (exercising run-to-
// horizon stops and DropPending, as phased and faulty runs do).
func (h *diffHarness) runScript(segments int) {
	for i := 0; i < 200; i++ { // near-periodic duty-cycle base load
		h.arm(h.rng.float64n(2)+float64(i%10)*0.1, 3)
	}
	for i := 0; i < 30; i++ { // beyond-horizon arrivals
		h.arm(1.0+h.rng.float64n(40), 2)
	}
	per := 50.0 / float64(segments)
	for s := 1; s <= segments; s++ {
		h.eng.Run(per * float64(s))
		if s == segments/2 {
			// Epoch boundary: drop everything pending, then refill —
			// exactly what phased runs and fault epochs do.
			h.eng.DropPending()
			clear(h.timers)
			h.ids = h.ids[:0]
			now := h.eng.Now()
			for i := 0; i < 100; i++ {
				h.arm(now+h.rng.float64n(20), 3)
			}
		}
	}
	h.eng.Run(1e9) // drain
}

// TestSchedulerDifferential holds the wheel to the heap's exact pop
// order over randomized near-periodic plus adversarial scripts. The two
// engines run the same deterministic script (same seed); their pop logs
// must match record for record.
func TestSchedulerDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			heap := newDiffHarness(SchedulerHeap, seed)
			wheel := newDiffHarness(SchedulerWheel, seed)
			heap.runScript(7)
			wheel.runScript(7)
			n := len(heap.log)
			if len(wheel.log) < n {
				n = len(wheel.log)
			}
			for i := 0; i < n; i++ {
				if heap.log[i] != wheel.log[i] {
					t.Fatalf("pop %d diverges: heap=%+v wheel=%+v", i, heap.log[i], wheel.log[i])
				}
			}
			if len(heap.log) != len(wheel.log) {
				t.Fatalf("pop counts diverge: heap=%d wheel=%d (prefix of %d matches)", len(heap.log), len(wheel.log), n)
			}
			if hq, wq := heap.eng.QueueLen(), wheel.eng.QueueLen(); hq != 0 || wq != 0 {
				t.Fatalf("queues not drained: heap=%d wheel=%d", hq, wq)
			}
		})
	}
}
