package sim

import (
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

func TestBMACDeliversOverMultipleHops(t *testing.T) {
	cfg := lineConfig(t, "bmac", opt.Vector{0.2}, 3, 0.01, 2000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Metrics.Generated() < 40 {
		t.Fatalf("only %d packets generated", res.Metrics.Generated())
	}
	if ratio := res.Metrics.DeliveryRatio(); ratio < 0.9 {
		t.Errorf("delivery ratio %v below 0.9 (dropped %d, collisions %d)",
			ratio, res.Metrics.Dropped(), res.Collisions)
	}
	// Each hop pays the full preamble: a 3-hop packet needs at least
	// 3×Tw end to end.
	farDelay := res.Metrics.MeanDelayFrom(func(id topology.NodeID) bool { return id == 3 })
	if perHop := farDelay / 3; perHop < 0.19 || perHop > 0.45 {
		t.Errorf("per-hop delay %v s implausible for a full 0.2 s preamble", perHop)
	}
}

func TestBMACMidPreambleCapture(t *testing.T) {
	// A receiver waking in the middle of a preamble must still catch it:
	// that is what distinguishes FramePreamble from ordinary frames.
	eng, med, _ := lineMedium(t, 2)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Sleep()
	eng.At(0, func() {
		med.Transceiver(0).Listen()
		med.Transceiver(0).Send(&Frame{Kind: FramePreamble, Src: 0, Dst: Broadcast, Bytes: 1000})
	})
	// 1000 bytes ≈ 32 ms on the air; wake at 10 ms.
	eng.At(0.010, func() { med.Transceiver(1).Listen() })
	eng.Run(1)
	if len(rx.frames) != 1 || rx.frames[0].Kind != FramePreamble {
		t.Fatalf("mid-preamble waker received %d frames, want the preamble", len(rx.frames))
	}
}

func TestBMACMidPreambleCaptureBlockedByCollision(t *testing.T) {
	// Two overlapping preambles: a waking node must not lock onto either.
	eng, med, _ := lineMedium(t, 3)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Sleep()
	eng.At(0, func() {
		med.Transceiver(0).Listen()
		med.Transceiver(0).Send(&Frame{Kind: FramePreamble, Src: 0, Dst: Broadcast, Bytes: 1000})
	})
	eng.At(0.001, func() {
		med.Transceiver(2).Listen()
		med.Transceiver(2).Send(&Frame{Kind: FramePreamble, Src: 2, Dst: Broadcast, Bytes: 1000})
	})
	eng.At(0.010, func() { med.Transceiver(1).Listen() })
	eng.Run(1)
	if len(rx.frames) != 0 {
		t.Error("node decoded a preamble through a collision")
	}
}

// TestBMACCostlierThanXMACSimulated confirms, at packet level, the
// per-packet penalty the analytic ablation predicts: under relay load a
// B-MAC sender pays a full-interval preamble per packet where X-MAC's
// strobe train terminates at the early ACK (half the interval on
// average). At near-idle traffic the ordering legitimately flips —
// B-MAC's bare-CCA poll is cheaper than X-MAC's strobe-period poll — so
// the comparison runs with enough traffic for transmissions to dominate.
func TestBMACCostlierThanXMACSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	energy := func(protocol string) float64 {
		cfg := lineConfig(t, protocol, opt.Vector{0.2}, 3, 0.1, 1000)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		return res.Energy[1] // first-hop relay
	}
	bmacE := energy("bmac")
	xmacE := energy("xmac")
	if bmacE <= xmacE {
		t.Errorf("bmac relay energy %v should exceed xmac's %v under relay load", bmacE, xmacE)
	}
}

func TestBMACPreambleSpansWakeup(t *testing.T) {
	prof := radio.CC2420()
	n := &node{x: &Transceiver{prof: prof}}
	m := newBMACNode(n, 0.5)
	air := prof.FrameAirtime(m.preambleBytes)
	if air < 0.5*0.99 || air > 0.5*1.01 {
		t.Errorf("preamble airtime %v, want ≈ 0.5 s", air)
	}
}
