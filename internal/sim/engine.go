// Package sim is a packet-level discrete-event simulator for duty-cycled
// wireless sensor networks. It provides the experimental substrate the
// original protocol models were validated against (testbeds and ns-2
// class simulators we do not have — see DESIGN.md §5): a virtual-time
// event engine, a unit-disk radio medium with collision handling, a
// per-node transceiver state machine with energy metering, and faithful
// packet-level implementations of X-MAC, DMAC and LMAC.
//
// The simulator measures what the analytic models of internal/macmodel
// predict; the cross-validation tests and the `edsim validate` command
// compare the two.
package sim

import "container/heap"

// Time is virtual simulation time in seconds. It is a float64 rather
// than time.Duration because it feeds the same closed-form arithmetic as
// the analytic models (it is compared against them directly).
type Time = float64

// event is one scheduled callback.
type event struct {
	at        Time
	seq       uint64 // tie-breaker: FIFO among equal timestamps
	fn        func()
	cancelled bool
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. MAC protocols cancel pending timeouts constantly (an ACK
// arriving cancels the retry timer, a frame ending cancels the poll
// extension, ...).
type Timer struct {
	ev *event
}

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event scheduler: a priority queue of callbacks
// over virtual time. It is single-threaded by design — determinism for a
// given seed is a correctness requirement of the validation tests.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	events uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// At schedules fn at absolute time t (clamped to now for past times) and
// returns a cancellable handle.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Run executes events in timestamp order until the queue empties or the
// next event lies beyond `until`; the clock then advances to `until`.
func (e *Engine) Run(until Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.events++
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}
