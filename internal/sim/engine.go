// Package sim is a packet-level discrete-event simulator for duty-cycled
// wireless sensor networks. It provides the experimental substrate the
// original protocol models were validated against (testbeds and ns-2
// class simulators we do not have — see DESIGN.md §5): a virtual-time
// event engine, a unit-disk radio medium with collision handling, a
// per-node transceiver state machine with energy metering, and faithful
// packet-level implementations of X-MAC, B-MAC, DMAC and LMAC.
//
// The simulator measures what the analytic models of internal/macmodel
// predict; the cross-validation tests and the `edsim validate` command
// compare the two.
//
// # Concurrency and determinism contract
//
// One Engine (and everything hanging off it: Medium, Transceivers, MAC
// nodes, Metrics) is single-threaded by design and must only be driven
// from one goroutine. Determinism is a correctness requirement: a run is
// a pure function of its Config, so equal seeds reproduce runs exactly,
// event for event. Independent runs share nothing mutable — Run builds a
// fresh Engine, Medium and RNG set per call, and topology.Network and
// radio.Radio are immutable after construction — so any number of runs
// may execute concurrently (see RunBatch), and a batch's results are
// bit-identical to executing the same configs sequentially.
package sim

import (
	"context"
	"math/bits"
)

// Time is virtual simulation time in seconds. It is a float64 rather
// than time.Duration because it feeds the same closed-form arithmetic as
// the analytic models (it is compared against them directly).
type Time = float64

// SchedulerKind selects the Engine's priority-queue implementation.
// Both implementations realize the exact same strict total order
// (at, seq) — earliest timestamp first, FIFO among equals — so they are
// interchangeable event for event; the differential property test in
// scheduler_diff_test.go holds them to that.
type SchedulerKind uint8

const (
	// SchedulerWheel is the default: a calendar-queue timing wheel with
	// amortized O(1) insert, pop and cancel. Duty-cycle workloads are
	// near-periodic with a tiny pending set, which is exactly the regime
	// calendar queues dominate comparison-based heaps in.
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap is the reference indexed 4-ary min-heap, kept as the
	// differential-testing oracle and as an escape hatch should a
	// workload ever degenerate the wheel (e.g. adversarial same-tick
	// pile-ups, where the wheel's bucket scan goes quadratic).
	SchedulerHeap
)

// event is one scheduled callback, stored in the engine's flat arena.
// Callbacks come in two forms: a plain closure fn, or the pair (do, arg)
// which lets hot paths reuse one long-lived func value with a per-event
// argument instead of allocating a fresh closure per schedule.
//
// The struct is exactly 64 bytes — one cache line — so the wheel's
// bucket-chain scans touch a single line per event.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	fn   func()
	do   func(any)
	arg  any
	gen  uint32 // bumped on slot reuse; stale Timers miss
	loc  int32  // heap position | wheel bucket | overflowLoc; noSlot when free
	next int32  // chain / free-list link, noSlot at the end
	prev int32  // wheel chain back-link (unused by heap and free-list)
}

const (
	noSlot      = -1
	overflowLoc = -2 // loc value of events parked beyond the wheel horizon
)

// Timing-wheel geometry. The tick is 1/4096 s ≈ 244 µs — comparable to
// the simulator's shortest recurring intervals (inter-frame spacing,
// strobe gaps, CCA windows), so consecutive protocol events land in the
// same or adjacent buckets and bucket chains stay 1-3 events long. With
// wheelSize buckets the horizon is exactly one second, which covers
// every duty-cycle timer the MACs arm (poll intervals are ≤ 1 s in all
// suite scenarios); only rare far-future events (arrival schedules,
// fault points) take the overflow path. Scaling by a power of two keeps
// tick = ⌊at·tickScale⌋ exact and monotone in `at`, which is what makes
// the wheel's pop order provably identical to the heap's.
const (
	wheelBits  = 12
	wheelSize  = 1 << wheelBits
	wheelMask  = wheelSize - 1
	tickScale  = float64(wheelSize) // ticks per second; horizon = 1 s
	wheelWords = wheelSize / 64
)

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. MAC protocols cancel pending timeouts constantly (an ACK
// arriving cancels the retry timer, a frame ending cancels the poll
// extension, ...). The zero Timer is valid and inert.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Cancel removes the event from the queue so it never fires and its
// slot is immediately reusable. Cancelling the zero Timer, a nil *Timer,
// or an already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.eng == nil {
		return
	}
	t.eng.cancel(t.slot, t.gen)
	t.eng = nil
}

// Engine is the discrete-event scheduler: a priority queue of callbacks
// over virtual time. Events live in a flat arena recycled through a
// free-list; ordering comes from a calendar-queue timing wheel (or the
// reference 4-ary heap, see SchedulerKind), so scheduling and cancelling
// are allocation-free in steady state and cancellation removes the event
// immediately instead of leaving a tombstone to be popped. The engine is
// single-goroutine; see the package comment for the concurrency
// contract.
type Engine struct {
	now       Time
	seq       uint64
	events    []event // arena; index = slot
	free      int32   // head of the free-slot list, noSlot when empty
	processed uint64
	pending   int // live events currently queued
	peak      int // high-water mark of pending

	sched SchedulerKind

	// Timing wheel (SchedulerWheel): heads[b]/tails[b] chain the events
	// of the single tick currently mapped to bucket b, kept sorted by
	// (at, seq) so the chain head is the bucket minimum; occ is the
	// occupancy bitmap. The wheel covers ticks [base, base+wheelSize);
	// events beyond the horizon wait on the overflow list and are
	// promoted in bulk when the wheel drains past them. cur is the scan
	// cursor: no bucketed event lives below tick cur, so each pop
	// resumes the occupancy scan where the previous one stopped instead
	// of rescanning from the clock.
	heads    []int32
	tails    []int32
	occ      []uint64
	base     int64
	cur      int64
	overflow int32
	promoted uint64 // events promoted overflow → wheel (observability)

	// Reference heap (SchedulerHeap).
	order []int32 // 4-ary min-heap of slots, keyed by (at, seq)
}

// NewEngine returns a wheel-scheduled engine at time zero.
func NewEngine() *Engine { return NewEngineSched(SchedulerWheel) }

// NewEngineSched returns an engine using the given scheduler.
func NewEngineSched(k SchedulerKind) *Engine {
	e := &Engine{free: noSlot, sched: k}
	if k == SchedulerWheel {
		e.heads = make([]int32, wheelSize)
		e.tails = make([]int32, wheelSize)
		for i := range e.heads {
			e.heads[i] = noSlot
			e.tails[i] = noSlot
		}
		e.occ = make([]uint64, wheelWords)
		e.overflow = noSlot
	}
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// QueueLen returns the number of events currently pending. Cancelled
// events are removed eagerly and never count.
func (e *Engine) QueueLen() int { return e.pending }

// PeakPending returns the high-water mark of the pending-event count —
// the working-set size the scheduler had to order.
func (e *Engine) PeakPending() int { return e.peak }

// OverflowPromotions returns how many events entered the queue beyond
// the wheel horizon and were later promoted into the wheel. High counts
// relative to Processed would mean the workload's periods outrun the
// horizon and the wheel is degenerating into a scan; duty-cycle
// workloads keep this near zero. Always zero under SchedulerHeap.
func (e *Engine) OverflowPromotions() uint64 { return e.promoted }

// At schedules fn at absolute time t (clamped to now for past times) and
// returns a cancellable handle.
func (e *Engine) At(t Time, fn func()) Timer {
	return e.schedule(t, fn, nil, nil)
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) Timer {
	return e.schedule(e.now+d, fn, nil, nil)
}

// AtCall schedules do(arg) at absolute time t. It exists for hot paths:
// do can be one long-lived func value (e.g. a cached method wrapper)
// reused across schedules, so no closure is allocated per event.
//
//edvet:hotpath
func (e *Engine) AtCall(t Time, do func(any), arg any) Timer {
	return e.schedule(t, nil, do, arg)
}

// AfterCall schedules do(arg) d seconds from now.
//
//edvet:hotpath
func (e *Engine) AfterCall(d float64, do func(any), arg any) Timer {
	return e.schedule(e.now+d, nil, do, arg)
}

// schedule allocates a slot (reusing the free-list), fills it and links
// it into the active scheduler structure.
//
//edvet:hotpath
func (e *Engine) schedule(t Time, fn func(), do func(any), arg any) Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var slot int32
	if e.free != noSlot {
		slot = e.free
		e.free = e.events[slot].next
	} else {
		e.events = append(e.events, event{})
		slot = int32(len(e.events) - 1)
	}
	ev := &e.events[slot]
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.do = do
	ev.arg = arg
	e.pending++
	if e.pending > e.peak {
		e.peak = e.pending
	}
	if e.sched == SchedulerHeap {
		ev.loc = int32(len(e.order))
		e.order = append(e.order, slot)
		e.siftUp(int(ev.loc))
	} else {
		e.wheelInsert(slot, ev)
	}
	return Timer{eng: e, slot: slot, gen: ev.gen}
}

// cancel removes the event at slot if the generation still matches (the
// event has neither fired nor been cancelled since the Timer was made).
//
//edvet:hotpath
func (e *Engine) cancel(slot int32, gen uint32) {
	if slot < 0 || int(slot) >= len(e.events) {
		return
	}
	ev := &e.events[slot]
	if ev.gen != gen || ev.loc == noSlot {
		return
	}
	if e.sched == SchedulerHeap {
		e.removeAt(int(ev.loc))
	} else {
		e.wheelUnlink(ev)
	}
	e.pending--
	e.release(slot)
}

// release returns a slot to the free-list, dropping callback references
// so the GC can reclaim captured state.
//
//edvet:hotpath
func (e *Engine) release(slot int32) {
	ev := &e.events[slot]
	ev.fn = nil
	ev.do = nil
	ev.arg = nil
	ev.gen++
	ev.loc = noSlot
	ev.next = e.free
	e.free = slot
}

// DropPending cancels every pending event at once, releasing all slots
// to the free-list. The clock and the processed counter keep their
// values. Phased runs use it at epoch boundaries: everything the old
// parameter regime still had in flight (poll chains, in-flight frame
// endings, protocol timeouts) is discarded before the next regime's MAC
// layer is installed.
func (e *Engine) DropPending() {
	if e.sched == SchedulerHeap {
		for _, slot := range e.order {
			e.release(slot)
		}
		e.order = e.order[:0]
		e.pending = 0
		return
	}
	for w, word := range e.occ {
		for word != 0 {
			b := int32(w<<6) + int32(bits.TrailingZeros64(word))
			word &= word - 1
			for s := e.heads[b]; s != noSlot; {
				next := e.events[s].next
				e.release(s)
				s = next
			}
			e.heads[b] = noSlot
			e.tails[b] = noSlot
		}
		e.occ[w] = 0
	}
	for s := e.overflow; s != noSlot; {
		next := e.events[s].next
		e.release(s)
		s = next
	}
	e.overflow = noSlot
	e.cur = e.base
	e.pending = 0
}

// Run executes events in timestamp order until the queue empties or the
// next event lies beyond `until`; the clock then advances to `until`.
func (e *Engine) Run(until Time) {
	e.RunContext(nil, until)
}

// ctxCheckInterval is how many events RunContext processes between
// context polls. Polling is a channel-select per check, so the interval
// trades abort latency (a few thousand events, microseconds of wall
// clock) against per-event overhead on the hot path.
const ctxCheckInterval = 4096

// RunContext is Run with cooperative cancellation: every
// ctxCheckInterval events it polls ctx and, when the context is done,
// stops mid-run and returns the context's error. A nil ctx — or one
// that can never be cancelled, like context.Background() — is never
// polled, so uncancellable runs execute the exact event sequence Run
// does. An abandoned engine keeps its partial state; callers discard
// it (a cancelled run reports no result).
func (e *Engine) RunContext(ctx context.Context, until Time) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var err error
	if e.sched == SchedulerHeap {
		err = e.runHeap(ctx, done, until)
	} else {
		err = e.runWheel(ctx, done, until)
	}
	if err != nil {
		return err
	}
	if e.now < until {
		e.now = until
	}
	return nil
}

// --- calendar-queue timing wheel --------------------------------------

// wheelInsert links a freshly filled slot into the wheel: its bucket
// when the event's tick is inside the horizon, the overflow list
// otherwise.
//
//edvet:hotpath
func (e *Engine) wheelInsert(slot int32, ev *event) {
	tick := int64(ev.at * tickScale)
	if tick < e.base {
		// The window was advanced past `now` by a promotion and the run
		// then stopped at its horizon before draining it (or a prior run
		// was cancelled mid-promotion). Rewind: restart the window at
		// this event's tick and redistribute the queue against it.
		e.rebase(tick)
	}
	if tick-e.base < wheelSize {
		if tick < e.cur {
			e.cur = tick
		}
		e.bucketInsert(slot, ev, int32(tick&wheelMask))
	} else {
		h := e.overflow
		ev.loc, ev.prev, ev.next = overflowLoc, noSlot, h
		if h != noSlot {
			e.events[h].prev = slot
		}
		e.overflow = slot
	}
}

// bucketInsert links slot into bucket b's chain, keeping the chain
// sorted by (at, seq) so the head is always the bucket minimum. New
// events almost always carry the largest (at, seq) of their tick, so
// the common case is an O(1) append at the tail; the fallback walks
// from the head of a chain that is a handful of events long.
//
//edvet:hotpath
func (e *Engine) bucketInsert(slot int32, ev *event, b int32) {
	ev.loc = b
	t := e.tails[b]
	if t == noSlot {
		ev.prev, ev.next = noSlot, noSlot
		e.heads[b], e.tails[b] = slot, slot
		e.occ[b>>6] |= 1 << uint(b&63)
		return
	}
	if tl := &e.events[t]; tl.at < ev.at || (tl.at == ev.at && tl.seq < ev.seq) {
		ev.prev, ev.next = t, noSlot
		tl.next = slot
		e.tails[b] = slot
		return
	}
	// Walk from the head to the first event ordered after ev.
	s := e.heads[b]
	for {
		sv := &e.events[s]
		if ev.at < sv.at || (ev.at == sv.at && ev.seq < sv.seq) {
			ev.prev, ev.next = sv.prev, s
			if sv.prev != noSlot {
				e.events[sv.prev].next = slot
			} else {
				e.heads[b] = slot
			}
			sv.prev = slot
			return
		}
		s = sv.next
	}
}

// wheelUnlink removes an event from its chain (bucket or overflow) in
// O(1), clearing the bucket's occupancy bit when it empties.
//
//edvet:hotpath
func (e *Engine) wheelUnlink(ev *event) {
	nx, pv := ev.next, ev.prev
	if pv != noSlot {
		e.events[pv].next = nx
	} else if ev.loc == overflowLoc {
		e.overflow = nx
	} else {
		e.heads[ev.loc] = nx
		if nx == noSlot {
			e.occ[ev.loc>>6] &^= 1 << uint(ev.loc&63)
		}
	}
	if nx != noSlot {
		e.events[nx].prev = pv
	} else if ev.loc != overflowLoc {
		e.tails[ev.loc] = pv
	}
}

// rebase restarts the window at the given (lower) tick and
// redistributes every queued event against it: ticks inside the new
// horizon go (back) into their buckets, the rest to the overflow list.
// Only the rare insert-below-base path (see wheelInsert) needs it.
//
// Events from the old window whose ticks land inside the new horizon
// MUST be re-bucketed here, not parked on overflow: overflow is only
// consulted once the wheel drains, so an in-horizon event left there
// would be starved while later in-window events fire — the clock would
// pass its deadline and the (at, seq) order would break.
func (e *Engine) rebase(tick int64) {
	head := e.overflow
	e.overflow = noSlot
	for w, word := range e.occ {
		for word != 0 {
			b := int32(w<<6) + int32(bits.TrailingZeros64(word))
			word &= word - 1
			for s := e.heads[b]; s != noSlot; {
				next := e.events[s].next
				e.events[s].next = head
				head = s
				s = next
			}
			e.heads[b] = noSlot
			e.tails[b] = noSlot
		}
		e.occ[w] = 0
	}
	e.base = tick
	e.cur = tick
	e.redistribute(head)
}

// redistribute relinks a next-chained list of unlinked events against
// the current base: in-horizon events into their buckets (sorted), the
// rest onto the overflow list. Returns the number of events bucketed.
//
//edvet:hotpath
func (e *Engine) redistribute(head int32) uint64 {
	end := e.base + wheelSize
	var placed uint64
	for s := head; s != noSlot; {
		ev := &e.events[s]
		next := ev.next
		if tick := int64(ev.at * tickScale); tick < end {
			e.bucketInsert(s, ev, int32(tick&wheelMask))
			placed++
		} else {
			ev.loc, ev.prev, ev.next = overflowLoc, noSlot, e.overflow
			if e.overflow != noSlot {
				e.events[e.overflow].prev = s
			}
			e.overflow = s
		}
		s = next
	}
	return placed
}

// scanOcc returns the first tick in [start, end) whose bucket holds
// events, or -1. end-start never exceeds wheelSize, so every bucket maps
// to at most one tick of the range; the occupancy bitmap lets idle
// stretches (a sleeping network between polls) skip 64 buckets per word
// load.
//
//edvet:hotpath
func (e *Engine) scanOcc(start, end int64) int64 {
	for i := start; i < end; {
		b := i & wheelMask
		word := e.occ[b>>6] >> uint(b&63)
		if word != 0 {
			t := i + int64(bits.TrailingZeros64(word))
			if t < end {
				return t
			}
			return -1
		}
		i += 64 - (b & 63)
	}
	return -1
}

// wheelMin locates the earliest pending event without removing it, or
// noSlot when nothing is pending. When the wheel proper has drained it
// advances the window to the overflow's earliest tick and promotes
// everything inside the new horizon. tick = ⌊at·tickScale⌋ is monotone
// in `at` and all of a bucket's events share one tick, so the head of
// the first occupied bucket (chains are sorted) is the global minimum —
// the exact (at, seq) order the heap realizes. The cursor makes the
// common case O(1): the scan resumes at the tick the last pop stopped
// on, which is still occupied while its bucket drains.
//
//edvet:hotpath
func (e *Engine) wheelMin() int32 {
	for {
		start := e.cur
		if start < e.base {
			start = e.base
		}
		if t := e.scanOcc(start, e.base+wheelSize); t >= 0 {
			e.cur = t
			return e.heads[t&wheelMask]
		}
		e.cur = e.base + wheelSize
		if e.overflow == noSlot {
			return noSlot
		}
		e.promote()
	}
}

// promote advances the window to the overflow list's earliest tick and
// moves every overflow event inside the new horizon into its bucket.
// Called only when the wheel is empty, so re-bucketing cannot collide
// with live in-window events.
//
//edvet:hotpath
func (e *Engine) promote() {
	minTick := int64(1)<<62 - 1
	for s := e.overflow; s != noSlot; s = e.events[s].next {
		if t := int64(e.events[s].at * tickScale); t < minTick {
			minTick = t
		}
	}
	e.base = minTick
	e.cur = minTick
	head := e.overflow
	e.overflow = noSlot
	e.promoted += e.redistribute(head)
}

// runWheel is the wheel-scheduled event loop behind RunContext.
//
//edvet:hotpath
func (e *Engine) runWheel(ctx context.Context, done <-chan struct{}, until Time) error {
	countdown := ctxCheckInterval
	for e.pending > 0 {
		slot := e.wheelMin()
		if slot == noSlot {
			break
		}
		ev := &e.events[slot]
		if ev.at > until {
			break
		}
		if done != nil {
			countdown--
			if countdown == 0 {
				countdown = ctxCheckInterval
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
		e.now = ev.at
		fn, do, arg := ev.fn, ev.do, ev.arg
		e.wheelUnlink(ev)
		e.pending--
		e.release(slot)
		e.processed++
		if do != nil {
			do(arg)
		} else {
			fn()
		}
	}
	return nil
}

// --- indexed 4-ary min-heap over the order slice ----------------------

// runHeap is the heap-scheduled event loop behind RunContext.
//
//edvet:hotpath
func (e *Engine) runHeap(ctx context.Context, done <-chan struct{}, until Time) error {
	countdown := ctxCheckInterval
	for len(e.order) > 0 {
		slot := e.order[0]
		ev := &e.events[slot]
		if ev.at > until {
			break
		}
		if done != nil {
			countdown--
			if countdown == 0 {
				countdown = ctxCheckInterval
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
		e.now = ev.at
		fn, do, arg := ev.fn, ev.do, ev.arg
		e.removeAt(0)
		e.pending--
		e.release(slot)
		e.processed++
		if do != nil {
			do(arg)
		} else {
			fn()
		}
	}
	return nil
}

// less orders slots by (at, seq): earliest first, FIFO among equals.
//
//edvet:hotpath
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.events[a], &e.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// place writes slot at heap position i and records the position.
//
//edvet:hotpath
func (e *Engine) place(slot int32, i int) {
	e.order[i] = slot
	e.events[slot].loc = int32(i)
}

//edvet:hotpath
func (e *Engine) siftUp(i int) {
	slot := e.order[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(slot, e.order[parent]) {
			break
		}
		e.place(e.order[parent], i)
		i = parent
	}
	e.place(slot, i)
}

//edvet:hotpath
func (e *Engine) siftDown(i int) {
	slot := e.order[i]
	n := len(e.order)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.order[c], e.order[best]) {
				best = c
			}
		}
		if !e.less(e.order[best], slot) {
			break
		}
		e.place(e.order[best], i)
		i = best
	}
	e.place(slot, i)
}

// removeAt deletes the heap entry at position i, restoring heap order.
// The caller releases (or has copied) the slot itself.
//
//edvet:hotpath
func (e *Engine) removeAt(i int) {
	n := len(e.order) - 1
	lastSlot := e.order[n]
	e.order = e.order[:n]
	if i == n {
		return
	}
	e.place(lastSlot, i)
	// The moved slot may need to travel either direction.
	e.siftUp(i)
	e.siftDown(int(e.events[lastSlot].loc))
}
