// Package sim is a packet-level discrete-event simulator for duty-cycled
// wireless sensor networks. It provides the experimental substrate the
// original protocol models were validated against (testbeds and ns-2
// class simulators we do not have — see DESIGN.md §5): a virtual-time
// event engine, a unit-disk radio medium with collision handling, a
// per-node transceiver state machine with energy metering, and faithful
// packet-level implementations of X-MAC, B-MAC, DMAC and LMAC.
//
// The simulator measures what the analytic models of internal/macmodel
// predict; the cross-validation tests and the `edsim validate` command
// compare the two.
//
// # Concurrency and determinism contract
//
// One Engine (and everything hanging off it: Medium, Transceivers, MAC
// nodes, Metrics) is single-threaded by design and must only be driven
// from one goroutine. Determinism is a correctness requirement: a run is
// a pure function of its Config, so equal seeds reproduce runs exactly,
// event for event. Independent runs share nothing mutable — Run builds a
// fresh Engine, Medium and RNG set per call, and topology.Network and
// radio.Radio are immutable after construction — so any number of runs
// may execute concurrently (see RunBatch), and a batch's results are
// bit-identical to executing the same configs sequentially.
package sim

import "context"

// Time is virtual simulation time in seconds. It is a float64 rather
// than time.Duration because it feeds the same closed-form arithmetic as
// the analytic models (it is compared against them directly).
type Time = float64

// event is one scheduled callback, stored in the engine's flat arena.
// Callbacks come in two forms: a plain closure fn, or the pair (do, arg)
// which lets hot paths reuse one long-lived func value with a per-event
// argument instead of allocating a fresh closure per schedule.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	fn   func()
	do   func(any)
	arg  any
	gen  uint32 // bumped on slot reuse; stale Timers miss
	hpos int32  // index into Engine.order, -1 when free
	next int32  // free-list link, -1 at the end
}

const noSlot = -1

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. MAC protocols cancel pending timeouts constantly (an ACK
// arriving cancels the retry timer, a frame ending cancels the poll
// extension, ...). The zero Timer is valid and inert.
type Timer struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Cancel removes the event from the queue so it never fires and its
// slot is immediately reusable. Cancelling the zero Timer, a nil *Timer,
// or an already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t == nil || t.eng == nil {
		return
	}
	t.eng.cancel(t.slot, t.gen)
	t.eng = nil
}

// Engine is the discrete-event scheduler: a priority queue of callbacks
// over virtual time. Events live in a flat arena recycled through a
// free-list and are ordered by an indexed 4-ary min-heap, so scheduling
// and cancelling are allocation-free in steady state and cancellation
// removes the event immediately instead of leaving a tombstone to be
// popped. The engine is single-goroutine; see the package comment for
// the concurrency contract.
type Engine struct {
	now       Time
	seq       uint64
	events    []event // arena; index = slot
	order     []int32 // 4-ary min-heap of slots, keyed by (at, seq)
	free      int32   // head of the free-slot list, noSlot when empty
	processed uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	return &Engine{free: noSlot}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// QueueLen returns the number of events currently pending. Cancelled
// events are removed eagerly and never count.
func (e *Engine) QueueLen() int { return len(e.order) }

// At schedules fn at absolute time t (clamped to now for past times) and
// returns a cancellable handle.
func (e *Engine) At(t Time, fn func()) Timer {
	return e.schedule(t, fn, nil, nil)
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) Timer {
	return e.schedule(e.now+d, fn, nil, nil)
}

// AtCall schedules do(arg) at absolute time t. It exists for hot paths:
// do can be one long-lived func value (e.g. a cached method wrapper)
// reused across schedules, so no closure is allocated per event.
func (e *Engine) AtCall(t Time, do func(any), arg any) Timer {
	return e.schedule(t, nil, do, arg)
}

// AfterCall schedules do(arg) d seconds from now.
func (e *Engine) AfterCall(d float64, do func(any), arg any) Timer {
	return e.schedule(e.now+d, nil, do, arg)
}

// schedule allocates a slot (reusing the free-list), fills it and sifts
// it into the heap.
func (e *Engine) schedule(t Time, fn func(), do func(any), arg any) Timer {
	if t < e.now {
		t = e.now
	}
	e.seq++
	var slot int32
	if e.free != noSlot {
		slot = e.free
		e.free = e.events[slot].next
	} else {
		e.events = append(e.events, event{})
		slot = int32(len(e.events) - 1)
	}
	ev := &e.events[slot]
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.do = do
	ev.arg = arg
	ev.hpos = int32(len(e.order))
	e.order = append(e.order, slot)
	e.siftUp(int(ev.hpos))
	return Timer{eng: e, slot: slot, gen: ev.gen}
}

// cancel removes the event at slot if the generation still matches (the
// event has neither fired nor been cancelled since the Timer was made).
func (e *Engine) cancel(slot int32, gen uint32) {
	if slot < 0 || int(slot) >= len(e.events) {
		return
	}
	ev := &e.events[slot]
	if ev.gen != gen || ev.hpos == noSlot {
		return
	}
	e.removeAt(int(ev.hpos))
	e.release(slot)
}

// release returns a slot to the free-list, dropping callback references
// so the GC can reclaim captured state.
func (e *Engine) release(slot int32) {
	ev := &e.events[slot]
	ev.fn = nil
	ev.do = nil
	ev.arg = nil
	ev.gen++
	ev.hpos = noSlot
	ev.next = e.free
	e.free = slot
}

// DropPending cancels every pending event at once, releasing all slots
// to the free-list. The clock and the processed counter keep their
// values. Phased runs use it at epoch boundaries: everything the old
// parameter regime still had in flight (poll chains, in-flight frame
// endings, protocol timeouts) is discarded before the next regime's MAC
// layer is installed.
func (e *Engine) DropPending() {
	for _, slot := range e.order {
		e.release(slot)
	}
	e.order = e.order[:0]
}

// Run executes events in timestamp order until the queue empties or the
// next event lies beyond `until`; the clock then advances to `until`.
func (e *Engine) Run(until Time) {
	e.RunContext(nil, until)
}

// ctxCheckInterval is how many events RunContext processes between
// context polls. Polling is a channel-select per check, so the interval
// trades abort latency (a few thousand events, microseconds of wall
// clock) against per-event overhead on the hot path.
const ctxCheckInterval = 4096

// RunContext is Run with cooperative cancellation: every
// ctxCheckInterval events it polls ctx and, when the context is done,
// stops mid-run and returns the context's error. A nil ctx — or one
// that can never be cancelled, like context.Background() — is never
// polled, so uncancellable runs execute the exact event sequence Run
// does. An abandoned engine keeps its partial state; callers discard
// it (a cancelled run reports no result).
func (e *Engine) RunContext(ctx context.Context, until Time) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	countdown := ctxCheckInterval
	for len(e.order) > 0 {
		slot := e.order[0]
		ev := &e.events[slot]
		if ev.at > until {
			break
		}
		if done != nil {
			countdown--
			if countdown == 0 {
				countdown = ctxCheckInterval
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
		e.now = ev.at
		fn, do, arg := ev.fn, ev.do, ev.arg
		e.removeAt(0)
		e.release(slot)
		e.processed++
		if do != nil {
			do(arg)
		} else {
			fn()
		}
	}
	if e.now < until {
		e.now = until
	}
	return nil
}

// --- indexed 4-ary min-heap over the order slice ----------------------

// less orders slots by (at, seq): earliest first, FIFO among equals.
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.events[a], &e.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// place writes slot at heap position i and records the position.
func (e *Engine) place(slot int32, i int) {
	e.order[i] = slot
	e.events[slot].hpos = int32(i)
}

func (e *Engine) siftUp(i int) {
	slot := e.order[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(slot, e.order[parent]) {
			break
		}
		e.place(e.order[parent], i)
		i = parent
	}
	e.place(slot, i)
}

func (e *Engine) siftDown(i int) {
	slot := e.order[i]
	n := len(e.order)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.order[c], e.order[best]) {
				best = c
			}
		}
		if !e.less(e.order[best], slot) {
			break
		}
		e.place(e.order[best], i)
		i = best
	}
	e.place(slot, i)
}

// removeAt deletes the heap entry at position i, restoring heap order.
// The caller releases (or has copied) the slot itself.
func (e *Engine) removeAt(i int) {
	n := len(e.order) - 1
	lastSlot := e.order[n]
	e.order = e.order[:n]
	if i == n {
		return
	}
	e.place(lastSlot, i)
	// The moved slot may need to travel either direction.
	e.siftUp(i)
	e.siftDown(int(e.events[lastSlot].hpos))
}
