package sim

import (
	"fmt"
	"testing"

	"github.com/edmac-project/edmac/internal/channel"
	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// lossyLine builds a line network whose every link carries the given
// PRR in both directions.
func lossyLine(t *testing.T, hops int, prr float64) *topology.Network {
	t.Helper()
	net, err := topology.Line(hops, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	if err := channel.Apply(channel.Bernoulli{PRR: prr}, net, 1); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return net
}

// TestMediumReceptionDraw pins the endTx delivery draw: a PRR-0-ish link
// loses every frame (counted as a channel loss, not a collision), a
// PRR-1 link never loses one.
func TestMediumReceptionDraw(t *testing.T) {
	run := func(prr float64) (*recorder, *Medium) {
		net := lossyLine(t, 2, prr)
		eng := NewEngine()
		med := NewMedium(eng, net, radio.CC2420())
		med.enableLoss(7)
		rx := &recorder{}
		med.Transceiver(1).SetHandler(rx)
		med.Transceiver(1).Listen()
		for i := 0; i < 20; i++ {
			at := float64(i) * 0.01
			eng.At(at, func() {
				med.Transceiver(0).Listen()
				med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
			})
		}
		eng.Run(1)
		return rx, med
	}
	// channel.Apply clamps nothing here: Bernoulli requires prr > 0, so
	// stamp the near-zero link directly.
	net, err := topology.Line(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	net.SetLink(0, 1, 0, 0)
	eng := NewEngine()
	med := NewMedium(eng, net, radio.CC2420())
	med.enableLoss(7)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Listen()
	eng.At(0, func() {
		med.Transceiver(0).Listen()
		med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
	})
	eng.Run(1)
	if len(rx.frames) != 0 {
		t.Error("PRR-0 link delivered a frame")
	}
	if med.ChannelLosses() != 1 {
		t.Errorf("ChannelLosses = %d, want 1", med.ChannelLosses())
	}
	if med.Collisions() != 0 {
		t.Errorf("channel loss miscounted as collision (%d)", med.Collisions())
	}

	if rxOK, medOK := run(1); len(rxOK.frames) != 20 || medOK.ChannelLosses() != 0 {
		t.Errorf("PRR-1 link: %d/20 delivered, %d losses", len(rxOK.frames), medOK.ChannelLosses())
	}
	if rxHalf, medHalf := run(0.5); len(rxHalf.frames)+medHalf.ChannelLosses() != 20 ||
		medHalf.ChannelLosses() == 0 || len(rxHalf.frames) == 0 {
		t.Errorf("PRR-0.5 link: %d delivered + %d lost, want a 20-frame mix",
			len(rxHalf.frames), medHalf.ChannelLosses())
	}
}

// TestMediumCapture pins the capture collision model on a 0-1-2 line:
// node 1 hears both ends; with a dominant gain the locked frame
// survives the overlap, with a dominant late arrival the lock is
// stolen, and with comparable gains the frames corrupt as before.
func TestMediumCapture(t *testing.T) {
	cases := []struct {
		name           string
		gain0, gain2   float64 // gains of links 0->1 and 2->1
		wantSrc        topology.NodeID
		wantDelivered  int
		wantCollisions int
	}{
		{"locked-dominates", 10, 0, 0, 1, 0},
		{"late-steals", 0, 10, 2, 1, 0},
		{"comparable-corrupts", 0, 1, -1, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, err := topology.Line(3, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			net.SetLink(0, 1, 1, tc.gain0)
			net.SetLink(2, 1, 1, tc.gain2)
			eng := NewEngine()
			med := NewMedium(eng, net, radio.CC2420())
			med.enableCapture(3)
			rx := &recorder{}
			med.Transceiver(1).SetHandler(rx)
			med.Transceiver(1).Listen()
			eng.At(0, func() {
				med.Transceiver(0).Listen()
				med.Transceiver(0).Send(&Frame{Kind: FrameData, Src: 0, Dst: 1, Bytes: 43})
			})
			eng.At(0.0001, func() {
				med.Transceiver(2).Listen()
				med.Transceiver(2).Send(&Frame{Kind: FrameData, Src: 2, Dst: 1, Bytes: 43})
			})
			eng.Run(1)
			if len(rx.frames) != tc.wantDelivered {
				t.Fatalf("delivered %d frames, want %d", len(rx.frames), tc.wantDelivered)
			}
			if tc.wantDelivered == 1 && rx.frames[0].Src != tc.wantSrc {
				t.Errorf("delivered frame from %d, want %d", rx.frames[0].Src, tc.wantSrc)
			}
			if med.Collisions() != tc.wantCollisions {
				t.Errorf("collisions = %d, want %d", med.Collisions(), tc.wantCollisions)
			}
			if tc.wantCollisions == 0 && med.Captures() == 0 {
				t.Error("capture not counted")
			}
		})
	}
}

// TestMediumCapturePileUp pins the pile-up rule: once a lock is
// corrupted, a late arrival must dominate the strongest frame of the
// whole pile-up to steal it — not just the frame locked first. Node 1
// hears senders 0, 2 and 3 (spacing 0.5): frame A (gain 0) locks, C
// (gain 2) corrupts, then B (gain 4) arrives. B dominates A but not C,
// so the reception must stay corrupted.
func TestMediumCapturePileUp(t *testing.T) {
	net, err := topology.Line(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	net.SetLink(0, 1, 1, 0)
	net.SetLink(2, 1, 1, 2)
	net.SetLink(3, 1, 1, 4)
	eng := NewEngine()
	med := NewMedium(eng, net, radio.CC2420())
	med.enableCapture(3)
	rx := &recorder{}
	med.Transceiver(1).SetHandler(rx)
	med.Transceiver(1).Listen()
	send := func(at float64, src topology.NodeID) {
		eng.At(at, func() {
			med.Transceiver(src).Listen()
			med.Transceiver(src).Send(&Frame{Kind: FrameData, Src: src, Dst: 1, Bytes: 43})
		})
	}
	send(0, 0)
	send(0.0001, 2)
	send(0.0002, 3)
	eng.Run(1)
	if len(rx.frames) != 0 {
		t.Errorf("delivered a frame from %d out of a pile-up no frame dominated", rx.frames[0].Src)
	}
	if med.Collisions() == 0 {
		t.Error("pile-up recorded no collision")
	}
}

// TestSinkDeduplicatesDeliveries is the forced-ACK-loss regression for
// the delivery double count: data flows sink-ward on a perfect link
// while every ACK (sink → sender) is lost, so B-MAC retries a packet
// the sink already took once per attempt. The sink must count one
// delivery plus retries-many duplicates, keeping the ratio at 1.
func TestSinkDeduplicatesDeliveries(t *testing.T) {
	net, err := topology.Line(1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Asymmetric loss: data (1 → 0) always decodes, ACKs (0 → 1) never.
	net.SetLink(0, 1, 0, 0)
	cfg := Config{
		Protocol:   "bmac",
		Network:    net,
		Radio:      radio.CC2420(),
		Params:     opt.Vector{0.1},
		SampleRate: 0.05,
		Payload:    32,
		Duration:   60,
		Seed:       3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Duplicates() == 0 {
		t.Fatal("no duplicates recorded under forced ACK loss; the regression scenario lost its teeth")
	}
	if m.Delivered() > m.Generated() {
		t.Errorf("delivered %d > generated %d: dedup failed", m.Delivered(), m.Generated())
	}
	if ratio := m.DeliveryRatio(); ratio > 1 {
		t.Errorf("DeliveryRatio = %v, want <= 1 under ACK loss", ratio)
	}
	if len(m.samples) != m.Delivered() {
		t.Errorf("%d delay samples for %d deliveries: duplicates biased the delay statistics",
			len(m.samples), m.Delivered())
	}
}

// TestPushOverflowKeepsInFlightHead is the queue-eviction regression: a
// full queue must shed the incoming packet, never the head the MAC may
// be mid-handshake on.
func TestPushOverflowKeepsInFlightHead(t *testing.T) {
	metrics := &Metrics{}
	n := &node{metrics: metrics}
	arena := &packetArena{}
	first := arena.new()
	first.ID = 1
	n.push(first)
	for i := 1; i < queueCap; i++ {
		p := arena.new()
		p.ID = int64(i + 1)
		n.push(p)
	}
	if n.queueLen() != queueCap {
		t.Fatalf("queue length %d, want full %d", n.queueLen(), queueCap)
	}
	// The MAC is now mid-handshake on `first`. Overflowing must not
	// replace it.
	late := arena.new()
	late.ID = 999
	n.push(late)
	if n.head() != first {
		t.Fatalf("head packet swapped out during overflow: got %v, want ID 1", n.head().ID)
	}
	if n.queueLen() != queueCap {
		t.Errorf("queue length %d after overflow, want %d", n.queueLen(), queueCap)
	}
	if metrics.Dropped() != 1 {
		t.Errorf("dropped = %d, want the shed incoming packet counted once", metrics.Dropped())
	}
	// pop() now removes exactly the packet the handshake completed.
	n.pop()
	if n.head().ID != 2 {
		t.Errorf("after pop head ID = %d, want 2", n.head().ID)
	}
}

// TestLossyRunDeterministic asserts byte-stable outcomes on a lossy
// channel: equal configs reproduce every counter, and the per-link
// streams decorrelate under a different seed.
func TestLossyRunDeterministic(t *testing.T) {
	run := func(seed int64) string {
		net := lossyLine(t, 3, 0.8)
		res, err := Run(Config{
			Protocol:   "xmac",
			Network:    net,
			Radio:      radio.CC2420(),
			Params:     opt.Vector{0.2},
			SampleRate: 0.05,
			Payload:    32,
			Duration:   120,
			Seed:       seed,
			Capture:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%v/%v",
			res.Metrics.Generated(), res.Metrics.Delivered(), res.Metrics.Duplicates(),
			res.Collisions, res.ChannelLosses, res.Captures,
			res.Metrics.MeanDelay(), res.Energy)
	}
	a, b := run(9), run(9)
	if a != b {
		t.Errorf("equal seeds diverged:\n%s\n%s", a, b)
	}
	if run(10) == a {
		t.Error("different seeds produced identical lossy runs")
	}
}
