package sim

import (
	"testing"
)

func TestEngineOrdersEvents(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.At(3, func() { got = append(got, 3) })
	eng.At(1, func() { got = append(got, 1) })
	eng.At(2, func() { got = append(got, 2) })
	eng.Run(10)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if eng.Now() != 10 {
		t.Errorf("Now = %v, want 10 (clock advances to the horizon)", eng.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		eng.At(1, func() { got = append(got, i) })
	}
	eng.Run(2)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	eng := NewEngine()
	var times []Time
	eng.After(1, func() {
		times = append(times, eng.Now())
		eng.After(2, func() { times = append(times, eng.Now()) })
	})
	eng.Run(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	timer := eng.After(1, func() { fired = true })
	timer.Cancel()
	eng.Run(2)
	if fired {
		t.Error("cancelled timer fired")
	}
	// Cancelling twice or after the horizon must not panic.
	timer.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel()
	var zeroTimer Timer
	zeroTimer.Cancel()
}

func TestEngineCancelAfterFire(t *testing.T) {
	eng := NewEngine()
	var first Timer
	fired := 0
	first = eng.After(1, func() { fired++ })
	// This event reuses no slot yet; after both fire, cancelling the
	// stale handles must not disturb newly scheduled events.
	eng.After(2, func() { fired++ })
	eng.Run(3)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	// Both slots are free now, with `first`'s slot below the LIFO free
	// head. Schedule two events so the second one reuses exactly that
	// slot, then cancel through the stale handle: the generation bump on
	// release must make the cancel a no-op and both events must fire.
	refired := 0
	eng.After(1, func() { refired++ })
	eng.After(1.5, func() { refired++ }) // lands in `first`'s old slot
	first.Cancel()
	eng.Run(6)
	if refired != 2 {
		t.Errorf("stale Cancel removed a reused slot's new event: %d of 2 fired", refired)
	}
}

func TestEngineCancelRemovesEvent(t *testing.T) {
	// A cancelled timer must leave the queue immediately — not linger as
	// a tombstone until popped. MAC layers cancel timers constantly; the
	// old heap leaked them until their timestamp came up.
	eng := NewEngine()
	const n = 100000
	for i := 0; i < n; i++ {
		tm := eng.After(1e9+float64(i), func() {})
		tm.Cancel()
	}
	if got := eng.QueueLen(); got != 0 {
		t.Fatalf("QueueLen = %d after cancelling all %d timers, want 0", got, n)
	}
	// Interleaved schedule/cancel with live events in between: the queue
	// must stay bounded by the live events only.
	live := 0
	for i := 0; i < n; i++ {
		tm := eng.After(2+float64(i)*1e-6, func() { live++ })
		tm2 := eng.After(1, func() {})
		tm2.Cancel()
		tm.Cancel()
	}
	if got := eng.QueueLen(); got != 0 {
		t.Fatalf("QueueLen = %d after interleaved cancels, want 0", got)
	}
	eng.Run(3)
	if live != 0 {
		t.Fatalf("cancelled events fired %d times", live)
	}
}

func TestEngineCancelMiddleKeepsOrder(t *testing.T) {
	// Removing an event from the middle of the heap must preserve the
	// (time, FIFO) order of the survivors.
	eng := NewEngine()
	var got []int
	timers := make([]Timer, 10)
	for i := 0; i < 10; i++ {
		i := i
		timers[i] = eng.At(float64(10-i), func() { got = append(got, 10-i) })
	}
	timers[3].Cancel() // at time 7
	timers[8].Cancel() // at time 2
	eng.Run(20)
	want := []int{1, 3, 4, 5, 6, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(5, func() { fired = true })
	eng.Run(3)
	if fired {
		t.Error("event beyond the horizon fired")
	}
	if eng.Now() != 3 {
		t.Errorf("Now = %v, want 3", eng.Now())
	}
	eng.Run(6)
	if !fired {
		t.Error("event not fired after extending the horizon")
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	eng := NewEngine()
	eng.At(2, func() {
		eng.At(1, func() {
			if eng.Now() < 2 {
				t.Errorf("past-scheduled event ran at %v, before the clock", eng.Now())
			}
		})
	})
	eng.Run(3)
	if eng.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", eng.Processed())
	}
}
