package sim

import (
	"testing"
)

func TestEngineOrdersEvents(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.At(3, func() { got = append(got, 3) })
	eng.At(1, func() { got = append(got, 1) })
	eng.At(2, func() { got = append(got, 2) })
	eng.Run(10)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if eng.Now() != 10 {
		t.Errorf("Now = %v, want 10 (clock advances to the horizon)", eng.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		eng.At(1, func() { got = append(got, i) })
	}
	eng.Run(2)
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	eng := NewEngine()
	var times []Time
	eng.After(1, func() {
		times = append(times, eng.Now())
		eng.After(2, func() { times = append(times, eng.Now()) })
	})
	eng.Run(5)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	timer := eng.After(1, func() { fired = true })
	timer.Cancel()
	eng.Run(2)
	if fired {
		t.Error("cancelled timer fired")
	}
	// Cancelling twice or after the horizon must not panic.
	timer.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel()
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(5, func() { fired = true })
	eng.Run(3)
	if fired {
		t.Error("event beyond the horizon fired")
	}
	if eng.Now() != 3 {
		t.Errorf("Now = %v, want 3", eng.Now())
	}
	eng.Run(6)
	if !fired {
		t.Error("event not fired after extending the horizon")
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	eng := NewEngine()
	eng.At(2, func() {
		eng.At(1, func() {
			if eng.Now() < 2 {
				t.Errorf("past-scheduled event ran at %v, before the clock", eng.Now())
			}
		})
	})
	eng.Run(3)
	if eng.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", eng.Processed())
	}
}
