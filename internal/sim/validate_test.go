package sim

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/topology"
)

// The cross-validation experiments: run each protocol at packet level on
// the deterministic ring placement and compare measured bottleneck
// energy and outer-ring delay against the analytic model at the same
// parameter vector. The models are deliberately coarse (ring-averaged
// traffic, no collisions, idealized handshakes), so agreement is
// asserted within a multiplicative band rather than a tolerance.
const validationBand = 2.5

// validationEnv is a small, busier-than-default scenario so a simulated
// half hour accumulates meaningful statistics. The rate is per-protocol:
// the analytic models assume collision-free low-rate operation, so each
// protocol is validated inside its stable regime (DMAC's single shared
// transmit slot per ring and X-MAC's long strobe trains saturate the
// channel at rates the other protocols tolerate).
func validationEnv(rate float64) macmodel.Env {
	env := macmodel.Default()
	env.Rings = topology.RingModel{Depth: 3, Density: 4}
	env.SampleRate = rate
	return env
}

func validationNet(t *testing.T, env macmodel.Env) *topology.Network {
	t.Helper()
	net, err := topology.Rings(env.Rings)
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	return net
}

// checkBand asserts measured/predicted within the validation band.
func checkBand(t *testing.T, what string, measured, predicted float64) {
	t.Helper()
	if math.IsNaN(measured) || measured <= 0 {
		t.Fatalf("%s: measurement %v unusable (predicted %v)", what, measured, predicted)
	}
	ratio := measured / predicted
	if ratio > validationBand || ratio < 1/validationBand {
		t.Errorf("%s: measured %v vs predicted %v (ratio %.2f outside [%.2f, %.2f])",
			what, measured, predicted, ratio, 1/validationBand, validationBand)
	} else {
		t.Logf("%s: measured %v vs predicted %v (ratio %.2f)", what, measured, predicted, ratio)
	}
}

func validate(t *testing.T, protocol string, x opt.Vector, rate, duration float64) {
	t.Helper()
	env := validationEnv(rate)
	net := validationNet(t, env)
	model, err := macmodel.New(protocol, env)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	res, err := Run(Config{
		Protocol:   protocol,
		Network:    net,
		Radio:      env.Radio,
		Params:     x,
		SampleRate: env.SampleRate,
		Payload:    env.Payload,
		Duration:   duration,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ratio := res.Metrics.DeliveryRatio(); ratio < 0.7 {
		t.Fatalf("delivery ratio %v too low for a meaningful comparison (collisions %d, dropped %d)",
			ratio, res.Collisions, res.Metrics.Dropped())
	}

	measuredE := res.MeanRingEnergyPerWindow(net, 1, env.Window)
	predictedE := model.Energy(x)
	checkBand(t, protocol+" bottleneck energy/window", measuredE, predictedE)

	outer := env.Rings.Depth
	measuredL := res.Metrics.MeanDelayFrom(func(id topology.NodeID) bool { return net.Ring(id) == outer })
	predictedL := model.Delay(x)
	checkBand(t, protocol+" outer-ring delay", measuredL, predictedL)
}

func TestValidateXMAC(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs take seconds")
	}
	validate(t, "xmac", opt.Vector{0.25}, 1.0/120, 1800)
}

func TestValidateDMAC(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs take seconds")
	}
	// Each ring shares a single transmit slot per frame, so DMAC needs a
	// lower offered load than the others to stay collision-free.
	validate(t, "dmac", opt.Vector{1.0, 0.005}, 1.0/600, 3600)
}

func TestValidateBMAC(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs take seconds")
	}
	// Full-interval preambles occupy the channel heavily; keep the rate
	// low enough for the collision-free analytic model to apply.
	validate(t, "bmac", opt.Vector{0.2}, 1.0/600, 3600)
}

func TestValidateLMAC(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs take seconds")
	}
	env := validationEnv(1.0 / 120)
	net := validationNet(t, env)
	// Use the smallest schedulable frame so the analytic "listen to all
	// control sections" assumption matches the occupied-slot reality.
	slots := net.MinSlots()
	validate(t, "lmac", opt.Vector{float64(slots), 0.02}, 1.0/120, 1800)
}

// TestValidationEnergyOrdering runs the protocols at operating points
// with matched ~2 s end-to-end delay and checks, independently of the
// analytic models, the trade-off structure behind the paper's figures:
// X-MAC's preamble-sampling cost is traffic-proportional (long strobe
// trains per relayed packet), so it loses to the schedule-based
// protocols at moderate load and wins in the paper's very-low-rate
// regime, while DMAC's staggered schedule stays cheapest throughout.
func TestValidationEnergyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs take seconds")
	}
	measure := func(protocol string, rate float64, x opt.Vector) float64 {
		env := validationEnv(rate)
		net := validationNet(t, env)
		res, err := Run(Config{
			Protocol:   protocol,
			Network:    net,
			Radio:      env.Radio,
			Params:     x,
			SampleRate: env.SampleRate,
			Payload:    env.Payload,
			Duration:   900,
			Seed:       11,
		})
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		return res.MeanRingEnergyPerWindow(net, 1, env.Window)
	}
	env := validationEnv(1.0 / 600)
	net := validationNet(t, env)
	depth := float64(env.Rings.Depth)
	slots := net.MinSlots()

	// Configurations targeting L ≈ 2 s in each protocol's delay model.
	xmacCfg := opt.Vector{2 * (2/depth - 0.003)}
	dmacCfg := opt.Vector{2 * (2 - depth*0.005), 0.005}
	lmacCfg := opt.Vector{float64(slots), 2 * 2 / depth / float64(slots)}

	// Moderate load: schedule-based protocols beat preamble sampling.
	xmacMid := measure("xmac", 1.0/600, xmacCfg)
	dmacMid := measure("dmac", 1.0/600, dmacCfg)
	lmacMid := measure("lmac", 1.0/600, lmacCfg)
	if !(dmacMid < lmacMid && dmacMid < xmacMid) {
		t.Errorf("moderate load: dmac %v should undercut xmac %v and lmac %v", dmacMid, xmacMid, lmacMid)
	}

	// Very low rate (the paper's regime): X-MAC undercuts LMAC, whose
	// control-tracking floor does not amortize away.
	xmacLow := measure("xmac", 1.0/7200, xmacCfg)
	lmacLow := measure("lmac", 1.0/7200, lmacCfg)
	if !(xmacLow < lmacLow) {
		t.Errorf("low rate: xmac %v should undercut lmac %v", xmacLow, lmacLow)
	}
	// And X-MAC's own cost must drop with the rate — the sensitivity
	// that drives the crossover.
	if !(xmacLow < xmacMid/2) {
		t.Errorf("xmac energy should scale with traffic: low-rate %v vs moderate %v", xmacLow, xmacMid)
	}
}
