package sim

import "github.com/edmac-project/edmac/internal/topology"

// Broadcast is the destination of frames addressed to every neighbour.
const Broadcast topology.NodeID = -1

// FrameKind distinguishes the MAC frame types on the air.
type FrameKind int

const (
	// FrameData carries one application packet.
	FrameData FrameKind = iota + 1
	// FrameAck acknowledges a data frame.
	FrameAck
	// FrameStrobe is an X-MAC preamble strobe (carries the target).
	FrameStrobe
	// FrameStrobeAck is X-MAC's early ACK cutting the strobe train.
	FrameStrobeAck
	// FrameCtrl is an LMAC slot-control section.
	FrameCtrl
	// FramePreamble is a B-MAC full-length wakeup preamble. Unlike every
	// other frame it is a modulated carrier rather than a packet: a
	// receiver waking mid-preamble still detects and "decodes" it, so
	// the medium lets listeners lock onto it mid-flight.
	FramePreamble
)

// String returns the frame kind name.
func (k FrameKind) String() string {
	switch k {
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameStrobe:
		return "strobe"
	case FrameStrobeAck:
		return "strobe-ack"
	case FrameCtrl:
		return "ctrl"
	case FramePreamble:
		return "preamble"
	default:
		return "frame(?)"
	}
}

// Packet is one application sample travelling to the sink.
type Packet struct {
	// ID is unique across the run.
	ID int64
	// Origin is the node that sampled it.
	Origin topology.NodeID
	// Created is the sampling time.
	Created Time
	// delivered marks a packet the sink has already counted, so a
	// protocol-level duplicate — a retry after a lost ACK delivers a
	// second copy — is recorded as a duplicate, not a second delivery.
	// Packets come from an arena that never reuses them (copies of one
	// packet can sit in several queues at once), so the flag is reliable
	// for the whole run.
	delivered bool
}

// Frame is one on-air MAC frame. Frames sent through a Transceiver are
// recycled by the medium once their transmission ends (see FrameHandler
// for the ownership contract).
type Frame struct {
	// pooled guards the recycling contract: the medium panics on any
	// send, upcall or free of a frame that is sitting in the pool. One
	// bool compare per event is cheap insurance against use-after-free.
	pooled bool
	Kind   FrameKind
	// Src and Dst are one-hop addresses; Dst may be Broadcast.
	Src, Dst topology.NodeID
	// Bytes is the MAC-layer size (the radio adds PHY overhead).
	Bytes int
	// Packet is the carried application packet for FrameData, nil
	// otherwise.
	Packet *Packet
	// Announce is the data destination announced by an LMAC control
	// section (Broadcast when the owner has nothing to send).
	Announce topology.NodeID
}
