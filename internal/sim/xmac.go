package sim

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

// xmacPhase is the protocol state of one X-MAC node.
type xmacPhase int

const (
	xIdle     xmacPhase = iota // radio asleep between polls
	xPolling                   // periodic channel check in progress
	xGap                       // sender: listening for the early ACK between strobes
	xWaitAck                   // sender: data sent, waiting for the ACK
	xWaitData                  // receiver: early ACK sent, waiting for the data
)

// xmacMaxRetries bounds per-packet transmission attempts.
const xmacMaxRetries = 5

// xmacTrace enables developer tracing in tests.
var xmacTrace = false

func (m *xmacNode) tracef(format string, args ...interface{}) {
	if xmacTrace {
		fmt.Printf("%.6f xmac[%d] phase=%d "+format+"\n",
			append([]interface{}{m.eng.Now(), int(m.id), int(m.phase)}, args...)...)
	}
}

// xmacNode is the packet-level X-MAC implementation: low-power listening
// with strobed preambles and early ACK, mirroring the analytic model in
// internal/macmodel. Every recurring callback is allocated once at
// construction (method values allocate per evaluation), so the steady
// state schedules without heap work.
type xmacNode struct {
	*node
	tw float64 // wakeup interval (the model's decision variable)

	phase   xmacPhase
	busy    bool // a send or receive procedure is running
	retries int

	strobeUntil Time
	peer        topology.NodeID // handshake counterpart

	pollTimer Timer
	gapTimer  Timer
	dataTimer Timer
	ackTimer  Timer

	pollWindow float64
	gap        float64
	turn       float64

	pollFn          func()
	pollExpiredFn   func()
	gapExpiredFn    func()
	ackExpiredFn    func()
	dataExpiredFn   func()
	attemptSendFn   func()
	maybeSendFn     func()
	sendStrobeAckFn func()
	sendAckFn       func()
}

func newXMACNode(n *node, tw float64) *xmacNode {
	x := &xmacNode{node: n, tw: tw}
	x.turn = n.x.prof.Turnaround
	// The poll must straddle one full strobe period so a strobe start
	// always lands inside it.
	strobe := n.x.Airtime(n.strobeBytes)
	ackAir := n.x.Airtime(n.ackBytes)
	x.gap = ackAir + 2*x.turn + n.x.prof.CCA
	x.pollWindow = strobe + x.gap + 2*n.x.prof.CCA
	x.pollFn = x.poll
	x.pollExpiredFn = x.pollExpired
	x.gapExpiredFn = x.gapExpired
	x.ackExpiredFn = x.ackExpired
	x.dataExpiredFn = x.dataExpired
	x.attemptSendFn = x.attemptSend
	x.maybeSendFn = x.maybeSend
	x.sendStrobeAckFn = func() {
		x.x.Send(x.newFrame(FrameStrobeAck, x.peer, x.ackBytes, nil))
	}
	x.sendAckFn = func() {
		x.x.Send(x.newFrame(FrameAck, x.peer, x.ackBytes, nil))
	}
	return x
}

// start implements macLayer.
func (m *xmacNode) start() {
	m.x.Sleep()
	m.eng.After(m.rng.Float64()*m.tw, m.pollFn)
}

// sampled implements macLayer.
func (m *xmacNode) sampled(p *Packet) {
	m.push(p)
	if !m.busy {
		m.attemptSend()
	}
}

// poll is the periodic channel check.
func (m *xmacNode) poll() {
	m.eng.After(m.tw, m.pollFn)
	m.tracef("poll busy=%v", m.busy)
	if m.busy {
		return
	}
	m.x.Listen()
	m.phase = xPolling
	m.busy = true
	m.pollTimer = m.eng.After(m.pollWindow, m.pollExpiredFn)
}

// pollExpired closes the poll unless a reception is still in flight.
func (m *xmacNode) pollExpired() {
	m.tracef("pollExpired state=%v", m.x.State())
	if m.phase != xPolling {
		return
	}
	if m.x.State() == radio.Rx || m.x.CarrierBusy() {
		// Mid-frame: extend until the frame resolves.
		m.pollTimer = m.eng.After(m.x.Airtime(m.dataBytes), m.pollExpiredFn)
		return
	}
	m.finishProcedure()
	m.maybeSend()
}

// finishProcedure cancels every pending protocol timer and returns the
// node to its idle sleeping state.
func (m *xmacNode) finishProcedure() {
	m.pollTimer.Cancel()
	m.gapTimer.Cancel()
	m.dataTimer.Cancel()
	m.ackTimer.Cancel()
	m.phase = xIdle
	m.busy = false
	m.x.Sleep()
}

// maybeSend kicks the sender when traffic is pending.
func (m *xmacNode) maybeSend() {
	if !m.busy && m.head() != nil {
		m.attemptSend()
	}
}

// attemptSend begins the strobe procedure for the head-of-queue packet.
func (m *xmacNode) attemptSend() {
	m.tracef("attemptSend busy=%v qlen=%d", m.busy, m.queueLen())
	if m.busy || m.head() == nil || m.isSink() {
		return
	}
	m.busy = true
	m.x.Listen()
	if m.x.CarrierBusy() {
		// Channel occupied: back off within half a wakeup interval.
		m.busy = false
		m.x.Sleep()
		m.eng.After(m.rng.Float64()*m.tw/2, m.attemptSendFn)
		return
	}
	m.peer = m.parent
	m.strobeUntil = m.eng.Now() + m.tw + 2*(m.x.Airtime(m.strobeBytes)+m.gap)
	m.sendStrobe()
}

func (m *xmacNode) sendStrobe() {
	m.tracef("sendStrobe")
	m.phase = xGap // the gap follows the strobe's OnTxDone
	m.x.Send(m.newFrame(FrameStrobe, m.peer, m.strobeBytes, nil))
}

// gapExpired fires when no early ACK arrived within the inter-strobe gap.
func (m *xmacNode) gapExpired() {
	m.tracef("gapExpired")
	if m.phase != xGap {
		return
	}
	if m.eng.Now() < m.strobeUntil {
		m.sendStrobe()
		return
	}
	// Strobed a full wakeup interval: the receiver must be awake now.
	m.sendData()
}

func (m *xmacNode) sendData() {
	m.tracef("sendData")
	m.gapTimer.Cancel()
	m.phase = xWaitAck
	m.x.Send(m.newFrame(FrameData, m.peer, m.dataBytes, m.head()))
}

// ackExpired fires when the data ACK never came.
func (m *xmacNode) ackExpired() {
	m.tracef("ackExpired retries=%d", m.retries)
	if m.phase != xWaitAck {
		return
	}
	m.retries++
	if m.retries > xmacMaxRetries {
		m.pop()
		m.metrics.recordDropped()
		m.retries = 0
	}
	m.finishProcedure()
	m.eng.After(m.rng.Float64()*m.tw, m.maybeSendFn)
}

// OnTxDone implements FrameHandler.
func (m *xmacNode) OnTxDone(f *Frame) {
	m.tracef("OnTxDone %v", f.Kind)
	switch f.Kind {
	case FrameStrobe:
		m.gapTimer = m.eng.After(m.gap, m.gapExpiredFn)
	case FrameData:
		ackWait := m.turn + m.x.Airtime(m.ackBytes) + m.turn + m.x.prof.CCA
		m.ackTimer = m.eng.After(ackWait, m.ackExpiredFn)
	case FrameStrobeAck:
		// Receiver: now expect the data frame.
		m.phase = xWaitData
		wait := m.x.Airtime(m.strobeBytes) + m.gap + m.x.Airtime(m.dataBytes) + 4*m.turn
		m.dataTimer = m.eng.After(wait, m.dataExpiredFn)
	case FrameAck:
		// Receiver handshake complete.
		m.finishProcedure()
		m.maybeSend()
	}
}

// dataExpired fires when the announced data frame never arrived.
func (m *xmacNode) dataExpired() {
	if m.phase != xWaitData {
		return
	}
	m.finishProcedure()
	m.maybeSend()
}

// OnFrame implements FrameHandler.
func (m *xmacNode) OnFrame(f *Frame) {
	m.tracef("OnFrame %v src=%d dst=%d", f.Kind, int(f.Src), int(f.Dst))
	switch m.phase {
	case xPolling:
		if f.Kind == FrameStrobe && f.Dst == m.id {
			// Addressed strobe: become the receiver, send the early ACK.
			m.pollTimer.Cancel()
			m.peer = f.Src
			m.phase = xWaitData // refined after the strobe-ACK's OnTxDone
			m.eng.After(m.turn, m.sendStrobeAckFn)
			return
		}
		// Foreign traffic: the address in the strobe lets us sleep at
		// once — X-MAC's cheap overhearing.
		m.pollTimer.Cancel()
		m.finishProcedure()
	case xGap:
		if f.Kind == FrameStrobeAck && f.Dst == m.id {
			m.sendData()
		}
	case xWaitData:
		if f.Kind == FrameData && f.Dst == m.id {
			m.dataTimer.Cancel()
			m.peer = f.Src
			m.eng.After(m.turn, m.sendAckFn)
			m.accept(f.Packet)
		}
	case xWaitAck:
		if f.Kind == FrameAck && f.Dst == m.id {
			m.ackTimer.Cancel()
			m.pop()
			m.retries = 0
			m.finishProcedure()
			m.maybeSend()
		}
	}
}

var _ macLayer = (*xmacNode)(nil)
