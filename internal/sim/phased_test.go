package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

func phasedSimNetwork(t *testing.T) *topology.Network {
	t.Helper()
	net, err := (topology.LineGen{Nodes: 4, Spacing: 0.8}).Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func phasedSimConfig(t *testing.T, m traffic.Model, duration float64) Config {
	t.Helper()
	prof, err := radio.Profile("cc2420")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Protocol: "xmac",
		Network:  phasedSimNetwork(t),
		Radio:    prof,
		Traffic:  m,
		Payload:  32,
		Duration: duration,
		Seed:     3,
	}
}

// TestRunPhasedValidation exercises the rejection cases.
func TestRunPhasedValidation(t *testing.T) {
	cfg := phasedSimConfig(t, traffic.Periodic{Rate: 0.05}, 100)
	cases := []struct {
		name   string
		mutate func(*Config)
		phases []PhaseConfig
	}{
		{"no phases", nil, nil},
		{"no traffic", func(c *Config) { c.Traffic = nil },
			[]PhaseConfig{{Params: opt.Vector{0.3}, Until: 100}}},
		{"non-increasing", nil, []PhaseConfig{
			{Params: opt.Vector{0.3}, Until: 50}, {Params: opt.Vector{0.2}, Until: 50}}},
		{"short of duration", nil, []PhaseConfig{{Params: opt.Vector{0.3}, Until: 60}}},
		{"bad arity", nil, []PhaseConfig{{Params: opt.Vector{0.3, 1}, Until: 100}}},
		{"bad param", nil, []PhaseConfig{{Params: opt.Vector{-1}, Until: 100}}},
	}
	for _, tc := range cases {
		c := cfg
		if tc.mutate != nil {
			tc.mutate(&c)
		}
		if _, err := RunPhased(c, tc.phases); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestRunPhasedDeterminism asserts equal inputs reproduce a multi-phase
// run exactly, and that the parameter swap actually changes the run.
func TestRunPhasedDeterminism(t *testing.T) {
	m := traffic.Phased{Phases: []traffic.Phase{
		{Model: traffic.Periodic{Rate: 0.05}, Duration: 60},
		{Model: traffic.Bursty{PeakRate: 0.5, OnMean: 5, OffMean: 10}, Duration: 60},
	}}
	cfg := phasedSimConfig(t, m, 120)
	phases := []PhaseConfig{
		{Params: opt.Vector{0.5}, Until: 60},
		{Params: opt.Vector{0.1}, Until: 120},
	}
	a, err := RunPhased(cfg, phases)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPhased(cfg, phases)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) || !reflect.DeepEqual(a.Energy, b.Energy) || a.Events != b.Events {
		t.Error("equal phased runs diverged")
	}
	flat := []PhaseConfig{
		{Params: opt.Vector{0.5}, Until: 120},
	}
	c, err := RunPhased(cfg, flat)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Energy, c.Energy) {
		t.Error("parameter swap had no effect on the run")
	}
}

// TestRunPhasedOnePhaseMatchesRun asserts the degenerate contract: a
// one-phase RunPhased is bit-identical to Run — same per-node start and
// generator interleaving, same arrival-delta arithmetic, so the very
// same event sequence.
func TestRunPhasedOnePhaseMatchesRun(t *testing.T) {
	m := traffic.Phased{Phases: []traffic.Phase{
		{Model: traffic.Periodic{Rate: 0.05}, Duration: 60},
		{Model: traffic.Bursty{PeakRate: 0.5, OnMean: 5, OffMean: 10}, Duration: 60},
	}}
	for _, proto := range []struct {
		name   string
		params opt.Vector
	}{
		{"xmac", opt.Vector{0.3}},
		{"bmac", opt.Vector{0.3}},
		{"dmac", opt.Vector{1.2, 0.004}},
		{"lmac", opt.Vector{7, 0.09}},
	} {
		cfg := phasedSimConfig(t, m, 120)
		cfg.Protocol = proto.name
		phased, err := RunPhased(cfg, []PhaseConfig{{Params: proto.params, Until: 120}})
		if err != nil {
			t.Fatalf("%s: %v", proto.name, err)
		}
		cfg.Params = proto.params
		fixed, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", proto.name, err)
		}
		if !reflect.DeepEqual(phased, fixed) {
			t.Errorf("%s: one-phase RunPhased diverged from Run:\nphased: gen=%d del=%d events=%d\nfixed:  gen=%d del=%d events=%d",
				proto.name, phased.Metrics.Generated(), phased.Metrics.Delivered(), phased.Events,
				fixed.Metrics.Generated(), fixed.Metrics.Delivered(), fixed.Events)
		}
	}
}

// TestRunPhasedPreservesQueues asserts the epoch swap loses no queued
// packet: a workload whose entire load arrives just before the boundary
// must still be delivered under the next regime's parameters.
func TestRunPhasedPreservesQueues(t *testing.T) {
	// All arrivals land in (0, 40): with a 0.6 s wakeup interval on a
	// 3-hop line, deliveries necessarily straddle the 41 s boundary.
	m := traffic.Phased{Phases: []traffic.Phase{
		{Model: traffic.Periodic{Rate: 0.1}, Duration: 40},
		{Model: traffic.Bursty{PeakRate: 1e-9, OnMean: 1e-6, OffMean: 1e6}, Duration: 160},
	}}
	cfg := phasedSimConfig(t, m, 200)
	res, err := RunPhased(cfg, []PhaseConfig{
		{Params: opt.Vector{0.6}, Until: 41},
		{Params: opt.Vector{0.2}, Until: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	met := res.Metrics
	if met.Generated() == 0 {
		t.Fatal("no packets generated")
	}
	if met.Delivered()+met.Dropped() != met.Generated() {
		t.Errorf("%d generated, %d delivered + %d dropped: packets lost across the boundary",
			met.Generated(), met.Delivered(), met.Dropped())
	}
	if met.DeliveryRatio() < 0.9 {
		t.Errorf("delivery ratio %.3f after the swap", met.DeliveryRatio())
	}
}

// TestRunPhasedEnergyContinuity asserts the accounting carries across
// boundaries without a gap: per-node radio time can never exceed the
// run duration, total consumption lies between the all-sleep and
// all-listen extremes, and a two-phase run with identical parameters
// consumes about what the fixed run does.
func TestRunPhasedEnergyContinuity(t *testing.T) {
	m := traffic.Phased{Phases: []traffic.Phase{
		{Model: traffic.Periodic{Rate: 0.02}, Duration: 100},
		{Model: traffic.Periodic{Rate: 0.02}, Duration: 100},
	}}
	cfg := phasedSimConfig(t, m, 200)
	prof := cfg.Radio
	res, err := RunPhased(cfg, []PhaseConfig{
		{Params: opt.Vector{0.4}, Until: 100},
		{Params: opt.Vector{0.4}, Until: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Energy {
		if res.ListenTime[i]+res.TxTime[i] > cfg.Duration+1e-9 {
			t.Errorf("node %d: active %v s of a %v s run",
				i, res.ListenTime[i]+res.TxTime[i], cfg.Duration)
		}
		min := cfg.Duration * prof.Power(radio.Sleep)
		max := cfg.Duration * prof.Power(radio.Tx)
		if res.Energy[i] < min-1e-9 || res.Energy[i] > max+1e-9 {
			t.Errorf("node %d: energy %v J outside [%v, %v]", i, res.Energy[i], min, max)
		}
	}
	// The same workload under a fixed run: the swap must not open an
	// accounting gap (small drift from the boundary quiesce is fine).
	fixed := cfg
	fixed.Params = opt.Vector{0.4}
	ref, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	var total, refTotal float64
	for i := range res.Energy {
		total += res.Energy[i]
		refTotal += ref.Energy[i]
	}
	if r := total / refTotal; math.Abs(r-1) > 0.1 {
		t.Errorf("phased/fixed network energy ratio %.3f", r)
	}
}

// TestDropPending asserts the engine boundary primitive: everything
// pending disappears, the clock and the processed count stay put, and
// the engine schedules cleanly afterwards.
func TestDropPending(t *testing.T) {
	eng := NewEngine()
	fired := 0
	eng.After(1, func() { fired++ })
	eng.Run(2)
	eng.After(3, func() { t.Error("dropped event fired") })
	eng.After(4, func() { t.Error("dropped event fired") })
	eng.DropPending()
	if eng.QueueLen() != 0 {
		t.Fatalf("queue %d after drop", eng.QueueLen())
	}
	if eng.Now() != 2 || eng.Processed() != 1 {
		t.Fatalf("drop moved the clock (%v) or the counter (%d)", eng.Now(), eng.Processed())
	}
	eng.After(1, func() { fired++ })
	eng.Run(10)
	if fired != 2 {
		t.Fatalf("%d events fired, want 2", fired)
	}
}
