package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// Config describes one simulation run. The parameter vector uses the
// same coordinates as the corresponding analytic model in
// internal/macmodel, so an optimized configuration can be replayed in
// the simulator verbatim.
type Config struct {
	// Protocol is "xmac", "dmac" or "lmac".
	Protocol string
	// Network is the explicit topology (node 0 is the sink).
	Network *topology.Network
	// Radio is the transceiver profile.
	Radio radio.Radio
	// Params is the protocol parameter vector (macmodel coordinates).
	Params opt.Vector
	// SampleRate is the per-node application rate in packets/second. It
	// drives the legacy phase-shifted periodic generator and is ignored
	// when Traffic is set.
	SampleRate float64
	// Traffic optionally replaces the periodic generator with a traffic
	// model: every node replays the model's precomputed arrival schedule
	// (bursty, event-correlated, heterogeneous, ...). The schedules are
	// derived from Seed, keeping runs exactly reproducible.
	Traffic traffic.Model
	// Payload is the application payload in bytes.
	Payload int
	// Duration is the simulated time in seconds.
	Duration float64
	// Seed drives every random choice; equal seeds reproduce runs
	// exactly. Networks stamped with lossy links additionally derive
	// per-directed-link reception-draw streams from it.
	Seed int64
	// Capture enables the power-capture collision model: instead of
	// mutual corruption, a frame whose per-link received power exceeds
	// the competing frame's by at least CaptureDB survives the overlap.
	Capture bool
	// CaptureDB is the capture power margin in dB; non-positive selects
	// channel.DefaultCaptureDB. Ignored unless Capture is set.
	CaptureDB float64
	// Failures optionally injects node crashes and recoveries (explicit
	// schedule or seeded churn). Runs with failures are executed by the
	// fault runner; see RunFaulty.
	Failures *FailureConfig
	// Battery optionally gives every non-sink node a finite energy
	// store; a node dies permanently when its residual hits zero.
	Battery *BatteryConfig
	// Scheduler selects the engine's event-queue implementation. The
	// zero value is the timing wheel; SchedulerHeap keeps the reference
	// min-heap available for differential testing. Both implement the
	// identical (at, seq) total order, so the choice never changes
	// results — only the constant factors of the event loop.
	Scheduler SchedulerKind
	// Shared optionally attaches a pre-built immutable world (see
	// Materialize) so repeated runs over the same scenario skip
	// re-deriving neighbour tables, link tables, slot plans and arrival
	// schedules. Tables that do not match this config are ignored, so a
	// mismatched Shared never changes results.
	Shared *Materialized
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch c.Protocol {
	case "xmac", "bmac":
		if len(c.Params) != 1 {
			return fmt.Errorf("sim: %s expects 1 parameter (wakeup interval), got %d", c.Protocol, len(c.Params))
		}
	case "dmac":
		if len(c.Params) != 2 {
			return fmt.Errorf("sim: dmac expects 2 parameters (frame, slot), got %d", len(c.Params))
		}
	case "lmac":
		if len(c.Params) != 2 {
			return fmt.Errorf("sim: lmac expects 2 parameters (slots, slot length), got %d", len(c.Params))
		}
	default:
		return fmt.Errorf("sim: unknown protocol %q", c.Protocol)
	}
	if c.Network == nil {
		return fmt.Errorf("sim: nil network")
	}
	if err := c.Radio.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for i, p := range c.Params {
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("sim: parameter %d = %v must be positive and finite", i, p)
		}
	}
	if c.SampleRate < 0 {
		return fmt.Errorf("sim: sample rate %v must be non-negative", c.SampleRate)
	}
	if c.Traffic != nil {
		if err := c.Traffic.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if c.Payload <= 0 {
		return fmt.Errorf("sim: payload %d must be positive", c.Payload)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: duration %v must be positive", c.Duration)
	}
	return c.validateFaults()
}

// Result carries the measured outcomes of a run.
type Result struct {
	// Duration is the simulated time.
	Duration float64
	// Metrics holds the application-level delivery statistics.
	Metrics *Metrics
	// Collisions counts corrupted receptions.
	Collisions int
	// ChannelLosses counts receptions lost to the per-link delivery draw
	// (0 on a perfect channel).
	ChannelLosses int
	// Captures counts overlaps a frame survived via the capture effect
	// (0 when capture is disabled).
	Captures int
	// Events is the number of simulator events processed.
	Events uint64
	// PeakPending is the high-water mark of the scheduler's pending
	// event count — how deep the event queue ever got.
	PeakPending int
	// WheelPromotions counts events that landed beyond the timing
	// wheel's one-second horizon and were later promoted into the
	// wheel in bulk. Always 0 under SchedulerHeap; near 0 on healthy
	// duty-cycle workloads.
	WheelPromotions uint64
	// Energy[i] is node i's consumption over the whole run, in joules.
	Energy []float64
	// ListenTime[i] is node i's idle-listen + receive time in seconds
	// (duty-cycle diagnostics).
	ListenTime []float64
	// TxTime[i] is node i's transmit time in seconds.
	TxTime []float64

	// Survivability counters, all zero on failure-free runs.
	//
	// Deaths and Recoveries count liveness transitions (a battery death
	// is a death that never recovers); DeadAtEnd is the body count at
	// the horizon. StrandedPackets counts packets lost in dead relays'
	// forwarding queues at the crash instants. DeadNodeSeconds is the
	// time integral of the dead-node count; PartitionSeconds the time
	// any alive node's tree path to the sink crossed a dead relay.
	// Rebargains counts degradation-aware re-bargaining epochs and
	// DegradedRebargains the subset that fell back to the last-good
	// vector (infeasible or failed re-solves).
	Deaths             int
	Recoveries         int
	DeadAtEnd          int
	StrandedPackets    int
	DeadNodeSeconds    float64
	PartitionSeconds   float64
	Rebargains         int
	DegradedRebargains int
}

// DeadNodeFraction normalizes DeadNodeSeconds to the run: the mean
// fraction of the (non-sink) population that was down.
func (r *Result) DeadNodeFraction(n int) float64 {
	if n <= 1 || r.Duration <= 0 {
		return 0
	}
	return r.DeadNodeSeconds / (r.Duration * float64(n-1))
}

// PartitionFraction is the fraction of the run during which at least
// one alive node was cut off from the sink by a dead relay.
func (r *Result) PartitionFraction() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return r.PartitionSeconds / r.Duration
}

// DutyCycle returns the fraction of the run node id spent with the
// radio active (listen, receive or transmit) — the quantity duty-cycled
// MACs exist to minimize.
func (r *Result) DutyCycle(id topology.NodeID) float64 {
	return (r.ListenTime[id] + r.TxTime[id]) / r.Duration
}

// EnergyPerWindow rescales node id's measured consumption to joules per
// accounting window, the unit the analytic models report.
func (r *Result) EnergyPerWindow(id topology.NodeID, window float64) float64 {
	return r.Energy[id] / r.Duration * window
}

// MeanRingEnergyPerWindow averages EnergyPerWindow over all nodes of a
// ring — the quantity to compare against Model.EnergyAt(x, ring).
func (r *Result) MeanRingEnergyPerWindow(net *topology.Network, ring int, window float64) float64 {
	ids := net.NodesAtRing(ring)
	if len(ids) == 0 {
		return 0
	}
	sum := 0.0
	for _, id := range ids {
		sum += r.EnergyPerWindow(id, window)
	}
	return sum / float64(len(ids))
}

// Run executes the configured simulation to completion.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: when ctx is done the
// event loop aborts within a few thousand events and the context's
// error is returned (no partial result). An uncancellable ctx — nil,
// context.Background() — is never polled, so such runs are
// event-for-event identical to Run; threading a cancellable context
// changes nothing but the ability to abort.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.faulty() {
		// Fault-injected runs need the epoch-swap machinery; the static
		// (no re-bargaining) fault runner handles them. Failure-free runs
		// never take this branch, keeping their event trace byte-stable.
		return RunFaultyContext(ctx, cfg, nil, nil)
	}
	eng := NewEngineSched(cfg.Scheduler)
	med := newMediumFor(eng, cfg)
	metrics := &Metrics{}

	n := cfg.Network.N()
	nodes := buildNodes(cfg, eng, med, metrics)
	macs, err := buildMACs(cfg.Protocol, cfg.Params, cfg.Network, nodes, cfg.Shared)
	if err != nil {
		return nil, err
	}
	for i, mac := range macs {
		med.Transceiver(topology.NodeID(i)).SetHandler(mac)
	}

	var nextID int64
	arena := &packetArena{}
	pre := cfg.Shared.arrivalsFor(&cfg)
	for i, mac := range macs {
		mac.start()
		if cfg.Traffic != nil {
			newScheduledGenerator(eng, cfg, pre, macs[i], topology.NodeID(i), metrics, &nextID, arena)
		} else {
			newNodeGenerator(eng, cfg, macs[i], cfg.Network, topology.NodeID(i), metrics, &nextID, arena)
		}
	}

	if err := eng.RunContext(ctx, cfg.Duration); err != nil {
		return nil, fmt.Errorf("sim: run aborted: %w", err)
	}
	return collectResult(cfg.Duration, eng, med, metrics, n), nil
}

// newMediumFor builds the run's medium with the configured channel
// behaviour: per-link delivery draws when the network carries lossy
// links, power capture when requested. Run and RunPhased share it, so
// the two runners can never disagree on the channel. A matching
// cfg.Shared supplies the neighbour and link-PRR/gain tables; the
// per-directed-link draw streams are always fresh (they are per-seed
// mutable state, never shared).
func newMediumFor(eng *Engine, cfg Config) *Medium {
	var sh *Materialized
	if cfg.Shared.structuralFor(&cfg) {
		sh = cfg.Shared
	}
	med := newMedium(eng, cfg.Network, cfg.Radio, sh)
	med.enableLoss(cfg.Seed)
	if cfg.Capture {
		med.enableCapture(cfg.CaptureDB)
	}
	return med
}

// buildNodes constructs the per-node state of a run. The seed formula
// gives every node an independent random stream, so runs stay
// reproducible even if one node's draw count changes; Run and RunPhased
// share this construction — part of what makes a one-phase RunPhased
// bit-identical to Run.
func buildNodes(cfg Config, eng *Engine, med *Medium, metrics *Metrics) []*node {
	n := cfg.Network.N()
	nodes := make([]*node, n)
	parent := cfg.Network.Parent
	if cfg.Shared.structuralFor(&cfg) {
		parents := cfg.Shared.parents
		parent = func(id topology.NodeID) topology.NodeID { return parents[id] }
	}
	for i := 0; i < n; i++ {
		nodeRng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1000003 + 1))
		nodes[i] = newNode(eng, cfg.Network, med, topology.NodeID(i), parent(topology.NodeID(i)), nodeRng, metrics, cfg.Payload)
	}
	return nodes
}

// buildMACs constructs one protocol instance per node over the shared
// node state. Run uses it once; RunPhased calls it at every epoch
// boundary with the next parameter vector, reusing the same nodes so
// queues, randomness streams and metrics carry across the swap. A
// matching sh supplies the LMAC slot plan (AssignSlots is the one
// expensive derivation here); epochs that re-bargain onto a different
// slot count recompute their own.
func buildMACs(protocol string, params opt.Vector, net *topology.Network, nodes []*node, sh *Materialized) ([]macLayer, error) {
	n := net.N()
	// LMAC needs a global two-hop conflict-free schedule.
	var slots []int
	var bySlot map[int]topology.NodeID
	if protocol == "lmac" {
		frameSlots := int(math.Round(params[0]))
		if sh != nil && sh.net == net {
			slots, bySlot = sh.slots, sh.bySlot
			if sh.slotsFor != frameSlots {
				slots, bySlot = nil, nil
			}
		}
		if slots == nil {
			var err error
			slots, _, err = net.AssignSlots(frameSlots)
			if err != nil {
				return nil, fmt.Errorf("sim: lmac schedule: %w", err)
			}
			bySlot = make(map[int]topology.NodeID, n)
			for id, s := range slots {
				bySlot[s] = topology.NodeID(id)
			}
		}
	}
	macs := make([]macLayer, n)
	for i := 0; i < n; i++ {
		switch protocol {
		case "xmac":
			macs[i] = newXMACNode(nodes[i], params[0])
		case "bmac":
			macs[i] = newBMACNode(nodes[i], params[0])
		case "dmac":
			macs[i] = newDMACNode(nodes[i], params[0], params[1], net.Depth())
		case "lmac":
			macs[i] = newLMACNode(nodes[i], int(math.Round(params[0])), params[1], slots[i], bySlot)
		}
	}
	return macs, nil
}

// collectResult assembles the public result after the engine drained.
func collectResult(duration float64, eng *Engine, med *Medium, metrics *Metrics, n int) *Result {
	res := &Result{
		Duration:        duration,
		Metrics:         metrics,
		Collisions:      med.Collisions(),
		ChannelLosses:   med.ChannelLosses(),
		Captures:        med.Captures(),
		Events:          eng.Processed(),
		PeakPending:     eng.PeakPending(),
		WheelPromotions: eng.OverflowPromotions(),
		Energy:          make([]float64, n),
		ListenTime:      make([]float64, n),
		TxTime:          make([]float64, n),
	}
	for i := 0; i < n; i++ {
		x := med.Transceiver(topology.NodeID(i))
		x.finish()
		res.Energy[i] = x.Energy()
		res.ListenTime[i] = x.TimeIn(radio.Listen) + x.TimeIn(radio.Rx)
		res.TxTime[i] = x.TimeIn(radio.Tx)
	}
	return res
}

// newNodeGenerator wires the periodic application sampling of one node.
// Packets come from the run's arena, so steady-state sampling does not
// hit the heap.
func newNodeGenerator(eng *Engine, cfg Config, mac macLayer, net *topology.Network,
	id topology.NodeID, metrics *Metrics, nextID *int64, arena *packetArena) {
	if id == 0 || cfg.SampleRate <= 0 {
		return
	}
	period := 1 / cfg.SampleRate
	genRng := rand.New(rand.NewSource(cfg.Seed ^ (int64(id)*2654435761 + 7)))
	var tick func()
	tick = func() {
		*nextID++
		p := arena.new()
		p.ID = *nextID
		p.Origin = id
		p.Created = eng.Now()
		metrics.recordGenerated()
		mac.sampled(p)
		eng.After(period, tick)
	}
	eng.After(genRng.Float64()*period, tick)
}

// newScheduledGenerator replays one node's precomputed traffic-model
// arrival schedule. The whole schedule is materialized up front (it is
// deterministic in cfg.Seed) — or taken from the shared world's
// pre slices when the caller holds a matching Materialized — then
// walked by scheduleArrivals' chained callback, so steady-state
// generation allocates nothing beyond the schedule slice. (At time
// zero, scheduleArrivals' first delta times[0]-Now() is bit-identical
// to times[0].)
func newScheduledGenerator(eng *Engine, cfg Config, pre [][]float64, mac macLayer,
	id topology.NodeID, metrics *Metrics, nextID *int64, arena *packetArena) {
	if id == 0 {
		return
	}
	var times []float64
	if pre != nil {
		times = pre[id]
	} else {
		times = cfg.Traffic.Arrivals(cfg.Network, id, cfg.Seed, cfg.Duration)
	}
	if len(times) == 0 {
		return
	}
	scheduleArrivals(eng, times, mac, id, metrics, nextID, arena)
}
