package sim

import (
	"math/rand"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/topology"
)

// queueCap bounds the per-node forwarding queue; overflow drops the
// oldest packet (and counts it) rather than growing without bound.
const queueCap = 64

// macLayer is what every protocol implementation exposes to the runner.
type macLayer interface {
	FrameHandler
	// start installs schedules and puts the radio into its initial state.
	start()
	// sampled hands the MAC a freshly generated application packet.
	sampled(p *Packet)
}

// node bundles everything one node's MAC needs: radio, routing, queue,
// randomness and metrics. The sink is node 0; it runs the same MAC with
// an empty generator and delivers received packets to the metrics.
type node struct {
	eng     *Engine
	net     *topology.Network
	x       *Transceiver
	id      topology.NodeID
	parent  topology.NodeID
	rng     *rand.Rand
	metrics *Metrics
	queue   []*Packet

	dataBytes   int
	ackBytes    int
	strobeBytes int
	ctrlBytes   int
}

func newNode(eng *Engine, net *topology.Network, med *Medium, id topology.NodeID,
	rng *rand.Rand, metrics *Metrics, payload int) *node {
	return &node{
		eng:         eng,
		net:         net,
		x:           med.Transceiver(id),
		id:          id,
		parent:      net.Parent(id),
		rng:         rng,
		metrics:     metrics,
		dataBytes:   payload + macmodel.DataHeaderBytes,
		ackBytes:    macmodel.AckBytes,
		strobeBytes: macmodel.StrobeBytes,
		ctrlBytes:   macmodel.CtrlBytes,
	}
}

// isSink reports whether this node is the data sink.
func (n *node) isSink() bool { return n.id == 0 }

// push appends a packet to the forwarding queue, dropping the oldest on
// overflow.
func (n *node) push(p *Packet) {
	if len(n.queue) >= queueCap {
		n.queue = n.queue[1:]
		n.metrics.recordDropped()
	}
	n.queue = append(n.queue, p)
}

// head returns the next packet to send without removing it.
func (n *node) head() *Packet {
	if len(n.queue) == 0 {
		return nil
	}
	return n.queue[0]
}

// pop removes the head packet.
func (n *node) pop() {
	if len(n.queue) > 0 {
		n.queue = n.queue[1:]
	}
}

// accept handles a data frame addressed to this node: the sink records
// the delivery, forwarders enqueue for the next hop.
func (n *node) accept(p *Packet) {
	if n.isSink() {
		n.metrics.recordDelivery(p.Origin, n.eng.Now()-p.Created)
		return
	}
	n.push(p)
}
