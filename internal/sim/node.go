package sim

import (
	"math/rand"

	"github.com/edmac-project/edmac/internal/macmodel"
	"github.com/edmac-project/edmac/internal/topology"
)

// queueCap bounds the per-node forwarding queue; overflow sheds the
// incoming packet (and counts it) rather than growing without bound.
const queueCap = 64

// packetArenaBlock is how many packets a packetArena allocates at once.
const packetArenaBlock = 256

// packetArena bump-allocates packets in blocks so a run does one heap
// allocation per packetArenaBlock samples instead of one per sample.
// Packets are never returned individually — duplicates of one packet can
// live in several queues at once (a lost ACK makes the sender retry a
// packet its parent already forwarded), so individual reuse would
// corrupt in-flight state; the whole arena is dropped with the run.
type packetArena struct {
	block []Packet
}

// new returns a fresh zero packet.
func (a *packetArena) new() *Packet {
	if len(a.block) == 0 {
		a.block = make([]Packet, packetArenaBlock)
	}
	p := &a.block[0]
	a.block = a.block[1:]
	return p
}

// macLayer is what every protocol implementation exposes to the runner.
type macLayer interface {
	FrameHandler
	// start installs schedules and puts the radio into its initial state.
	start()
	// sampled hands the MAC a freshly generated application packet.
	sampled(p *Packet)
}

// node bundles everything one node's MAC needs: radio, routing, queue,
// randomness and metrics. The sink is node 0; it runs the same MAC with
// an empty generator and delivers received packets to the metrics.
// The forwarding queue is a fixed ring buffer: push/pop never allocate.
type node struct {
	eng     *Engine
	net     *topology.Network
	x       *Transceiver
	id      topology.NodeID
	parent  topology.NodeID
	rng     *rand.Rand
	metrics *Metrics

	queue [queueCap]*Packet
	qhead int
	qlen  int

	dataBytes   int
	ackBytes    int
	strobeBytes int
	ctrlBytes   int
}

func newNode(eng *Engine, net *topology.Network, med *Medium, id topology.NodeID,
	parent topology.NodeID, rng *rand.Rand, metrics *Metrics, payload int) *node {
	return &node{
		eng:         eng,
		net:         net,
		x:           med.Transceiver(id),
		id:          id,
		parent:      parent,
		rng:         rng,
		metrics:     metrics,
		dataBytes:   payload + macmodel.DataHeaderBytes,
		ackBytes:    macmodel.AckBytes,
		strobeBytes: macmodel.StrobeBytes,
		ctrlBytes:   macmodel.CtrlBytes,
	}
}

// isSink reports whether this node is the data sink.
func (n *node) isSink() bool { return n.id == 0 }

// newFrame builds a pooled frame originating at this node. The medium
// reclaims it once the transmission ends (see FrameHandler).
//
//edvet:hotpath
func (n *node) newFrame(kind FrameKind, dst topology.NodeID, bytes int, pkt *Packet) *Frame {
	f := n.x.med.newFrame()
	f.Kind = kind
	f.Src = n.id
	f.Dst = dst
	f.Bytes = bytes
	f.Packet = pkt
	return f
}

// push appends a packet to the forwarding queue. A full queue sheds the
// incoming packet: evicting the head instead would silently swap out
// the packet the MAC may be mid-handshake on, so the later pop() would
// discard a different packet than the one just acknowledged, corrupting
// the dropped/delivered accounting.
//
//edvet:hotpath
func (n *node) push(p *Packet) {
	if n.qlen == queueCap {
		n.metrics.recordDropped()
		return
	}
	n.queue[(n.qhead+n.qlen)%queueCap] = p
	n.qlen++
}

// head returns the next packet to send without removing it.
//
//edvet:hotpath
func (n *node) head() *Packet {
	if n.qlen == 0 {
		return nil
	}
	return n.queue[n.qhead]
}

// pop removes the head packet.
//
//edvet:hotpath
func (n *node) pop() {
	if n.qlen > 0 {
		n.queue[n.qhead] = nil
		n.qhead = (n.qhead + 1) % queueCap
		n.qlen--
	}
}

// queueLen returns the number of queued packets.
func (n *node) queueLen() int { return n.qlen }

// clearQueue empties the forwarding queue — a crashed node's RAM is
// gone. The caller accounts the loss (stranded packets) before calling.
func (n *node) clearQueue() {
	for n.qlen > 0 {
		n.pop()
	}
}

// accept handles a data frame addressed to this node: the sink records
// the delivery, forwarders enqueue for the next hop. Each packet counts
// once — a second copy arriving after a lost ACK made the sender retry
// is a duplicate, kept out of the delivery count and the delay samples
// (it would bias the mean and p95 and push DeliveryRatio beyond 1).
//
//edvet:hotpath
func (n *node) accept(p *Packet) {
	if n.isSink() {
		if p.delivered {
			n.metrics.recordDuplicate()
			return
		}
		p.delivered = true
		n.metrics.recordDelivery(p.Origin, n.eng.Now()-p.Created)
		return
	}
	n.push(p)
}
