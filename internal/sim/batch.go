package sim

import (
	"context"

	"github.com/edmac-project/edmac/internal/par"
)

// BatchResult pairs one Config's outcome with its error (nil-Result on
// error, nil-error on success).
type BatchResult struct {
	Result *Result
	Err    error
}

// RunBatch executes independent simulation configs concurrently on a
// pool of `workers` goroutines (one per CPU when workers < 1) and
// returns one BatchResult per config, in config order.
//
// Every run owns its entire world — engine, medium, transceivers, MAC
// state and RNG streams are built fresh inside Run, and the shared
// inputs (topology.Network, radio.Radio) are immutable — so results are
// bit-identical to calling Run sequentially on each config; concurrency
// changes only the wall clock. Cancelling ctx skips configs not yet
// started (their entries carry ctx.Err(), and an already-cancelled
// context runs nothing) and aborts runs already in flight via
// RunContext, so a cancelled batch returns within a few thousand
// events per worker; aborted entries carry the context's error.
func RunBatch(ctx context.Context, cfgs []Config, workers int) []BatchResult {
	out := make([]BatchResult, len(cfgs))
	err := par.ForEach(ctx, len(cfgs), workers, func(i int) {
		res, err := RunContext(ctx, cfgs[i])
		out[i] = BatchResult{Result: res, Err: err}
	})
	if err != nil {
		// Configs the pool never started carry the cancellation error.
		for i := range out {
			if out[i].Result == nil && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}
