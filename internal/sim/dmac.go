package sim

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/topology"
)

// dmacPhase is the protocol state of one DMAC node.
type dmacPhase int

const (
	dSleep   dmacPhase = iota // between slots
	dRxSlot                   // listening in the receive slot
	dContend                  // waiting out the contention backoff
	dWaitAck                  // data sent, waiting for the ACK
)

// dmacMaxRetries bounds per-packet attempts (one per frame).
const dmacMaxRetries = 8

// dmacTrace enables developer tracing in tests.
var dmacTrace = false

func (m *dmacNode) tracef(format string, args ...interface{}) {
	if dmacTrace {
		fmt.Printf("%.6f dmac[%d] phase=%d "+format+"\n",
			append([]interface{}{m.eng.Now(), int(m.id), int(m.phase)}, args...)...)
	}
}

// dmacNode is the packet-level DMAC implementation: a staggered wakeup
// ladder where a node at depth d opens a receive slot aligned with its
// children's transmit slot and forwards in the next slot, so data rides
// a single wave to the sink each frame. Network-wide slot alignment is
// assumed, as in the protocol (DMAC relies on time synchronization).
// Recurring callbacks are allocated once at construction.
type dmacNode struct {
	*node
	frame float64 // frame length T
	mu    float64 // slot length µ
	depth int     // network depth D
	ring  int     // this node's depth d

	phase    dmacPhase
	retries  int
	frameIdx int  // index of the next frame to arm
	base     Time // schedule anchor: the instant start() ran
	// skipFrames mutes the transmit slot for a few frames after a failed
	// attempt (binary exponential backoff in frame units): two hidden
	// senders whose data collided would otherwise retry in the very same
	// slot forever, since CCA cannot see across two hops.
	skipFrames int

	cw      float64 // contention window
	turn    float64
	ackWait float64

	ackTimer Timer

	ackDst topology.NodeID // destination of the pending ACK reply

	openRxSlotFn     func()
	closeRxSlotFn    func()
	openTxSlotFn     func()
	contentionDoneFn func()
	ackExpiredFn     func()
	nextFrameFn      func()
	sendAckFn        func()
}

func newDMACNode(n *node, frame, mu float64, depth int) *dmacNode {
	d := &dmacNode{
		node:  n,
		frame: frame,
		mu:    mu,
		depth: depth,
		ring:  n.net.Ring(n.id),
		turn:  n.x.prof.Turnaround,
	}
	d.cw = 8 * n.x.prof.CCA
	d.ackWait = d.turn + n.x.Airtime(n.ackBytes) + d.turn + n.x.prof.CCA
	d.openRxSlotFn = d.openRxSlot
	d.closeRxSlotFn = d.closeRxSlot
	d.openTxSlotFn = d.openTxSlot
	d.contentionDoneFn = d.contentionDone
	d.ackExpiredFn = d.ackExpired
	d.nextFrameFn = func() { d.scheduleFrame(d.frameIdx) }
	d.sendAckFn = func() {
		d.x.Send(d.newFrame(FrameAck, d.ackDst, d.ackBytes, nil))
	}
	return d
}

// start implements macLayer.
func (m *dmacNode) start() {
	m.x.Sleep()
	// Anchoring the frame ladder at the start instant (zero in a fixed
	// run, the epoch boundary in a phased one) keeps the network-wide
	// slot alignment DMAC assumes.
	m.base = m.eng.Now()
	m.scheduleFrame(0)
}

// scheduleFrame arms the slot events of frame k. All boundaries are
// computed from integer slot indices off one epoch value, so that
// coinciding boundaries (this node's rx-slot close and tx-slot open)
// are bit-identical floats and scheduling order decides: the close must
// run first or the node would skip its own transmit slot.
func (m *dmacNode) scheduleFrame(k int) {
	epoch := m.base + float64(k)*m.frame
	boundary := func(slot int) float64 { return epoch + float64(slot)*m.mu }
	// Depth-D nodes transmit at slot index 0; a node at ring d transmits
	// at index D−d, receiving from its children in the slot before.
	txSlot := m.depth - m.ring
	if m.ring < m.depth {
		m.eng.At(boundary(txSlot-1), m.openRxSlotFn)
		m.eng.At(boundary(txSlot), m.closeRxSlotFn)
	}
	if !m.isSink() {
		m.eng.At(boundary(txSlot), m.openTxSlotFn)
	}
	m.frameIdx = k + 1
	m.eng.At(epoch+m.frame, m.nextFrameFn)
}

// sampled implements macLayer: packets wait for the next transmit slot.
func (m *dmacNode) sampled(p *Packet) { m.push(p) }

// openRxSlot turns the receiver on for one slot.
func (m *dmacNode) openRxSlot() {
	m.tracef("openRxSlot")
	if m.phase != dSleep {
		return
	}
	m.phase = dRxSlot
	m.x.Listen()
}

// closeRxSlot returns to sleep unless a handshake is still running.
func (m *dmacNode) closeRxSlot() {
	m.tracef("closeRxSlot")
	if m.phase == dRxSlot {
		m.phase = dSleep
		m.x.Sleep()
	}
}

// openTxSlot contends for the channel when traffic is pending.
func (m *dmacNode) openTxSlot() {
	m.tracef("openTxSlot qlen=%d", m.queueLen())
	if m.phase != dSleep || m.head() == nil {
		return
	}
	if m.skipFrames > 0 {
		m.skipFrames--
		return
	}
	m.phase = dContend
	m.x.Listen()
	backoff := m.rng.Float64() * m.cw
	m.eng.After(backoff, m.contentionDoneFn)
}

// contentionDone performs the CCA and transmits on a clear channel.
func (m *dmacNode) contentionDone() {
	m.tracef("contentionDone busy=%v", m.x.CarrierBusy())
	if m.phase != dContend {
		return
	}
	if m.x.CarrierBusy() {
		// Lost the contention: try again next frame.
		m.phase = dSleep
		m.x.Sleep()
		return
	}
	m.x.Send(m.newFrame(FrameData, m.parent, m.dataBytes, m.head()))
}

// OnTxDone implements FrameHandler.
func (m *dmacNode) OnTxDone(f *Frame) {
	m.tracef("OnTxDone %v", f.Kind)
	switch f.Kind {
	case FrameData:
		m.phase = dWaitAck
		m.ackTimer = m.eng.After(m.ackWait, m.ackExpiredFn)
	case FrameAck:
		// Receiver side: handshake done; the rx slot may still be open.
		if m.phase == dSleep {
			m.x.Sleep()
		}
	}
}

// ackExpired gives up on this frame's attempt and backs off a random
// number of frames that doubles with every consecutive failure.
func (m *dmacNode) ackExpired() {
	m.tracef("ackExpired")
	if m.phase != dWaitAck {
		return
	}
	m.retries++
	if m.retries > dmacMaxRetries {
		m.pop()
		m.metrics.recordDropped()
		m.retries = 0
	} else {
		window := 1 << uint(m.retries)
		if window > 16 {
			window = 16
		}
		m.skipFrames = m.rng.Intn(window)
	}
	m.phase = dSleep
	m.x.Sleep()
}

// OnFrame implements FrameHandler.
func (m *dmacNode) OnFrame(f *Frame) {
	m.tracef("OnFrame %v src=%d dst=%d", f.Kind, int(f.Src), int(f.Dst))
	switch m.phase {
	case dRxSlot:
		if f.Kind == FrameData && f.Dst == m.id {
			m.ackDst = f.Src
			m.eng.After(m.turn, m.sendAckFn)
			m.accept(f.Packet)
			return
		}
		// Overheard a neighbour's exchange: stay in the slot (the
		// schedule still owns the radio until closeRxSlot).
	case dWaitAck:
		if f.Kind == FrameAck && f.Dst == m.id {
			m.ackTimer.Cancel()
			m.pop()
			m.retries = 0
			m.phase = dSleep
			m.x.Sleep()
		}
	case dSleep, dContend:
		// Nothing to do: contention resolution reads the carrier, not
		// frames.
	}
}

var _ macLayer = (*dmacNode)(nil)
