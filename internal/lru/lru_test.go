package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAddEvict(t *testing.T) {
	c := New(2)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now the LRU entry; inserting "c" must evict it.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a evicted instead of b: %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatalf("Get(c) = %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestAddReplacesInPlace(t *testing.T) {
	c := New(2)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 10)
	if c.Len() != 2 {
		t.Fatalf("replacement grew the cache to %d", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("Get(a) = %v, want 10", v)
	}
}

func TestStats(t *testing.T) {
	c := New(4)
	c.Add("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
}

func TestCapacityClamped(t *testing.T) {
	c := New(0)
	c.Add("a", 1)
	c.Add("b", 2)
	if c.Len() != 1 {
		t.Fatalf("clamped cache holds %d entries, want 1", c.Len())
	}
}

// TestConcurrentAccess exercises the cache from many goroutines; run
// under -race it proves the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.Add(key, i)
				c.Get(key)
				c.Len()
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
