// Package lru is the one bounded result-cache primitive behind every
// caching layer in the module: the Client's analytic result cache and
// the serve layer's HTTP response cache. Keeping it in one place keeps
// the semantics — capacity bounding, recency order, hit accounting —
// identical everywhere.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded, concurrency-safe least-recently-used map from
// string keys to opaque values. Both reads and writes refresh recency;
// inserting into a full cache evicts the least recently used entry.
//
// The cache stores what it is given: callers that hand out cached
// values to mutating code must insert (and return) defensive copies.
// The zero Cache is invalid; use New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // value: *entry
	hits    uint64
	misses  uint64
}

// entry is one key/value pair, stored in the recency list.
type entry struct {
	key   string
	value any
}

// New returns an empty cache holding at most capacity entries.
// Capacities below 1 are clamped to 1 (a cache that can hold nothing
// cannot satisfy its own contract; callers wanting "no cache" should
// not construct one).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Get returns the value cached under key and refreshes its recency.
// Every call counts toward the hit/miss statistics.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Add caches value under key, replacing any previous value and evicting
// the least recently used entry when the cache is full.
func (c *Cache) Add(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).value = value
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
	}
	c.entries[key] = c.order.PushFront(&entry{key: key, value: value})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports the lifetime hit and miss counts of Get.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
