package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc guards the allocation floor PR 1 bought (~1.3k allocs/op on
// the simulator benches, bench-gated since PR 2). Functions annotated
// //edvet:hotpath in their doc comment — the event loops, wheel
// scheduler ops, Medium transitions, node queue ops — must stay free of
// the four quiet ways allocations creep back in:
//
//   - fmt.* calls (interface boxing plus formatting state per call),
//   - closures that capture enclosing variables (one heap cell per
//     capture set, every invocation),
//   - growth appends: appending to a local slice declared without
//     capacity (var s []T / s := []T{} / make([]T, n)) reallocates as
//     it grows — preallocate with make(len, cap) or reuse a buffer,
//   - boxing a non-pointer-shaped value into an interface (pointers,
//     maps, chans, funcs and constants convert without allocating;
//     ints, floats, strings, structs and slices do not).
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//edvet:hotpath functions stay allocation-free: no fmt, capturing closures, growth appends, or boxing",
	Run:  runHotalloc,
}

// hotpathMarker is the doc-comment annotation that opts a function in.
const hotpathMarker = "//edvet:hotpath"

func runHotalloc(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			out = append(out, checkHotFunc(p, fd)...)
		}
	}
	return out
}

// isHotpath reports whether the function's doc comment carries the
// marker.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathMarker {
			return true
		}
	}
	return false
}

func checkHotFunc(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	sized := sizedLocals(p, fd)
	name := fd.Name.Name

	// Func-literal extents: returns inside a literal answer the
	// literal's own signature, not the annotated function's.
	var litRanges [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			litRanges = append(litRanges, [2]token.Pos{fl.Pos(), fl.End()})
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && importedPath(p, sel.X) == "fmt" {
				out = append(out, diag(p, n.Pos(), "hotalloc",
					"hotpath %s calls fmt.%s; formatting allocates — move it off the hot path", name, sel.Sel.Name))
			}
			out = append(out, checkAppendGrowth(p, fd, n, sized, name)...)
			out = append(out, checkCallBoxing(p, n, name)...)
		case *ast.FuncLit:
			if capt := capturedVar(p, fd, n); capt != "" {
				out = append(out, diag(p, n.Pos(), "hotalloc",
					"hotpath %s builds a closure capturing %q (allocates per call); hoist it to a cached field or pass state via AtCall-style (do, arg)", name, capt))
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) && boxes(p, p.Info.TypeOf(lhs), n.Rhs[i]) {
						out = append(out, diag(p, n.Rhs[i].Pos(), "hotalloc",
							"hotpath %s boxes a %s into an interface (allocates)", name, p.Info.TypeOf(n.Rhs[i])))
					}
				}
			}
		case *ast.ReturnStmt:
			if inLit(n.Pos()) {
				return true
			}
			if res := funcResults(p, fd); res != nil {
				for i, e := range n.Results {
					if i < res.Len() && boxes(p, res.At(i).Type(), e) {
						out = append(out, diag(p, e.Pos(), "hotalloc",
							"hotpath %s boxes a %s into an interface result (allocates)", name, p.Info.TypeOf(e)))
					}
				}
			}
		}
		return true
	})
	return out
}

// funcResults returns the result tuple of the declared function.
func funcResults(p *Package, fd *ast.FuncDecl) *types.Tuple {
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return obj.Type().(*types.Signature).Results()
}

// sizedLocals classifies the function's local slice variables: a local
// is "sized" when some assignment gives it unknown-but-presumed-adequate
// provenance (a call result, a slice of another slice, a field read) or
// an explicit make with a capacity argument. Locals only ever born
// empty (var s []T, s := []T{}, make with no cap) are growth-append
// suspects.
func sizedLocals(p *Package, fd *ast.FuncDecl) map[types.Object]bool {
	sized := make(map[types.Object]bool)
	note := func(id *ast.Ident, init ast.Expr) {
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if providesCapacity(p, init) {
			sized[obj] = true
		} else if _, seen := sized[obj]; !seen {
			sized[obj] = false
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) {
					note(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var init ast.Expr
				if i < len(n.Values) {
					init = n.Values[i]
				}
				note(id, init)
			}
		}
		return true
	})
	return sized
}

// providesCapacity reports whether the initializer plausibly reserves
// capacity: make with an explicit cap, or any expression other than an
// empty birth (nil, a composite literal, a capacity-less make, or an
// append — append is the growth being checked, not a reservation).
func providesCapacity(p *Package, init ast.Expr) bool {
	switch e := init.(type) {
	case nil:
		return false
	case *ast.CompositeLit:
		return false
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					return len(e.Args) >= 3
				case "append":
					return false
				}
			}
		}
		return true
	case *ast.Ident:
		return e.Name != "nil"
	}
	return true
}

// checkAppendGrowth flags appends whose destination is a local slice
// never given capacity. Appends to fields, params and package-level
// slices are the amortized arena/pool growth idiom and stay legal.
func checkAppendGrowth(p *Package, fd *ast.FuncDecl, call *ast.CallExpr, sized map[types.Object]bool, name string) []Diagnostic {
	if !isAppend(p, call) || len(call.Args) == 0 {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	wasSized, isLocal := sized[obj]
	if !isLocal || wasSized || isParam(p, fd, obj) {
		return nil
	}
	return []Diagnostic{diag(p, call.Pos(), "hotalloc",
		"hotpath %s appends to %q, a local slice declared without capacity; preallocate with make(len, cap) or reuse a buffer", name, id.Name)}
}

// isParam reports whether obj is one of fd's parameters (or receiver).
func isParam(p *Package, fd *ast.FuncDecl, obj types.Object) bool {
	fobj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fobj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return true
		}
	}
	return sig.Recv() == obj
}

// checkCallBoxing flags call arguments boxed into interface
// parameters.
func checkCallBoxing(p *Package, call *ast.CallExpr, name string) []Diagnostic {
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	if tv.IsType() {
		// Explicit conversion T(x): only interface targets box.
		if len(call.Args) == 1 && boxes(p, tv.Type, call.Args[0]) {
			return []Diagnostic{diag(p, call.Args[0].Pos(), "hotalloc",
				"hotpath %s boxes a %s into an interface (allocates)", name, p.Info.TypeOf(call.Args[0]))}
		}
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil // builtin or untyped
	}
	var out []Diagnostic
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(p, pt, arg) {
			out = append(out, diag(p, arg.Pos(), "hotalloc",
				"hotpath %s boxes a %s into an interface argument (allocates)", name, p.Info.TypeOf(arg)))
		}
	}
	return out
}

// boxes reports whether assigning expr to target type performs an
// allocating interface conversion: the target is an interface and the
// value is a non-constant whose representation is not pointer-shaped
// (pointers, maps, chans and funcs fit the interface word directly).
func boxes(p *Package, target types.Type, expr ast.Expr) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // constants are boxed into static data at compile time
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

// capturedVar returns the name of a variable the literal captures from
// its enclosing function, or "".
func capturedVar(p *Package, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal. Package-level variables are direct references,
		// not captures.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = v.Name()
		}
		return captured == ""
	})
	return captured
}
