package lint

import (
	"go/ast"
	"go/types"
)

// Ctxfirst guards the context discipline PR 5's Client redesign
// established: cancellation is threaded end-to-end as an explicit first
// parameter — (ctx, Request) → (Report, error) — and never smuggled
// through struct state, where it outlives the call that created it and
// silently decouples cancellation from the work it was meant to bound.
var Ctxfirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context is the first parameter and is never stored in a struct",
	Run:  runCtxfirst,
}

func runCtxfirst(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				out = append(out, checkCtxParams(p, n.Name.Name, n.Type)...)
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok || len(m.Names) == 0 {
						continue
					}
					out = append(out, checkCtxParams(p, m.Names[0].Name, ft)...)
				}
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isContextType(p.Info.TypeOf(field.Type)) {
						out = append(out, diag(p, field.Pos(), "ctxfirst",
							"struct field stores a context.Context; pass it per call instead — stored contexts outlive their cancellation scope"))
					}
				}
			}
			return true
		})
	}
	return out
}

// checkCtxParams flags context.Context parameters at any position but
// the first.
func checkCtxParams(p *Package, fname string, ft *ast.FuncType) []Diagnostic {
	var out []Diagnostic
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(p.Info.TypeOf(field.Type)) && idx > 0 {
			out = append(out, diag(p, field.Pos(), "ctxfirst",
				"%s takes context.Context at position %d; it must be the first parameter", fname, idx+1))
		}
		idx += n
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
