package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureState shares one loader (and thus one type-checked stdlib)
// across every fixture test in the package.
var fixtureState struct {
	once sync.Once
	l    *Loader
	err  error
}

// fixturePkg loads one testdata fixture package under a synthetic
// import path.
func fixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	fixtureState.once.Do(func() {
		fixtureState.l, fixtureState.err = NewLoader(filepath.Join("..", ".."))
	})
	if fixtureState.err != nil {
		t.Fatalf("NewLoader: %v", fixtureState.err)
	}
	dir := filepath.Join("testdata", "src", name)
	p, err := fixtureState.l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return p
}

var (
	wantRe   = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

// wantsIn parses a fixture source's // want comments into line →
// expected message substrings.
func wantsIn(t *testing.T, path string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	out := make(map[int][]string)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
			out[i+1] = append(out[i+1], q[1])
		}
	}
	return out
}

// checkFixture runs one analyzer over its fixture package and matches
// diagnostics against the // want comments line-exactly, in both
// directions: every diagnostic needs a want on its line, every want
// needs a diagnostic.
func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	p := fixturePkg(t, name)
	diags := a.Run(p)

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d.Message)
	}

	dir := filepath.Join("testdata", "src", name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	want := make(map[key][]string)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		for line, subs := range wantsIn(t, path) {
			want[key{path, line}] = subs
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", name)
	}

	for k, msgs := range got {
		subs := want[k]
		for _, msg := range msgs {
			matched := -1
			for i, s := range subs {
				if s != "" && strings.Contains(msg, s) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
				continue
			}
			subs[matched] = "" // consumed
		}
	}
	for k, subs := range want {
		for _, s := range subs {
			if s != "" {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, s)
			}
		}
	}
}

func TestDetrandFixture(t *testing.T)    { checkFixture(t, Detrand, "detrand") }
func TestFramescopeFixture(t *testing.T) { checkFixture(t, Framescope, "framescope") }
func TestJsonwireFixture(t *testing.T)   { checkFixture(t, Jsonwire, "jsonwire") }
func TestCtxfirstFixture(t *testing.T)   { checkFixture(t, Ctxfirst, "ctxfirst") }
func TestHotallocFixture(t *testing.T)   { checkFixture(t, Hotalloc, "hotalloc") }
func TestLockorderFixture(t *testing.T)  { checkFixture(t, Lockorder, "lockorder") }
func TestGoroleakFixture(t *testing.T)   { checkFixture(t, Goroleak, "goroleak") }
func TestEscapegoldFixture(t *testing.T) { checkFixture(t, Escapegold, "escapegold") }
func TestApisurfaceFixture(t *testing.T) { checkFixture(t, Apisurface, "apisurface") }

// TestIgnoreDirectives pins the directive machinery end to end: an
// explained ignore suppresses and is marked used; unexplained or
// unknown-analyzer directives become diagnostics and suppress nothing.
func TestIgnoreDirectives(t *testing.T) {
	p := fixturePkg(t, "ignores")

	diags := Detrand.Run(p)
	if len(diags) != 3 {
		t.Fatalf("Detrand found %d diagnostics, want 3 (one per time.Now)", len(diags))
	}

	igs, bad := collectIgnores(p)
	if len(igs) != 1 {
		t.Fatalf("collected %d well-formed ignores, want 1", len(igs))
	}
	if len(bad) != 2 {
		t.Fatalf("collected %d malformed-directive diagnostics, want 2 (unexplained + unknown analyzer)", len(bad))
	}
	if ig := igs[0]; ig.Analyzer != "detrand" || ig.Reason != "fixture: exercising the suppression path" {
		t.Fatalf("parsed ignore = %s %q, want detrand with the fixture reason", ig.Analyzer, ig.Reason)
	}

	kept := applyIgnores(diags, igs)
	if len(kept) != 2 {
		t.Fatalf("%d diagnostics survive the explained ignore, want 2", len(kept))
	}
	if !igs[0].Used {
		t.Fatal("the explained ignore suppressed a diagnostic but is not marked used")
	}
}

// TestIgnoreCoversNewAnalyzers pins the directive machinery for the v2
// analyzers: each new name resolves (so directives for it are
// well-formed), and the goroleak fixture's explained ignore suppresses
// exactly one of its leaks.
func TestIgnoreCoversNewAnalyzers(t *testing.T) {
	for _, name := range []string{"lockorder", "goroleak", "escapegold", "apisurface"} {
		if byName(name) == nil {
			t.Errorf("byName(%q) = nil; ignore directives for it would be rejected as unknown", name)
		}
	}

	p := fixturePkg(t, "goroleak")
	diags := Goroleak.Run(p)
	igs, bad := collectIgnores(p)
	if len(bad) != 0 {
		t.Fatalf("goroleak fixture has %d malformed directives, want 0: %v", len(bad), bad)
	}
	if len(igs) != 1 || igs[0].Analyzer != "goroleak" {
		t.Fatalf("collected ignores = %+v, want exactly one for goroleak", igs)
	}
	kept := applyIgnores(diags, igs)
	if len(kept) != len(diags)-1 {
		t.Fatalf("%d of %d diagnostics survive the ignore, want one suppressed", len(kept), len(diags))
	}
	if !igs[0].Used {
		t.Fatal("the goroleak ignore suppressed a diagnostic but is not marked used")
	}
}

// TestEscapeGolden is the compiler-fact gate in test form: the escape
// decisions inside //edvet:hotpath functions must match the committed
// golden byte for byte (modulo line numbers, which the extraction
// elides).
func TestEscapeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go compiler over the escape scope")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go binary unavailable")
	}
	res, err := RunEscape(filepath.Join("..", ".."), false)
	if err != nil {
		t.Fatalf("RunEscape: %v", err)
	}
	if len(res.Lines) == 0 {
		t.Fatal("no escape facts extracted — the parser or the hotpath scope broke")
	}
	for _, l := range res.Missing {
		t.Errorf("escape golden drift: compiler no longer reports %q (make escape-golden if intentional)", l)
	}
	for _, l := range res.Extra {
		t.Errorf("escape golden drift: compiler newly reports %q (make escape-golden if intentional)", l)
	}
}

// TestAPISurfaceGolden mirrors the apisurface analyzer for the real
// root package, so `go test` catches facade drift even without the
// edvet driver.
func TestAPISurfaceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the root package and its imports")
	}
	fixtureState.once.Do(func() {
		fixtureState.l, fixtureState.err = NewLoader(filepath.Join("..", ".."))
	})
	if fixtureState.err != nil {
		t.Fatalf("NewLoader: %v", fixtureState.err)
	}
	p, err := fixtureState.l.Load(fixtureState.l.Module())
	if err != nil {
		t.Fatalf("loading root package: %v", err)
	}
	for _, d := range Apisurface.Run(p) {
		t.Errorf("api surface drift: %s", d)
	}
}

// TestDiscoverFindsCorePackages pins the walker: the packages the
// analyzers exist for must be in the default ./... set, and testdata
// fixtures must not.
func TestDiscoverFindsCorePackages(t *testing.T) {
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := l.Discover()
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	found := make(map[string]bool, len(paths))
	for _, p := range paths {
		found[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("Discover included a testdata package: %s", p)
		}
	}
	for _, want := range []string{
		l.Module() + "/internal/sim",
		l.Module() + "/internal/serve",
		l.Module() + "/internal/lint",
		l.Module() + "/cmd/edvet",
	} {
		if !found[want] {
			t.Errorf("Discover missed %s", want)
		}
	}
}

// TestRepoClean is the self-check the suite hangs off: edvet ./... must
// be clean on the repo itself, and every suppression in the tree must
// actually suppress something.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	res, err := Run(filepath.Join("..", ".."), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("repo is not edvet-clean: %s", d)
	}
	for _, ig := range res.Ignores {
		if !ig.Used {
			t.Errorf("%s:%d: unused //edvet:ignore %s (%s)", ig.File, ig.Line, ig.Analyzer, ig.Reason)
		}
	}
}
