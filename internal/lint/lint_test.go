package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureState shares one loader (and thus one type-checked stdlib)
// across every fixture test in the package.
var fixtureState struct {
	once sync.Once
	l    *Loader
	err  error
}

// fixturePkg loads one testdata fixture package under a synthetic
// import path.
func fixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	fixtureState.once.Do(func() {
		fixtureState.l, fixtureState.err = NewLoader(filepath.Join("..", ".."))
	})
	if fixtureState.err != nil {
		t.Fatalf("NewLoader: %v", fixtureState.err)
	}
	dir := filepath.Join("testdata", "src", name)
	p, err := fixtureState.l.LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return p
}

var (
	wantRe   = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)
	quotedRe = regexp.MustCompile(`"([^"]*)"`)
)

// wantsIn parses a fixture source's // want comments into line →
// expected message substrings.
func wantsIn(t *testing.T, path string) map[int][]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	out := make(map[int][]string)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
			out[i+1] = append(out[i+1], q[1])
		}
	}
	return out
}

// checkFixture runs one analyzer over its fixture package and matches
// diagnostics against the // want comments line-exactly, in both
// directions: every diagnostic needs a want on its line, every want
// needs a diagnostic.
func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	p := fixturePkg(t, name)
	diags := a.Run(p)

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d.Message)
	}

	dir := filepath.Join("testdata", "src", name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	want := make(map[key][]string)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		for line, subs := range wantsIn(t, path) {
			want[key{path, line}] = subs
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", name)
	}

	for k, msgs := range got {
		subs := want[k]
		for _, msg := range msgs {
			matched := -1
			for i, s := range subs {
				if s != "" && strings.Contains(msg, s) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
				continue
			}
			subs[matched] = "" // consumed
		}
	}
	for k, subs := range want {
		for _, s := range subs {
			if s != "" {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, s)
			}
		}
	}
}

func TestDetrandFixture(t *testing.T)    { checkFixture(t, Detrand, "detrand") }
func TestFramescopeFixture(t *testing.T) { checkFixture(t, Framescope, "framescope") }
func TestJsonwireFixture(t *testing.T)   { checkFixture(t, Jsonwire, "jsonwire") }
func TestCtxfirstFixture(t *testing.T)   { checkFixture(t, Ctxfirst, "ctxfirst") }
func TestHotallocFixture(t *testing.T)   { checkFixture(t, Hotalloc, "hotalloc") }

// TestIgnoreDirectives pins the directive machinery end to end: an
// explained ignore suppresses and is marked used; unexplained or
// unknown-analyzer directives become diagnostics and suppress nothing.
func TestIgnoreDirectives(t *testing.T) {
	p := fixturePkg(t, "ignores")

	diags := Detrand.Run(p)
	if len(diags) != 3 {
		t.Fatalf("Detrand found %d diagnostics, want 3 (one per time.Now)", len(diags))
	}

	igs, bad := collectIgnores(p)
	if len(igs) != 1 {
		t.Fatalf("collected %d well-formed ignores, want 1", len(igs))
	}
	if len(bad) != 2 {
		t.Fatalf("collected %d malformed-directive diagnostics, want 2 (unexplained + unknown analyzer)", len(bad))
	}
	if ig := igs[0]; ig.Analyzer != "detrand" || ig.Reason != "fixture: exercising the suppression path" {
		t.Fatalf("parsed ignore = %s %q, want detrand with the fixture reason", ig.Analyzer, ig.Reason)
	}

	kept := applyIgnores(diags, igs)
	if len(kept) != 2 {
		t.Fatalf("%d diagnostics survive the explained ignore, want 2", len(kept))
	}
	if !igs[0].Used {
		t.Fatal("the explained ignore suppressed a diagnostic but is not marked used")
	}
}

// TestDiscoverFindsCorePackages pins the walker: the packages the
// analyzers exist for must be in the default ./... set, and testdata
// fixtures must not.
func TestDiscoverFindsCorePackages(t *testing.T) {
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := l.Discover()
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	found := make(map[string]bool, len(paths))
	for _, p := range paths {
		found[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("Discover included a testdata package: %s", p)
		}
	}
	for _, want := range []string{
		l.Module() + "/internal/sim",
		l.Module() + "/internal/serve",
		l.Module() + "/internal/lint",
		l.Module() + "/cmd/edvet",
	} {
		if !found[want] {
			t.Errorf("Discover missed %s", want)
		}
	}
}

// TestRepoClean is the self-check the suite hangs off: edvet ./... must
// be clean on the repo itself, and every suppression in the tree must
// actually suppress something.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	res, err := Run(filepath.Join("..", ".."), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("repo is not edvet-clean: %s", d)
	}
	for _, ig := range res.Ignores {
		if !ig.Used {
			t.Errorf("%s:%d: unused //edvet:ignore %s (%s)", ig.File, ig.Line, ig.Analyzer, ig.Reason)
		}
	}
}
