package lint

import (
	"go/ast"
	"go/types"
)

// Detrand guards the byte-for-byte replay contract (established by PR 1
// and load-bearing ever since: the suite golden, the scheduler
// differential test and the bench gate all depend on runs being a pure
// function of their seed). Inside the deterministic core it flags the
// three classic leaks of nondeterminism:
//
//   - wall-clock reads (time.Now / time.Since / time.Until),
//   - the globally seeded math/rand top-level functions (all randomness
//     must flow through seeded splitmix or *rand.Rand streams threaded
//     from the run seed),
//   - ranging over a map, whose iteration order differs per run — fatal
//     wherever the loop feeds event order or serialized output. Loops
//     that are genuinely order-insensitive (commutative reductions)
//     carry an explained //edvet:ignore.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "no wall clock, global math/rand, or map-order dependence in the deterministic core",
	Run:  runDetrand,
}

// bannedTimeFuncs are the time functions that read the wall clock.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand functions that merely build
// generators or distributions around a caller-supplied seed/source;
// everything else in the package draws from the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetrand(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				path := importedPath(p, n.X)
				switch path {
				case "time":
					if bannedTimeFuncs[n.Sel.Name] && isFunc(p, n.Sel) {
						out = append(out, diag(p, n.Pos(), "detrand",
							"time.%s reads the wall clock; deterministic code must take time from the engine or an injected clock", n.Sel.Name))
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[n.Sel.Name] && isFunc(p, n.Sel) {
						out = append(out, diag(p, n.Pos(), "detrand",
							"rand.%s draws from the global generator; use a seeded stream threaded from the run seed", n.Sel.Name))
					}
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						out = append(out, diag(p, n.For, "detrand",
							"map iteration order is nondeterministic; iterate sorted keys (or //edvet:ignore detrand with why order cannot matter)"))
					}
				}
			}
			return true
		})
	}
	return out
}

// isFunc reports whether the selected object is a function (so type
// and variable references like rand.Rand never trip the check).
func isFunc(p *Package, sel *ast.Ident) bool {
	_, ok := p.Info.Uses[sel].(*types.Func)
	return ok
}

// importedPath resolves the package an identifier qualifies, or "".
func importedPath(p *Package, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
