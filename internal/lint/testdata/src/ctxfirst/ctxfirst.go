// Package ctxfirst is the fixture for the ctxfirst analyzer:
// context.Context rides first in every signature — function or
// interface method — and never lives in a struct field.
package ctxfirst

import "context"

// Run has the canonical shape: context first.
func Run(ctx context.Context, n int) error { // allowed
	_ = ctx
	_ = n
	return nil
}

// Shuffled buries the context behind another parameter.
func Shuffled(n int, ctx context.Context) error { // want "must be the first parameter"
	_ = ctx
	_ = n
	return nil
}

// Worker shows the same rule applies to interface methods.
type Worker interface {
	Do(ctx context.Context, job int) error   // allowed
	Undo(job int, ctx context.Context) error // want "must be the first parameter"
}

// holder smuggles a context through state, decoupling cancellation from
// the call it was meant to bound.
type holder struct {
	ctx context.Context // want "stores a context.Context"
	n   int
}
