// Package apisurface is the apisurface analyzer's fixture: the
// neighbouring api_golden.txt freezes a surface this package drifts
// from in both directions — Added is a new export missing from the
// golden, and the golden's Removed symbol no longer exists (reported
// at the package clause, since a removal has no declaration to point
// at).
package apisurface // want "removed from the exported API surface"

// Kept matches the golden.
func Kept() int { return 1 }

// Added is not in the golden.
func Added() string { return "" } // want "exported surface gained"
