// Package goroleak is the goroleak analyzer's fixture: fire-and-forget
// goroutines (literal and named) are diagnostics; goroutines that
// watch a context, receive from a channel, range over one, join a
// WaitGroup, or take a lifecycle-typed argument are clean. One leak
// carries an explained ignore so the suppression machinery is
// exercised for the new analyzer name.
package goroleak

import (
	"context"
	"sync"
)

func work() {}

func spin() {
	for {
		work()
	}
}

func leakLit() {
	go func() { // want "no visible termination path"
		for {
			work()
		}
	}()
}

func leakNamed() {
	go spin() // want "no visible termination path"
}

func okCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func okDoneChan(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

func okWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}

func okCtxArg(ctx context.Context) {
	go watcher(ctx)
}

func watcher(ctx context.Context) {
	<-ctx.Done()
}

func okRange(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

var feed = make(chan int)

// okNamedCallee is judged by the callee's own body: pump drains a
// channel, so the goroutine ends when feed closes.
func okNamedCallee() {
	go pump()
}

func pump() {
	for range feed {
		work()
	}
}

func ignoredLeak() {
	//edvet:ignore goroleak audited: fixture exercises suppression for goroleak
	go spin() // want "no visible termination path"
}
