// Package framescope is the fixture for the framescope analyzer. Frame
// mirrors the simulator's pooled frame: the analyzer keys on any
// parameter typed *Frame on an OnFrame/OnTxDone method, so a local
// declaration exercises every escape path without importing the
// simulator.
package framescope

// Frame stands in for the medium-owned pooled frame.
type Frame struct {
	Kind int
	Seq  int
}

var lastSeen *Frame

type event struct {
	f *Frame
}

type mac struct {
	kind    int
	last    *Frame
	backlog []*Frame
	inbox   chan *Frame
	pending []event
}

func (m *mac) OnFrame(f *Frame) {
	m.kind = f.Kind // allowed: copying a field before returning
	m.last = f      // want "stores"
	g := f
	m.last = g                                 // want "stores"
	m.backlog = append(m.backlog, f)           // want "appends"
	m.inbox <- f                               // want "sends"
	lastSeen = f                               // want "stores"
	m.pending = append(m.pending, event{f: f}) // want "embeds"
	hold(f)                                    // want "passes"
	go func() { m.kind = f.Kind }()            // want "captures"
}

func (m *mac) OnTxDone(f *Frame) {
	m.kind = f.Kind // allowed: reading inside the upcall is the contract
}

// hold stands in for any callee that might retain its argument.
func hold(f *Frame) { _ = f }
