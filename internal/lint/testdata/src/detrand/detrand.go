// Package detrand is the fixture for the detrand analyzer: wall-clock
// reads, global math/rand draws and map ranging are flagged; seeded
// streams, duration arithmetic and slice ranging are not. Each
// offending line carries a // want comment the test harness matches
// line-exactly against the analyzer's diagnostics.
package detrand

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func scaled(d time.Duration) time.Duration {
	return d * 2 // allowed: duration arithmetic never reads a clock
}

func globalDraw() float64 {
	return rand.Float64() // want "draws from the global generator"
}

func seededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // allowed: constructors around a caller-supplied seed
	return r.Float64()                  // allowed: method on a seeded stream
}

func mapTotal(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

func sliceTotal(xs []int) int {
	total := 0
	for _, v := range xs { // allowed: slice order is deterministic
		total += v
	}
	return total
}
