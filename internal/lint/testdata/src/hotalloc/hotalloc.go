// Package hotalloc is the fixture for the hotalloc analyzer: functions
// annotated //edvet:hotpath must stay free of fmt calls, capturing
// closures, growth appends and interface boxing; the same patterns are
// legal everywhere else.
package hotalloc

import "fmt"

// process is annotated: every allocation pattern below is flagged.
//
//edvet:hotpath
func process(n int, sink func(any)) int {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i) // want "a local slice declared without capacity"
	}
	double := func() int { return n * 2 } // want "capturing"
	fmt.Println(n)                        // want "calls fmt.Println" "boxes a int into an interface argument"
	sink(n)                               // want "boxes a int into an interface argument"
	return xs[0] + double()
}

// drain is annotated but clean: preallocated locals, caller-owned
// buffers and pointer-shaped interface values are all allocation-free.
//
//edvet:hotpath
func drain(n int, buf []int, sink func(any)) []int {
	out := make([]int, 0, n) // allowed: explicit capacity
	for i := 0; i < n; i++ {
		out = append(out, i) // allowed: sized local
		buf = append(buf, i) // allowed: caller-owned buffer grows amortized
	}
	sink(&out) // allowed: pointers fit the interface word without allocating
	return out
}

// report is unannotated: the same patterns are legal off the hot path.
func report(n int) {
	var xs []int
	for i := 0; i < n; i++ {
		xs = append(xs, i)
	}
	fmt.Println(xs)
}
