// Package escapegold is the escapegold scope guard's fixture: a
// //edvet:hotpath annotation in a package outside the escape-golden
// scope would silently evade the compiler gate, so it is a diagnostic;
// unannotated functions are fine anywhere.
package escapegold

// hot claims hot-path status outside the covered packages.
//
//edvet:hotpath
func hot() {} // want "outside the escape-golden scope"

// cold carries no annotation and is clean.
func cold() {}
