// Package ignores exercises the directive machinery: an explained
// ignore suppresses the diagnostic on its line (or the line below) and
// is reported in the summary; an unexplained or unknown-analyzer
// directive is itself a finding.
package ignores

import "time"

func explained() time.Time {
	//edvet:ignore detrand fixture: exercising the suppression path
	return time.Now()
}

func unexplained() time.Time {
	//edvet:ignore detrand
	return time.Now()
}

func unknown() time.Time {
	//edvet:ignore nosuch because reasons
	return time.Now()
}
