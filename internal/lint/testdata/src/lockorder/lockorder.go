// Package lockorder is the lockorder analyzer's fixture: blocking
// operations while a mutex is held (direct, transitive via a callee,
// and each channel/select/sleep/I-O shape), clean counterparts for the
// unlock-first and non-blocking-select idioms, and a two-lock
// acquisition-order cycle.
package lockorder

import (
	"os"
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	cache *cache
	ch    chan int
}

type cache struct {
	mu sync.Mutex
	s  *store
}

func (s *store) sleepHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep"
}

func (s *store) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send"
	s.mu.Unlock()
}

func (s *store) recvHeld() {
	s.mu.Lock()
	<-s.ch // want "channel receive"
	s.mu.Unlock()
}

func (s *store) selectHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select with no default"
	case <-s.ch:
	case v := <-s.ch:
		_ = v
	}
}

func (s *store) rangeHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // want "range over a channel"
	}
}

func (s *store) ioHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove("x") // want "os.Remove"
}

func (s *store) callBlockerHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spill() // want "may block"
}

func (s *store) spill() {
	_ = os.WriteFile("x", nil, 0o644)
}

// cleanUnlockFirst releases the lock before the blocking send — the
// discipline the analyzer enforces.
func (s *store) cleanUnlockFirst() {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

// cleanNonBlockingSelect never parks: the default clause makes the
// send a try-send.
func (s *store) cleanNonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// cleanBranches releases on every continuing path, so the receive after
// the merge runs unheld.
func (s *store) cleanBranches(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	<-s.ch
}

// cleanGoroutine: the spawned body does not inherit the spawner's
// lock, so its receive is fine.
func (s *store) cleanGoroutine(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-done
	}()
}

// lockAB and lockBA acquire the same two locks in opposite orders: the
// acquired-before graph gains store.mu → cache.mu and cache.mu →
// store.mu, a deadlock-capable cycle flagged at both closing edges.
func (s *store) lockAB() {
	s.mu.Lock()
	s.cache.mu.Lock() // want "lock-order cycle"
	s.cache.mu.Unlock()
	s.mu.Unlock()
}

func (c *cache) lockBA() {
	c.mu.Lock()
	c.s.mu.Lock() // want "lock-order cycle"
	c.s.mu.Unlock()
	c.mu.Unlock()
}
