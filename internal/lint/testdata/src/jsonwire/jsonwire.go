// Package jsonwire is the fixture for the jsonwire analyzer: wire
// structs (any struct already carrying a json tag) must tag every
// exported field with an explicit snake_case name, and envelope error
// codes — writeCoded arguments and errorStatus returns — must come from
// the pinned set.
package jsonwire

// report is a wire struct: one tagged field makes every exported
// field's tag load-bearing.
type report struct {
	ID       int    `json:"id"` // allowed
	Untagged string // want "has no json tag"
	BadName  int    `json:"BadName"`    // want "is not snake_case"
	NoName   int    `json:",omitempty"` // want "json tag has no name"
	Skipped  int    `json:"-"`          // allowed: explicitly excluded
	hidden   int    // allowed: unexported fields never serialize
}

// config is not a wire struct (no json tags anywhere): plain Go-named
// fields are fine on internal config.
type config struct {
	Workers int
	Verbose bool
}

// inner is a tagged component meant for embedding.
type inner struct {
	Seed int64 `json:"seed"`
}

// composed embeds a struct untagged — the deliberate composition idiom:
// inner's tagged fields inline into composed's wire shape.
type composed struct {
	inner     // allowed: embedded structs inline their tagged fields
	Extra int `json:"extra"`
}

// Badge is an exported non-struct type.
type Badge string

// stamped embeds a non-struct untagged: it would serialize under its Go
// type name, so it must be tagged.
type stamped struct {
	Badge     // want "embedded non-struct field"
	ID    int `json:"id"`
}

type responder struct{}

func writeCoded(w *responder, status int, code, msg string) { _ = w }

func replyInvalid(w *responder) {
	writeCoded(w, 400, "invalid_request", "bad payload") // allowed: pinned constant
}

func replyAdHoc(w *responder) {
	writeCoded(w, 400, "bad_vibes", "made-up code") // want "is not in the pinned envelope code set"
}

func replyComputed(w *responder, code string) {
	writeCoded(w, 400, code, "computed") // want "not a string constant"
}

// errorStatus mirrors the serve classifier: the code half of every
// return must be a pinned constant.
func errorStatus(kind int) (int, string) {
	switch kind {
	case 0:
		return 404, "not_found" // allowed
	case 1:
		return 500, "oops" // want "is not in the pinned envelope code set"
	}
	return 500, codeFor(kind) // want "must return a pinned code constant"
}

func codeFor(kind int) string {
	_ = kind
	return "internal"
}
