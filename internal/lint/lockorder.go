package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockorder guards the serving tier's two deadlock surfaces at once.
// First: no blocking operation — channel send/receive, a select without
// a default, range over a channel, time.Sleep, WaitGroup/Cond waits, or
// file/network I/O — may run while a sync.Mutex or RWMutex is held; a
// handler goroutine parked inside a critical section stalls every other
// request that needs the same lock (PR 7's spill/event paths were
// restructured around exactly this rule). Second: the acquired-before
// graph between named locks must stay acyclic — if one code path takes
// Store.mu then Job.mu and another takes them in the opposite order,
// two goroutines can each hold one and wait forever for the other.
//
// The analysis is a branch-sensitive held-set walk per function (lock
// identity is the declaring type plus field, so every Job.mu instance
// is one node), with intra-package call summaries propagating both
// transitive acquisitions (for graph edges) and may-block facts.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "no blocking ops while a mutex is held; lock acquisition order is acyclic",
	Run:  runLockorder,
}

// lockScope lists the mutex- and goroutine-heavy serving packages the
// lock discipline applies to (module-relative).
var lockScope = []string{
	"internal/serve",
	"internal/jobs",
	"internal/lru",
	"internal/par",
}

// lockID names a lock by declaration, not instance: "Store.mu" for a
// field, "pkg-level mu" for a package variable, the identifier for a
// local. Instance-blind identity is what makes the acquired-before
// graph meaningful across methods.
type lockID string

// lockFacts is one function's summary: the locks its body (or a callee)
// may acquire, and a description of a blocking operation it may reach.
type lockFacts struct {
	acquires map[lockID]bool
	blocks   string // "" when the function cannot block
}

// lockEdge is one acquired-before observation: to was acquired while
// from was held, at pos.
type lockEdge struct {
	from, to lockID
	pos      token.Pos
	fname    string
}

func runLockorder(p *Package) []Diagnostic {
	w := &lockWalker{
		p:    p,
		sums: lockSummaries(p),
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.fname = funcDisplayName(fd)
			w.block(fd.Body.List, map[lockID]token.Pos{})
		}
	}
	w.out = append(w.out, lockCycleDiags(p, w.edges)...)
	sortDiags(w.out)
	return w.out
}

// lockWalker carries the per-package state of the held-set walk.
type lockWalker struct {
	p     *Package
	sums  map[*types.Func]*lockFacts
	edges []lockEdge
	fname string
	out   []Diagnostic
}

// block walks a statement list, threading the held set through it.
func (w *lockWalker) block(list []ast.Stmt, held map[lockID]token.Pos) map[lockID]token.Pos {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalker) stmt(s ast.Stmt, held map[lockID]token.Pos) map[lockID]token.Pos {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			w.flag(s.Pos(), "channel send while %s is held; a blocked receiver stalls every goroutine contending for the lock", heldName(held))
		}
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to function end — the
		// default, since nothing removes it. Other deferred work runs
		// at return under an unknown held set; skip it here (the
		// summary pass still sees it for callers).
	case *ast.GoStmt:
		// The spawned goroutine does not inherit this goroutine's
		// locks: walk its literal body with an empty held set. The
		// call's arguments are evaluated now, under the current set.
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body.List, map[lockID]token.Pos{})
		}
	case *ast.BlockStmt:
		held = w.block(s.List, held)
	case *ast.LabeledStmt:
		held = w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		var exits []map[lockID]token.Pos
		thenH := w.block(s.Body.List, copyHeld(held))
		if !blockTerminates(s.Body.List) {
			exits = append(exits, thenH)
		}
		if s.Else != nil {
			elseH := w.stmt(s.Else, copyHeld(held))
			if !stmtTerminates(s.Else) {
				exits = append(exits, elseH)
			}
		} else {
			exits = append(exits, held)
		}
		held = intersectHeld(exits)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		// Loop bodies are assumed lock-balanced per iteration; the
		// exit state is the entry state.
		body := w.block(s.Body.List, copyHeld(held))
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if len(held) > 0 {
			if t := w.p.Info.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.flag(s.Pos(), "range over a channel while %s is held; the loop parks inside the critical section", heldName(held))
				}
			}
		}
		w.expr(s.X, held)
		w.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		held = w.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.flag(s.Pos(), "select with no default while %s is held; the goroutine parks inside the critical section", heldName(held))
		}
		var exits []map[lockID]token.Pos
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm op itself is covered by the select-level check
			// (or non-blocking when a default exists); only the case
			// body runs afterwards.
			h := w.block(cc.Body, copyHeld(held))
			if !blockTerminates(cc.Body) {
				exits = append(exits, h)
			}
		}
		held = intersectHeld(append(exits, held))
	}
	return held
}

// caseClauses walks a switch body: each case starts from the entry held
// set, and the exit is the intersection of every falling-through case
// (plus the entry itself when no default exists).
func (w *lockWalker) caseClauses(body *ast.BlockStmt, held map[lockID]token.Pos) map[lockID]token.Pos {
	hasDefault := false
	var exits []map[lockID]token.Pos
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.expr(e, held)
		}
		h := w.block(cc.Body, copyHeld(held))
		if !blockTerminates(cc.Body) {
			exits = append(exits, h)
		}
	}
	if !hasDefault {
		exits = append(exits, held)
	}
	return intersectHeld(exits)
}

// expr scans an expression for calls, receives and inline func
// literals under the current held set.
func (w *lockWalker) expr(e ast.Expr, held map[lockID]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal in expression position runs synchronously when
			// invoked (sort.Slice comparators, handler bodies built
			// in-place); walk it under the current set.
			w.block(n.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			w.call(n, held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				w.flag(n.Pos(), "channel receive while %s is held; the goroutine parks inside the critical section", heldName(held))
			}
		}
		return true
	})
}

// call classifies one call site: lock/unlock transitions, curated
// blocking stdlib operations, and intra-package callees whose summary
// acquires locks or may block.
func (w *lockWalker) call(call *ast.CallExpr, held map[lockID]token.Pos) {
	if id, op, ok := lockOp(w.p, call); ok {
		switch op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			for h := range held {
				if h != id {
					w.edges = append(w.edges, lockEdge{from: h, to: id, pos: call.Pos(), fname: w.fname})
				}
			}
			held[id] = call.Pos()
		case "Unlock", "RUnlock":
			delete(held, id)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	if desc := blockingStdCall(w.p, call); desc != "" {
		w.flag(call.Pos(), "calls %s while %s is held; move the blocking operation outside the critical section", desc, heldName(held))
		return
	}
	tf := calleeFunc(w.p, call)
	if tf == nil || tf.Pkg() != w.p.Types {
		return
	}
	sum := w.sums[tf]
	if sum == nil {
		return
	}
	for id := range sum.acquires {
		for h := range held {
			if h != id {
				w.edges = append(w.edges, lockEdge{from: h, to: id, pos: call.Pos(), fname: w.fname})
			}
		}
	}
	if sum.blocks != "" {
		w.flag(call.Pos(), "calls %s, which may block (%s), while %s is held", tf.Name(), sum.blocks, heldName(held))
	}
}

func (w *lockWalker) flag(pos token.Pos, format string, args ...any) {
	w.out = append(w.out, diag(w.p, pos, "lockorder", "%s %s", w.fname,
		fmt.Sprintf(format, args...)))
}

// lockSummaries computes each declared function's acquire set and
// may-block fact, then closes both over the intra-package call graph.
func lockSummaries(p *Package) map[*types.Func]*lockFacts {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	sums := make(map[*types.Func]*lockFacts, len(decls))
	calls := make(map[*types.Func][]*types.Func)
	for obj, fd := range decls {
		facts := &lockFacts{acquires: make(map[lockID]bool)}
		nonBlocking := nonBlockingComms(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // spawned work blocks the goroutine, not the caller
			case *ast.CallExpr:
				if id, op, ok := lockOp(p, n); ok {
					switch op {
					case "Lock", "RLock", "TryLock", "TryRLock":
						facts.acquires[id] = true
					}
					return true
				}
				if desc := blockingStdCall(p, n); desc != "" && facts.blocks == "" {
					facts.blocks = desc
				}
				if tf := calleeFunc(p, n); tf != nil && tf.Pkg() == p.Types {
					calls[obj] = append(calls[obj], tf)
				}
			case *ast.SendStmt:
				if facts.blocks == "" && !nonBlocking[n.Pos()] {
					facts.blocks = "channel send"
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && facts.blocks == "" && !nonBlocking[n.Pos()] {
					facts.blocks = "channel receive"
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault && facts.blocks == "" {
					facts.blocks = "select"
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil && facts.blocks == "" {
					if _, ok := t.Underlying().(*types.Chan); ok {
						facts.blocks = "range over channel"
					}
				}
			}
			return true
		})
		sums[obj] = facts
	}

	// Fixpoint: propagate callees' acquire sets and may-block facts up
	// through the intra-package call graph.
	for changed := true; changed; {
		changed = false
		for obj, facts := range sums {
			for _, callee := range calls[obj] {
				cs := sums[callee]
				if cs == nil {
					continue
				}
				for id := range cs.acquires {
					if !facts.acquires[id] {
						facts.acquires[id] = true
						changed = true
					}
				}
				if facts.blocks == "" && cs.blocks != "" {
					facts.blocks = fmt.Sprintf("via %s: %s", callee.Name(), cs.blocks)
					changed = true
				}
			}
		}
	}
	return sums
}

// nonBlockingComms collects the positions of comm operations inside
// selects that carry a default clause — those sends/receives cannot
// park.
func nonBlockingComms(body ast.Node) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					out[m.Pos()] = true
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						out[m.Pos()] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// lockOp recognizes a sync.Mutex/RWMutex method call and names the lock
// it operates on.
func lockOp(p *Package, call *ast.CallExpr) (lockID, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	tf, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", false
	}
	sig, ok := tf.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", "", false
	}
	switch tf.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return lockIDOf(p, sel.X), tf.Name(), true
	}
	return "", "", false
}

// lockIDOf names the lock behind a receiver expression by declaration.
func lockIDOf(p *Package, e ast.Expr) lockID {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[x]; ok {
			if named := namedOf(s.Recv()); named != nil {
				return lockID(named.Obj().Name() + "." + x.Sel.Name)
			}
			return lockID(x.Sel.Name)
		}
		// pkg.Var qualified reference.
		return lockID(x.Sel.Name)
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(types.Object); ok && v.Parent() == p.Types.Scope() {
			return lockID("pkg-level " + x.Name)
		}
		// The receiver is the lock itself: an embedded mutex method
		// promoted onto a local, or a plain local mutex.
		if t := p.Info.TypeOf(x); t != nil {
			if named := namedOf(t); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
				return lockID(named.Obj().Name() + ".Mutex")
			}
		}
		return lockID(x.Name)
	}
	if t := p.Info.TypeOf(e); t != nil {
		if named := namedOf(t); named != nil {
			return lockID(named.Obj().Name() + ".Mutex")
		}
	}
	return lockID(types.ExprString(e))
}

// namedOf unwraps pointers to the named type beneath, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// osNonBlocking lists the os functions that touch no file descriptors.
var osNonBlocking = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "Exit": true, "Getpid": true, "Getppid": true,
	"Getuid": true, "Getgid": true, "Geteuid": true, "TempDir": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true,
	"IsTimeout": true, "IsPathSeparator": true, "NewSyscallError": true,
}

// netNonBlocking lists the pure-parsing helpers in net.
var netNonBlocking = map[string]bool{
	"SplitHostPort": true, "JoinHostPort": true, "ParseIP": true,
	"ParseCIDR": true, "ParseMAC": true, "IPv4": true, "CIDRMask": true,
}

// blockingStdCall describes a curated stdlib call that can park or
// perform I/O, or returns "".
func blockingStdCall(p *Package, call *ast.CallExpr) string {
	tf := calleeFunc(p, call)
	if tf == nil || tf.Pkg() == nil {
		return ""
	}
	pkg, name := tf.Pkg().Path(), tf.Name()
	switch pkg {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if name == "Wait" {
			if sig, ok := tf.Type().(*types.Signature); ok && sig.Recv() != nil {
				if named := namedOf(sig.Recv().Type()); named != nil {
					return "sync." + named.Obj().Name() + ".Wait"
				}
			}
		}
	case "os":
		if !osNonBlocking[name] {
			return "os." + name
		}
	case "net":
		if !netNonBlocking[name] {
			return "net." + name
		}
	case "net/http":
		return "net/http." + name
	case "io", "bufio":
		return pkg + "." + name
	case "fmt":
		if strings.HasPrefix(name, "Fprint") {
			return "fmt." + name + " (writes to an io.Writer)"
		}
	}
	return ""
}

// calleeFunc resolves a call's static callee, or nil for func values
// and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	}
	tf, _ := obj.(*types.Func)
	return tf
}

// funcDisplayName renders "(*Store).finish" / "Run" for messages.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// copyHeld clones a held set for branch-local mutation.
func copyHeld(held map[lockID]token.Pos) map[lockID]token.Pos {
	out := make(map[lockID]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// intersectHeld keeps the locks held on every continuing path — the
// sound direction for "may this op run while held" is to under-report
// after merges rather than invent phantom holds.
func intersectHeld(sets []map[lockID]token.Pos) map[lockID]token.Pos {
	if len(sets) == 0 {
		return map[lockID]token.Pos{}
	}
	out := copyHeld(sets[0])
	for _, s := range sets[1:] {
		for k := range out {
			if _, ok := s[k]; !ok {
				delete(out, k)
			}
		}
	}
	return out
}

// heldName picks a deterministic representative lock for messages.
func heldName(held map[lockID]token.Pos) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, string(k))
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// blockTerminates reports whether a statement list cannot fall through
// (its last statement returns, branches away, or panics).
func blockTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return blockTerminates(s.List)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// lockCycleDiags reports every acquired-before edge that participates
// in a cycle: acquiring B while holding A when some other path acquires
// A while holding B.
func lockCycleDiags(p *Package, edges []lockEdge) []Diagnostic {
	adj := make(map[lockID]map[lockID]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[lockID]bool)
		}
		adj[e.from][e.to] = true
	}
	reaches := func(from, to lockID) bool {
		seen := map[lockID]bool{}
		stack := []lockID{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			for m := range adj[n] {
				stack = append(stack, m)
			}
		}
		return false
	}
	var out []Diagnostic
	seen := map[string]bool{}
	for _, e := range edges {
		key := fmt.Sprintf("%v->%v@%d", e.from, e.to, e.pos)
		if seen[key] || !reaches(e.to, e.from) {
			continue
		}
		seen[key] = true
		out = append(out, diag(p, e.pos, "lockorder",
			"%s acquires %s while holding %s, but another path acquires %s while holding %s — lock-order cycle; pick one order",
			e.fname, e.to, e.from, e.from, e.to))
	}
	return out
}
