package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("github.com/.../internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the loader's shared position table.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the resolved identifier/expression facts analyzers
	// consume.
	Info *types.Info
}

// Loader loads and type-checks the module's packages using only the
// standard library: module-internal imports resolve recursively through
// the loader itself, everything else (the standard library) through
// go/importer's source importer. The repo has no third-party
// dependencies, so those two cases are exhaustive.
type Loader struct {
	// Fset is shared across every package so positions compare.
	Fset *token.FileSet

	root    string // module root directory
	module  string // module path from go.mod
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path → loaded package
	loading map[string]bool     // import-cycle guard
}

// NewLoader prepares a loader for the module rooted at dir (the
// directory containing go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		root:    abs,
		module:  mod,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// ModulePathOf reads the module path of the go.mod rooted at dir.
func ModulePathOf(dir string) (string, error) {
	return modulePath(filepath.Join(dir, "go.mod"))
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Discover walks the module tree and returns the import path of every
// directory holding non-test Go sources, sorted. Hidden directories,
// testdata trees and nested modules are skipped.
func (l *Loader) Discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		if hasGoSources(p) {
			rel, err := filepath.Rel(l.root, p)
			if err != nil {
				return err
			}
			paths = append(paths, importPathFor(l.module, rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// importPathFor maps a module-relative directory to its import path.
func importPathFor(module, rel string) string {
	if rel == "." || rel == "" {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}

// hasGoSources reports whether dir directly contains a non-test .go
// file.
func hasGoSources(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceName(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceName reports whether name is a non-test Go source file.
func isSourceName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// Load returns the type-checked package at the given module-internal
// import path, loading it (and, transitively, its imports) on first
// use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. It is the entry point fixture tests use to check a
// standalone testdata package.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go sources", dir)
	}
	sort.Strings(names)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the loader, everything else through the stdlib source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}
