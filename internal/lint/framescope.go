package lint

import (
	"go/ast"
	"go/types"
)

// Framescope guards the medium-owned frame pool (established by PR 1:
// frames handed to FrameHandler upcalls are recycled the instant the
// upcall returns). A MAC implementation that stores the *Frame — into a
// field, slice, map, channel, closure, or by handing it to another
// function — holds a pointer into the pool and will read (or corrupt) a
// recycled frame later: a use-after-recycle the race detector cannot
// see because everything is single-threaded. Implementations must copy
// the fields (and may take the *Packet) they need.
var Framescope = &Analyzer{
	Name: "framescope",
	Doc:  "MAC upcalls must not retain the medium-owned *Frame",
	Run:  runFramescope,
}

// upcallNames are the FrameHandler methods whose *Frame argument is
// pool-owned.
var upcallNames = map[string]bool{"OnFrame": true, "OnTxDone": true}

func runFramescope(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !upcallNames[fd.Name.Name] || fd.Body == nil {
				continue
			}
			params := frameParams(p, fd)
			if len(params) == 0 {
				continue
			}
			out = append(out, checkFrameEscapes(p, fd, params)...)
		}
	}
	return out
}

// frameParams returns the objects of every parameter typed *Frame.
func frameParams(p *Package, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	for _, field := range fd.Type.Params.List {
		if !isFramePtr(p.Info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// isFramePtr reports whether t is a pointer to a named type Frame.
func isFramePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Frame"
}

// checkFrameEscapes walks the upcall body flagging every construct that
// lets a tainted frame pointer outlive the call. Taint propagates
// through plain aliases (g := f), so renaming the pointer first does
// not evade the check.
func checkFrameEscapes(p *Package, fd *ast.FuncDecl, seeds []types.Object) []Diagnostic {
	tainted := make(map[types.Object]bool, len(seeds))
	for _, o := range seeds {
		tainted[o] = true
	}
	isTainted := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		return tainted[p.Info.Uses[id]]
	}
	// Fixed point over plain aliases: each pass may taint new locals.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !isTainted(rhs) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	var out []Diagnostic
	report := func(pos ast.Node, how string) {
		out = append(out, diag(p, pos.Pos(), "framescope",
			"%s.%s %s a medium-owned *Frame; frames are recycled when the upcall returns — copy the fields you need",
			recvTypeName(fd), fd.Name.Name, how))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isTainted(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					report(n, "stores")
				case *ast.IndexExpr:
					report(n, "stores")
				case *ast.Ident:
					// Plain aliases were handled by taint propagation;
					// only a package-level variable is an escape.
					if obj := p.Info.Uses[lhs]; obj != nil && obj.Parent() == p.Types.Scope() {
						report(n, "stores")
					}
				}
			}
		case *ast.SendStmt:
			if isTainted(n.Value) {
				report(n, "sends")
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if !isTainted(arg) {
					continue
				}
				if isAppend(p, n) {
					report(n, "appends")
				} else {
					report(n, "passes")
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isTainted(v) {
					report(n, "embeds")
				}
			}
		case *ast.FuncLit:
			captured := false
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok && tainted[p.Info.Uses[id]] {
					captured = true
				}
				return !captured
			})
			if captured {
				report(n, "captures")
			}
			return false // inner stores already reported as a capture
		}
		return true
	})
	return out
}

// isAppend reports whether the call is the append builtin.
func isAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// recvTypeName names the receiver's type for messages.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
