// Package lint is edvet's analysis engine: a dependency-free static
// checker (stdlib go/ast + go/parser + go/types only) enforcing the
// repo-specific invariants no compiler checks — deterministic replay,
// medium-owned frame lifetimes, the stable snake_case JSON wire
// surface, context discipline, hot-path allocation hygiene, the
// serving tier's lock and goroutine discipline (lockorder, goroleak),
// compiler-verified escape behavior (escapegold, via edvet -escape)
// and the frozen exported facade surface (apisurface). Each invariant
// is one Analyzer; cmd/edvet is the driver.
//
// # Ignore directives
//
// A diagnostic can be suppressed with a comment on the offending line
// (or the line directly above it):
//
//	//edvet:ignore <analyzer> <reason>
//
// The reason is mandatory — an ignore without one is itself a
// diagnostic — and every ignore is reported in the run summary so
// suppressions stay visible instead of rotting silently.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description of the invariant it guards.
	Doc string
	// Run analyzes one package and returns its findings.
	Run func(p *Package) []Diagnostic
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{
	Detrand, Framescope, Jsonwire, Ctxfirst, Hotalloc,
	Lockorder, Goroleak, Escapegold, Apisurface,
}

// byName resolves an analyzer name (for directive validation).
func byName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Ignore is one parsed //edvet:ignore directive.
type Ignore struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	// Used records whether the directive suppressed at least one
	// diagnostic this run.
	Used bool
}

// ignorePrefix is the directive marker. The space-free form matches the
// //go:build convention for machine-readable comments.
const ignorePrefix = "//edvet:ignore"

// collectIgnores parses every ignore directive in the package. Malformed
// directives (unknown analyzer, missing reason) come back as
// diagnostics: an unexplained suppression is a finding, not a license.
func collectIgnores(p *Package) ([]*Ignore, []Diagnostic) {
	var igs []*Ignore
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "edvet",
						Message: "ignore directive names no analyzer (want //edvet:ignore <analyzer> <reason>)"})
					continue
				}
				name := fields[0]
				if byName(name) == nil {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "edvet",
						Message: fmt.Sprintf("ignore directive names unknown analyzer %q", name)})
					continue
				}
				reason := strings.Join(fields[1:], " ")
				if reason == "" {
					diags = append(diags, Diagnostic{Pos: pos, Analyzer: "edvet",
						Message: fmt.Sprintf("unexplained ignore for %s: a reason is mandatory", name)})
					continue
				}
				igs = append(igs, &Ignore{File: pos.Filename, Line: pos.Line, Analyzer: name, Reason: reason})
			}
		}
	}
	return igs, diags
}

// applyIgnores drops diagnostics covered by a directive on the same
// line or the line directly above, marking the directive used.
func applyIgnores(diags []Diagnostic, igs []*Ignore) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range igs {
			if ig.Analyzer == d.Analyzer && ig.File == d.Pos.Filename &&
				(ig.Line == d.Pos.Line || ig.Line == d.Pos.Line-1) {
				ig.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// detrandScope lists the module-relative packages whose event order and
// serialized output must be a pure function of the seed (the
// byte-for-byte replay contract behind the suite golden and the bench
// gate).
var detrandScope = []string{
	"internal/sim",
	"internal/adapt",
	"internal/scenario",
	"internal/core",
	"internal/nbs",
	"internal/opt",
	"internal/macmodel",
	"internal/traffic",
	"internal/topology",
	"internal/channel",
}

// analyzersFor scopes the suite per package: detrand guards the
// deterministic core, framescope the simulator's frame pool, jsonwire
// the public wire surface (facade + internal/serve), lockorder and
// goroleak the mutex/goroutine-heavy serving tier, apisurface the root
// facade package, while ctxfirst, hotalloc and the escapegold scope
// guard apply module-wide (the latter two only fire on annotated
// functions anyway).
func analyzersFor(module, path string) []*Analyzer {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, module), "/")
	inScope := func(scope []string) bool {
		for _, s := range scope {
			if rel == s {
				return true
			}
		}
		return false
	}
	var as []*Analyzer
	if inScope(detrandScope) {
		as = append(as, Detrand)
	}
	if rel == "internal/sim" {
		as = append(as, Framescope)
	}
	if rel == "" || rel == "internal/serve" {
		as = append(as, Jsonwire)
	}
	if inScope(lockScope) {
		as = append(as, Lockorder)
	}
	if inScope(goroScope) {
		as = append(as, Goroleak)
	}
	if rel == "" {
		as = append(as, Apisurface)
	}
	as = append(as, Ctxfirst, Hotalloc, Escapegold)
	return as
}

// Result is one edvet run over a set of packages.
type Result struct {
	// Diags are the surviving findings, sorted by position.
	Diags []Diagnostic
	// Ignores are every well-formed directive seen, used or not — the
	// visibility summary.
	Ignores []*Ignore
}

// Run loads the module rooted at root and analyzes the packages named
// by the given import paths (all discovered packages when paths is
// empty), returning findings and the suppression summary.
func Run(root string, paths []string) (*Result, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		paths, err = l.Discover()
		if err != nil {
			return nil, err
		}
	}
	res := &Result{}
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		var diags []Diagnostic
		for _, a := range analyzersFor(l.Module(), path) {
			diags = append(diags, a.Run(p)...)
		}
		igs, bad := collectIgnores(p)
		diags = applyIgnores(diags, igs)
		res.Diags = append(res.Diags, diags...)
		res.Diags = append(res.Diags, bad...)
		res.Ignores = append(res.Ignores, igs...)
	}
	sortDiags(res.Diags)
	sort.Slice(res.Ignores, func(i, j int) bool {
		a, b := res.Ignores[i], res.Ignores[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return res, nil
}

// sortDiags orders findings by file, line, column, analyzer.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// diag is the analyzers' shared constructor.
func diag(p *Package, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}
