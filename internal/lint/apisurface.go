package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Apisurface freezes the exported surface of the root edmac package —
// the Client facade, its options, and the deprecated wrappers PR 5
// promised byte-compatibility for. Every exported identifier is
// rendered to one canonical line (sorted, package-qualified types) and
// diffed against a committed golden: an accidental signature change,
// removed symbol, or new export fails `make lint` here instead of
// surfacing in a consumer's build. Intentional changes regenerate with
// `make api-golden`.
var Apisurface = &Analyzer{
	Name: "apisurface",
	Doc:  "the root package's exported API matches the committed surface golden",
	Run:  runApisurface,
}

// apiGoldenRel is the committed golden's module-relative path. A
// fixture package can override it with its own api_golden.txt sitting
// next to the sources.
const apiGoldenRel = "internal/lint/testdata/api_surface.txt"

func runApisurface(p *Package) []Diagnostic {
	goldenPath := filepath.Join(p.Dir, "api_golden.txt")
	if _, err := os.Stat(goldenPath); err != nil {
		goldenPath = filepath.Join(p.Dir, filepath.FromSlash(apiGoldenRel))
	}
	lines, posOf := APISurface(p)
	pkgPos := token.NoPos
	if len(p.Files) > 0 {
		pkgPos = p.Files[0].Package
	}
	want, err := readGoldenLines(goldenPath)
	if err != nil {
		return []Diagnostic{diag(p, pkgPos, "apisurface",
			"API surface golden unreadable (run `make api-golden` to create it): %v", err)}
	}
	missing, extra := diffLines(want, lines)
	var out []Diagnostic
	for _, l := range extra {
		pos := pkgPos
		if pp, ok := posOf[l]; ok {
			pos = pp
		}
		out = append(out, diag(p, pos, "apisurface",
			"exported surface gained %q, not in the committed golden; run `make api-golden` if intentional", l))
	}
	for _, l := range missing {
		out = append(out, diag(p, pkgPos, "apisurface",
			"%q was removed from the exported API surface; a breaking change — run `make api-golden` if intentional", l))
	}
	return out
}

// APISurface renders the package's exported surface as sorted canonical
// lines, plus each line's declaration position for diagnostics.
func APISurface(p *Package) ([]string, map[string]token.Pos) {
	qual := types.RelativeTo(p.Types)
	var lines []string
	posOf := make(map[string]token.Pos)
	add := func(line string, pos token.Pos) {
		lines = append(lines, line)
		posOf[line] = pos
	}

	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Const:
			add(fmt.Sprintf("const %s %s", name, types.TypeString(o.Type(), qual)), o.Pos())
		case *types.Var:
			add(fmt.Sprintf("var %s %s", name, types.TypeString(o.Type(), qual)), o.Pos())
		case *types.Func:
			add(fmt.Sprintf("func %s%s", name, sigString(o.Type().(*types.Signature), qual)), o.Pos())
		case *types.TypeName:
			if o.IsAlias() {
				add(fmt.Sprintf("type %s = %s", name, types.TypeString(o.Type(), qual)), o.Pos())
				continue
			}
			named, ok := o.Type().(*types.Named)
			if !ok {
				continue
			}
			switch u := named.Underlying().(type) {
			case *types.Struct:
				add(fmt.Sprintf("type %s struct", name), o.Pos())
				for i := 0; i < u.NumFields(); i++ {
					f := u.Field(i)
					if !f.Exported() {
						continue
					}
					add(fmt.Sprintf("field %s.%s %s", name, f.Name(), types.TypeString(f.Type(), qual)), f.Pos())
				}
			case *types.Interface:
				add(fmt.Sprintf("type %s interface", name), o.Pos())
				for i := 0; i < u.NumMethods(); i++ {
					m := u.Method(i)
					if !m.Exported() {
						continue
					}
					add(fmt.Sprintf("method %s.%s%s", name, m.Name(), sigString(m.Type().(*types.Signature), qual)), m.Pos())
				}
			default:
				add(fmt.Sprintf("type %s %s", name, types.TypeString(named.Underlying(), qual)), o.Pos())
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				if !m.Exported() {
					continue
				}
				recv := name
				if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
					if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
						recv = "*" + name
					}
				}
				add(fmt.Sprintf("method (%s).%s%s", recv, m.Name(), sigString(m.Type().(*types.Signature), qual)), m.Pos())
			}
		}
	}
	sort.Strings(lines)
	return lines, posOf
}

// sigString renders a signature without the leading "func" keyword.
func sigString(sig *types.Signature, qual types.Qualifier) string {
	return strings.TrimPrefix(types.TypeString(sig, qual), "func")
}

// WriteAPIGolden loads the module's root package and rewrites the
// committed API-surface golden from its current exports.
func WriteAPIGolden(root string) (string, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	l, err := NewLoader(absRoot)
	if err != nil {
		return "", err
	}
	p, err := l.Load(l.Module())
	if err != nil {
		return "", err
	}
	lines, _ := APISurface(p)
	path := filepath.Join(absRoot, filepath.FromSlash(apiGoldenRel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("# Exported API surface of the root edmac package, one symbol per\n")
	b.WriteString("# line, sorted. A diff here is a breaking (or surface-widening)\n")
	b.WriteString("# change; regenerate intentionally with `make api-golden`.\n")
	for _, line := range lines {
		b.WriteString(line)
		b.WriteString("\n")
	}
	return path, os.WriteFile(path, []byte(b.String()), 0o644)
}
