package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroleak guards the serving tier against fire-and-forget goroutines.
// A process meant to serve millions of users cannot afford goroutines
// that outlive the request, store or server that spawned them: each
// leaked one pins its stack, its captures and — for the jobs tier —
// open spill files. Every `go` statement in the serving/worker
// packages must therefore carry a visible termination path: the spawned
// body (or its intra-package callee) must reference a context.Context,
// receive from a channel (done/quit channels, range, select), or join
// a sync.WaitGroup via Done/Wait. Anything else is a diagnostic; the
// audited few carry //edvet:ignore goroleak <reason>.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement in the serving tier has a visible termination path (ctx, done channel, or WaitGroup)",
	Run:  runGoroleak,
}

// goroScope lists the packages (module-relative) whose goroutines must
// provably terminate: the serving/worker tier plus the long-running
// binaries that host it.
var goroScope = []string{
	"internal/serve",
	"internal/jobs",
	"internal/lru",
	"internal/par",
	"cmd/edserve",
	"cmd/edload",
}

func runGoroleak(p *Package) []Diagnostic {
	decls := funcDecls(p)
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goTerminates(p, decls, g.Call, map[*types.Func]bool{}) {
				out = append(out, diag(p, g.Pos(), "goroleak",
					"goroutine has no visible termination path: the body neither watches a context.Context, receives from a channel, nor joins a sync.WaitGroup"))
			}
			return true
		})
	}
	return out
}

// funcDecls maps each declared function object to its body.
func funcDecls(p *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// goTerminates reports whether the spawned call has a visible
// termination path: a lifecycle-typed argument, or a body that watches
// one.
func goTerminates(p *Package, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, seen map[*types.Func]bool) bool {
	for _, a := range call.Args {
		if isLifecycleType(p.Info.TypeOf(a)) {
			return true
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return bodyTerminates(p, decls, lit.Body, seen)
	}
	if tf := calleeFunc(p, call); tf != nil && tf.Pkg() == p.Types {
		if seen[tf] {
			return false
		}
		seen[tf] = true
		if fd := decls[tf]; fd != nil {
			return bodyTerminates(p, decls, fd.Body, seen)
		}
	}
	return false
}

// bodyTerminates scans a function body for any termination signal:
// a context.Context reference, a channel receive/range/select, or a
// WaitGroup Done/Wait. Intra-package calls are followed one level deep
// per callee (cycle-guarded), so `go s.worker()` is judged by worker's
// own body.
func bodyTerminates(p *Package, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, seen map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if isContextType(p.Info.TypeOf(n)) {
				found = true
			}
		case *ast.SelectorExpr:
			if isContextType(p.Info.TypeOf(n)) {
				found = true
			}
		case *ast.CallExpr:
			if isWaitGroupJoin(p, n) {
				found = true
				return false
			}
			if tf := calleeFunc(p, n); tf != nil && tf.Pkg() == p.Types && !seen[tf] {
				seen[tf] = true
				if fd := decls[tf]; fd != nil && bodyTerminates(p, decls, fd.Body, seen) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isLifecycleType reports whether t can carry a termination signal into
// the goroutine: a context, a channel, or a WaitGroup pointer.
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		if named := namedOf(u.Elem()); named != nil {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
		}
	}
	return false
}

// isWaitGroupJoin recognizes (*sync.WaitGroup).Done and .Wait calls.
func isWaitGroupJoin(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tf, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || (tf.Name() != "Done" && tf.Name() != "Wait") {
		return false
	}
	sig, ok := tf.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
