package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"
)

// Jsonwire guards the serialized API surface (established by PR 5 and
// frozen ever since: the suite golden, the response cache keys and
// every HTTP client depend on stable bytes). On wire structs — structs
// that already carry at least one json tag — every exported field must
// have an explicit snake_case json name (or "-"), so a new field can
// never silently serialize under its Go name; and every error code
// handed to the serve envelope must come from the pinned code set
// clients branch on (PR 7's unified envelope).
var Jsonwire = &Analyzer{
	Name: "jsonwire",
	Doc:  "wire structs carry explicit snake_case json tags; envelope codes come from the pinned set",
	Run:  runJsonwire,
}

// snakeCase is the permitted wire-name shape.
var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// pinnedCodes is the frozen machine-readable error-code set of the
// serve envelope. Growing it is an API change: add the code here and in
// internal/serve in the same commit, and document it in the README's
// error-code table.
var pinnedCodes = map[string]bool{
	"invalid_request":    true,
	"infeasible":         true,
	"timeout":            true,
	"queue_full":         true,
	"rate_limited":       true,
	"not_found":          true,
	"method_not_allowed": true,
	"cancelled":          true,
	"client_closed":      true,
	"internal":           true,
}

func runJsonwire(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				out = append(out, checkWireStruct(p, n)...)
			case *ast.CallExpr:
				out = append(out, checkEnvelopeCode(p, n)...)
			case *ast.FuncDecl:
				out = append(out, checkErrorStatusReturns(p, n)...)
			}
			return true
		})
	}
	return out
}

// checkErrorStatusReturns pins the code half of every return in
// errorStatus, the classifier feeding writeError: together with the
// writeCoded argument rule this closes the loop — every code reaching
// the wire is mechanically a member of the pinned set.
func checkErrorStatusReturns(p *Package, fd *ast.FuncDecl) []Diagnostic {
	if fd.Name.Name != "errorStatus" || fd.Body == nil {
		return nil
	}
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		arg := ret.Results[len(ret.Results)-1]
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			out = append(out, diag(p, arg.Pos(), "jsonwire",
				"errorStatus must return a pinned code constant, not a computed value"))
			return true
		}
		if code := constant.StringVal(tv.Value); !pinnedCodes[code] {
			out = append(out, diag(p, arg.Pos(), "jsonwire",
				"errorStatus returns code %q, which is not in the pinned envelope code set", code))
		}
		return true
	})
	return out
}

// checkWireStruct validates one struct's tags if it is a wire struct
// (has at least one json-tagged field).
func checkWireStruct(p *Package, st *ast.StructType) []Diagnostic {
	wire := false
	for _, field := range st.Fields.List {
		if _, ok := jsonTag(field); ok {
			wire = true
			break
		}
	}
	if !wire {
		return nil
	}
	var out []Diagnostic
	for _, field := range st.Fields.List {
		names := field.Names
		if len(names) == 0 {
			// An untagged embedded struct inlines its (tagged) fields —
			// the deliberate composition idiom (e.g. ValidationReport
			// embedding SimReport). Any other embedded kind would
			// serialize under its Go type name, so it must be tagged.
			if id := embeddedName(field.Type); id != nil && id.IsExported() {
				if _, ok := jsonTag(field); !ok && !isStructType(p, field.Type) {
					out = append(out, diag(p, field.Pos(), "jsonwire",
						"embedded non-struct field %s on a wire struct has no json tag; it serializes under its Go type name", id.Name))
				}
			}
			continue
		}
		for _, name := range names {
			if !name.IsExported() {
				continue
			}
			tag, ok := jsonTag(field)
			if !ok {
				out = append(out, diag(p, name.Pos(), "jsonwire",
					"exported field %s on a wire struct has no json tag; it would serialize under its Go name", name.Name))
				continue
			}
			wireName := strings.Split(tag, ",")[0]
			if wireName == "-" {
				continue
			}
			if wireName == "" {
				out = append(out, diag(p, name.Pos(), "jsonwire",
					"field %s's json tag has no name; options without a name fall back to the Go name", name.Name))
				continue
			}
			if !snakeCase.MatchString(wireName) {
				out = append(out, diag(p, name.Pos(), "jsonwire",
					"field %s's wire name %q is not snake_case", name.Name, wireName))
			}
		}
	}
	return out
}

// jsonTag extracts the json struct tag, reporting whether one exists.
func jsonTag(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return "", false
	}
	return reflect.StructTag(raw).Lookup("json")
}

// isStructType reports whether the field type is (a pointer to) a
// struct, whose untagged embedding inlines fields instead of nesting.
func isStructType(p *Package, t ast.Expr) bool {
	typ := p.Info.TypeOf(t)
	if typ == nil {
		return false
	}
	if ptr, ok := typ.Underlying().(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	_, ok := typ.Underlying().(*types.Struct)
	return ok
}

// embeddedName digs the identifier out of an embedded field's type.
func embeddedName(t ast.Expr) *ast.Ident {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.SelectorExpr:
			return e.Sel
		case *ast.Ident:
			return e
		default:
			return nil
		}
	}
}

// checkEnvelopeCode pins the code argument of writeCoded calls: it must
// be a constant whose value is in the pinned set, so a typo'd or ad-hoc
// code can never reach a client.
func checkEnvelopeCode(p *Package, call *ast.CallExpr) []Diagnostic {
	name := calleeName(call)
	if name != "writeCoded" || len(call.Args) < 3 {
		return nil
	}
	arg := call.Args[2]
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return []Diagnostic{diag(p, arg.Pos(), "jsonwire",
			"error code passed to writeCoded is not a string constant; use one of the pinned code constants")}
	}
	code := constant.StringVal(tv.Value)
	if !pinnedCodes[code] {
		return []Diagnostic{diag(p, arg.Pos(), "jsonwire",
			"error code %q is not in the pinned envelope code set", code)}
	}
	return nil
}

// calleeName names the called function for plain and method calls.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
