package lint

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Escapegold pins hot-path allocation behavior with the compiler's own
// escape analysis instead of AST approximation. `edvet -escape` runs
// `go build -gcflags=-m=2` over the escape-scope packages, extracts the
// escape/heap decisions landing inside //edvet:hotpath functions, and
// diffs them against the committed golden
// (internal/lint/testdata/escape_golden.txt). That catches what
// hotalloc structurally cannot: generics-driven boxing, inlining
// changes, and new escapes introduced by refactors far from the
// annotated function.
//
// In the normal per-package pass the analyzer is a cheap scope guard:
// a //edvet:hotpath annotation in a package outside the escape scope
// would silently evade the compiler gate, so it is a diagnostic until
// the package is added to escapeScope and the golden regenerated.
var Escapegold = &Analyzer{
	Name: "escapegold",
	Doc:  "//edvet:hotpath escape decisions match the committed compiler golden (edvet -escape)",
	Run:  runEscapegoldScope,
}

// escapeScope lists the packages (module-relative) the escape golden
// covers. Every //edvet:hotpath annotation in the tree must live in one
// of them.
var escapeScope = []string{
	"internal/sim",
}

// escapeGoldenRel is the committed golden's module-relative path.
const escapeGoldenRel = "internal/lint/testdata/escape_golden.txt"

func runEscapegoldScope(p *Package) []Diagnostic {
	for _, s := range escapeScope {
		if p.Path == s || strings.HasSuffix(p.Path, "/"+s) {
			return nil
		}
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpath(fd) {
				continue
			}
			out = append(out, diag(p, fd.Pos(), "escapegold",
				"//edvet:hotpath function %s is outside the escape-golden scope (%s); add its package to escapeScope in internal/lint/escapegold.go and run make escape-golden",
				funcDisplayName(fd), strings.Join(escapeScope, ", ")))
		}
	}
	return out
}

// EscapeResult is one `edvet -escape` run: the current compiler facts
// and their drift against the committed golden.
type EscapeResult struct {
	// Lines are the current escape facts, one per line, sorted.
	Lines []string
	// Missing are golden lines the compiler no longer reports.
	Missing []string
	// Extra are compiler facts absent from the golden.
	Extra []string
	// GoldenPath is the absolute path of the golden file.
	GoldenPath string
}

// Clean reports whether the current facts match the golden exactly.
func (r *EscapeResult) Clean() bool { return len(r.Missing) == 0 && len(r.Extra) == 0 }

// hotRange is one annotated function's source extent.
type hotRange struct {
	file       string // absolute path
	start, end int    // line range, inclusive
	display    string // "internal/sim.(*Medium).setState"
}

// escapeLineRe matches one compiler diagnostic line:
// "internal/sim/medium.go:123:7: msg".
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeFactRe selects the decision lines worth pinning; the -m=2
// "flow:"/"from" provenance chatter and inlining decisions are noise
// that changes with unrelated refactors.
var escapeFactRe = regexp.MustCompile(`escapes to heap|moved to heap|does not escape|leaking param`)

// RunEscape executes the compiler over the escape-scope packages,
// extracts the escape facts inside //edvet:hotpath functions, and
// diffs (or, with update, rewrites) the committed golden.
func RunEscape(root string, update bool) (*EscapeResult, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l, err := NewLoader(absRoot)
	if err != nil {
		return nil, err
	}

	var hot []hotRange
	for _, scope := range escapeScope {
		p, err := l.Load(importPathFor(l.Module(), scope))
		if err != nil {
			return nil, err
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotpath(fd) {
					continue
				}
				start := p.Fset.Position(fd.Pos())
				end := p.Fset.Position(fd.End())
				hot = append(hot, hotRange{
					file:    start.Filename,
					start:   start.Line,
					end:     end.Line,
					display: scope + "." + funcDisplayName(fd),
				})
			}
		}
	}

	args := []string{"build", "-gcflags=-m=2"}
	for _, scope := range escapeScope {
		args = append(args, "./"+filepath.ToSlash(scope))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = absRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}

	lines := parseEscapeFacts(absRoot, string(out), hot)

	goldenPath := filepath.Join(absRoot, filepath.FromSlash(escapeGoldenRel))
	res := &EscapeResult{Lines: lines, GoldenPath: goldenPath}
	if update {
		return res, writeEscapeGolden(goldenPath, lines)
	}
	want, err := readGoldenLines(goldenPath)
	if err != nil {
		return nil, fmt.Errorf("reading escape golden (run `make escape-golden` to create it): %w", err)
	}
	res.Missing, res.Extra = diffLines(want, lines)
	return res, nil
}

// parseEscapeFacts maps compiler output to sorted, deduplicated
// "func: fact" lines restricted to the hotpath ranges.
func parseEscapeFacts(root, out string, hot []hotRange) []string {
	set := make(map[string]bool)
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || strings.HasPrefix(m[1], "<autogenerated>") {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !escapeFactRe.MatchString(msg) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, filepath.FromSlash(file))
		}
		ln, _ := strconv.Atoi(m[2])
		for _, h := range hot {
			if file == h.file && ln >= h.start && ln <= h.end {
				set[h.display+": "+msg] = true
				break
			}
		}
	}
	lines := make([]string, 0, len(set))
	for l := range set {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return lines
}

// writeEscapeGolden rewrites the golden with a regeneration header.
func writeEscapeGolden(path string, lines []string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# Escape-analysis golden for //edvet:hotpath functions.\n")
	b.WriteString("# One compiler fact per line, sorted; line numbers are elided so the\n")
	b.WriteString("# golden survives edits that move code without changing decisions.\n")
	b.WriteString("# Regenerate with `make escape-golden` after an intentional change.\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readGoldenLines loads a golden file, dropping comments and blanks.
func readGoldenLines(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimRight(l, "\r")
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		out = append(out, l)
	}
	return out, nil
}

// diffLines reports want-lines absent from got (missing) and got-lines
// absent from want (extra). Both inputs may be unsorted.
func diffLines(want, got []string) (missing, extra []string) {
	w := make(map[string]bool, len(want))
	for _, l := range want {
		w[l] = true
	}
	g := make(map[string]bool, len(got))
	for _, l := range got {
		g[l] = true
		if !w[l] {
			extra = append(extra, l)
		}
	}
	for _, l := range want {
		if !g[l] {
			missing = append(missing, l)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	return missing, extra
}
