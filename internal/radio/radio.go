// Package radio models the electrical and timing characteristics of
// low-power wireless transceivers used by duty-cycled MAC protocols.
//
// The analytic MAC models (internal/macmodel) and the packet-level
// simulator (internal/sim) both account energy as power × time per radio
// state; this package is the single source of truth for those powers and
// for frame airtimes.
//
// All quantities use SI units: watts, seconds, joules, and bits per
// second. Times are plain float64 seconds rather than time.Duration
// because they enter closed-form expressions (divisions, square roots)
// where Duration arithmetic would obscure the math; every field and
// return value documents its unit.
package radio

import (
	"errors"
	"fmt"
)

// State identifies an operating mode of the transceiver.
type State int

const (
	// Sleep is the lowest-power state; the radio can neither send nor
	// receive and must pay Startup to leave it.
	Sleep State = iota + 1
	// Listen is idle listening: the receiver is powered but no frame is
	// currently being decoded.
	Listen
	// Rx is active frame reception.
	Rx
	// Tx is active frame transmission.
	Tx
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case Sleep:
		return "sleep"
	case Listen:
		return "listen"
	case Rx:
		return "rx"
	case Tx:
		return "tx"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Radio describes one transceiver model. The zero value is not usable;
// construct instances with a profile function (CC2420, CC1101) or fill
// every field and call Validate.
type Radio struct {
	// Name identifies the profile, e.g. "cc2420".
	Name string
	// BitRate is the physical-layer data rate in bits per second.
	BitRate float64
	// PowerTx is the power drawn while transmitting, in watts.
	PowerTx float64
	// PowerRx is the power drawn while receiving a frame, in watts.
	PowerRx float64
	// PowerListen is the power drawn during idle listening, in watts.
	// For most transceivers it equals PowerRx.
	PowerListen float64
	// PowerSleep is the power drawn asleep, in watts.
	PowerSleep float64
	// Startup is the time to transition from Sleep to an active state,
	// in seconds. The radio draws PowerListen during startup.
	Startup float64
	// Turnaround is the rx<->tx switching time in seconds.
	Turnaround float64
	// CCA is the duration of one clear-channel assessment in seconds.
	CCA float64
	// PHYOverhead is the number of bytes the physical layer prepends to
	// every frame (preamble, start-of-frame delimiter, length field).
	PHYOverhead int
}

// Validate reports whether the radio description is physically sensible.
func (r Radio) Validate() error {
	switch {
	case r.BitRate <= 0:
		return fmt.Errorf("radio %q: bit rate %v must be positive", r.Name, r.BitRate)
	case r.PowerTx <= 0 || r.PowerRx <= 0 || r.PowerListen <= 0:
		return fmt.Errorf("radio %q: active powers must be positive", r.Name)
	case r.PowerSleep < 0:
		return fmt.Errorf("radio %q: sleep power %v must be non-negative", r.Name, r.PowerSleep)
	case r.PowerSleep >= r.PowerListen:
		return fmt.Errorf("radio %q: sleep power %v must be below listen power %v",
			r.Name, r.PowerSleep, r.PowerListen)
	case r.Startup < 0 || r.Turnaround < 0 || r.CCA <= 0:
		return fmt.Errorf("radio %q: timing parameters must be non-negative (cca positive)", r.Name)
	case r.PHYOverhead < 0:
		return fmt.Errorf("radio %q: PHY overhead %d must be non-negative", r.Name, r.PHYOverhead)
	}
	return nil
}

// Power returns the power drawn in state s, in watts.
func (r Radio) Power(s State) float64 {
	switch s {
	case Sleep:
		return r.PowerSleep
	case Listen:
		return r.PowerListen
	case Rx:
		return r.PowerRx
	case Tx:
		return r.PowerTx
	default:
		return 0
	}
}

// ByteTime returns the airtime of a single byte in seconds.
func (r Radio) ByteTime() float64 {
	return 8 / r.BitRate
}

// FrameAirtime returns the on-air duration in seconds of a frame carrying
// the given number of MAC-layer bytes, including the PHY overhead.
func (r Radio) FrameAirtime(macBytes int) float64 {
	if macBytes < 0 {
		macBytes = 0
	}
	return float64(r.PHYOverhead+macBytes) * r.ByteTime()
}

// TxEnergy returns the energy in joules to transmit a frame of the given
// MAC-layer size, excluding any turnaround or startup cost.
func (r Radio) TxEnergy(macBytes int) float64 {
	return r.FrameAirtime(macBytes) * r.PowerTx
}

// RxEnergy returns the energy in joules to receive a frame of the given
// MAC-layer size.
func (r Radio) RxEnergy(macBytes int) float64 {
	return r.FrameAirtime(macBytes) * r.PowerRx
}

// ErrUnknownProfile is returned by Profile for unrecognized names.
var ErrUnknownProfile = errors.New("radio: unknown profile")

// Profile returns a named radio profile. Recognized names are "cc2420"
// and "cc1101" (case-sensitive).
func Profile(name string) (Radio, error) {
	switch name {
	case "cc2420":
		return CC2420(), nil
	case "cc1101":
		return CC1101(), nil
	default:
		return Radio{}, fmt.Errorf("%w: %q", ErrUnknownProfile, name)
	}
}
