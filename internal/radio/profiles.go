package radio

// CC2420 returns the profile of the Texas Instruments/Chipcon CC2420, the
// 2.4 GHz IEEE 802.15.4 transceiver used by the TelosB/TMote-class motes
// that X-MAC, DMAC and LMAC were originally evaluated on.
//
// Electrical values assume a 3.0 V supply: 17.4 mA transmit at 0 dBm,
// 18.8 mA receive/listen, ~1 µA in power-down. The 802.15.4 PHY prepends
// 6 bytes (4 preamble + 1 SFD + 1 length) to every frame at 250 kbit/s.
func CC2420() Radio {
	return Radio{
		Name:        "cc2420",
		BitRate:     250e3,
		PowerTx:     52.2e-3,
		PowerRx:     56.4e-3,
		PowerListen: 56.4e-3,
		PowerSleep:  3e-6,
		Startup:     0.5e-3,
		Turnaround:  0.192e-3,
		CCA:         0.128e-3,
		PHYOverhead: 6,
	}
}

// CC1101 returns the profile of the Texas Instruments CC1101 sub-GHz
// transceiver, a common alternative for long-range, low-rate deployments.
// Values assume 3.0 V supply, 0 dBm output and 250 kBaud GFSK:
// 16.9 mA transmit, 16.4 mA receive, 0.2 µA sleep.
func CC1101() Radio {
	return Radio{
		Name:        "cc1101",
		BitRate:     250e3,
		PowerTx:     50.7e-3,
		PowerRx:     49.2e-3,
		PowerListen: 49.2e-3,
		PowerSleep:  0.6e-6,
		Startup:     0.8e-3,
		Turnaround:  0.25e-3,
		CCA:         0.15e-3,
		PHYOverhead: 8,
	}
}
