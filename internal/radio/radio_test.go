package radio

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestProfilesValidate(t *testing.T) {
	for _, r := range []Radio{CC2420(), CC1101()} {
		if err := r.Validate(); err != nil {
			t.Errorf("profile %s: %v", r.Name, err)
		}
	}
}

func TestProfileLookup(t *testing.T) {
	tests := []struct {
		name    string
		want    string
		wantErr bool
	}{
		{name: "cc2420", want: "cc2420"},
		{name: "cc1101", want: "cc1101"},
		{name: "nrf24", wantErr: true},
		{name: "", wantErr: true},
	}
	for _, tt := range tests {
		r, err := Profile(tt.name)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Profile(%q): want error, got %+v", tt.name, r)
			}
			if !errors.Is(err, ErrUnknownProfile) {
				t.Errorf("Profile(%q): error %v does not wrap ErrUnknownProfile", tt.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("Profile(%q): %v", tt.name, err)
			continue
		}
		if r.Name != tt.want {
			t.Errorf("Profile(%q).Name = %q, want %q", tt.name, r.Name, tt.want)
		}
	}
}

func TestValidateRejectsBadRadios(t *testing.T) {
	base := CC2420()
	mutations := map[string]func(*Radio){
		"zero bitrate":        func(r *Radio) { r.BitRate = 0 },
		"negative bitrate":    func(r *Radio) { r.BitRate = -1 },
		"zero tx power":       func(r *Radio) { r.PowerTx = 0 },
		"zero rx power":       func(r *Radio) { r.PowerRx = 0 },
		"zero listen power":   func(r *Radio) { r.PowerListen = 0 },
		"negative sleep":      func(r *Radio) { r.PowerSleep = -1e-6 },
		"sleep above listen":  func(r *Radio) { r.PowerSleep = r.PowerListen * 2 },
		"negative startup":    func(r *Radio) { r.Startup = -1e-3 },
		"negative turnaround": func(r *Radio) { r.Turnaround = -1e-3 },
		"zero cca":            func(r *Radio) { r.CCA = 0 },
		"negative overhead":   func(r *Radio) { r.PHYOverhead = -1 },
	}
	for name, mutate := range mutations {
		r := base
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid radio", name)
		}
	}
}

func TestByteTime(t *testing.T) {
	r := CC2420()
	want := 32e-6 // 8 bits / 250 kbit/s
	if got := r.ByteTime(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ByteTime = %v, want %v", got, want)
	}
}

func TestFrameAirtime(t *testing.T) {
	r := CC2420()
	tests := []struct {
		bytes int
		want  float64
	}{
		{bytes: 0, want: 6 * 32e-6},
		{bytes: 11, want: 17 * 32e-6},
		{bytes: 43, want: 49 * 32e-6},
		{bytes: -5, want: 6 * 32e-6}, // clamped to PHY overhead only
	}
	for _, tt := range tests {
		if got := r.FrameAirtime(tt.bytes); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("FrameAirtime(%d) = %v, want %v", tt.bytes, got, tt.want)
		}
	}
}

func TestFrameAirtimeLinear(t *testing.T) {
	r := CC2420()
	f := func(a, b uint8) bool {
		// airtime(a) + airtime(b) == airtime(a+b) + airtime(0)
		lhs := r.FrameAirtime(int(a)) + r.FrameAirtime(int(b))
		rhs := r.FrameAirtime(int(a)+int(b)) + r.FrameAirtime(0)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	r := CC2420()
	if tx, rx := r.TxEnergy(32), r.RxEnergy(32); tx >= rx {
		// CC2420 receive draws more than 0 dBm transmit.
		t.Errorf("TxEnergy(32)=%v should be below RxEnergy(32)=%v for cc2420", tx, rx)
	}
	if got := r.TxEnergy(0); got <= 0 {
		t.Errorf("TxEnergy(0) = %v, want positive (PHY overhead is still sent)", got)
	}
}

func TestPowerByState(t *testing.T) {
	r := CC2420()
	tests := []struct {
		state State
		want  float64
	}{
		{Sleep, r.PowerSleep},
		{Listen, r.PowerListen},
		{Rx, r.PowerRx},
		{Tx, r.PowerTx},
		{State(99), 0},
	}
	for _, tt := range tests {
		if got := r.Power(tt.state); got != tt.want {
			t.Errorf("Power(%v) = %v, want %v", tt.state, got, tt.want)
		}
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		state State
		want  string
	}{
		{Sleep, "sleep"},
		{Listen, "listen"},
		{Rx, "rx"},
		{Tx, "tx"},
		{State(42), "state(42)"},
	}
	for _, tt := range tests {
		if got := tt.state.String(); got != tt.want {
			t.Errorf("State(%d).String() = %q, want %q", int(tt.state), got, tt.want)
		}
	}
}
