package nbs

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

// quadLinGame has A = x², B = 1−x: curved frontier where Nash and
// Kalai-Smorodinsky provably disagree.
func quadLinGame() Game {
	return Game{
		CostA:   func(x opt.Vector) float64 { return x[0] * x[0] },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: 1,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
}

func TestKalaiSmorodinskyKnownSolution(t *testing.T) {
	g := quadLinGame()
	// Gains: (1−x²)/1 and x/1; equal at 1−x² = x → x = (√5−1)/2.
	p, err := KalaiSmorodinsky(g, 1, 1, 0, 0)
	if err != nil {
		t.Fatalf("KalaiSmorodinsky: %v", err)
	}
	want := (math.Sqrt(5) - 1) / 2
	if math.Abs(p.X[0]-want) > 1e-3 {
		t.Errorf("KS x = %v, want %v", p.X[0], want)
	}
}

func TestKSDiffersFromNash(t *testing.T) {
	g := quadLinGame()
	nash, _, err := Bargain(g, 1, 1)
	if err != nil {
		t.Fatalf("Bargain: %v", err)
	}
	ks, err := KalaiSmorodinsky(g, 1, 1, 0, 0)
	if err != nil {
		t.Fatalf("KalaiSmorodinsky: %v", err)
	}
	// Nash at 1/sqrt(3) ≈ 0.577, KS at ≈ 0.618.
	if math.Abs(nash.X[0]-ks.X[0]) < 0.01 {
		t.Errorf("Nash (%v) and KS (%v) should disagree on a curved frontier", nash.X[0], ks.X[0])
	}
}

func TestEgalitarianEqualizesGains(t *testing.T) {
	g := quadLinGame()
	p, err := Egalitarian(g, 1, 1)
	if err != nil {
		t.Fatalf("Egalitarian: %v", err)
	}
	gainA := 1 - p.A
	gainB := 1 - p.B
	if math.Abs(gainA-gainB) > 1e-3 {
		t.Errorf("egalitarian gains unequal: %v vs %v", gainA, gainB)
	}
}

// TestEgalitarianScaleDependence documents why the paper prefers Nash:
// rescaling one cost moves the egalitarian decision but not the Nash one.
func TestEgalitarianScaleDependence(t *testing.T) {
	g := quadLinGame()
	scaled := g
	scaled.CostA = func(x opt.Vector) float64 { return 10 * x[0] * x[0] }
	scaled.BudgetA = 10

	e1, err := Egalitarian(g, 1, 1)
	if err != nil {
		t.Fatalf("Egalitarian: %v", err)
	}
	e2, err := Egalitarian(scaled, 10, 1)
	if err != nil {
		t.Fatalf("Egalitarian(scaled): %v", err)
	}
	if math.Abs(e1.X[0]-e2.X[0]) < 0.05 {
		t.Errorf("egalitarian should be scale-dependent: x=%v vs %v", e1.X[0], e2.X[0])
	}

	n1, _, err := Bargain(g, 1, 1)
	if err != nil {
		t.Fatalf("Bargain: %v", err)
	}
	n2, _, err := Bargain(scaled, 10, 1)
	if err != nil {
		t.Fatalf("Bargain(scaled): %v", err)
	}
	if math.Abs(n1.X[0]-n2.X[0]) > 1e-3 {
		t.Errorf("Nash should be scale-invariant: x=%v vs %v", n1.X[0], n2.X[0])
	}
}

func TestWeightedSumSweep(t *testing.T) {
	g := quadLinGame()
	// w=0: pure delay player → x → 1; w=1: pure energy player → x → 0.
	p0, err := WeightedSum(g, 1, 1, 0)
	if err != nil {
		t.Fatalf("WeightedSum(0): %v", err)
	}
	p1, err := WeightedSum(g, 1, 1, 1)
	if err != nil {
		t.Fatalf("WeightedSum(1): %v", err)
	}
	if !(p0.X[0] > 0.9) {
		t.Errorf("w=0 should favour player B fully, got x=%v", p0.X[0])
	}
	if !(p1.X[0] < 0.1) {
		t.Errorf("w=1 should favour player A fully, got x=%v", p1.X[0])
	}
	// Intermediate weights move monotonically.
	prev := p1.X[0]
	for _, w := range []float64{0.8, 0.5, 0.2} {
		p, err := WeightedSum(g, 1, 1, w)
		if err != nil {
			t.Fatalf("WeightedSum(%v): %v", w, err)
		}
		if p.X[0] < prev-1e-6 {
			t.Errorf("w=%v: x=%v moved backwards from %v", w, p.X[0], prev)
		}
		prev = p.X[0]
	}
}

func TestWeightedSumValidation(t *testing.T) {
	g := quadLinGame()
	if _, err := WeightedSum(g, 1, 1, -0.1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedSum(g, 1, 1, 1.1); err == nil {
		t.Error("weight above 1 accepted")
	}
	if _, err := WeightedSum(g, 0, 1, 0.5); err == nil {
		t.Error("zero normalizer accepted")
	}
}

func TestKSValidation(t *testing.T) {
	g := quadLinGame()
	if _, err := KalaiSmorodinsky(g, 1, 1, 1, 0); err == nil {
		t.Error("empty gain range accepted")
	}
	bad := g
	bad.CostA = nil
	if _, err := KalaiSmorodinsky(bad, 1, 1, 0, 0); err == nil {
		t.Error("invalid game accepted")
	}
}
