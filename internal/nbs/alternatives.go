package nbs

import (
	"fmt"
	"math"

	"github.com/edmac-project/edmac/internal/opt"
)

// The alternative bargaining solutions below share the NBS feasible
// region — costs capped at the component-wise minimum of the budgets and
// the disagreement point — but pick different compromise points. They
// exist as ablation baselines: the benchmark suite contrasts them with
// the Nash solution the paper argues for.

// KalaiSmorodinsky computes the Kalai-Smorodinsky bargaining solution
// for disagreement point (vA, vB) and ideal point (idealA, idealB)
// (player-wise best costs): the feasible point that equalizes — and
// maximizes — both players' gain fractions
//
//	(vA − A(x)) / (vA − idealA)  and  (vB − B(x)) / (vB − idealB).
func KalaiSmorodinsky(g Game, vA, vB, idealA, idealB float64) (Point, error) {
	if err := g.Validate(); err != nil {
		return Point{}, err
	}
	rangeA := vA - idealA
	rangeB := vB - idealB
	if rangeA <= 0 || rangeB <= 0 {
		return Point{}, fmt.Errorf("nbs: kalai-smorodinsky: empty gain ranges (%v, %v)", rangeA, rangeB)
	}
	obj := func(x opt.Vector) float64 {
		fracA := (vA - g.CostA(x)) / rangeA
		fracB := (vB - g.CostB(x)) / rangeB
		return -math.Min(fracA, fracB)
	}
	return solveCompromise(g, obj, vA, vB)
}

// Egalitarian computes the egalitarian solution: it maximizes the
// smaller of the two absolute cost gains over the disagreement point.
// Unlike Nash and Kalai-Smorodinsky it is not scale-invariant, which the
// ablation benchmarks demonstrate.
func Egalitarian(g Game, vA, vB float64) (Point, error) {
	if err := g.Validate(); err != nil {
		return Point{}, err
	}
	obj := func(x opt.Vector) float64 {
		return -math.Min(vA-g.CostA(x), vB-g.CostB(x))
	}
	return solveCompromise(g, obj, vA, vB)
}

// WeightedSum minimizes w·Ā(x) + (1−w)·B̄(x), with each cost normalized
// by its disagreement value — the scalarization baseline the paper's
// introduction criticizes ("optimizing one objective subject to the
// other") generalized to a tunable weight.
func WeightedSum(g Game, vA, vB, w float64) (Point, error) {
	if err := g.Validate(); err != nil {
		return Point{}, err
	}
	if w < 0 || w > 1 {
		return Point{}, fmt.Errorf("nbs: weight %v must lie in [0, 1]", w)
	}
	if vA <= 0 || vB <= 0 {
		return Point{}, fmt.Errorf("nbs: weighted sum needs positive normalizers, got (%v, %v)", vA, vB)
	}
	obj := func(x opt.Vector) float64 {
		return w*g.CostA(x)/vA + (1-w)*g.CostB(x)/vB
	}
	return solveCompromise(g, obj, vA, vB)
}

// solveCompromise minimizes obj over the game's bargaining region.
func solveCompromise(g Game, obj opt.Func, vA, vB float64) (Point, error) {
	cons := append(g.structural(),
		opt.AtMost("cap-A", g.CostA, math.Min(g.BudgetA, vA)),
		opt.AtMost("cap-B", g.CostB, math.Min(g.BudgetB, vB)),
	)
	p := opt.Problem{Objective: obj, Bounds: g.Bounds, Constraints: cons}
	r, err := opt.Solve(p)
	if err != nil {
		return Point{}, fmt.Errorf("nbs: compromise solve: %w", err)
	}
	return g.pointAt(r.X), nil
}
