package nbs

import (
	"errors"
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

// linearGame is the canonical synthetic game A = x, B = 1−x on [0,1]:
// a straight-line Pareto frontier with every bargaining quantity known
// in closed form.
func linearGame(budgetA, budgetB float64) Game {
	return Game{
		CostA:   func(x opt.Vector) float64 { return x[0] },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: budgetA,
		BudgetB: budgetB,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
}

func TestSolveLinearGame(t *testing.T) {
	out, err := Solve(linearGame(1, 1))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(out.BestA.A) > 1e-6 || math.Abs(out.BestA.B-1) > 1e-6 {
		t.Errorf("BestA = (%v, %v), want (0, 1)", out.BestA.A, out.BestA.B)
	}
	if math.Abs(out.BestB.B) > 1e-6 || math.Abs(out.BestB.A-1) > 1e-6 {
		t.Errorf("BestB = (%v, %v), want (1, 0)", out.BestB.A, out.BestB.B)
	}
	if math.Abs(out.DisagreementA-1) > 1e-6 || math.Abs(out.DisagreementB-1) > 1e-6 {
		t.Errorf("disagreement = (%v, %v), want (1, 1)", out.DisagreementA, out.DisagreementB)
	}
	// Nash solution: maximize (1−x)·x → x = 1/2.
	if math.Abs(out.Bargain.X[0]-0.5) > 1e-4 {
		t.Errorf("bargain x = %v, want 0.5", out.Bargain.X[0])
	}
	if out.Degenerate {
		t.Error("linear game flagged degenerate")
	}
	fA, fB := out.Fairness()
	if math.Abs(fA-0.5) > 1e-3 || math.Abs(fB-0.5) > 1e-3 {
		t.Errorf("fairness = (%v, %v), want (0.5, 0.5)", fA, fB)
	}
}

func TestSolveAsymmetricLinear(t *testing.T) {
	g := Game{
		CostA:   func(x opt.Vector) float64 { return 2 * x[0] },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: 2,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// max (2−2x)(x) → x = 1/2; costs (1, 0.5).
	if math.Abs(out.Bargain.X[0]-0.5) > 1e-4 {
		t.Errorf("bargain x = %v, want 0.5", out.Bargain.X[0])
	}
	fA, fB := out.Fairness()
	if math.Abs(fA-fB) > 1e-3 {
		t.Errorf("proportional fairness broken on a linear frontier: fA=%v fB=%v", fA, fB)
	}
}

func TestSolveBudgetClipsBargain(t *testing.T) {
	out, err := Solve(linearGame(0.4, 1))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// P2 is budget-limited to x=0.4, so v=(0.4, 1) and the Nash product
	// (0.4−x)·x peaks at x=0.2.
	if math.Abs(out.DisagreementA-0.4) > 1e-4 {
		t.Errorf("disagreementA = %v, want 0.4", out.DisagreementA)
	}
	if math.Abs(out.Bargain.X[0]-0.2) > 1e-4 {
		t.Errorf("bargain x = %v, want 0.2", out.Bargain.X[0])
	}
	fA, fB := out.Fairness()
	if math.Abs(fA-0.5) > 1e-3 || math.Abs(fB-0.5) > 1e-3 {
		t.Errorf("fairness = (%v, %v), want (0.5, 0.5)", fA, fB)
	}
}

func TestSolveQuadraticSymmetric(t *testing.T) {
	g := Game{
		CostA:   func(x opt.Vector) float64 { return x[0] * x[0] },
		CostB:   func(x opt.Vector) float64 { return (1 - x[0]) * (1 - x[0]) },
		BudgetA: 1,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Symmetry axiom: the symmetric game must split evenly.
	if math.Abs(out.Bargain.X[0]-0.5) > 1e-4 {
		t.Errorf("bargain x = %v, want 0.5 (symmetry axiom)", out.Bargain.X[0])
	}
	if math.Abs(out.Bargain.A-out.Bargain.B) > 1e-4 {
		t.Errorf("symmetric game with asymmetric costs (%v, %v)", out.Bargain.A, out.Bargain.B)
	}
}

// TestBargainScaleInvariance: scaling one player's cost must not move
// the bargaining decision (Nash axiom 3).
func TestBargainScaleInvariance(t *testing.T) {
	base := Game{
		CostA:   func(x opt.Vector) float64 { return x[0] * x[0] },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: 1,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	scaled := base
	scaled.CostA = func(x opt.Vector) float64 { return 10 * x[0] * x[0] }
	scaled.BudgetA = 10

	p1, _, err := Bargain(base, 1, 1)
	if err != nil {
		t.Fatalf("Bargain(base): %v", err)
	}
	p2, _, err := Bargain(scaled, 10, 1)
	if err != nil {
		t.Fatalf("Bargain(scaled): %v", err)
	}
	if math.Abs(p1.X[0]-p2.X[0]) > 1e-3 {
		t.Errorf("scale invariance violated: x=%v vs %v", p1.X[0], p2.X[0])
	}
	// The known solution of max (1−x²)·x is x = 1/sqrt(3).
	if want := 1 / math.Sqrt(3); math.Abs(p1.X[0]-want) > 1e-3 {
		t.Errorf("bargain x = %v, want %v", p1.X[0], want)
	}
}

// TestBargainIIA: shrinking the feasible set around the solution while
// keeping the disagreement point must not move the solution (axiom 4).
func TestBargainIIA(t *testing.T) {
	g := linearGame(1, 1)
	full, _, err := Bargain(g, 1, 1)
	if err != nil {
		t.Fatalf("Bargain(full): %v", err)
	}
	restricted := g
	restricted.Bounds = opt.Bounds{Lo: opt.Vector{0.3}, Hi: opt.Vector{0.9}}
	sub, _, err := Bargain(restricted, 1, 1)
	if err != nil {
		t.Fatalf("Bargain(restricted): %v", err)
	}
	if math.Abs(full.X[0]-sub.X[0]) > 1e-3 {
		t.Errorf("IIA violated: x=%v on the full set, %v on the subset", full.X[0], sub.X[0])
	}
}

// TestBargainParetoOptimal: no feasible point may strictly improve both
// players over the bargain (axiom 1), checked on a dense sample.
func TestBargainParetoOptimal(t *testing.T) {
	g := Game{
		CostA:   func(x opt.Vector) float64 { return x[0] * x[0] },
		CostB:   func(x opt.Vector) float64 { return (1 - x[0]) * (1 - x[0]) },
		BudgetA: 1,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	const eps = 1e-6
	for i := 0; i <= 1000; i++ {
		x := opt.Vector{float64(i) / 1000}
		if g.CostA(x) < out.Bargain.A-eps && g.CostB(x) < out.Bargain.B-eps {
			t.Fatalf("point %v strictly dominates the bargain (%v, %v)", x, out.Bargain.A, out.Bargain.B)
		}
	}
}

func TestSolveDegenerateConstantPlayer(t *testing.T) {
	g := Game{
		CostA:   func(x opt.Vector) float64 { return 0.5 },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: 1,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !out.Degenerate {
		t.Error("constant player A should force the degenerate fallback")
	}
	if out.Bargain.A > 0.5+1e-6 || out.Bargain.B > 1+1e-6 {
		t.Errorf("fallback bargain (%v, %v) violates caps", out.Bargain.A, out.Bargain.B)
	}
}

func TestBargainInfeasibleCaps(t *testing.T) {
	// Caps A <= 0.1 and B <= 0.1 cannot hold simultaneously on A=x,
	// B=1−x.
	g := linearGame(0.1, 0.1)
	_, _, err := Bargain(g, 0.1, 0.1)
	if !errors.Is(err, opt.ErrInfeasible) {
		t.Errorf("Bargain error = %v, want ErrInfeasible", err)
	}
}

func TestSolveRelaxedBestEffort(t *testing.T) {
	// Budgets x <= 0.1 and 1−x <= 0.4 cannot hold at once. Strict mode
	// must refuse; relaxed mode must return the (P1) best-effort point
	// x = 0.6 (honours BudgetB, busts BudgetA) and flag it.
	g := linearGame(0.1, 0.4)
	if _, err := Solve(g); !errors.Is(err, opt.ErrInfeasible) {
		t.Fatalf("strict Solve error = %v, want ErrInfeasible", err)
	}
	g.Relax = true
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("relaxed Solve: %v", err)
	}
	if !out.BudgetExceeded {
		t.Error("BudgetExceeded not set")
	}
	if math.Abs(out.Bargain.X[0]-0.6) > 1e-4 {
		t.Errorf("best-effort x = %v, want 0.6", out.Bargain.X[0])
	}
	if out.Bargain.B > 0.4+1e-6 {
		t.Errorf("best-effort point must honour BudgetB: B = %v", out.Bargain.B)
	}
}

func TestSolveRelaxedBudgetBelowReachable(t *testing.T) {
	// BudgetA below the lowest reachable A makes (P2) itself infeasible;
	// relaxed mode threatens with the unconstrained optimum and still
	// returns a flagged best-effort point.
	g := Game{
		CostA:   func(x opt.Vector) float64 { return 0.5 + x[0] },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: 0.2, // unreachable: A >= 0.5 everywhere
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	if _, err := Solve(g); !errors.Is(err, opt.ErrInfeasible) {
		t.Fatalf("strict Solve error = %v, want ErrInfeasible", err)
	}
	g.Relax = true
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("relaxed Solve: %v", err)
	}
	if !out.BudgetExceeded {
		t.Error("BudgetExceeded not set")
	}
	if math.Abs(out.Bargain.X[0]) > 1e-4 {
		t.Errorf("best-effort x = %v, want 0 (cheapest A under the B budget)", out.Bargain.X[0])
	}
}

func TestSolveRelaxedNoOpWhenFeasible(t *testing.T) {
	g := linearGame(1, 1)
	g.Relax = true
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if out.BudgetExceeded {
		t.Error("feasible game flagged budget-exceeded")
	}
	if math.Abs(out.Bargain.X[0]-0.5) > 1e-4 {
		t.Errorf("bargain x = %v, want 0.5", out.Bargain.X[0])
	}
}

func TestGameValidate(t *testing.T) {
	good := linearGame(1, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := good
	bad.CostA = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil CostA accepted")
	}
	bad = good
	bad.BudgetB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero budget accepted")
	}
	bad = good
	bad.Bounds = opt.Bounds{}
	if err := bad.Validate(); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestNashProductMaximality(t *testing.T) {
	// The Nash point must carry a product no smaller than any other
	// compromise concept's point.
	g := Game{
		CostA:   func(x opt.Vector) float64 { return x[0] * x[0] },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: 1,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	product := func(p Point) float64 {
		return (out.DisagreementA - p.A) * (out.DisagreementB - p.B)
	}
	ks, err := KalaiSmorodinsky(g, out.DisagreementA, out.DisagreementB, out.BestA.A, out.BestB.B)
	if err != nil {
		t.Fatalf("KalaiSmorodinsky: %v", err)
	}
	eg, err := Egalitarian(g, out.DisagreementA, out.DisagreementB)
	if err != nil {
		t.Fatalf("Egalitarian: %v", err)
	}
	for name, p := range map[string]Point{"kalai-smorodinsky": ks, "egalitarian": eg} {
		if product(p) > out.NashProduct()+1e-6 {
			t.Errorf("%s product %v exceeds Nash product %v", name, product(p), out.NashProduct())
		}
	}
}
