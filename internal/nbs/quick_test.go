package nbs

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edmac-project/edmac/internal/opt"
)

// randomTradeGame builds a game A = a·x^p, B = b·(1−x)^q on [0,1] from
// fuzz bytes: a family of smooth, strictly conflicting cost pairs with a
// convex-enough frontier for the bargaining machinery.
func randomTradeGame(aRaw, bRaw, pRaw, qRaw uint8) Game {
	a := 0.5 + float64(aRaw%100)/50 // [0.5, 2.5)
	b := 0.5 + float64(bRaw%100)/50 // [0.5, 2.5)
	p := 1 + float64(pRaw%3)        // {1, 2, 3}
	q := 1 + float64(qRaw%3)        // {1, 2, 3}
	return Game{
		CostA:   func(x opt.Vector) float64 { return a * math.Pow(x[0], p) },
		CostB:   func(x opt.Vector) float64 { return b * math.Pow(1-x[0], q) },
		BudgetA: a,
		BudgetB: b,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
}

// TestQuickBargainInRectangle: on every random game the bargain lies
// weakly inside the rectangle spanned by the optima and the
// disagreement point, and respects both budgets.
func TestQuickBargainInRectangle(t *testing.T) {
	const tol = 1e-6
	f := func(aRaw, bRaw, pRaw, qRaw uint8) bool {
		g := randomTradeGame(aRaw, bRaw, pRaw, qRaw)
		out, err := Solve(g)
		if err != nil {
			return false
		}
		if out.Bargain.A > g.BudgetA+tol || out.Bargain.B > g.BudgetB+tol {
			return false
		}
		if out.Bargain.A > out.DisagreementA+tol || out.Bargain.B > out.DisagreementB+tol {
			return false
		}
		if out.Bargain.A < out.BestA.A-tol || out.Bargain.B < out.BestB.B-tol {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickNashMaximizesProduct: no sampled feasible point beats the
// bargain's Nash product.
func TestQuickNashMaximizesProduct(t *testing.T) {
	f := func(aRaw, bRaw, pRaw, qRaw uint8) bool {
		g := randomTradeGame(aRaw, bRaw, pRaw, qRaw)
		out, err := Solve(g)
		if err != nil || out.Degenerate {
			return err == nil
		}
		best := out.NashProduct()
		for i := 0; i <= 200; i++ {
			x := opt.Vector{float64(i) / 200}
			a, b := g.CostA(x), g.CostB(x)
			if a > math.Min(g.BudgetA, out.DisagreementA) || b > math.Min(g.BudgetB, out.DisagreementB) {
				continue
			}
			if (out.DisagreementA-a)*(out.DisagreementB-b) > best*(1+1e-3)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickFairnessCoordinatesInUnitRange: proportional-fairness
// coordinates stay in [0,1] on every non-degenerate random game.
func TestQuickFairnessCoordinatesInUnitRange(t *testing.T) {
	f := func(aRaw, bRaw, pRaw, qRaw uint8) bool {
		g := randomTradeGame(aRaw, bRaw, pRaw, qRaw)
		out, err := Solve(g)
		if err != nil || out.Degenerate {
			return err == nil
		}
		fA, fB := out.Fairness()
		const tol = 1e-6
		return fA >= -tol && fA <= 1+tol && fB >= -tol && fB <= 1+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickFrontierDominatesNothing: every frontier point is
// non-dominated within the returned set.
func TestQuickFrontierDominatesNothing(t *testing.T) {
	f := func(aRaw, bRaw, pRaw, qRaw uint8) bool {
		g := randomTradeGame(aRaw, bRaw, pRaw, qRaw)
		pts, err := Frontier(g, g.BudgetB, 9)
		if err != nil {
			return false
		}
		const tol = 1e-6
		for i := range pts {
			for j := range pts {
				if pts[j].A < pts[i].A-tol && pts[j].B < pts[i].B-tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTwoDimensionalDecisionGame exercises the machinery on a game whose
// decision vector has two coordinates with distinct roles — mirroring
// DMAC/LMAC — and a known solution: only x[0] matters to the frontier,
// x[1] is pure overhead that both players want at its minimum.
func TestTwoDimensionalDecisionGame(t *testing.T) {
	g := Game{
		CostA: func(x opt.Vector) float64 { return x[0] + 0.3*x[1] },
		CostB: func(x opt.Vector) float64 { return (1 - x[0]) + 0.3*x[1] },
		// Budgets leave slack so the frontier is the x[1]=0 edge.
		BudgetA: 2,
		BudgetB: 2,
		Bounds:  opt.Bounds{Lo: opt.Vector{0, 0}, Hi: opt.Vector{1, 1}},
	}
	out, err := Solve(g)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if out.Bargain.X[1] > 1e-4 {
		t.Errorf("pure-overhead coordinate should pin to 0, got %v", out.Bargain.X[1])
	}
	if math.Abs(out.Bargain.X[0]-0.5) > 1e-3 {
		t.Errorf("bargain x[0] = %v, want 0.5", out.Bargain.X[0])
	}
}
