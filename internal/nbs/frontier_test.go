package nbs

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

func TestFrontierLinearGame(t *testing.T) {
	g := linearGame(1, 1)
	pts, err := Frontier(g, 1, 11)
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	if len(pts) < 5 {
		t.Fatalf("frontier too sparse: %d points", len(pts))
	}
	// On A = x, B = 1−x the frontier is A = 1−B.
	for _, p := range pts {
		if math.Abs(p.A-(1-p.B)) > 1e-3 {
			t.Errorf("point (%v, %v) off the known frontier A=1−B", p.A, p.B)
		}
	}
	// Ordered by increasing B with non-increasing A.
	for i := 1; i < len(pts); i++ {
		if pts[i].B < pts[i-1].B-1e-9 {
			t.Errorf("frontier not sorted by B: %v after %v", pts[i].B, pts[i-1].B)
		}
		if pts[i].A > pts[i-1].A+1e-6 {
			t.Errorf("frontier A not non-increasing: %v after %v", pts[i].A, pts[i-1].A)
		}
	}
}

// TestFrontierContextCancelled pins the point-granular abort: a done
// context stops the trace and surfaces the context's error instead of
// a partial curve.
func TestFrontierContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts, err := FrontierContext(ctx, linearGame(1, 1), 1, 11)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pts != nil {
		t.Fatalf("cancelled trace returned %d points", len(pts))
	}
}

func TestFrontierQuadratic(t *testing.T) {
	g := Game{
		CostA:   func(x opt.Vector) float64 { return x[0] * x[0] },
		CostB:   func(x opt.Vector) float64 { return 1 - x[0] },
		BudgetA: 1,
		BudgetB: 1,
		Bounds:  opt.Bounds{Lo: opt.Vector{0}, Hi: opt.Vector{1}},
	}
	pts, err := Frontier(g, 1, 9)
	if err != nil {
		t.Fatalf("Frontier: %v", err)
	}
	for _, p := range pts {
		// A = (1−B)².
		want := (1 - p.B) * (1 - p.B)
		if math.Abs(p.A-want) > 1e-3 {
			t.Errorf("point (%v, %v): A should be %v", p.A, p.B, want)
		}
	}
}

func TestFrontierValidation(t *testing.T) {
	g := linearGame(1, 1)
	if _, err := Frontier(g, 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Frontier(g, 0, 5); err == nil {
		t.Error("zero cap accepted")
	}
	bad := g
	bad.CostB = nil
	if _, err := Frontier(bad, 1, 5); err == nil {
		t.Error("invalid game accepted")
	}
}

func TestFrontierEmptyRange(t *testing.T) {
	// Best B is 0 at x=1, but with budgetA = 0.05 the best reachable B is
	// 0.95; a cap of 0.5 leaves an empty sweep range.
	g := linearGame(0.05, 1)
	if _, err := Frontier(g, 0.5, 5); err == nil {
		t.Error("empty frontier range accepted")
	}
}
