// Package nbs implements the paper's cooperative game machinery: the
// two optimization players (P1) and (P2), the Nash Bargaining Solution
// via the log-transformed concave program (P4), the Pareto-frontier
// tracer behind the figures, the proportional-fairness identity, and
// alternative bargaining solutions (Kalai-Smorodinsky, egalitarian,
// weighted-sum) used as ablation baselines.
//
// The package is deliberately generic over two cost functions A and B of
// a shared decision vector — in the paper A is energy and B is
// end-to-end delay, but keeping it abstract lets property tests exercise
// the bargaining axioms on synthetic games with known solutions.
package nbs

import (
	"errors"
	"fmt"
	"math"

	"github.com/edmac-project/edmac/internal/opt"
)

// Game is the two-player cooperative cost game: virtual players A and B
// share the decision vector X and each wants its own cost low. BudgetA
// and BudgetB are the application caps (the paper's Ebudget and Lmax).
type Game struct {
	// CostA is player A's cost (the paper's energy E(X)).
	CostA opt.Func
	// CostB is player B's cost (the paper's delay L(X)).
	CostB opt.Func
	// BudgetA caps CostA in (P2) and in the bargaining program.
	BudgetA float64
	// BudgetB caps CostB in (P1) and in the bargaining program.
	BudgetB float64
	// Bounds delimit the decision vector.
	Bounds opt.Bounds
	// Structural holds protocol feasibility constraints (<= 0 feasible).
	Structural []opt.Constraint
	// Relax enables the paper's figure behaviour for over-constrained
	// requirement pairs: when the joint bargaining region
	// {A <= BudgetA, B <= BudgetB} is empty, Solve falls back to the
	// (P1) point — the best-effort configuration that honours BudgetB
	// while exceeding BudgetA — and flags the outcome BudgetExceeded
	// instead of failing. (The paper's Fig. 1c/2c LMAC points sit above
	// the stated 0.06 J budget; this is that behaviour, made explicit.)
	Relax bool
}

// Validate reports whether the game is well formed.
func (g Game) Validate() error {
	if g.CostA == nil || g.CostB == nil {
		return errors.New("nbs: both cost functions must be set")
	}
	if g.BudgetA <= 0 || g.BudgetB <= 0 {
		return fmt.Errorf("nbs: budgets must be positive, got (%v, %v)", g.BudgetA, g.BudgetB)
	}
	return g.Bounds.Validate()
}

// Point is one operating point: a decision vector and both players'
// costs there.
type Point struct {
	X opt.Vector
	A float64
	B float64
}

// pointAt evaluates both costs at x.
func (g Game) pointAt(x opt.Vector) Point {
	return Point{X: x.Clone(), A: g.CostA(x), B: g.CostB(x)}
}

// Outcome is the full result of playing the game.
type Outcome struct {
	// BestA solves (P1): minimize A subject to B <= BudgetB. Its costs
	// are the paper's (Ebest, Lworst).
	BestA Point
	// BestB solves (P2): minimize B subject to A <= BudgetA. Its costs
	// are the paper's (Eworst, Lbest).
	BestB Point
	// DisagreementA and DisagreementB form the threat point
	// (Eworst, Lworst): each player threatens the other with its worst.
	DisagreementA float64
	DisagreementB float64
	// Bargain is the Nash Bargaining Solution of (P3)/(P4).
	Bargain Point
	// Degenerate is true when no point strictly improves on the
	// disagreement for both players simultaneously, and Bargain is the
	// feasibility fallback instead of a product maximizer.
	Degenerate bool
	// BudgetExceeded is true (only in Relax mode) when the bargain is
	// the best-effort (P1) point because no configuration satisfies both
	// budgets at once; its A cost exceeds BudgetA.
	BudgetExceeded bool
}

// ErrInfeasible wraps opt.ErrInfeasible with game context; returned when
// the application requirements cannot be met by any parameter setting.
var ErrInfeasible = opt.ErrInfeasible

// Solve plays the complete game: solves (P1) and (P2), forms the
// disagreement point, and computes the Nash Bargaining Solution.
func Solve(g Game) (Outcome, error) {
	if err := g.Validate(); err != nil {
		return Outcome{}, err
	}

	p1 := opt.Problem{
		Objective:   g.CostA,
		Bounds:      g.Bounds,
		Constraints: append(g.structural(), opt.AtMost("budget-B", g.CostB, g.BudgetB)),
	}
	r1, err := opt.Solve(p1)
	if err != nil {
		return Outcome{}, fmt.Errorf("nbs: player A problem (P1): %w", err)
	}

	p2 := opt.Problem{
		Objective:   g.CostB,
		Bounds:      g.Bounds,
		Constraints: append(g.structural(), opt.AtMost("budget-A", g.CostA, g.BudgetA)),
	}
	r2, err := opt.Solve(p2)
	budgetExceeded := false
	if err != nil {
		if !g.Relax || !errors.Is(err, opt.ErrInfeasible) {
			return Outcome{}, fmt.Errorf("nbs: player B problem (P2): %w", err)
		}
		// Relaxed: the budget is below the protocol's reachable energy;
		// threaten with the unconstrained delay optimum instead.
		budgetExceeded = true
		p2.Constraints = g.structural()
		r2, err = opt.Solve(p2)
		if err != nil {
			return Outcome{}, fmt.Errorf("nbs: player B problem (P2, relaxed): %w", err)
		}
	}

	out := Outcome{
		BestA: g.pointAt(r1.X),
		BestB: g.pointAt(r2.X),
	}
	out.DisagreementA = out.BestB.A // Eworst: energy at the delay-optimal point
	out.DisagreementB = out.BestA.B // Lworst: delay at the energy-optimal point

	bargain, degenerate, err := Bargain(g, out.DisagreementA, out.DisagreementB)
	switch {
	case err == nil:
		out.Bargain = bargain
		out.Degenerate = degenerate
	case g.Relax && errors.Is(err, opt.ErrInfeasible):
		// The joint region {A <= BudgetA, B <= BudgetB} is empty: fall
		// back to the best-effort (P1) point, which honours BudgetB but
		// busts BudgetA — the behaviour visible in the paper's figures.
		out.Bargain = out.BestA
		out.BudgetExceeded = true
	default:
		return Outcome{}, err
	}
	if budgetExceeded {
		out.BudgetExceeded = true
	}
	return out, nil
}

// structural returns a copy of the structural constraint slice so that
// appending budget constraints never aliases the caller's slice.
func (g Game) structural() []opt.Constraint {
	return append([]opt.Constraint(nil), g.Structural...)
}

// Bargain computes the Nash Bargaining Solution for an explicit
// disagreement point (vA, vB) by solving the paper's program (P4):
//
//	maximize  log(vA − A(x)) + log(vB − B(x))
//	subject to A(x) <= min(BudgetA, vA), B(x) <= min(BudgetB, vB),
//	           structural constraints.
//
// The auxiliary variables (E1, L1) of the paper are substituted out: at
// any optimum they bind to the cost functions, so optimizing directly
// over x is equivalent and keeps the search space small.
//
// When no feasible point strictly improves on v for both players the
// product program is vacuous; Bargain then returns the feasible point
// lexicographically best for player A and reports degenerate=true.
func Bargain(g Game, vA, vB float64) (Point, bool, error) {
	if err := g.Validate(); err != nil {
		return Point{}, false, err
	}
	capA := math.Min(g.BudgetA, vA)
	capB := math.Min(g.BudgetB, vB)

	obj := func(x opt.Vector) float64 {
		gainA := vA - g.CostA(x)
		gainB := vB - g.CostB(x)
		if gainA <= 0 || gainB <= 0 {
			return math.Inf(1)
		}
		return -math.Log(gainA) - math.Log(gainB)
	}
	cons := append(g.structural(),
		opt.AtMost("cap-A", g.CostA, capA),
		opt.AtMost("cap-B", g.CostB, capB),
	)
	p := opt.Problem{Objective: obj, Bounds: g.Bounds, Constraints: cons}
	r, err := opt.Solve(p)
	if err == nil && !math.IsInf(r.F, 1) {
		return g.pointAt(r.X), false, nil
	}

	// Degenerate: fall back to the best feasible point for player A
	// under both caps, typically because the frontier collapses to a
	// point or v itself is on the frontier.
	fb := opt.Problem{Objective: g.CostA, Bounds: g.Bounds, Constraints: cons}
	rf, ferr := opt.Solve(fb)
	if ferr != nil {
		return Point{}, true, fmt.Errorf("nbs: bargaining region empty: %w", ferr)
	}
	return g.pointAt(rf.X), true, nil
}

// Fairness returns the proportional-fairness coordinates of the bargain:
//
//	fA = (A* − vA) / (Abest − vA),  fB = (B* − vB) / (Bbest − vB)
//
// Both lie in [0, 1]; the paper (following Zhao et al.) states fA = fB
// at the Nash solution when the disagreement point is (Eworst, Lworst).
// The identity is exact on linear frontiers and approximate otherwise.
// NaN is returned for a coordinate whose denominator vanishes (the
// degenerate, no-trade-off case).
func (o Outcome) Fairness() (fA, fB float64) {
	denA := o.BestA.A - o.DisagreementA
	denB := o.BestB.B - o.DisagreementB
	fA, fB = math.NaN(), math.NaN()
	if denA != 0 {
		fA = (o.Bargain.A - o.DisagreementA) / denA
	}
	if denB != 0 {
		fB = (o.Bargain.B - o.DisagreementB) / denB
	}
	return fA, fB
}

// NashProduct returns the bargaining product (vA − A*)(vB − B*) at the
// outcome's bargain point; larger is better.
func (o Outcome) NashProduct() float64 {
	return (o.DisagreementA - o.Bargain.A) * (o.DisagreementB - o.Bargain.B)
}
