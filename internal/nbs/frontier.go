package nbs

import (
	"context"
	"errors"
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
)

// Frontier traces the game's Pareto frontier — the E-L curves plotted in
// the paper's figures — with the epsilon-constraint method: player B's
// cost is capped at n evenly spaced levels between its best achievable
// value and hi, and player A's cost is minimized at each level.
//
// hi is typically BudgetB (the full admissible delay range); caps whose
// subproblem is infeasible are skipped. The returned points are ordered
// by increasing B.
func Frontier(g Game, hi float64, n int) ([]Point, error) {
	return FrontierContext(context.Background(), g, hi, n)
}

// FrontierContext is Frontier with cooperative cancellation: the
// context is polled before each of the n cap solves, so a done ctx
// abandons the trace at point granularity and returns the context's
// error. An uncancellable ctx is free.
func FrontierContext(ctx context.Context, g Game, hi float64, n int) ([]Point, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("nbs: frontier needs at least 2 points, got %d", n)
	}
	if hi <= 0 {
		return nil, fmt.Errorf("nbs: frontier cap %v must be positive", hi)
	}

	// Player B's ideal under the A budget gives the left end of the sweep.
	p2 := opt.Problem{
		Objective:   g.CostB,
		Bounds:      g.Bounds,
		Constraints: append(g.structural(), opt.AtMost("budget-A", g.CostA, g.BudgetA)),
	}
	r2, err := opt.Solve(p2)
	if err != nil {
		return nil, fmt.Errorf("nbs: frontier anchor (P2): %w", err)
	}
	lo := g.CostB(r2.X)
	if lo >= hi {
		return nil, fmt.Errorf("nbs: frontier range empty: best B %v >= cap %v", lo, hi)
	}

	points := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cap := lo + (hi-lo)*float64(i)/float64(n-1)
		p := opt.Problem{
			Objective:   g.CostA,
			Bounds:      g.Bounds,
			Constraints: append(g.structural(), opt.AtMost("cap-B", g.CostB, cap)),
		}
		r, err := opt.Solve(p)
		if err != nil {
			if errors.Is(err, opt.ErrInfeasible) {
				continue
			}
			return nil, fmt.Errorf("nbs: frontier cap %v: %w", cap, err)
		}
		points = append(points, g.pointAt(r.X))
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("nbs: frontier: %w", ErrInfeasible)
	}
	return points, nil
}
