// Package macmodel provides closed-form energy and latency models of
// duty-cycled MAC protocols — X-MAC, DMAC, LMAC, and B-MAC — in the style
// of Langendoen & Meier, "Analyzing MAC protocols for low data-rate
// applications" (ACM TOSN 2010), which the paper builds its game on.
//
// Every model maps a small vector of tunable MAC parameters X to:
//
//   - Energy(X): joules consumed by the bottleneck (ring-1) node over one
//     accounting window, decomposed into the paper's components
//     E = Ecs + Etx + Erx + Eovr + Estx + Esrx (+ sleep);
//   - Delay(X): worst-case expected end-to-end latency in seconds, from a
//     ring-D node to the sink.
//
// The exact constants of the original MATLAB models are not public; these
// reconstructions keep their structure (see DESIGN.md §3 and §5) so the
// bargaining game sees the same qualitative geometry.
package macmodel

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// MAC-layer frame sizes in bytes (the radio adds its PHY overhead).
// They are exported because the packet-level simulator (internal/sim)
// must put byte-identical frames on the air for the cross-validation
// against these models to be meaningful.
const (
	// DataHeaderBytes covers the MAC header (9 B) and CRC (2 B) around
	// the application payload.
	DataHeaderBytes = 11
	// AckBytes is a bare link-layer acknowledgement.
	AckBytes = 5
	// StrobeBytes is one X-MAC preamble strobe carrying the target
	// address.
	StrobeBytes = 7
	// CtrlBytes is the LMAC per-slot control section (slot ownership,
	// sync, addressing).
	CtrlBytes = 12
	// SyncBytes is a schedule-synchronization beacon (slotted protocols).
	SyncBytes = 11
)

// Env is the deployment every model is evaluated in: the radio, the ring
// topology, the application traffic, and the energy-accounting window.
type Env struct {
	// Radio is the transceiver profile.
	Radio radio.Radio
	// Rings is the analytic ring topology (depth D, density C).
	Rings topology.RingModel
	// SampleRate is the application sampling rate Fs in packets per
	// second per node.
	SampleRate float64
	// Window is the energy-accounting window W in seconds: reported
	// energies are joules consumed by a node over one window.
	Window float64
	// Payload is the application payload size in bytes.
	Payload int
	// LinkPRR is the per-link packet reception ratio the models assume
	// on every hop. The zero value means 1 (perfect links, the historic
	// behaviour), so existing Env literals are unaffected. Below 1, each
	// frame of a hop's handshake succeeds independently with this
	// probability, and the models inflate their per-packet energy and
	// per-hop delay terms by the expected attempts — see Attempts.
	LinkPRR float64
}

// RetryCap bounds the expected attempts the models charge per hop. It
// mirrors the packet-level MACs, which abandon a packet after a handful
// of retries (5 for X-MAC/B-MAC, 8 for DMAC) instead of retrying
// forever: 6 attempts is the contention protocols' worst case.
const RetryCap = 6.0

// linkPRR resolves the zero-value convention: unset means perfect.
func (e Env) linkPRR() float64 {
	if e.LinkPRR == 0 {
		return 1
	}
	return e.LinkPRR
}

// Attempts returns the expected transmission attempts per hop under the
// environment's link quality: a hop completes when both the data frame
// and its acknowledgement get through, each with probability LinkPRR,
// so the expectation is min(1/LinkPRR², RetryCap). Exactly 1 on perfect
// links, nondecreasing as the PRR falls — the lever through which the
// Nash bargain feels retransmission cost. (LMAC has no link-layer ACK;
// charging it the same expectation models the slot capacity its
// schedule must reserve to recover schedule-level losses, and keeps the
// protocols comparable under one link-quality axis.)
func (e Env) Attempts() float64 {
	p := e.linkPRR()
	if p >= 1 {
		return 1
	}
	a := 1 / (p * p)
	if a > RetryCap {
		return RetryCap
	}
	return a
}

// Default returns the calibrated scenario used throughout the paper
// reproduction: a depth-5, density-6 network of CC2420 nodes sampling
// once per 10 hours (the "very low data rate" regime of Langendoen &
// Meier), with energy accounted per minute of operation. Under it the
// three protocols land in the paper's figure ranges (≈0.04 / 0.06 /
// 0.25 J axes for X-MAC / DMAC / LMAC).
func Default() Env {
	return Env{
		Radio:      radio.CC2420(),
		Rings:      topology.RingModel{Depth: 5, Density: 6},
		SampleRate: 1.0 / 36000,
		Window:     60,
		Payload:    32,
	}
}

// Validate reports whether the environment is usable.
func (e Env) Validate() error {
	if err := e.Radio.Validate(); err != nil {
		return fmt.Errorf("macmodel: %w", err)
	}
	if err := e.Rings.Validate(); err != nil {
		return fmt.Errorf("macmodel: %w", err)
	}
	if e.SampleRate <= 0 {
		return fmt.Errorf("macmodel: sample rate %v must be positive", e.SampleRate)
	}
	if e.Window <= 0 {
		return fmt.Errorf("macmodel: window %v must be positive", e.Window)
	}
	if e.Payload <= 0 {
		return fmt.Errorf("macmodel: payload %d must be positive", e.Payload)
	}
	if e.LinkPRR < 0 || e.LinkPRR > 1 {
		return fmt.Errorf("macmodel: link PRR %v must be in [0, 1] (0 means unset/perfect)", e.LinkPRR)
	}
	return nil
}

// Flows returns the analytic per-ring traffic rates of the environment.
func (e Env) Flows() traffic.RingFlows {
	return traffic.RingFlows{Rings: e.Rings, Rate: e.SampleRate}
}

// DataAirtime returns the on-air duration of one data frame in seconds.
func (e Env) DataAirtime() float64 {
	return e.Radio.FrameAirtime(e.Payload + DataHeaderBytes)
}

// AckAirtime returns the on-air duration of one acknowledgement.
func (e Env) AckAirtime() float64 { return e.Radio.FrameAirtime(AckBytes) }

// StrobeAirtime returns the on-air duration of one X-MAC strobe.
func (e Env) StrobeAirtime() float64 { return e.Radio.FrameAirtime(StrobeBytes) }

// CtrlAirtime returns the on-air duration of one LMAC control section.
func (e Env) CtrlAirtime() float64 { return e.Radio.FrameAirtime(CtrlBytes) }

// SyncAirtime returns the on-air duration of one synchronization beacon.
func (e Env) SyncAirtime() float64 { return e.Radio.FrameAirtime(SyncBytes) }

// HeaderAirtime returns the on-air duration of a bare frame header, the
// portion an overhearing node decodes before giving up.
func (e Env) HeaderAirtime() float64 { return e.Radio.FrameAirtime(DataHeaderBytes - 2) }
