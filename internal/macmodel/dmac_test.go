package macmodel

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

func newDMAC(t *testing.T) *DMAC {
	t.Helper()
	m, err := NewDMAC(Default())
	if err != nil {
		t.Fatalf("NewDMAC: %v", err)
	}
	return m
}

func TestDMACDelayForm(t *testing.T) {
	m := newDMAC(t)
	depth := float64(m.Env().Rings.Depth)
	mu := m.Bounds().Lo[1]
	if got, want := m.Delay(opt.Vector{2.0, mu}), 1.0+depth*mu; math.Abs(got-want) > 1e-12 {
		t.Errorf("Delay(T=2) = %v, want %v", got, want)
	}
	// Delay is increasing in both parameters.
	if m.Delay(opt.Vector{4, mu}) <= m.Delay(opt.Vector{2, mu}) {
		t.Error("delay must grow with frame length")
	}
	if m.Delay(opt.Vector{4, 2 * mu}) <= m.Delay(opt.Vector{4, mu}) {
		t.Error("delay must grow with slot length")
	}
}

func TestDMACEnergyDecreasingInFrame(t *testing.T) {
	m := newDMAC(t)
	mu := m.Bounds().Lo[1]
	prev := math.Inf(1)
	for _, frame := range []float64{0.2, 0.5, 1, 2, 5, 10} {
		e := m.Energy(opt.Vector{frame, mu})
		if e >= prev {
			t.Errorf("energy %v at T=%v not below %v at the previous shorter frame", e, frame, prev)
		}
		prev = e
	}
}

func TestDMACEnergyIncreasingInSlot(t *testing.T) {
	m := newDMAC(t)
	b := m.Bounds()
	e1 := m.Energy(opt.Vector{2, b.Lo[1]})
	e2 := m.Energy(opt.Vector{2, b.Hi[1]})
	if e2 <= e1 {
		t.Errorf("longer slots must cost more idle listening: %v vs %v", e1, e2)
	}
}

func TestDMACLadderConstraint(t *testing.T) {
	m := newDMAC(t)
	mu := m.Bounds().Lo[1]
	depth := float64(m.Env().Rings.Depth)
	var ladder opt.Constraint
	for _, c := range m.Structural() {
		if c.Name == "dmac-ladder-fits-frame" {
			ladder = c
		}
	}
	if ladder.F == nil {
		t.Fatal("missing ladder constraint")
	}
	// A frame shorter than (D+1) slots must violate.
	tooShort := opt.Vector{(depth + 1) * mu * 0.5, mu}
	if v := ladder.F(tooShort); v <= 0 {
		t.Errorf("ladder constraint not violated for frame %v: %v", tooShort[0], v)
	}
	ok := opt.Vector{(depth + 1) * mu * 2, mu}
	if v := ladder.F(ok); v > 0 {
		t.Errorf("ladder constraint violated for ample frame: %v", v)
	}
}

func TestDMACSyncComponentsPresent(t *testing.T) {
	m := newDMAC(t)
	c := m.EnergyAt(opt.Vector{2, m.Bounds().Lo[1]}, 1)
	if c.SyncTx <= 0 || c.SyncRx <= 0 {
		t.Errorf("slotted DMAC must pay sync traffic, got stx=%v srx=%v", c.SyncTx, c.SyncRx)
	}
	if c.CarrierSense <= 0 {
		t.Error("receive-slot baseline listening missing")
	}
}

func TestDMACRejectsOversizedPayload(t *testing.T) {
	env := Default()
	env.Payload = 4096 // slot cannot fit the frame airtime
	if _, err := NewDMAC(env); err == nil {
		t.Error("NewDMAC should reject payloads whose slot exceeds the cap")
	}
}

func TestDMACSaturationNearFiveSeconds(t *testing.T) {
	// With Tmax=10 s the delay-optimal energy configuration pins
	// L(Tmax) just above 5 s — reproducing the paper's observation that
	// DMAC's trade-off saturates for Lmax >= 5 s.
	m := newDMAC(t)
	b := m.Bounds()
	l := m.Delay(opt.Vector{b.Hi[0], b.Lo[1]})
	if l < 4.9 || l > 5.3 {
		t.Errorf("delay at the longest frame = %v s, want just above 5 s", l)
	}
}
