package macmodel

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/traffic"
)

// DMAC frame-length bounds in seconds and contention/sync constants.
const (
	dmacFrameMin = 0.1
	dmacFrameMax = 10.0
	// dmacSlotMax caps the slot length; slots just need to fit one
	// data exchange plus contention.
	dmacSlotMax = 0.02
	// dmacCWSlots is the number of CCA-sized contention slots senders
	// back off over inside a transmission slot.
	dmacCWSlots = 8
	// dmacSyncPeriod is the schedule-beacon period in seconds.
	dmacSyncPeriod = 30.0
	// dmacCapacity caps the expected packets per frame per node so one
	// transmission slot per frame suffices.
	dmacCapacity = 0.9
)

// DMAC is the analytic model of DMAC (Lu, Krishnamachari, Raghavendra,
// WCMC 2007): a slotted, contention-based protocol with a staggered
// wakeup ladder tailored to data-gathering trees. A node at depth d
// wakes d slots after the frame epoch for one receive slot, then one
// transmit slot, so data flows to the sink in a single wave.
//
// Parameter vector: X = (T, mu) — frame length and slot length.
type DMAC struct {
	env      Env
	flows    traffic.RingFlows
	attempts float64 // expected tx attempts per hop (1 on perfect links)

	tData float64
	tAck  float64
	tSync float64
	tHdr  float64
	tCW   float64 // full contention window duration
	muMin float64 // minimum slot: startup + CW + data + turnaround + ACK
}

var _ Model = (*DMAC)(nil)

// NewDMAC builds the DMAC model for env.
func NewDMAC(env Env) (*DMAC, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	r := env.Radio
	m := &DMAC{
		env:      env,
		flows:    env.Flows(),
		attempts: env.Attempts(),
		tData:    env.DataAirtime(),
		tAck:     env.AckAirtime(),
		tSync:    env.SyncAirtime(),
		tHdr:     env.HeaderAirtime(),
		tCW:      dmacCWSlots * r.CCA,
	}
	m.muMin = r.Startup + m.tCW + m.tData + r.Turnaround + m.tAck
	if m.muMin >= dmacSlotMax {
		return nil, fmt.Errorf("macmodel: dmac minimum slot %v s exceeds the slot cap %v s (payload too large)", m.muMin, dmacSlotMax)
	}
	if err := validateSpecs(m.Name(), m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Model.
func (m *DMAC) Name() string { return "dmac" }

// Env implements Model.
func (m *DMAC) Env() Env { return m.env }

// Params implements Model.
func (m *DMAC) Params() []ParamSpec {
	return []ParamSpec{
		{Name: "frame-length", Unit: "s", Min: dmacFrameMin, Max: dmacFrameMax},
		{Name: "slot-length", Unit: "s", Min: m.muMin, Max: dmacSlotMax},
	}
}

// Bounds implements Model.
func (m *DMAC) Bounds() opt.Bounds { return boundsOf(m.Params()) }

// Structural implements Model: the staggered ladder of D+1 slots must
// fit inside the frame, and the per-frame load must stay below one
// packet per transmission slot.
func (m *DMAC) Structural() []opt.Constraint {
	depth := float64(m.env.Rings.Depth)
	return []opt.Constraint{
		{
			Name: "dmac-ladder-fits-frame",
			F: func(x opt.Vector) float64 {
				return (depth+1)*x[1] - x[0]
			},
		},
		{
			Name: "dmac-capacity",
			F: func(x opt.Vector) float64 {
				return m.attempts*m.flows.Out(1)*x[0] - dmacCapacity
			},
		},
	}
}

// EnergyAt implements Model.
func (m *DMAC) EnergyAt(x opt.Vector, ring int) Components {
	frame, mu := x[0], x[1]
	r := m.env.Radio
	w := m.env.Window
	// A failed slot exchange repeats in a later frame: lossy links
	// multiply every flow-driven term by the expected attempts.
	fout := m.attempts * m.flows.Out(ring)
	fin := m.attempts * m.flows.In(ring)
	fb := m.attempts * m.flows.Background(ring)

	// Baseline: one receive slot per frame, listened end to end.
	csTime := w / frame * (r.Startup + mu)
	cs := csTime * r.PowerListen

	// Transmit (in the parent's receive slot): wake, contend for half
	// the window on average, send data, turn around, collect the ACK.
	txTimePerPkt := r.Startup + m.tCW/2 + m.tData + r.Turnaround + m.tAck
	txPerPkt := (r.Startup+m.tCW/2)*r.PowerListen + m.tData*r.PowerTx + r.Turnaround*r.PowerListen + m.tAck*r.PowerRx
	tx := w * fout * txPerPkt

	// Receive: the receive-slot listening is already in the baseline;
	// reception charges the marginal cost of decoding plus the ACK reply.
	rxPerPkt := m.tData*(r.PowerRx-r.PowerListen) + r.Turnaround*r.PowerListen + m.tAck*r.PowerTx
	if rxPerPkt < 0 {
		rxPerPkt = 0
	}
	rxTimePerPkt := r.Turnaround + m.tAck
	rx := w * fin * rxPerPkt

	// Overhearing: only same-ladder neighbours are awake concurrently;
	// they decode a header and drop. The 0.5 factor reflects the partial
	// schedule overlap of the staggered ladder.
	ovrTime := w * fb * 0.5 * m.tHdr
	ovr := ovrTime * r.PowerRx

	// Schedule synchronization beacons.
	syncTxTime := w / dmacSyncPeriod * m.tSync
	syncRxTime := w / dmacSyncPeriod * m.tSync
	stx := syncTxTime * r.PowerTx
	srx := syncRxTime * r.PowerRx

	awake := csTime + w*fout*txTimePerPkt + w*fin*rxTimePerPkt + ovrTime + syncTxTime + syncRxTime
	sleepTime := w - awake
	if sleepTime < 0 {
		sleepTime = 0
	}
	return Components{
		CarrierSense: cs,
		Tx:           tx,
		Rx:           rx,
		Overhear:     ovr,
		SyncTx:       stx,
		SyncRx:       srx,
		Sleep:        sleepTime * r.PowerSleep,
	}
}

// Energy implements Model.
func (m *DMAC) Energy(x opt.Vector) float64 {
	return m.EnergyAt(x, m.flows.Bottleneck()).Total()
}

// Delay implements Model: a packet waits half a frame on average for its
// level's next transmission slot, then rides the staggered wave one slot
// per hop. On lossy links each failed hop exchange defers the packet to
// a later frame, so every expected extra attempt costs a full frame.
func (m *DMAC) Delay(x opt.Vector) float64 {
	frame, mu := x[0], x[1]
	return frame/2 + float64(m.env.Rings.Depth)*(mu+(m.attempts-1)*frame)
}

// String returns a short human-readable description.
func (m *DMAC) String() string {
	return fmt.Sprintf("dmac(D=%d,C=%d)", m.env.Rings.Depth, m.env.Rings.Density)
}
