package macmodel

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

func TestAttempts(t *testing.T) {
	cases := []struct {
		prr  float64
		want float64
	}{
		{0, RetryCap},    // unset: perfect
		{1, 1},           // exact at PRR 1
		{0.5, 4},         // 1/(0.5*0.5)
		{0.9, 1 / 0.81},  // 1/(0.9*0.9)
		{0.1, RetryCap},  // capped
		{0.01, RetryCap}, // capped
	}
	for i, tc := range cases {
		env := Default()
		env.LinkPRR = tc.prr
		got := env.Attempts()
		want := tc.want
		if tc.prr == 0 {
			want = 1 // zero value means unset/perfect
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("case %d: Attempts(prr=%v) = %v, want %v", i, tc.prr, got, want)
		}
	}
	bad := Default()
	bad.LinkPRR = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("LinkPRR 1.5 validated")
	}
	bad.LinkPRR = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("LinkPRR -0.1 validated")
	}
}

// midpoint returns the center of a model's admissible box — a vector
// every protocol can evaluate.
func midpoint(m Model) opt.Vector {
	b := m.Bounds()
	x := make(opt.Vector, len(b.Lo))
	for i := range x {
		x[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return x
}

// TestLossInflationMonotone asserts the retransmission inflation
// contract for every protocol: at a fixed parameter vector, energy and
// delay are nondecreasing as the link PRR falls, and a PRR of exactly 1
// reproduces the perfect-links model bit for bit.
func TestLossInflationMonotone(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			perfect, err := New(name, Default())
			if err != nil {
				t.Fatal(err)
			}
			x := midpoint(perfect)
			baseE, baseD := perfect.Energy(x), perfect.Delay(x)

			env := Default()
			env.LinkPRR = 1
			exact, err := New(name, env)
			if err != nil {
				t.Fatal(err)
			}
			if exact.Energy(x) != baseE || exact.Delay(x) != baseD {
				t.Errorf("PRR=1 diverges from the perfect model: E %v vs %v, L %v vs %v",
					exact.Energy(x), baseE, exact.Delay(x), baseD)
			}

			lastE, lastD := baseE, baseD
			for _, prr := range []float64{0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.3} {
				env := Default()
				env.LinkPRR = prr
				m, err := New(name, env)
				if err != nil {
					t.Fatalf("prr %v: %v", prr, err)
				}
				e, d := m.Energy(x), m.Delay(x)
				if e < lastE {
					t.Errorf("energy not monotone: E(prr=%v) = %v < %v", prr, e, lastE)
				}
				if d < lastD {
					t.Errorf("delay not monotone: L(prr=%v) = %v < %v", prr, d, lastD)
				}
				lastE, lastD = e, d
			}
			if lastE <= baseE {
				t.Errorf("energy never moved: %v at PRR 0.3 vs %v perfect", lastE, baseE)
			}
			if lastD <= baseD {
				t.Errorf("delay never moved: %v at PRR 0.3 vs %v perfect", lastD, baseD)
			}
		})
	}
}
