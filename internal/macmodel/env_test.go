package macmodel

import (
	"testing"

	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
)

func TestDefaultEnvValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
}

func TestEnvValidateRejectsBadFields(t *testing.T) {
	mutations := map[string]func(*Env){
		"bad radio":     func(e *Env) { e.Radio = radio.Radio{} },
		"bad rings":     func(e *Env) { e.Rings = topology.RingModel{} },
		"zero rate":     func(e *Env) { e.SampleRate = 0 },
		"negative rate": func(e *Env) { e.SampleRate = -1 },
		"zero window":   func(e *Env) { e.Window = 0 },
		"zero payload":  func(e *Env) { e.Payload = 0 },
	}
	for name, mutate := range mutations {
		env := Default()
		mutate(&env)
		if err := env.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid env", name)
		}
	}
}

func TestEnvAirtimes(t *testing.T) {
	env := Default()
	data := env.DataAirtime()
	ack := env.AckAirtime()
	strobe := env.StrobeAirtime()
	ctrl := env.CtrlAirtime()
	sync := env.SyncAirtime()
	hdr := env.HeaderAirtime()
	for name, v := range map[string]float64{
		"data": data, "ack": ack, "strobe": strobe, "ctrl": ctrl, "sync": sync, "hdr": hdr,
	} {
		if v <= 0 {
			t.Errorf("%s airtime = %v, want positive", name, v)
		}
	}
	if !(ack < strobe && strobe < ctrl && ctrl < data) {
		t.Errorf("airtimes out of order: ack=%v strobe=%v ctrl=%v data=%v", ack, strobe, ctrl, data)
	}
	// 32-byte payload + 11 bytes MAC + 6 bytes PHY at 250 kbit/s.
	if want := 49 * 32e-6; data != want {
		t.Errorf("data airtime = %v, want %v", data, want)
	}
}

func TestEnvFlows(t *testing.T) {
	env := Default()
	f := env.Flows()
	if err := f.Validate(); err != nil {
		t.Fatalf("Flows().Validate() = %v", err)
	}
	if f.Rate != env.SampleRate {
		t.Errorf("Flows rate = %v, want %v", f.Rate, env.SampleRate)
	}
}
