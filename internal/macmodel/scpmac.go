package macmodel

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/traffic"
)

// SCP-MAC poll-period bounds in seconds and sync constants.
const (
	scpPollMin = 0.05
	scpPollMax = 10.0
	// scpSyncPeriod is the schedule-synchronization beacon period.
	scpSyncPeriod = 60.0
	// scpToneFactor sizes the wakeup tone relative to the residual clock
	// drift: the tone must cover twice the maximum drift between
	// re-synchronizations (drift scpDrift per second, two-sided).
	scpDrift = 30e-6
)

// SCPMAC is the analytic model of SCP-MAC (Ye, Silva, Heidemann, SenSys
// 2006): scheduled channel polling. All nodes synchronize their polls,
// so a sender needs only a short wakeup tone covering the residual clock
// drift instead of X-MAC's half-interval strobe train — trading
// synchronization traffic for far cheaper transmissions at ultra-low
// duty cycles.
//
// It is the representative of the fourth duty-cycled MAC category
// (scheduled polling) referenced in the paper's related work ([10]); the
// paper's evaluation covers the other three. It extends the framework
// the same way B-MAC does, and the ablation benchmarks contrast it with
// X-MAC.
//
// Parameter vector: X = (Tp), the common poll period.
type SCPMAC struct {
	env      Env
	flows    traffic.RingFlows
	attempts float64 // expected tx attempts per hop (1 on perfect links)

	tData float64
	tAck  float64
	tSync float64
	tPoll float64
	tCW   float64
}

var _ Model = (*SCPMAC)(nil)

// NewSCPMAC builds the SCP-MAC model for env.
func NewSCPMAC(env Env) (*SCPMAC, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	r := env.Radio
	m := &SCPMAC{
		env:      env,
		flows:    env.Flows(),
		attempts: env.Attempts(),
		tData:    env.DataAirtime(),
		tAck:     env.AckAirtime(),
		tSync:    env.SyncAirtime(),
		tPoll:    r.Startup + 2*r.CCA,
		tCW:      8 * r.CCA,
	}
	if err := validateSpecs(m.Name(), m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Model.
func (m *SCPMAC) Name() string { return "scpmac" }

// Env implements Model.
func (m *SCPMAC) Env() Env { return m.env }

// Params implements Model.
func (m *SCPMAC) Params() []ParamSpec {
	return []ParamSpec{{Name: "poll-period", Unit: "s", Min: scpPollMin, Max: scpPollMax}}
}

// Bounds implements Model.
func (m *SCPMAC) Bounds() opt.Bounds { return boundsOf(m.Params()) }

// toneTime returns the wakeup-tone duration: twice the worst-case drift
// accumulated over a sync period, floored at one CCA so the tone is
// detectable.
func (m *SCPMAC) toneTime() float64 {
	tone := 2 * scpDrift * scpSyncPeriod
	if cca := m.env.Radio.CCA; tone < cca {
		tone = cca
	}
	return tone
}

// Structural implements Model: the bottleneck node must stay unsaturated
// within its poll period (one packet per poll on average at most).
func (m *SCPMAC) Structural() []opt.Constraint {
	return []opt.Constraint{{
		Name: "scpmac-capacity",
		F: func(x opt.Vector) float64 {
			return m.attempts*m.flows.Out(1)*x[0] - 0.9
		},
	}}
}

// EnergyAt implements Model.
func (m *SCPMAC) EnergyAt(x opt.Vector, ring int) Components {
	tp := x[0]
	r := m.env.Radio
	w := m.env.Window
	// Lossy links repeat the tone/data/ACK exchange per attempt.
	fout := m.attempts * m.flows.Out(ring)
	fin := m.attempts * m.flows.In(ring)
	fb := m.attempts * m.flows.Background(ring)
	tone := m.toneTime()

	// Synchronized polls: a short CCA pair every poll period.
	csTime := w / tp * m.tPoll
	cs := csTime * r.PowerListen

	// Transmit: contend briefly before the scheduled poll, send the tone
	// and the data, collect the ACK. No long preamble — that is the
	// whole point of synchronized polling.
	txTimePerPkt := m.tCW/2 + tone + m.tData + r.Turnaround + m.tAck
	txPerPkt := m.tCW/2*r.PowerListen + (tone+m.tData)*r.PowerTx +
		r.Turnaround*r.PowerListen + m.tAck*r.PowerRx
	tx := w * fout * txPerPkt

	// Receive: the poll caught a tone; stay up for the data, reply.
	rxTimePerPkt := tone + m.tData + r.Turnaround + m.tAck
	rxPerPkt := (tone+m.tData)*r.PowerRx + r.Turnaround*r.PowerListen + m.tAck*r.PowerTx
	rx := w * fin * rxPerPkt

	// Overhear: synchronized polls wake every neighbour for every tone;
	// non-targets decode the data header and drop.
	hdr := m.env.HeaderAirtime()
	ovrTime := w * fb * (tone + hdr)
	ovr := ovrTime * r.PowerRx

	// Synchronization beacons keep the poll schedule aligned.
	syncTxTime := w / scpSyncPeriod * m.tSync
	syncRxTime := w / scpSyncPeriod * m.tSync
	stx := syncTxTime * r.PowerTx
	srx := syncRxTime * r.PowerRx

	awake := csTime + w*fout*txTimePerPkt + w*fin*rxTimePerPkt + ovrTime + syncTxTime + syncRxTime
	sleepTime := w - awake
	if sleepTime < 0 {
		sleepTime = 0
	}
	return Components{
		CarrierSense: cs,
		Tx:           tx,
		Rx:           rx,
		Overhear:     ovr,
		SyncTx:       stx,
		SyncRx:       srx,
		Sleep:        sleepTime * r.PowerSleep,
	}
}

// Energy implements Model.
func (m *SCPMAC) Energy(x opt.Vector) float64 {
	return m.EnergyAt(x, m.flows.Bottleneck()).Total()
}

// Delay implements Model: a packet waits half a poll period for the next
// synchronized poll, then completes the tone/data exchange, per hop —
// the whole service repeating per expected attempt on lossy links.
func (m *SCPMAC) Delay(x opt.Vector) float64 {
	tp := x[0]
	perHop := tp/2 + m.toneTime() + m.tData + m.env.Radio.Turnaround + m.tAck
	return float64(m.env.Rings.Depth) * perHop * m.attempts
}

// String returns a short human-readable description.
func (m *SCPMAC) String() string {
	return fmt.Sprintf("scpmac(D=%d,C=%d)", m.env.Rings.Depth, m.env.Rings.Density)
}
