package macmodel

import (
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

func newBMAC(t *testing.T) *BMAC {
	t.Helper()
	m, err := NewBMAC(Default())
	if err != nil {
		t.Fatalf("NewBMAC: %v", err)
	}
	return m
}

func TestBMACCostlierThanXMAC(t *testing.T) {
	// The full-length address-free preamble must make B-MAC strictly
	// worse than X-MAC at the same wakeup interval — the reason X-MAC
	// exists, and the framework-generality ablation of the repo.
	env := Default()
	bmac, err := NewBMAC(env)
	if err != nil {
		t.Fatalf("NewBMAC: %v", err)
	}
	xmac, err := NewXMAC(env)
	if err != nil {
		t.Fatalf("NewXMAC: %v", err)
	}
	for _, tw := range []float64{0.1, 0.5, 1.0, 2.0} {
		x := opt.Vector{tw}
		if bmac.Energy(x) <= xmac.Energy(x) {
			t.Errorf("Tw=%v: B-MAC energy %v should exceed X-MAC energy %v", tw, bmac.Energy(x), xmac.Energy(x))
		}
		if bmac.Delay(x) <= xmac.Delay(x) {
			t.Errorf("Tw=%v: B-MAC delay %v should exceed X-MAC delay %v", tw, bmac.Delay(x), xmac.Delay(x))
		}
	}
}

func TestBMACOverhearingSubstantial(t *testing.T) {
	m := newBMAC(t)
	c := m.EnergyAt(opt.Vector{1.0}, 1)
	if c.Overhear <= 0 {
		t.Fatal("B-MAC overhearing missing")
	}
	// Address-free preambles: overhearers pay about as much as receivers
	// per packet, and background traffic exceeds addressed traffic, so
	// the overhear component must beat the rx component.
	if c.Overhear <= c.Rx {
		t.Errorf("overhear %v should exceed rx %v under background-heavy traffic", c.Overhear, c.Rx)
	}
}

func TestBMACDelayIncludesFullPreamble(t *testing.T) {
	m := newBMAC(t)
	depth := float64(m.Env().Rings.Depth)
	tw := 0.8
	l := m.Delay(opt.Vector{tw})
	if l < depth*tw {
		t.Errorf("delay %v cannot undercut D×Tw = %v: each hop sends the full preamble", l, depth*tw)
	}
}
