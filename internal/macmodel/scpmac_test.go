package macmodel

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

func newSCPMAC(t *testing.T) *SCPMAC {
	t.Helper()
	m, err := NewSCPMAC(Default())
	if err != nil {
		t.Fatalf("NewSCPMAC: %v", err)
	}
	return m
}

func TestSCPMACCheaperTxThanXMAC(t *testing.T) {
	// Synchronized polling's raison d'être: the per-packet transmit cost
	// must not scale with the poll period, unlike X-MAC's strobe train.
	env := Default()
	scp, err := NewSCPMAC(env)
	if err != nil {
		t.Fatalf("NewSCPMAC: %v", err)
	}
	xmac, err := NewXMAC(env)
	if err != nil {
		t.Fatalf("NewXMAC: %v", err)
	}
	for _, period := range []float64{0.5, 1.0, 2.0, 4.0} {
		x := opt.Vector{period}
		if scp.EnergyAt(x, 1).Tx >= xmac.EnergyAt(x, 1).Tx {
			t.Errorf("period %v: scpmac tx %v should undercut xmac tx %v",
				period, scp.EnergyAt(x, 1).Tx, xmac.EnergyAt(x, 1).Tx)
		}
	}
	// And the tx component is flat in the poll period.
	tx1 := scp.EnergyAt(opt.Vector{0.5}, 1).Tx
	tx2 := scp.EnergyAt(opt.Vector{4.0}, 1).Tx
	if math.Abs(tx1-tx2) > 1e-12 {
		t.Errorf("scpmac tx should be period-independent: %v vs %v", tx1, tx2)
	}
}

func TestSCPMACPaysSyncInstead(t *testing.T) {
	m := newSCPMAC(t)
	c := m.EnergyAt(opt.Vector{1.0}, 1)
	if c.SyncTx <= 0 || c.SyncRx <= 0 {
		t.Errorf("scheduled polling must pay sync traffic, got stx=%v srx=%v", c.SyncTx, c.SyncRx)
	}
	if c.CarrierSense <= 0 {
		t.Error("poll cost missing")
	}
}

func TestSCPMACDelayLinearInPeriod(t *testing.T) {
	m := newSCPMAC(t)
	d := float64(m.Env().Rings.Depth)
	l1 := m.Delay(opt.Vector{1.0})
	l2 := m.Delay(opt.Vector{3.0})
	if got, want := l2-l1, d; math.Abs(got-want) > 1e-9 {
		t.Errorf("delay slope over 2 s of period = %v, want %v", got, want)
	}
}

func TestSCPMACBeatsXMACAtLongPeriods(t *testing.T) {
	// At ultra-low duty cycles (long periods) SCP-MAC's total energy
	// must undercut X-MAC's at the same period: that is the SenSys 2006
	// result the related work cites.
	env := Default()
	scp, err := NewSCPMAC(env)
	if err != nil {
		t.Fatalf("NewSCPMAC: %v", err)
	}
	xmac, err := NewXMAC(env)
	if err != nil {
		t.Fatalf("NewXMAC: %v", err)
	}
	x := opt.Vector{4.0}
	if scp.Energy(x) >= xmac.Energy(x) {
		t.Errorf("at a 4 s period scpmac %v should undercut xmac %v", scp.Energy(x), xmac.Energy(x))
	}
}

func TestSCPMACToneFloor(t *testing.T) {
	m := newSCPMAC(t)
	if tone := m.toneTime(); tone < m.env.Radio.CCA {
		t.Errorf("tone %v shorter than a CCA — undetectable", tone)
	}
}

func TestSCPMACCapacityConstraint(t *testing.T) {
	env := Default()
	env.SampleRate = 0.5
	m, err := NewSCPMAC(env)
	if err != nil {
		t.Fatalf("NewSCPMAC: %v", err)
	}
	cs := m.Structural()
	if len(cs) != 1 {
		t.Fatalf("want 1 structural constraint, got %d", len(cs))
	}
	if v := cs[0].F(opt.Vector{10}); v <= 0 {
		t.Errorf("capacity not violated at 0.5 pkt/s with a 10 s period: %v", v)
	}
	if v := cs[0].F(opt.Vector{0.05}); v > 0 {
		t.Errorf("capacity violated at a 50 ms period: %v", v)
	}
}
