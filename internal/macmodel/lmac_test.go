package macmodel

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

func newLMAC(t *testing.T) *LMAC {
	t.Helper()
	m, err := NewLMAC(Default())
	if err != nil {
		t.Fatalf("NewLMAC: %v", err)
	}
	return m
}

func TestLMACDelayProportionalToFrame(t *testing.T) {
	m := newLMAC(t)
	depth := float64(m.Env().Rings.Depth)
	n, ts := 16.0, 0.05
	want := depth * (n*ts/2 + m.tData)
	if got := m.Delay(opt.Vector{n, ts}); math.Abs(got-want) > 1e-12 {
		t.Errorf("Delay = %v, want %v", got, want)
	}
}

func TestLMACEnergyDecreasingInSlotLength(t *testing.T) {
	m := newLMAC(t)
	n := m.Bounds().Lo[0]
	prev := math.Inf(1)
	for _, ts := range []float64{0.005, 0.01, 0.05, 0.1, 0.3, 0.5} {
		e := m.Energy(opt.Vector{n, ts})
		if e >= prev {
			t.Errorf("energy %v at tslot=%v not below previous %v: padding should save energy", e, ts, prev)
		}
		prev = e
	}
}

func TestLMACControlTrackingDominates(t *testing.T) {
	m := newLMAC(t)
	c := m.EnergyAt(opt.Vector{16, 0.05}, 1)
	active := c.Active()
	if c.SyncRx < 0.8*active {
		t.Errorf("control tracking (%v J) should dominate the active energy (%v J)", c.SyncRx, active)
	}
	if c.CarrierSense != 0 || c.Overhear != 0 {
		t.Errorf("TDMA LMAC has no CCA polling or overhearing, got cs=%v ovr=%v", c.CarrierSense, c.Overhear)
	}
	if c.SyncTx <= 0 {
		t.Error("owner control beacon missing")
	}
}

func TestLMACMostExpensiveAtEqualDelay(t *testing.T) {
	// At a matched 2-second end-to-end delay LMAC must cost more than
	// X-MAC: the paper's headline protocol ordering.
	env := Default()
	lmac, err := NewLMAC(env)
	if err != nil {
		t.Fatalf("NewLMAC: %v", err)
	}
	xmac, err := NewXMAC(env)
	if err != nil {
		t.Fatalf("NewXMAC: %v", err)
	}
	depth := float64(env.Rings.Depth)
	// Configurations hitting L = 2 s.
	n := lmac.Bounds().Lo[0]
	tslot := (2/depth - lmac.tData) * 2 / n
	lx := opt.Vector{n, tslot}
	tw := 2 * (2/depth - xmac.tShake)
	xx := opt.Vector{tw}
	if math.Abs(lmac.Delay(lx)-2) > 1e-9 || math.Abs(xmac.Delay(xx)-2) > 1e-9 {
		t.Fatalf("setup: delays %v, %v, want 2", lmac.Delay(lx), xmac.Delay(xx))
	}
	if lmac.Energy(lx) <= xmac.Energy(xx) {
		t.Errorf("LMAC energy %v should exceed X-MAC energy %v at equal delay", lmac.Energy(lx), xmac.Energy(xx))
	}
}

func TestLMACCapacityConstraint(t *testing.T) {
	m := newLMAC(t)
	cs := m.Structural()
	if len(cs) == 0 {
		t.Fatal("missing structural constraints")
	}
	// With the default tiny sampling rate even huge frames are fine.
	if v := cs[0].F(opt.Vector{128, 0.5}); v > 0 {
		t.Errorf("capacity violated in low-rate default scenario: %v", v)
	}
	// A high-rate environment must trip it.
	env := Default()
	env.SampleRate = 0.5
	hot, err := NewLMAC(env)
	if err != nil {
		t.Fatalf("NewLMAC: %v", err)
	}
	if v := hot.Structural()[0].F(opt.Vector{128, 0.5}); v <= 0 {
		t.Errorf("capacity not violated at 0.5 pkt/s with a 64 s frame: %v", v)
	}
}

func TestLMACMinSlotsScalesWithDensity(t *testing.T) {
	low := Default()
	low.Rings.Density = 3
	high := Default()
	high.Rings.Density = 12
	ml, err := NewLMAC(low)
	if err != nil {
		t.Fatalf("NewLMAC: %v", err)
	}
	mh, err := NewLMAC(high)
	if err != nil {
		t.Fatalf("NewLMAC: %v", err)
	}
	if ml.Bounds().Lo[0] >= mh.Bounds().Lo[0] {
		t.Errorf("denser networks need more slots: %v vs %v", ml.Bounds().Lo[0], mh.Bounds().Lo[0])
	}
}

func TestLMACRejectsExtremeDensity(t *testing.T) {
	env := Default()
	env.Rings.Density = 100 // needs >128 slots
	if _, err := NewLMAC(env); err == nil {
		t.Error("NewLMAC should reject densities whose schedule exceeds the slot cap")
	}
}
