package macmodel

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/traffic"
)

// X-MAC wakeup-interval bounds in seconds. The lower bound is the
// shortest check interval the poll cost amortizes over sensibly (and the
// knob below which the delay-optimal configuration saturates); the upper
// bound keeps per-hop latency within the paper's figure range.
const (
	xmacTwMin = 0.064
	xmacTwMax = 5.0
)

// XMAC is the analytic model of X-MAC (Buettner et al., SenSys 2006):
// asynchronous preamble sampling with strobed preambles and early ACK.
//
// Parameter vector: X = (Tw), the wakeup (channel-check) interval.
// Receivers briefly poll the channel every Tw; a sender strobes short
// address-carrying preambles for Tw/2 on average until the target wakes,
// ACKs, and receives the data frame. Strobed preambles make overhearing
// cheap: third parties decode one strobe and go back to sleep.
type XMAC struct {
	env      Env
	flows    traffic.RingFlows
	attempts float64 // expected tx attempts per hop (1 on perfect links)

	tData   float64 // data frame airtime
	tAck    float64 // ACK airtime
	tStrobe float64 // one strobe airtime
	tGap    float64 // inter-strobe gap (early-ACK listening window)
	tPeriod float64 // strobe period: strobe + gap
	tPoll   float64 // receiver poll duration: startup + 2 CCA
	tShake  float64 // post-wakeup handshake: strobe + ACK + data + turnarounds
}

var _ Model = (*XMAC)(nil)

// NewXMAC builds the X-MAC model for env.
func NewXMAC(env Env) (*XMAC, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	r := env.Radio
	m := &XMAC{
		env:      env,
		flows:    env.Flows(),
		attempts: env.Attempts(),
		tData:    env.DataAirtime(),
		tAck:     env.AckAirtime(),
		tStrobe:  env.StrobeAirtime(),
		tGap:     env.AckAirtime() + 2*r.Turnaround,
	}
	m.tPeriod = m.tStrobe + m.tGap
	m.tPoll = r.Startup + 2*r.CCA
	m.tShake = m.tStrobe + r.Turnaround + m.tAck + r.Turnaround + m.tData
	if err := validateSpecs(m.Name(), m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Model.
func (m *XMAC) Name() string { return "xmac" }

// Env implements Model.
func (m *XMAC) Env() Env { return m.env }

// Params implements Model.
func (m *XMAC) Params() []ParamSpec {
	return []ParamSpec{{Name: "wakeup-interval", Unit: "s", Min: xmacTwMin, Max: xmacTwMax}}
}

// Bounds implements Model.
func (m *XMAC) Bounds() opt.Bounds { return boundsOf(m.Params()) }

// Structural implements Model: the bottleneck node must stay unsaturated
// — the time it spends strobing and forwarding must remain below half
// the window, or the low-rate queueing assumptions collapse.
func (m *XMAC) Structural() []opt.Constraint {
	return []opt.Constraint{{
		Name: "xmac-unsaturated",
		F: func(x opt.Vector) float64 {
			return m.utilization(x) - 0.5
		},
	}}
}

// utilization returns the busy fraction of the bottleneck node,
// including the retransmissions lossy links force.
func (m *XMAC) utilization(x opt.Vector) float64 {
	tw := x[0]
	perPacket := tw/2 + m.tShake
	return m.attempts * (m.flows.Out(1)*perPacket + m.flows.In(1)*m.tShake)
}

// EnergyAt implements Model.
func (m *XMAC) EnergyAt(x opt.Vector, ring int) Components {
	tw := x[0]
	r := m.env.Radio
	w := m.env.Window
	// Every flow-driven term repeats per attempt: lossy links multiply
	// the handshakes a node transmits, receives and overhears.
	fout := m.attempts * m.flows.Out(ring)
	fin := m.attempts * m.flows.In(ring)
	fb := m.attempts * m.flows.Background(ring)

	// Periodic channel polls: startup plus two CCAs per check.
	csTime := w / tw * m.tPoll
	cs := csTime * r.PowerListen

	// Transmit: strobe for Tw/2 on average (transmitting a strobe, then
	// listening in the gap for the early ACK), then the data exchange.
	strobeDuty := m.tStrobe / m.tPeriod
	strobePower := strobeDuty*r.PowerTx + (1-strobeDuty)*r.PowerListen
	txTimePerPkt := tw/2 + m.tData + m.tAck
	tx := w * fout * (tw/2*strobePower + m.tData*r.PowerTx + m.tAck*r.PowerRx)

	// Receive: after its poll catches a strobe, the node hears the rest
	// of the strobe period, sends the early ACK, and receives the data.
	rxTimePerPkt := m.tPeriod/2 + m.tStrobe + m.tAck + m.tData
	rx := w * fin * (m.tPeriod/2*r.PowerListen + m.tStrobe*r.PowerRx + m.tAck*r.PowerTx + m.tData*r.PowerRx)

	// Overhear: one strobe header identifies a foreign target.
	ovrTime := w * fb * m.tStrobe
	ovr := ovrTime * r.PowerRx

	awake := csTime + w*fout*txTimePerPkt + w*fin*rxTimePerPkt + ovrTime
	sleepTime := w - awake
	if sleepTime < 0 {
		sleepTime = 0
	}
	return Components{
		CarrierSense: cs,
		Tx:           tx,
		Rx:           rx,
		Overhear:     ovr,
		Sleep:        sleepTime * r.PowerSleep,
	}
}

// Energy implements Model.
func (m *XMAC) Energy(x opt.Vector) float64 {
	return m.EnergyAt(x, m.flows.Bottleneck()).Total()
}

// Delay implements Model: each hop waits Tw/2 on average for the
// receiver's poll, then completes the strobe/ACK/data handshake — and
// repeats the whole service per expected attempt on lossy links.
func (m *XMAC) Delay(x opt.Vector) float64 {
	tw := x[0]
	return float64(m.env.Rings.Depth) * (tw/2 + m.tShake) * m.attempts
}

// String returns a short human-readable description.
func (m *XMAC) String() string {
	return fmt.Sprintf("xmac(D=%d,C=%d)", m.env.Rings.Depth, m.env.Rings.Density)
}
