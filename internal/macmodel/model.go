package macmodel

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
)

// Components decomposes a node's per-window energy the way the paper
// does: E = Ecs + Etx + Erx + Eovr + Estx + Esrx. Sleep is kept as an
// explicit extra component so that totals reflect the whole window; it
// is orders of magnitude below the active terms. All values are joules
// per accounting window.
type Components struct {
	// CarrierSense is channel polling / idle listening (Ecs).
	CarrierSense float64
	// Tx is data transmission including preambles and contention (Etx).
	Tx float64
	// Rx is data reception including handshake replies (Erx).
	Rx float64
	// Overhear is energy spent on frames addressed to other nodes (Eovr).
	Overhear float64
	// SyncTx is schedule-synchronization transmission (Estx).
	SyncTx float64
	// SyncRx is schedule-synchronization reception (Esrx).
	SyncRx float64
	// Sleep is the residual window time spent in the sleep state.
	Sleep float64
}

// Total returns the node's energy over the window in joules.
func (c Components) Total() float64 {
	return c.CarrierSense + c.Tx + c.Rx + c.Overhear + c.SyncTx + c.SyncRx + c.Sleep
}

// Active returns the energy excluding sleep, the quantity the paper's
// component formula lists explicitly.
func (c Components) Active() float64 {
	return c.Total() - c.Sleep
}

// ParamSpec documents one tunable MAC parameter and its admissible range.
type ParamSpec struct {
	// Name identifies the parameter, e.g. "wakeup-interval".
	Name string
	// Unit is the physical unit, e.g. "s" or "slots".
	Unit string
	// Min and Max delimit the admissible values.
	Min, Max float64
}

// Model is a closed-form energy/latency model of one MAC protocol,
// evaluated against its Env. Implementations must be safe for concurrent
// use (they are immutable after construction) and total over the bounds
// box: solvers call Energy and Delay densely.
type Model interface {
	// Name returns the protocol name ("xmac", "dmac", "lmac", "bmac").
	Name() string
	// Env returns the deployment the model was built for.
	Env() Env
	// Params documents the tunable parameter vector, in order.
	Params() []ParamSpec
	// Bounds returns the admissible box for the parameter vector.
	Bounds() opt.Bounds
	// Structural returns protocol feasibility constraints coupling the
	// parameters (satisfied when <= 0), e.g. DMAC's "the wakeup ladder
	// must fit in the frame".
	Structural() []opt.Constraint
	// EnergyAt returns the per-window energy components of a node at the
	// given ring for parameter vector x.
	EnergyAt(x opt.Vector, ring int) Components
	// Energy returns the system energy metric: the per-window energy of
	// the bottleneck (ring-1) node, in joules.
	Energy(x opt.Vector) float64
	// Delay returns the system latency metric: the expected end-to-end
	// delay of a ring-D packet, in seconds.
	Delay(x opt.Vector) float64
}

// New constructs the named protocol model for the environment.
// Recognized names: "xmac", "dmac", "lmac", "bmac", "scpmac".
func New(name string, env Env) (Model, error) {
	switch name {
	case "xmac":
		return NewXMAC(env)
	case "dmac":
		return NewDMAC(env)
	case "lmac":
		return NewLMAC(env)
	case "bmac":
		return NewBMAC(env)
	case "scpmac":
		return NewSCPMAC(env)
	default:
		return nil, fmt.Errorf("macmodel: unknown protocol %q (want xmac, dmac, lmac, bmac or scpmac)", name)
	}
}

// Names lists the protocols New accepts, in presentation order: the
// paper's three first, then the framework extensions.
func Names() []string { return []string{"xmac", "dmac", "lmac", "bmac", "scpmac"} }

// boundsOf assembles the opt search box from parameter specs.
func boundsOf(specs []ParamSpec) opt.Bounds {
	lo := make(opt.Vector, len(specs))
	hi := make(opt.Vector, len(specs))
	for i, s := range specs {
		lo[i], hi[i] = s.Min, s.Max
	}
	return opt.Bounds{Lo: lo, Hi: hi}
}

// validateSpecs sanity-checks a model's parameter table at construction.
func validateSpecs(name string, specs []ParamSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("macmodel: %s has no parameters", name)
	}
	for _, s := range specs {
		if !(s.Min < s.Max) {
			return fmt.Errorf("macmodel: %s parameter %q has empty range [%v, %v]", name, s.Name, s.Min, s.Max)
		}
		if s.Min <= 0 {
			return fmt.Errorf("macmodel: %s parameter %q must have positive minimum, got %v", name, s.Name, s.Min)
		}
	}
	return nil
}
