package macmodel

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/traffic"
)

// LMAC parameter limits.
const (
	// lmacSlotsMax caps the frame size in slots.
	lmacSlotsMax = 128
	// lmacSlotMax caps the slot length in seconds; the tail of a slot
	// beyond control+data is sleep padding, LMAC's energy lever.
	lmacSlotMax = 0.5
	// lmacCapacity caps expected packets per frame per node, since a node
	// owns exactly one slot per frame.
	lmacCapacity = 0.9
)

// LMAC is the analytic model of LMAC (van Hoesel & Havinga, INSS 2004):
// frame-based TDMA where every node owns one slot per frame. Each slot
// opens with a control section; the owner always transmits it (ownership
// maintenance + sync), and every other node listens to every control
// section to track its two-hop schedule, then sleeps through data
// sections not addressed to it. That always-on control tracking is
// LMAC's energy floor and makes it the most energy-hungry of the three
// protocols, exactly as in the paper's figures.
//
// Parameter vector: X = (N, tslot) — slots per frame and slot length.
// N is continuous in the model and rounded by the simulator.
type LMAC struct {
	env      Env
	flows    traffic.RingFlows
	attempts float64 // expected tx attempts per hop (1 on perfect links)

	tData    float64
	tCtrl    float64
	slotMin  float64 // control + CCA + data + turnaround
	slotsMin float64 // 2C+3: a conflict-free 2-hop schedule must fit
}

var _ Model = (*LMAC)(nil)

// NewLMAC builds the LMAC model for env.
func NewLMAC(env Env) (*LMAC, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	r := env.Radio
	m := &LMAC{
		env:      env,
		flows:    env.Flows(),
		attempts: env.Attempts(),
		tData:    env.DataAirtime(),
		tCtrl:    env.CtrlAirtime(),
	}
	m.slotMin = m.tCtrl + r.CCA + m.tData + r.Turnaround
	m.slotsMin = float64(2*env.Rings.Density + 3)
	if m.slotsMin >= lmacSlotsMax {
		return nil, fmt.Errorf("macmodel: lmac needs at least %v slots for density %d, above the %d-slot cap",
			m.slotsMin, env.Rings.Density, lmacSlotsMax)
	}
	if err := validateSpecs(m.Name(), m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Model.
func (m *LMAC) Name() string { return "lmac" }

// Env implements Model.
func (m *LMAC) Env() Env { return m.env }

// Params implements Model.
func (m *LMAC) Params() []ParamSpec {
	return []ParamSpec{
		{Name: "frame-slots", Unit: "slots", Min: m.slotsMin, Max: lmacSlotsMax},
		{Name: "slot-length", Unit: "s", Min: m.slotMin, Max: lmacSlotMax},
	}
}

// Bounds implements Model.
func (m *LMAC) Bounds() opt.Bounds { return boundsOf(m.Params()) }

// Structural implements Model: a node owning one slot per frame must see
// less than one outgoing packet per frame on average.
func (m *LMAC) Structural() []opt.Constraint {
	return []opt.Constraint{{
		Name: "lmac-capacity",
		F: func(x opt.Vector) float64 {
			frame := x[0] * x[1]
			return m.attempts*m.flows.Out(1)*frame - lmacCapacity
		},
	}}
}

// EnergyAt implements Model.
func (m *LMAC) EnergyAt(x opt.Vector, ring int) Components {
	slots, tslot := x[0], x[1]
	frame := slots * tslot
	r := m.env.Radio
	w := m.env.Window
	// Lossy links repeat a hop's data section in a later owned slot:
	// the data flows inflate by the expected attempts (the control
	// tracking baseline is schedule-driven and does not).
	fout := m.attempts * m.flows.Out(ring)
	fin := m.attempts * m.flows.In(ring)

	// Control tracking: listen to the control section (plus a CCA to
	// catch the section start) of every slot it does not own.
	srxTime := w * (slots - 1) / frame * (m.tCtrl + r.CCA)
	srx := srxTime * r.PowerRx

	// Own slot: the control beacon goes out every frame, data or not.
	stxTime := w / frame * m.tCtrl
	stx := stxTime * r.PowerTx

	// Data: collision-free by schedule — no contention, no preamble.
	txTime := w * fout * m.tData
	tx := txTime * r.PowerTx
	rxTime := w * fin * (m.tData + r.Turnaround)
	rx := w * fin * (m.tData*r.PowerRx + r.Turnaround*r.PowerListen)

	awake := srxTime + stxTime + txTime + rxTime
	sleepTime := w - awake
	if sleepTime < 0 {
		sleepTime = 0
	}
	return Components{
		Tx:     tx,
		Rx:     rx,
		SyncTx: stx,
		SyncRx: srx,
		Sleep:  sleepTime * r.PowerSleep,
	}
}

// Energy implements Model.
func (m *LMAC) Energy(x opt.Vector) float64 {
	return m.EnergyAt(x, m.flows.Bottleneck()).Total()
}

// Delay implements Model: at every hop a packet waits half a frame on
// average for the forwarder's owned slot, then occupies one data
// section. On lossy links every expected extra attempt defers the hop
// by one full frame (the next owned slot).
func (m *LMAC) Delay(x opt.Vector) float64 {
	frame := x[0] * x[1]
	return float64(m.env.Rings.Depth) * (frame/2 + m.tData + (m.attempts-1)*frame)
}

// String returns a short human-readable description.
func (m *LMAC) String() string {
	return fmt.Sprintf("lmac(D=%d,C=%d)", m.env.Rings.Depth, m.env.Rings.Density)
}
