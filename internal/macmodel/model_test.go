package macmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

// allModels builds every protocol model against the default environment.
func allModels(t *testing.T) []Model {
	t.Helper()
	var models []Model
	for _, name := range Names() {
		m, err := New(name, Default())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		models = append(models, m)
	}
	return models
}

// randomPoint samples a uniform point inside the model's bounds.
func randomPoint(m Model, rng *rand.Rand) opt.Vector {
	b := m.Bounds()
	x := make(opt.Vector, b.Dim())
	for i := range x {
		x[i] = b.Lo[i] + rng.Float64()*(b.Hi[i]-b.Lo[i])
	}
	return x
}

func TestNewUnknownProtocol(t *testing.T) {
	if _, err := New("smac", Default()); err == nil {
		t.Error("New(smac) should fail")
	}
}

func TestNewRejectsBadEnv(t *testing.T) {
	bad := Default()
	bad.SampleRate = 0
	for _, name := range Names() {
		if _, err := New(name, bad); err == nil {
			t.Errorf("New(%q) accepted invalid env", name)
		}
	}
}

func TestModelMetadata(t *testing.T) {
	for _, m := range allModels(t) {
		specs := m.Params()
		b := m.Bounds()
		if len(specs) != b.Dim() {
			t.Errorf("%s: %d params but %d-dimensional bounds", m.Name(), len(specs), b.Dim())
		}
		if err := b.Validate(); err != nil {
			t.Errorf("%s: bounds invalid: %v", m.Name(), err)
		}
		for i, s := range specs {
			if s.Min != b.Lo[i] || s.Max != b.Hi[i] {
				t.Errorf("%s param %d: spec range [%v,%v] != bounds [%v,%v]",
					m.Name(), i, s.Min, s.Max, b.Lo[i], b.Hi[i])
			}
			if s.Name == "" || s.Unit == "" {
				t.Errorf("%s param %d: missing name or unit", m.Name(), i)
			}
		}
		registered := false
		for _, n := range Names() {
			if n == m.Name() {
				registered = true
			}
		}
		if !registered {
			t.Errorf("%s: not in Names()", m.Name())
		}
	}
}

func TestComponentsNonNegativeAndSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range allModels(t) {
		depth := m.Env().Rings.Depth
		for trial := 0; trial < 200; trial++ {
			x := randomPoint(m, rng)
			for d := 1; d <= depth; d++ {
				c := m.EnergyAt(x, d)
				for name, v := range map[string]float64{
					"cs": c.CarrierSense, "tx": c.Tx, "rx": c.Rx,
					"ovr": c.Overhear, "stx": c.SyncTx, "srx": c.SyncRx, "sleep": c.Sleep,
				} {
					if v < 0 || math.IsNaN(v) {
						t.Fatalf("%s at %v ring %d: component %s = %v", m.Name(), x, d, name, v)
					}
				}
				sum := c.CarrierSense + c.Tx + c.Rx + c.Overhear + c.SyncTx + c.SyncRx + c.Sleep
				if math.Abs(sum-c.Total()) > 1e-15*math.Max(1, sum) {
					t.Fatalf("%s: Total() = %v != component sum %v", m.Name(), c.Total(), sum)
				}
				if c.Active() > c.Total() {
					t.Fatalf("%s: Active() %v exceeds Total() %v", m.Name(), c.Active(), c.Total())
				}
			}
		}
	}
}

func TestEnergyIsBottleneckRing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range allModels(t) {
		for trial := 0; trial < 50; trial++ {
			x := randomPoint(m, rng)
			if got, want := m.Energy(x), m.EnergyAt(x, 1).Total(); got != want {
				t.Fatalf("%s: Energy(%v) = %v, want ring-1 total %v", m.Name(), x, got, want)
			}
			// Ring 1 carries the most traffic, so it must dominate.
			for d := 2; d <= m.Env().Rings.Depth; d++ {
				if outer := m.EnergyAt(x, d).Total(); outer > m.Energy(x)+1e-12 {
					t.Fatalf("%s: ring-%d energy %v exceeds ring-1 energy %v", m.Name(), d, outer, m.Energy(x))
				}
			}
		}
	}
}

func TestDelayPositiveAndFiniteEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range allModels(t) {
		for trial := 0; trial < 200; trial++ {
			x := randomPoint(m, rng)
			l := m.Delay(x)
			if l <= 0 || math.IsInf(l, 0) || math.IsNaN(l) {
				t.Fatalf("%s: Delay(%v) = %v", m.Name(), x, l)
			}
		}
	}
}

// TestEnergyDelayConflict verifies the premise of the whole game: within
// each protocol there exist two configurations where one has lower
// energy and the other lower delay — the objectives genuinely conflict.
func TestEnergyDelayConflict(t *testing.T) {
	for _, m := range allModels(t) {
		b := m.Bounds()
		fast := b.Lo.Clone() // every parameter at its minimum: fastest
		slow := b.Hi.Clone()
		eFast, lFast := m.Energy(fast), m.Delay(fast)
		eSlow, lSlow := m.Energy(slow), m.Delay(slow)
		if !(lFast < lSlow) {
			t.Errorf("%s: delay should grow with the duty-cycle levers: fast %v, slow %v", m.Name(), lFast, lSlow)
		}
		if !(eSlow < eFast) {
			t.Errorf("%s: the slow configuration should save energy: fast %v J, slow %v J", m.Name(), eFast, eSlow)
		}
	}
}

// TestProtocolEnergyOrdering checks the paper's figure-range ordering at
// the fastest (delay-optimal corner) configuration: X-MAC < DMAC < LMAC.
func TestProtocolEnergyOrdering(t *testing.T) {
	byName := map[string]Model{}
	for _, m := range allModels(t) {
		byName[m.Name()] = m
	}
	e := func(name string) float64 {
		m := byName[name]
		return m.Energy(m.Bounds().Lo)
	}
	if !(e("xmac") < e("dmac") && e("dmac") < e("lmac")) {
		t.Errorf("energy ordering violated at fastest configs: xmac=%v dmac=%v lmac=%v",
			e("xmac"), e("dmac"), e("lmac"))
	}
}

func TestStructuralConstraintsSatisfiableInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range allModels(t) {
		found := false
		for trial := 0; trial < 500 && !found; trial++ {
			x := randomPoint(m, rng)
			ok := true
			for _, c := range m.Structural() {
				if c.F(x) > 0 {
					ok = false
					break
				}
			}
			found = ok
		}
		if !found {
			t.Errorf("%s: no structurally feasible point found in 500 samples", m.Name())
		}
	}
}

func TestModelsAreStringers(t *testing.T) {
	for _, m := range allModels(t) {
		s, ok := m.(interface{ String() string })
		if !ok {
			t.Errorf("%s: model does not implement String()", m.Name())
			continue
		}
		if !strings.Contains(s.String(), m.Name()) {
			t.Errorf("String() = %q does not mention protocol %q", s.String(), m.Name())
		}
	}
}
