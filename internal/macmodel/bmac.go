package macmodel

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/opt"
	"github.com/edmac-project/edmac/internal/traffic"
)

// B-MAC wakeup-interval bounds in seconds.
const (
	bmacTwMin = 0.01
	bmacTwMax = 2.0
)

// BMAC is the analytic model of classic low-power-listening (B-MAC,
// Polastre et al.): senders transmit one full-length, address-free
// preamble spanning the whole check interval before each data frame.
//
// It is not part of the paper's evaluation; it extends the framework to
// a fourth protocol and anchors the ablation benchmarks — its address-
// free preamble makes both transmission and overhearing dramatically
// more expensive than X-MAC's strobes, which is visible straight from
// the component decomposition.
//
// Parameter vector: X = (Tw), the wakeup (channel-check) interval.
type BMAC struct {
	env      Env
	flows    traffic.RingFlows
	attempts float64 // expected tx attempts per hop (1 on perfect links)

	tData float64
	tPoll float64
}

var _ Model = (*BMAC)(nil)

// NewBMAC builds the B-MAC model for env.
func NewBMAC(env Env) (*BMAC, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	m := &BMAC{
		env:      env,
		flows:    env.Flows(),
		attempts: env.Attempts(),
		tData:    env.DataAirtime(),
		tPoll:    env.Radio.Startup + 2*env.Radio.CCA,
	}
	if err := validateSpecs(m.Name(), m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}

// Name implements Model.
func (m *BMAC) Name() string { return "bmac" }

// Env implements Model.
func (m *BMAC) Env() Env { return m.env }

// Params implements Model.
func (m *BMAC) Params() []ParamSpec {
	return []ParamSpec{{Name: "wakeup-interval", Unit: "s", Min: bmacTwMin, Max: bmacTwMax}}
}

// Bounds implements Model.
func (m *BMAC) Bounds() opt.Bounds { return boundsOf(m.Params()) }

// Structural implements Model.
func (m *BMAC) Structural() []opt.Constraint {
	return []opt.Constraint{{
		Name: "bmac-unsaturated",
		F: func(x opt.Vector) float64 {
			tw := x[0]
			return m.attempts*m.flows.Out(1)*(tw+m.tData) - 0.5
		},
	}}
}

// EnergyAt implements Model.
func (m *BMAC) EnergyAt(x opt.Vector, ring int) Components {
	tw := x[0]
	r := m.env.Radio
	w := m.env.Window
	// Lossy links repeat the whole preamble+data exchange per attempt.
	fout := m.attempts * m.flows.Out(ring)
	fin := m.attempts * m.flows.In(ring)
	fb := m.attempts * m.flows.Background(ring)

	csTime := w / tw * m.tPoll
	cs := csTime * r.PowerListen

	// The preamble must span a full check interval to guarantee capture.
	txTimePerPkt := tw + m.tData
	tx := w * fout * txTimePerPkt * r.PowerTx

	// The receiver catches the preamble half-way on average and must hang
	// on until the data arrives — and so does every overhearer, because
	// the preamble carries no address.
	rxTimePerPkt := tw/2 + m.tData
	rx := w * fin * rxTimePerPkt * r.PowerRx
	ovrTime := w * fb * rxTimePerPkt
	ovr := ovrTime * r.PowerRx

	awake := csTime + w*fout*txTimePerPkt + w*fin*rxTimePerPkt + ovrTime
	sleepTime := w - awake
	if sleepTime < 0 {
		sleepTime = 0
	}
	return Components{
		CarrierSense: cs,
		Tx:           tx,
		Rx:           rx,
		Overhear:     ovr,
		Sleep:        sleepTime * r.PowerSleep,
	}
}

// Energy implements Model.
func (m *BMAC) Energy(x opt.Vector) float64 {
	return m.EnergyAt(x, m.flows.Bottleneck()).Total()
}

// Delay implements Model: every hop pays the full preamble plus data,
// once per expected attempt on lossy links.
func (m *BMAC) Delay(x opt.Vector) float64 {
	tw := x[0]
	return float64(m.env.Rings.Depth) * (tw + m.tData) * m.attempts
}

// String returns a short human-readable description.
func (m *BMAC) String() string {
	return fmt.Sprintf("bmac(D=%d,C=%d)", m.env.Rings.Depth, m.env.Rings.Density)
}
