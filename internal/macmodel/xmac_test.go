package macmodel

import (
	"math"
	"testing"

	"github.com/edmac-project/edmac/internal/opt"
)

func newXMAC(t *testing.T) *XMAC {
	t.Helper()
	m, err := NewXMAC(Default())
	if err != nil {
		t.Fatalf("NewXMAC: %v", err)
	}
	return m
}

func TestXMACDelayLinearInWakeup(t *testing.T) {
	m := newXMAC(t)
	d := float64(m.Env().Rings.Depth)
	l1 := m.Delay(opt.Vector{1.0})
	l2 := m.Delay(opt.Vector{2.0})
	// dL/dTw = D/2.
	if got, want := l2-l1, d/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("delay slope = %v, want %v", got, want)
	}
	// Delay at Tw has the closed form D*(Tw/2 + handshake).
	if l1 <= d/2 {
		t.Errorf("Delay(1) = %v must exceed the pure sleep delay %v", l1, d/2)
	}
}

func TestXMACEnergyIsUShaped(t *testing.T) {
	m := newXMAC(t)
	b := m.Bounds()
	eLo := m.Energy(opt.Vector{b.Lo[0]})
	eHi := m.Energy(opt.Vector{b.Hi[0]})
	// Scan for the interior minimum.
	best, bestTw := math.Inf(1), 0.0
	for tw := b.Lo[0]; tw <= b.Hi[0]; tw += 0.01 {
		if e := m.Energy(opt.Vector{tw}); e < best {
			best, bestTw = e, tw
		}
	}
	if !(best < eLo && best < eHi) {
		t.Fatalf("energy not U-shaped: min %v, edges %v / %v", best, eLo, eHi)
	}
	if bestTw <= b.Lo[0]+0.05 || bestTw >= b.Hi[0]-0.05 {
		t.Errorf("energy minimum at boundary (%v); want interior optimum", bestTw)
	}
	// The analytic optimum of a/Tw + b*Tw sits near sqrt(a/b); check the
	// scan agrees within 20%.
	r := m.env.Radio
	a := m.tPoll * r.PowerListen
	strobeDuty := m.tStrobe / m.tPeriod
	strobePower := strobeDuty*r.PowerTx + (1-strobeDuty)*r.PowerListen
	bCoef := m.flows.Out(1) * strobePower / 2
	want := math.Sqrt(a / bCoef)
	if math.Abs(bestTw-want)/want > 0.2 {
		t.Errorf("energy minimum at Tw=%v, analytic prediction %v", bestTw, want)
	}
}

func TestXMACPollCostDominatesAtShortWakeup(t *testing.T) {
	m := newXMAC(t)
	c := m.EnergyAt(opt.Vector{m.Bounds().Lo[0]}, 1)
	if c.CarrierSense <= c.Tx {
		t.Errorf("at the shortest wakeup interval polling (%v J) should dominate tx (%v J)", c.CarrierSense, c.Tx)
	}
}

func TestXMACStrobingDominatesAtLongWakeup(t *testing.T) {
	m := newXMAC(t)
	c := m.EnergyAt(opt.Vector{m.Bounds().Hi[0]}, 1)
	if c.Tx <= c.CarrierSense {
		t.Errorf("at the longest wakeup interval strobing (%v J) should dominate polling (%v J)", c.Tx, c.CarrierSense)
	}
}

func TestXMACNoSyncTraffic(t *testing.T) {
	m := newXMAC(t)
	c := m.EnergyAt(opt.Vector{0.5}, 1)
	if c.SyncTx != 0 || c.SyncRx != 0 {
		t.Errorf("asynchronous X-MAC must have no sync components, got stx=%v srx=%v", c.SyncTx, c.SyncRx)
	}
}

func TestXMACOuterRingCheaper(t *testing.T) {
	m := newXMAC(t)
	x := opt.Vector{0.5}
	inner := m.EnergyAt(x, 1)
	outer := m.EnergyAt(x, m.Env().Rings.Depth)
	if outer.Tx >= inner.Tx {
		t.Errorf("outer ring tx %v should be below inner ring tx %v", outer.Tx, inner.Tx)
	}
	if outer.Rx != 0 {
		t.Errorf("outermost ring receives nothing, got rx=%v", outer.Rx)
	}
	// Polling cost is position-independent.
	if outer.CarrierSense != inner.CarrierSense {
		t.Errorf("cs differs across rings: %v vs %v", outer.CarrierSense, inner.CarrierSense)
	}
}

func TestXMACUnsaturatedInDefaultScenario(t *testing.T) {
	m := newXMAC(t)
	for _, c := range m.Structural() {
		if v := c.F(opt.Vector{1.0}); v > 0 {
			t.Errorf("constraint %s violated at Tw=1s in the default low-rate scenario: %v", c.Name, v)
		}
	}
}

func TestXMACEnergyInPaperDecade(t *testing.T) {
	// The default calibration must land the X-MAC figure axis in the
	// paper's decade: minimum energy a few mJ, max-speed energy ~0.04 J.
	m := newXMAC(t)
	eFast := m.Energy(m.Bounds().Lo)
	if eFast < 0.01 || eFast > 0.1 {
		t.Errorf("fastest-config energy %v J out of the expected [0.01, 0.1] band", eFast)
	}
	best := math.Inf(1)
	for tw := 0.064; tw <= 5; tw += 0.01 {
		if e := m.Energy(opt.Vector{tw}); e < best {
			best = e
		}
	}
	if best < 5e-4 || best > 0.02 {
		t.Errorf("optimal energy %v J out of the expected [0.0005, 0.02] band", best)
	}
}
