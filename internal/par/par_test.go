package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var counts [n]atomic.Int32
		if err := ForEach(context.Background(), n, workers, func(i int) {
			counts[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(ctx, 50, workers, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got != 0 {
			t.Errorf("workers=%d: %d items ran after pre-cancellation, want 0", workers, got)
		}
	}
}

func TestForEachMidwayCancellationStopsFeeding(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	const n = 1000
	err := ForEach(ctx, n, 2, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight work completes but the feed stops promptly: far fewer
	// than n items may run (exact count depends on scheduling).
	if got := ran.Load(); got >= n {
		t.Errorf("cancellation did not stop the feed: %d of %d ran", got, n)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) { t.Error("fn called") }); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachNilContext(t *testing.T) {
	var ran atomic.Int32
	if err := ForEach(nil, 5, 2, func(int) { ran.Add(1) }); err != nil || ran.Load() != 5 {
		t.Fatalf("err=%v ran=%d, want nil and 5", err, ran.Load())
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Errorf("Workers(-2) = %d, want >= 1", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}
