// Package par is the one worker-pool primitive behind every parallel
// layer in the module (requirement sweeps, multi-start solves, batch
// simulation). Keeping the pool in one place keeps the semantics — index
// ordering, worker clamping, cancellation — identical everywhere.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request: values below 1 mean "one
// per CPU".
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach runs fn(i) for i in [0, n) on a pool of `workers` goroutines
// (one per CPU when workers < 1; never more than n). Each index is
// claimed by exactly one worker; result ordering is the caller's
// business (write to out[i]). fn must be safe for concurrent calls on
// distinct indices and must not share mutable state across them.
//
// Cancelling ctx stops the feed: indices not yet handed to a worker are
// never run — an already-cancelled context runs nothing — and the
// context's error is returned. Work in flight completes. A nil ctx
// means context.Background().
func ForEach(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n == 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Degenerate pool: run inline, checking for cancellation between
		// items, so single-CPU hosts pay no goroutine overhead.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		// Mirror the pooled path: a cancellation that lands while the
		// last item is in flight is still a cancellation — callers must
		// not mistake an aborted pass for a completed one.
		return ctx.Err()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		// Check before selecting: when the context is already done, a
		// bare select could still pseudo-randomly pick a ready worker
		// and leak post-cancellation work.
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return err
}
