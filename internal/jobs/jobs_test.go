package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

func newStore(t *testing.T, o Options) *Store {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestLifecycleDone(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	j, err := s.Submit("echo", 3, func(ctx context.Context, j *Job) (any, error) {
		for i := 0; i < 3; i++ {
			j.Advance("cell", map[string]int{"i": i})
		}
		return "result", nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := j.Wait(context.Background())
	if err != nil || res != "result" {
		t.Fatalf("Wait = %v, %v", res, err)
	}
	snap := j.Snapshot()
	if snap.State != Done || snap.Done != 3 || snap.Total != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Started.IsZero() || snap.Finished.IsZero() || snap.Finished.Before(snap.Started) {
		t.Fatalf("timestamps wrong: %+v", snap)
	}
	// The event log replays the full lifecycle in order: queued,
	// running, three cells, done.
	var types []string
	if err := j.Events(context.Background(), 0, func(ev Event) error {
		types = append(types, ev.Type)
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	want := []string{"state", "state", "cell", "cell", "cell", "state"}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types = %v, want %v", types, want)
		}
	}
}

func TestFailedJobKeepsError(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	boom := errors.New("boom")
	j, err := s.Submit("bad", 1, func(context.Context, *Job) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
	if st := j.Snapshot(); st.State != Failed || st.Err != "boom" {
		t.Fatalf("snapshot = %+v", st)
	}
}

// TestCancelMidRun: cancelling a running job cancels its context; the
// job lands in Cancelled (not Failed) and waiters unblock.
func TestCancelMidRun(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	started := make(chan struct{})
	j, err := s.Submit("slow", 0, func(ctx context.Context, _ *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if _, ok := s.Cancel(j.ID()); !ok {
		t.Fatal("Cancel: job not found")
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Wait err = %v, want ErrCancelled", err)
	}
	if st := j.Snapshot(); st.State != Cancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
}

// TestCancelQueued: a job cancelled before any worker picks it up goes
// terminal immediately and the worker skips it.
func TestCancelQueued(t *testing.T) {
	s := newStore(t, Options{Workers: 1, Queue: 4})
	release := make(chan struct{})
	blocker, err := s.Submit("block", 0, func(ctx context.Context, _ *Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	ran := make(chan struct{})
	queued, err := s.Submit("queued", 0, func(context.Context, *Job) (any, error) {
		close(ran)
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if _, ok := s.Cancel(queued.ID()); !ok {
		t.Fatal("Cancel queued: not found")
	}
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("queued Wait err = %v", err)
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	select {
	case <-ran:
		t.Fatal("cancelled queued job still ran")
	case <-time.After(100 * time.Millisecond):
	}
}

// TestQueueFullAdmission: one worker wedged, the queue filled — the
// next Submit is refused with ErrQueueFull, and admission resumes once
// the queue drains.
func TestQueueFullAdmission(t *testing.T) {
	const depth = 3
	s := newStore(t, Options{Workers: 1, Queue: depth})
	release := make(chan struct{})
	wedge := func(ctx context.Context, _ *Job) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	var jobs []*Job
	// One running (dequeued) + depth queued.
	j, err := s.Submit("wedge", 0, wedge)
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	jobs = append(jobs, j)
	waitFor(t, func() bool { return j.Snapshot().State == Running })
	for i := 0; i < depth; i++ {
		jq, err := s.Submit(fmt.Sprintf("q%d", i), 0, wedge)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, jq)
	}
	if got := s.Depth(); got != depth {
		t.Fatalf("Depth = %d, want %d", got, depth)
	}
	if _, err := s.Submit("overflow", 0, wedge); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit err = %v, want ErrQueueFull", err)
	}
	close(release)
	for _, jq := range jobs {
		if _, err := jq.Wait(context.Background()); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	if _, err := s.Submit("after", 0, func(context.Context, *Job) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("Submit after drain: %v", err)
	}
}

// TestTTLGC: finished jobs (and their spill files) expire after the
// TTL; live jobs survive.
func TestTTLGC(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t, Options{Workers: 1, TTL: 50 * time.Millisecond, SpillDir: dir})
	j, err := s.Submit("short", 1, func(_ context.Context, j *Job) (any, error) {
		j.Advance("", nil)
		return map[string]string{"ok": "yes"}, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if _, err := os.Stat(s.resultPath(j.ID())); err != nil {
		t.Fatalf("spilled result missing: %v", err)
	}
	// Not yet expired.
	if n := s.GC(j.Snapshot().Finished.Add(10 * time.Millisecond)); n != 0 {
		t.Fatalf("premature GC dropped %d jobs", n)
	}
	if n := s.GC(j.Snapshot().Finished.Add(time.Second)); n != 1 {
		t.Fatalf("GC dropped %d jobs, want 1", n)
	}
	if _, ok := s.Get(j.ID()); ok {
		t.Fatal("expired job still listed")
	}
	if _, err := os.Stat(s.resultPath(j.ID())); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("expired spill file still present: %v", err)
	}
	if got := s.Counts()[Done]; got != 0 {
		t.Fatalf("done count after GC = %d", got)
	}
}

// TestInjectedClock: job timestamps flow from the store's injected
// clock, so retention expiry is testable without sleeping.
func TestInjectedClock(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	base := time.Unix(1700000000, 0)
	s.now = func() time.Time { return base }
	j, err := s.Complete("cached", 1, "hit")
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	snap := j.Snapshot()
	if !snap.Created.Equal(base) || !snap.Finished.Equal(base) {
		t.Fatalf("timestamps = created %v / finished %v, want the injected instant", snap.Created, snap.Finished)
	}
	if n := s.GC(base.Add(DefaultTTL + time.Second)); n != 1 {
		t.Fatalf("GC past the TTL dropped %d jobs, want 1", n)
	}
}

// TestSpillReload: a finished job's result survives a store restart
// byte-for-byte (the crash-safety contract), restored as raw bytes.
func TestSpillReload(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Workers: 1, SpillDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	payload := []byte(`{"answer":42}` + "\n")
	j, err := s.Submit("bytes", 1, func(_ context.Context, j *Job) (any, error) {
		j.Advance("", nil)
		return payload, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	id := j.ID()
	s.Close()

	s2 := newStore(t, Options{Workers: 1, SpillDir: dir})
	j2, ok := s2.Get(id)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if !j2.Restored() {
		t.Fatal("reloaded job not marked restored")
	}
	res, err, terminal := j2.Result()
	if !terminal || err != nil {
		t.Fatalf("Result = _, %v, %v", err, terminal)
	}
	got, ok := res.([]byte)
	if !ok || string(got) != string(payload) {
		t.Fatalf("restored result = %q, want %q", got, payload)
	}
	if st := j2.Snapshot(); st.State != Done || st.Done != 1 {
		t.Fatalf("restored snapshot = %+v", st)
	}
}

// TestPollStampede: many goroutines hammering Snapshot/Wait/Events on
// one running job must all observe a consistent lifecycle (run under
// -race, this is the data-race gate for the job tier).
func TestPollStampede(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	const cells = 20
	j, err := s.Submit("stampede", cells, func(_ context.Context, j *Job) (any, error) {
		for i := 0; i < cells; i++ {
			j.Advance("cell", i)
		}
		return "done", nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	const pollers = 32
	var wg sync.WaitGroup
	errs := make(chan error, pollers)
	for p := 0; p < pollers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			switch p % 3 {
			case 0: // poll snapshots until terminal
				for {
					st := j.Snapshot()
					if st.Done < 0 || st.Done > cells {
						errs <- fmt.Errorf("progress out of range: %+v", st)
						return
					}
					if st.State.Terminal() {
						return
					}
				}
			case 1: // wait for the result
				if res, err := j.Wait(context.Background()); err != nil || res != "done" {
					errs <- fmt.Errorf("Wait = %v, %v", res, err)
				}
			default: // follow the event log and check seq density
				next := 0
				if err := j.Events(context.Background(), 0, func(ev Event) error {
					if ev.Seq != next {
						return fmt.Errorf("seq %d, want %d", ev.Seq, next)
					}
					next++
					return nil
				}); err != nil {
					errs <- err
				}
				// queued + running + cells + done
				if next != cells+3 {
					errs <- fmt.Errorf("saw %d events, want %d", next, cells+3)
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEventsResumeFrom: a follower resuming from a mid-log seq sees
// only the tail.
func TestEventsResumeFrom(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	j, err := s.Submit("resume", 2, func(_ context.Context, j *Job) (any, error) {
		j.Advance("cell", "a")
		j.Advance("cell", "b")
		return nil, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	var seqs []int
	if err := j.Events(context.Background(), 3, func(ev Event) error {
		seqs = append(seqs, ev.Seq)
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	// Full log: 0 queued, 1 running, 2-3 cells, 4 done. From 3: [3, 4].
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("resumed seqs = %v, want [3 4]", seqs)
	}
}

func TestCompleteIsBornDone(t *testing.T) {
	s := newStore(t, Options{Workers: 1})
	j, err := s.Complete("cached", 5, json.RawMessage(`{"hit":true}`))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	st := j.Snapshot()
	if st.State != Done || st.Done != 5 || st.Total != 5 {
		t.Fatalf("snapshot = %+v", st)
	}
	res, err, ok := j.Result()
	if !ok || err != nil || string(res.(json.RawMessage)) != `{"hit":true}` {
		t.Fatalf("Result = %v, %v, %v", res, err, ok)
	}
	if got := s.Counts()[Done]; got != 1 {
		t.Fatalf("done count = %d", got)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Close()
	if _, err := s.Submit("late", 0, func(context.Context, *Job) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// waitFor polls cond with a deadline — for transitions driven by the
// worker goroutines.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseTerminatesGoroutines pins at runtime what goroleak proves
// statically: the worker pool, the TTL janitor and a live event
// subscriber all exit once the Store closes (workers and janitor join
// the store WaitGroup via the base context; the subscriber joins a
// done channel). A revert of that lifecycle discipline leaves the
// goroutine count elevated and fails the settle loop below.
func TestCloseTerminatesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := New(Options{Workers: 3, TTL: time.Minute})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// A job parked on its context, so Close has something running to
	// cancel.
	started := make(chan struct{})
	j, err := s.Submit("park", 0, func(ctx context.Context, _ *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	// An event subscriber following the live job, joined on its own
	// done channel.
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		_ = j.Events(subCtx, 0, func(Event) error { return nil })
	}()

	s.Close()
	subCancel()
	select {
	case <-subDone:
	case <-time.After(5 * time.Second):
		t.Fatal("event subscriber did not exit after Close + cancel")
	}

	// Goroutine exits land asynchronously after Close returns; settle
	// before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
