// Package jobs is the durable in-process job tier behind the async
// serving API: a bounded admission queue feeding a small worker pool,
// with per-job progress counters, an ordered event log any number of
// followers can tail, TTL-based garbage collection of finished jobs,
// and an optional crash-safe disk spill of finished results.
//
// The store is deliberately generic — a job is (kind, total, run
// function) and its result is opaque — so the HTTP layer can store
// response bytes (byte-identical to the synchronous endpoints) while
// the in-process client facade stores typed reports, both over the one
// implementation. Admission control is the bounded queue: Submit on a
// full queue fails with ErrQueueFull instead of queueing unboundedly,
// which is what lets one slow tenant be refused instead of starving
// the rest (the explicit admission the related work argues for).
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrQueueFull is Submit's admission-control refusal: the queue is at
// capacity and the job was not accepted. Callers surface it as 429.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrCancelled marks a job terminated by Cancel rather than by its own
// run function.
var ErrCancelled = errors.New("jobs: cancelled")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: store closed")

// State is a job's lifecycle position. The terminal states are Done,
// Failed and Cancelled.
type State string

const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// States lists every state in lifecycle order — the fixed label set
// metrics iterate so gauges exist (at zero) before any job does.
func States() []State {
	return []State{Queued, Running, Done, Failed, Cancelled}
}

// RunFunc executes one job. The context is cancelled by Cancel and by
// Close; the function should return promptly once it is. The returned
// value becomes the job's result; a non-nil error fails the job (or
// cancels it, when the error is the cancellation's).
type RunFunc func(ctx context.Context, j *Job) (any, error)

// Options configure a Store.
type Options struct {
	// Queue bounds the number of jobs admitted but not yet picked up by
	// a worker; Submit beyond it fails with ErrQueueFull. Values below 1
	// select DefaultQueue.
	Queue int
	// Workers is the number of jobs executed concurrently. Jobs are
	// internally parallel already (suites fan out over the client's own
	// pool), so this stays small; values below 1 select DefaultWorkers.
	Workers int
	// TTL is how long finished jobs (and their spilled results) are
	// retained before the garbage collector drops them. Values <= 0
	// select DefaultTTL.
	TTL time.Duration
	// GCInterval is the janitor's tick; <= 0 derives it from TTL.
	GCInterval time.Duration
	// SpillDir, when non-empty, persists every successfully finished
	// job to disk (metadata plus encoded result) and reloads them on
	// New — a restart keeps serving results for jobs that completed
	// before the crash. The directory is created if missing.
	SpillDir string
	// Encode turns a finished job's result into the spilled bytes.
	// nil means json.Marshal; []byte results always spill verbatim.
	// An encoding error skips the spill without failing the job.
	Encode func(kind string, result any) ([]byte, error)
}

const (
	DefaultQueue   = 64
	DefaultWorkers = 2
	DefaultTTL     = 15 * time.Minute
)

func (o Options) withDefaults() Options {
	if o.Queue < 1 {
		o.Queue = DefaultQueue
	}
	if o.Workers < 1 {
		o.Workers = DefaultWorkers
	}
	if o.TTL <= 0 {
		o.TTL = DefaultTTL
	}
	if o.GCInterval <= 0 {
		o.GCInterval = o.TTL / 8
		if o.GCInterval < time.Second {
			o.GCInterval = time.Second
		}
		if o.GCInterval > time.Minute {
			o.GCInterval = time.Minute
		}
	}
	if o.Encode == nil {
		o.Encode = func(_ string, result any) ([]byte, error) { return json.Marshal(result) }
	}
	return o
}

// Event is one entry of a job's ordered event log: a state transition,
// a bare progress tick, or a payload-carrying item (a finished suite
// cell, say). Seq is dense from 0, so followers can resume from any
// position.
type Event struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"` // "state", "progress", or a submitter-chosen payload type
	State State  `json:"state,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total,omitempty"`
	Err   string `json:"error,omitempty"`
	// Payload is the item attached by Job.Advance; nil on state and
	// bare progress events.
	Payload any `json:"payload,omitempty"`
}

// Snapshot is an immutable copy of a job's externally visible state.
type Snapshot struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    State     `json:"state"`
	Done     int       `json:"done"`
	Total    int       `json:"total,omitempty"`
	Created  time.Time `json:"created_at"`
	Started  time.Time `json:"started_at,omitzero"`
	Finished time.Time `json:"finished_at,omitzero"`
	Err      string    `json:"error,omitempty"`
}

// Job is one submitted unit of work. All methods are safe for
// concurrent use; the run function additionally uses Advance to
// publish progress.
type Job struct {
	id   string
	kind string

	store *Store
	run   RunFunc

	mu       sync.Mutex
	state    State
	done     int
	total    int
	created  time.Time
	started  time.Time
	finished time.Time
	result   any
	err      error
	events   []Event
	wake     chan struct{}      // re-made on every append; closed to wake followers
	cancel   context.CancelFunc // set while running
	// cancelled records a Cancel request so a run function that returns
	// the cancellation error lands in Cancelled, not Failed.
	cancelled bool
	// restored marks jobs reloaded from the spill directory after a
	// restart; their results are raw encoded bytes.
	restored bool
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Kind returns the submitter-chosen job kind.
func (j *Job) Kind() string { return j.kind }

// Snapshot returns a copy of the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID: j.id, Kind: j.kind, State: j.state,
		Done: j.done, Total: j.total,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		s.Err = j.err.Error()
	}
	return s
}

// Advance increments the job's progress counter and appends a
// payload-carrying event of the given type (payload may be nil for a
// bare tick, recorded as type "progress" when typ is empty). Only the
// run function should call it.
func (j *Job) Advance(typ string, payload any) {
	if typ == "" {
		typ = "progress"
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done++
	j.appendLocked(Event{Type: typ, Payload: payload})
}

// appendLocked stamps seq/done/total onto ev, appends it and wakes
// followers. Callers hold j.mu.
func (j *Job) appendLocked(ev Event) {
	ev.Seq = len(j.events)
	ev.Done = j.done
	ev.Total = j.total
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
}

// Result returns the job's outcome. ok is false while the job is still
// queued or running. For jobs restored from the spill directory the
// result is the raw encoded bytes ([]byte).
func (j *Job) Result() (result any, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil, false
	}
	return j.result, j.err, true
}

// Wait blocks until the job reaches a terminal state (returning its
// result and error) or ctx is done (returning ctx's error).
func (j *Job) Wait(ctx context.Context) (any, error) {
	for {
		j.mu.Lock()
		if j.state.Terminal() {
			res, err := j.result, j.err
			j.mu.Unlock()
			return res, err
		}
		w := j.wake
		j.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Events replays the job's event log from seq `from` and then follows
// it live, calling fn for each event in order. It returns nil once the
// terminal state event has been delivered, fn's error if fn fails, or
// ctx's error if the context ends first. fn is called without locks
// held and never concurrently from one Events call.
func (j *Job) Events(ctx context.Context, from int, fn func(Event) error) error {
	if from < 0 {
		from = 0
	}
	for {
		j.mu.Lock()
		var batch []Event
		if from < len(j.events) {
			batch = append(batch, j.events[from:]...)
		}
		terminal := j.state.Terminal()
		w := j.wake
		j.mu.Unlock()
		for _, ev := range batch {
			if err := fn(ev); err != nil {
				return err
			}
		}
		from += len(batch)
		if terminal {
			// The terminal state flips under the same lock that appends
			// its event, so a terminal snapshot's batch always contains
			// the terminal event — everything has been delivered.
			return nil
		}
		select {
		case <-w:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Store is the job tier: admission queue, worker pool, registry and
// janitor. Construct with New; Close releases the workers.
type Store struct {
	opts Options

	//edvet:ignore ctxfirst lifecycle context of the worker pool, cancelled in Close — not a request context
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	counts map[State]int
	closed bool

	queue chan *Job
	wg    sync.WaitGroup

	// now supplies job timestamps (created/started/finished) and the
	// janitor's cutoff; replaceable in tests so TTL expiry is testable
	// without sleeping. These are wall-clock telemetry for clients, not
	// simulation time — the deterministic core never sees them.
	now func() time.Time
}

// New builds a store, reloads any spilled jobs from Options.SpillDir,
// and starts the workers and the GC janitor.
func New(o Options) (*Store, error) {
	o = o.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Store{
		opts:       o,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		counts:     map[State]int{},
		queue:      make(chan *Job, o.Queue),
		now:        time.Now,
	}
	if o.SpillDir != "" {
		if err := s.reload(); err != nil {
			cancel()
			return nil, err
		}
	}
	for w := 0; w < o.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.janitor()
	return s, nil
}

// Close cancels running jobs, marks queued ones cancelled, stops the
// workers and the janitor, and waits for them. Submit fails afterwards.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
	// Anything still queued was never picked up: cancel it so waiters
	// unblock.
	for {
		select {
		case j := <-s.queue:
			s.finish(j, nil, ErrCancelled)
		default:
			return
		}
	}
}

// Submit admits a job: kind is the submitter's label, total the
// progress denominator (0 when unknown), run the work. It returns
// ErrQueueFull when the queue is at capacity — the admission-control
// contract — and ErrClosed after Close.
func (s *Store) Submit(kind string, total int, run RunFunc) (*Job, error) {
	j, err := s.register(kind, total, Queued)
	if err != nil {
		return nil, err
	}
	j.run = run
	select {
	case s.queue <- j:
		return j, nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.counts[Queued]--
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Complete registers a job that is already done — the fast path for
// results served straight from a cache, which must still be fetchable
// by ID like any other job.
func (s *Store) Complete(kind string, total int, result any) (*Job, error) {
	j, err := s.register(kind, total, Queued)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.done = j.total
	j.mu.Unlock()
	s.finish(j, result, nil)
	return j, nil
}

// register creates and indexes a fresh job in the given initial state,
// with the initial state event appended.
func (s *Store) register(kind string, total int, st State) (*Job, error) {
	id, err := newID()
	if err != nil {
		return nil, err
	}
	j := &Job{
		id: id, kind: kind, store: s,
		state: st, total: total,
		created: s.now(),
		wake:    make(chan struct{}),
	}
	j.mu.Lock()
	j.appendLocked(Event{Type: "state", State: st})
	j.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.jobs[id] = j
	s.counts[st]++
	return j, nil
}

// Get returns the job with the given ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns snapshots of every known job, oldest first (ties broken
// by ID so the order is stable).
func (s *Store) List() []Snapshot {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]Snapshot, len(all))
	for i, j := range all {
		out[i] = j.Snapshot()
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.Before(out[b].Created)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Cancel requests cancellation of the job: queued jobs move straight
// to Cancelled, running jobs have their context cancelled (reaching
// Cancelled when the run function returns). It reports whether the job
// exists; cancelling a terminal job is a no-op.
func (s *Store) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	switch j.state {
	case Queued:
		j.cancelled = true
		j.mu.Unlock()
		// The worker skips cancelled-while-queued jobs; finish now so
		// waiters unblock immediately.
		s.finish(j, nil, ErrCancelled)
		return j, true
	case Running:
		j.cancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return j, true
	default:
		j.mu.Unlock()
		return j, true
	}
}

// Depth reports the number of admitted jobs not yet picked up by a
// worker — the queue-depth gauge.
func (s *Store) Depth() int {
	return len(s.queue)
}

// Counts returns the number of jobs currently in each state.
func (s *Store) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int, len(s.counts))
	for _, st := range States() {
		out[st] = s.counts[st]
	}
	return out
}

// worker executes queued jobs until the store closes.
func (s *Store) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.execute(j)
		case <-s.baseCtx.Done():
			return
		}
	}
}

// execute runs one job through its lifecycle.
func (s *Store) execute(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.mu.Lock()
	if j.state != Queued || j.cancelled {
		// Cancelled (or finished by Close) while waiting in the queue.
		j.mu.Unlock()
		return
	}
	prev := j.state
	j.state = Running
	j.started = s.now()
	j.cancel = cancel
	j.appendLocked(Event{Type: "state", State: Running})
	j.mu.Unlock()
	s.transition(prev, Running)

	result, err := j.run(ctx, j)
	j.mu.Lock()
	j.cancel = nil
	cancelled := j.cancelled
	j.mu.Unlock()
	if err != nil && cancelled && (errors.Is(err, context.Canceled) || errors.Is(err, ErrCancelled)) {
		err = ErrCancelled
	}
	s.finish(j, result, err)
}

// finish moves a job to its terminal state, appends the terminal event
// and spills successful results.
func (s *Store) finish(j *Job, result any, err error) {
	final := Done
	switch {
	case errors.Is(err, ErrCancelled):
		final = Cancelled
	case err != nil:
		final = Failed
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	prev := j.state
	j.state = final
	j.result = result
	j.err = err
	j.finished = s.now()
	ev := Event{Type: "state", State: final}
	if err != nil {
		ev.Err = err.Error()
	}
	j.appendLocked(ev)
	snap := j.snapshotLocked()
	j.mu.Unlock()
	s.transition(prev, final)
	if final == Done && s.opts.SpillDir != "" {
		s.spill(snap, result)
	}
}

// transition moves one job between state buckets.
func (s *Store) transition(from, to State) {
	s.mu.Lock()
	s.counts[from]--
	s.counts[to]++
	s.mu.Unlock()
}

// janitor drops finished jobs older than the TTL.
func (s *Store) janitor() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.GC(s.now())
		case <-s.baseCtx.Done():
			return
		}
	}
}

// GC removes terminal jobs whose retention expired before now and
// returns how many were dropped. The janitor calls it periodically;
// tests call it directly.
func (s *Store) GC(now time.Time) int {
	cutoff := now.Add(-s.opts.TTL)
	s.mu.Lock()
	var expired []*Job
	for id, j := range s.jobs {
		j.mu.Lock()
		gone := j.state.Terminal() && !j.finished.IsZero() && j.finished.Before(cutoff)
		st := j.state
		j.mu.Unlock()
		if gone {
			delete(s.jobs, id)
			s.counts[st]--
			expired = append(expired, j)
		}
	}
	s.mu.Unlock()
	for _, j := range expired {
		if s.opts.SpillDir != "" {
			os.Remove(s.metaPath(j.id))
			os.Remove(s.resultPath(j.id))
		}
	}
	return len(expired)
}

// --- disk spill -------------------------------------------------------

func (s *Store) metaPath(id string) string {
	return filepath.Join(s.opts.SpillDir, id+".job.json")
}

func (s *Store) resultPath(id string) string {
	return filepath.Join(s.opts.SpillDir, id+".result")
}

// spill persists a finished job: the result bytes first, the metadata
// second (both via temp-file rename), so a crash mid-spill leaves at
// worst an orphaned result file, never a metadata file pointing at a
// missing or truncated result.
func (s *Store) spill(snap Snapshot, result any) {
	data, ok := encodeResult(s.opts.Encode, snap.Kind, result)
	if !ok {
		return
	}
	meta, err := json.Marshal(snap)
	if err != nil {
		return
	}
	if err := os.MkdirAll(s.opts.SpillDir, 0o755); err != nil {
		return
	}
	if writeAtomic(s.resultPath(snap.ID), data) == nil {
		writeAtomic(s.metaPath(snap.ID), meta)
	}
}

// encodeResult applies the store's encoding; []byte results pass
// through verbatim so byte-exact payloads survive the round trip.
func encodeResult(encode func(string, any) ([]byte, error), kind string, result any) ([]byte, bool) {
	switch v := result.(type) {
	case []byte:
		return v, true
	case json.RawMessage:
		return []byte(v), true
	}
	data, err := encode(kind, result)
	if err != nil {
		return nil, false
	}
	return data, true
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// reload restores spilled jobs. Only successfully finished jobs are
// ever spilled, so everything that loads is Done; its result is the
// raw encoded bytes.
func (s *Store) reload() error {
	entries, err := os.ReadDir(s.opts.SpillDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobs: reload spill dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".job.json") {
			continue
		}
		meta, err := os.ReadFile(filepath.Join(s.opts.SpillDir, name))
		if err != nil {
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal(meta, &snap); err != nil || snap.ID == "" || snap.State != Done {
			continue
		}
		result, err := os.ReadFile(s.resultPath(snap.ID))
		if err != nil {
			continue
		}
		j := &Job{
			id: snap.ID, kind: snap.Kind, store: s,
			state: Done, done: snap.Done, total: snap.Total,
			created: snap.Created, started: snap.Started, finished: snap.Finished,
			result: result, restored: true,
			wake: make(chan struct{}),
		}
		j.mu.Lock()
		j.done = snap.Done
		j.appendLocked(Event{Type: "state", State: Done})
		j.mu.Unlock()
		s.jobs[j.id] = j
		s.counts[Done]++
	}
	return nil
}

// Restored reports whether the job was reloaded from the spill
// directory (its result is raw encoded bytes, not the typed value the
// run function returned).
func (j *Job) Restored() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restored
}

// newID returns a 16-hex-character random job identifier.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
