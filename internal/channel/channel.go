// Package channel models the quality of the wireless links of a
// deployment: which fraction of frames a link delivers (its packet
// reception ratio, PRR) and how strong the received signal is relative
// to other links (its gain, which drives the capture effect in the
// simulator's collision model).
//
// A channel model stamps every link of a topology.Network with a PRR
// and a gain once, at scenario materialization (Apply). All randomness
// a model needs — the frozen log-normal shadowing of a link, say — is
// drawn from a deterministic per-link stream derived from the scenario
// seed and the link's identity (LinkSeed), so equal specs always
// produce byte-identical link tables, independent of iteration order,
// platform or parallelism.
//
// Three models are provided:
//
//   - Perfect: today's unit-disk behaviour — every frame inside range
//     decodes (PRR 1 everywhere). Applying it is a no-op.
//   - Bernoulli: every link delivers independently with one fixed PRR.
//   - Shadowing: log-normal shadowing over distance-dependent path
//     loss — each link's SNR margin is its mean margin at that distance
//     plus a per-link frozen Gaussian offset, mapped to a PRR through a
//     logistic decode curve. Nearby links are near-perfect, links at
//     the unit-disk edge are marginal, and individual links deviate
//     persistently in both directions, as measured deployments do.
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/edmac-project/edmac/internal/topology"
)

// DefaultCaptureDB is the power margin, in dB, a frame needs over a
// colliding frame to survive the overlap when the capture effect is
// enabled and no explicit threshold is given. 3 dB (twice the power) is
// the classic textbook capture threshold.
const DefaultCaptureDB = 3.0

// Model is one link-quality family. Implementations are immutable
// values; equal values describe equal channels.
type Model interface {
	// Kind returns the registry name ("perfect", "bernoulli",
	// "shadowing").
	Kind() string
	// Validate reports whether the parameters are usable.
	Validate() error
	// Link returns the PRR and gain (in dB, relative to the decode
	// threshold) of one link of length dist (in radio-range units,
	// 0 < dist <= 1). Any randomness — a frozen shadowing offset — is
	// drawn from rng, the link's deterministic stream; models must draw
	// a fixed number of values so link tables stay reproducible.
	Link(dist float64, rng *rand.Rand) (prr, gainDB float64)
}

// Perfect is the lossless unit-disk channel: every frame inside range
// decodes. It is the zero-configuration default; applying it stamps
// unit PRRs (leaving the network non-lossy, so legacy runs stay
// byte-identical) with path-loss gains for the capture comparison.
type Perfect struct{}

// Kind implements Model.
func (Perfect) Kind() string { return "perfect" }

// Validate implements Model.
func (Perfect) Validate() error { return nil }

// Link implements Model: PRR 1, gain from pure path loss (so a capture
// threshold still has distances to compare, should a caller enable it).
func (Perfect) Link(dist float64, _ *rand.Rand) (float64, float64) {
	return 1, pathGainDB(defaultPathLossExp, dist)
}

// Bernoulli delivers every frame independently with one fixed PRR on
// every link, regardless of distance — the simplest lossy channel, and
// the one analytic loss models usually assume.
type Bernoulli struct {
	// PRR is the per-frame delivery probability of every link, in (0, 1].
	PRR float64
}

// Kind implements Model.
func (Bernoulli) Kind() string { return "bernoulli" }

// Validate implements Model.
func (m Bernoulli) Validate() error {
	if m.PRR <= 0 || m.PRR > 1 {
		return fmt.Errorf("channel: bernoulli prr %v must be in (0, 1]", m.PRR)
	}
	return nil
}

// Link implements Model: the fixed PRR, gain from pure path loss.
func (m Bernoulli) Link(dist float64, _ *rand.Rand) (float64, float64) {
	return m.PRR, pathGainDB(defaultPathLossExp, dist)
}

// Shadowing defaults, chosen so that the zero-value-with-defaults model
// is a moderately harsh outdoor channel: links at half the radio range
// are near-perfect, links at the edge deliver roughly 85-95%, and the
// frozen per-link deviation moves individual links a few dB either way.
const (
	defaultPathLossExp  = 3.0
	defaultSigmaDB      = 4.0
	defaultEdgeMarginDB = 6.0
	defaultWidthDB      = 3.0
)

// Shadowing is log-normal shadowing over power-law path loss. A link of
// length d (radio-range units) has mean SNR margin
//
//	margin(d) = EdgeMarginDB + 10·PathLossExp·log10(1/d)  [dB]
//
// — EdgeMarginDB at the unit-disk edge, growing as the link shortens —
// plus a frozen per-link Gaussian offset with deviation SigmaDB. The
// margin maps to a PRR through a logistic decode curve of width WidthDB:
// prr = 1 / (1 + 10^(−margin/WidthDB)). The frozen offset is drawn once
// per undirected link from its deterministic stream, so a bad link is
// persistently bad, as in real deployments.
type Shadowing struct {
	// PathLossExp is the path-loss exponent (2 free space, 3-4 cluttered).
	// Zero selects the default 3.0.
	PathLossExp float64
	// SigmaDB is the log-normal shadowing deviation in dB. Zero selects
	// the default 4.0.
	SigmaDB float64
	// EdgeMarginDB is the mean SNR margin of a link at exactly the radio
	// range, in dB above the decode threshold. Zero selects the default
	// 6.0.
	EdgeMarginDB float64
	// WidthDB is the logistic decode-curve width in dB. Zero selects the
	// default 3.0.
	WidthDB float64
}

// Kind implements Model.
func (Shadowing) Kind() string { return "shadowing" }

// withDefaults fills zero fields with the package defaults.
func (m Shadowing) withDefaults() Shadowing {
	if m.PathLossExp == 0 {
		m.PathLossExp = defaultPathLossExp
	}
	if m.SigmaDB == 0 {
		m.SigmaDB = defaultSigmaDB
	}
	if m.EdgeMarginDB == 0 {
		m.EdgeMarginDB = defaultEdgeMarginDB
	}
	if m.WidthDB == 0 {
		m.WidthDB = defaultWidthDB
	}
	return m
}

// Validate implements Model.
func (m Shadowing) Validate() error {
	d := m.withDefaults()
	switch {
	case d.PathLossExp < 1 || d.PathLossExp > 6:
		return fmt.Errorf("channel: shadowing path-loss exponent %v must be in [1, 6]", d.PathLossExp)
	case d.SigmaDB < 0 || d.SigmaDB > 20:
		return fmt.Errorf("channel: shadowing sigma %v dB must be in [0, 20]", d.SigmaDB)
	case d.WidthDB <= 0:
		return fmt.Errorf("channel: shadowing decode width %v dB must be positive", d.WidthDB)
	}
	return nil
}

// Link implements Model.
func (m Shadowing) Link(dist float64, rng *rand.Rand) (float64, float64) {
	d := m.withDefaults()
	margin := d.EdgeMarginDB + pathGainDB(d.PathLossExp, dist) + rng.NormFloat64()*d.SigmaDB
	return logisticPRR(margin, d.WidthDB), margin
}

// pathGainDB is the distance-dependent part of the received power,
// normalized to 0 dB at the unit-disk edge: 10·η·log10(1/d).
func pathGainDB(exp, dist float64) float64 {
	if dist <= 0 {
		dist = 1e-3
	}
	return 10 * exp * math.Log10(1/dist)
}

// logisticPRR maps an SNR margin to a delivery probability through a
// base-10 logistic of the given width, clamped away from exact 0 so a
// retry always has a chance (PRR 1 is reachable: a margin beyond the
// float resolution of the logistic rounds to exactly 1).
func logisticPRR(marginDB, widthDB float64) float64 {
	prr := 1 / (1 + math.Pow(10, -marginDB/widthDB))
	if prr < 1e-6 {
		prr = 1e-6
	}
	return prr
}

// New returns the named channel model with the given parameters already
// validated. Recognized kinds: "perfect", "bernoulli", "shadowing".
func New(kind string, b Bernoulli, s Shadowing) (Model, error) {
	var m Model
	switch kind {
	case "perfect", "":
		m = Perfect{}
	case "bernoulli":
		m = b
	case "shadowing":
		m = s
	default:
		return nil, fmt.Errorf("channel: unknown model %q (want perfect, bernoulli or shadowing)", kind)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// LinkSeed derives the deterministic RNG seed of the undirected link
// {a, b} from a base seed, via a splitmix64-style finalizer over the
// ordered pair. The derivation is part of the reproducibility contract
// — link tables and reception draws must be stable across releases — so
// it is pinned by tests and must not change.
func LinkSeed(base int64, a, b topology.NodeID) int64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	z := uint64(base) ^ (uint64(uint32(lo))<<32 | uint64(uint32(hi)))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// DirectedLinkSeed derives the seed of the directed link a→b: the
// undirected seed re-mixed with the direction, so the two directions of
// one link get decorrelated reception-draw streams while the frozen
// link quality (seeded by LinkSeed) stays symmetric.
func DirectedLinkSeed(base int64, from, to topology.NodeID) int64 {
	z := uint64(LinkSeed(base, from, to))
	if from < to {
		z += 0x9e3779b97f4a7c15
	} else {
		z += 0x2545f4914f6cdd1d
	}
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// DrawStream is the reception-draw stream of one directed link: a
// splitmix64 generator whose whole state is 8 bytes, so a medium can
// afford one per directed link (a full math/rand generator carries a
// ~5 KB lagged-Fibonacci table — three orders of magnitude more). Like
// LinkSeed, the sequence is part of the reproducibility contract and
// pinned by tests.
type DrawStream uint64

// NewDrawStream starts a stream from a seed (use DirectedLinkSeed).
func NewDrawStream(seed int64) DrawStream { return DrawStream(seed) }

// Float64 advances the stream and returns the next draw in [0, 1).
func (s *DrawStream) Float64() float64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Apply stamps every link of the network with the model's PRR and gain,
// deterministically in seed. Link quality is symmetric: both directions
// of a link share one frozen draw (real shadowing is a property of the
// path, not the direction). Applying Perfect stamps unit PRRs with pure
// path-loss gains: the network stays non-lossy (the simulator's
// delivery draws never engage, so legacy behaviour is byte-identical),
// but the capture effect still has distances to compare.
func Apply(m Model, net *topology.Network, seed int64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n := net.N()
	for i := 0; i < n; i++ {
		a := topology.NodeID(i)
		for _, b := range net.Neighbors(a) {
			if b < a {
				continue // one draw per undirected link
			}
			rng := rand.New(rand.NewSource(LinkSeed(seed, a, b)))
			// Models see distances in radio-range units (a neighbour is
			// always within (0, 1]), whatever absolute range the network
			// was built with.
			dist := net.Position(a).Dist(net.Position(b)) / net.RadioRange()
			prr, gain := m.Link(dist, rng)
			net.SetLink(a, b, prr, gain)
			net.SetLink(b, a, prr, gain)
		}
	}
	return nil
}
