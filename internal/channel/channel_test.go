package channel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/edmac-project/edmac/internal/topology"
)

// TestLinkSeedPinned pins the per-link seed derivation: link tables and
// reception draws must reproduce across releases, so any change to
// LinkSeed/DirectedLinkSeed is a breaking change this test makes loud.
func TestLinkSeedPinned(t *testing.T) {
	got := []int64{
		LinkSeed(0, 0, 1),
		LinkSeed(1, 0, 1),
		LinkSeed(1, 2, 7),
		LinkSeed(-42, 3, 5),
		DirectedLinkSeed(1, 0, 1),
		DirectedLinkSeed(1, 1, 0),
	}
	// Literal values recorded at introduction; a mismatch means the
	// derivation changed and every committed link table with it.
	want := []int64{
		-7995527694508729151,
		-2152535657050944081,
		8701669776456827102,
		-4178316138370766858,
		-6411193824288604561,
		-3051150022078718988,
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("seed %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDrawStream(t *testing.T) {
	// In-range, deterministic, and decorrelated across seeds.
	a := NewDrawStream(7)
	b := NewDrawStream(7)
	c := NewDrawStream(8)
	differs := false
	for i := 0; i < 1000; i++ {
		x, y, z := a.Float64(), b.Float64(), c.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("draw %d = %v outside [0, 1)", i, x)
		}
		if x != y {
			t.Fatalf("equal seeds diverged at draw %d", i)
		}
		if x != z {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds produced identical streams")
	}
	// Roughly uniform: the mean of many draws sits near 1/2.
	s := NewDrawStream(42)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		sum += s.Float64()
	}
	if mean := sum / 10000; mean < 0.47 || mean > 0.53 {
		t.Errorf("mean of 10k draws = %v, want ≈ 0.5", mean)
	}
}

func TestLinkSeedProperties(t *testing.T) {
	// Symmetric in the endpoints: link quality belongs to the path.
	if LinkSeed(9, 2, 5) != LinkSeed(9, 5, 2) {
		t.Error("LinkSeed not symmetric")
	}
	// Directed streams differ between the two directions and from the
	// undirected seed.
	if DirectedLinkSeed(9, 2, 5) == DirectedLinkSeed(9, 5, 2) {
		t.Error("DirectedLinkSeed equal for both directions")
	}
	if DirectedLinkSeed(9, 2, 5) == LinkSeed(9, 2, 5) {
		t.Error("DirectedLinkSeed collides with LinkSeed")
	}
	// Distinct links and distinct bases decorrelate.
	if LinkSeed(9, 2, 5) == LinkSeed(9, 2, 6) || LinkSeed(9, 2, 5) == LinkSeed(10, 2, 5) {
		t.Error("LinkSeed collides across links or bases")
	}
}

func TestModelValidation(t *testing.T) {
	valid := []Model{
		Perfect{},
		Bernoulli{PRR: 0.5},
		Bernoulli{PRR: 1},
		Shadowing{},
		Shadowing{PathLossExp: 2.5, SigmaDB: 6, EdgeMarginDB: 3, WidthDB: 2},
	}
	for _, m := range valid {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", m.Kind(), err)
		}
	}
	invalid := []Model{
		Bernoulli{},
		Bernoulli{PRR: -0.1},
		Bernoulli{PRR: 1.1},
		Shadowing{PathLossExp: 9},
		Shadowing{SigmaDB: 30},
		Shadowing{WidthDB: -1},
	}
	for _, m := range invalid {
		if err := m.Validate(); err == nil {
			t.Errorf("%s %+v: validation passed, want error", m.Kind(), m)
		}
	}
	if _, err := New("nonsense", Bernoulli{}, Shadowing{}); err == nil {
		t.Error("New accepted an unknown kind")
	}
	if m, err := New("", Bernoulli{}, Shadowing{}); err != nil || m.Kind() != "perfect" {
		t.Errorf("New(\"\") = %v, %v; want the perfect channel", m, err)
	}
}

func TestShadowingPRRShape(t *testing.T) {
	m := Shadowing{}.withDefaults()
	m.SigmaDB = 1e-12 // isolate the path-loss curve (0 would select the default)
	rng := rand.New(rand.NewSource(1))
	last := 2.0
	for _, d := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		prr, gain := m.Link(d, rng)
		if prr <= 0 || prr > 1 {
			t.Fatalf("prr(%v) = %v outside (0, 1]", d, prr)
		}
		if prr > last {
			t.Errorf("prr(%v) = %v not monotone non-increasing in distance", d, prr)
		}
		last = prr
		if d < 1 && gain <= m.EdgeMarginDB {
			t.Errorf("gain(%v) = %v should exceed the edge margin %v", d, gain, m.EdgeMarginDB)
		}
	}
	// Short links are near-perfect, edge links carry the edge margin.
	if prr, _ := m.Link(0.2, rng); prr < 0.999 {
		t.Errorf("short-link prr = %v, want near 1", prr)
	}
	wantEdge := 1 / (1 + math.Pow(10, -m.EdgeMarginDB/m.WidthDB))
	if prr, _ := m.Link(1.0, rng); math.Abs(prr-wantEdge) > 1e-9 {
		t.Errorf("edge prr = %v, want %v", prr, wantEdge)
	}
}

func buildLine(t *testing.T, n int) *topology.Network {
	t.Helper()
	net, err := topology.Line(n, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestApplyPerfectStaysLossless(t *testing.T) {
	net := buildLine(t, 4)
	if err := Apply(Perfect{}, net, 3); err != nil {
		t.Fatal(err)
	}
	if net.Lossy() {
		t.Error("perfect channel marked the network lossy")
	}
	if prr := net.LinkPRR(0, 1); prr != 1 {
		t.Errorf("LinkPRR = %v after perfect apply, want 1", prr)
	}
	if net.MeanLinkPRR() != 1 {
		t.Errorf("MeanLinkPRR = %v after perfect apply, want exactly 1", net.MeanLinkPRR())
	}
	// The capture comparison still gets path-loss gains to work with:
	// sub-range links sit above the 0 dB unit-disk-edge reference, and
	// equal-length links get equal gains.
	gain := net.LinkGainDB(0, 1) // 0.8 range units
	if gain <= 0 {
		t.Errorf("sub-range link gain %v, want positive (above the edge reference)", gain)
	}
	if other := net.LinkGainDB(1, 2); other != gain {
		t.Errorf("equal-length links got unequal gains: %v vs %v", gain, other)
	}
}

func TestApplyBernoulli(t *testing.T) {
	net := buildLine(t, 4)
	if err := Apply(Bernoulli{PRR: 0.7}, net, 3); err != nil {
		t.Fatal(err)
	}
	if !net.Lossy() {
		t.Fatal("network not marked lossy")
	}
	for a := 0; a < net.N(); a++ {
		for _, b := range net.Neighbors(topology.NodeID(a)) {
			if prr := net.LinkPRR(topology.NodeID(a), b); prr != 0.7 {
				t.Errorf("LinkPRR(%d,%d) = %v, want 0.7", a, b, prr)
			}
		}
	}
	if got := net.MeanLinkPRR(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("MeanLinkPRR = %v, want 0.7", got)
	}
}

// TestApplyDeterministic asserts the pinned determinism contract: equal
// (model, seed) stamp byte-identical link tables, symmetric per link,
// and a different seed moves the shadowing draws.
func TestApplyDeterministic(t *testing.T) {
	stamp := func(seed int64) *topology.Network {
		net := buildLine(t, 6)
		if err := Apply(Shadowing{}, net, seed); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := stamp(11), stamp(11)
	other := stamp(12)
	differs := false
	for i := 0; i < a.N(); i++ {
		id := topology.NodeID(i)
		for _, nb := range a.Neighbors(id) {
			if a.LinkPRR(id, nb) != b.LinkPRR(id, nb) || a.LinkGainDB(id, nb) != b.LinkGainDB(id, nb) {
				t.Fatalf("link %d->%d differs across equal seeds", id, nb)
			}
			if a.LinkPRR(id, nb) != a.LinkPRR(nb, id) {
				t.Fatalf("link %d<->%d asymmetric", id, nb)
			}
			if a.LinkPRR(id, nb) != other.LinkPRR(id, nb) {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("shadowing draws identical across different seeds")
	}
}
