package traffic

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/topology"
)

// PhaseWindow is one phase's absolute time span within a run: the phase
// is active during [Start, End).
type PhaseWindow struct {
	Start, End float64
}

// Duration returns the window's length in seconds (0 for a window the
// run never reaches).
func (w PhaseWindow) Duration() float64 { return w.End - w.Start }

// Phase is one window of a Phased workload: a traffic model that
// drives the network for Duration seconds before the next phase takes
// over.
type Phase struct {
	// Model is the workload active during this phase. Nesting Phased
	// models is rejected.
	Model Model
	// Duration is the phase length in seconds.
	Duration float64
}

// Phased composes existing traffic models over consecutive time windows
// — the non-stationary workloads (quiet baseline, bursty surge, event
// storm, recovery) that a one-shot stationary model cannot express.
//
// Both consumers of the Model interface stay exact: MeanRates is the
// duration-weighted average of the phases' mean rates (the long-run rate
// the static analytic bridge sees), and Arrivals splices the phases'
// exact schedules at the declared boundaries, so a phased run is as
// reproducible as a stationary one. Per-phase rates — what an adaptation
// controller re-bargains from — are reachable through the exported
// Phases slice and Windows.
//
// When a run outlives the declared phases the last phase stretches to
// cover the remainder; when a run is shorter, trailing phases are
// truncated or never reached.
type Phased struct {
	Phases []Phase
}

// Kind returns "phased".
func (m Phased) Kind() string { return "phased" }

// Validate reports whether the phase composition is usable.
func (m Phased) Validate() error {
	if len(m.Phases) == 0 {
		return fmt.Errorf("traffic: phased model needs at least one phase")
	}
	for i, ph := range m.Phases {
		if ph.Model == nil {
			return fmt.Errorf("traffic: phase %d has no model", i)
		}
		if _, nested := ph.Model.(Phased); nested {
			return fmt.Errorf("traffic: phase %d nests another phased model", i)
		}
		if ph.Duration <= 0 {
			return fmt.Errorf("traffic: phase %d duration %v must be positive", i, ph.Duration)
		}
		if err := ph.Model.Validate(); err != nil {
			return fmt.Errorf("traffic: phase %d: %w", i, err)
		}
	}
	return nil
}

// Total returns the declared length of all phases in seconds.
func (m Phased) Total() float64 {
	total := 0.0
	for _, ph := range m.Phases {
		total += ph.Duration
	}
	return total
}

// Windows returns each phase's absolute span within a run of the given
// duration, in phase order: consecutive declared durations, with the
// last phase stretched to the end of a longer run and later phases
// clipped (possibly to empty) by a shorter one.
func (m Phased) Windows(duration float64) []PhaseWindow {
	wins := make([]PhaseWindow, len(m.Phases))
	start := 0.0
	for i, ph := range m.Phases {
		end := start + ph.Duration
		if i == len(m.Phases)-1 && duration > end {
			end = duration
		}
		if end > duration {
			end = duration
		}
		wins[i] = PhaseWindow{Start: start, End: end}
		start = end
	}
	return wins
}

// MeanRates returns every node's long-run average rate: the
// duration-weighted mean of the phases' rates over the declared total —
// what the static (non-adaptive) analytic bridge plays the game on.
func (m Phased) MeanRates(net *topology.Network) []float64 {
	rates := make([]float64, net.N())
	total := m.Total()
	for _, ph := range m.Phases {
		w := ph.Duration / total
		for i, r := range ph.Model.MeanRates(net) {
			rates[i] += w * r
		}
	}
	return rates
}

// phaseSeed derives phase k's private seed, decorrelating the phases'
// randomness without touching the sub-models' own node/salt streams.
func phaseSeed(seed int64, k int) int64 {
	const weyl = int64(-7046029254386353131) // golden-ratio increment 0x9E3779B97F4A7C15
	return seed ^ (int64(k)+1)*weyl
}

// Arrivals splices the phases' exact schedules: phase k's sub-model
// generates within its own local window and every instant is shifted by
// the phase start, so the boundaries lose and duplicate nothing — each
// arrival lies strictly inside exactly one phase window.
func (m Phased) Arrivals(net *topology.Network, id topology.NodeID, seed int64, duration float64) []float64 {
	if id == 0 {
		return nil
	}
	var times []float64
	for k, win := range m.Windows(duration) {
		d := win.Duration()
		if d <= 0 {
			continue
		}
		for _, t := range m.Phases[k].Model.Arrivals(net, id, phaseSeed(seed, k), d) {
			at := win.Start + t
			// Sub-models emit within (0, d); the shift cannot move an
			// arrival past the boundary except by float rounding, which
			// this guard absorbs.
			if at < win.End {
				times = append(times, at)
			}
		}
	}
	return times
}

var _ Model = Phased{}
