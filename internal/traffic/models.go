package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/edmac-project/edmac/internal/topology"
)

// Model describes an application traffic pattern on an explicit network.
// It serves two consumers at once: the analytic side reads the long-run
// MeanRates (which feed ComputeRates and, averaged, the closed-form MAC
// models), and the simulator replays the exact packet creation times
// from Arrivals.
//
// Models are immutable value types. Arrivals is deterministic: equal
// (net, id, seed, duration) always return the same schedule, which is
// what makes scenario suites byte-for-byte reproducible.
type Model interface {
	// Kind returns the model's registry name ("periodic", "bursty",
	// "event", "heterogeneous").
	Kind() string
	// Validate reports whether the model parameters are usable.
	Validate() error
	// MeanRates returns every node's long-run average generation rate in
	// packets per second, indexed by topology.NodeID. The sink (ID 0)
	// never generates and has rate 0.
	MeanRates(net *topology.Network) []float64
	// Arrivals returns node id's packet creation times within
	// (0, duration), sorted ascending. The sink's schedule is empty.
	Arrivals(net *topology.Network, id topology.NodeID, seed int64, duration float64) []float64
}

// nodeRng derives node id's private random stream for a traffic model.
// The salt separates streams of different models and roles so adding a
// draw to one never perturbs another.
func nodeRng(seed int64, id topology.NodeID, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (int64(id)*1000003 + salt)))
}

// Periodic is the baseline sensing workload: every node samples at Rate
// packets per second with a random initial phase — the traffic the
// closed-form models assume.
type Periodic struct {
	// Rate is the per-node sampling rate Fs in packets per second.
	Rate float64
}

// Kind returns "periodic".
func (m Periodic) Kind() string { return "periodic" }

// Validate reports whether the rate is usable.
func (m Periodic) Validate() error {
	if m.Rate <= 0 {
		return fmt.Errorf("traffic: periodic rate %v must be positive", m.Rate)
	}
	return nil
}

// MeanRates returns Rate for every node but the sink.
func (m Periodic) MeanRates(net *topology.Network) []float64 {
	return uniformRates(net, m.Rate)
}

// Arrivals returns the node's phase-shifted sampling instants.
func (m Periodic) Arrivals(net *topology.Network, id topology.NodeID, seed int64, duration float64) []float64 {
	if id == 0 {
		return nil
	}
	rng := nodeRng(seed, id, 101)
	return periodicArrivals(rng, m.Rate, duration)
}

// Bursty is a Markov-modulated on-off workload: each node independently
// alternates exponential ON periods (mean OnMean seconds), during which
// it emits a Poisson stream at PeakRate, with exponential OFF silences
// (mean OffMean). The long-run mean rate is PeakRate·OnMean/(OnMean+OffMean),
// but packets arrive in bursts that stress queues and collision recovery
// far beyond what a periodic stream of the same mean would.
type Bursty struct {
	// PeakRate is the packets-per-second rate while a burst is on.
	PeakRate float64
	// OnMean and OffMean are the mean burst and silence durations in
	// seconds.
	OnMean, OffMean float64
}

// Kind returns "bursty".
func (m Bursty) Kind() string { return "bursty" }

// Validate reports whether the on-off parameters are usable.
func (m Bursty) Validate() error {
	if m.PeakRate <= 0 {
		return fmt.Errorf("traffic: bursty peak rate %v must be positive", m.PeakRate)
	}
	if m.OnMean <= 0 || m.OffMean <= 0 {
		return fmt.Errorf("traffic: bursty on/off means %v/%v must be positive", m.OnMean, m.OffMean)
	}
	return nil
}

// MeanRate returns the long-run per-node average rate.
func (m Bursty) MeanRate() float64 {
	return m.PeakRate * m.OnMean / (m.OnMean + m.OffMean)
}

// MeanRates returns the duty-cycled mean rate for every node but the sink.
func (m Bursty) MeanRates(net *topology.Network) []float64 {
	return uniformRates(net, m.MeanRate())
}

// Arrivals simulates the node's on-off chain and the Poisson stream
// inside each ON period.
func (m Bursty) Arrivals(net *topology.Network, id topology.NodeID, seed int64, duration float64) []float64 {
	if id == 0 {
		return nil
	}
	rng := nodeRng(seed, id, 211)
	var times []float64
	t := 0.0
	// Start in ON with the stationary probability.
	on := rng.Float64() < m.OnMean/(m.OnMean+m.OffMean)
	for t < duration {
		if !on {
			t += rng.ExpFloat64() * m.OffMean
			on = true
			continue
		}
		end := t + rng.ExpFloat64()*m.OnMean
		for {
			t += rng.ExpFloat64() / m.PeakRate
			if t >= end || t >= duration {
				break
			}
			times = append(times, t)
		}
		t = end
		on = false
	}
	return times
}

// Event is an event-driven, spatially-correlated workload: point events
// (an intrusion, a seismic shock, a machine fault) occur as a Poisson
// process over the deployment area, and every node within EventRadius of
// an event reports it after a small random sensing delay. Nearby nodes
// therefore transmit almost simultaneously — the correlated contention
// burst that periodic models never produce. An optional BackgroundRate
// adds periodic housekeeping traffic at every node.
type Event struct {
	// EventRate is the area-wide event rate in events per second.
	EventRate float64
	// EventRadius is the sensing radius in radio-range units: nodes
	// within it of an event's location report it.
	EventRadius float64
	// BackgroundRate is an optional per-node periodic rate on top of the
	// event reports (0 disables it).
	BackgroundRate float64
}

// maxSensingDelay bounds the per-node uniform reporting jitter after an
// event, in seconds.
const maxSensingDelay = 0.05

// Kind returns "event".
func (m Event) Kind() string { return "event" }

// Validate reports whether the event parameters are usable.
func (m Event) Validate() error {
	if m.EventRate <= 0 {
		return fmt.Errorf("traffic: event rate %v must be positive", m.EventRate)
	}
	if m.EventRadius <= 0 {
		return fmt.Errorf("traffic: event radius %v must be positive", m.EventRadius)
	}
	if m.BackgroundRate < 0 {
		return fmt.Errorf("traffic: background rate %v must be non-negative", m.BackgroundRate)
	}
	return nil
}

// fieldRadius is the radius of the disk events are drawn from: the
// smallest sink-centred disk covering every node, with a minimum of one
// radio range so single-hop networks still see off-node events.
func (m Event) fieldRadius(net *topology.Network) float64 {
	r := 1.0
	for i := 0; i < net.N(); i++ {
		if d := net.Position(topology.NodeID(i)).Dist(topology.Point{}); d > r {
			r = d
		}
	}
	return r
}

// MeanRates returns each node's exact long-run rate: the background rate
// plus EventRate times the probability that a uniform event falls within
// EventRadius of the node — the lens-shaped intersection of the sensing
// disk with the field disk, in closed form.
func (m Event) MeanRates(net *topology.Network) []float64 {
	rates := make([]float64, net.N())
	rf := m.fieldRadius(net)
	field := math.Pi * rf * rf
	for i := 1; i < net.N(); i++ {
		d := net.Position(topology.NodeID(i)).Dist(topology.Point{})
		p := circleIntersectionArea(d, m.EventRadius, rf) / field
		rates[i] = m.BackgroundRate + m.EventRate*p
	}
	return rates
}

// Arrivals derives the shared event schedule from the seed alone — every
// node sees the same events, which is what correlates the bursts — then
// filters the events node id senses and adds its private sensing delays
// and background stream.
func (m Event) Arrivals(net *topology.Network, id topology.NodeID, seed int64, duration float64) []float64 {
	if id == 0 {
		return nil
	}
	rf := m.fieldRadius(net)
	// The global schedule: one stream for all nodes (salt only, no id).
	global := nodeRng(seed, 0, 307)
	private := nodeRng(seed, id, 311)
	pos := net.Position(id)
	var times []float64
	for t := global.ExpFloat64() / m.EventRate; t < duration; t += global.ExpFloat64() / m.EventRate {
		r := rf * math.Sqrt(global.Float64())
		theta := 2 * math.Pi * global.Float64()
		loc := topology.Point{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
		if pos.Dist(loc) > m.EventRadius {
			continue
		}
		at := t + private.Float64()*maxSensingDelay
		if at < duration {
			times = append(times, at)
		}
	}
	if m.BackgroundRate > 0 {
		times = append(times, periodicArrivals(private, m.BackgroundRate, duration)...)
	}
	// Sensing jitter can reorder reports of events closer together than
	// maxSensingDelay, so sorting is needed even without background.
	sort.Float64s(times)
	return times
}

// Heterogeneous is a periodic workload with per-node rates graded by hop
// distance: ring-1 nodes sample at BaseRate and the outermost ring at
// BaseRate·OuterFactor, interpolating linearly in between. Factors above
// 1 model edge-heavy sensing (perimeter surveillance); factors below 1
// model sink-heavy workloads.
type Heterogeneous struct {
	// BaseRate is the sampling rate of ring-1 nodes in packets per second.
	BaseRate float64
	// OuterFactor scales the outermost ring's rate relative to BaseRate.
	OuterFactor float64
}

// Kind returns "heterogeneous".
func (m Heterogeneous) Kind() string { return "heterogeneous" }

// Validate reports whether the gradient parameters are usable.
func (m Heterogeneous) Validate() error {
	if m.BaseRate <= 0 {
		return fmt.Errorf("traffic: heterogeneous base rate %v must be positive", m.BaseRate)
	}
	if m.OuterFactor <= 0 {
		return fmt.Errorf("traffic: heterogeneous outer factor %v must be positive", m.OuterFactor)
	}
	return nil
}

// rate returns the sampling rate of a node at the given ring.
func (m Heterogeneous) rate(ring, depth int) float64 {
	if depth <= 1 {
		return m.BaseRate
	}
	f := float64(ring-1) / float64(depth-1)
	return m.BaseRate * (1 + (m.OuterFactor-1)*f)
}

// MeanRates returns the ring-graded rate of every node but the sink.
func (m Heterogeneous) MeanRates(net *topology.Network) []float64 {
	rates := make([]float64, net.N())
	for i := 1; i < net.N(); i++ {
		rates[i] = m.rate(net.Ring(topology.NodeID(i)), net.Depth())
	}
	return rates
}

// Arrivals returns the node's phase-shifted sampling instants at its
// ring's rate.
func (m Heterogeneous) Arrivals(net *topology.Network, id topology.NodeID, seed int64, duration float64) []float64 {
	if id == 0 {
		return nil
	}
	rng := nodeRng(seed, id, 401)
	return periodicArrivals(rng, m.rate(net.Ring(id), net.Depth()), duration)
}

// uniformRates returns a rate vector with the same rate at every node
// but the sink.
func uniformRates(net *topology.Network, rate float64) []float64 {
	rates := make([]float64, net.N())
	for i := 1; i < len(rates); i++ {
		rates[i] = rate
	}
	return rates
}

// periodicArrivals returns the instants of a rate-Hz periodic stream
// with a random initial phase, within (0, duration).
func periodicArrivals(rng *rand.Rand, rate, duration float64) []float64 {
	period := 1 / rate
	var times []float64
	for t := rng.Float64() * period; t < duration; t += period {
		times = append(times, t)
	}
	return times
}

// circleIntersectionArea returns the area of the intersection of two
// circles with radii r and R whose centres are d apart.
func circleIntersectionArea(d, r, R float64) float64 {
	if r > R {
		r, R = R, r
	}
	if d >= r+R {
		return 0
	}
	if d <= R-r {
		return math.Pi * r * r
	}
	d2, r2, R2 := d*d, r*r, R*R
	a := r2 * math.Acos((d2+r2-R2)/(2*d*r))
	b := R2 * math.Acos((d2+R2-r2)/(2*d*R))
	c := 0.5 * math.Sqrt((-d+r+R)*(d+r-R)*(d-r+R)*(d+r+R))
	return a + b - c
}
