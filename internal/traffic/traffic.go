// Package traffic derives the per-node traffic rates that drive the
// analytic MAC models: how many packets per second a node generates,
// relays, receives, and overhears, given periodic sampling at every node
// and convergecast routing toward the sink.
//
// Two variants are provided. RingFlows is the closed-form ring
// approximation of Langendoen & Meier that the paper's models are built
// on; NodeFlows computes the exact per-node rates on an explicit
// topology.Network, which the simulator and validation tests use.
package traffic

import (
	"fmt"

	"github.com/edmac-project/edmac/internal/topology"
)

// RingFlows yields the analytic per-node traffic rates of the ring model:
// every node samples at Rate packets per second and forwards its routing
// descendants' packets toward the sink.
type RingFlows struct {
	// Rings is the analytic topology.
	Rings topology.RingModel
	// Rate is the application sampling rate Fs in packets per second per
	// node.
	Rate float64
}

// Validate reports whether the flow parameters are usable.
func (f RingFlows) Validate() error {
	if err := f.Rings.Validate(); err != nil {
		return err
	}
	if f.Rate <= 0 {
		return fmt.Errorf("traffic: sampling rate %v must be positive", f.Rate)
	}
	return nil
}

// Out returns the transmit rate of a ring-d node in packets per second:
// its own samples plus everything it relays.
func (f RingFlows) Out(d int) float64 {
	if d < 1 || d > f.Rings.Depth {
		return 0
	}
	return f.Rate * (1 + f.Rings.Descendants(d))
}

// In returns the receive rate of a ring-d node in packets per second:
// the traffic arriving from its routing children.
func (f RingFlows) In(d int) float64 {
	if d < 1 || d > f.Rings.Depth {
		return 0
	}
	return f.Out(d) - f.Rate
}

// Background returns the overheard rate of a ring-d node in packets per
// second: transmissions within radio range that are not addressed to it.
// The ring approximation takes the node's C neighbours to carry the same
// load as the node itself and subtracts the packets the node must
// actually receive.
func (f RingFlows) Background(d int) float64 {
	if d < 1 || d > f.Rings.Depth {
		return 0
	}
	b := float64(f.Rings.Density)*f.Out(d) - f.In(d)
	if b < 0 {
		return 0
	}
	return b
}

// Bottleneck returns the ring with the highest transmit load, which under
// convergecast is always ring 1.
func (f RingFlows) Bottleneck() int { return 1 }

// MeanNonSinkRate averages a MeanRates vector over the non-sink nodes —
// the one definition of "mean per-node rate" the analytic bridge, the
// adaptation controller and the suite all share.
func MeanNonSinkRate(rates []float64) float64 {
	if len(rates) < 2 {
		return 0
	}
	sum := 0.0
	for _, r := range rates[1:] {
		sum += r
	}
	return sum / float64(len(rates)-1)
}

// NodeFlows holds exact per-node rates for an explicit network, indexed
// by topology.NodeID. The sink (ID 0) neither samples nor transmits.
type NodeFlows struct {
	// Out[i] is node i's transmit rate in packets per second.
	Out []float64
	// In[i] is node i's receive rate (packets addressed to it).
	In []float64
	// Background[i] is node i's overheard rate.
	Background []float64
}

// Compute derives exact per-node rates on net with uniform sampling
// rate fs — the homogeneous special case of ComputeRates.
func Compute(net *topology.Network, fs float64) (NodeFlows, error) {
	if net == nil {
		return NodeFlows{}, fmt.Errorf("traffic: nil network")
	}
	if fs <= 0 {
		return NodeFlows{}, fmt.Errorf("traffic: sampling rate %v must be positive", fs)
	}
	return ComputeRates(net, uniformRates(net, fs))
}

// ComputeRates derives exact per-node flow rates on net when node i
// generates at rates[i] packets per second (indexed by NodeID, sink rate
// ignored) — the general form every traffic Model reduces to via
// MeanRates. Conservation holds by construction: the sink's In rate
// equals the sum of all generation rates.
func ComputeRates(net *topology.Network, rates []float64) (NodeFlows, error) {
	if net == nil {
		return NodeFlows{}, fmt.Errorf("traffic: nil network")
	}
	n := net.N()
	if len(rates) != n {
		return NodeFlows{}, fmt.Errorf("traffic: %d rates for %d nodes", len(rates), n)
	}
	flows := NodeFlows{
		Out:        make([]float64, n),
		In:         make([]float64, n),
		Background: make([]float64, n),
	}
	total := 0.0
	for i := 1; i < n; i++ {
		if rates[i] < 0 {
			return NodeFlows{}, fmt.Errorf("traffic: node %d rate %v must be non-negative", i, rates[i])
		}
		flows.Out[i] = rates[i]
		total += rates[i]
	}
	// Accumulate subtree loads from the leaves inward: a node transmits
	// its own samples plus everything its routing children hand it.
	for d := net.Depth(); d >= 1; d-- {
		for _, id := range net.NodesAtRing(d) {
			if p := net.Parent(id); p > 0 {
				flows.Out[p] += flows.Out[id]
			}
		}
	}
	for i := 1; i < n; i++ {
		flows.In[i] = flows.Out[i] - rates[i]
	}
	// The sink receives everything and sends nothing.
	flows.In[0] = total
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		heard := 0.0
		for _, nb := range net.Neighbors(id) {
			heard += flows.Out[nb]
		}
		b := heard - flows.In[i]
		if b < 0 {
			b = 0
		}
		flows.Background[i] = b
	}
	return flows, nil
}
