package traffic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/edmac-project/edmac/internal/topology"
)

// phasedTestModel is the three-act workload the tests splice: quiet
// periodic → bursty surge → event storm.
func phasedTestModel() Phased {
	return Phased{Phases: []Phase{
		{Model: Periodic{Rate: 1.0 / 40}, Duration: 150},
		{Model: Bursty{PeakRate: 0.2, OnMean: 10, OffMean: 30}, Duration: 100},
		{Model: Event{EventRate: 0.05, EventRadius: 1.2, BackgroundRate: 1.0 / 200}, Duration: 150},
	}}
}

// phasedTestNetworks builds one network per topology family.
func phasedTestNetworks(t *testing.T) map[string]*topology.Network {
	t.Helper()
	nets := map[string]*topology.Network{}
	gens := map[string]topology.Generator{
		"ring":    topology.RingGen{Model: topology.RingModel{Depth: 3, Density: 3}},
		"disk":    topology.DiskGen{Nodes: 24, Radius: 2.2},
		"grid":    topology.GridGen{Width: 5, Height: 4, Spacing: 0.9},
		"line":    topology.LineGen{Nodes: 8, Spacing: 0.8},
		"cluster": topology.ClusterGen{Clusters: 3, ClusterSize: 4, FieldRadius: 1.6, ClusterRadius: 0.6},
	}
	for name, g := range gens {
		net, err := g.Build(rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nets[name] = net
	}
	return nets
}

// TestPhasedValidate exercises the rejection cases.
func TestPhasedValidate(t *testing.T) {
	if err := phasedTestModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []Phased{
		{},
		{Phases: []Phase{{Model: nil, Duration: 10}}},
		{Phases: []Phase{{Model: Periodic{Rate: 1}, Duration: 0}}},
		{Phases: []Phase{{Model: Periodic{Rate: -1}, Duration: 10}}},
		{Phases: []Phase{{Model: Phased{Phases: []Phase{{Model: Periodic{Rate: 1}, Duration: 5}}}, Duration: 10}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

// TestPhasedWindows asserts the span arithmetic: declared boundaries,
// last-phase stretching and short-run clipping.
func TestPhasedWindows(t *testing.T) {
	m := phasedTestModel() // 150 + 100 + 150
	for _, tc := range []struct {
		duration float64
		want     []PhaseWindow
	}{
		{400, []PhaseWindow{{0, 150}, {150, 250}, {250, 400}}},
		{600, []PhaseWindow{{0, 150}, {150, 250}, {250, 600}}},
		{200, []PhaseWindow{{0, 150}, {150, 200}, {200, 200}}},
		{100, []PhaseWindow{{0, 100}, {100, 100}, {100, 100}}},
	} {
		got := m.Windows(tc.duration)
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("Windows(%v)[%d] = %+v, want %+v", tc.duration, i, got[i], tc.want[i])
			}
		}
	}
}

// TestPhasedSpliceExactness asserts the boundary contract on every
// topology family: the spliced schedule is sorted, strictly inside the
// run, and each phase window contains exactly the arrivals its own
// sub-model generates for that window — nothing lost, nothing
// duplicated, nothing leaked across an edge.
func TestPhasedSpliceExactness(t *testing.T) {
	m := phasedTestModel()
	const duration = 400.0
	for name, net := range phasedTestNetworks(t) {
		wins := m.Windows(duration)
		for id := 0; id < net.N(); id++ {
			nid := topology.NodeID(id)
			got := m.Arrivals(net, nid, 42, duration)
			if id == 0 {
				if len(got) != 0 {
					t.Fatalf("%s: sink generated %d arrivals", name, len(got))
				}
				continue
			}
			if !sort.Float64sAreSorted(got) {
				t.Fatalf("%s node %d: spliced schedule not sorted", name, id)
			}
			// Reconstruct the expected splice phase by phase.
			var want []float64
			for k, win := range wins {
				sub := m.Phases[k].Model.Arrivals(net, nid, phaseSeed(42, k), win.Duration())
				for _, at := range sub {
					if at <= 0 || at >= win.Duration() {
						t.Fatalf("%s node %d phase %d: sub-model emitted %v outside (0, %v)",
							name, id, k, at, win.Duration())
					}
					want = append(want, win.Start+at)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s node %d: %d spliced arrivals, want %d", name, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s node %d: arrival %d = %v, want %v", name, id, i, got[i], want[i])
				}
			}
			// No arrival may sit outside the run or on a phase edge in
			// the wrong window.
			for _, at := range got {
				if at <= 0 || at >= duration {
					t.Fatalf("%s node %d: arrival %v outside (0, %v)", name, id, at, duration)
				}
			}
		}
	}
}

// TestPhasedRateConservation asserts, on every topology family, that
// each phase's empirical generation rate matches the phase model's mean
// rates and that the long-run MeanRates are their duration-weighted
// blend feeding a conservative flow computation.
func TestPhasedRateConservation(t *testing.T) {
	m := phasedTestModel()
	// Long horizon so empirical phase rates concentrate: cycle the
	// declared phases by replaying each phase window many times via a
	// long final stretch is not possible, so scale the declared phase
	// durations instead.
	scaled := Phased{Phases: make([]Phase, len(m.Phases))}
	const scale = 40.0
	for i, ph := range m.Phases {
		scaled.Phases[i] = Phase{Model: ph.Model, Duration: ph.Duration * scale}
	}
	duration := scaled.Total()
	for name, net := range phasedTestNetworks(t) {
		// Long-run weighted mean: exact identity, not an estimate.
		want := make([]float64, net.N())
		total := m.Total()
		for _, ph := range m.Phases {
			for i, r := range ph.Model.MeanRates(net) {
				want[i] += r * ph.Duration / total
			}
		}
		got := m.MeanRates(net)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%s node %d: MeanRates %v, want %v", name, i, got[i], want[i])
			}
		}
		if got[0] != 0 {
			t.Fatalf("%s: sink rate %v, want 0", name, got[0])
		}
		// The blended rates must feed a conservative flow computation.
		flows, err := ComputeRates(net, got)
		if err != nil {
			t.Fatalf("%s: ComputeRates: %v", name, err)
		}
		sum := 0.0
		for i := 1; i < net.N(); i++ {
			sum += got[i]
		}
		if math.Abs(flows.In[0]-sum) > 1e-9*math.Max(1, sum) {
			t.Fatalf("%s: sink inflow %v, want %v", name, flows.In[0], sum)
		}
		// Per-phase empirical rates: count arrivals inside each scaled
		// window over all nodes and compare to the phase's aggregate
		// mean rate.
		wins := scaled.Windows(duration)
		counts := make([]int, len(wins))
		for id := 1; id < net.N(); id++ {
			for _, at := range scaled.Arrivals(net, topology.NodeID(id), 7, duration) {
				for k, win := range wins {
					if at >= win.Start && at < win.End {
						counts[k]++
						break
					}
				}
			}
		}
		for k, win := range wins {
			mean := 0.0
			for _, r := range scaled.Phases[k].Model.MeanRates(net) {
				mean += r
			}
			expect := mean * win.Duration()
			if expect == 0 {
				continue
			}
			ratio := float64(counts[k]) / expect
			if ratio < 0.8 || ratio > 1.2 {
				t.Errorf("%s phase %d: %d arrivals, expected ~%.1f (ratio %.3f)",
					name, k, counts[k], expect, ratio)
			}
		}
	}
}

// TestPhasedDeterminism asserts equal inputs reproduce the schedule and
// different seeds decorrelate it.
func TestPhasedDeterminism(t *testing.T) {
	m := phasedTestModel()
	net, err := (topology.GridGen{Width: 4, Height: 4, Spacing: 0.9}).Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Arrivals(net, 3, 11, 400)
	b := m.Arrivals(net, 3, 11, 400)
	if len(a) != len(b) {
		t.Fatalf("equal seeds: %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal seeds diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := m.Arrivals(net, 3, 12, 400)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced an identical schedule")
	}
}
