package traffic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/edmac-project/edmac/internal/topology"
)

// testNetworks builds one representative network per generator family.
func testNetworks(t *testing.T) map[string]*topology.Network {
	t.Helper()
	nets := map[string]*topology.Network{}
	for name, gen := range map[string]topology.Generator{
		"ring":    topology.RingGen{Model: topology.RingModel{Depth: 3, Density: 3}},
		"line":    topology.LineGen{Nodes: 10, Spacing: 0.8},
		"grid":    topology.GridGen{Width: 5, Height: 4, Spacing: 0.9},
		"disk":    topology.DiskGen{Nodes: 30, Radius: 2.2},
		"cluster": topology.ClusterGen{Clusters: 3, ClusterSize: 5, FieldRadius: 1.6, ClusterRadius: 0.7},
	} {
		net, err := gen.Build(rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nets[name] = net
	}
	return nets
}

func testModels() map[string]Model {
	return map[string]Model{
		"periodic":      Periodic{Rate: 1.0 / 60},
		"bursty":        Bursty{PeakRate: 0.2, OnMean: 30, OffMean: 120},
		"event":         Event{EventRate: 1.0 / 45, EventRadius: 1.2, BackgroundRate: 1.0 / 600},
		"event-nobg":    Event{EventRate: 1.0 / 30, EventRadius: 1.5},
		"heterogeneous": Heterogeneous{BaseRate: 1.0 / 120, OuterFactor: 4},
	}
}

// TestNodeFlowsConservation asserts, for every model on every topology
// family, that the flows derived from MeanRates conserve traffic: the
// rate delivered at the sink (and carried by ring-1 nodes) equals the
// total generated rate.
func TestNodeFlowsConservation(t *testing.T) {
	for netName, net := range testNetworks(t) {
		for modelName, m := range testModels() {
			t.Run(netName+"/"+modelName, func(t *testing.T) {
				rates := m.MeanRates(net)
				if rates[0] != 0 {
					t.Fatalf("sink rate = %v, want 0", rates[0])
				}
				flows, err := ComputeRates(net, rates)
				if err != nil {
					t.Fatalf("ComputeRates: %v", err)
				}
				total := 0.0
				for _, r := range rates {
					total += r
				}
				if total <= 0 {
					t.Fatal("model generates nothing")
				}
				if !closeTo(flows.In[0], total, 1e-9) {
					t.Errorf("sink In = %v, want total generated %v", flows.In[0], total)
				}
				ring1 := 0.0
				for _, id := range net.NodesAtRing(1) {
					ring1 += flows.Out[id]
				}
				if !closeTo(ring1, total, 1e-9) {
					t.Errorf("ring-1 Out sum = %v, want total generated %v", ring1, total)
				}
				for i := 1; i < net.N(); i++ {
					if flows.In[i] < -1e-12 || flows.Out[i] < rates[i]-1e-12 {
						t.Errorf("node %d flows inconsistent: out %v in %v rate %v", i, flows.Out[i], flows.In[i], rates[i])
					}
				}
			})
		}
	}
}

// TestArrivalsContract asserts the schedule contract every model must
// satisfy: deterministic for equal seeds, sorted, inside (0, duration),
// empty at the sink, and different across seeds.
func TestArrivalsContract(t *testing.T) {
	net := testNetworks(t)["grid"]
	const duration = 3600.0
	for name, m := range testModels() {
		t.Run(name, func(t *testing.T) {
			if err := m.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := m.Arrivals(net, 0, 1, duration); len(got) != 0 {
				t.Errorf("sink generated %d packets", len(got))
			}
			anyDiffer := false
			for i := 1; i < net.N(); i++ {
				id := topology.NodeID(i)
				a := m.Arrivals(net, id, 1, duration)
				b := m.Arrivals(net, id, 1, duration)
				if !equalSlices(a, b) {
					t.Fatalf("node %d schedule not deterministic", i)
				}
				if !sort.Float64sAreSorted(a) {
					t.Fatalf("node %d schedule unsorted", i)
				}
				for _, at := range a {
					if at <= 0 || at >= duration {
						t.Fatalf("node %d arrival %v outside (0, %v)", i, at, duration)
					}
				}
				if !equalSlices(a, m.Arrivals(net, id, 2, duration)) {
					anyDiffer = true
				}
			}
			if !anyDiffer {
				t.Error("schedules identical across seeds")
			}
		})
	}
}

// TestArrivalsMatchMeanRates asserts the empirical rate of long
// schedules converges on MeanRates — the bridge between the simulator's
// and the analytic side's view of a model.
func TestArrivalsMatchMeanRates(t *testing.T) {
	net := testNetworks(t)["disk"]
	const duration = 400000.0
	for name, m := range testModels() {
		t.Run(name, func(t *testing.T) {
			rates := m.MeanRates(net)
			want, got := 0.0, 0.0
			for i := 1; i < net.N(); i++ {
				want += rates[i] * duration
				got += float64(len(m.Arrivals(net, topology.NodeID(i), 3, duration)))
			}
			if math.Abs(got-want) > 0.05*want {
				t.Errorf("generated %v packets, analytic mean predicts %v", got, want)
			}
		})
	}
}

// TestEventCorrelation asserts the defining property of the event model:
// co-located nodes report the same events at nearly the same instant.
func TestEventCorrelation(t *testing.T) {
	// Two nodes half a range apart: their sensing disks almost coincide.
	net, err := topology.New([]topology.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: 0.9, Y: 0.1}}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m := Event{EventRate: 0.05, EventRadius: 2.5}
	a := m.Arrivals(net, 1, 9, 20000)
	b := m.Arrivals(net, 2, 9, 20000)
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("no events sensed: %d/%d", len(a), len(b))
	}
	// Every shared event appears in both schedules within the sensing
	// jitter; with nearly coincident disks most events are shared.
	shared := 0
	j := 0
	for _, at := range a {
		for j < len(b) && b[j] < at-maxSensingDelay {
			j++
		}
		if j < len(b) && math.Abs(b[j]-at) <= maxSensingDelay {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(a)); frac < 0.8 {
		t.Errorf("only %.0f%% of node 1's reports correlate with node 2", 100*frac)
	}
}

// TestHeterogeneousGradient pins the ring interpolation: base rate at
// ring 1, base·factor at the outermost ring, monotone in between.
func TestHeterogeneousGradient(t *testing.T) {
	net := testNetworks(t)["line"]
	m := Heterogeneous{BaseRate: 0.01, OuterFactor: 5}
	rates := m.MeanRates(net)
	depth := net.Depth()
	for i := 1; i < net.N(); i++ {
		ring := net.Ring(topology.NodeID(i))
		switch ring {
		case 1:
			if !closeTo(rates[i], m.BaseRate, 1e-12) {
				t.Errorf("ring-1 rate %v, want %v", rates[i], m.BaseRate)
			}
		case depth:
			if !closeTo(rates[i], m.BaseRate*m.OuterFactor, 1e-12) {
				t.Errorf("outer rate %v, want %v", rates[i], m.BaseRate*m.OuterFactor)
			}
		}
	}
}

// TestModelValidate asserts each model rejects unusable parameters.
func TestModelValidate(t *testing.T) {
	bad := []Model{
		Periodic{},
		Periodic{Rate: -1},
		Bursty{PeakRate: 0, OnMean: 1, OffMean: 1},
		Bursty{PeakRate: 1, OnMean: 0, OffMean: 1},
		Bursty{PeakRate: 1, OnMean: 1, OffMean: -1},
		Event{EventRate: 0, EventRadius: 1},
		Event{EventRate: 1, EventRadius: 0},
		Event{EventRate: 1, EventRadius: 1, BackgroundRate: -1},
		Heterogeneous{BaseRate: 0, OuterFactor: 1},
		Heterogeneous{BaseRate: 1, OuterFactor: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s %+v validated", m.Kind(), m)
		}
	}
}

// TestCircleIntersectionArea pins the closed form on its three regimes.
func TestCircleIntersectionArea(t *testing.T) {
	if got := circleIntersectionArea(5, 1, 2); got != 0 {
		t.Errorf("disjoint circles: %v", got)
	}
	if got, want := circleIntersectionArea(0.5, 1, 3), math.Pi; !closeTo(got, want, 1e-12) {
		t.Errorf("contained circle: %v, want %v", got, want)
	}
	// Two unit circles one radius apart: 2·acos(1/2) − sin(2·acos(1/2)) per
	// the lens formula ≈ 1.228369...
	want := 2*math.Pi/3 - math.Sqrt(3)/2
	if got := circleIntersectionArea(1, 1, 1); !closeTo(got, want, 1e-9) {
		t.Errorf("unit lens: %v, want %v", got, want)
	}
	if a, b := circleIntersectionArea(1.3, 0.8, 1.1), circleIntersectionArea(1.3, 1.1, 0.8); !closeTo(a, b, 1e-12) {
		t.Errorf("asymmetric: %v vs %v", a, b)
	}
}

// TestComputeRatesErrors asserts the input validation of ComputeRates.
func TestComputeRatesErrors(t *testing.T) {
	net := testNetworks(t)["line"]
	if _, err := ComputeRates(nil, nil); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := ComputeRates(net, make([]float64, net.N()-1)); err == nil {
		t.Error("short rate vector accepted")
	}
	rates := make([]float64, net.N())
	rates[1] = -0.5
	if _, err := ComputeRates(net, rates); err == nil {
		t.Error("negative rate accepted")
	}
}

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
