package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/edmac-project/edmac/internal/topology"
)

func ringModel(depth, density int) topology.RingModel {
	return topology.RingModel{Depth: depth, Density: density}
}

func TestRingFlowsValidate(t *testing.T) {
	tests := []struct {
		name    string
		f       RingFlows
		wantErr bool
	}{
		{name: "ok", f: RingFlows{Rings: ringModel(5, 6), Rate: 1.0 / 300}},
		{name: "zero rate", f: RingFlows{Rings: ringModel(5, 6), Rate: 0}, wantErr: true},
		{name: "bad rings", f: RingFlows{Rings: ringModel(0, 6), Rate: 1}, wantErr: true},
	}
	for _, tt := range tests {
		if err := tt.f.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestRingFlowsKnownValues(t *testing.T) {
	f := RingFlows{Rings: ringModel(5, 6), Rate: 0.01}
	// Ring 1 node: relays 24 descendants plus itself.
	if got, want := f.Out(1), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("Out(1) = %v, want %v", got, want)
	}
	if got, want := f.In(1), 0.24; math.Abs(got-want) > 1e-12 {
		t.Errorf("In(1) = %v, want %v", got, want)
	}
	// Outer ring: only its own samples.
	if got, want := f.Out(5), 0.01; math.Abs(got-want) > 1e-12 {
		t.Errorf("Out(5) = %v, want %v", got, want)
	}
	if got := f.In(5); got != 0 {
		t.Errorf("In(5) = %v, want 0", got)
	}
	// Out of range.
	if got := f.Out(0); got != 0 {
		t.Errorf("Out(0) = %v, want 0", got)
	}
	if got := f.Out(6); got != 0 {
		t.Errorf("Out(6) = %v, want 0", got)
	}
}

// TestRingFlowConservation: per ring, population × per-node output equals
// the total sampling of that ring and everything beyond it.
func TestRingFlowConservation(t *testing.T) {
	f := func(depth, density uint8, rateMilli uint16) bool {
		m := ringModel(int(depth%12)+1, int(density%12)+1)
		rate := (float64(rateMilli%999) + 1) / 1000
		fl := RingFlows{Rings: m, Rate: rate}
		for d := 1; d <= m.Depth; d++ {
			sources := 0
			for k := d; k <= m.Depth; k++ {
				sources += m.NodesAt(k)
			}
			got := fl.Out(d) * float64(m.NodesAt(d))
			want := rate * float64(sources)
			if math.Abs(got-want) > 1e-6*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingFlowsMonotoneInward(t *testing.T) {
	fl := RingFlows{Rings: ringModel(8, 4), Rate: 0.02}
	for d := 1; d < 8; d++ {
		if fl.Out(d) < fl.Out(d+1) {
			t.Errorf("Out(%d)=%v < Out(%d)=%v: load must grow toward the sink",
				d, fl.Out(d), d+1, fl.Out(d+1))
		}
	}
	if fl.Bottleneck() != 1 {
		t.Errorf("Bottleneck() = %d, want 1", fl.Bottleneck())
	}
}

func TestBackgroundNonNegative(t *testing.T) {
	f := func(depth, density uint8) bool {
		m := ringModel(int(depth%12)+1, int(density%12)+1)
		fl := RingFlows{Rings: m, Rate: 0.01}
		for d := 0; d <= m.Depth+1; d++ {
			if fl.Background(d) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeOnLine(t *testing.T) {
	net, err := topology.Line(4, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	fs := 0.1
	flows, err := Compute(net, fs)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	// Chain 0(sink)-1-2-3-4: node 1 forwards for 2,3,4 plus itself.
	wantOut := []float64{0, 0.4, 0.3, 0.2, 0.1}
	for i, want := range wantOut {
		if math.Abs(flows.Out[i]-want) > 1e-12 {
			t.Errorf("Out[%d] = %v, want %v", i, flows.Out[i], want)
		}
	}
	if math.Abs(flows.In[0]-0.4) > 1e-12 {
		t.Errorf("sink In = %v, want 0.4", flows.In[0])
	}
	// Node 2 hears nodes 1 and 3 (out: 0.4 and 0.2) and must receive 0.2
	// of it (from 3), so it overhears 0.4.
	if math.Abs(flows.Background[2]-0.4) > 1e-12 {
		t.Errorf("Background[2] = %v, want 0.4", flows.Background[2])
	}
}

func TestComputeConservation(t *testing.T) {
	net, err := topology.Rings(topology.RingModel{Depth: 3, Density: 4})
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	fs := 1.0 / 300
	flows, err := Compute(net, fs)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	// Sink intake equals total generation.
	want := fs * float64(net.N()-1)
	if math.Abs(flows.In[0]-want) > 1e-9 {
		t.Errorf("sink In = %v, want %v", flows.In[0], want)
	}
	// Each node's output = own sampling + children's outputs.
	for i := 1; i < net.N(); i++ {
		id := topology.NodeID(i)
		sum := fs
		for _, c := range net.Children(id) {
			sum += flows.Out[c]
		}
		if math.Abs(flows.Out[i]-sum) > 1e-9 {
			t.Errorf("node %d: Out=%v, want own+children=%v", i, flows.Out[i], sum)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, 0.1); err == nil {
		t.Error("Compute(nil) should fail")
	}
	net, err := topology.Line(2, 0.8)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	if _, err := Compute(net, 0); err == nil {
		t.Error("Compute with zero rate should fail")
	}
}

// TestRingApproximationTracksExact compares the analytic ring rates with
// exact rates on the deterministic ring placement; the inner-ring load
// must agree within a modest factor (the approximation is coarse by
// construction, but must not be wildly off).
func TestRingApproximationTracksExact(t *testing.T) {
	m := ringModel(4, 5)
	net, err := topology.Rings(m)
	if err != nil {
		t.Fatalf("Rings: %v", err)
	}
	fs := 0.01
	exact, err := Compute(net, fs)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	approx := RingFlows{Rings: m, Rate: fs}
	for d := 1; d <= m.Depth; d++ {
		ids := net.NodesAtRing(d)
		var mean float64
		for _, id := range ids {
			mean += exact.Out[id]
		}
		mean /= float64(len(ids))
		want := approx.Out(d)
		if mean > want*2.5 || mean < want/2.5 {
			t.Errorf("ring %d: exact mean out %v vs analytic %v — off by more than 2.5x", d, mean, want)
		}
	}
}
