package scenario

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/edmac-project/edmac/internal/traffic"
)

// TestBuiltinsMaterialize asserts every registry entry is valid,
// materializes a connected network, and produces conserving flows —
// the gate that keeps the registry runnable.
func TestBuiltinsMaterialize(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Builtins() {
		t.Run(spec.Name, func(t *testing.T) {
			if seen[spec.Name] {
				t.Fatalf("duplicate builtin name %q", spec.Name)
			}
			seen[spec.Name] = true
			if spec.Description == "" {
				t.Error("builtin without description")
			}
			m, err := spec.Materialize()
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			if m.Network.N() < 10 {
				t.Errorf("only %d nodes; builtins should be non-trivial", m.Network.N())
			}
			if m.MeanRate() <= 0 {
				t.Error("mean rate not positive")
			}
			ring := m.EquivalentRing()
			if err := ring.Validate(); err != nil {
				t.Errorf("equivalent ring invalid: %v", err)
			}
			if ring.Depth != m.Network.Depth() {
				t.Errorf("equivalent depth %d != network depth %d", ring.Depth, m.Network.Depth())
			}
			total := 0.0
			for i := 1; i < m.Network.N(); i++ {
				total += m.Traffic.MeanRates(m.Network)[i]
			}
			if got := m.Flows.In[0]; got < total-1e-9 || got > total+1e-9 {
				t.Errorf("sink inflow %v != generated %v", got, total)
			}
		})
	}
	if len(seen) < 8 {
		t.Fatalf("only %d builtins; the registry promises at least 8", len(seen))
	}
}

// TestBuiltinsCoverKinds asserts the registry exercises every topology
// generator and every traffic model at least once.
func TestBuiltinsCoverKinds(t *testing.T) {
	topo := map[string]bool{}
	traf := map[string]bool{}
	for _, s := range Builtins() {
		topo[s.Topology.Kind] = true
		traf[s.TrafficKind()] = true
	}
	for _, kind := range []string{"ring", "disk", "grid", "line", "cluster"} {
		if !topo[kind] {
			t.Errorf("no builtin uses topology kind %q", kind)
		}
	}
	for _, kind := range []string{"periodic", "bursty", "event", "heterogeneous", "phased"} {
		if !traf[kind] {
			t.Errorf("no builtin uses traffic kind %q", kind)
		}
	}
}

// TestParseRoundTrip asserts JSON encode/parse is lossless and that
// materialization from a round-tripped spec reproduces the network.
func TestParseRoundTrip(t *testing.T) {
	for _, spec := range Builtins() {
		data, err := spec.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", spec.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: Parse: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(back, spec) {
			t.Errorf("%s: round trip changed the spec:\n  %+v\n  %+v", spec.Name, spec, back)
		}
		a, err := spec.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if a.Network.N() != b.Network.N() || a.Network.Depth() != b.Network.Depth() {
			t.Errorf("%s: round-tripped spec materialized a different network", spec.Name)
		}
	}
}

// TestParseRejects asserts the strict-parsing and validation failure
// modes fail with telling errors.
func TestParseRejects(t *testing.T) {
	tests := []struct {
		name string
		json string
		want string
	}{
		{"bad json", `{`, "parse"},
		{"unknown field", `{"version":1,"name":"x","typo":1}`, "typo"},
		{"wrong version", `{"version":99,"name":"x"}`, "version"},
		{"missing name", `{"version":1,"topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":60}`, "name"},
		{"bad topology kind", `{"version":1,"name":"x","topology":{"kind":"torus"},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":60}`, "topology kind"},
		{"bad traffic kind", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"chatty"},"radio":"cc2420","payload":32,"window":60}`, "traffic kind"},
		{"bad radio", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc9999","payload":32,"window":60}`, "cc9999"},
		{"bad payload", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":0,"window":60}`, "payload"},
		{"bad window", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":0}`, "window"},
		{"bad generator params", `{"version":1,"name":"x","topology":{"kind":"disk","nodes":0,"radius":2},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":60}`, "disk"},
		{"bad traffic params", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"bursty","peak_rate":1},"radio":"cc2420","payload":32,"window":60}`, "bursty"},
		{"phases in v1", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"phases":[{"traffic":{"kind":"periodic","rate":0.1},"duration":50},{"traffic":{"kind":"periodic","rate":0.2},"duration":50}],"radio":"cc2420","payload":32,"window":60}`, "version 2"},
		{"adaptation in v1", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"adaptation":{"mode":"per-phase"},"radio":"cc2420","payload":32,"window":60}`, "version 2"},
		{"traffic and phases", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"phases":[{"traffic":{"kind":"periodic","rate":0.1},"duration":50},{"traffic":{"kind":"periodic","rate":0.2},"duration":50}],"radio":"cc2420","payload":32,"window":60}`, "mutually exclusive"},
		{"single phase", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"phases":[{"traffic":{"kind":"periodic","rate":0.1},"duration":50}],"radio":"cc2420","payload":32,"window":60}`, "at least 2"},
		{"adaptation without phases", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"adaptation":{"mode":"per-phase"},"radio":"cc2420","payload":32,"window":60}`, "phased workload"},
		{"bad adaptation mode", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"phases":[{"traffic":{"kind":"periodic","rate":0.1},"duration":50},{"traffic":{"kind":"periodic","rate":0.2},"duration":50}],"adaptation":{"mode":"psychic"},"radio":"cc2420","payload":32,"window":60}`, "adaptation mode"},
		{"unknown phase field", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"phases":[{"traffic":{"kind":"periodic","rate":0.1},"duration":50,"typo":1},{"traffic":{"kind":"periodic","rate":0.2},"duration":50}],"radio":"cc2420","payload":32,"window":60}`, "typo"},
		{"bad phase duration", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"phases":[{"traffic":{"kind":"periodic","rate":0.1},"duration":0},{"traffic":{"kind":"periodic","rate":0.2},"duration":50}],"radio":"cc2420","payload":32,"window":60}`, "duration"},
		{"bad phase traffic", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"phases":[{"traffic":{"kind":"chatty"},"duration":50},{"traffic":{"kind":"periodic","rate":0.2},"duration":50}],"radio":"cc2420","payload":32,"window":60}`, "traffic kind"},
		{"nested phased", `{"version":2,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"phases":[{"traffic":{"kind":"phased"},"duration":50},{"traffic":{"kind":"periodic","rate":0.2},"duration":50}],"radio":"cc2420","payload":32,"window":60}`, "traffic kind"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse([]byte(tt.json))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestPhasedSpec asserts the version-2 surface: a phased spec parses,
// reports TrafficKind "phased", materializes a traffic.Phased aligned
// with its declared durations, and a version-1 spec of the same shape
// still parses unchanged.
func TestPhasedSpec(t *testing.T) {
	spec, ok := ByName("meadow-stormcycle")
	if !ok {
		t.Fatal("meadow-stormcycle missing from the registry")
	}
	if spec.TrafficKind() != "phased" {
		t.Fatalf("TrafficKind %q, want phased", spec.TrafficKind())
	}
	if spec.Adaptation == nil || spec.Adaptation.Mode != AdaptPerPhase {
		t.Fatalf("adaptation %+v, want per-phase", spec.Adaptation)
	}
	m, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	phased, ok := m.Traffic.(traffic.Phased)
	if !ok {
		t.Fatalf("materialized %T, want traffic.Phased", m.Traffic)
	}
	if len(phased.Phases) != len(spec.Phases) {
		t.Fatalf("%d materialized phases for %d declared", len(phased.Phases), len(spec.Phases))
	}
	for i, ph := range phased.Phases {
		if ph.Duration != spec.Phases[i].Duration {
			t.Errorf("phase %d duration %v, want %v", i, ph.Duration, spec.Phases[i].Duration)
		}
		if ph.Model.Kind() != spec.Phases[i].Traffic.Kind {
			t.Errorf("phase %d kind %q, want %q", i, ph.Model.Kind(), spec.Phases[i].Traffic.Kind)
		}
	}

	v1, ok := ByName("ring-baseline")
	if !ok {
		t.Fatal("ring-baseline missing")
	}
	if v1.SpecVersion != 1 {
		t.Fatalf("stationary builtin declares version %d, want 1", v1.SpecVersion)
	}
	data, err := v1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "phases") || strings.Contains(string(data), "adaptation") {
		t.Error("version-1 JSON gained version-2 fields")
	}
	if _, err := Parse(data); err != nil {
		t.Fatalf("version-1 spec no longer parses: %v", err)
	}
}

// TestFaultSpec asserts the version-4 surface: the survivability twins
// declare failure dynamics with on-death adaptation, their JSON
// round-trips, pre-v4 JSON stays free of the new blocks, and the
// version gate plus the fault-block validation rules reject bad specs.
func TestFaultSpec(t *testing.T) {
	churn, ok := ByName("ring-attrition")
	if !ok {
		t.Fatal("ring-churn missing from the registry")
	}
	if churn.FailureKind() != FailChurn || !churn.Faulty() {
		t.Fatalf("FailureKind %q Faulty %v, want churn/true", churn.FailureKind(), churn.Faulty())
	}
	if churn.Adaptation == nil || churn.Adaptation.Mode != AdaptOnDeath {
		t.Fatalf("adaptation %+v, want on-death", churn.Adaptation)
	}
	brown, ok := ByName("meadow-brownout")
	if !ok {
		t.Fatal("meadow-brownout missing from the registry")
	}
	if brown.Battery == nil || brown.Battery.CapacityJ <= 0 {
		t.Fatalf("battery %+v, want a positive capacity", brown.Battery)
	}

	// Pre-v4 builtins must not leak the new blocks into their JSON.
	for _, name := range []string{"ring-baseline", "meadow-stormcycle", "ring-lossy"} {
		spec, _ := ByName(name)
		data, err := spec.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "failures") || strings.Contains(string(data), "battery") {
			t.Errorf("%s: pre-v4 JSON gained version-4 fields", name)
		}
	}

	head := `{"version":%s,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},`
	tail := `"radio":"cc2420","payload":32,"window":60}`
	cases := []struct {
		name string
		json string
		want string
	}{
		{"failures in v3", fmt.Sprintf(head, "3") + `"failures":{"model":"churn","mtbf":500},` + tail, "version 4"},
		{"battery in v3", fmt.Sprintf(head, "3") + `"battery":{"capacity_j":1},` + tail, "version 4"},
		{"unknown failure model", fmt.Sprintf(head, "4") + `"failures":{"model":"meteor"},` + tail, "failure model"},
		{"churn without mtbf", fmt.Sprintf(head, "4") + `"failures":{"model":"churn"},` + tail, "MTBF"},
		{"churn with events", fmt.Sprintf(head, "4") + `"failures":{"model":"churn","mtbf":500,"events":[{"node":1,"at":10}]},` + tail, "no event list"},
		{"schedule without events", fmt.Sprintf(head, "4") + `"failures":{"model":"schedule"},` + tail, "at least one event"},
		{"schedule crashes sink", fmt.Sprintf(head, "4") + `"failures":{"model":"schedule","events":[{"node":0,"at":10}]},` + tail, "sink"},
		{"negative crash time", fmt.Sprintf(head, "4") + `"failures":{"model":"schedule","events":[{"node":1,"at":-1}]},` + tail, "crash time"},
		{"zero battery", fmt.Sprintf(head, "4") + `"battery":{"capacity_j":0},` + tail, "capacity"},
		{"unknown failure field", fmt.Sprintf(head, "4") + `"failures":{"model":"churn","mtbf":500,"typo":1},` + tail, "typo"},
		{"on-death without faults", fmt.Sprintf(head, "4") + `"adaptation":{"mode":"on-death"},` + tail, "failure dynamics"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse([]byte(tt.json))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}

	// A valid v4 spec with a crash schedule parses and materializes.
	good := fmt.Sprintf(head, "4") +
		`"failures":{"model":"schedule","events":[{"node":1,"at":10,"duration":5}]},"battery":{"capacity_j":2},"adaptation":{"mode":"on-death"},` + tail
	spec, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if spec.FailureKind() != FailSchedule {
		t.Errorf("FailureKind %q, want schedule", spec.FailureKind())
	}
	if _, err := spec.Materialize(); err != nil {
		t.Fatal(err)
	}
}

// TestByName pins registry lookup behaviour.
func TestByName(t *testing.T) {
	if _, ok := ByName("ring-baseline"); !ok {
		t.Error("ring-baseline missing")
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("phantom scenario found")
	}
	names := Names()
	if len(names) != len(Builtins()) {
		t.Errorf("Names() returned %d entries for %d builtins", len(names), len(Builtins()))
	}
}
