package scenario

import (
	"strings"
	"testing"
)

// TestBuiltinsMaterialize asserts every registry entry is valid,
// materializes a connected network, and produces conserving flows —
// the gate that keeps the registry runnable.
func TestBuiltinsMaterialize(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Builtins() {
		t.Run(spec.Name, func(t *testing.T) {
			if seen[spec.Name] {
				t.Fatalf("duplicate builtin name %q", spec.Name)
			}
			seen[spec.Name] = true
			if spec.Description == "" {
				t.Error("builtin without description")
			}
			m, err := spec.Materialize()
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			if m.Network.N() < 10 {
				t.Errorf("only %d nodes; builtins should be non-trivial", m.Network.N())
			}
			if m.MeanRate() <= 0 {
				t.Error("mean rate not positive")
			}
			ring := m.EquivalentRing()
			if err := ring.Validate(); err != nil {
				t.Errorf("equivalent ring invalid: %v", err)
			}
			if ring.Depth != m.Network.Depth() {
				t.Errorf("equivalent depth %d != network depth %d", ring.Depth, m.Network.Depth())
			}
			total := 0.0
			for i := 1; i < m.Network.N(); i++ {
				total += m.Traffic.MeanRates(m.Network)[i]
			}
			if got := m.Flows.In[0]; got < total-1e-9 || got > total+1e-9 {
				t.Errorf("sink inflow %v != generated %v", got, total)
			}
		})
	}
	if len(seen) < 8 {
		t.Fatalf("only %d builtins; the registry promises at least 8", len(seen))
	}
}

// TestBuiltinsCoverKinds asserts the registry exercises every topology
// generator and every traffic model at least once.
func TestBuiltinsCoverKinds(t *testing.T) {
	topo := map[string]bool{}
	traf := map[string]bool{}
	for _, s := range Builtins() {
		topo[s.Topology.Kind] = true
		traf[s.Traffic.Kind] = true
	}
	for _, kind := range []string{"ring", "disk", "grid", "line", "cluster"} {
		if !topo[kind] {
			t.Errorf("no builtin uses topology kind %q", kind)
		}
	}
	for _, kind := range []string{"periodic", "bursty", "event", "heterogeneous"} {
		if !traf[kind] {
			t.Errorf("no builtin uses traffic kind %q", kind)
		}
	}
}

// TestParseRoundTrip asserts JSON encode/parse is lossless and that
// materialization from a round-tripped spec reproduces the network.
func TestParseRoundTrip(t *testing.T) {
	for _, spec := range Builtins() {
		data, err := spec.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", spec.Name, err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: Parse: %v", spec.Name, err)
		}
		if back != spec {
			t.Errorf("%s: round trip changed the spec:\n  %+v\n  %+v", spec.Name, spec, back)
		}
		a, err := spec.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if a.Network.N() != b.Network.N() || a.Network.Depth() != b.Network.Depth() {
			t.Errorf("%s: round-tripped spec materialized a different network", spec.Name)
		}
	}
}

// TestParseRejects asserts the strict-parsing and validation failure
// modes fail with telling errors.
func TestParseRejects(t *testing.T) {
	tests := []struct {
		name string
		json string
		want string
	}{
		{"bad json", `{`, "parse"},
		{"unknown field", `{"version":1,"name":"x","typo":1}`, "typo"},
		{"wrong version", `{"version":99,"name":"x"}`, "version"},
		{"missing name", `{"version":1,"topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":60}`, "name"},
		{"bad topology kind", `{"version":1,"name":"x","topology":{"kind":"torus"},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":60}`, "topology kind"},
		{"bad traffic kind", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"chatty"},"radio":"cc2420","payload":32,"window":60}`, "traffic kind"},
		{"bad radio", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc9999","payload":32,"window":60}`, "cc9999"},
		{"bad payload", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":0,"window":60}`, "payload"},
		{"bad window", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":0}`, "window"},
		{"bad generator params", `{"version":1,"name":"x","topology":{"kind":"disk","nodes":0,"radius":2},"traffic":{"kind":"periodic","rate":0.1},"radio":"cc2420","payload":32,"window":60}`, "disk"},
		{"bad traffic params", `{"version":1,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},"traffic":{"kind":"bursty","peak_rate":1},"radio":"cc2420","payload":32,"window":60}`, "bursty"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse([]byte(tt.json))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestByName pins registry lookup behaviour.
func TestByName(t *testing.T) {
	if _, ok := ByName("ring-baseline"); !ok {
		t.Error("ring-baseline missing")
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("phantom scenario found")
	}
	names := Names()
	if len(names) != len(Builtins()) {
		t.Errorf("Names() returned %d entries for %d builtins", len(names), len(Builtins()))
	}
}
