// Package scenario turns declarative, versioned JSON deployment specs
// into the concrete objects the rest of the module consumes: an explicit
// topology.Network, a traffic.Model with its exact per-node flows, and
// the radio/accounting context. A spec is the single source of truth a
// scenario suite cell, an analytic model and a simulation run all share,
// so the three views can never drift apart.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"

	"github.com/edmac-project/edmac/internal/channel"
	"github.com/edmac-project/edmac/internal/radio"
	"github.com/edmac-project/edmac/internal/topology"
	"github.com/edmac-project/edmac/internal/traffic"
)

// Version is the newest spec schema version this package writes.
// Version-4 specs add failure dynamics: an optional `failures` block
// injects node churn (or an explicit crash schedule) and an optional
// `battery` block gives every non-sink node a finite energy store, plus
// the "on-death" adaptation mode for degradation-aware re-bargaining.
// Version-3 specs add link realism: an optional `channel` block selects
// a lossy link-quality model (bernoulli or log-normal shadowing) and
// the capture effect. Version-2 specs add non-stationary workloads: a
// `phases` array of consecutive traffic windows and an optional
// `adaptation` block selecting how suites play them. Version-1 through
// -3 specs remain readable unchanged.
const Version = 4

// minVersion is the oldest spec schema version still accepted.
const minVersion = 1

// Spec is one declarative scenario: a named deployment shape plus its
// workload. The zero values of optional fields select nothing — every
// kind documents which fields it requires.
type Spec struct {
	// SpecVersion is the schema version; Parse rejects versions outside
	// [minVersion, Version].
	SpecVersion int `json:"version"`
	// Name identifies the scenario (registry key; lowercase-kebab).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Seed drives topology randomness (random generators resample from
	// it deterministically). Traffic randomness is seeded per run, not
	// here.
	Seed int64 `json:"seed"`
	// Topology describes the network shape.
	Topology TopologySpec `json:"topology"`
	// Traffic describes a stationary workload. Exactly one of Traffic
	// and Phases must be set.
	Traffic TrafficSpec `json:"traffic,omitzero"`
	// Phases (version 2) composes a non-stationary workload from
	// consecutive stationary windows; at least two are required.
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Adaptation (version 2) selects how a suite plays a phased
	// scenario; nil means static.
	Adaptation *AdaptationSpec `json:"adaptation,omitempty"`
	// Channel (version 3) selects the link-quality model; nil keeps the
	// perfect unit-disk channel.
	Channel *ChannelSpec `json:"channel,omitempty"`
	// Failures (version 4) injects node crashes and recoveries; nil
	// keeps every node alive.
	Failures *FailureSpec `json:"failures,omitempty"`
	// Battery (version 4) gives every non-sink node a finite energy
	// store; nil means unlimited energy.
	Battery *BatterySpec `json:"battery,omitempty"`
	// Radio names the transceiver profile ("cc2420", "cc1101").
	Radio string `json:"radio"`
	// Payload is the application payload in bytes.
	Payload int `json:"payload"`
	// Window is the energy-accounting window in seconds.
	Window float64 `json:"window"`
}

// PhaseSpec is one window of a version-2 phased workload.
type PhaseSpec struct {
	// Name labels the phase in reports (optional).
	Name string `json:"name,omitempty"`
	// Traffic is the stationary workload active during the phase.
	Traffic TrafficSpec `json:"traffic"`
	// Duration is the phase length in seconds.
	Duration float64 `json:"duration"`
}

// Adaptation modes: Static plays one bargain from the long-run mean
// rate; PerPhase re-plays the bargain at every phase boundary from that
// phase's own mean rates (the online re-bargaining runtime); OnDeath
// (version 4) re-solves the bargain over the surviving topology at
// every node-death or recovery epoch of a fault-injected scenario —
// PerPhase on a fault-injected phased scenario implies the same
// death-epoch behaviour.
const (
	AdaptStatic   = "static"
	AdaptPerPhase = "per-phase"
	AdaptOnDeath  = "on-death"
)

// AdaptationSpec selects how suites play a phased scenario.
type AdaptationSpec struct {
	// Mode is "static", "per-phase" or "on-death".
	Mode string `json:"mode"`
}

// validAdaptation reports whether the block is usable.
func (a *AdaptationSpec) valid() error {
	switch a.Mode {
	case AdaptStatic, AdaptPerPhase, AdaptOnDeath:
		return nil
	default:
		return fmt.Errorf("scenario: unknown adaptation mode %q (want %q, %q or %q)",
			a.Mode, AdaptStatic, AdaptPerPhase, AdaptOnDeath)
	}
}

// Failure models: churn draws alternating exponential up/down times per
// node from deterministic per-node streams; schedule replays explicit
// crash events.
const (
	FailChurn    = "churn"
	FailSchedule = "schedule"
)

// FailureSpec (version 4) declares a scenario's failure process. The
// sink never fails.
type FailureSpec struct {
	// Model is "churn" or "schedule".
	Model string `json:"model"`
	// MTBF and MTTR parameterize "churn": mean up time and mean down
	// time in seconds. MTTR 0 makes every crash permanent.
	MTBF float64 `json:"mtbf,omitempty"`
	MTTR float64 `json:"mttr,omitempty"`
	// Events parameterize "schedule": the explicit crash list.
	Events []FailureEventSpec `json:"events,omitempty"`
}

// FailureEventSpec is one explicit crash of a "schedule" failure model.
type FailureEventSpec struct {
	// Node is the crashing node index (never 0, the sink).
	Node int `json:"node"`
	// At is the crash instant in seconds.
	At float64 `json:"at"`
	// Duration is the outage length in seconds; 0 means permanent.
	Duration float64 `json:"duration,omitempty"`
}

// valid reports whether the failure block is usable.
func (f *FailureSpec) valid() error {
	switch f.Model {
	case FailChurn:
		if len(f.Events) > 0 {
			return fmt.Errorf("scenario: churn failures take no event list")
		}
		if f.MTBF <= 0 || math.IsNaN(f.MTBF) || math.IsInf(f.MTBF, 0) {
			return fmt.Errorf("scenario: churn MTBF %v must be positive and finite", f.MTBF)
		}
		if f.MTTR < 0 || math.IsNaN(f.MTTR) || math.IsInf(f.MTTR, 0) {
			return fmt.Errorf("scenario: churn MTTR %v must be non-negative and finite", f.MTTR)
		}
		return nil
	case FailSchedule:
		if len(f.Events) == 0 {
			return fmt.Errorf("scenario: schedule failures need at least one event")
		}
		if f.MTBF != 0 || f.MTTR != 0 {
			return fmt.Errorf("scenario: schedule failures take no MTBF/MTTR")
		}
		for i, ev := range f.Events {
			if ev.Node <= 0 {
				return fmt.Errorf("scenario: failure event %d: node %d must be positive (the sink cannot crash)", i, ev.Node)
			}
			if ev.At < 0 || math.IsNaN(ev.At) || math.IsInf(ev.At, 0) {
				return fmt.Errorf("scenario: failure event %d: crash time %v must be non-negative and finite", i, ev.At)
			}
			if ev.Duration < 0 || math.IsNaN(ev.Duration) || math.IsInf(ev.Duration, 0) {
				return fmt.Errorf("scenario: failure event %d: duration %v must be non-negative and finite", i, ev.Duration)
			}
		}
		return nil
	default:
		return fmt.Errorf("scenario: unknown failure model %q (want %q or %q)", f.Model, FailChurn, FailSchedule)
	}
}

// BatterySpec (version 4) gives every non-sink node a finite energy
// store; a node dies permanently when its consumption reaches the
// capacity. The sink is mains-powered.
type BatterySpec struct {
	// CapacityJ is the per-node energy budget in joules.
	CapacityJ float64 `json:"capacity_j"`
}

// valid reports whether the battery block is usable.
func (b *BatterySpec) valid() error {
	if b.CapacityJ <= 0 || math.IsNaN(b.CapacityJ) || math.IsInf(b.CapacityJ, 0) {
		return fmt.Errorf("scenario: battery capacity %v J must be positive and finite", b.CapacityJ)
	}
	return nil
}

// ChannelSpec selects one link-quality model (version 3). Model decides
// which of the remaining fields apply. Bernoulli requires an explicit
// PRR; the shadowing and capture parameters all default when zero.
type ChannelSpec struct {
	// Model is "perfect", "bernoulli" or "shadowing".
	Model string `json:"model"`
	// PRR parameterizes "bernoulli": the fixed per-link delivery
	// probability.
	PRR float64 `json:"prr,omitempty"`
	// PathLossExp, SigmaDB, EdgeMarginDB and WidthDB parameterize
	// "shadowing" (see channel.Shadowing).
	PathLossExp  float64 `json:"path_loss_exp,omitempty"`
	SigmaDB      float64 `json:"sigma_db,omitempty"`
	EdgeMarginDB float64 `json:"edge_margin_db,omitempty"`
	WidthDB      float64 `json:"width_db,omitempty"`
	// Capture enables the power-capture collision model in the
	// simulator; CaptureDB is its margin in dB (0 selects the default).
	Capture   bool    `json:"capture,omitempty"`
	CaptureDB float64 `json:"capture_db,omitempty"`
}

// Model materializes the channel model the spec selects.
func (c ChannelSpec) model() (channel.Model, error) {
	return channel.New(c.Model,
		channel.Bernoulli{PRR: c.PRR},
		channel.Shadowing{
			PathLossExp:  c.PathLossExp,
			SigmaDB:      c.SigmaDB,
			EdgeMarginDB: c.EdgeMarginDB,
			WidthDB:      c.WidthDB,
		})
}

// TopologySpec selects one topology.Generator. Kind decides which of
// the remaining fields apply.
type TopologySpec struct {
	// Kind is "ring", "disk", "grid", "line" or "cluster".
	Kind string `json:"kind"`
	// Depth and Density parameterize "ring".
	Depth   int `json:"depth,omitempty"`
	Density int `json:"density,omitempty"`
	// Nodes and Radius parameterize "disk"; Nodes also sizes "line".
	Nodes  int     `json:"nodes,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Width, Height and Spacing parameterize "grid"; Spacing also
	// applies to "line".
	Width   int     `json:"width,omitempty"`
	Height  int     `json:"height,omitempty"`
	Spacing float64 `json:"spacing,omitempty"`
	// Clusters, ClusterSize, FieldRadius and ClusterRadius parameterize
	// "cluster".
	Clusters      int     `json:"clusters,omitempty"`
	ClusterSize   int     `json:"cluster_size,omitempty"`
	FieldRadius   float64 `json:"field_radius,omitempty"`
	ClusterRadius float64 `json:"cluster_radius,omitempty"`
}

// Generator materializes the topology family the spec selects.
func (t TopologySpec) Generator() (topology.Generator, error) {
	switch t.Kind {
	case "ring":
		return topology.RingGen{Model: topology.RingModel{Depth: t.Depth, Density: t.Density}}, nil
	case "disk":
		return topology.DiskGen{Nodes: t.Nodes, Radius: t.Radius}, nil
	case "grid":
		return topology.GridGen{Width: t.Width, Height: t.Height, Spacing: t.Spacing}, nil
	case "line":
		return topology.LineGen{Nodes: t.Nodes, Spacing: t.Spacing}, nil
	case "cluster":
		return topology.ClusterGen{
			Clusters:      t.Clusters,
			ClusterSize:   t.ClusterSize,
			FieldRadius:   t.FieldRadius,
			ClusterRadius: t.ClusterRadius,
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q (want ring, disk, grid, line or cluster)", t.Kind)
	}
}

// TrafficSpec selects one traffic.Model. Kind decides which of the
// remaining fields apply.
type TrafficSpec struct {
	// Kind is "periodic", "bursty", "event" or "heterogeneous".
	Kind string `json:"kind"`
	// Rate parameterizes "periodic".
	Rate float64 `json:"rate,omitempty"`
	// PeakRate, OnMean and OffMean parameterize "bursty".
	PeakRate float64 `json:"peak_rate,omitempty"`
	OnMean   float64 `json:"on_mean,omitempty"`
	OffMean  float64 `json:"off_mean,omitempty"`
	// EventRate, EventRadius and BackgroundRate parameterize "event".
	EventRate      float64 `json:"event_rate,omitempty"`
	EventRadius    float64 `json:"event_radius,omitempty"`
	BackgroundRate float64 `json:"background_rate,omitempty"`
	// BaseRate and OuterFactor parameterize "heterogeneous".
	BaseRate    float64 `json:"base_rate,omitempty"`
	OuterFactor float64 `json:"outer_factor,omitempty"`
}

// Model materializes the traffic model the spec selects.
func (t TrafficSpec) Model() (traffic.Model, error) {
	switch t.Kind {
	case "periodic":
		return traffic.Periodic{Rate: t.Rate}, nil
	case "bursty":
		return traffic.Bursty{PeakRate: t.PeakRate, OnMean: t.OnMean, OffMean: t.OffMean}, nil
	case "event":
		return traffic.Event{EventRate: t.EventRate, EventRadius: t.EventRadius, BackgroundRate: t.BackgroundRate}, nil
	case "heterogeneous":
		return traffic.Heterogeneous{BaseRate: t.BaseRate, OuterFactor: t.OuterFactor}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown traffic kind %q (want periodic, bursty, event or heterogeneous)", t.Kind)
	}
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected
// so typos fail loudly instead of silently selecting defaults.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses a spec file from disk.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// JSON encodes the spec in the canonical indented form builtin fixtures
// and examples use.
func (s Spec) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// TrafficKind returns the workload family the spec selects — the
// stationary model's kind, or "phased" for a version-2 phase
// composition.
func (s Spec) TrafficKind() string {
	if len(s.Phases) > 0 {
		return "phased"
	}
	return s.Traffic.Kind
}

// trafficModel materializes the workload: the stationary model, or the
// phase composition spliced into a traffic.Phased.
func (s Spec) trafficModel() (traffic.Model, error) {
	if len(s.Phases) == 0 {
		return s.Traffic.Model()
	}
	phases := make([]traffic.Phase, len(s.Phases))
	for i, ph := range s.Phases {
		m, err := ph.Traffic.Model()
		if err != nil {
			return nil, fmt.Errorf("scenario: phase %d: %w", i, err)
		}
		phases[i] = traffic.Phase{Model: m, Duration: ph.Duration}
	}
	return traffic.Phased{Phases: phases}, nil
}

// Validate reports whether the spec is materializable.
func (s Spec) Validate() error {
	if s.SpecVersion < minVersion || s.SpecVersion > Version {
		return fmt.Errorf("scenario: spec version %d unsupported (this build reads versions %d-%d)",
			s.SpecVersion, minVersion, Version)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if s.SpecVersion < 2 && (len(s.Phases) > 0 || s.Adaptation != nil) {
		return fmt.Errorf("scenario %s: phases and adaptation need spec version 2 (got %d)", s.Name, s.SpecVersion)
	}
	if s.SpecVersion < 3 && s.Channel != nil {
		return fmt.Errorf("scenario %s: a channel block needs spec version 3 (got %d)", s.Name, s.SpecVersion)
	}
	if s.SpecVersion < 4 && (s.Failures != nil || s.Battery != nil) {
		return fmt.Errorf("scenario %s: failures and battery blocks need spec version 4 (got %d)", s.Name, s.SpecVersion)
	}
	if s.Failures != nil {
		if err := s.Failures.valid(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Battery != nil {
		if err := s.Battery.valid(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Channel != nil {
		if _, err := s.Channel.model(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if s.Channel.CaptureDB < 0 {
			return fmt.Errorf("scenario %s: capture threshold %v dB must be non-negative", s.Name, s.Channel.CaptureDB)
		}
	}
	if len(s.Phases) > 0 {
		if s.Traffic != (TrafficSpec{}) {
			return fmt.Errorf("scenario %s: traffic and phases are mutually exclusive", s.Name)
		}
		if len(s.Phases) < 2 {
			return fmt.Errorf("scenario %s: a phased workload needs at least 2 phases (one phase is just traffic)", s.Name)
		}
	} else if s.Adaptation != nil && s.Failures == nil && s.Battery == nil {
		return fmt.Errorf("scenario %s: adaptation needs a phased workload or failure dynamics", s.Name)
	}
	if s.Adaptation != nil {
		if err := s.Adaptation.valid(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if s.Adaptation.Mode == AdaptOnDeath && s.Failures == nil && s.Battery == nil {
			return fmt.Errorf("scenario %s: on-death adaptation needs a failures or battery block", s.Name)
		}
		if s.Adaptation.Mode == AdaptPerPhase && len(s.Phases) == 0 {
			return fmt.Errorf("scenario %s: per-phase adaptation needs a phased workload", s.Name)
		}
	}
	gen, err := s.Topology.Generator()
	if err != nil {
		return err
	}
	if err := gen.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	model, err := s.trafficModel()
	if err != nil {
		return err
	}
	if err := model.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if _, err := radio.Profile(s.Radio); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.Payload <= 0 {
		return fmt.Errorf("scenario %s: payload %d must be positive", s.Name, s.Payload)
	}
	if s.Window <= 0 {
		return fmt.Errorf("scenario %s: window %v must be positive", s.Name, s.Window)
	}
	return nil
}

// Materialized is a spec turned into live objects, the input the
// analytic models and the simulator share.
type Materialized struct {
	// Spec echoes the source description.
	Spec Spec
	// Network is the built topology.
	Network *topology.Network
	// Traffic is the built workload model.
	Traffic traffic.Model
	// Flows are the exact per-node mean flow rates on Network.
	Flows traffic.NodeFlows
	// Radio is the resolved transceiver profile.
	Radio radio.Radio

	// meanRate is MeanRate's aggregation, materialized once at build
	// time: adaptive runtimes re-read it at every re-bargaining epoch,
	// and a precomputed value keeps the shared Materialized free of
	// lazy mutation (it is read concurrently by suite cells).
	meanRate float64
}

// ChannelKind returns the link-quality family the spec selects:
// "perfect" when no channel block is present.
func (s Spec) ChannelKind() string {
	if s.Channel == nil || s.Channel.Model == "" {
		return "perfect"
	}
	return s.Channel.Model
}

// FailureKind returns the failure-model family the spec selects:
// "none" when no failures block is present.
func (s Spec) FailureKind() string {
	if s.Failures == nil {
		return "none"
	}
	return s.Failures.Model
}

// Faulty reports whether the scenario injects failure dynamics (churn,
// an explicit crash schedule, or finite batteries).
func (s Spec) Faulty() bool { return s.Failures != nil || s.Battery != nil }

// CaptureConfig returns whether the simulator should enable the capture
// effect for this scenario, and with which margin in dB (0 selects the
// simulator default).
func (s Spec) CaptureConfig() (enabled bool, thresholdDB float64) {
	if s.Channel == nil {
		return false, 0
	}
	return s.Channel.Capture, s.Channel.CaptureDB
}

// Materialize builds the network (resampling deterministically from
// Spec.Seed until connected), stamps its links with the channel model's
// quality (also deterministic in Spec.Seed), and builds the traffic
// model and the derived flows. Equal specs always materialize identical
// objects.
func (s Spec) Materialize() (*Materialized, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	gen, _ := s.Topology.Generator()
	net, err := gen.Build(rand.New(rand.NewSource(s.Seed)))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.Channel != nil {
		ch, _ := s.Channel.model()
		if err := channel.Apply(ch, net, s.Seed); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	model, _ := s.trafficModel()
	flows, err := traffic.ComputeRates(net, model.MeanRates(net))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	prof, _ := radio.Profile(s.Radio)
	mat := &Materialized{Spec: s, Network: net, Traffic: model, Flows: flows, Radio: prof}
	mat.meanRate = meanRateOf(model, net)
	return mat, nil
}

// MeanRate returns the average per-node generation rate over the
// non-sink nodes — the homogeneous rate the analytic ring models see.
// Materialize precomputes it; a hand-built Materialized (zero
// meanRate) falls back to aggregating on the fly.
func (m *Materialized) MeanRate() float64 {
	if m.meanRate > 0 {
		return m.meanRate
	}
	return meanRateOf(m.Traffic, m.Network)
}

// meanRateOf aggregates a workload's per-node mean rates over the
// non-sink population.
func meanRateOf(model traffic.Model, net *topology.Network) float64 {
	rates := model.MeanRates(net)
	sum := 0.0
	for i := 1; i < len(rates); i++ {
		sum += rates[i]
	}
	return sum / float64(len(rates)-1)
}

// EquivalentRing maps the explicit network onto the analytic ring
// abstraction the closed-form MAC models need: the BFS depth becomes D
// and the rounded mean degree becomes the density C (floored at 1).
func (m *Materialized) EquivalentRing() topology.RingModel {
	density := int(math.Round(m.Network.MeanDegree()))
	if density < 1 {
		density = 1
	}
	return topology.RingModel{Depth: m.Network.Depth(), Density: density}
}
