package scenario

import (
	"bytes"
	"testing"
)

// FuzzParse throws arbitrary bytes at the strict v1-v4 spec parser.
// Two properties must hold on every input: Parse never panics (garbage
// is an error value, not a crash — specs arrive over HTTP), and every
// accepted spec round-trips through its canonical encoding — the
// re-encoded form parses again and re-encodes to the same bytes, so a
// spec written back to disk means what the original meant.
func FuzzParse(f *testing.F) {
	// Seed with every builtin (all schema versions and every optional
	// block in realistic combination)...
	for _, sp := range Builtins() {
		data, err := sp.JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// ...and the interesting edges: truncation, version gating, the v4
	// failure grammar (both models), and near-miss typos.
	for _, seed := range []string{
		`{`,
		`null`,
		`{"version":99}`,
		`{"version":1,"name":"x"}`,
		`{"version":3,"name":"x","topology":{"kind":"ring","depth":2,"density":2},` +
			`"traffic":{"kind":"periodic","rate":0.01},"failures":{"model":"churn","mtbf":100,"mttr":10},` +
			`"radio":"cc2420","payload":32,"window":60}`,
		`{"version":4,"name":"x","topology":{"kind":"ring","depth":2,"density":2},` +
			`"traffic":{"kind":"periodic","rate":0.01},` +
			`"failures":{"model":"schedule","events":[{"node":1,"at":10,"duration":5}]},` +
			`"battery":{"capacity_j":0.5},"radio":"cc2420","payload":32,"window":60}`,
		`{"version":4,"name":"x","topology":{"kind":"ring","depth":2,"density":2},` +
			`"traffic":{"kind":"periodic","rate":0.01},"failures":{"model":"churn","mtbf":-1},` +
			`"radio":"cc2420","payload":32,"window":60}`,
		`{"version":4,"name":"x","topology":{"kind":"ring","depth":2,"density":2},` +
			`"traffic":{"kind":"periodic","rate":0.01},"batery":{"capacity_j":1},` +
			`"radio":"cc2420","payload":32,"window":60}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected without panicking: the contract for garbage
		}
		canon, err := s.JSON()
		if err != nil {
			t.Fatalf("accepted spec does not encode: %v", err)
		}
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical encoding rejected by its own parser: %v\n%s", err, canon)
		}
		canon2, err := s2.JSON()
		if err != nil {
			t.Fatalf("re-parsed spec does not encode: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding is not a fixed point:\nfirst:  %s\nsecond: %s", canon, canon2)
		}
	})
}
