package scenario

// The builtin registry: a curated matrix of deployment shapes ×
// workloads that exercises every generator and every traffic model at
// sizes small enough for CI yet distinct enough to pull the protocols'
// energy-delay tradeoffs apart. Names are stable — golden suite
// fixtures and CLI invocations refer to them.

// Builtins returns the built-in scenarios in registry order. The slice
// is freshly allocated; callers may reorder or extend it.
//
// Every scenario declares the oldest spec version that supports it —
// stationary perfect-channel scenarios stay at version 1 and phased
// ones at version 2, so their JSON is byte-identical across schema
// extensions. The non-stationary scenarios carry a per-phase adaptation
// default, committing the adaptive-vs-static comparison to the suite
// golden; the lossy scenarios declare version 3 and twin two
// perfect-channel entries (ring-baseline, disk-meadow), so the golden
// also commits how the bargain and the measured outcome move when the
// same deployment's links degrade. The trailing survivability
// scenarios declare version 4 and twin the same two entries once more,
// now under failure dynamics (churn, finite batteries) with on-death
// re-bargaining, committing the degradation-aware-vs-static comparison.
func Builtins() []Spec {
	return []Spec{
		{
			SpecVersion: 1,
			Name:        "ring-baseline",
			Description: "The paper's concentric-ring convergecast model at CI scale: depth 3, density 3, steady periodic sensing.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "ring", Depth: 3, Density: 3},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 120},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "disk-meadow",
			Description: "Sparse random-geometric field on sub-GHz radios: environmental monitoring over a wide meadow.",
			Seed:        7,
			Topology:    TopologySpec{Kind: "disk", Nodes: 36, Radius: 2.6},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 150},
			Radio:       "cc1101",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "disk-dense",
			Description: "Dense random-geometric deployment: heavy spatial reuse pressure and overhearing.",
			Seed:        3,
			Topology:    TopologySpec{Kind: "disk", Nodes: 48, Radius: 1.8},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 90},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "grid-campus",
			Description: "Structured 7x5 lattice with edge-heavy sampling: perimeter rooms report four times as often as the core.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "grid", Width: 7, Height: 5, Spacing: 0.9},
			Traffic:     TrafficSpec{Kind: "heterogeneous", BaseRate: 1.0 / 240, OuterFactor: 4},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "tunnel-chain",
			Description: "A 24-hop road-tunnel chain, the deepest builtin: multi-hop delay accumulation dominates.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "line", Nodes: 24, Spacing: 0.8},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 180},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "cluster-twotier",
			Description: "Two-tier clustered deployment: four instrumented machines, each with a pocket of member sensors.",
			Seed:        5,
			Topology:    TopologySpec{Kind: "cluster", Clusters: 4, ClusterSize: 6, FieldRadius: 1.8, ClusterRadius: 0.7},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 120},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "disk-bursty",
			Description: "Random field under Markov-modulated on-off load: long silences broken by packet trains.",
			Seed:        11,
			Topology:    TopologySpec{Kind: "disk", Nodes: 30, Radius: 2.2},
			Traffic:     TrafficSpec{Kind: "bursty", PeakRate: 0.1, OnMean: 25, OffMean: 175},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "grid-eventwatch",
			Description: "Lattice surveillance under spatially-correlated events: neighbours report the same stimulus near-simultaneously.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "grid", Width: 6, Height: 6, Spacing: 0.8},
			Traffic:     TrafficSpec{Kind: "event", EventRate: 1.0 / 40, EventRadius: 1.2, BackgroundRate: 1.0 / 600},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 1,
			Name:        "tunnel-sentinel",
			Description: "Pipeline chain whose far end carries the instrumentation: outermost nodes sample five times the base rate.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "line", Nodes: 18, Spacing: 0.9},
			Traffic:     TrafficSpec{Kind: "heterogeneous", BaseRate: 1.0 / 200, OuterFactor: 5},
			Radio:       "cc1101",
			Payload:     48,
			Window:      60,
		},
		{
			SpecVersion: 2,
			Name:        "meadow-stormcycle",
			Description: "Non-stationary field monitoring: long calm sampling, a bursty storm surge, then calm again; re-bargained per phase.",
			Seed:        7,
			Topology:    TopologySpec{Kind: "disk", Nodes: 30, Radius: 2.2},
			Phases: []PhaseSpec{
				{Name: "calm", Traffic: TrafficSpec{Kind: "periodic", Rate: 1.0 / 300}, Duration: 160},
				{Name: "storm", Traffic: TrafficSpec{Kind: "bursty", PeakRate: 0.1, OnMean: 20, OffMean: 40}, Duration: 80},
				{Name: "recovery", Traffic: TrafficSpec{Kind: "periodic", Rate: 1.0 / 300}, Duration: 160},
			},
			Adaptation: &AdaptationSpec{Mode: AdaptPerPhase},
			Radio:      "cc2420",
			Payload:    32,
			Window:     60,
		},
		{
			SpecVersion: 2,
			Name:        "grid-nightwatch",
			Description: "Lattice surveillance through a quiet shift, an event storm of correlated detections, and the quiet after; re-bargained per phase.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "grid", Width: 6, Height: 6, Spacing: 0.8},
			Phases: []PhaseSpec{
				{Name: "quiet", Traffic: TrafficSpec{Kind: "periodic", Rate: 1.0 / 360}, Duration: 150},
				{Name: "storm", Traffic: TrafficSpec{Kind: "event", EventRate: 1.0 / 15, EventRadius: 1.2, BackgroundRate: 1.0 / 600}, Duration: 100},
				{Name: "quiet-after", Traffic: TrafficSpec{Kind: "periodic", Rate: 1.0 / 360}, Duration: 150},
			},
			Adaptation: &AdaptationSpec{Mode: AdaptPerPhase},
			Radio:      "cc2420",
			Payload:    32,
			Window:     60,
		},
		{
			SpecVersion: 3,
			Name:        "ring-lossy",
			Description: "The ring baseline over lossy links: every link drops 15% of frames, dominant frames capture through overlap.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "ring", Depth: 3, Density: 3},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 120},
			Channel:     &ChannelSpec{Model: "bernoulli", PRR: 0.85, Capture: true},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 3,
			Name:        "meadow-shadowed",
			Description: "The sparse meadow under log-normal shadowing: edge links fade persistently, capture resolves most overlaps.",
			Seed:        7,
			Topology:    TopologySpec{Kind: "disk", Nodes: 36, Radius: 2.6},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 150},
			Channel:     &ChannelSpec{Model: "shadowing", PathLossExp: 3.2, SigmaDB: 4, EdgeMarginDB: 5, Capture: true},
			Radio:       "cc1101",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 4,
			Name:        "ring-attrition",
			Description: "The ring baseline under churn on finite batteries: relays crash and recover on exponential clocks while every node drains a small battery, and each liveness epoch re-plays the bargain over the survivors.",
			Seed:        1,
			Topology:    TopologySpec{Kind: "ring", Depth: 3, Density: 3},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 120},
			Failures:    &FailureSpec{Model: FailChurn, MTBF: 500, MTTR: 80},
			Battery:     &BatterySpec{CapacityJ: 0.4},
			Adaptation:  &AdaptationSpec{Mode: AdaptOnDeath},
			Radio:       "cc2420",
			Payload:     32,
			Window:      60,
		},
		{
			SpecVersion: 4,
			Name:        "meadow-brownout",
			Description: "The sparse meadow on finite batteries with sporadic crashes: nodes die at their depletion instants, and each death re-bargains the survivors toward a thriftier point.",
			Seed:        7,
			Topology:    TopologySpec{Kind: "disk", Nodes: 36, Radius: 2.6},
			Traffic:     TrafficSpec{Kind: "periodic", Rate: 1.0 / 150},
			Failures:    &FailureSpec{Model: FailChurn, MTBF: 600, MTTR: 120},
			Battery:     &BatterySpec{CapacityJ: 0.35},
			Adaptation:  &AdaptationSpec{Mode: AdaptOnDeath},
			Radio:       "cc1101",
			Payload:     32,
			Window:      60,
		},
	}
}

// Names returns the builtin scenario names in registry order.
func Names() []string {
	specs := Builtins()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ByName returns the builtin scenario with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
