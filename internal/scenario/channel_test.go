package scenario

import (
	"strings"
	"testing"
)

// TestChannelSpec asserts the version-3 surface: a channel block
// parses, materializes a lossy, capture-enabled network
// deterministically, and the accessors report it.
func TestChannelSpec(t *testing.T) {
	data := []byte(`{
  "version": 3,
  "name": "lossy-line",
  "seed": 4,
  "topology": { "kind": "line", "nodes": 4, "spacing": 0.8 },
  "traffic": { "kind": "periodic", "rate": 0.01 },
  "channel": { "model": "bernoulli", "prr": 0.75, "capture": true, "capture_db": 4 },
  "radio": "cc2420",
  "payload": 32,
  "window": 60
}`)
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.ChannelKind(); got != "bernoulli" {
		t.Errorf("ChannelKind = %q, want bernoulli", got)
	}
	capture, db := spec.CaptureConfig()
	if !capture || db != 4 {
		t.Errorf("CaptureConfig = %v, %v; want true, 4", capture, db)
	}
	a, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Network.Lossy() {
		t.Fatal("materialized network not lossy")
	}
	if got := a.Network.MeanLinkPRR(); got != 0.75 {
		t.Errorf("MeanLinkPRR = %v, want 0.75", got)
	}
	b, err := spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Network.MeanLinkPRR() != b.Network.MeanLinkPRR() {
		t.Error("repeated materialization changed the link table")
	}

	// Scenarios without a channel block stay perfect.
	plain, ok := ByName("ring-baseline")
	if !ok {
		t.Fatal("ring-baseline missing")
	}
	if got := plain.ChannelKind(); got != "perfect" {
		t.Errorf("ring-baseline ChannelKind = %q, want perfect", got)
	}
	if capture, _ := plain.CaptureConfig(); capture {
		t.Error("ring-baseline reports capture")
	}
	m, err := plain.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m.Network.Lossy() || m.Network.MeanLinkPRR() != 1 {
		t.Error("perfect scenario materialized lossy links")
	}
}

// TestChannelSpecRejects asserts the version gating and the strict
// validation of the channel block.
func TestChannelSpecRejects(t *testing.T) {
	base := `{"version":%VER%,"name":"x","topology":{"kind":"line","nodes":3,"spacing":0.5},` +
		`"traffic":{"kind":"periodic","rate":0.1},%CH%"radio":"cc2420","payload":32,"window":60}`
	mk := func(ver, ch string) string {
		s := strings.ReplaceAll(base, "%VER%", ver)
		return strings.ReplaceAll(s, "%CH%", ch)
	}
	tests := []struct {
		name string
		json string
		want string
	}{
		{"channel in v1", mk("1", `"channel":{"model":"bernoulli","prr":0.9},`), "version 3"},
		{"channel in v2", mk("2", `"channel":{"model":"bernoulli","prr":0.9},`), "version 3"},
		{"unknown model", mk("3", `"channel":{"model":"telepathy"},`), "telepathy"},
		{"unknown field", mk("3", `"channel":{"model":"bernoulli","prr":0.9,"typo":1},`), "typo"},
		{"bad prr", mk("3", `"channel":{"model":"bernoulli","prr":1.5},`), "prr"},
		{"missing prr", mk("3", `"channel":{"model":"bernoulli"},`), "prr"},
		{"bad sigma", mk("3", `"channel":{"model":"shadowing","sigma_db":40},`), "sigma"},
		{"bad capture margin", mk("3", `"channel":{"model":"bernoulli","prr":0.9,"capture_db":-1},`), "capture"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse([]byte(tt.json))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(strings.ToLower(err.Error()), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
	// A v3 spec without a channel block is fine (the version is a
	// ceiling, not a demand)...
	if _, err := Parse([]byte(mk("3", ""))); err != nil {
		t.Errorf("v3 without channel rejected: %v", err)
	}
	// ...and a capture-only block over the perfect model is legal.
	if _, err := Parse([]byte(mk("3", `"channel":{"capture":true},`))); err != nil {
		t.Errorf("capture-only channel rejected: %v", err)
	}
}
