package edmac_test

// Benchmark for the serve layer's hot path: a cached /v1/optimize
// round-trip (request decode, canonicalization, LRU hit, response
// write) — the cost every duplicate request pays once the solver has
// run. Wired into `make bench-gate`, so the serving overhead cannot
// silently regress.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/edmac-project/edmac/internal/serve"
)

func BenchmarkServeOptimizeCached(b *testing.B) {
	s, err := serve.New(serve.Options{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	h := s.Handler()
	body := []byte(`{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}`)
	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	// Warm the cache: every timed iteration must be a HIT.
	if rec := do(); rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do()
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
		if rec.Header().Get("X-Cache") != "HIT" {
			b.Fatal("request missed the cache")
		}
	}
}

// BenchmarkJobsSubmitPoll measures the async tier's control-plane
// overhead: submit → status → result for a request whose bytes are
// already in the response cache, so the job is born done and every
// iteration is exactly three HTTP round-trips with no solver time and
// no poll-count variance — deterministic enough for the alloc gate.
func BenchmarkJobsSubmitPoll(b *testing.B) {
	s, err := serve.New(serve.Options{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	defer s.Close()
	h := s.Handler()
	body := []byte(`{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}`)
	do := func(method, path string, payload []byte) *httptest.ResponseRecorder {
		var req *http.Request
		if payload != nil {
			req = httptest.NewRequest(method, path, bytes.NewReader(payload))
			req.Header.Set("Content-Type", "application/json")
		} else {
			req = httptest.NewRequest(method, path, nil)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	// Warm the response cache so each submission short-circuits.
	if rec := do(http.MethodPost, "/v1/optimize", body); rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}
	submit := []byte(`{"optimize":{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do(http.MethodPost, "/v1/jobs", submit)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("submit status %d: %s", rec.Code, rec.Body)
		}
		var st struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.ID == "" {
			b.Fatalf("submit body: %s", rec.Body)
		}
		if rec := do(http.MethodGet, "/v1/jobs/"+st.ID, nil); rec.Code != http.StatusOK {
			b.Fatalf("status poll: %d", rec.Code)
		}
		if rec := do(http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil); rec.Code != http.StatusOK {
			b.Fatalf("result fetch: %d", rec.Code)
		}
	}
}
