package edmac_test

// Benchmark for the serve layer's hot path: a cached /v1/optimize
// round-trip (request decode, canonicalization, LRU hit, response
// write) — the cost every duplicate request pays once the solver has
// run. Wired into `make bench-gate`, so the serving overhead cannot
// silently regress.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/edmac-project/edmac/internal/serve"
)

func BenchmarkServeOptimizeCached(b *testing.B) {
	s, err := serve.New(serve.Options{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	h := s.Handler()
	body := []byte(`{"protocol":"xmac","requirements":{"energy_budget":0.06,"max_delay":6}}`)
	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	// Warm the cache: every timed iteration must be a HIT.
	if rec := do(); rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do()
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
		if rec.Header().Get("X-Cache") != "HIT" {
			b.Fatal("request missed the cache")
		}
	}
}
