package edmac

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/edmac-project/edmac/internal/jobs"
)

// This file is the Client's async job tier — the in-process mirror of
// edserve's /v1/jobs API, over the same internal/jobs store the HTTP
// layer uses. Go callers submit an optimize/simulate/suite request,
// get a job ID back immediately, and then poll, wait, stream events or
// cancel — without hand-rolling goroutines, channels or polling loops.
// The admission contract matches the service's: a bounded queue whose
// overflow is ErrJobQueueFull, never unbounded buffering.

// ErrJobQueueFull is SubmitJob's admission-control refusal: the job
// queue is at capacity and the request was not accepted. The edserve
// layer surfaces the same condition as HTTP 429.
var ErrJobQueueFull = jobs.ErrQueueFull

// ErrJobCancelled marks a job terminated by CancelJob rather than by
// its own execution.
var ErrJobCancelled = jobs.ErrCancelled

// ErrJobNotFound reports an unknown (or already garbage-collected) job
// ID.
var ErrJobNotFound = errors.New("edmac: job not found")

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued    JobState = JobState(jobs.Queued)
	JobRunning   JobState = JobState(jobs.Running)
	JobDone      JobState = JobState(jobs.Done)
	JobFailed    JobState = JobState(jobs.Failed)
	JobCancelled JobState = JobState(jobs.Cancelled)
)

// Terminal reports whether the state is final (done, failed or
// cancelled).
func (s JobState) Terminal() bool { return jobs.State(s).Terminal() }

// JobStatus is a snapshot of one job's externally visible state.
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"` // "optimize", "simulate" or "suite"
	State JobState `json:"state"`
	// Done/Total are the progress counters: finished cells over matrix
	// size for suites, 0→1 for the single-unit kinds.
	Done     int       `json:"done"`
	Total    int       `json:"total,omitempty"`
	Created  time.Time `json:"created_at"`
	Started  time.Time `json:"started_at,omitzero"`
	Finished time.Time `json:"finished_at,omitzero"`
	// Err is the failure (or cancellation) message of a terminal job.
	Err string `json:"error,omitempty"`
}

// JobEvent is one entry of a job's ordered event log: a state
// transition, a progress tick, or a finished suite cell. Seq is dense
// from 0, so a consumer can resume a stream from any position.
type JobEvent struct {
	Seq   int      `json:"seq"`
	Type  string   `json:"type"` // "state", "progress" or "cell"
	State JobState `json:"state,omitempty"`
	Done  int      `json:"done"`
	Total int      `json:"total,omitempty"`
	Err   string   `json:"error,omitempty"`
	// Cell is the finished suite cell of a "cell" event, nil otherwise.
	Cell *SuiteCell `json:"cell,omitempty"`
}

// JobRequest names the deferred work: exactly one of the three
// payloads, each the same request its synchronous method takes.
type JobRequest struct {
	Optimize *OptimizeRequest `json:"optimize,omitempty"`
	Simulate *SimulateRequest `json:"simulate,omitempty"`
	Suite    *SuiteRequest    `json:"suite,omitempty"`
}

// WithJobs sizes the client's async job tier: queue bounds admission
// (SubmitJob beyond it fails with ErrJobQueueFull), workers is the
// number of jobs executed concurrently, and ttl is how long finished
// jobs remain fetchable before garbage collection. Zero values select
// the package defaults. The tier itself is created lazily on first
// SubmitJob either way — WithJobs only tunes it.
func WithJobs(queue, workers int, ttl time.Duration) Option {
	return func(c *Client) error {
		if queue < 0 || workers < 0 || ttl < 0 {
			return fmt.Errorf("edmac: WithJobs: negative queue, workers or ttl")
		}
		c.jobsOpts = jobs.Options{Queue: queue, Workers: workers, TTL: ttl}
		return nil
	}
}

// jobStore returns the client's job store, creating it on first use.
func (c *Client) jobStore() (*jobs.Store, error) {
	c.jobsMu.Lock()
	defer c.jobsMu.Unlock()
	if c.jobsStore == nil {
		s, err := jobs.New(c.jobsOpts)
		if err != nil {
			return nil, err
		}
		c.jobsStore = s
	}
	return c.jobsStore, nil
}

// Close releases the client's job tier: running jobs are cancelled,
// queued ones marked cancelled, and the workers stopped. A client that
// never submitted a job closes as a no-op. The synchronous methods
// remain usable afterwards; SubmitJob does not.
func (c *Client) Close() error {
	c.jobsMu.Lock()
	s := c.jobsStore
	c.jobsMu.Unlock()
	if s != nil {
		s.Close()
	}
	return nil
}

// jobOf resolves an ID against the store without creating the tier —
// looking up a job on a client that never submitted one is simply
// not-found.
func (c *Client) jobOf(id string) (*jobs.Job, error) {
	c.jobsMu.Lock()
	s := c.jobsStore
	c.jobsMu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	j, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return j, nil
}

func jobStatusOf(snap jobs.Snapshot) JobStatus {
	return JobStatus{
		ID: snap.ID, Kind: snap.Kind, State: JobState(snap.State),
		Done: snap.Done, Total: snap.Total,
		Created: snap.Created, Started: snap.Started, Finished: snap.Finished,
		Err: snap.Err,
	}
}

// SubmitJob admits an asynchronous request and returns immediately
// with its queued status; the work runs on the job tier's worker pool.
// The job's result — fetched with JobResult — is exactly what the
// synchronous method would have returned: OptimizeReport,
// SimulateReport or *SuiteReport by kind. Suite jobs additionally
// publish every finished cell on the event log (JobEvents). ctx guards
// only the submission itself, not the job's execution; cancel the job,
// not the context.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (JobStatus, error) {
	if _, err := ready(ctx); err != nil {
		return JobStatus{}, err
	}
	store, err := c.jobStore()
	if err != nil {
		return JobStatus{}, err
	}
	var (
		kind  string
		total int
		run   jobs.RunFunc
		n     int
	)
	if r := req.Optimize; r != nil {
		n++
		kind, total = "optimize", 1
		run = func(ctx context.Context, j *jobs.Job) (any, error) {
			rep, err := c.Optimize(ctx, *r)
			if err != nil {
				return nil, err
			}
			j.Advance("", nil)
			return rep, nil
		}
	}
	if r := req.Simulate; r != nil {
		n++
		kind, total = "simulate", 1
		run = func(ctx context.Context, j *jobs.Job) (any, error) {
			rep, err := c.Simulate(ctx, *r)
			if err != nil {
				return nil, err
			}
			j.Advance("", nil)
			return rep, nil
		}
	}
	if r := req.Suite; r != nil {
		n++
		kind, total = "suite", len(r.Scenarios)*len(r.Protocols)
		run = func(ctx context.Context, j *jobs.Job) (any, error) {
			return c.SuiteObserved(ctx, *r, func(cell SuiteCell) error {
				j.Advance("cell", cell)
				return nil
			})
		}
	}
	if n != 1 {
		return JobStatus{}, fmt.Errorf("edmac: SubmitJob: exactly one of Optimize, Simulate or Suite required (got %d)", n)
	}
	j, err := store.Submit(kind, total, run)
	if err != nil {
		return JobStatus{}, err
	}
	return jobStatusOf(j.Snapshot()), nil
}

// JobStatus reports a job's current state and progress.
func (c *Client) JobStatus(id string) (JobStatus, error) {
	j, err := c.jobOf(id)
	if err != nil {
		return JobStatus{}, err
	}
	return jobStatusOf(j.Snapshot()), nil
}

// Jobs lists every known job's status, oldest first.
func (c *Client) Jobs() []JobStatus {
	c.jobsMu.Lock()
	s := c.jobsStore
	c.jobsMu.Unlock()
	if s == nil {
		return nil
	}
	snaps := s.List()
	out := make([]JobStatus, len(snaps))
	for i, snap := range snaps {
		out[i] = jobStatusOf(snap)
	}
	return out
}

// JobResult waits for the job to finish and returns its result — the
// synchronous method's return value by kind: OptimizeReport,
// SimulateReport or *SuiteReport. A cancelled job returns
// ErrJobCancelled, a failed one its execution error (ErrInfeasible
// keeps its identity), and a done ctx returns the ctx's error without
// touching the job.
func (c *Client) JobResult(ctx context.Context, id string) (any, error) {
	ctx, err := ready(ctx)
	if err != nil {
		return nil, err
	}
	j, err := c.jobOf(id)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// JobEvents replays the job's event log from seq `from` and follows it
// live, delivering each event to fn in order. It returns nil once the
// terminal event has been delivered, fn's error if fn fails, or ctx's
// error if the context ends first — so tailing a running job is
// bounded by the caller's context, never by the job.
func (c *Client) JobEvents(ctx context.Context, id string, from int, fn func(JobEvent) error) error {
	ctx, err := ready(ctx)
	if err != nil {
		return err
	}
	if fn == nil {
		return fmt.Errorf("edmac: JobEvents needs an event callback")
	}
	j, err := c.jobOf(id)
	if err != nil {
		return err
	}
	return j.Events(ctx, from, func(ev jobs.Event) error {
		out := JobEvent{
			Seq: ev.Seq, Type: ev.Type, State: JobState(ev.State),
			Done: ev.Done, Total: ev.Total, Err: ev.Err,
		}
		if cell, ok := ev.Payload.(SuiteCell); ok {
			out.Cell = &cell
		}
		return fn(out)
	})
}

// CancelJob requests cancellation: a queued job is cancelled
// immediately, a running one has its context cancelled and reaches the
// cancelled state when its work unwinds; cancelling a finished job is
// a no-op. The returned status is the state observed after the
// request.
func (c *Client) CancelJob(id string) (JobStatus, error) {
	c.jobsMu.Lock()
	s := c.jobsStore
	c.jobsMu.Unlock()
	if s == nil {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	j, ok := s.Cancel(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %q", ErrJobNotFound, id)
	}
	return jobStatusOf(j.Snapshot()), nil
}
