package edmac_test

import (
	"math"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

func TestFrontierErrorPaths(t *testing.T) {
	s := edmac.DefaultScenario()
	if _, err := edmac.Frontier(edmac.Protocol("smac"), s, edmac.PaperRequirements(), 10); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := edmac.Frontier(edmac.XMAC, s, edmac.Requirements{}, 10); err == nil {
		t.Error("zero requirements accepted")
	}
	if _, err := edmac.Frontier(edmac.XMAC, s, edmac.PaperRequirements(), 1); err == nil {
		t.Error("single-point frontier accepted")
	}
}

func TestParamsErrorPaths(t *testing.T) {
	if _, err := edmac.Params(edmac.Protocol("smac"), edmac.DefaultScenario()); err == nil {
		t.Error("unknown protocol accepted")
	}
	bad := edmac.DefaultScenario()
	bad.Payload = 0
	if _, err := edmac.Params(edmac.XMAC, bad); err == nil {
		t.Error("zero payload accepted")
	}
}

func TestCompareWithBrokenScenario(t *testing.T) {
	bad := edmac.DefaultScenario()
	bad.Radio = "nope"
	comps := edmac.Compare(bad, edmac.PaperRequirements())
	if len(comps) != 3 {
		t.Fatalf("Compare returned %d entries", len(comps))
	}
	for _, c := range comps {
		if c.Err == nil {
			t.Errorf("%s: broken scenario produced no error", c.Protocol)
		}
	}
	if _, ok := edmac.Best(comps); ok {
		t.Error("Best found a winner among all-failed comparisons")
	}
}

func TestResultParamsAreCopies(t *testing.T) {
	res, err := edmac.Optimize(edmac.XMAC, edmac.DefaultScenario(), edmac.PaperRequirements())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	orig := res.Bargain.Params[0]
	res.Bargain.Params[0] = 999
	res2, err := edmac.Optimize(edmac.XMAC, edmac.DefaultScenario(), edmac.PaperRequirements())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res2.Bargain.Params[0] != orig {
		t.Error("mutating a result leaked into a later optimization")
	}
}

func TestEvaluateSCPMAC(t *testing.T) {
	s := edmac.DefaultScenario()
	e, l, err := edmac.Evaluate(edmac.SCPMAC, s, []float64{1.0})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// Synchronized polling at a 1 s period: sub-millijoule-per-second
	// power and a few seconds of delay.
	if e <= 0 || e > 0.1 {
		t.Errorf("scpmac energy %v J implausible", e)
	}
	if l < 2 || l > 4 {
		t.Errorf("scpmac delay %v s implausible for a 1 s period over 5 hops", l)
	}
}

func TestSimulateErrorPaths(t *testing.T) {
	s := edmac.DefaultScenario()
	if _, err := edmac.Simulate(edmac.XMAC, s, []float64{0.2, 0.3}, edmac.SimOptions{Duration: 10}); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := s
	bad.Depth = 0
	if _, err := edmac.Simulate(edmac.XMAC, bad, []float64{0.2}, edmac.SimOptions{Duration: 10}); err == nil {
		t.Error("broken scenario accepted")
	}
	if _, err := edmac.Simulate(edmac.Protocol("smac"), s, []float64{0.2}, edmac.SimOptions{Duration: 10}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestValidateOutOfBoxParamsFallBack(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := edmac.DefaultScenario()
	s.Depth = 2
	s.Density = 2
	s.SampleInterval = 300
	// Tw = 8 s sits outside the model's admissible box [0.064, 5]; the
	// validation must still evaluate the raw model rather than fail.
	rep, err := edmac.Validate(edmac.XMAC, s, []float64{8}, edmac.SimOptions{Duration: 300, Seed: 3})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rep.AnalyticEnergy <= 0 || math.IsNaN(rep.AnalyticEnergy) {
		t.Errorf("analytic energy %v unusable", rep.AnalyticEnergy)
	}
}

func TestBMACSimulatesViaFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	s := edmac.DefaultScenario()
	s.Depth = 2
	s.Density = 2
	s.SampleInterval = 60
	rep, err := edmac.Simulate(edmac.BMAC, s, []float64{0.2}, edmac.SimOptions{Duration: 600, Seed: 4})
	if err != nil {
		t.Fatalf("Simulate(bmac): %v", err)
	}
	if rep.DeliveryRatio < 0.8 {
		t.Errorf("bmac delivery %v below 0.8 (collisions %d)", rep.DeliveryRatio, rep.Collisions)
	}
}

func TestPaperProtocolsSubset(t *testing.T) {
	all := map[edmac.Protocol]bool{}
	for _, p := range edmac.Protocols() {
		all[p] = true
	}
	for _, p := range edmac.PaperProtocols() {
		if !all[p] {
			t.Errorf("paper protocol %s missing from Protocols()", p)
		}
	}
	if len(edmac.PaperProtocols()) != 3 {
		t.Errorf("paper evaluates 3 protocols, got %d", len(edmac.PaperProtocols()))
	}
}
