module github.com/edmac-project/edmac

go 1.24

// Pinned so the escape-analysis golden (internal/lint/testdata/
// escape_golden.txt) compares facts from the same compiler on every
// runner; bump deliberately and regenerate with `make escape-golden`.
toolchain go1.24.0
