module github.com/edmac-project/edmac

go 1.24
