package edmac_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	edmac "github.com/edmac-project/edmac"
)

func suiteJobRequest(t *testing.T, duration float64) edmac.JobRequest {
	t.Helper()
	sp, ok := edmac.BuiltinScenario("ring-baseline")
	if !ok {
		t.Fatal("ring-baseline missing from the registry")
	}
	return edmac.JobRequest{Suite: &edmac.SuiteRequest{
		Scenarios: []edmac.ScenarioSpec{sp},
		Protocols: []edmac.Protocol{edmac.XMAC, edmac.LMAC},
		Options:   edmac.SuiteOptions{Duration: duration, Seed: 1},
	}}
}

func waitTerminal(t *testing.T, c *edmac.Client, id string) edmac.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.JobStatus(id)
		if err != nil {
			t.Fatalf("JobStatus: %v", err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished; last %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientJobSuite mirrors the tentpole contract in-process: a suite
// submitted as a job streams its cells on the event log and resolves
// to the same report the synchronous call returns.
func TestClientJobSuite(t *testing.T) {
	c, err := edmac.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	req := suiteJobRequest(t, 40)

	st, err := c.SubmitJob(context.Background(), req)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if st.Kind != "suite" || st.Total != 2 || st.ID == "" {
		t.Fatalf("submit status = %+v", st)
	}

	// Follow the event log to completion: queued → running → two cell
	// events carrying payloads → done, densely numbered.
	var evs []edmac.JobEvent
	if err := c.JobEvents(context.Background(), st.ID, 0, func(ev edmac.JobEvent) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatalf("JobEvents: %v", err)
	}
	cells := 0
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: %+v", i, ev.Seq, evs)
		}
		if ev.Type == "cell" {
			cells++
			if ev.Cell == nil || ev.Cell.Scenario != "ring-baseline" {
				t.Fatalf("cell event without a usable cell: %+v", ev)
			}
		}
	}
	if cells != 2 || len(evs) != 5 {
		t.Fatalf("%d events with %d cells, want 5 with 2", len(evs), cells)
	}
	if evs[len(evs)-1].State != edmac.JobDone {
		t.Fatalf("last event state = %q", evs[len(evs)-1].State)
	}

	res, err := c.JobResult(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("JobResult: %v", err)
	}
	got, ok := res.(*edmac.SuiteReport)
	if !ok {
		t.Fatalf("result type = %T, want *edmac.SuiteReport", res)
	}
	want, err := c.Suite(context.Background(), *req.Suite)
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("job result differs from synchronous Suite:\njob:  %s\nsync: %s", gotJSON, wantJSON)
	}

	if list := c.Jobs(); len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("Jobs() = %+v", list)
	}
}

func TestClientJobOptimizeTyped(t *testing.T) {
	c, err := edmac.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	st, err := c.SubmitJob(nil, edmac.JobRequest{Optimize: &edmac.OptimizeRequest{
		Protocol:     edmac.XMAC,
		Requirements: edmac.Requirements{EnergyBudget: 0.06, MaxDelay: 6},
	}})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	res, err := c.JobResult(nil, st.ID)
	if err != nil {
		t.Fatalf("JobResult: %v", err)
	}
	rep, ok := res.(edmac.OptimizeReport)
	if !ok || len(rep.Result.Bargain.Params) == 0 {
		t.Fatalf("result = %T %+v", res, res)
	}
	if final := waitTerminal(t, c, st.ID); final.Done != 1 || final.Total != 1 {
		t.Fatalf("progress = %d/%d, want 1/1", final.Done, final.Total)
	}
}

func TestClientJobFailureKeepsErrorIdentity(t *testing.T) {
	c, err := edmac.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	st, err := c.SubmitJob(nil, edmac.JobRequest{Optimize: &edmac.OptimizeRequest{
		Protocol:     edmac.LMAC,
		Requirements: edmac.Requirements{EnergyBudget: 0.01, MaxDelay: 6},
	}})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if _, err := c.JobResult(nil, st.ID); !errors.Is(err, edmac.ErrInfeasible) {
		t.Fatalf("JobResult error = %v, want ErrInfeasible", err)
	}
	if final := waitTerminal(t, c, st.ID); final.State != edmac.JobFailed || final.Err == "" {
		t.Fatalf("final = %+v, want failed with message", final)
	}
}

func TestClientJobCancel(t *testing.T) {
	c, err := edmac.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	st, err := c.SubmitJob(nil, suiteJobRequest(t, 1e6))
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	// Let it start, then cancel; the simulator aborts within a few
	// thousand events, so the terminal state arrives promptly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := c.JobStatus(st.ID)
		if err != nil {
			t.Fatalf("JobStatus: %v", err)
		}
		if cur.State == edmac.JobRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.CancelJob(st.ID); err != nil {
		t.Fatalf("CancelJob: %v", err)
	}
	if _, err := c.JobResult(nil, st.ID); !errors.Is(err, edmac.ErrJobCancelled) {
		t.Fatalf("JobResult after cancel = %v, want ErrJobCancelled", err)
	}
	if final := waitTerminal(t, c, st.ID); final.State != edmac.JobCancelled {
		t.Fatalf("final state = %q, want cancelled", final.State)
	}
}

func TestClientJobQueueFull(t *testing.T) {
	c, err := edmac.NewClient(edmac.WithJobs(1, 1, 0))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	// One long job wedges the single worker, a second fills the
	// depth-one queue, the third must be refused.
	if _, err := c.SubmitJob(nil, suiteJobRequest(t, 1e6)); err != nil {
		t.Fatalf("first SubmitJob: %v", err)
	}
	// The worker may claim either job quickly; keep filling until the
	// queue refuses, bounded by a few attempts.
	refused := false
	for i := 0; i < 4; i++ {
		if _, err := c.SubmitJob(nil, suiteJobRequest(t, 1e6)); errors.Is(err, edmac.ErrJobQueueFull) {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("queue never refused admission")
	}
}

func TestClientJobValidation(t *testing.T) {
	c, err := edmac.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer c.Close()
	if _, err := c.SubmitJob(nil, edmac.JobRequest{}); err == nil {
		t.Fatal("empty JobRequest accepted")
	}
	if _, err := c.JobStatus("nope"); !errors.Is(err, edmac.ErrJobNotFound) {
		t.Fatalf("JobStatus(nope) = %v, want ErrJobNotFound", err)
	}
	if _, err := c.CancelJob("nope"); !errors.Is(err, edmac.ErrJobNotFound) {
		t.Fatalf("CancelJob(nope) = %v, want ErrJobNotFound", err)
	}
	if _, err := c.JobResult(nil, "nope"); !errors.Is(err, edmac.ErrJobNotFound) {
		t.Fatalf("JobResult(nope) = %v, want ErrJobNotFound", err)
	}
}
