package edmac_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	edmac "github.com/edmac-project/edmac"
)

func TestNewClientOptionErrors(t *testing.T) {
	if _, err := edmac.NewClient(edmac.WithRadio("nrf24")); err == nil {
		t.Error("unknown radio accepted")
	}
	if _, err := edmac.NewClient(edmac.WithScenario(edmac.Scenario{})); err == nil {
		t.Error("invalid scenario accepted")
	}
}

// TestClientDefaultScenario proves nil-scenario requests resolve to the
// configured default: a client built around a custom deployment answers
// exactly like an explicit-scenario request against it.
func TestClientDefaultScenario(t *testing.T) {
	s := edmac.DefaultScenario()
	s.SampleInterval = 300
	cli, err := edmac.NewClient(edmac.WithScenario(s))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	req := edmac.PaperRequirements()
	implicit, err := cli.Optimize(context.Background(), edmac.OptimizeRequest{
		Protocol: edmac.XMAC, Requirements: req, Relaxed: true,
	})
	if err != nil {
		t.Fatalf("implicit: %v", err)
	}
	explicit, err := edmac.OptimizeRelaxed(edmac.XMAC, s, req)
	if err != nil {
		t.Fatalf("explicit: %v", err)
	}
	mustEqualJSON(t, explicit, implicit.Result, "default-scenario resolution")
}

func TestClientCacheHitsAndIsolation(t *testing.T) {
	cli, err := edmac.NewClient(edmac.WithCache(8))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	ctx := context.Background()
	req := edmac.OptimizeRequest{Protocol: edmac.XMAC, Requirements: edmac.PaperRequirements(), Relaxed: true}

	first, err := cli.Optimize(ctx, req)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if stats := cli.CacheStats(); stats.Hits != 0 || stats.Misses == 0 || stats.Entries != 1 {
		t.Fatalf("after miss: %+v", stats)
	}
	// Corrupt the returned report; the cache must be unaffected.
	first.Result.Bargain.Params[0] = -1

	second, err := cli.Optimize(ctx, req)
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if stats := cli.CacheStats(); stats.Hits != 1 {
		t.Fatalf("after hit: %+v", stats)
	}
	if second.Result.Bargain.Params[0] == -1 {
		t.Fatal("cache returned the caller-mutated slice")
	}
	baseline, err := edmac.OptimizeRelaxed(edmac.XMAC, edmac.DefaultScenario(), edmac.PaperRequirements())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	mustEqualJSON(t, baseline, second.Result, "cached result")
}

// TestClientCachesInfeasibility: an infeasible verdict is as expensive
// to compute as a solution and just as deterministic, so it caches too,
// preserving errors.Is.
func TestClientCachesInfeasibility(t *testing.T) {
	cli, err := edmac.NewClient(edmac.WithCache(8))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	ctx := context.Background()
	req := edmac.OptimizeRequest{
		Protocol:     edmac.LMAC,
		Requirements: edmac.Requirements{EnergyBudget: 0.01, MaxDelay: 6},
	}
	_, err1 := cli.Optimize(ctx, req)
	_, err2 := cli.Optimize(ctx, req)
	if !errors.Is(err1, edmac.ErrInfeasible) || !errors.Is(err2, edmac.ErrInfeasible) {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if stats := cli.CacheStats(); stats.Hits != 1 {
		t.Fatalf("infeasible verdict not cached: %+v", stats)
	}
}

// TestClientBaseSeedPolicy: the base seed XORs into every request
// seed, and the effective seed is echoed, so reports stay
// self-describing.
func TestClientBaseSeedPolicy(t *testing.T) {
	const base = int64(0x5eed)
	seeded, err := edmac.NewClient(edmac.WithBaseSeed(base))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	plain := newClient(t)
	s := edmac.Scenario{Depth: 3, Density: 4, SampleInterval: 120, Window: 60, Payload: 32, Radio: "cc2420"}
	ctx := context.Background()

	req := edmac.SimulateRequest{
		Protocol: edmac.XMAC, Scenario: &s, Params: []float64{0.25},
		Options: edmac.SimOptions{Duration: 60, Seed: 7},
	}
	folded, err := seeded.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("seeded: %v", err)
	}
	if folded.Sim.Seed != 7^base {
		t.Fatalf("effective seed = %d, want %d", folded.Sim.Seed, 7^base)
	}
	equiv := req
	equiv.Options.Seed = 7 ^ base
	want, err := plain.Simulate(ctx, equiv)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	mustEqualJSON(t, want.Sim, folded.Sim, "base-seed folding")
}

// TestClientPreCancelledContext: every method fails fast on a context
// that is already done.
func TestClientPreCancelledContext(t *testing.T) {
	cli := newClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := edmac.PaperRequirements()

	if _, err := cli.Optimize(ctx, edmac.OptimizeRequest{Protocol: edmac.XMAC, Requirements: req}); !errors.Is(err, context.Canceled) {
		t.Errorf("Optimize: %v", err)
	}
	if _, err := cli.Frontier(ctx, edmac.FrontierRequest{Protocol: edmac.XMAC, Requirements: req, Points: 5}); !errors.Is(err, context.Canceled) {
		t.Errorf("Frontier: %v", err)
	}
	if _, err := cli.Compare(ctx, edmac.CompareRequest{Requirements: req}); !errors.Is(err, context.Canceled) {
		t.Errorf("Compare: %v", err)
	}
	if _, err := cli.Sweep(ctx, edmac.SweepRequest{Protocol: edmac.XMAC, Axis: edmac.SweepDelay, Fixed: 0.06, Values: []float64{2}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Sweep: %v", err)
	}
	if _, err := cli.Simulate(ctx, edmac.SimulateRequest{Protocol: edmac.XMAC, Params: []float64{0.25}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate: %v", err)
	}
	if _, err := cli.Batch(ctx, edmac.BatchRequest{Runs: []edmac.BatchRun{{Protocol: edmac.XMAC, Params: []float64{0.25}}}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Batch: %v", err)
	}
	sp, _ := edmac.BuiltinScenario("ring-baseline")
	if _, err := cli.Suite(ctx, edmac.SuiteRequest{Scenarios: []edmac.ScenarioSpec{sp}, Protocols: []edmac.Protocol{edmac.XMAC}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Suite: %v", err)
	}
}

// TestBatchPreCancelledKeepsOutcomeShape pins the batch-specific
// contract: even an already-done context yields one outcome per run
// (each carrying the context's error) — consumers index outcomes by
// run, so the slice's shape must never depend on timing. The legacy
// wrapper inherits the same shape.
func TestBatchPreCancelledKeepsOutcomeShape(t *testing.T) {
	cli := newClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := edmac.DefaultScenario()
	runs := []edmac.BatchRun{
		{Protocol: edmac.XMAC, Params: []float64{0.25}, Options: edmac.SimOptions{Seed: 1}},
		{Protocol: edmac.XMAC, Params: []float64{0.25}, Options: edmac.SimOptions{Seed: 2}},
		{Protocol: edmac.XMAC, Params: []float64{0.25}, Options: edmac.SimOptions{Seed: 3}},
	}
	rep, err := cli.Batch(ctx, edmac.BatchRequest{Scenario: &s, Runs: runs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Batch error = %v, want context.Canceled", err)
	}
	if len(rep.Outcomes) != len(runs) {
		t.Fatalf("Batch returned %d outcomes for %d runs", len(rep.Outcomes), len(runs))
	}
	for i, out := range rep.Outcomes {
		if !errors.Is(out.Err, context.Canceled) {
			t.Errorf("outcome %d: Err = %v, want context.Canceled", i, out.Err)
		}
	}
	legacy := edmac.SimulateBatch(ctx, s, runs, 0)
	if len(legacy) != len(runs) {
		t.Fatalf("legacy wrapper returned %d outcomes for %d runs", len(legacy), len(runs))
	}
	for i, out := range legacy {
		if !errors.Is(out.Err, context.Canceled) {
			t.Errorf("legacy outcome %d: Err = %v, want context.Canceled", i, out.Err)
		}
	}
}

func TestClientSweepAxisValidation(t *testing.T) {
	cli := newClient(t)
	_, err := cli.Sweep(context.Background(), edmac.SweepRequest{
		Protocol: edmac.XMAC, Axis: "sideways", Fixed: 1, Values: []float64{1},
	})
	if err == nil {
		t.Fatal("bogus axis accepted")
	}
}

func TestClientSimulateDeploymentConflict(t *testing.T) {
	cli := newClient(t)
	s := edmac.DefaultScenario()
	sp, _ := edmac.BuiltinScenario("ring-baseline")
	_, err := cli.Simulate(context.Background(), edmac.SimulateRequest{
		Protocol: edmac.XMAC, Scenario: &s, Spec: &sp, Params: []float64{0.25},
	})
	if err == nil {
		t.Fatal("conflicting deployment sources accepted")
	}
}

// TestSuiteStreamMatchesSuite: streaming delivers exactly the cells of
// the monolithic report, serialized to the callback.
func TestSuiteStreamMatchesSuite(t *testing.T) {
	cli := newClient(t)
	sp, _ := edmac.BuiltinScenario("ring-baseline")
	req := edmac.SuiteRequest{
		Scenarios: []edmac.ScenarioSpec{sp},
		Protocols: []edmac.Protocol{edmac.XMAC, edmac.LMAC, edmac.SCPMAC},
		Options:   edmac.SuiteOptions{Duration: 40, Seed: 1, Workers: 3},
	}
	ctx := context.Background()
	report, err := cli.Suite(ctx, req)
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}

	var mu sync.Mutex
	inFlight := 0
	got := map[string][]byte{}
	err = cli.SuiteStream(ctx, req, func(cell edmac.SuiteCell) error {
		mu.Lock()
		inFlight++
		if inFlight != 1 {
			t.Error("callback invoked concurrently")
		}
		got[cell.Scenario+"/"+string(cell.Protocol)] = asJSON(t, cell)
		inFlight--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("SuiteStream: %v", err)
	}
	if len(got) != len(report.Cells) {
		t.Fatalf("streamed %d cells, report has %d", len(got), len(report.Cells))
	}
	for _, cell := range report.Cells {
		key := cell.Scenario + "/" + string(cell.Protocol)
		want := asJSON(t, cell)
		if string(got[key]) != string(want) {
			t.Errorf("%s: streamed cell differs from report cell", key)
		}
	}
}

// TestSuiteStreamConsumerAbort: a consumer error stops the stream and
// surfaces as the return value.
func TestSuiteStreamConsumerAbort(t *testing.T) {
	cli := newClient(t)
	sp, _ := edmac.BuiltinScenario("ring-baseline")
	req := edmac.SuiteRequest{
		Scenarios: []edmac.ScenarioSpec{sp},
		Protocols: edmac.Protocols(),
		Options:   edmac.SuiteOptions{Duration: 40, Seed: 1, Workers: 1},
	}
	sentinel := errors.New("enough")
	calls := 0
	err := cli.SuiteStream(context.Background(), req, func(edmac.SuiteCell) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the consumer's sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after aborting", calls)
	}
}

// TestClientWorkersOption pins that a workers override still produces
// bit-identical results (the whole parallel layer's contract).
func TestClientWorkersOption(t *testing.T) {
	serial, err := edmac.NewClient(edmac.WithWorkers(1))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	wide := newClient(t)
	ctx := context.Background()
	req := edmac.SweepRequest{
		Protocol: edmac.XMAC, Axis: edmac.SweepDelay, Fixed: 0.06, Values: []float64{1, 2, 3, 4},
	}
	a, err := serial.Sweep(ctx, req)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	b, err := wide.Sweep(ctx, req)
	if err != nil {
		t.Fatalf("wide: %v", err)
	}
	mustEqualJSON(t, a.Points, b.Points, "worker-count independence")
}
